package actdsm_test

import (
	"errors"
	"testing"

	"actdsm"
)

// TestSystemLifecycleErrors pins the two-phase System lifecycle: all
// configuration entry points (SetHooks, TrackIteration) and Run itself
// report ErrAlreadyRan once Run has been invoked, instead of silently
// accepting configuration that can never take effect.
func TestSystemLifecycleErrors(t *testing.T) {
	app, err := actdsm.NewApp("SOR", actdsm.AppConfig{Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := actdsm.NewSystem(app, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	if err := sys.SetHooks(actdsm.Hooks{}); err != nil {
		t.Fatalf("SetHooks before Run: %v", err)
	}
	if _, err := sys.TrackIteration(1); err != nil {
		t.Fatalf("TrackIteration before Run: %v", err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetHooks(actdsm.Hooks{}); !errors.Is(err, actdsm.ErrAlreadyRan) {
		t.Fatalf("SetHooks after Run: %v, want ErrAlreadyRan", err)
	}
	if _, err := sys.TrackIteration(2); !errors.Is(err, actdsm.ErrAlreadyRan) {
		t.Fatalf("TrackIteration after Run: %v, want ErrAlreadyRan", err)
	}
	if err := sys.Run(); !errors.Is(err, actdsm.ErrAlreadyRan) {
		t.Fatalf("second Run: %v, want ErrAlreadyRan", err)
	}
}

// runVerified executes app on 8 nodes with Verify enabled and tracking
// armed for iteration 1, with or without the prefetch + batching layer,
// and returns the run's statistics. A Verify failure surfaces as a Run
// error, so a passing return means the numerical output was correct.
func runVerified(t *testing.T, name string, prefetch bool) actdsm.Snapshot {
	t.Helper()
	const threads, nodes = 16, 8
	app, err := actdsm.NewApp(name, actdsm.AppConfig{Threads: threads, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	opts := []actdsm.SystemOption{}
	if prefetch {
		opts = append(opts,
			actdsm.WithClusterConfig(actdsm.ClusterConfig{PrefetchBudget: -1, BatchDiffs: true}))
	}
	sys, err := actdsm.NewSystem(app, nodes, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	// Track in both configurations so their protocol work is identical;
	// the prefetch run's predictor switches from the fault-window
	// fallback to the tracker's bitmaps once iteration 1 completes.
	if _, err := sys.TrackIteration(1); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("%s (prefetch=%v): %v", name, prefetch, err)
	}
	return sys.Cluster().Stats().Snapshot()
}

// TestPrefetchPreservesOutputAndReducesCalls is the facade-level
// acceptance property: on the paper's workloads, turning on prefetch +
// batched diff fetches must not change what the application computes
// (Verify passes in both runs) or how it synchronizes (identical barrier
// and lock counters), while cutting remote data-movement round trips
// (PageRequest + DiffRequest + DiffBatchRequest) by at least 20%.
func TestPrefetchPreservesOutputAndReducesCalls(t *testing.T) {
	for _, name := range []string{"SOR", "Ocean"} {
		t.Run(name, func(t *testing.T) {
			demand := runVerified(t, name, false)
			pref := runVerified(t, name, true)

			if demand.Barriers != pref.Barriers {
				t.Fatalf("Barriers diverge: %d demand, %d prefetch", demand.Barriers, pref.Barriers)
			}
			if demand.LockAcquires != pref.LockAcquires {
				t.Fatalf("LockAcquires diverge: %d demand, %d prefetch",
					demand.LockAcquires, pref.LockAcquires)
			}
			if pref.PrefetchedPages == 0 || pref.PrefetchHits == 0 {
				t.Fatalf("prefetch inactive: pages %d, hits %d",
					pref.PrefetchedPages, pref.PrefetchHits)
			}
			before, after := demand.DemandCalls(), pref.DemandCalls()
			if before == 0 {
				t.Fatal("demand run made no data-movement calls; test proves nothing")
			}
			reduction := 1 - float64(after)/float64(before)
			t.Logf("%s: demand calls %d -> %d (%.1f%% reduction), prefetch hits %d, wasted %d, late %d",
				name, before, after, 100*reduction, pref.PrefetchHits, pref.PrefetchWasted, pref.PrefetchLate)
			if reduction < 0.20 {
				t.Fatalf("demand-call reduction %.1f%% < 20%% (before %d, after %d)",
					100*reduction, before, after)
			}
		})
	}
}
