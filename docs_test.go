package actdsm_test

// Markdown link checker for the top-level documentation set. The docs
// cross-reference each other heavily (README → ARCHITECTURE → DESIGN →
// EXPERIMENTS), and a renamed heading or file silently breaks those
// links; this test fails the lint gate instead. It checks every inline
// [text](target) link whose target is relative: the file must exist,
// and an #anchor must match a heading slug (GitHub's slugging rules) in
// the target file. External http(s)/mailto links are not fetched.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// checkedDocs is the documentation set under link checking.
var checkedDocs = []string{
	"README.md",
	"DESIGN.md",
	"ARCHITECTURE.md",
	"EXPERIMENTS.md",
}

var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// stripFences removes fenced code blocks so links and headings inside
// example output are not parsed.
func stripFences(lines []string) []string {
	var out []string
	inFence := false
	for _, ln := range lines {
		if strings.HasPrefix(strings.TrimSpace(ln), "```") {
			inFence = !inFence
			continue
		}
		if !inFence {
			out = append(out, ln)
		}
	}
	return out
}

// slugify reproduces GitHub's heading-anchor slugs: lowercase, spaces to
// hyphens, everything else non-alphanumeric (except hyphen/underscore)
// dropped.
func slugify(heading string) string {
	heading = strings.TrimSpace(heading)
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// anchorsOf collects the heading slugs of a markdown file.
func anchorsOf(t *testing.T, path string) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	anchors := map[string]bool{}
	for _, ln := range stripFences(strings.Split(string(data), "\n")) {
		trimmed := strings.TrimLeft(ln, " ")
		if !strings.HasPrefix(trimmed, "#") {
			continue
		}
		heading := strings.TrimLeft(trimmed, "#")
		if heading == trimmed { // no # prefix consumed
			continue
		}
		anchors[slugify(heading)] = true
	}
	return anchors
}

func TestDocLinks(t *testing.T) {
	anchorCache := map[string]map[string]bool{}
	for _, doc := range checkedDocs {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("documentation file missing: %v", err)
		}
		body := strings.Join(stripFences(strings.Split(string(data), "\n")), "\n")
		for _, m := range linkRE.FindAllStringSubmatch(body, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			file, anchor, _ := strings.Cut(target, "#")
			// Resolve the file part. An empty file part is a same-file
			// anchor.
			resolved := doc
			if file != "" {
				resolved = filepath.Clean(filepath.Join(filepath.Dir(doc), file))
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s: broken link %q: %v", doc, target, err)
					continue
				}
			}
			if anchor == "" {
				continue
			}
			if !strings.HasSuffix(resolved, ".md") {
				continue // anchors into non-markdown files are not checked
			}
			if anchorCache[resolved] == nil {
				anchorCache[resolved] = anchorsOf(t, resolved)
			}
			if !anchorCache[resolved][anchor] {
				t.Errorf("%s: link %q: no heading with anchor #%s in %s",
					doc, target, anchor, resolved)
			}
		}
	}
}
