package actdsm

import (
	"context"
	"errors"

	"actdsm/internal/obs"
	"actdsm/internal/serve"
	"actdsm/internal/threads"
)

// Workload facade: the engine-facing contract under both application
// shapes. Epoch apps (App) and request-driven services (ServingApp) run
// through the same NewSystem/Run path; see DESIGN.md §11.
type (
	// Workload is any runnable application: a name, a thread count, a
	// shared-segment layout, and one body per thread. App satisfies it
	// structurally, so every existing epoch app is a Workload.
	Workload = threads.Workload
	// EpochApp is a batch workload with a fixed iteration count —
	// identical to the method set of App.
	EpochApp = threads.EpochWorkload
	// ServingConfig configures the online KV serving workload and its
	// closed-loop load generator (internal/serve); see the README's
	// "Serving" knobs table.
	ServingConfig = serve.Config
	// ServeReport is a serving run's stable result: achieved QPS, exact
	// p50/p99/p999 virtual latency, and per-kind transport calls over
	// the measurement span.
	ServeReport = serve.Report
	// ServeKindCalls is one message kind's call count in a ServeReport.
	ServeKindCalls = serve.KindCalls
)

// Compile-time pins for the workload API split: every epoch App is an
// EpochApp and hence a Workload, and the serving KV satisfies
// ServingApp. A drift in any method set fails the build here.
var (
	_ EpochApp   = App(nil)
	_ Workload   = EpochApp(nil)
	_ ServingApp = (*serve.KV)(nil)
)

// ServingApp is the request-driven side of the workload split: a
// Workload that serves an open-ended or window-bounded request stream,
// can be asked to stop, and reports serving measurements afterwards.
type ServingApp interface {
	Workload
	// Report returns the serving measurements; it errors until at least
	// one measured window has completed.
	Report() (*ServeReport, error)
	// Stop asks the clients to wind down at the next window boundary
	// (safe to call concurrently with the run).
	Stop()
}

// ServeLatencyBuckets is the number of buckets in
// ServeReport.LatencyHist (power-of-two virtual-time bounds, see
// ServeBucketBound).
const ServeLatencyBuckets = serve.LatencyBuckets

// ServeBucketBound returns the inclusive lower bound of a
// ServeReport.LatencyHist bucket.
var ServeBucketBound = serve.BucketBound

// ServeMetricsText renders a ServeReport in Prometheus text format,
// the serving counterpart of MetricsText.
var ServeMetricsText = obs.ServeMetricsText

// NewServingApp builds the online KV serving workload from cfg (zero
// fields take documented defaults). Run it like any workload —
// NewSystem(app, nodes, WithServing(cfg)) then Run or RunContext — and
// read app.Report() afterwards; or use the one-call ServeKV.
func NewServingApp(cfg ServingConfig) (ServingApp, error) { return serve.NewKV(cfg) }

// ServeKV runs one closed-loop KV serving benchmark: it builds the
// workload from the options' ServingConfig (WithServing), runs it under
// ctx — cancellation stops the load generator, which is how open-ended
// runs (MeasureWindows == 0) terminate — and returns the report.
func ServeKV(ctx context.Context, nodes int, opts ...SystemOption) (*ServeReport, error) {
	var cfg SystemConfig
	for _, o := range opts {
		o(&cfg)
	}
	app, err := NewServingApp(cfg.Serving)
	if err != nil {
		return nil, err
	}
	sys, err := NewSystem(app, nodes, opts...)
	if err != nil {
		return nil, err
	}
	defer func() { _ = sys.Close() }()
	if err := sys.RunContext(ctx); err != nil && !errors.Is(err, context.Canceled) {
		return nil, err
	}
	return app.Report()
}
