GO ?= go

.PHONY: check build vet test race bench bench-compare

## check: the full gate — build, vet, and the test suite under the race
## detector. This is what CI should run.
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: one benchmark per paper table/figure plus substrate
## micro-benchmarks (per-message-kind call stats are reported as metrics).
bench:
	$(GO) test -bench=. -benchmem -run '^$$'

## bench-compare: rerun the demand-vs-prefetch comparison (SOR and Ocean,
## 8 nodes, test scale), rewrite BENCH_prefetch.json, and fail if the
## prefetch configuration's demand calls regressed more than 5% against
## the committed baseline.
bench-compare:
	$(GO) run ./cmd/actbench -only prefetch \
		-prefetch-json BENCH_prefetch.json \
		-prefetch-baseline BENCH_prefetch.json
