GO ?= go

.PHONY: check build vet test race bench bench-compare fuzz-smoke sweep check-mutations

## check: the full gate — build, vet, and the test suite under the race
## detector. This is what CI should run.
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: one benchmark per paper table/figure plus substrate
## micro-benchmarks (per-message-kind call stats are reported as metrics).
bench:
	$(GO) test -bench=. -benchmem -run '^$$'

## bench-compare: rerun the demand-vs-prefetch comparison (SOR and Ocean,
## 8 nodes, test scale), rewrite BENCH_prefetch.json, and fail if the
## prefetch configuration's demand calls regressed more than 5% against
## the committed baseline.
bench-compare:
	$(GO) run ./cmd/actbench -only prefetch \
		-prefetch-json BENCH_prefetch.json \
		-prefetch-baseline BENCH_prefetch.json

## fuzz-smoke: run every fuzz target briefly (FUZZTIME each, default
## 10s). Catches codec and diff-application regressions without a long
## fuzzing campaign; CI runs this on every push.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/msg
	$(GO) test -fuzz=FuzzEncodeDecodeRoundTrip -fuzztime=$(FUZZTIME) ./internal/msg
	$(GO) test -fuzz=FuzzApplyDiff -fuzztime=$(FUZZTIME) ./internal/dsm
	$(GO) test -fuzz=FuzzDiffRoundTrip -fuzztime=$(FUZZTIME) ./internal/dsm
	$(GO) test -fuzz=FuzzTraceDecode -fuzztime=$(FUZZTIME) ./internal/trace

## sweep: the coherence model-checker (DESIGN.md §8) — SWEEP_SEEDS seeded
## schedules per scenario under seeded chaos plans with the LRC oracle
## attached. A violation prints a shrunk, ready-to-paste repro and fails.
SWEEP_SEEDS ?= 200
sweep:
	$(GO) run ./cmd/actcheck -seeds $(SWEEP_SEEDS) -q

## check-mutations: checker validation — each deliberately broken
## protocol variant must trip the oracle (the sweep FAILING is the pass).
check-mutations:
	$(GO) run ./cmd/actcheck -seeds 5 -q -expect-failure -mutation no-transitivity
	$(GO) run ./cmd/actcheck -seeds 5 -q -expect-failure -mutation no-notice-dedup
