GO ?= go

.PHONY: check build vet test race bench

## check: the full gate — build, vet, and the test suite under the race
## detector. This is what CI should run.
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: one benchmark per paper table/figure plus substrate
## micro-benchmarks (per-message-kind call stats are reported as metrics).
bench:
	$(GO) test -bench=. -benchmem -run '^$$'
