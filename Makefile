GO ?= go

.PHONY: check build vet test race lint fmt-check tools bench bench-compare bench-hotpath bench-transport doc-links fuzz-smoke sweep check-mutations

## check: the full gate — formatting, build, vet, static analysis, and
## the test suite under the race detector. This is what CI runs (CI's
## lint job additionally runs govulncheck).
check: fmt-check build vet lint race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## fmt-check: fail when any file needs gofmt.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

## lint: the documentation link checker plus staticcheck when installed
## (see 'make tools'; staticcheck.conf enables ST1000, so every package
## must keep its doc comment). Without staticcheck a skip notice is
## printed — the container image does not bake analysis tools in, CI
## installs them in the lint job.
lint: doc-links
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (run 'make tools')"; fi

## doc-links: verify every relative link and anchor in the top-level
## markdown set (README/DESIGN/ARCHITECTURE/EXPERIMENTS) resolves.
doc-links:
	$(GO) test -run TestDocLinks .

## tools: one-time install of the analysis tools check/CI use. Requires
## network access; CI's lint job runs the same installs. Versions are
## pinned so a tool release can't break CI out from under a PR (and so
## CI's ~/go/bin cache key is stable); bump them deliberately here.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4
tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: one benchmark per paper table/figure plus substrate
## micro-benchmarks (per-message-kind call stats are reported as metrics).
bench:
	$(GO) test -bench=. -benchmem -run '^$$'

## bench-compare: the benchmark regression gate. Reruns the
## demand-vs-prefetch comparison (SOR and Ocean, 8 nodes, test scale),
## rewrites BENCH_prefetch.json, and fails on a >5% demand-call
## regression against the committed baseline; reruns the
## decentralized-manager comparison (flat vs tree barrier at 64 nodes,
## centralized vs sharded locks), rewrites BENCH_managers.json, and
## fails if the tree-barrier depth exceeds 2*ceil(log2 n) or the
## sharded lock spread re-concentrates on node 0; reruns the serving
## placement ablation (ServeKV, 16 clients over 4 nodes: static vs
## min-cost vs home-migration placement), rewrites BENCH_serving.json,
## and fails on a >5% QPS or p99 regression per row or if
## home-migration stops beating static placement on p99 and QPS;
## reruns the placement-v2 controller ablation (static vs thread-only
## vs data-only vs combined on Ocean-under-GC and ServeKV over a
## fast/slow topology), rewrites BENCH_placement.json, and fails on a
## >5% elapsed or demand-call regression per row or if the combined
## controller stops beating both single-sided variants on at least one
## workload; reruns the crash-recovery comparison (fault-free vs crash vs
## crash+rejoin), rewrites BENCH_failover.json, and fails if the leg
## digests diverge (a crashed run must reproduce the fault-free memory
## byte for byte) or the recovery call counts drift; then
## reruns the hot-path locking comparison and fails if the sharded
## speedup falls below the floor or the steady-state message encode
## starts allocating; then reruns the transport wire-discipline
## comparison over real TCP sockets and fails if the mux-over-serialized
## speedup falls below the floor, the steady-state mux round trip starts
## allocating, or the deterministic heterogeneous-topology leg (SOR over
## a fast/slow cluster: virtual elapsed times and per-link call/byte
## traffic) diverges from the committed baseline. The prefetch,
## managers, serving, and placement runs are deterministic (virtual
## time), so
## regenerate-and-compare is stable; the hotpath and transport runs are
## compare-only (no -json rewrite): their TCP-leg numbers are wall-clock
## and vary between machines, so the committed BENCH_hotpath.json and
## BENCH_transport.json only change deliberately via 'make
## bench-hotpath' / 'make bench-transport'.
bench-compare:
	$(GO) run ./cmd/actbench -only prefetch \
		-prefetch-json BENCH_prefetch.json \
		-prefetch-baseline BENCH_prefetch.json
	$(GO) run ./cmd/actbench -only managers \
		-managers-json BENCH_managers.json \
		-managers-baseline BENCH_managers.json
	$(GO) run ./cmd/actbench -only serving \
		-serving-json BENCH_serving.json \
		-serving-baseline BENCH_serving.json
	$(GO) run ./cmd/actbench -only placement \
		-placement-json BENCH_placement.json \
		-placement-baseline BENCH_placement.json
	$(GO) run ./cmd/actbench -only failover \
		-failover-json BENCH_failover.json \
		-failover-baseline BENCH_failover.json
	$(GO) run ./cmd/actbench -only hotpath \
		-hotpath-baseline BENCH_hotpath.json
	$(GO) run ./cmd/actbench -only transport \
		-transport-baseline BENCH_transport.json

## bench-hotpath: regenerate the committed BENCH_hotpath.json (sharded
## vs single-mutex service throughput + encode allocs/op). Run on a
## quiet machine: generation targets >= 1.5x, the CI gate tolerates
## noisy shared runners down to 1.3x.
bench-hotpath:
	$(GO) run ./cmd/actbench -only hotpath \
		-hotpath-json BENCH_hotpath.json

## bench-transport: regenerate the committed BENCH_transport.json (mux
## vs serialized wire discipline over real TCP + mux round-trip
## allocs/op + the deterministic heterogeneous-topology leg). Run on a
## quiet machine: generation targets >= 1.5x, the CI gate tolerates
## noisy shared runners down to 1.3x.
bench-transport:
	$(GO) run ./cmd/actbench -only transport \
		-transport-json BENCH_transport.json

## fuzz-smoke: run every fuzz target briefly (FUZZTIME each, default
## 10s). Catches codec and diff-application regressions without a long
## fuzzing campaign; CI runs this on every push.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/msg
	$(GO) test -fuzz=FuzzEncodeDecodeRoundTrip -fuzztime=$(FUZZTIME) ./internal/msg
	$(GO) test -fuzz=FuzzApplyDiff -fuzztime=$(FUZZTIME) ./internal/dsm
	$(GO) test -fuzz=FuzzDiffRoundTrip -fuzztime=$(FUZZTIME) ./internal/dsm
	$(GO) test -fuzz=FuzzTraceDecode -fuzztime=$(FUZZTIME) ./internal/trace

## sweep: the coherence model-checker (DESIGN.md §8) — SWEEP_SEEDS seeded
## schedules per scenario under seeded chaos plans with the LRC oracle
## attached. A violation prints a shrunk, ready-to-paste repro and fails.
SWEEP_SEEDS ?= 200
sweep:
	$(GO) run ./cmd/actcheck -seeds $(SWEEP_SEEDS) -q

## check-mutations: checker validation — each deliberately broken
## protocol variant must trip the oracle (the sweep FAILING is the pass).
check-mutations:
	$(GO) run ./cmd/actcheck -seeds 5 -q -expect-failure -mutation no-transitivity
	$(GO) run ./cmd/actcheck -seeds 5 -q -expect-failure -mutation no-notice-dedup
