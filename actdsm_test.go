package actdsm_test

import (
	"strings"
	"testing"

	"actdsm"
	"actdsm/internal/vm"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	app, err := actdsm.NewApp("SOR", actdsm.AppConfig{Threads: 16, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := actdsm.NewSystem(app, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	tracker, err := sys.TrackIteration(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !tracker.Done() {
		t.Fatal("tracking incomplete")
	}
	m := tracker.Matrix()
	if m.N() != 16 {
		t.Fatalf("matrix size %d", m.N())
	}
	stretch := actdsm.Stretch(16, 4)
	random := actdsm.RandomBalanced(16, 4, actdsm.NewRNG(1))
	if m.CutCost(stretch) > m.CutCost(random) {
		t.Fatalf("stretch cut %d > random cut %d on SOR", m.CutCost(stretch), m.CutCost(random))
	}
	if sys.Elapsed() <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if sys.Cluster().Stats().Snapshot().RemoteMisses == 0 {
		t.Fatal("no remote misses")
	}
	if sys.App().Name() != "SOR" || sys.Layout().TotalPages() == 0 {
		t.Fatal("accessors broken")
	}
	if err := sys.Run(); err == nil {
		t.Fatal("second Run should fail")
	}
}

func TestFacadeCustomApp(t *testing.T) {
	var region actdsm.Region
	app, err := actdsm.NewCustomApp("counter", 4, 2,
		func(l *actdsm.Layout) error {
			var err error
			region, err = l.Alloc("counter.data", 4*actdsm.PageSize)
			return err
		},
		func(tid int) actdsm.Body {
			return func(ctx *actdsm.Ctx) error {
				for iter := 0; iter < 2; iter++ {
					v, err := ctx.F32(region, tid*actdsm.PageSize/4, 1, vm.Write)
					if err != nil {
						return err
					}
					v.Set(0, v.Get(0)+1)
					ctx.EndIteration()
				}
				return nil
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if app.Name() != "counter" || app.Threads() != 4 || app.Iterations() != 2 {
		t.Fatal("custom app metadata wrong")
	}
	sys, err := actdsm.NewSystem(app, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if sys.Engine().Iteration() != 2 {
		t.Fatalf("iterations = %d", sys.Engine().Iteration())
	}
}

func TestFacadeCustomAppValidation(t *testing.T) {
	setup := func(*actdsm.Layout) error { return nil }
	body := func(int) actdsm.Body { return nil }
	if _, err := actdsm.NewCustomApp("x", 0, 1, setup, body); err == nil {
		t.Fatal("expected threads error")
	}
	if _, err := actdsm.NewCustomApp("x", 1, 0, setup, body); err == nil {
		t.Fatal("expected iterations error")
	}
	if _, err := actdsm.NewCustomApp("x", 1, 1, nil, body); err == nil {
		t.Fatal("expected setup error")
	}
	if _, err := actdsm.NewCustomApp("x", 1, 1, setup, nil); err == nil {
		t.Fatal("expected body error")
	}
}

func TestFacadeSystemOverTCP(t *testing.T) {
	app, err := actdsm.NewApp("Water", actdsm.AppConfig{Threads: 8, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := actdsm.NewSystem(app, 2,
		actdsm.WithClusterConfig(actdsm.ClusterConfig{UseTCP: true, GCThresholdBytes: -1}))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if sys.Cluster().Stats().Snapshot().BytesTotal == 0 {
		t.Fatal("no bytes over TCP")
	}
}

func TestFacadeSystemOptions(t *testing.T) {
	app, err := actdsm.NewApp("SOR", actdsm.AppConfig{Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	place := []int{1, 1, 0, 0, 1, 0, 1, 0}
	sys, err := actdsm.NewSystem(app, 2,
		actdsm.WithConfig(actdsm.SystemConfig{Placement: place, ShuffleSeed: 3}))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	got := sys.Engine().Placement()
	for i := range place {
		if got[i] != place[i] {
			t.Fatalf("placement = %v", got)
		}
	}
}

func TestFacadeRunAndTables(t *testing.T) {
	res, err := actdsm.Run(actdsm.RunConfig{
		App: "Water", Threads: 8, Nodes: 4, Iterations: 2, TrackIter: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no time")
	}
	rows, err := actdsm.Table1(actdsm.ExperimentOptions{
		Threads: 8, Nodes: 2, Apps: []string{"Water"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out := actdsm.FormatTable1(rows); !strings.Contains(out, "Water") {
		t.Fatalf("table1 output:\n%s", out)
	}
}

func TestFacadeNamesAndConstants(t *testing.T) {
	names := actdsm.AppNames()
	if len(names) != 10 {
		t.Fatalf("AppNames = %v", names)
	}
	if len(actdsm.PaperApps) != 10 {
		t.Fatalf("PaperApps = %v", actdsm.PaperApps)
	}
	if actdsm.PageSize != 4096 {
		t.Fatalf("PageSize = %d", actdsm.PageSize)
	}
	app, err := actdsm.NewApp("LU1k", actdsm.AppConfig{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	pages, err := actdsm.SharedPages(app)
	if err != nil || pages <= 0 {
		t.Fatalf("SharedPages = %d, %v", pages, err)
	}
}

func TestFacadeMatrixHelpers(t *testing.T) {
	m := actdsm.NewMatrix(4)
	m.Set(0, 1, 3)
	if m.CutCost([]int{0, 1, 0, 1}) != 3 {
		t.Fatal("cut cost wrong")
	}
	if opt, err := actdsm.Optimal(m, 2); err != nil || m.CutCost(opt) != 0 {
		t.Fatalf("optimal: %v %v", opt, err)
	}
	plan := actdsm.Plan([]int{0, 0, 1, 1}, []int{1, 1, 0, 0}, 2)
	if len(plan) != 0 {
		t.Fatalf("plan after relabel = %v", plan)
	}
}

func TestFacadeTraceRoundTrip(t *testing.T) {
	app, err := actdsm.NewApp("SOR", actdsm.AppConfig{Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := actdsm.NewSystem(app, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	rec := actdsm.NewRecorder(sys.Engine())
	if err := sys.SetHooks(rec.Hooks(actdsm.Hooks{})); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	tr := rec.Trace()
	decoded, err := actdsm.DecodeTrace(tr.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded.Events) != len(tr.Events) {
		t.Fatalf("events: %d != %d", len(decoded.Events), len(tr.Events))
	}
	stats, elapsed, err := actdsm.ReplayTrace(decoded, 4,
		actdsm.WithClusterConfig(actdsm.ClusterConfig{Protocol: actdsm.MultiWriter}))
	if err != nil {
		t.Fatal(err)
	}
	if stats.RemoteMisses == 0 || elapsed <= 0 {
		t.Fatalf("replay: %d misses, %v elapsed", stats.RemoteMisses, elapsed)
	}
	// The single-writer replay of the same trace must also succeed.
	swStats, _, err := actdsm.ReplayTrace(decoded, 4,
		actdsm.WithClusterConfig(actdsm.ClusterConfig{Protocol: actdsm.SingleWriter}))
	if err != nil {
		t.Fatal(err)
	}
	if swStats.BytesDiff != 0 {
		t.Fatal("single-writer replay created diffs")
	}
}

func TestFacadeNewSystemErrors(t *testing.T) {
	app, err := actdsm.NewCustomApp("bad", 2, 1,
		func(l *actdsm.Layout) error { return errSetup },
		func(tid int) actdsm.Body {
			return func(ctx *actdsm.Ctx) error { return nil }
		})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := actdsm.NewSystem(app, 2); err == nil {
		t.Fatal("expected setup error")
	}
	// Invalid placement length surfaces from the engine.
	good, err := actdsm.NewApp("SOR", actdsm.AppConfig{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := actdsm.NewSystem(good, 2, actdsm.WithPlacement([]int{0})); err == nil {
		t.Fatal("expected placement error")
	}
	// Invalid node speeds surface from the engine.
	good2, err := actdsm.NewApp("SOR", actdsm.AppConfig{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := actdsm.NewSystem(good2, 2, actdsm.WithNodeSpeeds([]float64{1})); err == nil {
		t.Fatal("expected speeds error")
	}
}

var errSetup = errOf("setup failed")

type errOf string

func (e errOf) Error() string { return string(e) }

func TestReplayTraceErrors(t *testing.T) {
	tr := &actdsm.Trace{Threads: 2, Pages: 1, Iterations: 1}
	if _, _, err := actdsm.ReplayTrace(tr, 0,
		actdsm.WithClusterConfig(actdsm.ClusterConfig{Protocol: actdsm.MultiWriter})); err == nil {
		t.Fatal("expected error for zero nodes")
	}
}
