// Command actcheck drives the coherence model checker (internal/check):
// it replays small deterministic workloads under seeded schedules and
// chaos plans with the LRC oracle attached, and reports the first
// invariant violation as a minimal, ready-to-paste regression test.
//
// Usage:
//
//	actcheck [-seeds N] [-scenarios a,b,c] [-mutation NAME]
//	         [-max-faults N] [-workers N] [-list] [-q] [-big-tree]
//
// A clean sweep exits 0. A failure is greedily shrunk (chaos events
// removed one at a time while the violation persists) and printed as a
// repro stanza; the exit status is 1. -mutation runs every trial under a
// deliberately broken protocol (none, no-transitivity, no-notice-dedup,
// push-partial-apply) to validate that the checker detects that bug
// class — used by `make check-mutations` and CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"actdsm/internal/check"
	"actdsm/internal/dsm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "actcheck:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seeds     = flag.Int("seeds", 200, "schedules to replay per scenario")
		scens     = flag.String("scenarios", "", "comma-separated scenario subset (default: all)")
		mutFlag   = flag.String("mutation", "none", "protocol mutation: none, no-transitivity, no-notice-dedup, push-partial-apply")
		maxFaults = flag.Int("max-faults", 3, "max chaos events per generated plan")
		workers   = flag.Int("workers", 0, "parallel trials (0 = GOMAXPROCS)")
		list      = flag.Bool("list", false, "list scenarios and exit")
		quiet     = flag.Bool("q", false, "suppress progress output")
		expect    = flag.Bool("expect-failure", false, "invert the exit status: fail if the sweep is clean (mutation validation)")
		big       = flag.Bool("big-tree", false, "sweep the large simulated-cluster set (64-node tree barriers) instead of the default scenarios")
	)
	flag.Parse()

	if *list {
		for _, sc := range append(check.Scenarios(), check.BigTreeScenarios()...) {
			fmt.Printf("%-14s %s x%d, %d threads on %d nodes\n",
				sc.Name, sc.App, sc.Iterations, sc.Threads, sc.Nodes)
		}
		return nil
	}

	mut, err := parseMutation(*mutFlag)
	if err != nil {
		return err
	}
	var scenarios []check.Scenario
	if *big {
		scenarios = check.BigTreeScenarios()
	}
	if *scens != "" {
		scenarios = nil
		for _, name := range strings.Split(*scens, ",") {
			sc, err := check.ScenarioByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			scenarios = append(scenarios, sc)
		}
	}

	cfg := check.SweepConfig{
		Scenarios: scenarios,
		Seeds:     *seeds,
		MaxFaults: *maxFaults,
		Mutation:  mut,
		Workers:   *workers,
	}
	if !*quiet {
		cfg.Progress = func(done, total int) {
			if done%50 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\ractcheck: %d/%d trials", done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}

	res, err := check.Sweep(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("sweep: %d trials, %d aborted, mutation=%s, %.2fs\n",
		res.Trials, res.Aborted, mut, res.Elapsed.Seconds())

	if res.Failure == nil {
		if *expect {
			return fmt.Errorf("mutation %s: sweep was clean, expected the checker to trip", mut)
		}
		fmt.Println("clean: no invariant violations")
		return nil
	}

	f := check.Shrink(res.Failure)
	fmt.Printf("FAIL: scenario %s seed %d plan %s mutation %s\n",
		f.Scenario.Name, f.Seed, f.Plan, f.Mutation)
	for _, v := range f.Violations {
		fmt.Printf("  %s\n", v)
	}
	fmt.Printf("\nminimal repro (paste into internal/check):\n\n%s\n", f.ReproStanza())
	if *expect {
		fmt.Printf("mutation %s detected as expected\n", mut)
		return nil
	}
	os.Exit(1)
	return nil
}

func parseMutation(s string) (dsm.Mutation, error) {
	for _, m := range []dsm.Mutation{
		dsm.MutationNone, dsm.MutationNoTransitivity,
		dsm.MutationNoNoticeDedup, dsm.MutationPushPartialApply,
	} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown mutation %q (want none, no-transitivity, no-notice-dedup, or push-partial-apply)", s)
}
