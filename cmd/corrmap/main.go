// Command corrmap renders the correlation map of one application
// configuration, obtained by active correlation tracking.
//
// Usage:
//
//	corrmap -app FFT6 [-threads 64] [-nodes 8] [-scale test|paper]
//	        [-pgm out.pgm] [-free-zones nodes]
//
// The map prints as ASCII shading (darker = more sharing, origin at the
// lower left, as in the paper's Table 3). With -pgm it is also written as
// a portable graymap. With -free-zones N the map is overlaid with the
// intra-node "free zones" of a contiguous N-node placement (Figure 3).
package main

import (
	"flag"
	"fmt"
	"os"

	"actdsm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "corrmap:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		app       = flag.String("app", "SOR", "application name")
		threads   = flag.Int("threads", 64, "application threads")
		nodes     = flag.Int("nodes", 8, "cluster nodes for the tracked run")
		scaleFlag = flag.String("scale", "test", "input scale: test or paper")
		pgm       = flag.String("pgm", "", "also write a PGM image to this path")
		svg       = flag.String("svg", "", "also write an SVG heatmap to this path")
		freeZones = flag.Int("free-zones", 0, "overlay free zones of a contiguous N-node placement")
	)
	flag.Parse()

	scale := actdsm.ScaleTest
	if *scaleFlag == "paper" {
		scale = actdsm.ScalePaper
	} else if *scaleFlag != "test" {
		return fmt.Errorf("unknown scale %q", *scaleFlag)
	}

	m, err := actdsm.TrackMatrix(*app, *threads, *nodes, scale)
	if err != nil {
		return err
	}
	s := actdsm.Summarize(m)
	fmt.Printf("%s, %d threads: total sharing %d, diagonal %.0f%%, background %.0f%% of pairs\n",
		*app, *threads, m.TotalSharing(), 100*s.DiagonalFrac, 100*s.BackgroundFrac)
	if *freeZones > 0 {
		assign := actdsm.Stretch(*threads, *freeZones)
		fmt.Printf("free zones for %d contiguous nodes (cut cost %d, free sharing %.1f%%):\n%s",
			*freeZones, m.CutCost(assign), 100*m.FreeSharing(assign), m.FreeZoneOverlay(assign))
	} else {
		fmt.Print(m.RenderASCII())
	}
	if *pgm != "" {
		if err := os.WriteFile(*pgm, []byte(m.RenderPGM()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *pgm)
	}
	if *svg != "" {
		var assign []int
		if *freeZones > 0 {
			assign = actdsm.Stretch(*threads, *freeZones)
		}
		if err := os.WriteFile(*svg, []byte(m.RenderSVG(8, assign)), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *svg)
	}
	return nil
}
