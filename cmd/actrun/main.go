// Command actrun executes one application under a chosen placement policy
// and prints run statistics — a quick way to compare placements.
//
// Usage:
//
//	actrun -app LU1k [-threads 64] [-nodes 8] [-iters 5]
//	       [-placement stretch|mincost|random] [-scale test|paper]
//	       [-seed N] [-verify] [-tcp]
//	       [-trace-out FILE] [-metrics-out FILE] [-breakdown]
//
// The mincost policy first runs a short tracked execution to obtain
// thread correlations, then derives the placement with the min-cost
// heuristic (paper §5.1).
//
// -trace-out, -metrics-out, and -breakdown enable the observability
// recorder (DESIGN.md §9) and export the run's Perfetto timeline, a
// Prometheus-style metrics dump, and the per-epoch time breakdown.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"actdsm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "actrun:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		app       = flag.String("app", "SOR", "application name")
		threads   = flag.Int("threads", 64, "application threads")
		nodes     = flag.Int("nodes", 8, "cluster nodes")
		iters     = flag.Int("iters", 5, "iterations to run")
		policy    = flag.String("placement", "stretch", "stretch, mincost, or random")
		scaleFlag = flag.String("scale", "test", "input scale: test or paper")
		seed      = flag.Uint64("seed", 1, "seed for the random policy")
		verify    = flag.Bool("verify", false, "enable numerical verification")
		useTCP    = flag.Bool("tcp", false, "run the DSM protocol over loopback TCP")
		traceOut  = flag.String("trace-out", "", "write a Perfetto/Chrome trace-event JSON timeline to this file")
		metricOut = flag.String("metrics-out", "", "write a Prometheus-style metrics dump to this file")
		breakdown = flag.Bool("breakdown", false, "print the per-epoch time breakdown")
	)
	flag.Parse()
	observe := *traceOut != "" || *metricOut != "" || *breakdown

	scale := actdsm.ScaleTest
	if *scaleFlag == "paper" {
		scale = actdsm.ScalePaper
	} else if *scaleFlag != "test" {
		return fmt.Errorf("unknown scale %q", *scaleFlag)
	}

	var assign []int
	var cut int64 = -1
	switch *policy {
	case "stretch":
		assign = actdsm.Stretch(*threads, *nodes)
	case "random":
		assign = actdsm.RandomBalanced(*threads, *nodes, actdsm.NewRNG(*seed))
	case "mincost":
		m, err := actdsm.TrackMatrix(*app, *threads, *nodes, scale)
		if err != nil {
			return fmt.Errorf("tracking run: %w", err)
		}
		assign = actdsm.MinCost(m, *nodes)
		cut = m.CutCost(assign)
	default:
		return fmt.Errorf("unknown placement policy %q", *policy)
	}

	appInst, err := actdsm.NewApp(*app, actdsm.AppConfig{
		Threads: *threads, Iterations: *iters, Verify: *verify, Scale: scale,
	})
	if err != nil {
		return err
	}
	opts := []actdsm.SystemOption{actdsm.WithPlacement(assign)}
	if *useTCP {
		opts = append(opts, actdsm.WithTCP())
	}
	if observe {
		opts = append(opts, actdsm.WithObservability())
	}
	sys, err := actdsm.NewSystem(appInst, *nodes, opts...)
	if err != nil {
		return err
	}
	defer func() { _ = sys.Close() }()
	if err := sys.Run(); err != nil {
		return err
	}

	st := sys.Cluster().Stats().Snapshot()
	fmt.Printf("%s  threads=%d nodes=%d iters=%d placement=%s\n",
		*app, *threads, *nodes, sys.Engine().Iteration(), *policy)
	if cut >= 0 {
		fmt.Printf("  cut cost        %d\n", cut)
	}
	fmt.Printf("  simulated time  %.4f s\n", sys.Elapsed().Seconds())
	fmt.Printf("  remote misses   %d\n", st.RemoteMisses)
	fmt.Printf("  messages        %d\n", st.Messages)
	fmt.Printf("  total bytes     %.2f MB\n", float64(st.BytesTotal)/1e6)
	fmt.Printf("  diff bytes      %.2f MB\n", float64(st.BytesDiff)/1e6)
	fmt.Printf("  barriers        %d\n", st.Barriers)
	fmt.Printf("  lock acquires   %d\n", st.LockAcquires)
	fmt.Printf("  gc rounds       %d (pages collected %d)\n", st.GCRounds, st.GCCollections)

	if observe {
		rec := sys.Recorder()
		if *breakdown {
			fmt.Printf("\nper-epoch breakdown:\n%s", rec.Breakdown().String())
		}
		if *traceOut != "" {
			if err := writeWith(*traceOut, rec.WriteTrace); err != nil {
				return err
			}
			fmt.Printf("(wrote %s — open in ui.perfetto.dev)\n", *traceOut)
		}
		if *metricOut != "" {
			err := writeWith(*metricOut, func(w io.Writer) error {
				return rec.WriteMetrics(st, w)
			})
			if err != nil {
				return err
			}
			fmt.Printf("(wrote %s)\n", *metricOut)
		}
	}
	return nil
}

// writeWith creates path, streams through f, and closes it.
func writeWith(path string, f func(io.Writer) error) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f(file); err != nil {
		_ = file.Close()
		return err
	}
	return file.Close()
}
