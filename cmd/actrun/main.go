// Command actrun executes one application under a chosen placement policy
// and prints run statistics — a quick way to compare placements.
//
// Usage:
//
//	actrun -app LU1k [-threads 64] [-nodes 8] [-iters 5]
//	       [-placement stretch|mincost|random] [-scale test|paper]
//	       [-seed N] [-verify] [-tcp]
//
// The mincost policy first runs a short tracked execution to obtain
// thread correlations, then derives the placement with the min-cost
// heuristic (paper §5.1).
package main

import (
	"flag"
	"fmt"
	"os"

	"actdsm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "actrun:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		app       = flag.String("app", "SOR", "application name")
		threads   = flag.Int("threads", 64, "application threads")
		nodes     = flag.Int("nodes", 8, "cluster nodes")
		iters     = flag.Int("iters", 5, "iterations to run")
		policy    = flag.String("placement", "stretch", "stretch, mincost, or random")
		scaleFlag = flag.String("scale", "test", "input scale: test or paper")
		seed      = flag.Uint64("seed", 1, "seed for the random policy")
		verify    = flag.Bool("verify", false, "enable numerical verification")
		useTCP    = flag.Bool("tcp", false, "run the DSM protocol over loopback TCP")
	)
	flag.Parse()

	scale := actdsm.ScaleTest
	if *scaleFlag == "paper" {
		scale = actdsm.ScalePaper
	} else if *scaleFlag != "test" {
		return fmt.Errorf("unknown scale %q", *scaleFlag)
	}

	var assign []int
	var cut int64 = -1
	switch *policy {
	case "stretch":
		assign = actdsm.Stretch(*threads, *nodes)
	case "random":
		assign = actdsm.RandomBalanced(*threads, *nodes, actdsm.NewRNG(*seed))
	case "mincost":
		m, err := actdsm.TrackMatrix(*app, *threads, *nodes, scale)
		if err != nil {
			return fmt.Errorf("tracking run: %w", err)
		}
		assign = actdsm.MinCost(m, *nodes)
		cut = m.CutCost(assign)
	default:
		return fmt.Errorf("unknown placement policy %q", *policy)
	}

	appInst, err := actdsm.NewApp(*app, actdsm.AppConfig{
		Threads: *threads, Iterations: *iters, Verify: *verify, Scale: scale,
	})
	if err != nil {
		return err
	}
	opts := []actdsm.SystemOption{actdsm.WithPlacement(assign)}
	if *useTCP {
		opts = append(opts, actdsm.WithTCP())
	}
	sys, err := actdsm.NewSystem(appInst, *nodes, opts...)
	if err != nil {
		return err
	}
	defer func() { _ = sys.Close() }()
	if err := sys.Run(); err != nil {
		return err
	}

	st := sys.Cluster().Stats().Snapshot()
	fmt.Printf("%s  threads=%d nodes=%d iters=%d placement=%s\n",
		*app, *threads, *nodes, sys.Engine().Iteration(), *policy)
	if cut >= 0 {
		fmt.Printf("  cut cost        %d\n", cut)
	}
	fmt.Printf("  simulated time  %.4f s\n", sys.Elapsed().Seconds())
	fmt.Printf("  remote misses   %d\n", st.RemoteMisses)
	fmt.Printf("  messages        %d\n", st.Messages)
	fmt.Printf("  total bytes     %.2f MB\n", float64(st.BytesTotal)/1e6)
	fmt.Printf("  diff bytes      %.2f MB\n", float64(st.BytesDiff)/1e6)
	fmt.Printf("  barriers        %d\n", st.Barriers)
	fmt.Printf("  lock acquires   %d\n", st.LockAcquires)
	fmt.Printf("  gc rounds       %d (pages collected %d)\n", st.GCRounds, st.GCCollections)
	return nil
}
