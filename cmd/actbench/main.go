// Command actbench regenerates the paper's tables and figures.
//
// Usage:
//
//	actbench [-scale test|paper] [-threads N] [-nodes N] [-configs N]
//	         [-seed N] [-apps a,b,c] [-only table2,figure3] [-maps-dir DIR]
//
// With no -only flag every experiment runs in paper order. -scale test
// (the default) finishes in seconds; -scale paper uses the Table 1 inputs
// and can take tens of minutes. The extra "transport" section (not part
// of the paper) prints per-message-type call statistics — counts, wire
// bytes, retries, and latency quantiles — for one run over each
// transport. The "prefetch" section compares demand-only runs against
// the correlation-driven prefetch + batched-diff layer (DESIGN.md §7) on
// SOR and Ocean; -prefetch-json writes the comparison to a file
// (BENCH_prefetch.json in CI) and -prefetch-baseline fails the run when
// the prefetch configuration's demand calls regress more than 5% against
// a committed baseline. The "managers" section compares the flat
// single-manager barrier against the tree topology and centralized
// against sharded lock management (DESIGN.md §10); -managers-json and
// -managers-baseline drive the deterministic BENCH_managers.json gate
// the same way. The "serving" section runs the online KV workload
// (internal/serve, DESIGN.md §11) under static, min-cost, and
// home-migration placement and reports throughput plus p50/p99/p999
// virtual latency; -serving-json and -serving-baseline drive the
// deterministic BENCH_serving.json gate, which additionally requires
// home migration to beat static placement on both p99 and QPS. The
// "failover" section runs the crash-recovery comparison (DESIGN.md §12):
// the same workload fault-free, with a mid-run node crash, and with a
// crash plus rejoin — all three legs must produce byte-identical memory;
// -failover-json and -failover-baseline drive the deterministic
// BENCH_failover.json gate, which also pins the recovery call counts.
// The "placement" section runs the placement-v2 controller ablation
// (DESIGN.md §14) — static, thread-only, data-only, and combined online
// co-orchestration of thread placement and page homes over a fast/slow
// topology; -placement-json and -placement-baseline drive the
// deterministic BENCH_placement.json gate, which also requires the
// combined controller to beat both single-sided variants on at least
// one workload.
//
// The "sor" section runs one observed SOR workload and prints its
// per-epoch time breakdown (DESIGN.md §9). With -trace-out it writes a
// Chrome trace-event / Perfetto JSON timeline (open in ui.perfetto.dev),
// with -metrics-out a Prometheus-style text dump of every protocol
// counter, and with -pprof a CPU profile of the whole actbench run:
//
//	actbench -only sor -trace-out sor.json -metrics-out sor.metrics
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"time"

	"actdsm"
	"actdsm/internal/check"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "actbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scaleFlag = flag.String("scale", "test", "input scale: test or paper")
		threads   = flag.Int("threads", 64, "application threads")
		nodes     = flag.Int("nodes", 8, "cluster nodes")
		configs   = flag.Int("configs", 0, "random configurations for Table 2 (0 = default)")
		seed      = flag.Uint64("seed", 1999, "random seed")
		appsFlag  = flag.String("apps", "", "comma-separated app subset (default: paper set)")
		only      = flag.String("only", "", "comma-separated experiments (table1..table6, figure2, figure3, ablation, prefetch, hotpath, managers, serving, placement, failover, check, transport, sor)")
		mapsDir   = flag.String("maps-dir", "", "write correlation maps as PGM files to this directory")
		fig1CSV   = flag.String("figure1-csv", "", "write the Figure 1 scatter (Table 2 data) as CSV to this file")
		prefJSON  = flag.String("prefetch-json", "", "write the prefetch comparison report as JSON to this file")
		prefBase  = flag.String("prefetch-baseline", "", "compare the prefetch report against this committed baseline; fail on >5% demand-call regression")
		hotJSON   = flag.String("hotpath-json", "", "write the hot-path locking comparison report as JSON to this file")
		hotBase   = flag.String("hotpath-baseline", "", "compare the hot-path report against this committed baseline; fail when the sharded speedup or encode allocation floor regresses")
		mgrJSON   = flag.String("managers-json", "", "write the decentralized-manager comparison report as JSON to this file")
		mgrBase   = flag.String("managers-baseline", "", "compare the managers report against this committed baseline; fail when the tree-barrier depth or the sharded lock spread regresses")
		srvJSON   = flag.String("serving-json", "", "write the serving placement-ablation report as JSON to this file")
		srvBase   = flag.String("serving-baseline", "", "compare the serving report against this committed baseline; fail on >5% QPS/p99 regression or when home migration stops beating static placement")
		plcJSON   = flag.String("placement-json", "", "write the placement-v2 controller ablation report as JSON to this file")
		plcBase   = flag.String("placement-baseline", "", "compare the placement report against this committed baseline; fail on >5% elapsed/demand-call regression or when the combined controller stops beating both single-sided variants")
		ftJSON    = flag.String("failover-json", "", "write the crash-recovery comparison report as JSON to this file")
		ftBase    = flag.String("failover-baseline", "", "compare the failover report against this committed baseline; fail when the leg digests diverge or the recovery call counts drift")
		trJSON    = flag.String("transport-json", "", "write the mux-vs-serialized transport comparison report as JSON to this file")
		trBase    = flag.String("transport-baseline", "", "compare the transport report against this committed baseline; fail when the mux speedup or send-path allocation floor regresses, or the deterministic heterogeneous leg diverges")
		traceOut  = flag.String("trace-out", "", "write a Perfetto/Chrome trace-event JSON timeline of the sor section to this file")
		metricOut = flag.String("metrics-out", "", "write a Prometheus-style metrics dump of the sor section to this file")
		pprofOut  = flag.String("pprof", "", "write a CPU profile of the whole run to this file")
	)
	flag.Parse()

	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	opts := actdsm.ExperimentOptions{
		Threads:       *threads,
		Nodes:         *nodes,
		RandomConfigs: *configs,
		Seed:          *seed,
	}
	switch *scaleFlag {
	case "test":
		opts.Scale = actdsm.ScaleTest
	case "paper":
		opts.Scale = actdsm.ScalePaper
	default:
		return fmt.Errorf("unknown scale %q", *scaleFlag)
	}
	if *appsFlag != "" {
		opts.Apps = strings.Split(*appsFlag, ",")
	}

	want := map[string]bool{}
	if *only != "" {
		for _, e := range strings.Split(*only, ",") {
			want[strings.TrimSpace(e)] = true
		}
	}
	selected := func(name string) bool { return len(want) == 0 || want[name] }

	if selected("table1") {
		if err := section("Table 1: application characteristics", func() (string, error) {
			rows, err := actdsm.Table1(opts)
			if err != nil {
				return "", err
			}
			return actdsm.FormatTable1(rows), nil
		}); err != nil {
			return err
		}
	}
	if selected("table2") {
		if err := section("Table 2: remote misses as a function of cut costs", func() (string, error) {
			rows, err := actdsm.Table2(opts)
			if err != nil {
				return "", err
			}
			if *fig1CSV != "" {
				if err := os.WriteFile(*fig1CSV, []byte(actdsm.Table2CSV(rows)), 0o644); err != nil {
					return "", err
				}
			}
			return actdsm.FormatTable2(rows), nil
		}); err != nil {
			return err
		}
	}
	if selected("table3") {
		if err := section("Table 3: correlation maps (32/48/64 threads)", func() (string, error) {
			maps, err := actdsm.Table3(opts)
			if err != nil {
				return "", err
			}
			return renderMaps(maps, *mapsDir)
		}); err != nil {
			return err
		}
	}
	if selected("table4") {
		if err := section("Table 4: 64-thread FFT versus input set", func() (string, error) {
			maps, err := actdsm.Table4(opts)
			if err != nil {
				return "", err
			}
			return renderMaps(maps, *mapsDir)
		}); err != nil {
			return err
		}
	}
	if selected("table5") {
		if err := section("Table 5: tracking overhead", func() (string, error) {
			rows, err := actdsm.Table5(opts)
			if err != nil {
				return "", err
			}
			return actdsm.FormatTable5(rows), nil
		}); err != nil {
			return err
		}
	}
	if selected("figure2") {
		if err := section("Figure 2: passive information gathering", func() (string, error) {
			series, err := actdsm.Figure2(opts)
			if err != nil {
				return "", err
			}
			return actdsm.FormatFigure2(series), nil
		}); err != nil {
			return err
		}
	}
	if selected("figure3") {
		if err := section("Figure 3: 32-thread FFT free zones", func() (string, error) {
			cfgs, err := actdsm.Figure3(opts)
			if err != nil {
				return "", err
			}
			return actdsm.FormatFigure3(cfgs), nil
		}); err != nil {
			return err
		}
	}
	if selected("table6") {
		if err := section("Table 6: 8-node performance by heuristic", func() (string, error) {
			rows, err := actdsm.Table6(opts)
			if err != nil {
				return "", err
			}
			return actdsm.FormatTable6(rows), nil
		}); err != nil {
			return err
		}
	}
	if selected("ablation") {
		if err := section("Ablation: heuristic quality (paper §5.1)", func() (string, error) {
			rows, err := actdsm.AblationHeuristics(opts)
			if err != nil {
				return "", err
			}
			return actdsm.FormatAblationHeuristics(rows), nil
		}); err != nil {
			return err
		}
		if err := section("Ablation: tracking-cost scaling (paper §4.2)", func() (string, error) {
			rows, err := actdsm.AblationScaling(opts)
			if err != nil {
				return "", err
			}
			return actdsm.FormatAblationScaling(rows), nil
		}); err != nil {
			return err
		}
		if err := section("Ablation: page-count vs access-density correlation (paper §1)", func() (string, error) {
			rows, err := actdsm.AblationDensity(opts)
			if err != nil {
				return "", err
			}
			return actdsm.FormatAblationDensity(rows), nil
		}); err != nil {
			return err
		}
		if err := section("Ablation: multi-writer vs single-writer protocol (paper §6)", func() (string, error) {
			rows, err := actdsm.AblationProtocol(opts)
			if err != nil {
				return "", err
			}
			return actdsm.FormatAblationProtocol(rows), nil
		}); err != nil {
			return err
		}
	}
	if selected("prefetch") {
		if err := section("Prefetch: demand vs correlation-driven prefetch + batching", func() (string, error) {
			// Defaults to the acceptance pair (SOR and Ocean) unless
			// -apps overrides; the committed baseline uses the default.
			rows, err := actdsm.PrefetchComparison(opts)
			if err != nil {
				return "", err
			}
			out := actdsm.FormatPrefetchComparison(rows)
			report, err := actdsm.PrefetchReportJSON(opts, rows)
			if err != nil {
				return "", err
			}
			// Read the baseline before (possibly) overwriting it: the
			// Makefile's bench-compare target points both flags at the
			// committed BENCH_prefetch.json.
			var baseline []byte
			if *prefBase != "" {
				baseline, err = os.ReadFile(*prefBase)
				if err != nil {
					return "", err
				}
			}
			if *prefJSON != "" {
				if err := os.WriteFile(*prefJSON, report, 0o644); err != nil {
					return "", err
				}
				out += fmt.Sprintf("\n(wrote %s)\n", *prefJSON)
			}
			if baseline != nil {
				cmp, err := actdsm.ComparePrefetchReports(baseline, report, 0.05)
				out += "\n-- vs baseline " + *prefBase + " --\n" + cmp
				if err != nil {
					fmt.Print(out)
					return "", err
				}
			}
			return out, nil
		}); err != nil {
			return err
		}
	}
	if selected("hotpath") {
		if err := section("Hotpath: sharded vs single-mutex service throughput", func() (string, error) {
			rep, err := actdsm.HotpathComparison()
			if err != nil {
				return "", err
			}
			out := actdsm.FormatHotpathReport(rep)
			report, err := actdsm.HotpathReportJSON(rep)
			if err != nil {
				return "", err
			}
			// Read the baseline before (possibly) overwriting it: the
			// Makefile's bench-compare target points both flags at the
			// committed BENCH_hotpath.json.
			var baseline []byte
			if *hotBase != "" {
				baseline, err = os.ReadFile(*hotBase)
				if err != nil {
					return "", err
				}
			}
			if *hotJSON != "" {
				if err := os.WriteFile(*hotJSON, report, 0o644); err != nil {
					return "", err
				}
				out += fmt.Sprintf("\n(wrote %s)\n", *hotJSON)
			}
			if baseline != nil {
				cmp, err := actdsm.CompareHotpathReports(baseline, report)
				out += "\n-- vs baseline " + *hotBase + " --\n" + cmp
				if err != nil {
					fmt.Print(out)
					return "", err
				}
			}
			return out, nil
		}); err != nil {
			return err
		}
	}
	if selected("managers") {
		if err := section("Managers: flat vs tree barrier, centralized vs sharded locks", func() (string, error) {
			rep, err := actdsm.ManagersComparison()
			if err != nil {
				return "", err
			}
			out := actdsm.FormatManagersReport(rep)
			report, err := actdsm.ManagersReportJSON(rep)
			if err != nil {
				return "", err
			}
			// Read the baseline before (possibly) overwriting it: the
			// Makefile's bench-compare target points both flags at the
			// committed BENCH_managers.json.
			var baseline []byte
			if *mgrBase != "" {
				baseline, err = os.ReadFile(*mgrBase)
				if err != nil {
					return "", err
				}
			}
			if *mgrJSON != "" {
				if err := os.WriteFile(*mgrJSON, report, 0o644); err != nil {
					return "", err
				}
				out += fmt.Sprintf("\n(wrote %s)\n", *mgrJSON)
			}
			if baseline != nil {
				cmp, err := actdsm.CompareManagersReports(baseline, report)
				out += "\n-- vs baseline " + *mgrBase + " --\n" + cmp
				if err != nil {
					fmt.Print(out)
					return "", err
				}
			}
			return out, nil
		}); err != nil {
			return err
		}
	}
	if selected("serving") {
		if err := section("Serving: KV workload under static/min-cost/home-migration placement", func() (string, error) {
			rep, err := actdsm.ServingComparison()
			if err != nil {
				return "", err
			}
			out := actdsm.FormatServingReport(rep)
			report, err := actdsm.ServingReportJSON(rep)
			if err != nil {
				return "", err
			}
			// Read the baseline before (possibly) overwriting it: the
			// Makefile's bench-compare target points both flags at the
			// committed BENCH_serving.json.
			var baseline []byte
			if *srvBase != "" {
				baseline, err = os.ReadFile(*srvBase)
				if err != nil {
					return "", err
				}
			}
			if *srvJSON != "" {
				if err := os.WriteFile(*srvJSON, report, 0o644); err != nil {
					return "", err
				}
				out += fmt.Sprintf("\n(wrote %s)\n", *srvJSON)
			}
			if baseline != nil {
				cmp, err := actdsm.CompareServingReports(baseline, report)
				out += "\n-- vs baseline " + *srvBase + " --\n" + cmp
				if err != nil {
					fmt.Print(out)
					return "", err
				}
			}
			return out, nil
		}); err != nil {
			return err
		}
	}
	if selected("placement") {
		if err := section("Placement v2: static/thread/data/combined controller ablation", func() (string, error) {
			rep, err := actdsm.PlacementComparison()
			if err != nil {
				return "", err
			}
			out := actdsm.FormatPlacementReport(rep)
			report, err := actdsm.PlacementReportJSON(rep)
			if err != nil {
				return "", err
			}
			// Read the baseline before (possibly) overwriting it: the
			// Makefile's bench-compare target points both flags at the
			// committed BENCH_placement.json.
			var baseline []byte
			if *plcBase != "" {
				baseline, err = os.ReadFile(*plcBase)
				if err != nil {
					return "", err
				}
			}
			if *plcJSON != "" {
				if err := os.WriteFile(*plcJSON, report, 0o644); err != nil {
					return "", err
				}
				out += fmt.Sprintf("\n(wrote %s)\n", *plcJSON)
			}
			if baseline != nil {
				cmp, err := actdsm.ComparePlacementReports(baseline, report)
				out += "\n-- vs baseline " + *plcBase + " --\n" + cmp
				if err != nil {
					fmt.Print(out)
					return "", err
				}
			}
			return out, nil
		}); err != nil {
			return err
		}
	}
	if selected("failover") {
		if err := section("Failover: crash recovery vs fault-free baseline", func() (string, error) {
			rep, err := actdsm.FailoverComparison()
			if err != nil {
				return "", err
			}
			out := actdsm.FormatFailoverReport(rep)
			report, err := actdsm.FailoverReportJSON(rep)
			if err != nil {
				return "", err
			}
			// Read the baseline before (possibly) overwriting it: the
			// Makefile's bench-compare target points both flags at the
			// committed BENCH_failover.json.
			var baseline []byte
			if *ftBase != "" {
				baseline, err = os.ReadFile(*ftBase)
				if err != nil {
					return "", err
				}
			}
			if *ftJSON != "" {
				if err := os.WriteFile(*ftJSON, report, 0o644); err != nil {
					return "", err
				}
				out += fmt.Sprintf("\n(wrote %s)\n", *ftJSON)
			}
			if baseline != nil {
				cmp, err := actdsm.CompareFailoverReports(baseline, report)
				out += "\n-- vs baseline " + *ftBase + " --\n" + cmp
				if err != nil {
					fmt.Print(out)
					return "", err
				}
			}
			return out, nil
		}); err != nil {
			return err
		}
	}
	if selected("check") {
		if err := section("Check: coherence model-checker sweep", func() (string, error) {
			seeds := 50
			if opts.Scale == actdsm.ScalePaper {
				seeds = 1000
			}
			return checkSweep(seeds)
		}); err != nil {
			return err
		}
	}
	if selected("transport") {
		if err := section("Transport: per-message call statistics (SOR)", func() (string, error) {
			return transportStats(*threads, *nodes, opts.Scale)
		}); err != nil {
			return err
		}
		if err := section("Transport: mux vs serialized wire discipline (real TCP)", func() (string, error) {
			rep, err := actdsm.TransportComparison()
			if err != nil {
				return "", err
			}
			out := actdsm.FormatTransportReport(rep)
			report, err := actdsm.TransportReportJSON(rep)
			if err != nil {
				return "", err
			}
			// Read the baseline before (possibly) overwriting it: the
			// Makefile's bench-compare target points both flags at the
			// committed BENCH_transport.json.
			var baseline []byte
			if *trBase != "" {
				baseline, err = os.ReadFile(*trBase)
				if err != nil {
					return "", err
				}
			}
			if *trJSON != "" {
				if err := os.WriteFile(*trJSON, report, 0o644); err != nil {
					return "", err
				}
				out += fmt.Sprintf("\n(wrote %s)\n", *trJSON)
			}
			if baseline != nil {
				cmp, err := actdsm.CompareTransportReports(baseline, report)
				out += "\n-- vs baseline " + *trBase + " --\n" + cmp
				if err != nil {
					fmt.Print(out)
					return "", err
				}
			}
			return out, nil
		}); err != nil {
			return err
		}
	}
	if selected("sor") {
		if err := section("SOR: observed run, per-epoch time breakdown (DESIGN.md §9)", func() (string, error) {
			return observedSOR(*threads, *nodes, opts.Scale, *traceOut, *metricOut)
		}); err != nil {
			return err
		}
	}
	return nil
}

// observedSOR runs one deterministic SOR workload with the observability
// recorder enabled and renders its per-epoch breakdown; traceOut and
// metricsOut optionally receive the Perfetto timeline and the metrics
// dump of the same run.
func observedSOR(threads, nodes int, scale actdsm.Scale, traceOut, metricsOut string) (string, error) {
	app, err := actdsm.NewApp("SOR", actdsm.AppConfig{Threads: threads, Scale: scale})
	if err != nil {
		return "", err
	}
	sys, err := actdsm.NewSystem(app, nodes,
		actdsm.WithObservability(),
		actdsm.WithClusterConfig(actdsm.ClusterConfig{BatchDiffs: true, PrefetchBudget: -1}),
	)
	if err != nil {
		return "", err
	}
	defer func() { _ = sys.Close() }()
	if err := sys.Run(); err != nil {
		return "", err
	}
	rec := sys.Recorder()
	out := rec.Breakdown().String()
	if dropped := rec.Dropped(); dropped > 0 {
		out += fmt.Sprintf("(ring dropped %d events; raise ObsConfig.BufferEvents)\n", dropped)
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return "", err
		}
		if err := rec.WriteTrace(f); err != nil {
			_ = f.Close()
			return "", err
		}
		if err := f.Close(); err != nil {
			return "", err
		}
		out += fmt.Sprintf("(wrote %s — open in ui.perfetto.dev)\n", traceOut)
	}
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			return "", err
		}
		if err := rec.WriteMetrics(sys.Cluster().Stats().Snapshot(), f); err != nil {
			_ = f.Close()
			return "", err
		}
		if err := f.Close(); err != nil {
			return "", err
		}
		out += fmt.Sprintf("(wrote %s)\n", metricsOut)
	}
	return out, nil
}

// checkSweep runs a short coherence model-checker sweep (DESIGN.md §8)
// across every checker scenario: seeded schedules under seeded chaos
// plans with the LRC oracle attached. Any violation is shrunk to a
// minimal repro and fails the section. Use cmd/actcheck for longer
// sweeps and mutation validation.
func checkSweep(seeds int) (string, error) {
	res, err := check.Sweep(check.SweepConfig{Seeds: seeds})
	if err != nil {
		return "", err
	}
	out := fmt.Sprintf("%d trials across %d scenarios, %d aborted, %.2fs\n",
		res.Trials, len(check.Scenarios()), res.Aborted, res.Elapsed.Seconds())
	if res.Failure != nil {
		f := check.Shrink(res.Failure)
		return "", fmt.Errorf("coherence violation (minimal repro below)\n%s", f.ReproStanza())
	}
	return out + "clean: no invariant violations\n", nil
}

// transportStats runs one SOR workload over each transport and renders
// the per-message-type call table: counts, wire bytes, retries, and
// latency quantiles. Not part of the paper; it exercises the resilience
// layer (DESIGN.md §6) and shows where protocol time goes.
func transportStats(threads, nodes int, scale actdsm.Scale) (string, error) {
	var b strings.Builder
	for _, useTCP := range []bool{false, true} {
		app, err := actdsm.NewApp("SOR", actdsm.AppConfig{Threads: threads, Scale: scale})
		if err != nil {
			return "", err
		}
		name := "local"
		sysOpts := []actdsm.SystemOption{
			actdsm.WithTransportOptions(actdsm.TransportOptions{MaxAttempts: 3}),
		}
		if useTCP {
			name = "tcp"
			sysOpts = append(sysOpts, actdsm.WithTCP())
		}
		sys, err := actdsm.NewSystem(app, nodes, sysOpts...)
		if err != nil {
			return "", err
		}
		runErr := sys.Run()
		snap := sys.Cluster().Stats().Snapshot()
		_ = sys.Close()
		if runErr != nil {
			return "", fmt.Errorf("%s transport: %w", name, runErr)
		}
		fmt.Fprintf(&b, "-- %s transport --\n%s", name, snap.FormatCalls())
	}
	return b.String(), nil
}

func section(title string, f func() (string, error)) error {
	start := time.Now()
	out, err := f()
	if err != nil {
		return fmt.Errorf("%s: %w", title, err)
	}
	fmt.Printf("== %s  (%.1fs)\n%s\n", title, time.Since(start).Seconds(), out)
	return nil
}

// renderMaps prints map summaries and optionally writes PGM images.
func renderMaps(maps []actdsm.MapResult, dir string) (string, error) {
	var b strings.Builder
	for _, m := range maps {
		fmt.Fprintf(&b, "-- %s, %d threads --\n%s\n", m.App, m.Threads, m.ASCII)
		if dir != "" {
			for ext, data := range map[string]string{
				"pgm": m.Matrix.RenderPGM(),
				"svg": m.Matrix.RenderSVG(6, nil),
			} {
				name := filepath.Join(dir, fmt.Sprintf("%s-%dt.%s", m.App, m.Threads, ext))
				if err := os.WriteFile(name, []byte(data), 0o644); err != nil {
					return "", fmt.Errorf("write %s: %w", name, err)
				}
				fmt.Fprintf(&b, "(wrote %s)\n", name)
			}
		}
	}
	return b.String(), nil
}
