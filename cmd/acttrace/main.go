// Command acttrace records a page-access trace from an application run,
// analyzes a saved trace offline, or replays one against a cluster.
//
// Usage:
//
//	acttrace record -app Water -threads 16 -nodes 4 -out water.trace
//	acttrace info   -in water.trace [-iter 1]
//	acttrace replay -in water.trace -nodes 8 [-protocol sw]
package main

import (
	"flag"
	"fmt"
	"os"

	"actdsm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "acttrace:", err)
		os.Exit(1)
	}
}

func run() error {
	if len(os.Args) < 2 {
		return fmt.Errorf("usage: acttrace record|info|replay [flags]")
	}
	switch os.Args[1] {
	case "record":
		return record(os.Args[2:])
	case "info":
		return info(os.Args[2:])
	case "replay":
		return replay(os.Args[2:])
	default:
		return fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	app := fs.String("app", "Water", "application name")
	threads := fs.Int("threads", 16, "application threads")
	nodes := fs.Int("nodes", 4, "cluster nodes")
	scale := fs.String("scale", "test", "input scale: test or paper")
	out := fs.String("out", "app.trace", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc := actdsm.ScaleTest
	if *scale == "paper" {
		sc = actdsm.ScalePaper
	}
	a, err := actdsm.NewApp(*app, actdsm.AppConfig{Threads: *threads, Scale: sc})
	if err != nil {
		return err
	}
	sys, err := actdsm.NewSystem(a, *nodes)
	if err != nil {
		return err
	}
	defer func() { _ = sys.Close() }()
	rec := actdsm.NewRecorder(sys.Engine())
	if err := sys.SetHooks(rec.Hooks(actdsm.Hooks{})); err != nil {
		return err
	}
	if err := sys.Run(); err != nil {
		return err
	}
	tr := rec.Trace()
	if err := os.WriteFile(*out, tr.Encode(), 0o644); err != nil {
		return err
	}
	fmt.Printf("recorded %d events over %d iterations (%d threads, %d pages) to %s\n",
		len(tr.Events), tr.Iterations, tr.Threads, tr.Pages, *out)
	return nil
}

func info(args []string) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	in := fs.String("in", "app.trace", "trace file")
	iter := fs.Int("iter", -1, "restrict to one iteration (-1 = all)")
	nodes := fs.Int("nodes", 4, "nodes for cut-cost analysis")
	if err := fs.Parse(args); err != nil {
		return err
	}
	b, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	tr, err := actdsm.DecodeTrace(b)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d threads, %d pages, %d iterations, %d events\n",
		*in, tr.Threads, tr.Pages, tr.Iterations, len(tr.Events))
	m := tr.Matrix(*iter)
	s := actdsm.Summarize(m)
	fmt.Printf("total sharing %d, diagonal %.0f%%, background %.0f%% of pairs\n",
		m.TotalSharing(), 100*s.DiagonalFrac, 100*s.BackgroundFrac)
	fmt.Print(m.RenderASCII())
	mc := actdsm.MinCost(m, *nodes)
	st := actdsm.Stretch(tr.Threads, *nodes)
	fmt.Printf("cut costs on %d nodes: stretch %d, min-cost %d\n",
		*nodes, m.CutCost(st), m.CutCost(mc))
	return nil
}

func replay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	in := fs.String("in", "app.trace", "trace file")
	nodes := fs.Int("nodes", 4, "cluster nodes")
	proto := fs.String("protocol", "mw", "coherence protocol: mw or sw")
	prefetch := fs.Int("prefetch", 0, "prefetch budget in pages/node/round (0 off, <0 unlimited)")
	batch := fs.Bool("batch", false, "coalesce diff fetches per writer node")
	tcp := fs.Bool("tcp", false, "replay over loopback TCP")
	if err := fs.Parse(args); err != nil {
		return err
	}
	b, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	tr, err := actdsm.DecodeTrace(b)
	if err != nil {
		return err
	}
	p := actdsm.MultiWriter
	if *proto == "sw" {
		p = actdsm.SingleWriter
	}
	opts := []actdsm.SystemOption{actdsm.WithClusterConfig(actdsm.ClusterConfig{
		Protocol:       p,
		PrefetchBudget: *prefetch,
		BatchDiffs:     *batch,
		UseTCP:         *tcp,
	})}
	stats, elapsed, err := actdsm.ReplayTrace(tr, *nodes, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("replayed on %d nodes (%s): %.4f simulated s, %d remote misses, %.2f MB\n",
		*nodes, *proto, elapsed.Seconds(), stats.RemoteMisses, float64(stats.BytesTotal)/1e6)
	if *prefetch != 0 || *batch {
		fmt.Print(stats.FormatPrefetch())
	}
	return nil
}
