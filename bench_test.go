package actdsm_test

// One benchmark per table and figure of the paper, plus micro-benchmarks
// for the substrate primitives the experiments stress. By default the
// experiment benchmarks run at test scale; set ACT_FULL=1 to use the
// paper's Table 1 inputs (minutes instead of seconds).

import (
	"os"
	"testing"

	"actdsm"
	"actdsm/internal/dsm"
	"actdsm/internal/memlayout"
	"actdsm/internal/vm"
)

func benchOptions(b *testing.B) actdsm.ExperimentOptions {
	b.Helper()
	o := actdsm.ExperimentOptions{Seed: 1999}
	if os.Getenv("ACT_FULL") != "" {
		o.Scale = actdsm.ScalePaper
	} else {
		o.Scale = actdsm.ScaleTest
	}
	return o
}

// BenchmarkTable1 regenerates application characteristics (paper Table 1).
func BenchmarkTable1(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		if _, err := actdsm.Table1(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates the cut-cost/remote-miss regression (paper
// Table 2 and Figure 1). The y-axis of Figure 1 is Table2Row.RemoteMisses
// against Table2Row.CutCosts.
func BenchmarkTable2(b *testing.B) {
	o := benchOptions(b)
	o.RandomConfigs = 20 // keep the default bench affordable
	if os.Getenv("ACT_FULL") != "" {
		o.RandomConfigs = 300
	}
	for i := 0; i < b.N; i++ {
		if _, err := actdsm.Table2(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 regenerates the 32/48/64-thread correlation maps (paper
// Table 3).
func BenchmarkTable3(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		if _, err := actdsm.Table3(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4 regenerates the FFT-versus-input maps (paper Table 4).
func BenchmarkTable4(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		if _, err := actdsm.Table4(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5 regenerates the tracking-overhead measurements (paper
// Table 5).
func BenchmarkTable5(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		if _, err := actdsm.Table5(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6 regenerates the placement-performance comparison (paper
// Table 6).
func BenchmarkTable6(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		if _, err := actdsm.Table6(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 regenerates the passive information-gathering curves
// (paper Figure 2).
func BenchmarkFigure2(b *testing.B) {
	o := benchOptions(b)
	// The full app set is covered by the test suite; benchmark the two
	// extremes the paper highlights (SOR gathers almost everything,
	// Water stays partial for many rounds).
	o.Apps = []string{"SOR", "Water"}
	for i := 0; i < b.N; i++ {
		if _, err := actdsm.Figure2(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3 regenerates the free-zone analysis (paper Figure 3).
func BenchmarkFigure3(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		if _, err := actdsm.Figure3(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationHeuristics regenerates the §5.1 heuristic-quality
// comparison.
func BenchmarkAblationHeuristics(b *testing.B) {
	o := benchOptions(b)
	o.Apps = []string{"SOR", "FFT6", "Water"}
	for i := 0; i < b.N; i++ {
		if _, err := actdsm.AblationHeuristics(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationScaling regenerates the §4.2 tracking-cost-scaling
// measurement.
func BenchmarkAblationScaling(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		if _, err := actdsm.AblationScaling(o); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks.

// BenchmarkDiffCreate measures twin-vs-page diffing of a page with 10%
// modified words.
func BenchmarkDiffCreate(b *testing.B) {
	twin := make([]byte, memlayout.PageSize)
	cur := make([]byte, memlayout.PageSize)
	for i := 0; i < memlayout.PageSize; i += 40 {
		cur[i] = 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := dsm.MakeDiff(twin, cur); d == nil {
			b.Fatal("no diff")
		}
	}
}

// BenchmarkDiffApply measures applying that diff.
func BenchmarkDiffApply(b *testing.B) {
	twin := make([]byte, memlayout.PageSize)
	cur := make([]byte, memlayout.PageSize)
	for i := 0; i < memlayout.PageSize; i += 40 {
		cur[i] = 1
	}
	diff := dsm.MakeDiff(twin, cur)
	page := make([]byte, memlayout.PageSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dsm.ApplyDiff(page, diff); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpanWarm measures the page-table check on an already-valid
// span (the common fast path of every shared access).
func BenchmarkSpanWarm(b *testing.B) {
	cl, err := dsm.New(dsm.Config{Nodes: 1, Pages: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	if _, _, err := cl.Span(0, 0, 0, 4*memlayout.PageSize, vm.Write); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cl.Span(0, 0, 0, 4*memlayout.PageSize, vm.Read); err != nil {
			b.Fatal(err)
		}
	}
}

// reportCallStats emits the per-message-type transport counters gathered
// during the benchmark loop as custom metrics: round trips and wire bytes
// per operation, named by message kind.
func reportCallStats(b *testing.B, s dsm.Snapshot) {
	b.Helper()
	for _, c := range s.Calls {
		b.ReportMetric(float64(c.Count)/float64(b.N), c.Kind+"/op")
		b.ReportMetric(float64(c.Bytes)/float64(b.N), c.Kind+"-B/op")
	}
}

// BenchmarkRemoteMiss measures a full invalidate/diff-fetch cycle between
// two nodes and reports which protocol messages it spends.
func BenchmarkRemoteMiss(b *testing.B) {
	cl, err := dsm.New(dsm.Config{Nodes: 2, Pages: 1, GCThresholdBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	b.ReportAllocs()
	b.ResetTimer()
	base := cl.Stats().Snapshot()
	for i := 0; i < b.N; i++ {
		// Node 1 writes, barrier invalidates node 0, node 0 re-reads.
		bs, _, err := cl.Span(1, 8, 0, 4, vm.Write)
		if err != nil {
			b.Fatal(err)
		}
		bs[0] = byte(i)
		if _, err := cl.Barrier(); err != nil {
			b.Fatal(err)
		}
		if _, _, err := cl.Span(0, 0, 0, 4, vm.Read); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportCallStats(b, cl.Stats().Snapshot().Sub(base))
}

// BenchmarkBarrierFanOut measures one global barrier episode on an
// eight-node cluster with every node contributing write notices — the
// broadcast path whose enter and release phases now run their transport
// calls in parallel — and reports the per-message-type traffic.
func BenchmarkBarrierFanOut(b *testing.B) {
	const nodes = 8
	cl, err := dsm.New(dsm.Config{Nodes: nodes, Pages: nodes, GCThresholdBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	b.ReportAllocs()
	b.ResetTimer()
	base := cl.Stats().Snapshot()
	for i := 0; i < b.N; i++ {
		for node := 0; node < nodes; node++ {
			bs, _, err := cl.Span(node, node, node*memlayout.PageSize, 4, vm.Write)
			if err != nil {
				b.Fatal(err)
			}
			bs[0] = byte(i)
		}
		if _, err := cl.Barrier(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportCallStats(b, cl.Stats().Snapshot().Sub(base))
}

// BenchmarkCutCost measures cut-cost evaluation on a 64-thread matrix.
func BenchmarkCutCost(b *testing.B) {
	m := actdsm.NewMatrix(64)
	rng := actdsm.NewRNG(3)
	for i := 0; i < 64; i++ {
		for j := i + 1; j < 64; j++ {
			m.Set(i, j, int64(rng.Intn(100)))
		}
	}
	assign := actdsm.Stretch(64, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.CutCost(assign)
	}
}

// BenchmarkMinCost measures the full min-cost heuristic on a 64-thread
// matrix — the cost of one placement decision.
func BenchmarkMinCost(b *testing.B) {
	m := actdsm.NewMatrix(64)
	rng := actdsm.NewRNG(3)
	for i := 0; i < 64; i++ {
		for j := i + 1; j < 64; j++ {
			m.Set(i, j, int64(rng.Intn(100)))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = actdsm.MinCost(m, 8)
	}
}

// BenchmarkTrackedIteration measures one fully tracked SOR run (the cost
// the paper's Table 5 amortizes).
func BenchmarkTrackedIteration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := actdsm.TrackMatrix("SOR", 64, 8, actdsm.ScaleTest); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDensity regenerates the §1 density-vs-page-set
// comparison.
func BenchmarkAblationDensity(b *testing.B) {
	o := benchOptions(b)
	o.Apps = []string{"SOR", "Water"}
	for i := 0; i < b.N; i++ {
		if _, err := actdsm.AblationDensity(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationProtocol regenerates the §6 multi-writer vs
// single-writer comparison.
func BenchmarkAblationProtocol(b *testing.B) {
	o := benchOptions(b)
	o.Apps = []string{"SOR", "Water", "Ocean"}
	for i := 0; i < b.N; i++ {
		if _, err := actdsm.AblationProtocol(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrefetchComparison regenerates the demand-vs-prefetch
// comparison (DESIGN.md §7; the BENCH_prefetch.json data) and asserts
// its acceptance properties every iteration: prefetch active, and
// demand calls cut by at least 20% on both SOR and Ocean. The custom
// metrics report the per-app reduction plus hit/wasted accounting.
func BenchmarkPrefetchComparison(b *testing.B) {
	o := benchOptions(b)
	var rows []actdsm.PrefetchRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = actdsm.PrefetchComparison(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.PrefetchedPages == 0 || r.PrefetchHits == 0 {
				b.Fatalf("%s: prefetch inactive (pages %d, hits %d)",
					r.App, r.PrefetchedPages, r.PrefetchHits)
			}
			if r.Reduction < 0.20 {
				b.Fatalf("%s: demand-call reduction %.1f%% < 20%% (%d -> %d)",
					r.App, 100*r.Reduction, r.DemandCalls, r.PrefetchCalls)
			}
		}
	}
	b.StopTimer()
	for _, r := range rows {
		b.ReportMetric(100*r.Reduction, r.App+"-reduction-%")
		b.ReportMetric(float64(r.PrefetchHits), r.App+"-hits")
		b.ReportMetric(float64(r.PrefetchWasted), r.App+"-wasted")
	}
}

// BenchmarkTraceReplay measures capture + replay of a Water trace — the
// workload-generator path of the harness.
func BenchmarkTraceReplay(b *testing.B) {
	app, err := actdsm.NewApp("Water", actdsm.AppConfig{Threads: 16})
	if err != nil {
		b.Fatal(err)
	}
	sys, err := actdsm.NewSystem(app, 4)
	if err != nil {
		b.Fatal(err)
	}
	rec := actdsm.NewRecorder(sys.Engine())
	if err := sys.SetHooks(rec.Hooks(actdsm.Hooks{})); err != nil {
		b.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		b.Fatal(err)
	}
	tr := rec.Trace()
	_ = sys.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := actdsm.ReplayTrace(tr, 8,
			actdsm.WithClusterConfig(actdsm.ClusterConfig{Protocol: actdsm.MultiWriter})); err != nil {
			b.Fatal(err)
		}
	}
}
