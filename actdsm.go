// Package actdsm is a from-scratch Go reproduction of "Active Correlation
// Tracking" (Thitikamol & Keleher, ICDCS 1999): a page-based software
// distributed shared memory in the style of CVM (lazy release consistency,
// multi-writer twins and diffs), a per-node user-level thread engine with
// migration, the SPLASH-2-style applications the paper evaluates, and —
// the paper's contribution — active and passive correlation tracking with
// cut-cost-driven thread placement.
//
// The package is a facade: it re-exports the stable surface of the
// internal packages so applications, tools, and examples program against
// one import. The building blocks compose as follows:
//
//	app, _ := actdsm.NewApp("SOR", actdsm.AppConfig{Threads: 64})
//	sys, _ := actdsm.NewSystem(app, 8)
//	defer sys.Close()
//	tracker := sys.TrackIteration(1)   // active correlation tracking
//	_ = sys.Run()
//	m := tracker.Matrix()              // thread correlations
//	best := actdsm.MinCost(m, 8)       // placement from cut costs
//
// or, for whole experiments, the one-shot Run/TrackMatrix helpers and the
// Table1..Table6/Figure2/Figure3 reproduction harness.
package actdsm

import (
	"actdsm/internal/apps"
	"actdsm/internal/core"
	"actdsm/internal/dsm"
	"actdsm/internal/experiments"
	"actdsm/internal/memlayout"
	"actdsm/internal/obs"
	"actdsm/internal/placement"
	"actdsm/internal/sim"
	"actdsm/internal/threads"
	"actdsm/internal/transport"
	"actdsm/internal/vm"
)

// Core building blocks, re-exported.
type (
	// App is a runnable DSM application (SOR, FFT6..8, LU1k/2k, Ocean,
	// Water, Spatial, Barnes, or a custom app).
	App = apps.App
	// AppConfig selects thread count, input scale, iteration count, and
	// verification for an application.
	AppConfig = apps.Config
	// Scale selects test-sized or paper-sized inputs.
	Scale = apps.Scale
	// Layout allocates named page-aligned regions of the shared segment.
	Layout = memlayout.Layout
	// Region is a named page-aligned range of the shared segment.
	Region = memlayout.Region
	// Body is one application thread's code.
	Body = threads.Body
	// Ctx is a thread's handle to shared memory and synchronization.
	Ctx = threads.Ctx
	// Hooks observe engine events (iterations, barriers, thread runs).
	Hooks = threads.Hooks
	// Engine runs application threads over a DSM cluster.
	Engine = threads.Engine
	// Cluster is the DSM substrate.
	Cluster = dsm.Cluster
	// ClusterConfig configures a DSM cluster.
	ClusterConfig = dsm.Config
	// Stats holds the DSM's protocol counters.
	Stats = dsm.Stats
	// Snapshot is a point-in-time copy of protocol counters, including
	// the per-message-type call table (counts, bytes, retries, latency
	// histograms; render it with Snapshot.FormatCalls).
	Snapshot = dsm.Snapshot
	// Counters is the comparable, transport-independent subset of
	// Snapshot used by determinism and equivalence tests.
	Counters = dsm.Counters
	// CallSnapshot is one message type's call counters and latency
	// histogram within a Snapshot.
	CallSnapshot = dsm.CallSnapshot
	// TransportOptions tunes transport resilience: per-call timeouts
	// and bounded retry with exponential backoff and jitter.
	TransportOptions = transport.Options
	// ChaosOptions configures transport fault injection (drops, delays,
	// duplicates, partitions) for resilience testing.
	ChaosOptions = transport.ChaosOptions
	// Fault is one injected transport failure mode.
	Fault = transport.Fault
	// Time is virtual time in nanoseconds.
	Time = sim.Time
	// Costs is the virtual-time cost model.
	Costs = sim.Costs
	// Topology is the heterogeneous cost model: per-node compute scaling
	// plus a per-directed-link latency/bandwidth matrix (ClusterConfig.
	// Topology; nil or NewTopology behaves exactly like the uniform
	// Costs model).
	Topology = sim.Topology
	// LinkCost is one directed link's latency and per-byte cost.
	LinkCost = sim.LinkCost
	// LinkSnapshot is one directed link's traffic counters within a
	// Snapshot (render the table with Snapshot.FormatLinks).
	LinkSnapshot = dsm.LinkSnapshot
	// RNG is the deterministic random-number generator.
	RNG = sim.RNG
	// Bitmap is a per-thread page-access bitmap.
	Bitmap = vm.Bitmap
	// Matrix is a symmetric thread-correlation matrix.
	Matrix = core.Matrix
	// ActiveTracker implements the paper's active correlation tracking.
	ActiveTracker = core.ActiveTracker
	// PassiveTracker implements fault-snooping passive tracking, with
	// the §1 aging mechanism (Decay).
	PassiveTracker = core.PassiveTracker
	// DensityTracker captures per-access densities — the §1 "ideal"
	// correlation measure, available here because the software MMU
	// observes every access.
	DensityTracker = core.DensityTracker
	// Move is one thread migration of a reconfiguration plan.
	Move = placement.Move
	// ControllerConfig tunes the online placement controller (trigger
	// period, hysteresis, per-epoch move budgets, matrix smoothing).
	ControllerConfig = placement.ControllerConfig
	// Controller is the online placement controller: joint thread +
	// page-home re-placement at iteration boundaries (DESIGN.md §14).
	// Wire one with WithPlacementController.
	Controller = placement.Controller
	// CostInput carries the cluster state the joint placement cost
	// model prices (correlation matrix, access bitmaps, write history,
	// topology).
	CostInput = placement.CostInput
	// HomeMove is one proposed page-home reassignment with its
	// predicted joint-cost gain.
	HomeMove = placement.HomeMove
	// ObsRecorder is the observability layer's event recorder: epoch
	// timelines, Perfetto trace export (WriteTrace), metrics dump
	// (WriteMetrics), and per-epoch breakdown (Breakdown). Obtain one
	// via WithObservability + System.Recorder. (Not to be confused with
	// Recorder, the page-access trace capturer.)
	ObsRecorder = obs.Recorder
	// ObsConfig configures the observability recorder (enablement and
	// ring-buffer capacity).
	ObsConfig = obs.Config
	// ObsEvent is one structured observability event.
	ObsEvent = obs.Event
	// Breakdown is the per-epoch critical-path report.
	Breakdown = obs.Breakdown
	// Probe is the DSM protocol's instrumentation hook set (the
	// coherence checker and the observability layer both feed on it).
	Probe = dsm.Probe
)

// Observability exporters usable without a Recorder.
var (
	// MetricsText renders a Snapshot in Prometheus text format.
	MetricsText = obs.MetricsText
	// TraceJSON renders recorded events as Chrome trace-event JSON.
	TraceJSON = obs.TraceJSON
	// ComputeBreakdown folds recorded events into per-epoch summaries.
	ComputeBreakdown = obs.ComputeBreakdown
)

// Input-size classes.
const (
	// ScaleTest selects small inputs that run in milliseconds.
	ScaleTest = apps.ScaleTest
	// ScalePaper selects the paper's Table 1 inputs.
	ScalePaper = apps.ScalePaper
)

// PageSize is the shared-segment page size in bytes.
const PageSize = memlayout.PageSize

// Injected transport fault modes (ChaosOptions.Plan return values).
const (
	FaultNone        = transport.FaultNone
	FaultDropRequest = transport.FaultDropRequest
	FaultDropReply   = transport.FaultDropReply
	FaultDuplicate   = transport.FaultDuplicate
	FaultDelay       = transport.FaultDelay
)

// Protocol selects the DSM coherence protocol.
type Protocol = dsm.Protocol

// Coherence protocols.
const (
	// MultiWriter is the CVM-like lazy-release-consistency protocol.
	MultiWriter = dsm.MultiWriter
	// SingleWriter is the ownership/invalidation protocol used by the
	// protocol ablation (paper §6's comparison point).
	SingleWriter = dsm.SingleWriter
)

// NewApp builds a named application; see AppNames for the catalogue.
func NewApp(name string, cfg AppConfig) (App, error) { return apps.New(name, cfg) }

// AppNames lists the available applications.
func AppNames() []string { return apps.Names() }

// SharedPages returns an application's shared-segment size in pages.
func SharedPages(a App) (int, error) { return apps.SharedPages(a) }

// NewRNG returns a deterministic random-number generator.
func NewRNG(seed uint64) *RNG { return sim.NewRNG(seed) }

// DefaultCosts returns the default virtual-time cost model.
func DefaultCosts() Costs { return sim.DefaultCosts() }

// Heterogeneous topology constructors (ClusterConfig.Topology).
var (
	// NewTopology returns a uniform n-node topology (identical to no
	// topology at all) as the base for SetComputeScale / SetLink edits.
	NewTopology = sim.NewTopology
	// FastSlowTopology marks every slowEvery-th node slow: compute
	// scaled by cpuFactor, links touching it by netFactor.
	FastSlowTopology = sim.FastSlowTopology
	// RackTopology groups nodes into racks with scaled, optionally
	// asymmetric cross-rack links.
	RackTopology = sim.RackTopology
)

// NewMatrix returns an n×n zero correlation matrix.
func NewMatrix(n int) *Matrix { return core.NewMatrix(n) }

// FromBitmaps builds a correlation matrix from per-thread access bitmaps.
func FromBitmaps(b []*Bitmap) *Matrix { return core.FromBitmaps(b) }

// Placement heuristics (paper §5.1).
var (
	// Stretch divides threads into contiguous equal blocks.
	Stretch = placement.Stretch
	// MinCost clusters threads by affinity and refines by swaps.
	MinCost = placement.MinCost
	// Optimal solves small instances exactly.
	Optimal = placement.Optimal
	// RandomBalanced returns a random balanced placement.
	RandomBalanced = placement.RandomBalanced
	// RandomMin returns a random placement with a per-node minimum.
	RandomMin = placement.RandomMin
	// Refine improves a placement by cut-reducing swaps.
	Refine = placement.Refine
	// Anneal improves a placement by simulated annealing over swaps.
	Anneal = placement.Anneal
	// OptimalCapacities solves small capacity-constrained instances
	// exactly.
	OptimalCapacities = placement.OptimalCapacities
	// Plan computes the single round of migrations between placements.
	Plan = placement.Plan
	// AlignLabels relabels a target placement to minimize migrations.
	AlignLabels = placement.AlignLabels
	// CapacitiesForSpeeds apportions threads proportionally to node
	// speeds (heterogeneous clusters, paper §2).
	CapacitiesForSpeeds = placement.CapacitiesForSpeeds
	// StretchCapacities is Stretch with explicit per-node capacities.
	StretchCapacities = placement.StretchCapacities
	// MinCostCapacities is MinCost with explicit per-node capacities.
	MinCostCapacities = placement.MinCostCapacities
	// JointCost scores a joint (thread → node, page → home) assignment
	// under the unified topology-weighted cost model (DESIGN.md §14).
	JointCost = placement.JointCost
	// BestHomes proposes budget-clamped page-home moves under the joint
	// cost model.
	BestHomes = placement.BestHomes
	// DefaultControllerConfig returns the stock online-controller
	// policy (period 2, 5% hysteresis, unbounded budgets, re-tracking).
	DefaultControllerConfig = placement.DefaultControllerConfig
)

// Experiment harness (the paper's tables and figures).
type (
	// ExperimentOptions configures the reproduction harness.
	ExperimentOptions = experiments.Options
	// RunConfig describes one application run.
	RunConfig = experiments.RunConfig
	// RunResult holds one run's measurements.
	RunResult = experiments.RunResult
	// MapResult is one rendered correlation map.
	MapResult = experiments.MapResult
	// Table2Row is one application's cut-cost regression (plus the
	// Figure 1 scatter).
	Table2Row = experiments.Table2Row
	// Table5Row is one application's tracking-overhead measurement.
	Table5Row = experiments.Table5Row
	// Table6Row is one (application, heuristic) performance row.
	Table6Row = experiments.Table6Row
	// Figure2Series is one application's passive-completeness curve.
	Figure2Series = experiments.Figure2Series
	// Figure3Config is one free-zone analysis panel.
	Figure3Config = experiments.Figure3Config
	// MapSummary summarizes a correlation map's structure.
	MapSummary = experiments.MapSummary
	// PrefetchRow is one application's demand-vs-prefetch comparison.
	PrefetchRow = experiments.PrefetchRow
	// PrefetchReport is the BENCH_prefetch.json schema.
	PrefetchReport = experiments.PrefetchReport
	// HotpathReport is the BENCH_hotpath.json schema.
	HotpathReport = experiments.HotpathReport
	// TransportReport is the BENCH_transport.json schema.
	TransportReport = experiments.TransportReport
	// TransportLink is one directed link's deterministic traffic in the
	// transport report's heterogeneous leg.
	TransportLink = experiments.TransportLink
	// ManagersReport is the BENCH_managers.json schema.
	ManagersReport = experiments.ManagersReport
	// ServingReport is the BENCH_serving.json schema.
	ServingReport = experiments.ServingReport
	// ServingRow is one placement variant's serving measurements.
	ServingRow = experiments.ServingRow
	// PlacementReport is the BENCH_placement.json schema.
	PlacementReport = experiments.PlacementReport
	// PlacementWorkload is one workload's placement-ablation rows.
	PlacementWorkload = experiments.PlacementWorkload
	// PlacementRow is one controller configuration's measurements.
	PlacementRow = experiments.PlacementRow
)

// Summarize computes a MapSummary for a correlation matrix.
var Summarize = experiments.Summarize

// Experiment entry points; each returns typed rows, and the matching
// Format function renders them in the paper's layout.
var (
	Run         = experiments.Run
	TrackMatrix = experiments.TrackMatrix

	Table1  = experiments.Table1
	Table2  = experiments.Table2
	Table3  = experiments.Table3
	Table4  = experiments.Table4
	Table5  = experiments.Table5
	Table6  = experiments.Table6
	Figure2 = experiments.Figure2
	Figure3 = experiments.Figure3

	PrefetchComparison       = experiments.PrefetchComparison
	PrefetchReportJSON       = experiments.PrefetchReportJSON
	ComparePrefetchReports   = experiments.ComparePrefetchReports
	FormatPrefetchComparison = experiments.FormatPrefetchComparison

	HotpathComparison     = experiments.HotpathComparison
	HotpathReportJSON     = experiments.HotpathReportJSON
	CompareHotpathReports = experiments.CompareHotpathReports
	FormatHotpathReport   = experiments.FormatHotpathReport

	TransportComparison     = experiments.TransportComparison
	TransportReportJSON     = experiments.TransportReportJSON
	CompareTransportReports = experiments.CompareTransportReports
	FormatTransportReport   = experiments.FormatTransportReport

	ManagersComparison     = experiments.ManagersComparison
	ManagersReportJSON     = experiments.ManagersReportJSON
	CompareManagersReports = experiments.CompareManagersReports
	FormatManagersReport   = experiments.FormatManagersReport

	ServingComparison     = experiments.ServingComparison
	ServingReportJSON     = experiments.ServingReportJSON
	CompareServingReports = experiments.CompareServingReports
	FormatServingReport   = experiments.FormatServingReport

	PlacementComparison     = experiments.PlacementComparison
	PlacementReportJSON     = experiments.PlacementReportJSON
	ComparePlacementReports = experiments.ComparePlacementReports
	FormatPlacementReport   = experiments.FormatPlacementReport

	FailoverComparison     = experiments.FailoverComparison
	FailoverReportJSON     = experiments.FailoverReportJSON
	CompareFailoverReports = experiments.CompareFailoverReports
	FormatFailoverReport   = experiments.FormatFailoverReport

	AblationHeuristics = experiments.AblationHeuristics
	AblationScaling    = experiments.AblationScaling
	AblationDensity    = experiments.AblationDensity
	AblationProtocol   = experiments.AblationProtocol

	FormatTable1             = experiments.FormatTable1
	FormatTable2             = experiments.FormatTable2
	Table2CSV                = experiments.Table2CSV
	FormatTable5             = experiments.FormatTable5
	FormatTable6             = experiments.FormatTable6
	FormatFigure2            = experiments.FormatFigure2
	FormatFigure3            = experiments.FormatFigure3
	FormatAblationHeuristics = experiments.FormatAblationHeuristics
	FormatAblationScaling    = experiments.FormatAblationScaling
	FormatAblationDensity    = experiments.FormatAblationDensity
	FormatAblationProtocol   = experiments.FormatAblationProtocol

	// PaperApps lists the paper's Table 1 applications.
	PaperApps = experiments.PaperApps
)
