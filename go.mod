module actdsm

go 1.23
