package actdsm

import (
	"context"
	"errors"
	"fmt"

	"actdsm/internal/core"
	"actdsm/internal/dsm"
	"actdsm/internal/memlayout"
	"actdsm/internal/obs"
	"actdsm/internal/placement"
	"actdsm/internal/sim"
	"actdsm/internal/threads"
)

// The observability recorder plugs into the engine through the
// structural threads.Observer interface; pin the contract here so a
// drift in either signature set fails the build at the wiring site.
var _ threads.Observer = (*obs.Recorder)(nil)

// System bundles an application with a DSM cluster and thread engine,
// giving interactive control (hooks, tracking, migration) that the
// one-shot Run helper does not.
//
// Lifecycle: a System moves through exactly two phases.
//
//  1. Configuration — between NewSystem and Run. SetHooks and
//     TrackIteration may be called (in any order relative to each
//     other: Run composes them, so hook installation and tracking
//     arm-up cannot race).
//  2. Running/finished — once Run has been called. SetHooks and
//     TrackIteration return ErrAlreadyRan: silently accepting them
//     (the old behaviour) meant a TrackIteration after Run produced a
//     tracker that never fired.
//
// Run itself returns ErrAlreadyRan on a second call.
type System struct {
	app      Workload
	cluster  *dsm.Cluster
	engine   *threads.Engine
	layout   *memlayout.Layout
	tracker  *core.ActiveTracker
	recorder *obs.Recorder
	hooks    Hooks
	ctrlCfg  *ControllerConfig
	ctrl     *placement.Controller
	ran      bool
}

// ErrAlreadyRan reports a configuration call (SetHooks, TrackIteration)
// or a second Run on a System whose Run has already been invoked.
var ErrAlreadyRan = errors.New("actdsm: system already ran")

// SystemConfig is a System's complete configuration: the DSM cluster's
// ClusterConfig plus the engine-level knobs (initial placement, execution
// shuffling, heterogeneous node speeds). Every SystemOption writes into
// this one struct, so a new cluster knob is surfaced here by adding it to
// ClusterConfig alone — there is no parallel field chain to maintain.
type SystemConfig struct {
	// Cluster configures the DSM substrate. NewSystem overwrites
	// Cluster.Nodes (from its node-count argument) and Cluster.Pages
	// (from the application's shared-segment layout); every other field
	// is passed through to dsm.New as-is.
	Cluster ClusterConfig
	// Placement is the initial thread → node assignment (default:
	// stretch).
	Placement []int
	// ShuffleSeed randomizes per-node thread execution order.
	ShuffleSeed uint64
	// NodeSpeeds scales each node's CPU speed (1.0 = baseline) for
	// heterogeneous clusters.
	NodeSpeeds []float64
	// Obs configures the observability layer (off by default). When
	// enabled, NewSystem attaches an event recorder to the engine and
	// the cluster's protocol probe; retrieve it with System.Recorder
	// after the run to export a Perfetto trace (WriteTrace), a metrics
	// dump (WriteMetrics), or a per-epoch breakdown (Breakdown).
	Obs ObsConfig
	// Serving configures the online KV workload and its closed-loop
	// load generator. It is consumed by workload construction (ServeKV,
	// NewServingApp), not by the cluster or engine: a System built over
	// a ServingApp measures whatever configuration the app was built
	// with. Set it with WithServing.
	Serving ServingConfig
	// Controller, when non-nil, runs the online placement controller
	// (placement v2, DESIGN.md §14): at iteration boundaries it scores
	// the joint (thread → node, page → home) assignment under the
	// unified cost model and issues thread migrations and explicit
	// page-home moves together, subject to the configured trigger
	// period, hysteresis threshold, and per-epoch move budgets. Set it
	// with WithPlacementController. If TrackIteration was not called,
	// Run arms a tracker at Controller.TrackIteration automatically.
	Controller *ControllerConfig
}

// SystemOption customizes NewSystem by mutating a SystemConfig.
type SystemOption func(*SystemConfig)

// WithClusterConfig replaces the entire cluster configuration at once —
// the escape hatch for knobs without a dedicated option. Applied in
// option order: it overwrites cluster fields set by earlier options, and
// later options overwrite its fields. Nodes and Pages are still set by
// NewSystem.
func WithClusterConfig(c ClusterConfig) SystemOption {
	return func(sc *SystemConfig) { sc.Cluster = c }
}

// WithConfig replaces the entire SystemConfig at once — the preferred
// way to set several knobs together now that the per-field options are
// deprecated. Applied in option order, like WithClusterConfig: it
// overwrites everything earlier options set, and later options
// overwrite its fields.
func WithConfig(c SystemConfig) SystemOption {
	return func(sc *SystemConfig) { *sc = c }
}

// WithServing sets the serving-workload configuration consumed by
// ServeKV and NewServingApp (see SystemConfig.Serving).
func WithServing(c ServingConfig) SystemOption {
	return func(sc *SystemConfig) { sc.Serving = c }
}

// WithPlacementController enables the online placement controller with
// the given configuration (zero fields take the DefaultControllerConfig
// values; pass DefaultControllerConfig() for the stock policy). The
// controller co-orchestrates thread placement and page homes online —
// see SystemConfig.Controller and DESIGN.md §14. A non-zero home budget
// requires the multi-writer protocol.
func WithPlacementController(c ControllerConfig) SystemOption {
	return func(sc *SystemConfig) { cp := c; sc.Controller = &cp }
}

// WithPlacement sets the initial thread → node assignment (default:
// stretch).
func WithPlacement(assign []int) SystemOption {
	return func(c *SystemConfig) { c.Placement = append([]int(nil), assign...) }
}

// WithShuffle randomizes per-node thread execution order with the seed.
//
// Deprecated: set SystemConfig.ShuffleSeed via WithConfig.
func WithShuffle(seed uint64) SystemOption {
	return func(c *SystemConfig) { c.ShuffleSeed = seed }
}

// WithGCThreshold sets the diff garbage-collection threshold in bytes
// (negative disables GC).
//
// Deprecated: set ClusterConfig.GCThresholdBytes via WithClusterConfig
// or WithConfig.
func WithGCThreshold(bytes int) SystemOption {
	return func(c *SystemConfig) { c.Cluster.GCThresholdBytes = bytes }
}

// WithTCP routes DSM protocol messages over real loopback TCP sockets.
func WithTCP() SystemOption {
	return func(c *SystemConfig) { c.Cluster.UseTCP = true }
}

// WithProtocol selects the coherence protocol (default MultiWriter).
//
// Deprecated: set ClusterConfig.Protocol via WithClusterConfig or
// WithConfig.
func WithProtocol(p Protocol) SystemOption {
	return func(c *SystemConfig) { c.Cluster.Protocol = p }
}

// WithTransportOptions tunes transport resilience: per-call timeouts
// (TCP) and bounded retry with exponential backoff and jitter. See
// transport.Options for the knobs and DESIGN.md §6 for why the DSM
// protocol is safe to retry.
func WithTransportOptions(o TransportOptions) SystemOption {
	return func(c *SystemConfig) { c.Cluster.Transport = o }
}

// WithChaos wraps the cluster's transport with fault injection (dropped
// requests and replies, delays, duplicates, partitions) for resilience
// testing. Combine with WithTransportOptions(MaxAttempts > 1) so the
// injected faults are retried.
func WithChaos(o ChaosOptions) SystemOption {
	return func(c *SystemConfig) { cp := o; c.Cluster.Chaos = &cp }
}

// WithBarrierRetries makes Barrier re-broadcast a failed enter or
// release phase up to n additional times; receivers deduplicate the
// re-sent notices.
func WithBarrierRetries(n int) SystemOption {
	return func(c *SystemConfig) { c.Cluster.BarrierRetries = n }
}

// WithDiffBatching coalesces diff fetches into one DiffBatchRequest per
// writer node with parallel fan-out (DESIGN.md §7).
//
// Deprecated: set ClusterConfig.BatchDiffs via WithClusterConfig or
// WithConfig.
func WithDiffBatching() SystemOption {
	return func(c *SystemConfig) { c.Cluster.BatchDiffs = true }
}

// WithPrefetchBudget enables correlation-driven prefetch at barrier
// release: each node pulls the pending diffs of the pages its resident
// threads are predicted to touch (from the active tracker's bitmaps when
// tracking ran, else from the node's previous-epoch fault window),
// batched per writer. budget > 0 caps the pages prefetched per node per
// round; budget < 0 is unlimited; 0 disables (the default). See
// DESIGN.md §7.
//
// Deprecated: set ClusterConfig.PrefetchBudget via WithClusterConfig
// or WithConfig.
func WithPrefetchBudget(budget int) SystemOption {
	return func(c *SystemConfig) { c.Cluster.PrefetchBudget = budget }
}

// WithLockShards sets the number of lock-manager shards locks hash
// into (shard s lives on node s mod Nodes). 0 (the default) spreads one
// shard per node; 1 centralizes every lock on node 0, the
// pre-decentralization baseline. See DESIGN.md §10.
//
// Deprecated: set ClusterConfig.LockShards via WithClusterConfig or
// WithConfig.
func WithLockShards(n int) SystemOption {
	return func(c *SystemConfig) { c.Cluster.LockShards = n }
}

// WithBarrierArity arranges barrier traffic as a k-ary tree rooted at
// node 0 — enters aggregate up the tree, releases relay down it — so
// the barrier's critical path is O(log_k n) instead of O(n) at the
// manager. 0 (the default) keeps the flat single-manager barrier; 1 and
// negative values are invalid. See DESIGN.md §10.
//
// Deprecated: set ClusterConfig.BarrierArity via WithClusterConfig or
// WithConfig.
func WithBarrierArity(k int) SystemOption {
	return func(c *SystemConfig) { c.Cluster.BarrierArity = k }
}

// WithHomeMigration enables the distributed-ownership extensions: page
// homes migrate to each page's last writer at every barrier, and lock
// grants forward — the acquirer pulls causal history straight from the
// previous holder instead of through the manager. Multi-writer protocol
// only. See DESIGN.md §10.
//
// Deprecated: set ClusterConfig.HomeMigration via WithClusterConfig or
// WithConfig.
func WithHomeMigration() SystemOption {
	return func(c *SystemConfig) { c.Cluster.HomeMigration = true }
}

// WithNodeSpeeds makes the cluster heterogeneous: speeds[n] scales node
// n's CPU (1.0 = baseline). Combine with CapacitiesForSpeeds-derived
// placements to exploit the fast nodes.
func WithNodeSpeeds(speeds []float64) SystemOption {
	return func(c *SystemConfig) { c.NodeSpeeds = append([]float64(nil), speeds...) }
}

// WithObservability enables the event recorder with the default ring
// capacity: per-slice and per-epoch timeline events, remote-fetch and
// lock instants, and transport call latencies, exportable as a Perfetto
// trace, a Prometheus-style metrics dump, or a per-epoch breakdown (see
// System.Recorder). Overhead when enabled is one ring write per event;
// when absent the probe path stays nil checks only.
func WithObservability() SystemOption {
	return func(c *SystemConfig) { c.Obs.Enabled = true }
}

// WithObsConfig sets the full observability configuration (ring
// capacity, enablement).
//
// Deprecated: set SystemConfig.Obs via WithConfig.
func WithObsConfig(o ObsConfig) SystemOption {
	return func(c *SystemConfig) { c.Obs = o }
}

// NewSystem builds a cluster sized for the workload's shared segment
// and an engine hosting its threads. Any Workload runs here — epoch
// apps (App, which satisfies Workload structurally, so existing call
// sites compile unchanged) and request-driven services (ServingApp)
// alike; the engine does not care which shape it hosts.
func NewSystem(app Workload, nodes int, opts ...SystemOption) (*System, error) {
	var cfg SystemConfig
	for _, o := range opts {
		o(&cfg)
	}
	layout := memlayout.NewLayout()
	if err := app.Setup(layout); err != nil {
		return nil, fmt.Errorf("actdsm: set up %s: %w", app.Name(), err)
	}
	ccfg := cfg.Cluster
	ccfg.Nodes = nodes
	ccfg.Pages = layout.TotalPages()
	cluster, err := dsm.New(ccfg)
	if err != nil {
		return nil, err
	}
	engine, err := threads.NewEngine(cluster, threads.Config{
		Threads:          app.Threads(),
		Placement:        cfg.Placement,
		SchedulerEnabled: true,
		ShuffleSeed:      cfg.ShuffleSeed,
		NodeSpeeds:       cfg.NodeSpeeds,
	})
	if err != nil {
		_ = cluster.Close()
		return nil, err
	}
	sys := &System{app: app, cluster: cluster, engine: engine, layout: layout, ctrlCfg: cfg.Controller}
	sys.recorder = obs.NewRecorder(cfg.Obs)
	if sys.recorder.Enabled() {
		cluster.SetProbe(sys.recorder.Probe())
		engine.SetObserver(sys.recorder)
	}
	return sys, nil
}

// App returns the system's workload (an App, a ServingApp, or any
// other Workload it was built over).
func (s *System) App() Workload { return s.app }

// Cluster returns the DSM cluster (statistics, coherence checks).
func (s *System) Cluster() *Cluster { return s.cluster }

// Engine returns the thread engine (placement, migration, clocks).
func (s *System) Engine() *Engine { return s.engine }

// Layout returns the application's shared-segment layout.
func (s *System) Layout() *Layout { return s.layout }

// Recorder returns the observability recorder. It is never nil; when
// observability is off (the default) the recorder is disabled — its
// Enabled method reports false and exports are empty.
func (s *System) Recorder() *ObsRecorder { return s.recorder }

// SetHooks installs engine hooks; it must be called before Run and
// returns ErrAlreadyRan afterwards (hooks installed on a running or
// finished system would silently never fire for already-past events).
// If tracking was requested, the tracker's instrumentation wraps these
// hooks; SetHooks and TrackIteration may be called in either order.
func (s *System) SetHooks(h Hooks) error {
	if s.ran {
		return fmt.Errorf("actdsm: SetHooks after Run: %w", ErrAlreadyRan)
	}
	s.hooks = h
	return nil
}

// TrackIteration arms active correlation tracking for the given 0-based
// iteration and returns the tracker. It must be called before Run and
// returns ErrAlreadyRan afterwards: previously a post-Run call was
// silently accepted and produced a tracker that never fired. (To track
// again *during* a run, use ActiveTracker.Retrack from a hook — see
// examples/adaptive.)
func (s *System) TrackIteration(iter int) (*ActiveTracker, error) {
	if s.ran {
		return nil, fmt.Errorf("actdsm: TrackIteration after Run: %w", ErrAlreadyRan)
	}
	s.tracker = core.NewActiveTracker(s.engine, iter)
	return s.tracker, nil
}

// Run executes the workload to completion. It composes the hooks and
// tracker configured beforehand, wires the correlation-driven prefetch
// predictor (when the cluster's PrefetchBudget enables prefetch), and
// returns ErrAlreadyRan on a second call.
func (s *System) Run() error { return s.RunContext(context.Background()) }

// servingHooked is the structural contract a workload exposes to have
// serving instrumentation composed into the engine hooks: the returned
// hooks must delegate to inner after their own window bookkeeping.
// serve.KV satisfies it; the facade stays decoupled from the concrete
// type so future serving workloads plug in the same way.
type servingHooked interface {
	ServingHooks(inner threads.Hooks, elapsed func() sim.Time, snapshot func() dsm.Snapshot) threads.Hooks
}

// stoppable lets RunContext wind a workload down on ctx cancellation.
type stoppable interface{ Stop() }

// RunContext is Run under a context: cancelling ctx stops the engine at
// its next scheduling step and, for workloads with a Stop method
// (ServingApp), asks the load generator to wind down — the way
// open-ended serving runs (MeasureWindows == 0) terminate. It returns
// ctx.Err() when cancellation cut the run short.
//
// Hook composition order: the placement controller wraps the user
// hooks, the workload's own serving instrumentation (window spans)
// wraps both, and the tracker wraps all — so tracker begin/end still
// brackets exactly the tracked iteration and the controller sees a
// complete correlation window the same iteration it closes.
func (s *System) RunContext(ctx context.Context) error {
	if s.ran {
		return ErrAlreadyRan
	}
	s.ran = true
	hooks := s.hooks
	if s.ctrlCfg != nil {
		if s.tracker == nil {
			// Arm a tracker for the controller's first window; default
			// iteration 1 skips initialization-skewed iteration 0.
			iter := s.ctrlCfg.TrackIteration
			if iter <= 0 {
				iter = 1
			}
			s.tracker = core.NewActiveTracker(s.engine, iter)
		}
		ctrl, err := placement.NewController(s.cluster, s.engine, s.tracker, *s.ctrlCfg)
		if err != nil {
			return err
		}
		s.ctrl = ctrl
		hooks = ctrl.Hooks(hooks)
	}
	if sh, ok := s.app.(servingHooked); ok {
		hooks = sh.ServingHooks(hooks, s.engine.Elapsed, s.cluster.Stats().Snapshot)
	}
	if s.tracker != nil {
		s.engine.SetHooks(s.tracker.Hooks(hooks))
		s.tracker.Start()
	} else {
		s.engine.SetHooks(hooks)
	}
	if st, ok := s.app.(stoppable); ok {
		defer context.AfterFunc(ctx, st.Stop)()
	}
	// Correlation-driven prefetch prediction: once the tracker has a
	// complete iteration's bitmaps, a node's prediction is the union of
	// its resident threads' access bitmaps — the same data placement
	// spends on cut costs, spent here on data movement. Before tracking
	// completes (or without a tracker) the predictor returns nil and the
	// cluster falls back to each node's fault-window history.
	tracker, engine, cluster := s.tracker, s.engine, s.cluster
	cluster.SetPrefetchPredictor(func(node int) *Bitmap {
		if tracker == nil || !tracker.Done() {
			return nil
		}
		return core.PredictNodePages(tracker.Bitmaps(), engine.Placement(), node, cluster.NumPages())
	})
	err := s.engine.RunContext(ctx, s.app.Body)
	if err == nil && s.ctrl != nil {
		// Hook callbacks cannot return errors; surface the controller's
		// first apply-side failure here.
		err = s.ctrl.Err()
	}
	return err
}

// PlacementController returns the online placement controller wired by
// WithPlacementController, or nil when none was configured or Run has
// not yet been called (RunContext constructs it).
func (s *System) PlacementController() *placement.Controller { return s.ctrl }

// Elapsed returns the cluster-wide elapsed virtual time.
func (s *System) Elapsed() Time { return s.engine.Elapsed() }

// Close releases cluster resources.
func (s *System) Close() error { return s.cluster.Close() }

// customApp adapts user-provided setup and body functions to the App
// interface, letting downstream code define new workloads against the
// public API (the adaptive example uses this).
type customApp struct {
	name    string
	threads int
	iters   int
	setup   func(*Layout) error
	body    func(tid int) Body
}

var _ App = (*customApp)(nil)

// NewCustomApp wraps setup and per-thread body functions as an App. The
// body must follow the SPMD conventions of the built-in applications:
// thread 0 initializes shared data before a barrier, and every iteration
// ends with ctx.EndIteration() (iterations total iters).
func NewCustomApp(name string, nthreads, iters int, setup func(*Layout) error, body func(tid int) Body) (App, error) {
	if nthreads <= 0 || iters <= 0 {
		return nil, fmt.Errorf("actdsm: custom app %q: threads and iterations must be positive", name)
	}
	if setup == nil || body == nil {
		return nil, fmt.Errorf("actdsm: custom app %q: setup and body are required", name)
	}
	return &customApp{name: name, threads: nthreads, iters: iters, setup: setup, body: body}, nil
}

func (c *customApp) Name() string          { return c.name }
func (c *customApp) Threads() int          { return c.threads }
func (c *customApp) Iterations() int       { return c.iters }
func (c *customApp) Setup(l *Layout) error { return c.setup(l) }
func (c *customApp) Body(tid int) Body     { return c.body(tid) }
func (c *customApp) String() string        { return c.name }
