package actdsm

import (
	"errors"
	"fmt"

	"actdsm/internal/core"
	"actdsm/internal/dsm"
	"actdsm/internal/memlayout"
	"actdsm/internal/threads"
	"actdsm/internal/transport"
)

// System bundles an application with a DSM cluster and thread engine,
// giving interactive control (hooks, tracking, migration) that the
// one-shot Run helper does not.
type System struct {
	app     App
	cluster *dsm.Cluster
	engine  *threads.Engine
	layout  *memlayout.Layout
	tracker *core.ActiveTracker
	hooks   Hooks
	ran     bool
}

// SystemOption customizes NewSystem.
type SystemOption func(*systemConfig)

type systemConfig struct {
	placement      []int
	shuffleSeed    uint64
	gcThreshold    int
	useTCP         bool
	nodeSpeeds     []float64
	transportOpts  transport.Options
	chaos          *transport.ChaosOptions
	barrierRetries int
}

// WithPlacement sets the initial thread → node assignment (default:
// stretch).
func WithPlacement(assign []int) SystemOption {
	return func(c *systemConfig) { c.placement = append([]int(nil), assign...) }
}

// WithShuffle randomizes per-node thread execution order with the seed.
func WithShuffle(seed uint64) SystemOption {
	return func(c *systemConfig) { c.shuffleSeed = seed }
}

// WithGCThreshold sets the diff garbage-collection threshold in bytes
// (negative disables GC).
func WithGCThreshold(bytes int) SystemOption {
	return func(c *systemConfig) { c.gcThreshold = bytes }
}

// WithTCP routes DSM protocol messages over real loopback TCP sockets.
func WithTCP() SystemOption {
	return func(c *systemConfig) { c.useTCP = true }
}

// WithTransportOptions tunes transport resilience: per-call timeouts
// (TCP) and bounded retry with exponential backoff and jitter. See
// transport.Options for the knobs and DESIGN.md §6 for why the DSM
// protocol is safe to retry.
func WithTransportOptions(o TransportOptions) SystemOption {
	return func(c *systemConfig) { c.transportOpts = o }
}

// WithChaos wraps the cluster's transport with fault injection (dropped
// requests and replies, delays, duplicates, partitions) for resilience
// testing. Combine with WithTransportOptions(MaxAttempts > 1) so the
// injected faults are retried.
func WithChaos(o ChaosOptions) SystemOption {
	return func(c *systemConfig) { cp := o; c.chaos = &cp }
}

// WithBarrierRetries makes Barrier re-broadcast a failed enter or
// release phase up to n additional times; receivers deduplicate the
// re-sent notices.
func WithBarrierRetries(n int) SystemOption {
	return func(c *systemConfig) { c.barrierRetries = n }
}

// WithNodeSpeeds makes the cluster heterogeneous: speeds[n] scales node
// n's CPU (1.0 = baseline). Combine with CapacitiesForSpeeds-derived
// placements to exploit the fast nodes.
func WithNodeSpeeds(speeds []float64) SystemOption {
	return func(c *systemConfig) { c.nodeSpeeds = append([]float64(nil), speeds...) }
}

// NewSystem builds a cluster sized for the application's shared segment
// and an engine hosting its threads.
func NewSystem(app App, nodes int, opts ...SystemOption) (*System, error) {
	var cfg systemConfig
	for _, o := range opts {
		o(&cfg)
	}
	layout := memlayout.NewLayout()
	if err := app.Setup(layout); err != nil {
		return nil, fmt.Errorf("actdsm: set up %s: %w", app.Name(), err)
	}
	cluster, err := dsm.New(dsm.Config{
		Nodes:            nodes,
		Pages:            layout.TotalPages(),
		GCThresholdBytes: cfg.gcThreshold,
		UseTCP:           cfg.useTCP,
		Transport:        cfg.transportOpts,
		Chaos:            cfg.chaos,
		BarrierRetries:   cfg.barrierRetries,
	})
	if err != nil {
		return nil, err
	}
	engine, err := threads.NewEngine(cluster, threads.Config{
		Threads:          app.Threads(),
		Placement:        cfg.placement,
		SchedulerEnabled: true,
		ShuffleSeed:      cfg.shuffleSeed,
		NodeSpeeds:       cfg.nodeSpeeds,
	})
	if err != nil {
		_ = cluster.Close()
		return nil, err
	}
	return &System{app: app, cluster: cluster, engine: engine, layout: layout}, nil
}

// App returns the system's application.
func (s *System) App() App { return s.app }

// Cluster returns the DSM cluster (statistics, coherence checks).
func (s *System) Cluster() *Cluster { return s.cluster }

// Engine returns the thread engine (placement, migration, clocks).
func (s *System) Engine() *Engine { return s.engine }

// Layout returns the application's shared-segment layout.
func (s *System) Layout() *Layout { return s.layout }

// SetHooks installs engine hooks; call before Run. If tracking was
// requested, the tracker's instrumentation wraps these hooks.
func (s *System) SetHooks(h Hooks) { s.hooks = h }

// TrackIteration arms active correlation tracking for the given 0-based
// iteration and returns the tracker; call before Run.
func (s *System) TrackIteration(iter int) *ActiveTracker {
	s.tracker = core.NewActiveTracker(s.engine, iter)
	return s.tracker
}

// Run executes the application to completion.
func (s *System) Run() error {
	if s.ran {
		return errors.New("actdsm: system already ran")
	}
	s.ran = true
	if s.tracker != nil {
		s.engine.SetHooks(s.tracker.Hooks(s.hooks))
		s.tracker.Start()
	} else {
		s.engine.SetHooks(s.hooks)
	}
	return s.engine.Run(s.app.Body)
}

// Elapsed returns the cluster-wide elapsed virtual time.
func (s *System) Elapsed() Time { return s.engine.Elapsed() }

// Close releases cluster resources.
func (s *System) Close() error { return s.cluster.Close() }

// customApp adapts user-provided setup and body functions to the App
// interface, letting downstream code define new workloads against the
// public API (the adaptive example uses this).
type customApp struct {
	name    string
	threads int
	iters   int
	setup   func(*Layout) error
	body    func(tid int) Body
}

var _ App = (*customApp)(nil)

// NewCustomApp wraps setup and per-thread body functions as an App. The
// body must follow the SPMD conventions of the built-in applications:
// thread 0 initializes shared data before a barrier, and every iteration
// ends with ctx.EndIteration() (iterations total iters).
func NewCustomApp(name string, nthreads, iters int, setup func(*Layout) error, body func(tid int) Body) (App, error) {
	if nthreads <= 0 || iters <= 0 {
		return nil, fmt.Errorf("actdsm: custom app %q: threads and iterations must be positive", name)
	}
	if setup == nil || body == nil {
		return nil, fmt.Errorf("actdsm: custom app %q: setup and body are required", name)
	}
	return &customApp{name: name, threads: nthreads, iters: iters, setup: setup, body: body}, nil
}

func (c *customApp) Name() string          { return c.name }
func (c *customApp) Threads() int          { return c.threads }
func (c *customApp) Iterations() int       { return c.iters }
func (c *customApp) Setup(l *Layout) error { return c.setup(l) }
func (c *customApp) Body(tid int) Body     { return c.body(tid) }
func (c *customApp) String() string        { return c.name }
