package actdsm_test

// Facade property tests for the Workload split (DESIGN.md §11):
//
//   - every epoch app driven through the legacy App-typed path and
//     through a bare Workload wrapper (its Iterations method hidden)
//     produces identical protocol counters — the engine never depended
//     on the epoch shape;
//   - RunContext cancellation stops epoch runs and drains open-ended
//     serving runs at the next window boundary.

import (
	"context"
	"errors"
	"testing"

	"actdsm"
)

// bareWorkload hides every method of an App except the Workload set, so
// the engine cannot possibly consult Iterations.
type bareWorkload struct{ app actdsm.App }

func (b bareWorkload) Name() string                 { return b.app.Name() }
func (b bareWorkload) Threads() int                 { return b.app.Threads() }
func (b bareWorkload) Setup(l *actdsm.Layout) error { return b.app.Setup(l) }
func (b bareWorkload) Body(tid int) actdsm.Body     { return b.app.Body(tid) }

func TestWorkloadPathMatchesAppPath(t *testing.T) {
	for _, name := range actdsm.AppNames() {
		t.Run(name, func(t *testing.T) {
			counters := func(wrap bool) actdsm.Counters {
				app, err := actdsm.NewApp(name, actdsm.AppConfig{
					Threads: 8, Iterations: 2, Scale: actdsm.ScaleTest,
				})
				if err != nil {
					t.Fatalf("NewApp: %v", err)
				}
				var w actdsm.Workload = app
				if wrap {
					w = bareWorkload{app: app}
				}
				sys, err := actdsm.NewSystem(w, 4)
				if err != nil {
					t.Fatalf("NewSystem: %v", err)
				}
				defer func() { _ = sys.Close() }()
				if err := sys.Run(); err != nil {
					t.Fatalf("Run: %v", err)
				}
				return sys.Cluster().Stats().Snapshot().Counters()
			}
			if viaApp, viaWorkload := counters(false), counters(true); viaApp != viaWorkload {
				t.Errorf("protocol counters diverge between App and Workload paths:\napp:      %+v\nworkload: %+v",
					viaApp, viaWorkload)
			}
		})
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	app, err := actdsm.NewApp("SOR", actdsm.AppConfig{Threads: 4, Scale: actdsm.ScaleTest})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := actdsm.NewSystem(app, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sys.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext on cancelled ctx = %v, want context.Canceled", err)
	}
	// The lifecycle still advances: a second run attempt reports
	// ErrAlreadyRan, not a hang or a restart.
	if err := sys.Run(); !errors.Is(err, actdsm.ErrAlreadyRan) {
		t.Fatalf("second Run = %v, want ErrAlreadyRan", err)
	}
}

func TestRunContextCancelFromHook(t *testing.T) {
	app, err := actdsm.NewApp("SOR", actdsm.AppConfig{
		Threads: 4, Iterations: 50, Scale: actdsm.ScaleTest,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := actdsm.NewSystem(app, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	ctx, cancel := context.WithCancel(context.Background())
	var lastIter int
	if err := sys.SetHooks(actdsm.Hooks{OnIteration: func(iter int) {
		lastIter = iter
		if iter == 1 {
			cancel()
		}
	}}); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	if lastIter >= 49 {
		t.Fatalf("run completed all iterations despite cancellation (last iter %d)", lastIter)
	}
}

func TestServingOpenEndedStops(t *testing.T) {
	app, err := actdsm.NewServingApp(actdsm.ServingConfig{
		Clients:           4,
		Keys:              32,
		RequestsPerWindow: 4,
		// MeasureWindows 0: open-ended; only Stop ends the run.
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := actdsm.NewSystem(app, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	if err := sys.SetHooks(actdsm.Hooks{OnIteration: func(iter int) {
		if iter == 3 {
			app.Stop()
		}
	}}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("open-ended run did not drain cleanly: %v", err)
	}
	rep, err := app.Report()
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	// Windows 1..3 are measured (window 0 is warmup); clients observe
	// the stop flag at the start of window 4.
	if rep.Windows != 3 {
		t.Errorf("measured %d windows, want 3", rep.Windows)
	}
	if want := int64(4 * 4 * 3); rep.Requests != want {
		t.Errorf("measured %d requests, want %d", rep.Requests, want)
	}
}

func TestServingCancelDrains(t *testing.T) {
	app, err := actdsm.NewServingApp(actdsm.ServingConfig{
		Clients:           4,
		Keys:              32,
		RequestsPerWindow: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := actdsm.NewSystem(app, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := sys.SetHooks(actdsm.Hooks{OnIteration: func(iter int) {
		if iter == 2 {
			cancel()
		}
	}}); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	// Windows completed before the cancellation stay measured.
	rep, err := app.Report()
	if err != nil {
		t.Fatalf("Report after cancellation: %v", err)
	}
	if rep.Windows < 1 {
		t.Errorf("no measured windows survived cancellation: %+v", rep)
	}
}
