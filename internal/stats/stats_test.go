package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestFitExactLine(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 2x + 3
	r, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Slope-2) > 1e-12 || math.Abs(r.Intercept-3) > 1e-12 {
		t.Fatalf("fit = %+v", r)
	}
	if math.Abs(r.R-1) > 1e-12 {
		t.Fatalf("R = %v, want 1", r.R)
	}
	if r.N != 4 {
		t.Fatalf("N = %d", r.N)
	}
}

func TestFitNegativeCorrelation(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{9, 6, 3, 0}
	r, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.R+1) > 1e-12 {
		t.Fatalf("R = %v, want -1", r.R)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]float64{1}, []float64{2}); !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Fit([]float64{1, 2}, []float64{2}); !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("err = %v", err)
	}
	// Degenerate x.
	if _, err := Fit([]float64{3, 3, 3}, []float64{1, 2, 3}); !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("err = %v", err)
	}
}

func TestFitConstantY(t *testing.T) {
	r, err := Fit([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Slope != 0 || r.Intercept != 5 || r.R != 0 {
		t.Fatalf("fit = %+v", r)
	}
}

func TestFitPropertyRecoversLine(t *testing.T) {
	check := func(slope, intercept int8, n uint8) bool {
		m := int(n%20) + 2
		x := make([]float64, m)
		y := make([]float64, m)
		for i := 0; i < m; i++ {
			x[i] = float64(i)
			y[i] = float64(slope)*x[i] + float64(intercept)
		}
		r, err := Fit(x, y)
		if err != nil {
			return false
		}
		return math.Abs(r.Slope-float64(slope)) < 1e-9 &&
			math.Abs(r.Intercept-float64(intercept)) < 1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRBounded(t *testing.T) {
	check := func(pts []struct{ X, Y int16 }) bool {
		if len(pts) < 2 {
			return true
		}
		x := make([]float64, len(pts))
		y := make([]float64, len(pts))
		for i, p := range pts {
			x[i] = float64(p.X)
			y[i] = float64(p.Y)
		}
		r, err := Fit(x, y)
		if errors.Is(err, ErrInsufficientData) {
			return true
		}
		if err != nil {
			return false
		}
		return r.R >= -1.0000001 && r.R <= 1.0000001
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanMinMax(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v, %v", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Fatal("MinMax(nil) != 0,0")
	}
}
