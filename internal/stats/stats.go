// Package stats provides the least-squares regression and correlation
// statistics the paper's Table 2 reports (remote misses as a linear
// function of cut costs).
package stats

import (
	"errors"
	"math"
)

// ErrInsufficientData reports a regression over fewer than two points or
// a degenerate (zero-variance) predictor.
var ErrInsufficientData = errors.New("stats: insufficient or degenerate data")

// Regression summarizes a simple least-squares fit y = Slope·x + Intercept.
type Regression struct {
	Slope     float64
	Intercept float64
	// R is the Pearson correlation coefficient between x and y — the
	// "Correlation Coefficient" column of Table 2.
	R float64
	N int
}

// Fit computes the least-squares line through (x[i], y[i]).
func Fit(x, y []float64) (Regression, error) {
	if len(x) != len(y) || len(x) < 2 {
		return Regression{}, ErrInsufficientData
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, syy, sxy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 {
		return Regression{}, ErrInsufficientData
	}
	slope := sxy / sxx
	r := 0.0
	if syy > 0 {
		r = sxy / math.Sqrt(sxx*syy)
	}
	return Regression{
		Slope:     slope,
		Intercept: my - slope*mx,
		R:         r,
		N:         len(x),
	}, nil
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MinMax returns the smallest and largest values of xs.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
