package core

import (
	"actdsm/internal/threads"
	"actdsm/internal/vm"
)

// PassiveTracker implements the passive correlation tracking of previous
// systems (paper §4.1): it learns (thread, page) pairs only by snooping
// existing remote faults. Because the first local thread to validate a
// page hides all other local threads' accesses to it, the information is
// inherently partial, and multiple rounds of migration are needed to
// reveal more (each migration changes which accesses fault remotely).
type PassiveTracker struct {
	engine  *threads.Engine
	bitmaps []*vm.Bitmap
	// weights carries an observation weight per (thread, page) so old
	// information can be aged away — §1: "changes in sharing patterns
	// are usually accommodated through the use of an aging mechanism".
	weights [][]float64
	enabled bool
}

// agedOutThreshold is the weight below which an aged observation is
// dropped entirely.
const agedOutThreshold = 0.05

// NewPassiveTracker installs the remote-fault hook on the engine's
// cluster and begins gathering. Only one remote-fault observer can be
// installed per cluster.
func NewPassiveTracker(e *threads.Engine) *PassiveTracker {
	t := &PassiveTracker{
		engine:  e,
		bitmaps: make([]*vm.Bitmap, e.NumThreads()),
		weights: make([][]float64, e.NumThreads()),
		enabled: true,
	}
	npages := e.Cluster().NumPages()
	for i := range t.bitmaps {
		t.bitmaps[i] = vm.NewBitmap(npages)
		t.weights[i] = make([]float64, npages)
	}
	e.Cluster().SetRemoteFaultHook(func(node, tid int, p vm.PageID) {
		if t.enabled && tid >= 0 && tid < len(t.bitmaps) {
			t.bitmaps[tid].Set(p)
			t.weights[tid][p] = 1
		}
	})
	return t
}

// Decay ages all observations by factor (0 < factor < 1): weights are
// multiplied and observations that fall below the age-out threshold are
// forgotten. Call once per epoch (e.g. per iteration) so stale sharing
// information stops influencing placement as the pattern drifts.
func (t *PassiveTracker) Decay(factor float64) {
	for tid := range t.weights {
		for p, w := range t.weights[tid] {
			if w == 0 {
				continue
			}
			w *= factor
			if w < agedOutThreshold {
				w = 0
				t.bitmaps[tid].Clear(vm.PageID(p))
			}
			t.weights[tid][p] = w
		}
	}
}

// Weight returns the current observation weight for (thread, page).
func (t *PassiveTracker) Weight(tid int, p vm.PageID) float64 {
	return t.weights[tid][p]
}

// SetEnabled pauses or resumes gathering.
func (t *PassiveTracker) SetEnabled(on bool) { t.enabled = on }

// Bitmaps returns the access information gathered so far.
func (t *PassiveTracker) Bitmaps() []*vm.Bitmap { return t.bitmaps }

// Matrix builds a thread-correlation matrix from the partial information.
func (t *PassiveTracker) Matrix() *Matrix { return FromBitmaps(t.bitmaps) }

// Completeness reports the fraction of the true (thread, page) access
// pairs that passive tracking has discovered, measured against reference
// bitmaps from an active tracker — the y-axis of the paper's Figure 2.
func (t *PassiveTracker) Completeness(reference []*vm.Bitmap) float64 {
	var have, want int64
	for i, ref := range reference {
		want += int64(ref.Count())
		if i < len(t.bitmaps) {
			have += int64(t.bitmaps[i].AndCount(ref))
		}
	}
	if want == 0 {
		return 1
	}
	return float64(have) / float64(want)
}
