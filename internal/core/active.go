package core

import (
	"errors"
	"fmt"

	"actdsm/internal/threads"
	"actdsm/internal/vm"
)

// ActiveTracker implements active correlation tracking (paper §4.2): for
// one designated iteration, each node's thread scheduler is disabled so
// threads run serially between barriers; at the start of the phase and at
// every local thread switch all pages are re-protected (correlation bits
// armed), and the first access by the current thread to each page is
// recorded in that thread's access bitmap. At the end of the iteration the
// bitmaps give complete access information for every thread.
type ActiveTracker struct {
	engine  *threads.Engine
	bitmaps []*vm.Bitmap

	// trackIter is the 0-based iteration to track.
	trackIter int
	active    bool
	done      bool
	savedSch  bool
	// lastTID[node] is the last thread that ran on node during the
	// tracked phase, to re-arm correlation bits only at real switches.
	lastTID []int

	// nodeFaults counts tracking faults per node. curPages is the set
	// of distinct pages any local thread touched in the *current*
	// synchronization interval; at each barrier its count is folded
	// into nodePageIntervals and it resets. The sharing degree is then
	// faults ÷ Σ per-interval distinct pages, which is bounded by the
	// local thread count (each thread faults at most once per page per
	// interval).
	nodeFaults        []int64
	curPages          []*vm.Bitmap
	nodePageIntervals []int64
}

// NewActiveTracker prepares a tracker that will track iteration trackIter
// (0-based) of the engine's run.
func NewActiveTracker(e *threads.Engine, trackIter int) *ActiveTracker {
	nthreads := e.NumThreads()
	npages := e.Cluster().NumPages()
	nnodes := e.Cluster().NumNodes()
	t := &ActiveTracker{
		engine:            e,
		bitmaps:           make([]*vm.Bitmap, nthreads),
		trackIter:         trackIter,
		lastTID:           make([]int, nnodes),
		nodeFaults:        make([]int64, nnodes),
		curPages:          make([]*vm.Bitmap, nnodes),
		nodePageIntervals: make([]int64, nnodes),
	}
	for i := range t.bitmaps {
		t.bitmaps[i] = vm.NewBitmap(npages)
	}
	for n := range t.curPages {
		t.curPages[n] = vm.NewBitmap(npages)
		t.lastTID[n] = -1
	}
	return t
}

// Hooks wraps next with the tracker's instrumentation; install the result
// with engine.SetHooks.
func (t *ActiveTracker) Hooks(next threads.Hooks) threads.Hooks {
	return threads.Hooks{
		OnIteration: func(iter int) {
			// The hook fires after iteration iter completes; arm
			// the phase when the next iteration is the tracked
			// one, and tear it down when the tracked one ends.
			if iter+1 == t.trackIter && !t.done {
				t.begin()
			}
			if iter == t.trackIter && t.active {
				t.end()
			}
			if next.OnIteration != nil {
				next.OnIteration(iter)
			}
		},
		OnBarrier: func() {
			if t.active {
				t.flushInterval()
			}
			if next.OnBarrier != nil {
				next.OnBarrier()
			}
		},
		OnThreadRun: func(node, tid int) {
			if t.active && t.lastTID[node] != tid {
				// Paper §4.2 step 3: at a thread switch the
				// system re-protects all pages for the
				// incoming thread.
				cost := t.engine.Cluster().RearmTracking(node)
				t.engine.AdvanceNode(node, cost)
				t.lastTID[node] = tid
			}
			if next.OnThreadRun != nil {
				next.OnThreadRun(node, tid)
			}
		},
	}
}

// Start arms tracking before the first iteration (for trackIter == 0,
// where no preceding OnIteration hook exists). Call it after engine
// creation and before Run.
func (t *ActiveTracker) Start() {
	if t.trackIter == 0 && !t.done && !t.active {
		t.begin()
	}
}

func (t *ActiveTracker) begin() {
	t.active = true
	// Paper §4.2 step 1: the scheduler is placed in a mode that
	// prevents thread switching until the next barrier; all pages are
	// read-protected and correlation bits set.
	t.savedSch = t.engine.SchedulerEnabled()
	t.engine.SetSchedulerEnabled(false)
	cl := t.engine.Cluster()
	for node := 0; node < cl.NumNodes(); node++ {
		node := node
		cost := cl.BeginTracking(node, func(tid int, p vm.PageID) {
			t.bitmaps[tid].Set(p)
			t.nodeFaults[node]++
			t.curPages[node].Set(p)
		})
		t.engine.AdvanceNode(node, cost)
		t.lastTID[node] = -1
	}
}

// flushInterval folds the current interval's distinct-page counts into
// the sharing-degree denominator at an interval boundary (barrier).
func (t *ActiveTracker) flushInterval() {
	for n := range t.curPages {
		if c := t.curPages[n].Count(); c > 0 {
			t.nodePageIntervals[n] += int64(c)
			t.curPages[n].Reset()
		}
	}
}

func (t *ActiveTracker) end() {
	t.flushInterval()
	t.active = false
	t.done = true
	cl := t.engine.Cluster()
	for node := 0; node < cl.NumNodes(); node++ {
		cl.EndTracking(node)
	}
	t.engine.SetSchedulerEnabled(t.savedSch)
}

// Done reports whether the tracked iteration has completed.
func (t *ActiveTracker) Done() bool { return t.done }

// Retrack arms the tracker for another iteration (0-based, and it must
// not have started yet), clearing all previously gathered information.
// Adaptive applications (paper §7) re-track periodically — or when
// Matrix().Distance against the last tracked matrix crosses a threshold —
// and migrate to a fresh min-cost placement.
func (t *ActiveTracker) Retrack(iter int) error {
	if t.active {
		return errors.New("core: Retrack during an active tracking phase")
	}
	if iter <= t.engine.Iteration() {
		return fmt.Errorf("core: Retrack(%d) but iteration %d has already run",
			iter, t.engine.Iteration())
	}
	t.trackIter = iter
	t.done = false
	for i := range t.bitmaps {
		t.bitmaps[i].Reset()
	}
	for n := range t.nodeFaults {
		t.nodeFaults[n] = 0
		t.nodePageIntervals[n] = 0
		t.curPages[n].Reset()
		t.lastTID[n] = -1
	}
	return nil
}

// Bitmaps returns the per-thread access bitmaps gathered by the tracked
// iteration.
func (t *ActiveTracker) Bitmaps() []*vm.Bitmap { return t.bitmaps }

// Matrix builds the thread-correlation matrix from the gathered bitmaps.
func (t *ActiveTracker) Matrix() *Matrix { return FromBitmaps(t.bitmaps) }

// TrackingFaults returns the total number of correlation faults the
// tracked iteration induced (Table 5's "Tracking" column).
func (t *ActiveTracker) TrackingFaults() int64 {
	var tot int64
	for _, f := range t.nodeFaults {
		tot += f
	}
	return tot
}

// SharingDegree is the average number of local threads touching each
// distinct locally-accessed shared page per synchronization interval
// (Table 5's last column): total tracking faults divided by the summed
// per-interval distinct-page counts. A value of 1 means no local sharing;
// the value is bounded by the per-node thread count, reached when every
// local thread touches every locally-touched page.
func (t *ActiveTracker) SharingDegree() float64 {
	var faults, pages int64
	for n := range t.nodeFaults {
		faults += t.nodeFaults[n]
		pages += t.nodePageIntervals[n]
	}
	if pages == 0 {
		return 0
	}
	return float64(faults) / float64(pages)
}
