package core

import (
	"fmt"

	"actdsm/internal/vm"
)

// Matrix is a symmetric thread-correlation matrix: entry (i, j) is the
// number of shared pages threads i and j both access — the paper's
// definition of thread correlation.
type Matrix struct {
	n    int
	vals []int64
}

// NewMatrix returns an n×n zero matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{n: n, vals: make([]int64, n*n)}
}

// FromBitmaps builds the correlation matrix from per-thread access
// bitmaps: correlation(i, j) = |pages(i) ∩ pages(j)|.
func FromBitmaps(bitmaps []*vm.Bitmap) *Matrix {
	m := NewMatrix(len(bitmaps))
	for i := 0; i < m.n; i++ {
		for j := i; j < m.n; j++ {
			c := int64(bitmaps[i].AndCount(bitmaps[j]))
			m.vals[i*m.n+j] = c
			m.vals[j*m.n+i] = c
		}
	}
	return m
}

// N returns the thread count.
func (m *Matrix) N() int { return m.n }

// At returns correlation(i, j).
func (m *Matrix) At(i, j int) int64 { return m.vals[i*m.n+j] }

// Set assigns correlation(i, j) (and its mirror).
func (m *Matrix) Set(i, j int, v int64) {
	m.vals[i*m.n+j] = v
	m.vals[j*m.n+i] = v
}

// Add increments correlation(i, j) (and its mirror) by v.
func (m *Matrix) Add(i, j int, v int64) {
	m.vals[i*m.n+j] += v
	if i != j {
		m.vals[j*m.n+i] += v
	}
}

// Max returns the largest off-diagonal entry.
func (m *Matrix) Max() int64 {
	var mx int64
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if i != j && m.vals[i*m.n+j] > mx {
				mx = m.vals[i*m.n+j]
			}
		}
	}
	return mx
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.n)
	copy(c.vals, m.vals)
	return c
}

// CutCost is the aggregate correlation of thread pairs placed on distinct
// nodes under assign (thread → node): the count of page-sharings that must
// cross the network (paper §2). Each unordered pair counts once.
func (m *Matrix) CutCost(assign []int) int64 {
	var cost int64
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			if assign[i] != assign[j] {
				cost += m.vals[i*m.n+j]
			}
		}
	}
	return cost
}

// TotalSharing is the aggregate correlation over all unordered pairs — the
// cut cost of the degenerate one-thread-per-node placement, and the
// denominator of the free-sharing fraction.
func (m *Matrix) TotalSharing() int64 {
	var tot int64
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			tot += m.vals[i*m.n+j]
		}
	}
	return tot
}

// FreeSharing is the fraction of total pairwise sharing that stays inside
// nodes ("free zones", paper Figure 3) under assign.
func (m *Matrix) FreeSharing(assign []int) float64 {
	tot := m.TotalSharing()
	if tot == 0 {
		return 1
	}
	return float64(tot-m.CutCost(assign)) / float64(tot)
}

// Distance measures how much the sharing pattern changed between two
// same-size matrices: the L1 difference of their entries normalized by
// the larger total sharing, in [0, 1] for non-negative matrices (0 =
// identical, 1 = completely disjoint). Adaptive applications (paper §7)
// can re-track when the distance since the last tracked iteration
// crosses a threshold, instead of re-tracking on a fixed schedule.
func (m *Matrix) Distance(o *Matrix) float64 {
	if m.n != o.n {
		return 1
	}
	var l1, tot int64
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			a, b := m.At(i, j), o.At(i, j)
			d := a - b
			if d < 0 {
				d = -d
			}
			l1 += d
			if a > b {
				tot += a
			} else {
				tot += b
			}
		}
	}
	if tot == 0 {
		return 0
	}
	return float64(l1) / float64(tot)
}

// Validate checks that assign is a legal placement for this matrix.
func ValidateAssignment(assign []int, threads, nodes int) error {
	if len(assign) != threads {
		return fmt.Errorf("core: assignment has %d entries for %d threads", len(assign), threads)
	}
	for tid, n := range assign {
		if n < 0 || n >= nodes {
			return fmt.Errorf("core: thread %d assigned to invalid node %d", tid, n)
		}
	}
	return nil
}
