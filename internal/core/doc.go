// Package core implements the paper's primary contribution: thread
// correlation tracking. It provides the correlation matrix and cut-cost
// abstractions (paper §2), correlation maps (§3), and the active and
// passive correlation-tracking mechanisms (§4) layered over the DSM and
// thread engine.
//
// Active tracking (active.go) periodically disables the scheduler,
// resets page protections, and samples the vm access bitmaps to build a
// complete correlation matrix at a bounded, measured cost (the paper's
// Table 5). Passive tracking (passive.go) harvests the fault stream the
// protocol generates anyway — free but incomplete (Figure 2). The
// density analysis (density.go) separates page-count correlation from
// access-density correlation (§1), and corrmap.go renders the matrices
// as the paper's correlation maps. internal/placement consumes the
// resulting matrices; ARCHITECTURE.md maps the full pipeline.
package core
