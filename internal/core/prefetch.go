package core

import "actdsm/internal/vm"

// PredictNodePages turns the tracker's per-thread access bitmaps (paper
// §4.2) into a per-node page prediction: the union of the bitmaps of the
// threads currently placed on the node. The same correlation data that
// drives thread placement thereby drives data movement — if a node's
// resident threads touched a page during the tracked iteration, the node
// will want that page in the coming one.
//
// bitmaps[tid] may be nil (untracked thread); placement[tid] gives each
// thread's node. Returns nil when no resident thread has a bitmap, which
// callers treat as "no prediction" (falling back to fault-window
// history).
func PredictNodePages(bitmaps []*vm.Bitmap, placement []int, node, npages int) *vm.Bitmap {
	var out *vm.Bitmap
	for tid, bm := range bitmaps {
		if bm == nil || tid >= len(placement) || placement[tid] != node {
			continue
		}
		if bm.Len() != npages {
			continue
		}
		if out == nil {
			out = vm.NewBitmap(npages)
		}
		out.Or(bm)
	}
	return out
}
