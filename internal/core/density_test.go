package core

import (
	"testing"

	"actdsm/internal/dsm"
	"actdsm/internal/memlayout"
	"actdsm/internal/threads"
	"actdsm/internal/vm"
)

// densityWorkload: thread 0 touches page 0 heavily and page 1 once;
// thread 1 touches page 1 heavily; thread 2 touches page 0 once. Binary
// correlation sees corr(0,1) == corr(0,2) == 1 shared page; density
// correlation must rank (0,1) below (0,... wait — it must rank pairs by
// access intensity: (0,2) shares the heavy page 0, (0,1) shares page 1
// which thread 0 barely touches.
func runDensityWorkload(t *testing.T) (*DensityTracker, *ActiveTracker) {
	t.Helper()
	cl, err := dsm.New(dsm.Config{Nodes: 1, Pages: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })
	e, err := threads.NewEngine(cl, threads.Config{Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	dt := NewDensityTracker(e, 0)
	at := NewActiveTracker(e, 0)
	e.SetHooks(at.Hooks(dt.Hooks(threads.Hooks{})))
	dt.Start()
	at.Start()
	err = e.Run(func(tid int) threads.Body {
		return func(ctx *threads.Ctx) error {
			touch := func(page, times int) error {
				for k := 0; k < times; k++ {
					if _, err := ctx.Span(page*memlayout.PageSize, 8, vm.Read); err != nil {
						return err
					}
				}
				return nil
			}
			switch tid {
			case 0:
				if err := touch(0, 50); err != nil {
					return err
				}
				if err := touch(1, 1); err != nil {
					return err
				}
			case 1:
				if err := touch(1, 50); err != nil {
					return err
				}
			case 2:
				if err := touch(0, 1); err != nil {
					return err
				}
			}
			ctx.EndIteration()
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return dt, at
}

func TestDensityDistinguishesIntensity(t *testing.T) {
	dt, at := runDensityWorkload(t)
	if !dt.Done() {
		t.Fatal("density tracking incomplete")
	}
	bm := at.Matrix()
	// Binary page-count correlation cannot tell the pairs apart.
	if bm.At(0, 1) != 1 || bm.At(0, 2) != 1 {
		t.Fatalf("binary correlations: (0,1)=%d (0,2)=%d, want 1 and 1",
			bm.At(0, 1), bm.At(0, 2))
	}
	dm := dt.Matrix()
	// Density correlation must rank the heavy-page pair far above the
	// light one: thread 0's mass is on page 0, which thread 2 shares,
	// while thread 1 shares only the barely-touched page 1.
	if dm.At(0, 2) <= dm.At(0, 1) {
		t.Fatalf("density correlations: (0,2)=%d should exceed (0,1)=%d",
			dm.At(0, 2), dm.At(0, 1))
	}
	if dm.At(1, 2) != 0 {
		t.Fatalf("disjoint threads have density correlation %d", dm.At(1, 2))
	}
}

func TestDensityCountsWindowed(t *testing.T) {
	// Accesses outside the tracked iteration must not count.
	cl, err := dsm.New(dsm.Config{Nodes: 1, Pages: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	e, err := threads.NewEngine(cl, threads.Config{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	dt := NewDensityTracker(e, 1) // track only iteration 1
	e.SetHooks(dt.Hooks(threads.Hooks{}))
	dt.Start()
	err = e.Run(func(tid int) threads.Body {
		return func(ctx *threads.Ctx) error {
			for iter := 0; iter < 3; iter++ {
				touches := 1
				if iter == 1 {
					touches = 7
				}
				for k := 0; k < touches; k++ {
					if _, err := ctx.Span(0, 4, vm.Read); err != nil {
						return err
					}
				}
				ctx.EndIteration()
			}
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := dt.Counts()[0][0]; got != 7 {
		t.Fatalf("counts = %d, want 7 (tracked iteration only)", got)
	}
}

func TestPassiveAging(t *testing.T) {
	cl, err := dsm.New(dsm.Config{Nodes: 2, Pages: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	e, err := threads.NewEngine(cl, threads.Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	pt := NewPassiveTracker(e)
	err = e.Run(func(tid int) threads.Body {
		return func(ctx *threads.Ctx) error {
			if tid == 1 {
				// Page 0 is managed by node 0; node 1's access is
				// a remote fault the passive tracker sees.
				if _, err := ctx.Span(4, 4, vm.Read); err != nil {
					return err
				}
			}
			ctx.EndIteration()
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pt.Bitmaps()[1].Get(0) {
		t.Fatal("observation missing")
	}
	if pt.Weight(1, 0) != 1 {
		t.Fatalf("weight = %v", pt.Weight(1, 0))
	}
	// Three decays at 0.5: weight 0.125, still above threshold.
	pt.Decay(0.5)
	pt.Decay(0.5)
	pt.Decay(0.5)
	if !pt.Bitmaps()[1].Get(0) {
		t.Fatal("observation aged out too early")
	}
	// Two more: 0.03125 < 0.05 → forgotten.
	pt.Decay(0.5)
	pt.Decay(0.5)
	if pt.Bitmaps()[1].Get(0) {
		t.Fatal("observation survived aging")
	}
	if pt.Weight(1, 0) != 0 {
		t.Fatalf("weight after age-out = %v", pt.Weight(1, 0))
	}
}
