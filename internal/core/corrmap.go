package core

import (
	"fmt"
	"strings"
)

// CorrelationMap renders a correlation matrix the way the paper's Table 3
// presents it: an n×n grid where darker cells mean more sharing between
// the two threads at that cell's coordinates, origin at the lower left.

// shades orders glyphs from no sharing to maximum sharing.
const shades = " .:-=+*#%@"

// RenderASCII draws the matrix as ASCII art, one character per thread
// pair, rows printed top-down with thread 0's row at the bottom (matching
// the paper's lower-left origin). Intensity is scaled to the largest
// off-diagonal entry; the diagonal (self-correlation) is rendered like any
// other cell but capped at full intensity.
func (m *Matrix) RenderASCII() string {
	mx := m.Max()
	var b strings.Builder
	b.Grow((m.n + 1) * (m.n + 3))
	for row := m.n - 1; row >= 0; row-- {
		for col := 0; col < m.n; col++ {
			b.WriteByte(shadeFor(m.At(row, col), mx))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func shadeFor(v, mx int64) byte {
	if mx <= 0 || v <= 0 {
		return shades[0]
	}
	if v >= mx {
		return shades[len(shades)-1]
	}
	idx := int(v * int64(len(shades)-1) / mx)
	if idx >= len(shades) {
		idx = len(shades) - 1
	}
	return shades[idx]
}

// RenderPGM emits the matrix as a binary-free plain PGM (P2) image, dark
// cells for high correlation, suitable for external viewers. The first
// image row corresponds to the highest-numbered thread, matching
// RenderASCII's orientation.
func (m *Matrix) RenderPGM() string {
	mx := m.Max()
	var b strings.Builder
	fmt.Fprintf(&b, "P2\n%d %d\n255\n", m.n, m.n)
	for row := m.n - 1; row >= 0; row-- {
		for col := 0; col < m.n; col++ {
			v := m.At(row, col)
			gray := 255
			if mx > 0 {
				if v > mx {
					v = mx
				}
				gray = int(255 - v*255/mx)
			}
			if col > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", gray)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FreeZoneOverlay renders the matrix like RenderASCII but marks cells
// whose thread pair shares a node under assign — the paper's Figure 3
// "free zones" where sharing causes no network communication. Free-zone
// cells with sharing are shown as '□'-style brackets by lowercasing the
// shade scale to '(' for light and 'O' for dark; exact glyphs matter less
// than the visual block structure.
func (m *Matrix) FreeZoneOverlay(assign []int) string {
	mx := m.Max()
	var b strings.Builder
	for row := m.n - 1; row >= 0; row-- {
		for col := 0; col < m.n; col++ {
			c := shadeFor(m.At(row, col), mx)
			if assign[row] == assign[col] {
				if c == ' ' {
					c = '('
				} else {
					c = 'O'
				}
			}
			b.WriteByte(c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
