package core

import (
	"strings"
	"testing"
)

func TestRenderSVGBasics(t *testing.T) {
	m := NewMatrix(4)
	m.Set(0, 1, 10)
	m.Set(2, 3, 5)
	svg := m.RenderSVG(8, nil)
	if !strings.HasPrefix(svg, `<svg xmlns="http://www.w3.org/2000/svg" width="32" height="32"`) {
		t.Fatalf("header: %.80s", svg)
	}
	if !strings.HasSuffix(svg, "</svg>") {
		t.Fatal("unterminated svg")
	}
	// Max correlation cell is black; the 5-valued cell is mid-gray.
	if !strings.Contains(svg, `fill="#000000"`) {
		t.Fatal("no black cell for max correlation")
	}
	if !strings.Contains(svg, `fill="#808080"`) {
		t.Fatalf("no mid-gray cell: %s", svg)
	}
	// Zero cells are not emitted (background shows through).
	if strings.Count(svg, "<rect") >= 4*4+1 {
		t.Fatal("zero cells emitted")
	}
}

func TestRenderSVGFreeZones(t *testing.T) {
	m := NewMatrix(6)
	m.Set(0, 1, 3)
	svg := m.RenderSVG(4, []int{0, 0, 1, 1, 1, 2})
	// Three zones → three stroke rectangles.
	if got := strings.Count(svg, `stroke="#cc3333"`); got != 3 {
		t.Fatalf("free-zone outlines = %d, want 3\n%s", got, svg)
	}
}

func TestRenderSVGCellClamp(t *testing.T) {
	m := NewMatrix(2)
	tiny := m.RenderSVG(0, nil)
	if !strings.Contains(tiny, `width="4"`) {
		t.Fatalf("cell floor not applied: %.80s", tiny)
	}
	huge := m.RenderSVG(1000, nil)
	if !strings.Contains(huge, `width="64"`) {
		t.Fatalf("cell cap not applied: %.80s", huge)
	}
}

func TestFreeZoneRects(t *testing.T) {
	zs := freeZoneRects([]int{0, 0, 1, 0, 0, 0})
	want := []zoneRect{{0, 1}, {2, 2}, {3, 5}}
	if len(zs) != len(want) {
		t.Fatalf("zones = %v", zs)
	}
	for i := range want {
		if zs[i] != want[i] {
			t.Fatalf("zones = %v, want %v", zs, want)
		}
	}
}
