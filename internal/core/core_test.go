package core

import (
	"strings"
	"testing"
	"testing/quick"

	"actdsm/internal/dsm"
	"actdsm/internal/memlayout"
	"actdsm/internal/threads"
	"actdsm/internal/vm"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 1, 5)
	m.Add(1, 2, 3)
	m.Add(1, 2, 1)
	if m.At(0, 1) != 5 || m.At(1, 0) != 5 {
		t.Fatal("Set not symmetric")
	}
	if m.At(1, 2) != 4 || m.At(2, 1) != 4 {
		t.Fatal("Add not symmetric")
	}
	if m.Max() != 5 {
		t.Fatalf("Max = %d", m.Max())
	}
	c := m.Clone()
	c.Set(0, 1, 99)
	if m.At(0, 1) != 5 {
		t.Fatal("Clone shares storage")
	}
	if m.N() != 3 {
		t.Fatalf("N = %d", m.N())
	}
}

func TestMatrixDiagonalNotInMax(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 0, 100)
	m.Set(0, 1, 7)
	if m.Max() != 7 {
		t.Fatalf("Max = %d, want 7 (diagonal excluded)", m.Max())
	}
}

func TestFromBitmaps(t *testing.T) {
	a, b, c := vm.NewBitmap(64), vm.NewBitmap(64), vm.NewBitmap(64)
	for i := 0; i < 10; i++ {
		a.Set(vm.PageID(i))
	}
	for i := 5; i < 15; i++ {
		b.Set(vm.PageID(i))
	}
	c.Set(63)
	m := FromBitmaps([]*vm.Bitmap{a, b, c})
	if m.At(0, 1) != 5 {
		t.Fatalf("corr(0,1) = %d, want 5", m.At(0, 1))
	}
	if m.At(0, 2) != 0 || m.At(1, 2) != 0 {
		t.Fatal("expected zero correlation with c")
	}
	if m.At(0, 0) != 10 {
		t.Fatalf("self correlation = %d, want 10", m.At(0, 0))
	}
}

func TestCutCostProperties(t *testing.T) {
	check := func(vals []uint8, seed uint8) bool {
		n := 6
		m := NewMatrix(n)
		k := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := int64(0)
				if k < len(vals) {
					v = int64(vals[k])
				}
				m.Set(i, j, v)
				k++
			}
		}
		allSame := make([]int, n) // everyone on node 0
		if m.CutCost(allSame) != 0 {
			return false
		}
		allDiff := []int{0, 1, 2, 3, 4, 5}
		if m.CutCost(allDiff) != m.TotalSharing() {
			return false
		}
		// Any assignment's cut is between those extremes.
		some := []int{0, 1, 0, 1, 0, 1}
		cc := m.CutCost(some)
		if cc < 0 || cc > m.TotalSharing() {
			return false
		}
		// FreeSharing complements the cut fraction.
		fs := m.FreeSharing(some)
		return fs >= 0 && fs <= 1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateAssignment(t *testing.T) {
	if err := ValidateAssignment([]int{0, 1}, 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := ValidateAssignment([]int{0}, 2, 2); err == nil {
		t.Fatal("expected length error")
	}
	if err := ValidateAssignment([]int{0, 5}, 2, 2); err == nil {
		t.Fatal("expected range error")
	}
}

func TestRenderASCIIOrientation(t *testing.T) {
	m := NewMatrix(3)
	m.Set(2, 2, 1)
	m.Set(0, 1, 9) // strongest off-diagonal pair
	s := m.RenderASCII()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	for _, l := range lines {
		if len(l) != 3 {
			t.Fatalf("row width = %d", len(l))
		}
	}
	// Row 0 is printed last (origin lower-left): cell (0,1) must be the
	// darkest glyph.
	if lines[2][1] != '@' {
		t.Fatalf("cell (0,1) = %q, want '@'\n%s", lines[2][1], s)
	}
	if lines[2][2] != ' ' {
		t.Fatalf("cell (0,2) = %q, want blank", lines[2][2])
	}
}

func TestRenderPGM(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 1, 10)
	s := m.RenderPGM()
	if !strings.HasPrefix(s, "P2\n2 2\n255\n") {
		t.Fatalf("bad header: %q", s)
	}
	// Dark (0) where correlation is max, white (255) elsewhere... the
	// diagonal is 0 so white.
	// Row 1 prints first (lower-left origin): its cell (1,0) has the
	// max correlation → black (0); diagonals are empty → white (255).
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if lines[3] != "0 255" || lines[4] != "255 0" {
		t.Fatalf("pixels = %v", lines[3:])
	}
}

func TestFreeZoneOverlay(t *testing.T) {
	m := NewMatrix(4)
	m.Set(0, 1, 5)
	m.Set(2, 3, 5)
	m.Set(0, 3, 5)
	s := m.FreeZoneOverlay([]int{0, 0, 1, 1})
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// Pair (0,1) same node and sharing → 'O'; pair (0,3) cross-node →
	// plain shade '@'; pair (0,2) same... 0 on node0, 2 on node1 → no
	// sharing, cross node → ' '.
	row0 := lines[3]
	if row0[1] != 'O' {
		t.Fatalf("cell (0,1) = %q, want 'O'\n%s", row0[1], s)
	}
	if row0[3] != '@' {
		t.Fatalf("cell (0,3) = %q, want '@'", row0[3])
	}
	if row0[2] != ' ' {
		t.Fatalf("cell (0,2) = %q, want ' '", row0[2])
	}
	if row0[0] != 'O' && row0[0] != '(' {
		t.Fatalf("diagonal cell = %q", row0[0])
	}
}

// ringBody returns a body where each thread writes its own page and reads
// its right neighbour's page every iteration: a nearest-neighbour ring
// with a known correlation structure.
func ringBody(iters, nthreads int) func(tid int) threads.Body {
	return func(tid int) threads.Body {
		return func(ctx *threads.Ctx) error {
			for it := 0; it < iters; it++ {
				own, err := ctx.Span(tid*memlayout.PageSize, 8, vm.Write)
				if err != nil {
					return err
				}
				memlayout.ViewF32(own).Set(0, float32(it))
				right := (tid + 1) % nthreads
				if _, err := ctx.Span(right*memlayout.PageSize, 8, vm.Read); err != nil {
					return err
				}
				ctx.Compute(16)
				ctx.EndIteration()
			}
			return nil
		}
	}
}

func runTracked(t *testing.T, nodes, nthreads, iters, trackIter int) (*ActiveTracker, *threads.Engine) {
	t.Helper()
	cl, err := dsm.New(dsm.Config{Nodes: nodes, Pages: nthreads})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })
	e, err := threads.NewEngine(cl, threads.Config{Threads: nthreads, SchedulerEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewActiveTracker(e, trackIter)
	e.SetHooks(tr.Hooks(threads.Hooks{}))
	tr.Start()
	if err := e.Run(ringBody(iters, nthreads)); err != nil {
		t.Fatal(err)
	}
	return tr, e
}

func TestActiveTrackerRingPattern(t *testing.T) {
	tr, e := runTracked(t, 2, 8, 3, 1)
	if !tr.Done() {
		t.Fatal("tracker not done")
	}
	if !e.SchedulerEnabled() {
		t.Fatal("scheduler not restored after tracking")
	}
	bm := tr.Bitmaps()
	for tid := 0; tid < 8; tid++ {
		want := map[vm.PageID]bool{
			vm.PageID(tid):           true,
			vm.PageID((tid + 1) % 8): true,
		}
		if bm[tid].Count() != 2 {
			t.Fatalf("thread %d touched %d pages: %v", tid, bm[tid].Count(), bm[tid].Pages())
		}
		for _, p := range bm[tid].Pages() {
			if !want[p] {
				t.Fatalf("thread %d touched unexpected page %d", tid, p)
			}
		}
	}
	m := tr.Matrix()
	// Ring: corr(i, i+1) = 1 (i's own page is read by i-1; i reads
	// i+1's page) — each adjacent pair shares exactly one page.
	for i := 0; i < 8; i++ {
		j := (i + 1) % 8
		if m.At(i, j) != 1 {
			t.Fatalf("corr(%d,%d) = %d, want 1\n%s", i, j, m.At(i, j), m.RenderASCII())
		}
	}
	if m.At(0, 4) != 0 {
		t.Fatalf("corr(0,4) = %d, want 0", m.At(0, 4))
	}
	if tr.TrackingFaults() != 16 {
		t.Fatalf("TrackingFaults = %d, want 16", tr.TrackingFaults())
	}
	// Sharing degree: pages inside a node's block are touched by 2
	// local threads except at block edges.
	sd := tr.SharingDegree()
	if sd < 1.0 || sd > 2.0 {
		t.Fatalf("SharingDegree = %v", sd)
	}
}

func TestActiveTrackerIterationZero(t *testing.T) {
	tr, _ := runTracked(t, 2, 4, 2, 0)
	if !tr.Done() {
		t.Fatal("tracking iteration 0 did not complete")
	}
	if tr.TrackingFaults() == 0 {
		t.Fatal("no tracking faults recorded")
	}
}

func TestActiveTrackerCompleteDespiteSharing(t *testing.T) {
	// The whole point of active tracking (paper §4.2): local threads'
	// accesses to already-valid pages are still observed. All threads
	// read page 0; passive tracking would see only one of them.
	cl, err := dsm.New(dsm.Config{Nodes: 2, Pages: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	e, err := threads.NewEngine(cl, threads.Config{Threads: 4, SchedulerEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewActiveTracker(e, 0)
	e.SetHooks(tr.Hooks(threads.Hooks{}))
	tr.Start()
	err = e.Run(func(tid int) threads.Body {
		return func(ctx *threads.Ctx) error {
			if _, err := ctx.Span(0, 8, vm.Read); err != nil {
				return err
			}
			ctx.EndIteration()
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for tid := 0; tid < 4; tid++ {
		if !tr.Bitmaps()[tid].Get(0) {
			t.Fatalf("thread %d's access to page 0 not tracked", tid)
		}
	}
	m := tr.Matrix()
	if m.At(0, 1) != 1 || m.At(2, 3) != 1 || m.At(0, 3) != 1 {
		t.Fatalf("all-pairs correlation missing:\n%s", m.RenderASCII())
	}
}

func TestPassiveTrackerPartialInformation(t *testing.T) {
	// Same all-read-page-0 workload: passive tracking sees only the
	// first faulting thread per node, so completeness < 1.
	cl, err := dsm.New(dsm.Config{Nodes: 2, Pages: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	e, err := threads.NewEngine(cl, threads.Config{Threads: 4, SchedulerEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	pt := NewPassiveTracker(e)
	err = e.Run(func(tid int) threads.Body {
		return func(ctx *threads.Ctx) error {
			if _, err := ctx.Span(0, 8, vm.Read); err != nil {
				return err
			}
			ctx.EndIteration()
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Reference: every thread touches page 0.
	ref := make([]*vm.Bitmap, 4)
	for i := range ref {
		ref[i] = vm.NewBitmap(2)
		ref[i].Set(0)
	}
	comp := pt.Completeness(ref)
	if comp >= 1 {
		t.Fatalf("passive completeness = %v, want < 1", comp)
	}
	if comp <= 0 {
		t.Fatalf("passive completeness = %v, want > 0 (node 1's first fault)", comp)
	}
	// Page 0's manager is node 0, whose threads never fault remotely —
	// only a node-1 thread shows up.
	var observed int
	for tid := 0; tid < 4; tid++ {
		if pt.Bitmaps()[tid].Get(0) {
			observed++
			if n := e.NodeOf(tid); n != 1 {
				t.Fatalf("unexpected observation from node %d", n)
			}
		}
	}
	if observed != 1 {
		t.Fatalf("observed %d threads, want exactly 1", observed)
	}
}

func TestPassiveTrackerDisable(t *testing.T) {
	cl, err := dsm.New(dsm.Config{Nodes: 2, Pages: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	e, err := threads.NewEngine(cl, threads.Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	pt := NewPassiveTracker(e)
	pt.SetEnabled(false)
	err = e.Run(func(tid int) threads.Body {
		return func(ctx *threads.Ctx) error {
			_, err := ctx.Span(memlayout.PageSize, 4, vm.Read)
			ctx.EndIteration()
			return err
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pt.Bitmaps() {
		if pt.Bitmaps()[i].Count() != 0 {
			t.Fatal("disabled tracker recorded accesses")
		}
	}
}

func TestMatrixDistance(t *testing.T) {
	a := NewMatrix(3)
	a.Set(0, 1, 10)
	a.Set(1, 2, 10)
	same := a.Clone()
	if d := a.Distance(same); d != 0 {
		t.Fatalf("identical distance = %v", d)
	}
	disjoint := NewMatrix(3)
	disjoint.Set(0, 2, 20)
	if d := a.Distance(disjoint); d != 1 {
		t.Fatalf("disjoint distance = %v", d)
	}
	half := a.Clone()
	half.Set(1, 2, 0)
	if d := a.Distance(half); d != 0.5 {
		t.Fatalf("half distance = %v", d)
	}
	// Different sizes and empty matrices.
	if d := a.Distance(NewMatrix(4)); d != 1 {
		t.Fatalf("size-mismatch distance = %v", d)
	}
	e := NewMatrix(3)
	if d := e.Distance(NewMatrix(3)); d != 0 {
		t.Fatalf("empty distance = %v", d)
	}
}

func TestMatrixDistanceSymmetricBounded(t *testing.T) {
	check := func(xs, ys []uint8) bool {
		a, b := NewMatrix(5), NewMatrix(5)
		k := 0
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				if k < len(xs) {
					a.Set(i, j, int64(xs[k]))
				}
				if k < len(ys) {
					b.Set(i, j, int64(ys[k]))
				}
				k++
			}
		}
		dab, dba := a.Distance(b), b.Distance(a)
		return dab == dba && dab >= 0 && dab <= 1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestActiveTrackerRetrack(t *testing.T) {
	// Track iteration 1, then re-track iteration 3 of a workload whose
	// sharing pattern changes between them: the two matrices must
	// reflect the change (nonzero Distance).
	cl, err := dsm.New(dsm.Config{Nodes: 2, Pages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	e, err := threads.NewEngine(cl, threads.Config{Threads: 4, SchedulerEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewActiveTracker(e, 1)
	var first *Matrix
	var dist float64
	e.SetHooks(tr.Hooks(threads.Hooks{OnIteration: func(iter int) {
		if iter == 1 {
			first = tr.Matrix()
			if err := tr.Retrack(3); err != nil {
				t.Errorf("retrack: %v", err)
			}
		}
		if iter == 3 {
			dist = first.Distance(tr.Matrix())
		}
	}}))
	err = e.Run(func(tid int) threads.Body {
		return func(ctx *threads.Ctx) error {
			for iter := 0; iter < 5; iter++ {
				// Phase 0-2: read right neighbour; phase 3+: read
				// the thread two over (pattern drift).
				stride := 1
				if iter >= 3 {
					stride = 2
				}
				own := tid * memlayout.PageSize
				if _, err := ctx.Span(own, 8, vm.Write); err != nil {
					return err
				}
				peer := ((tid + stride) % 4) * memlayout.PageSize
				if _, err := ctx.Span(peer, 8, vm.Read); err != nil {
					return err
				}
				ctx.EndIteration()
			}
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Done() {
		t.Fatal("second tracking phase incomplete")
	}
	if first == nil {
		t.Fatal("first matrix never captured")
	}
	if dist == 0 {
		t.Fatalf("drift not detected: distance = %v", dist)
	}
	// Error paths.
	if err := tr.Retrack(1); err == nil {
		t.Fatal("expected error for past iteration")
	}
}
