package core

import (
	"math"

	"actdsm/internal/threads"
	"actdsm/internal/vm"
)

// DensityTracker captures per-thread per-page *access counts* for one
// iteration — the paper's "ideal" sharing measure (§1): a density
// function of access rates whose per-page products give thread
// correlations. The paper explains why real page-based DSMs cannot
// capture this (once a page is mapped, accesses proceed transparently,
// and binary-rewriting approaches tax every write); this repo's software
// MMU observes every span access, so the ideal is available as an oracle
// to compare the practical page-set correlation against.
//
// Unlike ActiveTracker, density tracking needs no page re-protection and
// no scheduler changes — and correspondingly, it models an
// instrumentation no real system of the paper's era could afford.
type DensityTracker struct {
	engine    *threads.Engine
	trackIter int
	active    bool
	done      bool
	npages    int
	// counts[tid][page] is the number of span accesses.
	counts [][]int64
}

// NewDensityTracker prepares a density tracker for the given 0-based
// iteration.
func NewDensityTracker(e *threads.Engine, trackIter int) *DensityTracker {
	nthreads := e.NumThreads()
	npages := e.Cluster().NumPages()
	t := &DensityTracker{
		engine:    e,
		trackIter: trackIter,
		npages:    npages,
		counts:    make([][]int64, nthreads),
	}
	for i := range t.counts {
		t.counts[i] = make([]int64, npages)
	}
	e.Cluster().AddAccessHook(func(node, tid int, p vm.PageID, a vm.Access) {
		if t.active && tid >= 0 && tid < len(t.counts) {
			t.counts[tid][p]++
		}
	})
	return t
}

// Hooks wraps next with the tracker's iteration windowing; install the
// result with engine.SetHooks.
func (t *DensityTracker) Hooks(next threads.Hooks) threads.Hooks {
	return threads.Hooks{
		OnIteration: func(iter int) {
			if iter+1 == t.trackIter && !t.done {
				t.active = true
			}
			if iter == t.trackIter && t.active {
				t.active = false
				t.done = true
			}
			if next.OnIteration != nil {
				next.OnIteration(iter)
			}
		},
		OnBarrier:   next.OnBarrier,
		OnThreadRun: next.OnThreadRun,
	}
}

// Start arms tracking before the first iteration (for trackIter == 0).
func (t *DensityTracker) Start() {
	if t.trackIter == 0 && !t.done {
		t.active = true
	}
}

// Done reports whether the tracked iteration completed.
func (t *DensityTracker) Done() bool { return t.done }

// Counts returns the raw access counts (tid → page → accesses).
func (t *DensityTracker) Counts() [][]int64 { return t.counts }

// Matrix builds the density-product correlation matrix of the paper's §1:
// correlation(i, j) = Σ_p d_i(p)·d_j(p), with each thread's density
// normalized to unit L2 norm so the result is comparable in magnitude to
// the page-count correlation (the normalized products sum to ≤ the page
// count scale). Entries are scaled by the shared page count to stay in
// integer range meaningfully.
func (t *DensityTracker) Matrix() *Matrix {
	n := len(t.counts)
	norms := make([]float64, n)
	for i, row := range t.counts {
		var s float64
		for _, c := range row {
			s += float64(c) * float64(c)
		}
		norms[i] = math.Sqrt(s)
	}
	m := NewMatrix(n)
	const scale = 1 << 16
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			if norms[i] == 0 || norms[j] == 0 {
				continue
			}
			var dot float64
			for p := 0; p < t.npages; p++ {
				if t.counts[i][p] != 0 && t.counts[j][p] != 0 {
					dot += float64(t.counts[i][p]) * float64(t.counts[j][p])
				}
			}
			cos := dot / (norms[i] * norms[j])
			m.Set(i, j, int64(cos*scale))
		}
	}
	return m
}
