package core

import (
	"fmt"
	"strings"
)

// RenderSVG draws the correlation map as a self-contained SVG heatmap:
// one cell per thread pair, dark cells for high correlation, origin at
// the lower left (the paper's Table 3 orientation), with optional node
// free-zone outlines when assign is non-nil (Figure 3's squares).
//
// cellPx sets the pixel size per cell (clamped to [2, 32]).
func (m *Matrix) RenderSVG(cellPx int, assign []int) string {
	if cellPx < 2 {
		cellPx = 2
	}
	if cellPx > 32 {
		cellPx = 32
	}
	n := m.N()
	size := n * cellPx
	mx := m.Max()
	var b strings.Builder
	fmt.Fprintf(&b,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		size, size, size, size)
	b.WriteString(`<rect width="100%" height="100%" fill="#ffffff"/>`)
	for row := 0; row < n; row++ {
		// Row 0 at the bottom.
		y := (n - 1 - row) * cellPx
		for col := 0; col < n; col++ {
			v := m.At(row, col)
			if v <= 0 {
				continue
			}
			if v > mx {
				v = mx
			}
			gray := 255
			if mx > 0 {
				gray = int(255 - v*255/mx)
			}
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="#%02x%02x%02x"/>`,
				col*cellPx, y, cellPx, cellPx, gray, gray, gray)
		}
	}
	if assign != nil && len(assign) == n {
		// Outline each node's contiguous runs as free-zone squares.
		for _, zone := range freeZoneRects(assign) {
			fmt.Fprintf(&b,
				`<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#cc3333" stroke-width="1.5"/>`,
				zone.lo*cellPx, (n-zone.hi-1)*cellPx,
				(zone.hi-zone.lo+1)*cellPx, (zone.hi-zone.lo+1)*cellPx)
		}
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// zoneRect is a contiguous run of threads on one node.
type zoneRect struct{ lo, hi int }

// freeZoneRects returns the maximal contiguous same-node thread runs: the
// squares along the diagonal where sharing is free.
func freeZoneRects(assign []int) []zoneRect {
	var out []zoneRect
	lo := 0
	for i := 1; i <= len(assign); i++ {
		if i == len(assign) || assign[i] != assign[lo] {
			out = append(out, zoneRect{lo: lo, hi: i - 1})
			lo = i
		}
	}
	return out
}
