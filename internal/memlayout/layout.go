// Package memlayout manages the layout of the DSM's shared segment:
// named, page-aligned regions and typed views over the raw bytes.
//
// CVM shares only dynamically allocated data (paper §5); applications
// allocate named regions at startup and the resulting layout is identical
// on every node, so a (region, offset) pair names the same datum
// everywhere. Regions are page-aligned so that distinct regions never
// falsely share a page.
package memlayout

import (
	"fmt"
	"math"
)

// PageSize is the shared-segment page size in bytes. CVM used the i386
// 4 KiB page, and the paper's Table 1 page counts follow from it.
const PageSize = 4096

// Region is a named, page-aligned range of the shared segment.
type Region struct {
	Name string
	Off  int // byte offset, multiple of PageSize
	Size int // requested size in bytes
}

// FirstPage returns the index of the region's first page.
func (r Region) FirstPage() int { return r.Off / PageSize }

// NumPages returns the number of pages the region spans.
func (r Region) NumPages() int { return (r.Size + PageSize - 1) / PageSize }

// PageOf returns the page index holding byte offset rel within the region.
func (r Region) PageOf(rel int) int { return (r.Off + rel) / PageSize }

// Layout assigns regions to page-aligned extents of the shared segment.
type Layout struct {
	next    int
	regions map[string]Region
	order   []string
}

// NewLayout returns an empty layout.
func NewLayout() *Layout {
	return &Layout{regions: make(map[string]Region)}
}

// Alloc reserves size bytes under name, page-aligned. It returns an error
// if the name is already taken or size is not positive.
func (l *Layout) Alloc(name string, size int) (Region, error) {
	if size <= 0 {
		return Region{}, fmt.Errorf("memlayout: alloc %q: size %d not positive", name, size)
	}
	if _, ok := l.regions[name]; ok {
		return Region{}, fmt.Errorf("memlayout: alloc %q: already allocated", name)
	}
	r := Region{Name: name, Off: l.next, Size: size}
	pages := r.NumPages()
	l.next += pages * PageSize
	l.regions[name] = r
	l.order = append(l.order, name)
	return r, nil
}

// MustAlloc is Alloc for application setup code, where a failure is a
// programming error in the app's Layout method.
func (l *Layout) MustAlloc(name string, size int) Region {
	r, err := l.Alloc(name, size)
	if err != nil {
		panic(err)
	}
	return r
}

// Region returns the region registered under name.
func (l *Layout) Region(name string) (Region, bool) {
	r, ok := l.regions[name]
	return r, ok
}

// TotalBytes returns the segment size implied by the layout so far.
func (l *Layout) TotalBytes() int { return l.next }

// TotalPages returns the number of shared pages in the layout, the
// quantity the paper's Table 1 reports per application.
func (l *Layout) TotalPages() int { return l.next / PageSize }

// Regions returns the regions in allocation order.
func (l *Layout) Regions() []Region {
	out := make([]Region, 0, len(l.order))
	for _, n := range l.order {
		out = append(out, l.regions[n])
	}
	return out
}

// The typed views below read and write through a raw byte slice (a window
// of a node's segment copy) in little-endian order. Writes land directly
// in the segment so the DSM's twin/diff machinery observes them.

// F32 is a float32 view over raw segment bytes.
type F32 struct{ b []byte }

// ViewF32 wraps b (length must be a multiple of 4).
func ViewF32(b []byte) F32 { return F32{b} }

// Len returns the number of float32 elements.
func (v F32) Len() int { return len(v.b) / 4 }

// Get returns element i.
func (v F32) Get(i int) float32 {
	return math.Float32frombits(leU32(v.b[i*4:]))
}

// Set stores x at element i.
func (v F32) Set(i int, x float32) {
	putU32(v.b[i*4:], math.Float32bits(x))
}

// F64 is a float64 view over raw segment bytes.
type F64 struct{ b []byte }

// ViewF64 wraps b (length must be a multiple of 8).
func ViewF64(b []byte) F64 { return F64{b} }

// Len returns the number of float64 elements.
func (v F64) Len() int { return len(v.b) / 8 }

// Get returns element i.
func (v F64) Get(i int) float64 {
	return math.Float64frombits(leU64(v.b[i*8:]))
}

// Set stores x at element i.
func (v F64) Set(i int, x float64) {
	putU64(v.b[i*8:], math.Float64bits(x))
}

// I32 is an int32 view over raw segment bytes.
type I32 struct{ b []byte }

// ViewI32 wraps b (length must be a multiple of 4).
func ViewI32(b []byte) I32 { return I32{b} }

// Len returns the number of int32 elements.
func (v I32) Len() int { return len(v.b) / 4 }

// Get returns element i.
func (v I32) Get(i int) int32 { return int32(leU32(v.b[i*4:])) }

// Set stores x at element i.
func (v I32) Set(i int, x int32) { putU32(v.b[i*4:], uint32(x)) }

func leU32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putU32(b []byte, v uint32) {
	_ = b[3]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func leU64(b []byte) uint64 {
	_ = b[7]
	return uint64(leU32(b)) | uint64(leU32(b[4:]))<<32
}

func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}
