package memlayout

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAllocAlignment(t *testing.T) {
	l := NewLayout()
	a, err := l.Alloc("a", 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Alloc("b", PageSize+1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Off != 0 || a.NumPages() != 1 || a.FirstPage() != 0 {
		t.Fatalf("a = %+v", a)
	}
	if b.Off != PageSize || b.NumPages() != 2 || b.FirstPage() != 1 {
		t.Fatalf("b = %+v", b)
	}
	if l.TotalPages() != 3 || l.TotalBytes() != 3*PageSize {
		t.Fatalf("totals: %d pages, %d bytes", l.TotalPages(), l.TotalBytes())
	}
}

func TestAllocErrors(t *testing.T) {
	l := NewLayout()
	if _, err := l.Alloc("x", 0); err == nil {
		t.Fatal("expected error for zero size")
	}
	if _, err := l.Alloc("x", -1); err == nil {
		t.Fatal("expected error for negative size")
	}
	if _, err := l.Alloc("x", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Alloc("x", 10); err == nil {
		t.Fatal("expected error for duplicate name")
	}
}

func TestMustAllocPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLayout().MustAlloc("bad", -5)
}

func TestRegionLookupAndOrder(t *testing.T) {
	l := NewLayout()
	l.MustAlloc("grid", 2*PageSize)
	l.MustAlloc("sums", 64)
	r, ok := l.Region("grid")
	if !ok || r.Size != 2*PageSize {
		t.Fatalf("Region(grid) = %+v, %v", r, ok)
	}
	if _, ok := l.Region("nope"); ok {
		t.Fatal("unexpected region")
	}
	rs := l.Regions()
	if len(rs) != 2 || rs[0].Name != "grid" || rs[1].Name != "sums" {
		t.Fatalf("Regions = %+v", rs)
	}
}

func TestPageOf(t *testing.T) {
	l := NewLayout()
	l.MustAlloc("pad", PageSize) // push next region to page 1
	r := l.MustAlloc("r", 3*PageSize)
	if r.PageOf(0) != 1 || r.PageOf(PageSize) != 2 || r.PageOf(3*PageSize-1) != 3 {
		t.Fatalf("PageOf wrong: %d %d %d", r.PageOf(0), r.PageOf(PageSize), r.PageOf(3*PageSize-1))
	}
}

func TestTable1PageCounts(t *testing.T) {
	// Sanity-check the page arithmetic against two rows of the paper's
	// Table 1: SOR 2048x2048 single-precision ≈ 4096 data pages, and
	// LU 1024x1024 single-precision = 1024 data pages.
	l := NewLayout()
	sor := l.MustAlloc("sor", 2048*2048*4)
	if sor.NumPages() != 4096 {
		t.Fatalf("SOR pages = %d, want 4096", sor.NumPages())
	}
	lu := l.MustAlloc("lu", 1024*1024*4)
	if lu.NumPages() != 1024 {
		t.Fatalf("LU pages = %d, want 1024", lu.NumPages())
	}
}

func TestF32RoundTrip(t *testing.T) {
	b := make([]byte, 16)
	v := ViewF32(b)
	if v.Len() != 4 {
		t.Fatalf("Len = %d", v.Len())
	}
	vals := []float32{0, -1.5, math.MaxFloat32, float32(math.Inf(1))}
	for i, x := range vals {
		v.Set(i, x)
	}
	for i, x := range vals {
		if got := v.Get(i); got != x {
			t.Fatalf("Get(%d) = %v, want %v", i, got, x)
		}
	}
}

func TestF64RoundTrip(t *testing.T) {
	check := func(xs []float64) bool {
		b := make([]byte, len(xs)*8)
		v := ViewF64(b)
		for i, x := range xs {
			v.Set(i, x)
		}
		for i, x := range xs {
			got := v.Get(i)
			if got != x && !(math.IsNaN(got) && math.IsNaN(x)) {
				return false
			}
		}
		return v.Len() == len(xs)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestI32RoundTrip(t *testing.T) {
	check := func(xs []int32) bool {
		b := make([]byte, len(xs)*4)
		v := ViewI32(b)
		for i, x := range xs {
			v.Set(i, x)
		}
		for i, x := range xs {
			if v.Get(i) != x {
				return false
			}
		}
		return v.Len() == len(xs)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestViewsLittleEndian(t *testing.T) {
	b := make([]byte, 4)
	ViewI32(b).Set(0, 0x01020304)
	if b[0] != 0x04 || b[3] != 0x01 {
		t.Fatalf("not little-endian: % x", b)
	}
}
