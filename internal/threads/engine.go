package threads

import (
	"context"
	"errors"
	"fmt"

	"actdsm/internal/dsm"
	"actdsm/internal/sim"
)

// Body is an application thread's code. It runs to completion, calling
// Ctx methods for shared-memory access and synchronization.
type Body func(ctx *Ctx) error

type threadState uint8

const (
	stateRunnable threadState = iota + 1
	stateAtBarrier
	stateAtIterEnd
	stateLockWait
	stateDone
)

type eventKind uint8

const (
	evBarrier eventKind = iota + 1
	evIterEnd
	evLockWait
	evYield
	evDone
)

type event struct {
	kind eventKind
	lock int32
	err  error
}

type thread struct {
	id     int
	resume chan struct{}
	events chan event
	state  threadState
	// cur accumulates the thread's virtual-time charges in the current
	// synchronization interval.
	cur sim.ThreadInterval
	// waitLock is the lock the thread is queued on in stateLockWait.
	waitLock int32
	started  bool
	body     Body
}

// Hooks receive engine events; all are optional.
type Hooks struct {
	// OnIteration is called after iteration iter (0-based) completes at
	// an EndIteration barrier, with all threads parked. Migration and
	// tracking-mode changes are safe here.
	OnIteration func(iter int)
	// OnBarrier is called after every barrier episode (including
	// iteration ends), with all threads parked.
	OnBarrier func()
	// OnThreadRun is called immediately before a thread begins or
	// resumes a run slice on its node. The active tracker uses it to
	// re-arm correlation bits at local thread switches.
	OnThreadRun func(node, tid int)
}

// Observer receives fine-grained engine events for the observability
// layer (internal/obs implements it). Unlike Hooks, which exist for
// protocol layers that steer execution (trackers, placement), an
// Observer is instrumentation only: it must not call back into the
// engine or charge virtual time. All methods run on the engine
// goroutine with all threads parked or mid-switch, so implementations
// need no internal ordering beyond their own.
//
// The interface is structural so that internal/obs can implement it
// without this package importing it (threads must stay importable from
// obs's dependency set).
type Observer interface {
	// SliceEnd reports the virtual-time charges one thread accumulated
	// in a single run slice (from being scheduled to yielding at a sync
	// point), including the thread-switch overhead that scheduled it.
	// Zero-delta slices are not reported.
	SliceEnd(node, tid, epoch int, ti sim.ThreadInterval)
	// LockStall reports the wire stall a thread paid acquiring a lock,
	// for stall decomposition (the charge is already inside the slice's
	// Stall; this call attributes it).
	LockStall(node, tid int, lock int32, stall sim.Time)
	// EpochEnd reports one node's barrier-episode summary: the clock at
	// episode start, the folded thread time, the node's barrier-protocol
	// and prefetch-round costs, and the rendezvous wait that pads it to
	// the global release time. start+folded+barrier+prefetch+wait equals
	// the node clock at release, so spans tile the timeline exactly.
	EpochEnd(node, epoch int, start, folded, barrier, prefetch, wait sim.Time)
	// Migrated reports a thread migration with the source clock at
	// departure and the stack-transfer cost charged to both endpoints.
	Migrated(tid, from, to int, at, cost sim.Time)
}

// Config configures an engine.
type Config struct {
	// Threads is the application thread count.
	Threads int
	// Placement maps thread → node; nil selects the stretch-like
	// default of contiguous equal blocks.
	Placement []int
	// SchedulerEnabled selects the latency-toleration time model; the
	// active tracker disables it during tracked iterations.
	SchedulerEnabled bool
	// ShuffleSeed, when non-zero, randomizes each node's local thread
	// execution order every interval, emulating the scheduling
	// nondeterminism the paper's passive-tracking discussion relies on.
	ShuffleSeed uint64
	// MigrationStackBytes is the stack payload a migration ships.
	MigrationStackBytes int
	// NodeSpeeds scales each node's CPU speed (1.0 = baseline; 2.0 =
	// twice as fast). nil derives the speeds from the cluster's
	// heterogeneous topology when one is configured (the inverse of
	// sim.Topology.ComputeScale), and means homogeneous otherwise. The
	// paper's §2 motivates unequal thread counts with exactly this
	// heterogeneity ("some machines are faster than others");
	// capacity-aware placement (placement.StretchCapacities /
	// MinCostCapacities) exploits it.
	NodeSpeeds []float64
}

// Engine runs application threads over a DSM cluster.
type Engine struct {
	cluster *dsm.Cluster
	cfg     Config
	costs   sim.Costs

	threads []*thread
	nodeOf  []int
	clocks  []*sim.Clock
	hooks   Hooks
	obs     Observer
	rng     *sim.RNG
	// epoch counts completed barrier episodes, for Observer labelling.
	epoch int

	schedOn   bool
	iter      int
	lockOwner map[int32]int // lock → holding thread
	lastRun   []int         // node → tid of last thread run there

	// order[node] is the node's local execution order for this interval.
	order [][]int
	// nodeSeq is the fixed node iteration order (cached allocation).
	nodeSeq []int
}

// ErrDeadlock reports that no thread can make progress.
var ErrDeadlock = errors.New("threads: deadlock: no runnable thread and barrier incomplete")

const defaultStackBytes = 16 << 10

// NewEngine builds an engine for the cluster.
func NewEngine(cluster *dsm.Cluster, cfg Config) (*Engine, error) {
	if cfg.Threads <= 0 {
		return nil, errors.New("threads: Threads must be positive")
	}
	nnodes := cluster.NumNodes()
	if cfg.Placement == nil {
		cfg.Placement = BlockPlacement(cfg.Threads, nnodes)
	}
	if len(cfg.Placement) != cfg.Threads {
		return nil, fmt.Errorf("threads: placement has %d entries for %d threads", len(cfg.Placement), cfg.Threads)
	}
	for tid, n := range cfg.Placement {
		if n < 0 || n >= nnodes {
			return nil, fmt.Errorf("threads: thread %d placed on invalid node %d", tid, n)
		}
	}
	if cfg.MigrationStackBytes == 0 {
		cfg.MigrationStackBytes = defaultStackBytes
	}
	if cfg.NodeSpeeds == nil {
		// A heterogeneous cluster topology is the single source of
		// hardware truth: derive node speeds from its per-node compute
		// scaling (a cost multiplier — 2 = half speed) so the same
		// Topology drives both network charging (dsm.Cluster.call) and
		// compute folding here. Explicit NodeSpeeds still override.
		if topo := cluster.Topology(); topo != nil {
			speeds := make([]float64, nnodes)
			for n := range speeds {
				speeds[n] = 1 / topo.ComputeScale(n)
			}
			cfg.NodeSpeeds = speeds
		}
	}
	if cfg.NodeSpeeds != nil {
		if len(cfg.NodeSpeeds) != nnodes {
			return nil, fmt.Errorf("threads: %d node speeds for %d nodes", len(cfg.NodeSpeeds), nnodes)
		}
		for n, s := range cfg.NodeSpeeds {
			if s <= 0 {
				return nil, fmt.Errorf("threads: node %d speed %v not positive", n, s)
			}
		}
	}
	e := &Engine{
		cluster:   cluster,
		cfg:       cfg,
		costs:     cluster.Costs(),
		nodeOf:    append([]int(nil), cfg.Placement...),
		clocks:    make([]*sim.Clock, nnodes),
		schedOn:   cfg.SchedulerEnabled,
		lockOwner: make(map[int32]int),
		lastRun:   make([]int, nnodes),
	}
	for i := range e.clocks {
		e.clocks[i] = &sim.Clock{}
	}
	for i := range e.lastRun {
		e.lastRun[i] = -1
	}
	if cfg.ShuffleSeed != 0 {
		e.rng = sim.NewRNG(cfg.ShuffleSeed)
	}
	return e, nil
}

// BlockPlacement is the default contiguous-blocks placement: the first
// threads/nodes threads on node 0, the next block on node 1, and so on —
// identical to the paper's stretch heuristic.
func BlockPlacement(threads, nodes int) []int {
	out := make([]int, threads)
	per := threads / nodes
	extra := threads % nodes
	tid := 0
	for n := 0; n < nodes; n++ {
		cnt := per
		if n < extra {
			cnt++
		}
		for i := 0; i < cnt && tid < threads; i++ {
			out[tid] = n
			tid++
		}
	}
	return out
}

// SetHooks installs engine hooks.
func (e *Engine) SetHooks(h Hooks) { e.hooks = h }

// SetObserver installs the instrumentation observer (nil detaches).
// Install before Run; installation is not synchronized with execution.
func (e *Engine) SetObserver(o Observer) { e.obs = o }

// SetSchedulerEnabled toggles the latency-toleration time model; the
// active tracker turns it off for tracked iterations (paper §4.2).
func (e *Engine) SetSchedulerEnabled(on bool) { e.schedOn = on }

// SchedulerEnabled reports the current scheduler mode.
func (e *Engine) SchedulerEnabled() bool { return e.schedOn }

// NodeOf returns the node currently hosting a thread.
func (e *Engine) NodeOf(tid int) int { return e.nodeOf[tid] }

// Placement returns a copy of the current thread → node assignment.
func (e *Engine) Placement() []int { return append([]int(nil), e.nodeOf...) }

// NumThreads returns the thread count.
func (e *Engine) NumThreads() int { return e.cfg.Threads }

// Cluster returns the engine's DSM cluster.
func (e *Engine) Cluster() *dsm.Cluster { return e.cluster }

// Elapsed returns the cluster-wide elapsed virtual time (the maximum node
// clock).
func (e *Engine) Elapsed() sim.Time { return sim.MaxClock(e.clocks) }

// NodeClock returns a node's elapsed virtual time.
func (e *Engine) NodeClock(node int) sim.Time { return e.clocks[node].Now() }

// AdvanceNode charges d of virtual time to a node's clock. Instrumentation
// layered on the engine (e.g. the active tracker's page re-protection at
// thread switches) uses this to account its own overhead.
func (e *Engine) AdvanceNode(node int, d sim.Time) { e.clocks[node].Advance(d) }

// Iteration returns the number of completed iterations.
func (e *Engine) Iteration() int { return e.iter }

// Migrate moves a thread to a node. It must be called with all threads
// parked (from an OnIteration or OnBarrier hook, or before Run). The
// migration ships the thread's stack; both endpoints are charged.
func (e *Engine) Migrate(tid, node int) error {
	if node < 0 || node >= len(e.clocks) {
		return fmt.Errorf("threads: migrate to invalid node %d", node)
	}
	from := e.nodeOf[tid]
	if from == node {
		return nil
	}
	cost := e.costs.FetchCost(64, e.cfg.MigrationStackBytes)
	at := e.clocks[from].Now()
	e.clocks[from].Advance(cost)
	e.clocks[node].Advance(cost)
	e.nodeOf[tid] = node
	if e.obs != nil {
		e.obs.Migrated(tid, from, node, at, cost)
	}
	return nil
}

// ApplyPlacement migrates every thread whose assignment differs — the
// paper's single round of migrations once a new mapping is chosen.
// It returns the number of threads moved.
func (e *Engine) ApplyPlacement(assign []int) (int, error) {
	if len(assign) != len(e.nodeOf) {
		return 0, fmt.Errorf("threads: placement has %d entries for %d threads", len(assign), len(e.nodeOf))
	}
	moved := 0
	for tid, n := range assign {
		if e.nodeOf[tid] != n {
			if err := e.Migrate(tid, n); err != nil {
				return moved, err
			}
			moved++
		}
	}
	return moved, nil
}

// Run spawns one thread per Body produced by bodyFor and drives them all
// to completion. It is RunContext with a background context.
func (e *Engine) Run(bodyFor func(tid int) Body) error {
	return e.RunContext(context.Background(), bodyFor)
}

// RunContext is Run with cancellation: the scheduler checks ctx between
// rounds and returns ctx.Err() once it is done, abandoning the parked
// threads. Open-ended workloads (request-driven serving) rely on this as
// their stop signal; batch workloads get best-effort early exit. The
// engine is single-shot either way — a cancelled engine cannot be rerun.
func (e *Engine) RunContext(ctx context.Context, bodyFor func(tid int) Body) error {
	if e.threads != nil {
		return errors.New("threads: engine already ran")
	}
	e.threads = make([]*thread, e.cfg.Threads)
	for i := range e.threads {
		e.threads[i] = &thread{
			id:     i,
			resume: make(chan struct{}),
			events: make(chan event),
			state:  stateRunnable,
			body:   bodyFor(i),
		}
	}
	defer e.reapThreads()
	return e.loop(ctx)
}

// reapThreads unblocks any still-parked thread goroutines after an error
// so they exit instead of leaking.
func (e *Engine) reapThreads() {
	for _, t := range e.threads {
		if t.state != stateDone && t.started {
			t.abandon()
		}
	}
}

func (t *thread) abandon() {
	// Closing resume makes any future waits panic inside the goroutine;
	// recover in the shim turns that into an exit.
	close(t.resume)
	for ev := range t.events {
		if ev.kind == evDone {
			break
		}
	}
	t.state = stateDone
}

func (e *Engine) loop(ctx context.Context) error {
	live := len(e.threads)
	e.refreshOrder()
	for live > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		progress := false
		for _, node := range e.nodeOrder() {
			for _, tid := range e.order[node] {
				t := e.threads[tid]
				if t.state != stateRunnable || e.nodeOf[tid] != node {
					continue
				}
				progress = true
				if e.hooks.OnThreadRun != nil {
					e.hooks.OnThreadRun(node, tid)
				}
				before := t.cur
				if e.lastRun[node] != tid && e.lastRun[node] >= 0 {
					t.cur.Overhead += e.costs.SwitchCost
				}
				e.lastRun[node] = tid
				ev := e.runSlice(t)
				if e.obs != nil {
					d := sim.ThreadInterval{
						Compute:  t.cur.Compute - before.Compute,
						Stall:    t.cur.Stall - before.Stall,
						Overhead: t.cur.Overhead - before.Overhead,
					}
					if d != (sim.ThreadInterval{}) {
						e.obs.SliceEnd(node, tid, e.epoch, d)
					}
				}
				switch ev.kind {
				case evDone:
					t.state = stateDone
					live--
					if ev.err != nil {
						return fmt.Errorf("threads: thread %d: %w", t.id, ev.err)
					}
				case evBarrier:
					t.state = stateAtBarrier
				case evIterEnd:
					t.state = stateAtIterEnd
				case evLockWait:
					t.state = stateLockWait
					t.waitLock = ev.lock
				case evYield:
					// Stays runnable; the slice just ended so co-resident
					// threads get a turn before the next poll.
				}
			}
		}
		if live == 0 {
			break
		}
		if e.barrierReady(live) {
			if err := e.completeBarrier(); err != nil {
				return err
			}
			continue
		}
		if !progress {
			return ErrDeadlock
		}
	}
	// Fold any residual post-final-barrier work into the node clocks.
	if e.obs != nil {
		start := make([]sim.Time, len(e.clocks))
		for n, c := range e.clocks {
			start[n] = c.Now()
		}
		e.foldIntervals()
		for n, c := range e.clocks {
			if folded := c.Now() - start[n]; folded > 0 {
				e.obs.EpochEnd(n, e.epoch, start[n], folded, 0, 0, 0)
			}
		}
		e.epoch++
	} else {
		e.foldIntervals()
	}
	return nil
}

// nodeOrder returns node indices 0..n-1 (kept as a method for symmetry
// and future policies; the slice is cached across scheduler rounds).
func (e *Engine) nodeOrder() []int {
	if e.nodeSeq == nil {
		e.nodeSeq = make([]int, len(e.clocks))
		for i := range e.nodeSeq {
			e.nodeSeq[i] = i
		}
	}
	return e.nodeSeq
}

// refreshOrder recomputes each node's local thread execution order,
// shuffling when configured.
func (e *Engine) refreshOrder() {
	nnodes := len(e.clocks)
	e.order = make([][]int, nnodes)
	for tid := range e.threads {
		n := e.nodeOf[tid]
		e.order[n] = append(e.order[n], tid)
	}
	if e.rng != nil {
		for n := range e.order {
			o := e.order[n]
			e.rng.Shuffle(len(o), func(i, j int) { o[i], o[j] = o[j], o[i] })
		}
	}
}

func (e *Engine) runSlice(t *thread) event {
	if !t.started {
		t.started = true
		go func() {
			defer close(t.events)
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(abandoned); ok {
						return // engine tore the thread down
					}
					panic(r)
				}
			}()
			ctx := &Ctx{engine: e, t: t}
			err := t.body(ctx)
			t.events <- event{kind: evDone, err: err}
		}()
	} else {
		t.resume <- struct{}{}
	}
	return <-t.events
}

// abandoned is the panic payload thrown inside a thread goroutine when the
// engine abandons it after an error.
type abandoned struct{}

// barrierReady reports whether every live thread is parked at a barrier
// (plain or iteration-end).
func (e *Engine) barrierReady(live int) bool {
	parked := 0
	for _, t := range e.threads {
		switch t.state {
		case stateAtBarrier, stateAtIterEnd:
			parked++
		case stateDone:
		default:
			return false
		}
	}
	return parked == live && live > 0
}

// completeBarrier advances virtual time, runs the DSM barrier protocol,
// fires hooks, and releases the threads.
func (e *Engine) completeBarrier() error {
	var start []sim.Time
	if e.obs != nil {
		start = make([]sim.Time, len(e.clocks))
		for n, c := range e.clocks {
			start[n] = c.Now()
		}
	}
	e.foldIntervals()
	var folded []sim.Time
	if e.obs != nil {
		folded = make([]sim.Time, len(e.clocks))
		for n, c := range e.clocks {
			folded[n] = c.Now() - start[n]
		}
	}
	costs, err := e.cluster.Barrier()
	if err != nil {
		return err
	}
	for n, c := range costs {
		e.clocks[n].Advance(c)
	}
	// Fault tolerance: the barrier may have shrunk the membership view.
	// Threads resident on a crashed node resume on its ring successor —
	// the node holding the crashed node's replicated manager state — so
	// the workload completes over the survivors.
	for _, d := range e.cluster.DeadNodes() {
		to := e.cluster.AliveSuccessor(d)
		for tid, n := range e.nodeOf {
			if n == d && to != d {
				if err := e.Migrate(tid, to); err != nil {
					return err
				}
			}
		}
	}
	// Correlation-driven prefetch rides the barrier release: the epoch's
	// write notices are fully delivered, the threads are still parked, and
	// each node can pull the pages its residents are predicted to touch
	// before demand faults pay per-page round trips. No-op unless the
	// cluster's PrefetchBudget enables it.
	pcosts, err := e.cluster.PrefetchRound()
	if err != nil {
		return err
	}
	for n, c := range pcosts {
		e.clocks[n].Advance(c)
	}
	// Global rendezvous: everyone leaves at the latest clock.
	maxT := sim.MaxClock(e.clocks)
	if e.obs != nil {
		for n, c := range e.clocks {
			var bc, pc sim.Time
			if n < len(costs) {
				bc = costs[n]
			}
			if n < len(pcosts) {
				pc = pcosts[n]
			}
			e.obs.EpochEnd(n, e.epoch, start[n], folded[n], bc, pc, maxT-c.Now())
		}
		e.epoch++
	}
	for _, c := range e.clocks {
		c.SyncTo(maxT)
	}

	iterEnd := false
	for _, t := range e.threads {
		if t.state == stateAtIterEnd {
			iterEnd = true
		}
	}
	if e.hooks.OnBarrier != nil {
		e.hooks.OnBarrier()
	}
	if iterEnd {
		iter := e.iter
		e.iter++
		if e.hooks.OnIteration != nil {
			e.hooks.OnIteration(iter)
		}
	}
	e.refreshOrder()
	for _, t := range e.threads {
		if t.state == stateAtBarrier || t.state == stateAtIterEnd {
			t.state = stateRunnable
		}
	}
	return nil
}

// foldIntervals converts each node's accumulated per-thread charges into
// node clock time under the current scheduler mode and resets them.
// Heterogeneous node speeds scale CPU time (compute + overhead); network
// stalls are unaffected.
func (e *Engine) foldIntervals() {
	nnodes := len(e.clocks)
	byNode := make([][]sim.ThreadInterval, nnodes)
	for tid, t := range e.threads {
		if t.cur != (sim.ThreadInterval{}) {
			n := e.nodeOf[tid]
			ti := t.cur
			if e.cfg.NodeSpeeds != nil {
				s := e.cfg.NodeSpeeds[n]
				ti.Compute = sim.Time(float64(ti.Compute) / s)
				ti.Overhead = sim.Time(float64(ti.Overhead) / s)
			}
			byNode[n] = append(byNode[n], ti)
			t.cur = sim.ThreadInterval{}
		}
	}
	for n, ivs := range byNode {
		if len(ivs) > 0 {
			e.clocks[n].Advance(sim.NodeIntervalTime(ivs, e.schedOn))
		}
	}
}

// acquireLock implements Ctx.Lock: it runs on the thread goroutine while
// the engine is parked, so engine state access is safe.
func (e *Engine) acquireLock(t *thread, lock int32) error {
	for {
		if _, held := e.lockOwner[lock]; !held {
			break
		}
		// Contention cannot arise in this engine (threads only yield
		// at synchronization points), but queue defensively.
		t.yield(event{kind: evLockWait, lock: lock})
	}
	e.lockOwner[lock] = t.id
	cost, err := e.cluster.AcquireLock(e.nodeOf[t.id], t.id, lock)
	if err != nil {
		return err
	}
	t.cur.Stall += cost
	if e.obs != nil && cost > 0 {
		e.obs.LockStall(e.nodeOf[t.id], t.id, lock, cost)
	}
	return nil
}

func (e *Engine) releaseLock(t *thread, lock int32) error {
	owner, held := e.lockOwner[lock]
	if !held || owner != t.id {
		return fmt.Errorf("threads: thread %d released lock %d it does not hold", t.id, lock)
	}
	cost, err := e.cluster.ReleaseLock(e.nodeOf[t.id], t.id, lock)
	if err != nil {
		return err
	}
	t.cur.Overhead += cost
	delete(e.lockOwner, lock)
	// Wake one waiter, if any (FIFO by thread id for determinism).
	for _, w := range e.threads {
		if w.state == stateLockWait && w.waitLock == lock {
			w.state = stateRunnable
			break
		}
	}
	return nil
}

// yield parks the thread goroutine and hands control to the engine.
func (t *thread) yield(ev event) {
	t.events <- ev
	if _, ok := <-t.resume; !ok {
		panic(abandoned{})
	}
}
