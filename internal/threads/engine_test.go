package threads

import (
	"errors"
	"fmt"
	"testing"

	"actdsm/internal/dsm"
	"actdsm/internal/memlayout"
	"actdsm/internal/vm"
)

func newTestEngine(t *testing.T, nodes, pages, nthreads int, cfg Config) *Engine {
	t.Helper()
	c, err := dsm.New(dsm.Config{Nodes: nodes, Pages: pages})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	cfg.Threads = nthreads
	e, err := NewEngine(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestBlockPlacement(t *testing.T) {
	cases := []struct {
		threads, nodes int
		want           []int
	}{
		{4, 2, []int{0, 0, 1, 1}},
		{5, 2, []int{0, 0, 0, 1, 1}},
		{6, 3, []int{0, 0, 1, 1, 2, 2}},
		{3, 4, []int{0, 1, 2}},
	}
	for _, c := range cases {
		got := BlockPlacement(c.threads, c.nodes)
		if len(got) != len(c.want) {
			t.Fatalf("%d/%d: got %v", c.threads, c.nodes, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("%d/%d: got %v, want %v", c.threads, c.nodes, got, c.want)
			}
		}
	}
}

func TestEngineValidation(t *testing.T) {
	c, err := dsm.New(dsm.Config{Nodes: 2, Pages: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if _, err := NewEngine(c, Config{Threads: 0}); err == nil {
		t.Fatal("expected error for zero threads")
	}
	if _, err := NewEngine(c, Config{Threads: 2, Placement: []int{0}}); err == nil {
		t.Fatal("expected error for short placement")
	}
	if _, err := NewEngine(c, Config{Threads: 2, Placement: []int{0, 9}}); err == nil {
		t.Fatal("expected error for invalid node")
	}
}

func TestRunBarriersAndIterations(t *testing.T) {
	e := newTestEngine(t, 2, 2, 4, Config{SchedulerEnabled: true})
	var iterations []int
	barriers := 0
	e.SetHooks(Hooks{
		OnIteration: func(i int) { iterations = append(iterations, i) },
		OnBarrier:   func() { barriers++ },
	})
	err := e.Run(func(tid int) Body {
		return func(ctx *Ctx) error {
			for iter := 0; iter < 3; iter++ {
				ctx.Barrier() // internal phase barrier
				ctx.EndIteration()
			}
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(iterations) != 3 || iterations[2] != 2 {
		t.Fatalf("iterations = %v", iterations)
	}
	if barriers != 6 {
		t.Fatalf("barriers = %d, want 6", barriers)
	}
	if e.Iteration() != 3 {
		t.Fatalf("Iteration() = %d", e.Iteration())
	}
}

func TestSharedCounterThroughBarrier(t *testing.T) {
	// Each thread increments its own slot, then after a barrier thread 0
	// sums all slots: classic SPMD reduction. Verifies engine + DSM
	// integration end to end.
	e := newTestEngine(t, 4, 1, 8, Config{SchedulerEnabled: true})
	var got float32
	err := e.Run(func(tid int) Body {
		return func(ctx *Ctx) error {
			v, err := ctx.F32(memlayout.Region{Off: 0, Size: 64}, tid, 1, vm.Write)
			if err != nil {
				return err
			}
			v.Set(0, float32(tid+1))
			ctx.Compute(1)
			ctx.Barrier()
			if ctx.TID() == 0 {
				all, err := ctx.F32(memlayout.Region{Off: 0, Size: 64}, 0, 8, vm.Read)
				if err != nil {
					return err
				}
				for i := 0; i < 8; i++ {
					got += all.Get(i)
				}
			}
			ctx.EndIteration()
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 36 { // 1+2+...+8
		t.Fatalf("sum = %v, want 36", got)
	}
}

func TestElapsedAdvances(t *testing.T) {
	e := newTestEngine(t, 2, 1, 2, Config{SchedulerEnabled: true})
	err := e.Run(func(tid int) Body {
		return func(ctx *Ctx) error {
			ctx.Compute(1000)
			ctx.EndIteration()
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.Elapsed() <= 0 {
		t.Fatal("virtual time did not advance")
	}
	if e.NodeClock(0) != e.NodeClock(1) {
		t.Fatalf("clocks diverge after barrier: %d vs %d", e.NodeClock(0), e.NodeClock(1))
	}
}

func TestSchedulerModeAffectsTime(t *testing.T) {
	// A workload with remote stalls takes longer with the scheduler
	// disabled (stalls serialize) — the basis of Table 5's overhead.
	run := func(schedOn bool) int64 {
		e := newTestEngine(t, 2, 8, 8, Config{SchedulerEnabled: schedOn})
		err := e.Run(func(tid int) Body {
			return func(ctx *Ctx) error {
				// Every thread touches every page: plenty of
				// remote misses on nodes that don't manage them.
				for p := 0; p < 8; p++ {
					if _, err := ctx.Span(p*memlayout.PageSize, 4, vm.Write); err != nil {
						return err
					}
					ctx.Compute(200)
				}
				ctx.EndIteration()
				return nil
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return int64(e.Elapsed())
	}
	on, off := run(true), run(false)
	if off <= on {
		t.Fatalf("scheduler-off time %d <= scheduler-on time %d", off, on)
	}
}

func TestLocksExcludeAndPropagate(t *testing.T) {
	e := newTestEngine(t, 2, 1, 4, Config{SchedulerEnabled: true})
	const lock = int32(3)
	err := e.Run(func(tid int) Body {
		return func(ctx *Ctx) error {
			// All threads increment one shared counter under a lock.
			if err := ctx.Lock(lock); err != nil {
				return err
			}
			v, err := ctx.F32(memlayout.Region{Off: 0, Size: 4}, 0, 1, vm.Write)
			if err != nil {
				return err
			}
			v.Set(0, v.Get(0)+1)
			if err := ctx.Unlock(lock); err != nil {
				return err
			}
			ctx.Barrier()
			// Everyone verifies the total.
			r, err := ctx.F32(memlayout.Region{Off: 0, Size: 4}, 0, 1, vm.Read)
			if err != nil {
				return err
			}
			if got := r.Get(0); got != 4 {
				return fmt.Errorf("thread %d read %v, want 4", ctx.TID(), got)
			}
			ctx.EndIteration()
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnlockWithoutLockFails(t *testing.T) {
	e := newTestEngine(t, 1, 1, 1, Config{})
	err := e.Run(func(tid int) Body {
		return func(ctx *Ctx) error { return ctx.Unlock(99) }
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestBodyErrorPropagates(t *testing.T) {
	e := newTestEngine(t, 2, 1, 4, Config{})
	sentinel := errors.New("app failed")
	err := e.Run(func(tid int) Body {
		return func(ctx *Ctx) error {
			if tid == 2 {
				return sentinel
			}
			ctx.Barrier()
			return nil
		}
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}

func TestRunTwiceFails(t *testing.T) {
	e := newTestEngine(t, 1, 1, 1, Config{})
	body := func(tid int) Body {
		return func(ctx *Ctx) error { return nil }
	}
	if err := e.Run(body); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(body); err == nil {
		t.Fatal("expected error on second Run")
	}
}

func TestMigrationMovesAccesses(t *testing.T) {
	e := newTestEngine(t, 2, 2, 2, Config{Placement: []int{0, 1}, SchedulerEnabled: true})
	moved := false
	e.SetHooks(Hooks{OnIteration: func(iter int) {
		if iter == 0 {
			if err := e.Migrate(1, 0); err != nil {
				t.Error(err)
			}
			moved = true
		}
	}})
	var nodesSeen []int
	err := e.Run(func(tid int) Body {
		return func(ctx *Ctx) error {
			for i := 0; i < 2; i++ {
				if tid == 1 {
					nodesSeen = append(nodesSeen, ctx.Node())
				}
				ctx.EndIteration()
			}
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !moved {
		t.Fatal("migration hook did not run")
	}
	if len(nodesSeen) != 2 || nodesSeen[0] != 1 || nodesSeen[1] != 0 {
		t.Fatalf("thread 1 nodes = %v, want [1 0]", nodesSeen)
	}
	if e.NodeOf(1) != 0 {
		t.Fatalf("NodeOf(1) = %d", e.NodeOf(1))
	}
}

func TestApplyPlacement(t *testing.T) {
	e := newTestEngine(t, 4, 1, 8, Config{})
	moved, err := e.ApplyPlacement([]int{3, 3, 2, 2, 1, 1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if moved != 8 {
		t.Fatalf("moved = %d, want 8", moved)
	}
	if _, err := e.ApplyPlacement([]int{0}); err == nil {
		t.Fatal("expected length error")
	}
	// Re-applying is a no-op.
	moved, err = e.ApplyPlacement([]int{3, 3, 2, 2, 1, 1, 0, 0})
	if err != nil || moved != 0 {
		t.Fatalf("moved = %d err = %v", moved, err)
	}
}

func TestShuffleChangesLocalOrder(t *testing.T) {
	// With a shuffle seed, per-node execution order varies across
	// intervals; capture the order via OnThreadRun.
	collect := func(seed uint64) []int {
		e := newTestEngine(t, 1, 1, 6, Config{ShuffleSeed: seed})
		var order []int
		e.SetHooks(Hooks{OnThreadRun: func(node, tid int) { order = append(order, tid) }})
		err := e.Run(func(tid int) Body {
			return func(ctx *Ctx) error {
				ctx.EndIteration()
				return nil
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return order
	}
	// Each thread runs two slices (to the iteration barrier, then to
	// completion), so the trace is two rounds.
	fixed := collect(0)
	if len(fixed) != 12 {
		t.Fatalf("trace length = %d, want 12", len(fixed))
	}
	for i, tid := range fixed {
		if tid != i%6 {
			t.Fatalf("unshuffled order = %v", fixed)
		}
	}
	a, b := collect(7), collect(7)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if !same {
		t.Fatal("same seed gave different orders")
	}
	c := collect(8)
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds gave identical orders (improbable)")
	}
}

func TestOnThreadRunSeesNode(t *testing.T) {
	e := newTestEngine(t, 2, 1, 4, Config{Placement: []int{0, 0, 1, 1}})
	seen := map[int]int{}
	e.SetHooks(Hooks{OnThreadRun: func(node, tid int) { seen[tid] = node }})
	err := e.Run(func(tid int) Body {
		return func(ctx *Ctx) error { ctx.EndIteration(); return nil }
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]int{0: 0, 1: 0, 2: 1, 3: 1}
	for tid, n := range want {
		if seen[tid] != n {
			t.Fatalf("seen = %v", seen)
		}
	}
}
