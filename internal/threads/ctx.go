package threads

import (
	"actdsm/internal/memlayout"
	"actdsm/internal/sim"
	"actdsm/internal/vm"
)

// Ctx is an application thread's handle to shared memory and
// synchronization. A Ctx is bound to one thread and must only be used
// from that thread's body.
type Ctx struct {
	engine *Engine
	t      *thread
}

// TID returns the thread's id.
func (c *Ctx) TID() int { return c.t.id }

// Node returns the node currently hosting the thread.
func (c *Ctx) Node() int { return c.engine.nodeOf[c.t.id] }

// NumThreads returns the application thread count.
func (c *Ctx) NumThreads() int { return c.engine.cfg.Threads }

// NumNodes returns the cluster's node count.
func (c *Ctx) NumNodes() int { return len(c.engine.clocks) }

// Compute charges the thread for words of application computation.
func (c *Ctx) Compute(words int) {
	if words > 0 {
		c.t.cur.Compute += sim.Time(words) * c.engine.costs.ComputePerWord
	}
}

// Span validates the bytes [off, off+size) of the shared segment for the
// given access and returns a window aliasing the node's copy. The window
// is invalidated by the next synchronization call; re-acquire after
// barriers and lock transfers.
func (c *Ctx) Span(off, size int, a vm.Access) ([]byte, error) {
	b, ti, err := c.engine.cluster.Span(c.Node(), c.t.id, off, size, a)
	c.t.cur.Add(ti)
	return b, err
}

// SpanRegion is Span addressed relative to a layout region.
func (c *Ctx) SpanRegion(r memlayout.Region, off, size int, a vm.Access) ([]byte, error) {
	return c.Span(r.Off+off, size, a)
}

// F32 returns a float32 view over n elements of region r starting at
// element index elem.
func (c *Ctx) F32(r memlayout.Region, elem, n int, a vm.Access) (memlayout.F32, error) {
	b, err := c.SpanRegion(r, elem*4, n*4, a)
	if err != nil {
		return memlayout.F32{}, err
	}
	return memlayout.ViewF32(b), nil
}

// F64 returns a float64 view over n elements of region r starting at
// element index elem.
func (c *Ctx) F64(r memlayout.Region, elem, n int, a vm.Access) (memlayout.F64, error) {
	b, err := c.SpanRegion(r, elem*8, n*8, a)
	if err != nil {
		return memlayout.F64{}, err
	}
	return memlayout.ViewF64(b), nil
}

// I32 returns an int32 view over n elements of region r starting at
// element index elem.
func (c *Ctx) I32(r memlayout.Region, elem, n int, a vm.Access) (memlayout.I32, error) {
	b, err := c.SpanRegion(r, elem*4, n*4, a)
	if err != nil {
		return memlayout.I32{}, err
	}
	return memlayout.ViewI32(b), nil
}

// Charged returns the thread's accumulated virtual-time charges
// (compute, remote stall, local protocol overhead) in the current
// synchronization interval. The accumulator resets at every barrier, so
// between two synchronization points a pair of Charged calls brackets a
// code region's exact virtual cost — the serving workload derives
// per-request latency this way.
func (c *Ctx) Charged() sim.ThreadInterval { return c.t.cur }

// Wait charges d of idle virtual time to the thread without touching
// shared memory. Closed-loop load generators use it as client think
// time to pace toward a target request rate; like any stall it can be
// partially overlapped by other local threads when the scheduler is on.
func (c *Ctx) Wait(d sim.Time) {
	if d > 0 {
		c.t.cur.Stall += d
	}
}

// Barrier parks the thread until every live thread reaches a barrier.
func (c *Ctx) Barrier() {
	c.t.yield(event{kind: evBarrier})
}

// EndIteration is a barrier that additionally marks the end of an
// application iteration — the unit the paper tracks, times, and migrates
// between.
func (c *Ctx) EndIteration() {
	c.t.yield(event{kind: evIterEnd})
}

// Yield ends the thread's scheduler slice without parking it: the
// thread stays runnable and resumes on a later round, after co-resident
// threads have had a turn. Polling loops need it — an uncontended Lock
// never yields, so a poller sharing a node with the thread it waits on
// (possible after a crash migrates threads together) would otherwise
// spin out its retry budget without ever letting the writer run.
func (c *Ctx) Yield() {
	c.t.yield(event{kind: evYield})
}

// Lock acquires a global lock, applying the consistency information its
// grant carries.
func (c *Ctx) Lock(lock int32) error {
	return c.engine.acquireLock(c.t, lock)
}

// Unlock releases a lock, shipping this interval's write notices to the
// lock manager.
func (c *Ctx) Unlock(lock int32) error {
	return c.engine.releaseLock(c.t, lock)
}
