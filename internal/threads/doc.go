// Package threads is the per-node user-level thread substrate: a
// cooperative scheduler multiplexing many application threads over the DSM
// cluster's nodes, with barrier and lock synchronization, thread
// migration, and the scheduler-disable mode active correlation tracking
// requires.
//
// The original system used the QuickThreads user-level threads package
// with stack copying for migration. Here each application thread is a
// goroutine, but exactly one runs at any moment: the engine hands control
// to a thread and waits for it to yield at a synchronization point, which
// makes the simulation deterministic and lets virtual time be accounted
// analytically (see sim.NodeIntervalTime). Threads never preempt: they run
// from one synchronization point to the next, which matches the paper's
// tracked execution model.
//
// This global single-threading of application code is also a concurrency
// invariant the DSM's locking model relies on: local protocol work
// (interval closes, fault handling) never overlaps other local protocol
// work on any node, so only remote serve paths run concurrently — see
// the locking model in internal/dsm's package documentation and
// ARCHITECTURE.md.
package threads
