package threads

// Migration edge cases: migrating at a barrier boundary mid-run,
// draining a node entirely, a pending lock acquire woken across a
// release, and a migrated thread's first lock acquire being served at
// its new node with the grant's consistency information intact.

import (
	"testing"

	"actdsm/internal/memlayout"
	"actdsm/internal/vm"
)

// TestMigrateAtBarrierBoundary migrates a thread from an OnBarrier hook
// (all threads parked mid-run, not before Run) and checks that the
// scheduler's order refresh places it on the new node for the very next
// interval, and that data it wrote from the old node is visible from the
// new one.
func TestMigrateAtBarrierBoundary(t *testing.T) {
	e := newTestEngine(t, 2, 1, 2, Config{Placement: []int{0, 0}})
	region := memlayout.Region{Off: 0, Size: 64}
	migrated := false
	e.SetHooks(Hooks{OnBarrier: func() {
		if !migrated {
			migrated = true
			if err := e.Migrate(1, 1); err != nil {
				t.Errorf("migrate at barrier: %v", err)
			}
		}
	}})
	var nodesSeen []int
	err := e.Run(func(tid int) Body {
		return func(ctx *Ctx) error {
			if tid == 1 {
				v, err := ctx.I32(region, 0, 1, vm.Write)
				if err != nil {
					return err
				}
				v.Set(0, 41)
				nodesSeen = append(nodesSeen, ctx.Node())
			}
			ctx.Barrier() // hook migrates thread 1 here
			if tid == 1 {
				nodesSeen = append(nodesSeen, ctx.Node())
				v, err := ctx.I32(region, 0, 1, vm.Write)
				if err != nil {
					return err
				}
				if v.Get(0) != 41 {
					t.Errorf("pre-migration write lost: got %d", v.Get(0))
				}
				v.Set(0, 42)
			}
			ctx.EndIteration()
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(nodesSeen) != 2 || nodesSeen[0] != 0 || nodesSeen[1] != 1 {
		t.Fatalf("thread 1 nodes = %v, want [0 1]", nodesSeen)
	}
	if e.NodeOf(1) != 1 {
		t.Fatalf("NodeOf(1) = %d after migration", e.NodeOf(1))
	}
}

// TestMigrateLastThreadOffNode drains node 0 completely at an iteration
// boundary. The emptied node must keep participating in the DSM barrier
// protocol (it still manages pages and locks), and the run must finish
// with every thread's work intact.
func TestMigrateLastThreadOffNode(t *testing.T) {
	e := newTestEngine(t, 2, 1, 2, Config{Placement: []int{0, 1}})
	region := memlayout.Region{Off: 0, Size: 64}
	e.SetHooks(Hooks{OnIteration: func(iter int) {
		if iter == 0 {
			// Node 0 hosts only thread 0: this empties it.
			if err := e.Migrate(0, 1); err != nil {
				t.Errorf("migrate off node: %v", err)
			}
		}
	}})
	err := e.Run(func(tid int) Body {
		return func(ctx *Ctx) error {
			for iter := 0; iter < 3; iter++ {
				v, err := ctx.I32(region, tid, 1, vm.Write)
				if err != nil {
					return err
				}
				v.Set(0, v.Get(0)+1)
				ctx.EndIteration()
			}
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.NodeOf(0) != 1 || e.NodeOf(1) != 1 {
		t.Fatalf("placement = %v, want all on node 1", e.Placement())
	}
	// Each thread incremented its own cell 3 times; page 0 is managed by
	// the now-empty node 0, so the final values crossed the drained node's
	// protocol paths.
	if err := e.Cluster().CheckCoherence(); err != nil {
		t.Fatal(err)
	}
	if e.Iteration() != 3 {
		t.Fatalf("Iteration() = %d, want 3", e.Iteration())
	}
}

// TestPendingLockAcquireWokenByRelease exercises the engine's defensive
// lock-wait queue. Contention cannot arise organically (threads only
// yield at synchronization points), so the test pre-seeds the owner map
// to make thread 0's acquire genuinely wait, and checks the release path
// wakes it and hands the lock over exactly once.
func TestPendingLockAcquireWokenByRelease(t *testing.T) {
	e := newTestEngine(t, 2, 1, 2, Config{Placement: []int{0, 1}})
	// Pretend thread 1 already holds lock 7: thread 0's acquire parks in
	// stateLockWait until thread 1's Unlock wakes it.
	e.lockOwner = map[int32]int{7: 1}
	order := make(chan int, 2)
	err := e.Run(func(tid int) Body {
		return func(ctx *Ctx) error {
			if tid == 0 {
				if err := ctx.Lock(7); err != nil {
					return err
				}
				order <- 0
				return ctx.Unlock(7)
			}
			// Thread 1 releases the pre-seeded hold.
			if err := ctx.Unlock(7); err != nil {
				return err
			}
			order <- 1
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	close(order)
	var got []int
	for v := range order {
		got = append(got, v)
	}
	// The release must come first; the waiter's acquire completes after.
	if len(got) != 2 || got[0] != 1 || got[1] != 0 {
		t.Fatalf("completion order = %v, want [1 0]", got)
	}
	if len(e.lockOwner) != 0 {
		t.Fatalf("lock owner map not drained: %v", e.lockOwner)
	}
}

// TestMigrateThenLockAcquire migrates a thread between iterations and
// checks that its next lock acquire is served at the new node: the grant
// carries the consistency information there, so a read under the lock
// sees the other thread's latest write.
func TestMigrateThenLockAcquire(t *testing.T) {
	e := newTestEngine(t, 2, 1, 2, Config{Placement: []int{0, 1}})
	region := memlayout.Region{Off: 0, Size: 64}
	e.SetHooks(Hooks{OnIteration: func(iter int) {
		if iter == 0 {
			if err := e.Migrate(1, 0); err != nil {
				t.Errorf("migrate: %v", err)
			}
		}
	}})
	err := e.Run(func(tid int) Body {
		return func(ctx *Ctx) error {
			for iter := 0; iter < 2; iter++ {
				if err := ctx.Lock(0); err != nil {
					return err
				}
				v, err := ctx.I32(region, 0, 1, vm.Write)
				if err != nil {
					_ = ctx.Unlock(0)
					return err
				}
				v.Set(0, v.Get(0)+1)
				if err := ctx.Unlock(0); err != nil {
					return err
				}
				ctx.EndIteration()
			}
			if tid == 1 && ctx.Node() != 0 {
				t.Errorf("thread 1 on node %d after migration, want 0", ctx.Node())
			}
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 threads x 2 iterations of lock-protected increments: the final
	// value proves every acquire saw the prior release's update, including
	// thread 1's first acquire from its new node.
	sys := e.Cluster()
	if err := sys.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
	var final int32
	ferr := e2Value(e, region, &final)
	if ferr != nil {
		t.Fatal(ferr)
	}
	if final != 4 {
		t.Fatalf("counter = %d, want 4", final)
	}
}

// e2Value reads cell 0 of a region from node 0's copy after a run.
func e2Value(e *Engine, r memlayout.Region, out *int32) error {
	b, _, err := e.Cluster().Span(0, 0, r.Off, 4, vm.Read)
	if err != nil {
		return err
	}
	*out = memlayout.ViewI32(b).Get(0)
	return nil
}

// TestSpanZeroLength pins the span validator: a zero-length (and a
// negative-length) window is rejected rather than silently validating
// zero pages.
func TestSpanZeroLength(t *testing.T) {
	e := newTestEngine(t, 1, 2, 1, Config{})
	err := e.Run(func(tid int) Body {
		return func(ctx *Ctx) error {
			if _, err := ctx.Span(0, 0, vm.Read); err == nil {
				t.Error("zero-length span accepted")
			}
			if _, err := ctx.Span(16, -4, vm.Read); err == nil {
				t.Error("negative-length span accepted")
			}
			// A span ending exactly at the segment boundary is legal ...
			if _, err := ctx.Span(2*memlayout.PageSize-4, 4, vm.Write); err != nil {
				t.Errorf("span at segment end: %v", err)
			}
			// ... and one byte past it is not.
			if _, err := ctx.Span(2*memlayout.PageSize-4, 5, vm.Read); err == nil {
				t.Error("span past segment end accepted")
			}
			ctx.EndIteration()
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSpanCrossesPageBoundary writes through a window straddling a page
// boundary and checks both pages were validated and both halves of the
// write survive a round trip through another node.
func TestSpanCrossesPageBoundary(t *testing.T) {
	e := newTestEngine(t, 2, 2, 2, Config{Placement: []int{0, 1}})
	// 8 bytes centred on the page-0/page-1 boundary.
	off := memlayout.PageSize - 4
	err := e.Run(func(tid int) Body {
		return func(ctx *Ctx) error {
			if tid == 0 {
				b, err := ctx.Span(off, 8, vm.Write)
				if err != nil {
					return err
				}
				v := memlayout.ViewI32(b)
				v.Set(0, 111) // last word of page 0
				v.Set(1, 222) // first word of page 1
			}
			ctx.Barrier()
			if tid == 1 {
				b, err := ctx.Span(off, 8, vm.Read)
				if err != nil {
					return err
				}
				v := memlayout.ViewI32(b)
				if v.Get(0) != 111 || v.Get(1) != 222 {
					t.Errorf("cross-boundary span = [%d %d], want [111 222]", v.Get(0), v.Get(1))
				}
			}
			ctx.EndIteration()
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Cluster().CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}
