package threads

import "actdsm/internal/memlayout"

// Workload is the engine-facing contract every runnable application
// satisfies: a name, a thread count, a shared-segment layout, and one
// body per thread. It deliberately says nothing about execution shape —
// a workload may be a batch epoch loop that calls EndIteration a fixed
// number of times (EpochWorkload) or an open-ended request-driven
// service that runs until told to stop (internal/serve).
//
// The historical App interface (internal/apps.App) is EpochWorkload
// plus nothing, so every existing application satisfies Workload
// structurally and runs through the same engine path unchanged.
type Workload interface {
	// Name identifies the workload in reports and errors.
	Name() string
	// Threads is the application thread count.
	Threads() int
	// Setup allocates the workload's shared-segment regions.
	Setup(l *memlayout.Layout) error
	// Body returns thread tid's code.
	Body(tid int) Body
}

// EpochWorkload is a batch workload structured as a fixed number of
// iterations, each terminated by Ctx.EndIteration — the shape the paper
// evaluates (SPLASH-style kernels) and the unit its tracking, timing,
// and migration machinery reasons about.
type EpochWorkload interface {
	Workload
	// Iterations is the number of EndIteration epochs each body runs.
	Iterations() int
}
