package threads

import (
	"errors"
	"testing"

	"actdsm/internal/dsm"
	"actdsm/internal/memlayout"
	"actdsm/internal/sim"
	"actdsm/internal/vm"
)

func TestDeadlockDetected(t *testing.T) {
	// Thread 0 takes a lock and finishes without releasing; thread 1
	// then waits forever. The engine must detect the deadlock rather
	// than hang.
	e := newTestEngine(t, 1, 1, 2, Config{})
	err := e.Run(func(tid int) Body {
		return func(ctx *Ctx) error {
			if tid == 0 {
				return ctx.Lock(5) // never unlocked
			}
			ctx.Barrier() // let thread 0 win the lock first... but
			// thread 0 never reaches the barrier, so instead:
			return nil
		}
	})
	// Thread 0 holds the lock and exits; no deadlock yet — this variant
	// must simply complete (lock leaked but nobody waits).
	if err != nil {
		t.Fatalf("leaked lock should not fail the run: %v", err)
	}

	e2 := newTestEngine(t, 1, 1, 2, Config{})
	err = e2.Run(func(tid int) Body {
		return func(ctx *Ctx) error {
			if tid == 0 {
				return ctx.Lock(5) // acquires and exits holding it
			}
			// Thread 1 runs second (engine order) and waits forever.
			return ctx.Lock(5)
		}
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestAdvanceNode(t *testing.T) {
	e := newTestEngine(t, 2, 1, 2, Config{})
	e.AdvanceNode(1, 500)
	if e.NodeClock(1) != 500 || e.NodeClock(0) != 0 {
		t.Fatalf("clocks: %d, %d", e.NodeClock(0), e.NodeClock(1))
	}
}

func TestMigrateInvalidNode(t *testing.T) {
	e := newTestEngine(t, 2, 1, 2, Config{})
	if err := e.Migrate(0, 9); err == nil {
		t.Fatal("expected error for invalid node")
	}
	if err := e.Migrate(0, -1); err == nil {
		t.Fatal("expected error for negative node")
	}
	// Self-migration is free.
	before := e.NodeClock(0)
	if err := e.Migrate(0, e.NodeOf(0)); err != nil {
		t.Fatal(err)
	}
	if e.NodeClock(0) != before {
		t.Fatal("self-migration charged time")
	}
}

func TestMigrationChargesBothEndpoints(t *testing.T) {
	e := newTestEngine(t, 3, 1, 3, Config{Placement: []int{0, 1, 2}})
	if err := e.Migrate(0, 1); err != nil {
		t.Fatal(err)
	}
	if e.NodeClock(0) == 0 || e.NodeClock(1) == 0 {
		t.Fatal("migration endpoints not charged")
	}
	if e.NodeClock(2) != 0 {
		t.Fatal("bystander node charged")
	}
}

func TestSpanRegionAndTypedViews(t *testing.T) {
	e := newTestEngine(t, 1, 2, 1, Config{})
	region := memlayout.Region{Off: memlayout.PageSize, Size: memlayout.PageSize}
	err := e.Run(func(tid int) Body {
		return func(ctx *Ctx) error {
			f64, err := ctx.F64(region, 1, 2, vm.Write)
			if err != nil {
				return err
			}
			f64.Set(0, 2.5)
			i32, err := ctx.I32(region, 10, 1, vm.Write)
			if err != nil {
				return err
			}
			i32.Set(0, -7)
			// Raw span over the same bytes agrees.
			raw, err := ctx.SpanRegion(region, 8, 8, vm.Read)
			if err != nil {
				return err
			}
			if memlayout.ViewF64(raw).Get(0) != 2.5 {
				t.Error("F64 write not visible through raw span")
			}
			i32b, err := ctx.I32(region, 10, 1, vm.Read)
			if err != nil {
				return err
			}
			if i32b.Get(0) != -7 {
				t.Error("I32 write lost")
			}
			ctx.EndIteration()
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCtxAccessors(t *testing.T) {
	e := newTestEngine(t, 2, 1, 4, Config{Placement: []int{0, 0, 1, 1}})
	err := e.Run(func(tid int) Body {
		return func(ctx *Ctx) error {
			if ctx.TID() != tid {
				t.Errorf("TID = %d, want %d", ctx.TID(), tid)
			}
			if ctx.NumThreads() != 4 || ctx.NumNodes() != 2 {
				t.Error("counts wrong")
			}
			wantNode := 0
			if tid >= 2 {
				wantNode = 1
			}
			if ctx.Node() != wantNode {
				t.Errorf("Node = %d, want %d", ctx.Node(), wantNode)
			}
			ctx.EndIteration()
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestComputeChargesTime(t *testing.T) {
	e := newTestEngine(t, 1, 1, 1, Config{})
	err := e.Run(func(tid int) Body {
		return func(ctx *Ctx) error {
			ctx.Compute(-5) // ignored
			ctx.Compute(1000)
			ctx.EndIteration()
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 1000 * int64(e.costs.ComputePerWord)
	if got := int64(e.NodeClock(0)); got < want {
		t.Fatalf("node clock %d < compute charge %d", got, want)
	}
}

func TestNodeSpeedsScaleCompute(t *testing.T) {
	run := func(speeds []float64) int64 {
		c, err := dsm.New(dsm.Config{Nodes: 2, Pages: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = c.Close() }()
		e, err := NewEngine(c, Config{Threads: 2, Placement: []int{0, 1}, NodeSpeeds: speeds})
		if err != nil {
			t.Fatal(err)
		}
		err = e.Run(func(tid int) Body {
			return func(ctx *Ctx) error {
				ctx.Compute(100000)
				ctx.EndIteration()
				return nil
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return int64(e.Elapsed())
	}
	base := run(nil)
	fast := run([]float64{2, 2})
	if fast >= base {
		t.Fatalf("2x nodes not faster: %d vs %d", fast, base)
	}
	// Barrier sync makes the slowest node the critical path: speeding
	// up only node 0 must not help when node 1 stays at 1.0.
	half := run([]float64{2, 1})
	if half < base*95/100 {
		t.Fatalf("speeding one node broke the critical path: %d vs %d", half, base)
	}
}

// TestTopologyDerivesNodeSpeeds pins the heterogeneous-topology
// integration: with NodeSpeeds unset, the engine derives them from the
// cluster Topology's compute scaling (a slow node stretches the run),
// and an explicit NodeSpeeds still overrides the topology.
func TestTopologyDerivesNodeSpeeds(t *testing.T) {
	run := func(topo *sim.Topology, speeds []float64) int64 {
		c, err := dsm.New(dsm.Config{Nodes: 2, Pages: 1, Topology: topo})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = c.Close() }()
		e, err := NewEngine(c, Config{Threads: 2, Placement: []int{0, 1}, NodeSpeeds: speeds})
		if err != nil {
			t.Fatal(err)
		}
		err = e.Run(func(tid int) Body {
			return func(ctx *Ctx) error {
				ctx.Compute(100000)
				ctx.EndIteration()
				return nil
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return int64(e.Elapsed())
	}
	base := run(nil, nil)
	// Node 1 computes at quadruple cost: the barrier's critical path
	// must stretch.
	slow := sim.NewTopology(2, sim.Costs{})
	slow.SetComputeScale(1, 4)
	stretched := run(slow, nil)
	if stretched <= base {
		t.Fatalf("slow-node topology did not stretch the run: %d vs %d", stretched, base)
	}
	// Explicit NodeSpeeds override the topology entirely.
	overridden := run(slow, []float64{1, 1})
	if overridden != base {
		t.Fatalf("explicit NodeSpeeds did not override topology: %d vs %d", overridden, base)
	}
}

func TestNodeSpeedsValidation(t *testing.T) {
	c, err := dsm.New(dsm.Config{Nodes: 2, Pages: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if _, err := NewEngine(c, Config{Threads: 2, NodeSpeeds: []float64{1}}); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := NewEngine(c, Config{Threads: 2, NodeSpeeds: []float64{1, -2}}); err == nil {
		t.Fatal("expected positivity error")
	}
}
