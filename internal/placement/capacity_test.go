package placement

import (
	"testing"
	"testing/quick"

	"actdsm/internal/core"
)

func TestCapacitiesForSpeeds(t *testing.T) {
	caps, err := CapacitiesForSpeeds(8, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if caps[0] != 6 || caps[1] != 2 {
		t.Fatalf("caps = %v, want [6 2]", caps)
	}
	caps, err = CapacitiesForSpeeds(10, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range caps {
		total += c
		if c < 3 || c > 4 {
			t.Fatalf("caps = %v", caps)
		}
	}
	if total != 10 {
		t.Fatalf("caps = %v sum %d", caps, total)
	}
	if _, err := CapacitiesForSpeeds(4, nil); err == nil {
		t.Fatal("expected error for empty speeds")
	}
	if _, err := CapacitiesForSpeeds(4, []float64{1, 0}); err == nil {
		t.Fatal("expected error for zero speed")
	}
}

func TestCapacitiesForSpeedsProperties(t *testing.T) {
	check := func(threads uint8, rawSpeeds []uint8) bool {
		n := int(threads%60) + 4
		if len(rawSpeeds) == 0 {
			return true
		}
		if len(rawSpeeds) > 4 {
			rawSpeeds = rawSpeeds[:4]
		}
		speeds := make([]float64, len(rawSpeeds))
		for i, s := range rawSpeeds {
			speeds[i] = 1 + float64(s%7)
		}
		caps, err := CapacitiesForSpeeds(n, speeds)
		if err != nil {
			return false
		}
		total := 0
		for _, c := range caps {
			if c < 0 {
				return false
			}
			// threads >= nodes guarantees no empty node.
			if n >= len(speeds) && c == 0 {
				return false
			}
			total += c
		}
		return total == n
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStretchCapacities(t *testing.T) {
	a, err := StretchCapacities(6, []int{4, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 0, 0, 1, 1}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("a = %v", a)
		}
	}
	if _, err := StretchCapacities(5, []int{4, 2}); err == nil {
		t.Fatal("expected sum error")
	}
	if _, err := StretchCapacities(2, []int{3, -1}); err == nil {
		t.Fatal("expected negative error")
	}
}

func TestMinCostCapacitiesRespectsCaps(t *testing.T) {
	m := ringMatrix(12)
	caps := []int{6, 3, 3}
	a, err := MinCostCapacities(m, caps)
	if err != nil {
		t.Fatal(err)
	}
	got := counts(a, 3)
	for n := range caps {
		if got[n] != caps[n] {
			t.Fatalf("populations %v, want %v", got, caps)
		}
	}
	// On a ring, unequal contiguous blocks are optimal: the cut must not
	// exceed the ring's minimum (one edge per block boundary).
	if cut := m.CutCost(a); cut > 3*10 {
		t.Fatalf("cut = %d", cut)
	}
	if _, err := MinCostCapacities(m, []int{6, 3}); err == nil {
		t.Fatal("expected sum error")
	}
}

func TestMinCostCapacitiesPrefersBigNodeForBigCluster(t *testing.T) {
	// One 8-thread heavy block and one 4-thread heavy block; capacities
	// 8 and 4. The 8-block must land intact on the size-8 node.
	m := core.NewMatrix(12)
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			m.Set(i, j, 50)
		}
	}
	for i := 8; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			m.Set(i, j, 50)
		}
	}
	a, err := MinCostCapacities(m, []int{8, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.CutCost(a) != 0 {
		t.Fatalf("cut = %d, want 0 (placement %v)", m.CutCost(a), a)
	}
}
