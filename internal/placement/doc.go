// Package placement implements the paper's thread-to-node mapping
// heuristics (§5.1): stretch (contiguous blocks in thread order),
// min-cost (cluster analysis plus pairwise refinement), random
// assignments, and an exact optimal solver for small instances used to
// validate the heuristics. All heuristics produce balanced placements —
// a constant and equal number of threads per node, as the paper
// restricts the problem. anneal.go adds a simulated-annealing refiner
// used by the heuristic-quality ablation.
//
// Inputs are the correlation matrices internal/core produces; outputs
// are placements the thread engine (internal/threads) realizes by
// migrating threads. Cut cost — the sum of correlations across node
// boundaries — is the objective throughout, per the paper's §2 argument
// that cut cost predicts remote misses (validated by Table 2).
package placement
