package placement

import (
	"testing"
	"testing/quick"

	"actdsm/internal/core"
	"actdsm/internal/sim"
)

func TestAnnealRecoversBlocks(t *testing.T) {
	m := blockMatrix(4, 4)
	rng := sim.NewRNG(3)
	start := RandomBalanced(16, 4, rng)
	out := Anneal(m, start, 4000, rng)
	opt, err := Optimal(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.CutCost(out) != m.CutCost(opt) {
		t.Fatalf("anneal cut %d, optimal %d", m.CutCost(out), m.CutCost(opt))
	}
}

func TestAnnealNeverWorseThanStart(t *testing.T) {
	check := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		n := 12
		m := core.NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				m.Set(i, j, int64(rng.Intn(40)))
			}
		}
		start := RandomBalanced(n, 3, rng)
		out := Anneal(m, start, 1500, rng)
		// Populations preserved.
		cs, co := counts(start, 3), counts(out, 3)
		for k := range cs {
			if cs[k] != co[k] {
				return false
			}
		}
		return m.CutCost(out) <= m.CutCost(start)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAnnealDegenerateInputs(t *testing.T) {
	m := core.NewMatrix(1)
	out := Anneal(m, []int{0}, 100, sim.NewRNG(1))
	if len(out) != 1 || out[0] != 0 {
		t.Fatalf("out = %v", out)
	}
	m2 := ringMatrix(4)
	start := Stretch(4, 2)
	if got := Anneal(m2, start, 0, sim.NewRNG(1)); len(got) != 4 {
		t.Fatalf("zero-step anneal = %v", got)
	}
}

func TestSwapDeltaMatchesRecompute(t *testing.T) {
	check := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		n := 10
		m := core.NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				m.Set(i, j, int64(rng.Intn(25)))
			}
		}
		assign := RandomBalanced(n, 2, rng)
		i, j := rng.Intn(n), rng.Intn(n)
		if assign[i] == assign[j] {
			return true
		}
		before := m.CutCost(assign)
		delta := swapDelta(m, assign, i, j)
		assign[i], assign[j] = assign[j], assign[i]
		return m.CutCost(assign) == before+delta
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalCapacities(t *testing.T) {
	// One 4-thread block, one 2-thread block; capacities 4 and 2.
	m := core.NewMatrix(6)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			m.Set(i, j, 10)
		}
	}
	m.Set(4, 5, 10)
	out, err := OptimalCapacities(m, []int{4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.CutCost(out) != 0 {
		t.Fatalf("cut = %d, want 0 (%v)", m.CutCost(out), out)
	}
	got := counts(out, 2)
	if got[0] != 4 || got[1] != 2 {
		t.Fatalf("populations %v", got)
	}
	if _, err := OptimalCapacities(core.NewMatrix(20), []int{10, 10}); err == nil {
		t.Fatal("expected size error")
	}
	if _, err := OptimalCapacities(m, []int{4, 4}); err == nil {
		t.Fatal("expected capacity-sum error")
	}
}

func TestOptimalCapacitiesMatchesOptimalWhenBalanced(t *testing.T) {
	rng := sim.NewRNG(17)
	for trial := 0; trial < 10; trial++ {
		n := 8
		m := core.NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				m.Set(i, j, int64(rng.Intn(30)))
			}
		}
		a, err := Optimal(m, 2)
		if err != nil {
			t.Fatal(err)
		}
		b, err := OptimalCapacities(m, []int{4, 4})
		if err != nil {
			t.Fatal(err)
		}
		if m.CutCost(a) != m.CutCost(b) {
			t.Fatalf("balanced optimal %d != capacity optimal %d", m.CutCost(a), m.CutCost(b))
		}
	}
}
