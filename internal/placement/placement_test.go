package placement

import (
	"errors"
	"testing"
	"testing/quick"

	"actdsm/internal/core"
	"actdsm/internal/sim"
)

// ringMatrix builds a nearest-neighbour ring correlation matrix.
func ringMatrix(n int) *core.Matrix {
	m := core.NewMatrix(n)
	for i := 0; i < n; i++ {
		m.Set(i, (i+1)%n, 10)
	}
	return m
}

// blockMatrix builds b blocks of size s with heavy intra-block sharing and
// light background sharing (the LU/FFT structure of Table 3).
func blockMatrix(b, s int) *core.Matrix {
	n := b * s
	m := core.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := int64(1)
			if i/s == j/s {
				v = 20
			}
			m.Set(i, j, v)
		}
	}
	return m
}

func counts(assign []int, nodes int) []int {
	c := make([]int, nodes)
	for _, n := range assign {
		c[n]++
	}
	return c
}

func TestStretchBalanced(t *testing.T) {
	for _, tc := range []struct{ threads, nodes int }{{64, 8}, {48, 8}, {32, 4}, {7, 3}} {
		a := Stretch(tc.threads, tc.nodes)
		c := counts(a, tc.nodes)
		lo, hi := c[0], c[0]
		for _, v := range c {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi-lo > 1 {
			t.Fatalf("%d/%d: counts %v", tc.threads, tc.nodes, c)
		}
		// Contiguity: node indices never decrease.
		for i := 1; i < len(a); i++ {
			if a[i] < a[i-1] {
				t.Fatalf("stretch not contiguous: %v", a)
			}
		}
	}
}

func TestStretchOptimalOnRing(t *testing.T) {
	m := ringMatrix(16)
	st := Stretch(16, 4)
	opt, err := Optimal(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.CutCost(st) != m.CutCost(opt) {
		t.Fatalf("stretch cut %d != optimal cut %d on ring", m.CutCost(st), m.CutCost(opt))
	}
}

func TestMinCostRecoversBlocks(t *testing.T) {
	// 4 blocks of 4 threads on 4 nodes: min-cost must place each block
	// on its own node, cutting only the background sharing.
	m := blockMatrix(4, 4)
	a := MinCost(m, 4)
	c := counts(a, 4)
	for _, v := range c {
		if v != 4 {
			t.Fatalf("unbalanced: %v", c)
		}
	}
	for blk := 0; blk < 4; blk++ {
		node := a[blk*4]
		for i := 1; i < 4; i++ {
			if a[blk*4+i] != node {
				t.Fatalf("block %d split: %v", blk, a)
			}
		}
	}
	opt, err := Optimal(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.CutCost(a) != m.CutCost(opt) {
		t.Fatalf("min-cost %d != optimal %d", m.CutCost(a), m.CutCost(opt))
	}
}

func TestMinCostNearOptimalRandom(t *testing.T) {
	// Paper §5.1: the heuristics land within 1% of optimal on its
	// applications; on small random instances we allow 5%.
	rng := sim.NewRNG(1234)
	for trial := 0; trial < 20; trial++ {
		n := 12
		m := core.NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				m.Set(i, j, int64(rng.Intn(50)))
			}
		}
		mc := MinCost(m, 3)
		opt, err := Optimal(m, 3)
		if err != nil {
			t.Fatal(err)
		}
		mcc, occ := m.CutCost(mc), m.CutCost(opt)
		if mcc < occ {
			t.Fatalf("min-cost %d beat 'optimal' %d — solver bug", mcc, occ)
		}
		if float64(mcc) > float64(occ)*1.05+1 {
			t.Fatalf("trial %d: min-cost %d vs optimal %d (>5%% off)", trial, mcc, occ)
		}
	}
}

func TestOptimalTooLarge(t *testing.T) {
	if _, err := Optimal(core.NewMatrix(20), 4); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestRefineNeverWorsens(t *testing.T) {
	check := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		n := 10
		m := core.NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				m.Set(i, j, int64(rng.Intn(30)))
			}
		}
		start := RandomBalanced(n, 2, rng)
		refined := Refine(m, start)
		// Balance preserved.
		cs, cr := counts(start, 2), counts(refined, 2)
		if cs[0] != cr[0] || cs[1] != cr[1] {
			return false
		}
		return m.CutCost(refined) <= m.CutCost(start)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomBalanced(t *testing.T) {
	rng := sim.NewRNG(9)
	a := RandomBalanced(64, 8, rng)
	for _, v := range counts(a, 8) {
		if v != 8 {
			t.Fatalf("counts = %v", counts(a, 8))
		}
	}
	b := RandomBalanced(64, 8, rng)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("two random placements identical (improbable)")
	}
}

func TestRandomMin(t *testing.T) {
	rng := sim.NewRNG(5)
	for trial := 0; trial < 50; trial++ {
		a, err := RandomMin(64, 8, 2, rng)
		if err != nil {
			t.Fatal(err)
		}
		for n, v := range counts(a, 8) {
			if v < 2 {
				t.Fatalf("node %d has %d threads", n, v)
			}
		}
	}
	if _, err := RandomMin(4, 8, 2, rng); err == nil {
		t.Fatal("expected infeasibility error")
	}
}

func TestPlanAndAlignLabels(t *testing.T) {
	// Target is current with node labels permuted: after alignment, no
	// moves at all.
	current := []int{0, 0, 1, 1, 2, 2}
	target := []int{2, 2, 0, 0, 1, 1}
	moves := Plan(current, target, 3)
	if len(moves) != 0 {
		t.Fatalf("moves = %v, want none after relabeling", moves)
	}
	// A genuinely different mapping produces the minimal set of moves.
	target2 := []int{0, 1, 0, 1, 2, 2}
	moves = Plan(current, target2, 3)
	if len(moves) != 2 {
		t.Fatalf("moves = %v, want 2", moves)
	}
	for _, mv := range moves {
		if current[mv.Thread] != mv.From {
			t.Fatalf("bad move source: %+v", mv)
		}
	}
}

func TestAlignLabelsGreedyPath(t *testing.T) {
	// 9 nodes exercises the greedy matcher.
	threads := 18
	current := Stretch(threads, 9)
	target := make([]int, threads)
	for i, n := range current {
		target[i] = (n + 3) % 9
	}
	aligned := AlignLabels(target, current, 9)
	for i := range aligned {
		if aligned[i] != current[i] {
			t.Fatalf("greedy alignment failed at %d: %v", i, aligned)
		}
	}
}

func TestMinCostOddSizes(t *testing.T) {
	// 10 threads on 4 nodes: capacities 3,3,2,2.
	m := ringMatrix(10)
	a := MinCost(m, 4)
	c := counts(a, 4)
	total := 0
	for _, v := range c {
		if v < 2 || v > 3 {
			t.Fatalf("counts = %v", c)
		}
		total += v
	}
	if total != 10 {
		t.Fatalf("counts = %v", c)
	}
}

func TestMinCostBeatsRandomOnStructure(t *testing.T) {
	m := blockMatrix(8, 8) // 64 threads
	rng := sim.NewRNG(77)
	mc := MinCost(m, 8)
	worst := int64(0)
	for i := 0; i < 10; i++ {
		r := RandomBalanced(64, 8, rng)
		if c := m.CutCost(r); c > worst {
			worst = c
		}
	}
	if m.CutCost(mc) >= worst {
		t.Fatalf("min-cost %d not better than random %d", m.CutCost(mc), worst)
	}
}
