package placement

import (
	"errors"
	"fmt"

	"actdsm/internal/core"
	"actdsm/internal/dsm"
	"actdsm/internal/threads"
)

// ControllerConfig tunes the online placement controller (placement v2,
// DESIGN.md §14). The trigger/hysteresis/budget structure follows the
// NUMA migration-strategy taxonomy: a periodic trigger bounds decision
// overhead, hysteresis suppresses low-gain churn, and per-epoch move
// budgets bound migration rate.
type ControllerConfig struct {
	// TrackIteration is the 0-based iteration the facade arms the
	// tracker for when the user has not armed one (default 1, skipping
	// the initialization-skewed iteration 0). The controller itself
	// ignores it; it evaluates whenever its tracker has a complete
	// window.
	TrackIteration int
	// Period is the minimum number of iterations between controller
	// evaluations (default 2). With Retrack the controller re-arms the
	// tracker so a fresh window is ready for the next evaluation.
	Period int
	// Hysteresis is the minimum fractional joint-cost improvement
	// (predicted new cost vs current) required to act on an evaluation
	// (default 0.05). Evaluations below it count as PlacementSkipped.
	Hysteresis float64
	// ThreadBudget caps thread migrations per applied evaluation:
	// 0 disables the thread side entirely, negative is unbounded.
	ThreadBudget int
	// HomeBudget caps explicit page-home moves per applied evaluation:
	// 0 disables the data side entirely, negative is unbounded.
	HomeBudget int
	// Smoothing is the EWMA weight of the newest correlation matrix
	// (default 0.5, in (0, 1]). Smoothing < 1 blends successive tracked
	// windows so an alternating two-phase workload converges to its
	// average instead of dragging placement back and forth.
	Smoothing float64
	// Retrack re-arms the tracker after each evaluation so the
	// controller keeps adapting (default true via NewController's
	// DefaultControllerConfig; zero-value false leaves the single
	// armed window).
	Retrack bool
}

// DefaultControllerConfig returns the controller defaults: evaluate
// every 2 iterations over an EWMA-smoothed matrix, act above 5%
// predicted improvement, unbounded budgets, continuous re-tracking.
func DefaultControllerConfig() ControllerConfig {
	return ControllerConfig{
		TrackIteration: 1,
		Period:         2,
		Hysteresis:     0.05,
		ThreadBudget:   -1,
		HomeBudget:     -1,
		Smoothing:      0.5,
		Retrack:        true,
	}
}

// Controller is the reactive online placement controller: at iteration
// boundaries (threads parked) it scores the current joint (thread →
// node, page → home) assignment under the unified cost model and, when
// a budgeted candidate improves it past the hysteresis threshold,
// issues thread migrations and explicit page-home moves together — so
// the two sides stop fighting (threads chasing data the last-writer
// heuristic just moved away). Decisions and move counts surface in
// dsm.Stats (PlacementTriggers/Applied/Skipped/ThreadMoves/HomeMoves).
type Controller struct {
	cfg     ControllerConfig
	cluster *dsm.Cluster
	engine  *threads.Engine
	tracker *core.ActiveTracker

	smoothed []float64 // EWMA-blended correlation, row-major threads×threads
	prevHist [][]int64 // WriteHistory snapshot at the previous evaluation
	nextEval int       // first iteration eligible for the next evaluation
	err      error     // first apply-side failure (sticky)
}

// NewController builds a controller over a cluster, engine, and an
// armed active tracker (the tracker supplies the correlation matrix and
// access bitmaps; the caller composes hooks so the tracker wraps the
// controller — see Hooks). Zero config fields take their defaults; a
// home budget other than 0 requires the multi-writer protocol (explicit
// home moves ride barrier releases).
func NewController(cl *dsm.Cluster, eng *threads.Engine, tracker *core.ActiveTracker, cfg ControllerConfig) (*Controller, error) {
	if cl == nil || eng == nil || tracker == nil {
		return nil, errors.New("placement: controller needs a cluster, an engine, and a tracker")
	}
	if cfg.Period <= 0 {
		cfg.Period = 2
	}
	if cfg.Smoothing <= 0 || cfg.Smoothing > 1 {
		cfg.Smoothing = 0.5
	}
	if cfg.Hysteresis < 0 {
		return nil, fmt.Errorf("placement: negative hysteresis %v", cfg.Hysteresis)
	}
	return &Controller{cfg: cfg, cluster: cl, engine: eng, tracker: tracker}, nil
}

// Err returns the first error the controller hit applying a decision
// (nil when none). Hook callbacks cannot return errors; check after the
// run.
func (c *Controller) Err() error { return c.err }

// Hooks wraps next with the controller's iteration callback. Compose so
// the tracker wraps the controller (tracker.Hooks(ctrl.Hooks(user))):
// the tracker finishes its window bookkeeping first, so the controller
// sees a complete matrix in the same iteration the window closes.
func (c *Controller) Hooks(next threads.Hooks) threads.Hooks {
	return threads.Hooks{
		OnIteration: func(iter int) {
			c.onIteration(iter)
			if next.OnIteration != nil {
				next.OnIteration(iter)
			}
		},
		OnBarrier:   next.OnBarrier,
		OnThreadRun: next.OnThreadRun,
	}
}

// blend folds the newest correlation matrix into the EWMA state and
// returns the blended matrix (entries rounded to int64 for the discrete
// heuristics).
func (c *Controller) blend(m *core.Matrix) *core.Matrix {
	n := m.N()
	if len(c.smoothed) != n*n {
		c.smoothed = make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				c.smoothed[i*n+j] = float64(m.At(i, j))
			}
		}
	} else {
		a := c.cfg.Smoothing
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				c.smoothed[i*n+j] = a*float64(m.At(i, j)) + (1-a)*c.smoothed[i*n+j]
			}
		}
	}
	out := core.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			// Round symmetrically; +0.5 keeps sub-unit blended sharing
			// from vanishing entirely.
			out.Set(i, j, int64(c.smoothed[i*n+j]+0.5))
		}
	}
	return out
}

// onIteration runs one controller evaluation when the tracker has a
// complete window and the trigger period has elapsed. All threads are
// parked: placement reads and migrations are safe.
func (c *Controller) onIteration(iter int) {
	if !c.tracker.Done() || iter < c.nextEval {
		// Keep the write window aligned with the tracked window: rolling
		// the snapshot forward on idle iterations keeps initialization
		// writes (thread 0 populating the whole segment) and long-stale
		// traffic out of the next evaluation's delta.
		c.prevHist = c.cluster.WriteHistory()
		return
	}
	c.nextEval = iter + c.cfg.Period
	st := c.cluster.Stats()
	st.PlacementTriggers.Add(1)

	nodes := c.cluster.NumNodes()
	sm := c.blend(c.tracker.Matrix())
	cur := c.engine.Placement()
	homes := c.cluster.Homes()
	hist := c.cluster.WriteHistory()
	writes := subHistory(hist, c.prevHist)
	c.prevHist = hist
	in := CostInput{
		Matrix:  sm,
		Bitmaps: c.tracker.Bitmaps(),
		Writes:  writes,
		Topo:    c.cluster.Topology(),
		Nodes:   nodes,
	}
	curCost := JointCost(in, cur, homes)

	// Thread side: the paper's min-cost heuristic on the smoothed
	// matrix — capacity-aware on heterogeneous topologies, so slow
	// nodes host proportionally fewer threads — labels aligned to
	// minimize moves, clamped to the budget (keeping the individually
	// best moves when over).
	target := cur
	if c.cfg.ThreadBudget != 0 {
		t := AlignLabels(c.minCostTarget(sm, nodes), cur, nodes)
		moves := Plan(cur, t, nodes)
		if c.cfg.ThreadBudget > 0 && len(moves) > c.cfg.ThreadBudget {
			moves = topThreadMoves(in, cur, homes, moves, c.cfg.ThreadBudget)
		}
		if len(moves) > 0 {
			target = append([]int(nil), cur...)
			for _, mv := range moves {
				target[mv.Thread] = mv.To
			}
		}
	}

	// Data side: best home per priced page under the candidate thread
	// assignment, budget-clamped by gain.
	homeMoves := BestHomes(in, target, homes, c.cfg.HomeBudget)
	newHomes := homes
	if len(homeMoves) > 0 {
		newHomes = append([]int(nil), homes...)
		for _, hm := range homeMoves {
			newHomes[hm.Page] = hm.To
		}
	}

	// Hysteresis: act only when the joint prediction clears the
	// threshold; otherwise record the skip and leave placement alone.
	newCost := JointCost(in, target, newHomes)
	if curCost <= 0 || curCost-newCost <= c.cfg.Hysteresis*curCost {
		st.PlacementSkipped.Add(1)
	} else {
		moved, err := c.engine.ApplyPlacement(target)
		if err != nil && c.err == nil {
			c.err = fmt.Errorf("placement: controller apply at iteration %d: %w", iter, err)
		}
		st.PlacementThreadMoves.Add(int64(moved))
		if len(homeMoves) > 0 {
			mv := make(map[int]int, len(homeMoves))
			for _, hm := range homeMoves {
				mv[hm.Page] = hm.To
			}
			if err := c.cluster.QueueHomeMoves(mv); err != nil && c.err == nil {
				c.err = fmt.Errorf("placement: controller home moves at iteration %d: %w", iter, err)
			}
		}
		st.PlacementApplied.Add(1)
	}

	if c.cfg.Retrack {
		// Re-arm for the window before the next eligible evaluation.
		// Inside OnIteration(iter) the engine is already at iter+1, and
		// Retrack requires a strictly future iteration.
		next := c.nextEval
		if next < iter+2 {
			next = iter + 2
		}
		// The only failure mode is the run ending before the window —
		// harmless, so the error is not sticky.
		_ = c.tracker.Retrack(next)
	}
}

// minCostTarget computes the thread side's target placement: the
// balanced min-cost heuristic on a uniform cluster, the capacity-aware
// variant (capacities proportional to inverse compute scale) when the
// topology is heterogeneous — piling a balanced share onto a 2x-slow
// node would trade the saved communication for compute serialization.
func (c *Controller) minCostTarget(m *core.Matrix, nodes int) []int {
	topo := c.cluster.Topology()
	if topo == nil {
		return MinCost(m, nodes)
	}
	speeds := make([]float64, nodes)
	uniform := true
	for n := 0; n < nodes; n++ {
		scale := topo.ComputeScale(n)
		if scale <= 0 {
			scale = 1
		}
		speeds[n] = 1 / scale
		if scale != 1 {
			uniform = false
		}
	}
	if uniform {
		return MinCost(m, nodes)
	}
	caps, err := CapacitiesForSpeeds(m.N(), speeds)
	if err != nil {
		return MinCost(m, nodes)
	}
	target, err := MinCostCapacities(m, caps)
	if err != nil {
		return MinCost(m, nodes)
	}
	return target
}

// topThreadMoves keeps the budget's individually best moves by
// single-move joint-cost improvement (ties: lower thread id first, for
// determinism).
func topThreadMoves(in CostInput, cur []int, homes []int, moves []Move, budget int) []Move {
	type scored struct {
		mv   Move
		gain float64
	}
	base := JointCost(in, cur, homes)
	ranked := make([]scored, 0, len(moves))
	trial := append([]int(nil), cur...)
	for _, mv := range moves {
		trial[mv.Thread] = mv.To
		ranked = append(ranked, scored{mv, base - JointCost(in, trial, homes)})
		trial[mv.Thread] = cur[mv.Thread]
	}
	// Insertion-sort by gain descending, thread ascending on ties: the
	// move lists here are small (bounded by thread count).
	for i := 1; i < len(ranked); i++ {
		for j := i; j > 0; j-- {
			a, b := ranked[j-1], ranked[j]
			if b.gain > a.gain || (b.gain == a.gain && b.mv.Thread < a.mv.Thread) {
				ranked[j-1], ranked[j] = b, a
			} else {
				break
			}
		}
	}
	out := make([]Move, 0, budget)
	for i := 0; i < budget && i < len(ranked); i++ {
		out = append(out, ranked[i].mv)
	}
	return out
}

// subHistory returns cur - prev element-wise (prev nil or short rows
// count as zero).
func subHistory(cur, prev [][]int64) [][]int64 {
	out := make([][]int64, len(cur))
	for p, row := range cur {
		d := append([]int64(nil), row...)
		if p < len(prev) {
			for i := range d {
				if i < len(prev[p]) {
					d[i] -= prev[p][i]
				}
			}
		}
		out[p] = d
	}
	return out
}
