package placement

import (
	"testing"

	"actdsm/internal/core"
	"actdsm/internal/dsm"
	"actdsm/internal/memlayout"
	"actdsm/internal/sim"
	"actdsm/internal/threads"
	"actdsm/internal/vm"
)

// controllerRig is one cluster + engine + tracker + controller stack
// for controller tests, mirroring the facade's hook composition.
type controllerRig struct {
	cluster *dsm.Cluster
	engine  *threads.Engine
	tracker *core.ActiveTracker
	ctrl    *Controller
}

func newControllerRig(t *testing.T, nodes, pages, nthreads int, topo *sim.Topology, cfg ControllerConfig) *controllerRig {
	t.Helper()
	cl, err := dsm.New(dsm.Config{Nodes: nodes, Pages: pages, Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })
	eng, err := threads.NewEngine(cl, threads.Config{Threads: nthreads})
	if err != nil {
		t.Fatal(err)
	}
	tracker := core.NewActiveTracker(eng, 0)
	ctrl, err := NewController(cl, eng, tracker, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetHooks(tracker.Hooks(ctrl.Hooks(threads.Hooks{})))
	tracker.Start()
	return &controllerRig{cluster: cl, engine: eng, tracker: tracker, ctrl: ctrl}
}

// pairBody returns a body where threads t and t^2 share a page (pairs
// {0,2} and {1,3} under 4 threads): the default block placement on 2
// nodes splits both pairs across nodes, so min-cost placement has an
// obvious, large improvement.
func pairBody(iters int) func(tid int) threads.Body {
	return func(tid int) threads.Body {
		page := tid % 2 // 0 and 2 write page 0, 1 and 3 write page 1
		return func(ctx *threads.Ctx) error {
			for i := 0; i < iters; i++ {
				b, err := ctx.Span(page*memlayout.PageSize, 8, vm.Write)
				if err != nil {
					return err
				}
				b[0]++
				ctx.EndIteration()
			}
			return nil
		}
	}
}

func TestControllerAppliesAndMovesHomes(t *testing.T) {
	cfg := DefaultControllerConfig()
	cfg.Period = 1
	cfg.Hysteresis = 0
	rig := newControllerRig(t, 2, 4, 4, nil, cfg)
	if err := rig.engine.Run(pairBody(6)); err != nil {
		t.Fatal(err)
	}
	if err := rig.ctrl.Err(); err != nil {
		t.Fatal(err)
	}
	snap := rig.cluster.Stats().Snapshot()
	if snap.PlacementTriggers == 0 {
		t.Fatal("controller never triggered")
	}
	if snap.PlacementApplied == 0 {
		t.Fatalf("controller never applied: %+v triggers, %+v skipped",
			snap.PlacementTriggers, snap.PlacementSkipped)
	}
	if snap.PlacementThreadMoves == 0 {
		t.Fatal("split pairs should force thread moves")
	}
	// Pairs end up co-located.
	p := rig.engine.Placement()
	if p[0] != p[2] || p[1] != p[3] {
		t.Fatalf("pairs not co-located: %v", p)
	}
}

func TestControllerHysteresisSuppressesAll(t *testing.T) {
	cfg := DefaultControllerConfig()
	cfg.Period = 1
	cfg.Hysteresis = 1.0 // would need cost to drop below zero
	rig := newControllerRig(t, 2, 4, 4, nil, cfg)
	if err := rig.engine.Run(pairBody(6)); err != nil {
		t.Fatal(err)
	}
	snap := rig.cluster.Stats().Snapshot()
	if snap.PlacementApplied != 0 {
		t.Fatalf("hysteresis 1.0 should suppress every decision, applied %d", snap.PlacementApplied)
	}
	if snap.PlacementSkipped == 0 {
		t.Fatal("suppressed decisions should count as skipped")
	}
	if snap.PlacementThreadMoves != 0 || snap.PlacementHomeMoves != 0 {
		t.Fatalf("suppressed controller moved anyway: %d threads, %d homes",
			snap.PlacementThreadMoves, snap.PlacementHomeMoves)
	}
}

func TestControllerRespectsBudgets(t *testing.T) {
	cfg := DefaultControllerConfig()
	cfg.Period = 1
	cfg.Hysteresis = 0
	cfg.ThreadBudget = 1
	cfg.HomeBudget = 1
	rig := newControllerRig(t, 2, 4, 4, nil, cfg)
	if err := rig.engine.Run(pairBody(8)); err != nil {
		t.Fatal(err)
	}
	if err := rig.ctrl.Err(); err != nil {
		t.Fatal(err)
	}
	snap := rig.cluster.Stats().Snapshot()
	if snap.PlacementApplied == 0 {
		t.Fatal("budgeted controller should still apply")
	}
	if snap.PlacementThreadMoves > snap.PlacementApplied {
		t.Fatalf("thread budget 1 exceeded: %d moves over %d applications",
			snap.PlacementThreadMoves, snap.PlacementApplied)
	}
	if snap.PlacementHomeMoves > snap.PlacementApplied {
		t.Fatalf("home budget 1 exceeded: %d moves over %d applications",
			snap.PlacementHomeMoves, snap.PlacementApplied)
	}
}

func TestControllerDisabledSides(t *testing.T) {
	cfg := DefaultControllerConfig()
	cfg.Period = 1
	cfg.Hysteresis = 0
	cfg.ThreadBudget = 0 // data-only
	rig := newControllerRig(t, 2, 4, 4, nil, cfg)
	if err := rig.engine.Run(pairBody(6)); err != nil {
		t.Fatal(err)
	}
	snap := rig.cluster.Stats().Snapshot()
	if snap.PlacementThreadMoves != 0 {
		t.Fatalf("thread side disabled but moved %d threads", snap.PlacementThreadMoves)
	}
}

// TestControllerNoOscillation runs an alternating two-phase workload:
// odd iterations pair {0,2}/{1,3}, even iterations pair {0,1}/{2,3}
// (the latter matching block placement exactly). EWMA smoothing blends
// the phases, so after the controller settles it must stop flip-
// flopping placement every period.
func TestControllerNoOscillation(t *testing.T) {
	cfg := DefaultControllerConfig()
	cfg.Period = 1
	const iters = 16
	rig := newControllerRig(t, 2, 8, 4, nil, cfg)
	body := func(tid int) threads.Body {
		return func(ctx *threads.Ctx) error {
			for i := 0; i < iters; i++ {
				var page int
				if i%2 == 0 {
					page = tid % 2 // pairs {0,2},{1,3}
				} else {
					page = 4 + tid/2 // pairs {0,1},{2,3}
				}
				b, err := ctx.Span(page*memlayout.PageSize, 8, vm.Write)
				if err != nil {
					return err
				}
				b[0]++
				ctx.EndIteration()
			}
			return nil
		}
	}
	if err := rig.engine.Run(body); err != nil {
		t.Fatal(err)
	}
	if err := rig.ctrl.Err(); err != nil {
		t.Fatal(err)
	}
	snap := rig.cluster.Stats().Snapshot()
	if snap.PlacementTriggers < 4 {
		t.Fatalf("expected repeated evaluations, got %d", snap.PlacementTriggers)
	}
	// An oscillating controller would re-place on nearly every
	// evaluation; a settled one applies a bounded number of times.
	if snap.PlacementApplied > snap.PlacementTriggers/2 {
		t.Fatalf("controller oscillates: applied %d of %d evaluations",
			snap.PlacementApplied, snap.PlacementTriggers)
	}
	if snap.PlacementThreadMoves > 8 {
		t.Fatalf("controller churns threads: %d moves over %d iterations",
			snap.PlacementThreadMoves, iters)
	}
}

func TestControllerValidation(t *testing.T) {
	if _, err := NewController(nil, nil, nil, ControllerConfig{}); err == nil {
		t.Fatal("nil deps should be rejected")
	}
	cl, err := dsm.New(dsm.Config{Nodes: 2, Pages: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	eng, err := threads.NewEngine(cl, threads.Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr := core.NewActiveTracker(eng, 0)
	if _, err := NewController(cl, eng, tr, ControllerConfig{Hysteresis: -0.1}); err == nil {
		t.Fatal("negative hysteresis should be rejected")
	}
	c, err := NewController(cl, eng, tr, ControllerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if c.cfg.Period != 2 || c.cfg.Smoothing != 0.5 {
		t.Fatalf("zero-value defaults not applied: %+v", c.cfg)
	}
}

func TestJointCostUniformMatchesCutCost(t *testing.T) {
	m := core.NewMatrix(4)
	m.Set(0, 2, 10)
	m.Set(1, 3, 7)
	m.Set(0, 1, 3)
	assign := []int{0, 0, 1, 1}
	got := JointCost(CostInput{Matrix: m, Nodes: 2}, assign, nil)
	want := float64(m.CutCost(assign))
	if got != want {
		t.Fatalf("uniform joint cost %v != cut cost %v", got, want)
	}
}

func TestJointCostTopologyWeighting(t *testing.T) {
	m := core.NewMatrix(2)
	m.Set(0, 1, 1)
	topo := sim.FastSlowTopology(4, sim.DefaultCosts(), 2, 1, 4)
	in := CostInput{Matrix: m, Topo: topo, Nodes: 4}
	fast := JointCost(in, []int{0, 2}, nil) // two fast nodes
	slow := JointCost(in, []int{0, 1}, nil) // fast ↔ slow link
	if slow <= fast {
		t.Fatalf("slow link should cost more: fast %v, slow %v", fast, slow)
	}
}

func TestBestHomes(t *testing.T) {
	// Page 0 written heavily from node 1, page 1 lightly from node 1,
	// both homed at node 0.
	in := CostInput{
		Writes: [][]int64{{0, 10}, {0, 2}},
		Nodes:  2,
	}
	homes := []int{0, 0}
	moves := BestHomes(in, []int{0, 1}, homes, -1)
	if len(moves) != 2 {
		t.Fatalf("expected 2 moves, got %v", moves)
	}
	if moves[0].Page != 0 || moves[0].To != 1 || moves[1].Page != 1 {
		t.Fatalf("gain ordering wrong: %v", moves)
	}
	if moves[0].Gain <= moves[1].Gain {
		t.Fatalf("gains not descending: %v", moves)
	}
	// Budget truncates to the top gain; zero disables.
	if got := BestHomes(in, []int{0, 1}, homes, 1); len(got) != 1 || got[0].Page != 0 {
		t.Fatalf("budget 1 wrong: %v", got)
	}
	if got := BestHomes(in, []int{0, 1}, homes, 0); got != nil {
		t.Fatalf("budget 0 should disable, got %v", got)
	}
	// Already-optimal homes propose nothing.
	if got := BestHomes(in, []int{0, 1}, []int{1, 1}, -1); len(got) != 0 {
		t.Fatalf("optimal homes should yield no moves, got %v", got)
	}
}

func TestPlanAndAlignEdgeCases(t *testing.T) {
	cur := []int{0, 0, 1, 1}
	// Identical target: no moves.
	if moves := Plan(cur, cur, 2); len(moves) != 0 {
		t.Fatalf("identical plan should be empty, got %v", moves)
	}
	// Label-permuted target: AlignLabels maps it back to a no-op.
	perm := []int{1, 1, 0, 0}
	aligned := AlignLabels(perm, cur, 2)
	if moves := Plan(cur, aligned, 2); len(moves) != 0 {
		t.Fatalf("permuted labels should align to a no-op, got %v (aligned %v)", moves, aligned)
	}
	// A genuine swap survives alignment.
	target := []int{0, 1, 0, 1}
	moves := Plan(cur, AlignLabels(target, cur, 2), 2)
	if len(moves) == 0 || len(moves) > 2 {
		t.Fatalf("swap should cost 1-2 moves, got %v", moves)
	}
}
