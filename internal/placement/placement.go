package placement

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"actdsm/internal/core"
	"actdsm/internal/sim"
)

// ErrTooLarge reports an exact-solver instance beyond its practical size.
var ErrTooLarge = errors.New("placement: instance too large for exact solver")

// Stretch maintains the initial thread ordering and divides the threads
// equally among the nodes: with 64 threads on 4 nodes, threads 0–15 on
// node 0, 16–31 on node 1, and so on. It is exactly right for
// nearest-neighbour sharing and no worse than anything else for uniform
// all-to-all sharing (paper §5.1).
func Stretch(threads, nodes int) []int {
	out := make([]int, threads)
	per := threads / nodes
	extra := threads % nodes
	tid := 0
	for n := 0; n < nodes; n++ {
		cnt := per
		if n < extra {
			cnt++
		}
		for i := 0; i < cnt && tid < threads; i++ {
			out[tid] = n
			tid++
		}
	}
	return out
}

// RandomBalanced returns a uniformly random balanced placement: node
// populations match Stretch's, threads shuffled.
func RandomBalanced(threads, nodes int, rng *sim.RNG) []int {
	base := Stretch(threads, nodes)
	rng.Shuffle(len(base), func(i, j int) { base[i], base[j] = base[j], base[i] })
	return base
}

// RandomMin returns a random placement with possibly unequal node
// populations but at least minPerNode threads on every node — the paper's
// Table 2 methodology ("no node ever ended up with fewer than two
// threads").
func RandomMin(threads, nodes, minPerNode int, rng *sim.RNG) ([]int, error) {
	if threads < nodes*minPerNode {
		return nil, fmt.Errorf("placement: %d threads cannot give %d nodes %d each", threads, nodes, minPerNode)
	}
	out := make([]int, threads)
	// Seed the minimum population, then scatter the rest uniformly.
	perm := rng.Perm(threads)
	idx := 0
	for n := 0; n < nodes; n++ {
		for k := 0; k < minPerNode; k++ {
			out[perm[idx]] = n
			idx++
		}
	}
	for ; idx < threads; idx++ {
		out[perm[idx]] = rng.Intn(nodes)
	}
	return out, nil
}

// capacities returns the balanced per-node thread capacities.
func capacities(threads, nodes int) []int {
	caps := make([]int, nodes)
	per := threads / nodes
	extra := threads % nodes
	for n := range caps {
		caps[n] = per
		if n < extra {
			caps[n]++
		}
	}
	return caps
}

// CapacitiesForSpeeds apportions threads to nodes proportionally to their
// CPU speeds (largest-remainder method), for the heterogeneous clusters
// the paper's §2 motivates. Every node receives at least one thread when
// threads ≥ nodes.
func CapacitiesForSpeeds(threads int, speeds []float64) ([]int, error) {
	nodes := len(speeds)
	if nodes == 0 {
		return nil, errors.New("placement: no node speeds")
	}
	var total float64
	for n, s := range speeds {
		if s <= 0 {
			return nil, fmt.Errorf("placement: node %d speed %v not positive", n, s)
		}
		total += s
	}
	caps := make([]int, nodes)
	rem := make([]float64, nodes)
	assigned := 0
	for n, s := range speeds {
		exact := float64(threads) * s / total
		caps[n] = int(exact)
		rem[n] = exact - float64(caps[n])
		assigned += caps[n]
	}
	for assigned < threads {
		best := 0
		for n := 1; n < nodes; n++ {
			if rem[n] > rem[best] {
				best = n
			}
		}
		caps[best]++
		rem[best] = -1
		assigned++
	}
	if threads >= nodes {
		// Donate from the largest node to any empty one.
		for n := range caps {
			if caps[n] > 0 {
				continue
			}
			donor := 0
			for k := 1; k < nodes; k++ {
				if caps[k] > caps[donor] {
					donor = k
				}
			}
			caps[donor]--
			caps[n]++
		}
	}
	return caps, nil
}

// StretchCapacities is Stretch with explicit per-node capacities:
// contiguous thread blocks sized by caps.
func StretchCapacities(threads int, caps []int) ([]int, error) {
	total := 0
	for _, c := range caps {
		if c < 0 {
			return nil, errors.New("placement: negative capacity")
		}
		total += c
	}
	if total != threads {
		return nil, fmt.Errorf("placement: capacities sum to %d for %d threads", total, threads)
	}
	out := make([]int, 0, threads)
	for n, c := range caps {
		for i := 0; i < c; i++ {
			out = append(out, n)
		}
	}
	return out, nil
}

// MinCostCapacities is MinCost with explicit per-node capacities.
func MinCostCapacities(m *core.Matrix, caps []int) ([]int, error) {
	threads := m.N()
	total := 0
	for _, c := range caps {
		total += c
	}
	if total != threads {
		return nil, fmt.Errorf("placement: capacities sum to %d for %d threads", total, threads)
	}
	return minCostCaps(m, caps), nil
}

// MinCost computes a balanced placement with low cut cost: agglomerative
// clustering on thread correlations (merge the pair of clusters with the
// highest inter-cluster affinity whose union still fits a node), followed
// by Kernighan–Lin-style pairwise swap refinement. The paper reports this
// family of heuristics lands within 1 % of optimal on its applications.
func MinCost(m *core.Matrix, nodes int) []int {
	return minCostCaps(m, capacities(m.N(), nodes))
}

// minCostCaps is the clustering + refinement pipeline for arbitrary
// per-node capacities.
func minCostCaps(m *core.Matrix, caps []int) []int {
	threads := m.N()
	nodes := len(caps)
	maxCap := 0
	for _, c := range caps {
		if c > maxCap {
			maxCap = c
		}
	}

	// Agglomerative phase. clusters[i] = member thread ids.
	clusters := make([][]int, threads)
	for i := range clusters {
		clusters[i] = []int{i}
	}
	affinity := func(a, b []int) int64 {
		var s int64
		for _, i := range a {
			for _, j := range b {
				s += m.At(i, j)
			}
		}
		return s
	}
	for len(clusters) > nodes {
		bi, bj := -1, -1
		var best int64 = -1
		smallestFirst := false
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				if len(clusters[i])+len(clusters[j]) > maxCap {
					continue
				}
				a := affinity(clusters[i], clusters[j])
				if a > best {
					best, bi, bj = a, i, j
				}
			}
		}
		if bi < 0 {
			// No feasible merge under the cap: merge the two
			// smallest clusters disregarding affinity so we always
			// converge to exactly `nodes` clusters.
			smallestFirst = true
		}
		if smallestFirst {
			// Find the two smallest clusters whose union is
			// smallest; with caps respected above this only
			// triggers when fragmentation blocks progress.
			bi, bj = 0, 1
			for i := 0; i < len(clusters); i++ {
				for j := i + 1; j < len(clusters); j++ {
					if len(clusters[i])+len(clusters[j]) < len(clusters[bi])+len(clusters[bj]) {
						bi, bj = i, j
					}
				}
			}
		}
		merged := append(append([]int(nil), clusters[bi]...), clusters[bj]...)
		next := make([][]int, 0, len(clusters)-1)
		for k, cl := range clusters {
			if k != bi && k != bj {
				next = append(next, cl)
			}
		}
		clusters = append(next, merged)
	}

	// Map the largest clusters onto the highest-capacity nodes, then
	// balance: move threads out of oversized clusters into undersized
	// ones, choosing the least-attached thread each time.
	order := make([]int, nodes)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return len(clusters[order[a]]) > len(clusters[order[b]]) })
	nodeOrder := make([]int, nodes)
	for i := range nodeOrder {
		nodeOrder[i] = i
	}
	sort.Slice(nodeOrder, func(a, b int) bool { return caps[nodeOrder[a]] > caps[nodeOrder[b]] })
	assign := make([]int, threads)
	for rank, ci := range order {
		node := nodeOrder[rank]
		for _, tid := range clusters[ci] {
			assign[tid] = node
		}
	}
	assign = rebalance(m, assign, caps)
	return Refine(m, assign)
}

// rebalance enforces node capacities by relocating the least-attached
// threads from over-full nodes to under-full ones.
func rebalance(m *core.Matrix, assign []int, caps []int) []int {
	nodes := len(caps)
	counts := make([]int, nodes)
	for _, n := range assign {
		counts[n]++
	}
	attach := func(tid, node int) int64 {
		var s int64
		for j := 0; j < m.N(); j++ {
			if j != tid && assign[j] == node {
				s += m.At(tid, j)
			}
		}
		return s
	}
	for {
		over := -1
		for n := 0; n < nodes; n++ {
			if counts[n] > caps[n] {
				over = n
				break
			}
		}
		if over < 0 {
			return assign
		}
		under := -1
		for n := 0; n < nodes; n++ {
			if counts[n] < caps[n] {
				under = n
				break
			}
		}
		// Move the thread losing the least affinity.
		bestTid, bestDelta := -1, int64(math.MaxInt64)
		for tid := range assign {
			if assign[tid] != over {
				continue
			}
			delta := attach(tid, over) - attach(tid, under)
			if delta < bestDelta {
				bestDelta, bestTid = delta, tid
			}
		}
		assign[bestTid] = under
		counts[over]--
		counts[under]++
	}
}

// Refine improves a balanced placement by greedy pairwise swaps until no
// swap reduces the cut cost (a Kernighan–Lin-style local search that
// preserves node populations).
func Refine(m *core.Matrix, assign []int) []int {
	out := append([]int(nil), assign...)
	n := m.N()
	// external[i][node] = Σ correlation of i with threads on node.
	ext := make([][]int64, n)
	for i := range ext {
		ext[i] = make([]int64, maxNode(out)+1)
		for j := 0; j < n; j++ {
			if j != i {
				ext[i][out[j]] += m.At(i, j)
			}
		}
	}
	for {
		bestGain := int64(0)
		bi, bj := -1, -1
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				ni, nj := out[i], out[j]
				if ni == nj {
					continue
				}
				// Swapping i and j changes cut by:
				gain := (ext[i][nj] - ext[i][ni]) + (ext[j][ni] - ext[j][nj]) - 2*m.At(i, j)
				if gain > bestGain {
					bestGain, bi, bj = gain, i, j
				}
			}
		}
		if bi < 0 {
			return out
		}
		ni, nj := out[bi], out[bj]
		out[bi], out[bj] = nj, ni
		for k := 0; k < n; k++ {
			if k == bi || k == bj {
				continue
			}
			ext[k][ni] += m.At(k, bj) - m.At(k, bi)
			ext[k][nj] += m.At(k, bi) - m.At(k, bj)
		}
		ext[bi], ext[bj] = recomputeExt(m, out, bi), recomputeExt(m, out, bj)
	}
}

func recomputeExt(m *core.Matrix, assign []int, i int) []int64 {
	ext := make([]int64, maxNode(assign)+1)
	for j := 0; j < m.N(); j++ {
		if j != i {
			ext[assign[j]] += m.At(i, j)
		}
	}
	return ext
}

func maxNode(assign []int) int {
	mx := 0
	for _, n := range assign {
		if n > mx {
			mx = n
		}
	}
	return mx
}

// Optimal finds the balanced placement with the minimum cut cost by
// branch-and-bound. Practical up to roughly 16 threads; larger instances
// return ErrTooLarge.
func Optimal(m *core.Matrix, nodes int) ([]int, error) {
	threads := m.N()
	if threads > 16 {
		return nil, ErrTooLarge
	}
	caps := capacities(threads, nodes)
	best := append([]int(nil), Stretch(threads, nodes)...)
	best = Refine(m, best)
	bestCost := m.CutCost(best)

	assign := make([]int, threads)
	counts := make([]int, nodes)
	var dfs func(tid int, cost int64)
	dfs = func(tid int, cost int64) {
		if cost >= bestCost {
			return
		}
		if tid == threads {
			bestCost = cost
			copy(best, assign)
			return
		}
		// Symmetry breaking: a thread may open at most one new node.
		maxNodeSoFar := -1
		for i := 0; i < tid; i++ {
			if assign[i] > maxNodeSoFar {
				maxNodeSoFar = assign[i]
			}
		}
		limit := maxNodeSoFar + 1
		if limit >= nodes {
			limit = nodes - 1
		}
		for n := 0; n <= limit; n++ {
			if counts[n] >= caps[n] {
				continue
			}
			var added int64
			for i := 0; i < tid; i++ {
				if assign[i] != n {
					added += m.At(i, tid)
				}
			}
			assign[tid] = n
			counts[n]++
			dfs(tid+1, cost+added)
			counts[n]--
		}
	}
	dfs(0, 0)
	return best, nil
}

// Move is one thread migration in a reconfiguration plan.
type Move struct {
	Thread   int
	From, To int
}

// Plan computes the single round of migrations taking current to target
// after relabeling target's nodes to minimize the number of moves (cut
// cost is invariant under node relabeling, so the cheapest labeling is
// free).
func Plan(current, target []int, nodes int) []Move {
	relabeled := AlignLabels(target, current, nodes)
	var moves []Move
	for tid := range current {
		if current[tid] != relabeled[tid] {
			moves = append(moves, Move{Thread: tid, From: current[tid], To: relabeled[tid]})
		}
	}
	return moves
}

// AlignLabels permutes target's node labels to maximize agreement with
// current. For up to 8 nodes the optimal permutation is found
// exhaustively; beyond that a greedy matching is used.
func AlignLabels(target, current []int, nodes int) []int {
	// overlap[a][b] = threads target places on a that current has on b.
	overlap := make([][]int, nodes)
	for a := range overlap {
		overlap[a] = make([]int, nodes)
	}
	for tid := range target {
		overlap[target[tid]][current[tid]]++
	}
	var perm []int
	if nodes <= 8 {
		perm = bestPermutation(overlap, nodes)
	} else {
		perm = greedyPermutation(overlap, nodes)
	}
	out := make([]int, len(target))
	for tid := range target {
		out[tid] = perm[target[tid]]
	}
	return out
}

func bestPermutation(overlap [][]int, nodes int) []int {
	perm := make([]int, nodes)
	used := make([]bool, nodes)
	best := make([]int, nodes)
	for i := range best {
		best[i] = i
	}
	bestScore := -1
	var dfs func(a, score int)
	dfs = func(a, score int) {
		if a == nodes {
			if score > bestScore {
				bestScore = score
				copy(best, perm)
			}
			return
		}
		for b := 0; b < nodes; b++ {
			if used[b] {
				continue
			}
			used[b] = true
			perm[a] = b
			dfs(a+1, score+overlap[a][b])
			used[b] = false
		}
	}
	dfs(0, 0)
	return best
}

func greedyPermutation(overlap [][]int, nodes int) []int {
	perm := make([]int, nodes)
	usedA := make([]bool, nodes)
	usedB := make([]bool, nodes)
	for k := 0; k < nodes; k++ {
		ba, bb, bs := -1, -1, -1
		for a := 0; a < nodes; a++ {
			if usedA[a] {
				continue
			}
			for b := 0; b < nodes; b++ {
				if usedB[b] {
					continue
				}
				if overlap[a][b] > bs {
					ba, bb, bs = a, b, overlap[a][b]
				}
			}
		}
		perm[ba] = bb
		usedA[ba] = true
		usedB[bb] = true
	}
	return perm
}
