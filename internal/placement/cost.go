package placement

import (
	"sort"

	"actdsm/internal/core"
	"actdsm/internal/memlayout"
	"actdsm/internal/sim"
	"actdsm/internal/vm"
)

// Placement v2 (DESIGN.md §14): a unified cost model scoring a joint
// (thread → node, page → home) assignment. The paper's cut cost only
// prices thread-thread sharing on a uniform network; the joint cost adds
// the data side — where each page's home sits relative to its recent
// writers and its readers — and weights every term by the actual
// per-directed-link cost of the cluster topology, so the same number
// ranks candidate thread moves and candidate home moves. On a uniform
// topology with no page terms the joint cost degenerates to the paper's
// cut cost exactly (weight 1 per crossing pair).

// CostInput carries the cluster state the joint cost model prices. The
// thread assignment and home table are passed separately to JointCost so
// one input can score many candidates.
type CostInput struct {
	// Matrix is the thread-correlation matrix (sharing weights).
	Matrix *core.Matrix
	// Bitmaps, when non-nil, holds per-thread page-access bitmaps from
	// the tracker; they price each thread's affinity to the pages it
	// touches against the pages' homes. Bitmaps[t] may be nil.
	Bitmaps []*vm.Bitmap
	// Writes, when non-nil, holds recent per-(page, node) write-notice
	// counts (a windowed dsm.Cluster.WriteHistory difference); they
	// price each page's write traffic against its home.
	Writes [][]int64
	// Topo supplies per-directed-link network costs; nil prices every
	// remote link uniformly at weight 1.
	Topo *sim.Topology
	// Nodes is the cluster size.
	Nodes int
}

// linkWeight prices one remote (a, b) exchange as the round-trip cost
// of a nominal page-sized transfer over the directed links, normalized
// so the uniform base link weighs exactly 1. Same-node exchanges are
// free. With a nil topology every remote pair weighs 1, which reduces
// the thread term of JointCost to the paper's cut cost.
func linkWeight(topo *sim.Topology, a, b int) float64 {
	if a == b {
		return 0
	}
	if topo == nil {
		return 1
	}
	base := topo.Base()
	unit := float64(2*base.MsgLatency + memlayout.PageSize*base.MsgPerByte)
	if unit == 0 {
		return 1
	}
	return float64(topo.FetchCost(a, b, 0, memlayout.PageSize)) / unit
}

// JointCost scores a joint placement: assign maps thread → node and
// homes maps page → home node (homes may be nil when only the thread
// side is priced). Lower is better. Three terms, all in units of
// link-weighted exchanges:
//
//   - thread-thread: for every thread pair on distinct nodes, the pair's
//     correlation times the link weight between their nodes (the paper's
//     cut cost, topology-weighted);
//   - read affinity: for every (thread, page) access in Bitmaps, the
//     link weight between the thread's node and the page's home;
//   - write traffic: for every (page, writer-node) count in Writes, the
//     count times the link weight between the writer and the home.
func JointCost(in CostInput, assign []int, homes []int) float64 {
	var cost float64
	if m := in.Matrix; m != nil {
		n := m.N()
		for i := 0; i < n && i < len(assign); i++ {
			for j := i + 1; j < n && j < len(assign); j++ {
				if c := m.At(i, j); c != 0 {
					cost += float64(c) * linkWeight(in.Topo, assign[i], assign[j])
				}
			}
		}
	}
	if homes == nil {
		return cost
	}
	for t, bm := range in.Bitmaps {
		if bm == nil || t >= len(assign) {
			continue
		}
		for p := range homes {
			if bm.Get(vm.PageID(p)) {
				cost += linkWeight(in.Topo, assign[t], homes[p])
			}
		}
	}
	for p, row := range in.Writes {
		if p >= len(homes) {
			break
		}
		for w, c := range row {
			if c != 0 {
				cost += float64(c) * linkWeight(in.Topo, w, homes[p])
			}
		}
	}
	return cost
}

// pageCost prices one page's traffic with its home at h under assign:
// the read-affinity and write terms of JointCost restricted to page p.
func pageCost(in CostInput, assign []int, p, h int) float64 {
	var cost float64
	for t, bm := range in.Bitmaps {
		if bm != nil && t < len(assign) && bm.Get(vm.PageID(p)) {
			cost += linkWeight(in.Topo, assign[t], h)
		}
	}
	if p < len(in.Writes) {
		for w, c := range in.Writes[p] {
			if c != 0 {
				cost += float64(c) * linkWeight(in.Topo, w, h)
			}
		}
	}
	return cost
}

// HomeMove is one proposed page-home reassignment with its predicted
// cost improvement under the joint model.
type HomeMove struct {
	Page int
	To   int
	Gain float64
}

// BestHomes proposes page-home moves under the joint cost model: for
// every page with priced traffic (a read bit or a recent write), the
// home minimizing the page's cost under assign, keeping only strict
// improvements over the current homes. Moves come back sorted by gain
// (largest first; page ascending breaks ties); budget >= 0 truncates to
// the top entries, budget < 0 keeps all.
func BestHomes(in CostInput, assign []int, homes []int, budget int) []HomeMove {
	if budget == 0 {
		return nil
	}
	var moves []HomeMove
	for p := range homes {
		cur := pageCost(in, assign, p, homes[p])
		if cur == 0 {
			continue
		}
		best, bestCost := homes[p], cur
		for h := 0; h < in.Nodes; h++ {
			if h == homes[p] {
				continue
			}
			if c := pageCost(in, assign, p, h); c < bestCost {
				best, bestCost = h, c
			}
		}
		if best != homes[p] {
			moves = append(moves, HomeMove{Page: p, To: best, Gain: cur - bestCost})
		}
	}
	sort.Slice(moves, func(i, j int) bool {
		if moves[i].Gain != moves[j].Gain {
			return moves[i].Gain > moves[j].Gain
		}
		return moves[i].Page < moves[j].Page
	})
	if budget > 0 && len(moves) > budget {
		moves = moves[:budget]
	}
	return moves
}
