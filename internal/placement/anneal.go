package placement

import (
	"math"

	"actdsm/internal/core"
	"actdsm/internal/sim"
)

// Anneal improves a balanced placement by simulated annealing over
// pairwise swaps — a heavier-weight member of the heuristic family the
// paper's §5.1 explores alongside cluster analysis. Unlike Refine's
// greedy descent it can escape local minima; with the temperature
// schedule below it typically matches Refine on block-structured
// matrices and occasionally beats it on irregular ones.
//
// steps bounds the number of proposed swaps; rng drives the proposal and
// acceptance randomness (deterministic for a fixed seed).
func Anneal(m *core.Matrix, assign []int, steps int, rng *sim.RNG) []int {
	n := m.N()
	if n < 2 || steps <= 0 {
		return append([]int(nil), assign...)
	}
	cur := append([]int(nil), assign...)
	curCost := m.CutCost(cur)
	best := append([]int(nil), cur...)
	bestCost := curCost

	// Geometric cooling from a temperature scaled to typical edge
	// weights.
	t0 := float64(m.Max()) * 2
	if t0 < 1 {
		t0 = 1
	}
	cool := math.Pow(1e-3, 1/float64(steps)) // t0 → t0/1000 over the run

	temp := t0
	for s := 0; s < steps; s++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if cur[i] == cur[j] {
			temp *= cool
			continue
		}
		delta := swapDelta(m, cur, i, j)
		if delta <= 0 || rng.Float64() < math.Exp(-float64(delta)/temp) {
			cur[i], cur[j] = cur[j], cur[i]
			curCost += delta
			if curCost < bestCost {
				bestCost = curCost
				copy(best, cur)
			}
		}
		temp *= cool
	}
	// Polish the annealed result with greedy descent.
	return Refine(m, best)
}

// swapDelta returns the cut-cost change of swapping threads i and j
// (which must be on different nodes).
func swapDelta(m *core.Matrix, assign []int, i, j int) int64 {
	ni, nj := assign[i], assign[j]
	var delta int64
	for k := 0; k < m.N(); k++ {
		if k == i || k == j {
			continue
		}
		switch assign[k] {
		case ni:
			// i leaves k's node (pairs ik become cut), j joins it.
			delta += m.At(i, k) - m.At(j, k)
		case nj:
			delta += m.At(j, k) - m.At(i, k)
		}
	}
	return delta
}

// OptimalCapacities is Optimal with explicit per-node capacities
// (exact branch-and-bound, practical to ~16 threads).
func OptimalCapacities(m *core.Matrix, caps []int) ([]int, error) {
	threads := m.N()
	if threads > 16 {
		return nil, ErrTooLarge
	}
	total := 0
	for _, c := range caps {
		total += c
	}
	if total != threads {
		return nil, ErrTooLarge
	}
	nodes := len(caps)
	best := minCostCaps(m, caps)
	bestCost := m.CutCost(best)

	assign := make([]int, threads)
	counts := make([]int, nodes)
	var dfs func(tid int, cost int64)
	dfs = func(tid int, cost int64) {
		if cost >= bestCost {
			return
		}
		if tid == threads {
			bestCost = cost
			copy(best, assign)
			return
		}
		for n := 0; n < nodes; n++ {
			if counts[n] >= caps[n] {
				continue
			}
			var added int64
			for i := 0; i < tid; i++ {
				if assign[i] != n {
					added += m.At(i, tid)
				}
			}
			assign[tid] = n
			counts[n]++
			dfs(tid+1, cost+added)
			counts[n]--
		}
	}
	dfs(0, 0)
	return best, nil
}
