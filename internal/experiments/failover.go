package experiments

// Crash-recovery comparison: the BENCH_failover.json generator and
// regression gate. Three legs of the same phased lane-write workload on
// a fault-tolerant 4-node cluster, all deterministic (serialized
// fan-outs, imperative kill/restart, no timing):
//
//   - clean: fault tolerance on, nobody dies (the replication-overhead
//     baseline);
//   - crash: the victim dies between the phases and stays dead — the
//     survivors must finish over its ring successor's replicated state;
//   - restart: the victim additionally rejoins mid-run and re-fetches
//     its wiped pages.
//
// The headline invariant is digest equality: all three legs must end
// with byte-identical shared memory. The call counts price the crash:
// failover re-routes, recovery fetches, and replication re-ships push
// the count up while the dead node's ceased participation pulls it
// down, so the net delta can be negative. The gate pins the counts
// exactly — the runs are deterministic, so a drift means the recovery
// protocol changed shape and the baseline must be regenerated
// deliberately.
//
// See DESIGN.md §12 and internal/dsm/failoverbench.go.

import (
	"encoding/json"
	"fmt"
	"strings"

	"actdsm/internal/dsm"
)

// FailoverReport is the BENCH_failover.json schema.
type FailoverReport struct {
	// Nodes, Pages, PreRounds, PostRounds, Victim describe the shared
	// workload shape.
	Nodes      int `json:"nodes"`
	Pages      int `json:"pages"`
	PreRounds  int `json:"pre_rounds"`
	PostRounds int `json:"post_rounds"`
	Victim     int `json:"victim"`
	// Clean, Crash, Restart are the three measured legs.
	Clean   dsm.FailoverBenchResult `json:"clean"`
	Crash   dsm.FailoverBenchResult `json:"crash"`
	Restart dsm.FailoverBenchResult `json:"restart"`
	// ExtraCallsCrash and ExtraCallsRestart are the legs' transport-
	// call excess over the clean leg — the protocol price of the
	// failure (and of the rejoin).
	ExtraCallsCrash   int64 `json:"extra_calls_crash"`
	ExtraCallsRestart int64 `json:"extra_calls_restart"`
}

// failoverOptions is the fixed workload shape all three legs share.
var failoverOptions = dsm.FailoverBenchOptions{
	Nodes:      4,
	Pages:      4,
	PreRounds:  2,
	PostRounds: 3,
	Victim:     2,
}

// FailoverComparison measures the three legs and assembles the report.
func FailoverComparison() (FailoverReport, error) {
	rep := FailoverReport{
		Nodes:      failoverOptions.Nodes,
		Pages:      failoverOptions.Pages,
		PreRounds:  failoverOptions.PreRounds,
		PostRounds: failoverOptions.PostRounds,
		Victim:     failoverOptions.Victim,
	}
	var err error
	o := failoverOptions
	if rep.Clean, err = dsm.FailoverBench(o); err != nil {
		return rep, fmt.Errorf("failover clean leg: %w", err)
	}
	o.Crash = true
	if rep.Crash, err = dsm.FailoverBench(o); err != nil {
		return rep, fmt.Errorf("failover crash leg: %w", err)
	}
	o.Restart = true
	if rep.Restart, err = dsm.FailoverBench(o); err != nil {
		return rep, fmt.Errorf("failover restart leg: %w", err)
	}
	rep.ExtraCallsCrash = rep.Crash.Calls - rep.Clean.Calls
	rep.ExtraCallsRestart = rep.Restart.Calls - rep.Clean.Calls
	return rep, nil
}

// FormatFailoverReport renders the comparison for the actbench section.
func FormatFailoverReport(r FailoverReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "crash recovery, %d nodes, victim %d (%d+%d rounds):\n",
		r.Nodes, r.Victim, r.PreRounds, r.PostRounds)
	fmt.Fprintf(&b, "%-9s %18s %8s %8s %8s %10s %9s %9s\n",
		"leg", "digest", "calls", "crashes", "rejoins", "failovers", "recfetch", "replicas")
	row := func(name string, l dsm.FailoverBenchResult) {
		fmt.Fprintf(&b, "%-9s %18s %8d %8d %8d %10d %9d %9d\n",
			name, l.Digest, l.Calls, l.Crashes, l.Rejoins, l.Failovers,
			l.RecoveryFetches, l.ReplicaDeltas)
	}
	row("clean", r.Clean)
	row("crash", r.Crash)
	row("restart", r.Restart)
	fmt.Fprintf(&b, "extra calls: crash %+d, restart %+d\n",
		r.ExtraCallsCrash, r.ExtraCallsRestart)
	if r.Clean.Digest == r.Crash.Digest && r.Clean.Digest == r.Restart.Digest {
		fmt.Fprintf(&b, "digests identical: the crash is invisible to the surviving computation\n")
	} else {
		fmt.Fprintf(&b, "DIGEST MISMATCH: crash-run memory diverged from the fault-free run\n")
	}
	return b.String()
}

// FailoverReportJSON marshals the report for BENCH_failover.json.
func FailoverReportJSON(r FailoverReport) ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// CompareFailoverReports validates a fresh report against the committed
// baseline. The legs are deterministic, so the gate is strict: the three
// fresh digests must agree with each other (the fault-tolerance claim
// itself), the crash legs must actually exercise the machinery (a crash
// detected, a rejoin completed, failovers and recovery fetches
// performed), and the digests and call counts must equal the committed
// ones — a silent protocol change must regenerate the baseline
// deliberately.
func CompareFailoverReports(baseline, current []byte) (string, error) {
	var base, cur FailoverReport
	if err := json.Unmarshal(baseline, &base); err != nil {
		return "", fmt.Errorf("baseline: %w", err)
	}
	if err := json.Unmarshal(current, &cur); err != nil {
		return "", fmt.Errorf("current: %w", err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digest: clean %s, crash %s, restart %s\n",
		cur.Clean.Digest, cur.Crash.Digest, cur.Restart.Digest)
	fmt.Fprintf(&b, "extra calls: crash %+d (baseline %+d), restart %+d (baseline %+d)\n",
		cur.ExtraCallsCrash, base.ExtraCallsCrash,
		cur.ExtraCallsRestart, base.ExtraCallsRestart)
	var failures []string
	if cur.Clean.Digest != cur.Crash.Digest || cur.Clean.Digest != cur.Restart.Digest {
		failures = append(failures,
			"leg digests diverge: a crashed run no longer reproduces the fault-free memory image")
	}
	if cur.Clean.Crashes != 0 || cur.Clean.Failovers != 0 {
		failures = append(failures, fmt.Sprintf(
			"clean leg reports %d crashes / %d failovers, want none (harness drift?)",
			cur.Clean.Crashes, cur.Clean.Failovers))
	}
	if cur.Crash.Crashes != 1 || cur.Crash.Failovers == 0 {
		failures = append(failures, fmt.Sprintf(
			"crash leg reports %d crashes / %d failovers, want exactly 1 crash and some failovers",
			cur.Crash.Crashes, cur.Crash.Failovers))
	}
	if cur.Restart.Rejoins != 1 || cur.Restart.RecoveryFetches == 0 {
		failures = append(failures, fmt.Sprintf(
			"restart leg reports %d rejoins / %d recovery fetches, want exactly 1 rejoin with re-fetches",
			cur.Restart.Rejoins, cur.Restart.RecoveryFetches))
	}
	if cur.Clean.ReplicaDeltas == 0 {
		failures = append(failures,
			"clean leg shipped no replica deltas: ring replication is not running")
	}
	if cur.Clean.Digest != base.Clean.Digest {
		failures = append(failures, fmt.Sprintf(
			"final digest %s differs from committed %s; regenerate BENCH_failover.json if intended",
			cur.Clean.Digest, base.Clean.Digest))
	}
	if cur.Clean.Calls != base.Clean.Calls ||
		cur.Crash.Calls != base.Crash.Calls ||
		cur.Restart.Calls != base.Restart.Calls {
		failures = append(failures, fmt.Sprintf(
			"call counts %d/%d/%d differ from committed %d/%d/%d; regenerate BENCH_failover.json if intended",
			cur.Clean.Calls, cur.Crash.Calls, cur.Restart.Calls,
			base.Clean.Calls, base.Crash.Calls, base.Restart.Calls))
	}
	if len(failures) > 0 {
		return b.String(), fmt.Errorf("failover benchmark regression:\n  %s",
			strings.Join(failures, "\n  "))
	}
	return b.String(), nil
}
