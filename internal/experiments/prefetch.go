package experiments

import (
	"encoding/json"
	"fmt"
	"strings"

	"actdsm/internal/apps"
	"actdsm/internal/dsm"
	"actdsm/internal/sim"
)

// PrefetchRow is one application's demand-vs-prefetch comparison: the
// same verified run twice, once demand-only and once with the
// correlation-driven prefetch + batched diff layer (DESIGN.md §7), both
// with tracking armed on iteration 1 so the protocol work is identical.
type PrefetchRow struct {
	App   string `json:"app"`
	Nodes int    `json:"nodes"`

	// DemandCalls counts remote data-movement round trips (PageRequest +
	// DiffRequest + DiffBatchRequest) in each configuration; Reduction is
	// the fractional drop.
	DemandCalls   int64   `json:"demand_calls"`
	PrefetchCalls int64   `json:"prefetch_calls"`
	Reduction     float64 `json:"reduction"`

	// Prefetch-run accounting.
	PrefetchedPages  int64 `json:"prefetched_pages"`
	PrefetchHits     int64 `json:"prefetch_hits"`
	PrefetchWasted   int64 `json:"prefetch_wasted"`
	PrefetchLate     int64 `json:"prefetch_late"`
	DiffBatchFetches int64 `json:"diff_batch_fetches"`
	BatchedDiffs     int64 `json:"batched_diffs"`

	// Elapsed virtual time of each configuration.
	DemandElapsed   sim.Time `json:"demand_elapsed"`
	PrefetchElapsed sim.Time `json:"prefetch_elapsed"`

	// PrefetchSnap is the prefetch run's full snapshot, for
	// FormatPrefetch rendering.
	PrefetchSnap dsm.Snapshot `json:"-"`
}

// PrefetchReport is the BENCH_prefetch.json schema.
type PrefetchReport struct {
	Scale   string        `json:"scale"`
	Threads int           `json:"threads"`
	Nodes   int           `json:"nodes"`
	Rows    []PrefetchRow `json:"rows"`
}

// prefetchApps is the workload pair the acceptance criterion names: a
// nearest-neighbor halo exchange (SOR) and an irregular multi-grid
// (Ocean).
var prefetchApps = []string{"SOR", "Ocean"}

// PrefetchComparison runs each application twice — demand-only and with
// prefetch + batching — under Verify, and returns the comparison rows. A
// Verify failure in either configuration surfaces as an error, and
// diverging barrier or lock counters (which would mean the layer changed
// synchronization behavior, not just data movement) do too.
func PrefetchComparison(o Options) ([]PrefetchRow, error) {
	names := o.Apps // before Defaults, which fills nil with the full paper set
	o = o.Defaults()
	if len(names) == 0 {
		names = prefetchApps
	}
	rows := make([]PrefetchRow, 0, len(names))
	for _, name := range names {
		runOne := func(prefetch bool) (*RunResult, error) {
			cfg := RunConfig{
				App:       name,
				Threads:   o.Threads,
				Nodes:     o.Nodes,
				Scale:     o.Scale,
				TrackIter: 1,
				Verify:    true,
			}
			if prefetch {
				cfg.PrefetchBudget = -1
				cfg.BatchDiffs = true
			}
			return Run(cfg)
		}
		demand, err := runOne(false)
		if err != nil {
			return nil, fmt.Errorf("%s demand: %w", name, err)
		}
		pref, err := runOne(true)
		if err != nil {
			return nil, fmt.Errorf("%s prefetch: %w", name, err)
		}
		if demand.Stats.Barriers != pref.Stats.Barriers ||
			demand.Stats.LockAcquires != pref.Stats.LockAcquires {
			return nil, fmt.Errorf(
				"%s: synchronization diverged: barriers %d vs %d, locks %d vs %d",
				name, demand.Stats.Barriers, pref.Stats.Barriers,
				demand.Stats.LockAcquires, pref.Stats.LockAcquires)
		}
		before, after := demand.Stats.DemandCalls(), pref.Stats.DemandCalls()
		row := PrefetchRow{
			App:              name,
			Nodes:            o.Nodes,
			DemandCalls:      before,
			PrefetchCalls:    after,
			PrefetchedPages:  pref.Stats.PrefetchedPages,
			PrefetchHits:     pref.Stats.PrefetchHits,
			PrefetchWasted:   pref.Stats.PrefetchWasted,
			PrefetchLate:     pref.Stats.PrefetchLate,
			DiffBatchFetches: pref.Stats.DiffBatchFetches,
			BatchedDiffs:     pref.Stats.BatchedDiffs,
			DemandElapsed:    demand.Elapsed,
			PrefetchElapsed:  pref.Elapsed,
			PrefetchSnap:     pref.Stats,
		}
		if before > 0 {
			row.Reduction = 1 - float64(after)/float64(before)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatPrefetchComparison renders the comparison table plus each
// prefetch run's accounting block.
func FormatPrefetchComparison(rows []PrefetchRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %6s  %13s %13s %10s  %12s %12s\n",
		"app", "nodes", "demand calls", "w/ prefetch", "reduction", "elapsed", "w/ prefetch")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %6d  %13d %13d %9.1f%%  %12d %12d\n",
			r.App, r.Nodes, r.DemandCalls, r.PrefetchCalls, 100*r.Reduction,
			int64(r.DemandElapsed), int64(r.PrefetchElapsed))
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "\n-- %s prefetch accounting --\n%s", r.App, r.PrefetchSnap.FormatPrefetch())
	}
	return b.String()
}

// PrefetchReportJSON marshals the report for BENCH_prefetch.json.
func PrefetchReportJSON(o Options, rows []PrefetchRow) ([]byte, error) {
	o = o.Defaults()
	scale := "test"
	if o.Scale == apps.ScalePaper {
		scale = "paper"
	}
	rep := PrefetchReport{Scale: scale, Threads: o.Threads, Nodes: o.Nodes, Rows: rows}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// ComparePrefetchReports checks a fresh report against a committed
// baseline: every baseline app must still be present, and its
// prefetch-run demand-call count must not regress by more than tolerance
// (fractional, e.g. 0.05). Returns a human-readable comparison and an
// error when the tolerance is exceeded.
func ComparePrefetchReports(baseline, current []byte, tolerance float64) (string, error) {
	var base, cur PrefetchReport
	if err := json.Unmarshal(baseline, &base); err != nil {
		return "", fmt.Errorf("baseline: %w", err)
	}
	if err := json.Unmarshal(current, &cur); err != nil {
		return "", fmt.Errorf("current: %w", err)
	}
	curByApp := make(map[string]PrefetchRow, len(cur.Rows))
	for _, r := range cur.Rows {
		curByApp[r.App] = r
	}
	var b strings.Builder
	var failures []string
	for _, br := range base.Rows {
		cr, ok := curByApp[br.App]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from current report", br.App))
			continue
		}
		delta := 0.0
		if br.PrefetchCalls > 0 {
			delta = float64(cr.PrefetchCalls-br.PrefetchCalls) / float64(br.PrefetchCalls)
		}
		status := "ok"
		if delta > tolerance {
			status = "REGRESSION"
			failures = append(failures, fmt.Sprintf(
				"%s: prefetch-run demand calls %d -> %d (+%.1f%% > %.0f%% tolerance)",
				br.App, br.PrefetchCalls, cr.PrefetchCalls, 100*delta, 100*tolerance))
		}
		fmt.Fprintf(&b, "%-8s baseline %6d  current %6d  delta %+6.1f%%  %s\n",
			br.App, br.PrefetchCalls, cr.PrefetchCalls, 100*delta, status)
	}
	if len(failures) > 0 {
		return b.String(), fmt.Errorf("prefetch benchmark regression:\n  %s",
			strings.Join(failures, "\n  "))
	}
	return b.String(), nil
}
