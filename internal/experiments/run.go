// Package experiments regenerates every table and figure of the paper's
// evaluation: cut-cost/remote-miss regression (Table 2, Figure 1),
// correlation maps (Tables 3 and 4), tracking overhead (Table 5), passive
// information gathering (Figure 2), free-zone analysis (Figure 3), and
// heuristic placement performance (Table 6), plus ablations for the
// claims of §5.1 (min-cost vs optimal vs stretch) and §4.2 (tracking cost
// scaling).
package experiments

import (
	"fmt"

	"actdsm/internal/apps"
	"actdsm/internal/core"
	"actdsm/internal/dsm"
	"actdsm/internal/memlayout"
	"actdsm/internal/sim"
	"actdsm/internal/threads"
	"actdsm/internal/vm"
)

// RunConfig describes one application run on a simulated cluster.
type RunConfig struct {
	App        string
	Threads    int
	Nodes      int
	Scale      apps.Scale
	Iterations int // overrides the app default when positive
	Placement  []int
	// TrackIter selects the iteration for active correlation tracking;
	// negative disables tracking.
	TrackIter int
	// TrackDensity additionally captures per-access densities over the
	// same iteration (the §1 oracle; see core.DensityTracker).
	TrackDensity bool
	// Passive attaches a passive tracker to the run.
	Passive bool
	// ShuffleSeed randomizes per-node thread execution order.
	ShuffleSeed uint64
	Verify      bool
	// GCThresholdBytes forwards to dsm.Config (0 = default).
	GCThresholdBytes int
	// Protocol selects the coherence protocol (0 = multi-writer).
	Protocol dsm.Protocol
	// PrefetchBudget forwards to dsm.Config: pages prefetched per node
	// per barrier episode (-1 = unbounded, 0 = off). When tracking is
	// also enabled, the tracker's bitmaps drive the prediction once the
	// tracked iteration completes.
	PrefetchBudget int
	// BatchDiffs forwards to dsm.Config: coalesce demand diff fetches
	// into one DiffBatchRequest per writer.
	BatchDiffs bool
	// Topology forwards to dsm.Config: heterogeneous per-link network
	// costs and per-node compute scaling (nil = uniform).
	Topology *sim.Topology
}

// RunResult captures everything the experiment tables need from one run.
type RunResult struct {
	Elapsed sim.Time
	// IterTime[i] is the elapsed virtual time of iteration i.
	IterTime []sim.Time
	// IterStats[i] is the protocol counter delta over iteration i.
	IterStats []dsm.Snapshot
	// Stats is the whole-run counter snapshot.
	Stats dsm.Snapshot
	// Tracker is non-nil when tracking was enabled.
	Tracker *core.ActiveTracker
	// Density is non-nil when TrackDensity was set.
	Density *core.DensityTracker
	// PassiveTracker is non-nil when Passive was set.
	PassiveTracker *core.PassiveTracker
	// Placement is the final thread → node assignment.
	Placement []int
	// SharedPages is the application's shared segment size.
	SharedPages int
}

// Run executes one configured application run and returns its measurements.
func Run(cfg RunConfig) (*RunResult, error) {
	app, err := apps.New(cfg.App, apps.Config{
		Threads:    cfg.Threads,
		Iterations: cfg.Iterations,
		Verify:     cfg.Verify,
		Scale:      cfg.Scale,
	})
	if err != nil {
		return nil, err
	}
	layout := memlayout.NewLayout()
	if err := app.Setup(layout); err != nil {
		return nil, err
	}
	cl, err := dsm.New(dsm.Config{
		Nodes:            cfg.Nodes,
		Pages:            layout.TotalPages(),
		GCThresholdBytes: cfg.GCThresholdBytes,
		Protocol:         cfg.Protocol,
		PrefetchBudget:   cfg.PrefetchBudget,
		BatchDiffs:       cfg.BatchDiffs,
		Topology:         cfg.Topology,
	})
	if err != nil {
		return nil, err
	}
	defer func() { _ = cl.Close() }()

	eng, err := threads.NewEngine(cl, threads.Config{
		Threads:          cfg.Threads,
		Placement:        cfg.Placement,
		SchedulerEnabled: true,
		ShuffleSeed:      cfg.ShuffleSeed,
	})
	if err != nil {
		return nil, err
	}

	res := &RunResult{SharedPages: layout.TotalPages()}
	if cfg.Passive {
		res.PassiveTracker = core.NewPassiveTracker(eng)
	}

	lastTime := sim.Time(0)
	lastStats := cl.Stats().Snapshot()
	inner := threads.Hooks{
		OnIteration: func(iter int) {
			now := eng.Elapsed()
			cur := cl.Stats().Snapshot()
			res.IterTime = append(res.IterTime, now-lastTime)
			res.IterStats = append(res.IterStats, cur.Sub(lastStats))
			lastTime, lastStats = now, cur
		},
	}
	hooks := inner
	if cfg.TrackDensity && cfg.TrackIter >= 0 {
		res.Density = core.NewDensityTracker(eng, cfg.TrackIter)
		hooks = res.Density.Hooks(hooks)
		res.Density.Start()
	}
	if cfg.TrackIter >= 0 {
		res.Tracker = core.NewActiveTracker(eng, cfg.TrackIter)
		hooks = res.Tracker.Hooks(hooks)
		res.Tracker.Start()
	}
	eng.SetHooks(hooks)

	if cfg.PrefetchBudget != 0 {
		// Same wiring as the facade: once the tracker has a complete
		// iteration's bitmaps, a node's prediction is the union of its
		// resident threads' access bitmaps; before that (or with
		// tracking off) the nil return falls back to the fault window.
		tracker, npages := res.Tracker, layout.TotalPages()
		cl.SetPrefetchPredictor(func(node int) *vm.Bitmap {
			if tracker == nil || !tracker.Done() {
				return nil
			}
			return core.PredictNodePages(tracker.Bitmaps(), eng.Placement(), node, npages)
		})
	}

	if err := eng.Run(app.Body); err != nil {
		return nil, fmt.Errorf("experiments: run %s: %w", cfg.App, err)
	}
	res.Elapsed = eng.Elapsed()
	res.Stats = cl.Stats().Snapshot()
	res.Placement = eng.Placement()
	return res, nil
}

// TrackMatrix runs the application with active tracking on a steady-state
// iteration and returns the thread-correlation matrix.
func TrackMatrix(name string, nthreads, nodes int, scale apps.Scale) (*core.Matrix, error) {
	iters := 3
	res, err := Run(RunConfig{
		App:        name,
		Threads:    nthreads,
		Nodes:      nodes,
		Scale:      scale,
		Iterations: iters,
		TrackIter:  1,
	})
	if err != nil {
		return nil, err
	}
	return res.Tracker.Matrix(), nil
}

// steadyIterStats averages the per-iteration deltas over iterations
// [from, len): remote misses and elapsed time.
func steadyIterStats(res *RunResult, from int) (misses float64, t sim.Time) {
	n := 0
	var sumM int64
	var sumT sim.Time
	for i := from; i < len(res.IterStats); i++ {
		sumM += res.IterStats[i].RemoteMisses
		sumT += res.IterTime[i]
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return float64(sumM) / float64(n), sumT / sim.Time(n)
}
