package experiments

import (
	"strings"
	"testing"
)

// TestFailoverComparisonGate runs the real BENCH_failover.json
// measurement and pushes it through its own gate: the report must pass
// against itself, and the invariants the gate encodes must hold on the
// fresh numbers.
func TestFailoverComparisonGate(t *testing.T) {
	rep, err := FailoverComparison()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean.Digest != rep.Crash.Digest || rep.Clean.Digest != rep.Restart.Digest {
		t.Errorf("leg digests diverge: clean %s, crash %s, restart %s",
			rep.Clean.Digest, rep.Crash.Digest, rep.Restart.Digest)
	}
	if rep.Clean.Crashes != 0 || rep.Clean.Rejoins != 0 {
		t.Errorf("clean leg saw %d crashes / %d rejoins, want none",
			rep.Clean.Crashes, rep.Clean.Rejoins)
	}
	if rep.Crash.Crashes != 1 || rep.Crash.Failovers == 0 {
		t.Errorf("crash leg: crashes=%d failovers=%d, want 1 crash with failovers",
			rep.Crash.Crashes, rep.Crash.Failovers)
	}
	if rep.Restart.Rejoins != 1 || rep.Restart.RecoveryFetches == 0 {
		t.Errorf("restart leg: rejoins=%d recovery fetches=%d, want 1 rejoin with re-fetches",
			rep.Restart.Rejoins, rep.Restart.RecoveryFetches)
	}
	if rep.Clean.ReplicaDeltas == 0 {
		t.Error("clean leg shipped no replica deltas")
	}

	js, err := FailoverReportJSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompareFailoverReports(js, js); err != nil {
		t.Errorf("report fails its own gate: %v", err)
	}
	if out := FormatFailoverReport(rep); !strings.Contains(out, "digests identical") {
		t.Errorf("format output missing the digest verdict:\n%s", out)
	}
}

// TestFailoverComparisonDeterministic re-measures and requires the
// reports to be byte-identical — the property the exact-equality gate
// rests on.
func TestFailoverComparisonDeterministic(t *testing.T) {
	a, err := FailoverComparison()
	if err != nil {
		t.Fatal(err)
	}
	b, err := FailoverComparison()
	if err != nil {
		t.Fatal(err)
	}
	ja, err := FailoverReportJSON(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := FailoverReportJSON(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Errorf("two measurements differ:\n%s\nvs\n%s", ja, jb)
	}
}

// TestCompareFailoverReportsRejects checks the gate trips on each
// regression class it claims to catch.
func TestCompareFailoverReportsRejects(t *testing.T) {
	rep, err := FailoverComparison()
	if err != nil {
		t.Fatal(err)
	}
	base, err := FailoverReportJSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*FailoverReport){
		"digest divergence": func(r *FailoverReport) { r.Crash.Digest = "deadbeefdeadbeef" },
		"clean leg crashed": func(r *FailoverReport) { r.Clean.Crashes = 1 },
		"missed crash":      func(r *FailoverReport) { r.Crash.Crashes = 0 },
		"no failovers":      func(r *FailoverReport) { r.Crash.Failovers = 0 },
		"missed rejoin":     func(r *FailoverReport) { r.Restart.Rejoins = 0 },
		"no recovery fetch": func(r *FailoverReport) { r.Restart.RecoveryFetches = 0 },
		"replication off":   func(r *FailoverReport) { r.Clean.ReplicaDeltas = 0 },
		"call-count drift":  func(r *FailoverReport) { r.Crash.Calls += 7 },
		"baseline digest": func(r *FailoverReport) {
			r.Clean.Digest = "feedfacefeedface"
			r.Crash.Digest = "feedfacefeedface"
			r.Restart.Digest = "feedfacefeedface"
		},
	} {
		bad := rep
		mutate(&bad)
		js, err := FailoverReportJSON(bad)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := CompareFailoverReports(base, js); err == nil {
			t.Errorf("%s: gate passed a regressed report", name)
		}
	}
}
