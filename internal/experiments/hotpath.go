package experiments

// Hot-path throughput comparison: the BENCH_hotpath.json generator and
// regression gate. It drives the dsm hot-path harness (one node hammered
// by concurrent peers with a 3:1 mix of diff serves and full-page
// serves) twice — ServiceShards: 1, the pre-sharding one-big-mutex
// baseline, and the sharded default — and reports the throughput ratio.
//
// Each serve holds its page's shard lock for a small injected service
// time (HotpathOptions.ServiceHoldUS) modeling the per-request protocol
// work a real node performs under the lock; the ratio therefore measures
// how much of the service schedule the locking scheme lets overlap,
// which is stable across CI runners regardless of core count. The
// zero-allocation claim for the message hot path is measured directly:
// steady-state EncodeTo allocations per message must be ~0.

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"actdsm/internal/dsm"
	"actdsm/internal/msg"
)

// HotpathReport is the BENCH_hotpath.json schema. ElapsedMS and
// OpsPerSec are wall-clock measurements and vary between machines; the
// regression gate checks the ratio and the allocation count, not the
// absolute numbers.
type HotpathReport struct {
	Nodes int `json:"nodes"`
	Pages int `json:"pages"`
	Peers int `json:"peers"`
	Ops   int `json:"ops"`
	// ServiceHoldUS is the injected per-serve lock hold (see package
	// comment).
	ServiceHoldUS int `json:"service_hold_us"`
	// Baseline is the ServiceShards: 1 (single exclusive mutex) run;
	// Sharded is the default-shard-count run. Best of Runs attempts
	// each.
	Baseline dsm.HotpathResult `json:"baseline"`
	Sharded  dsm.HotpathResult `json:"sharded"`
	// Speedup is Sharded.OpsPerSec / Baseline.OpsPerSec — the number
	// the acceptance criterion and the CI gate check (>= 1.5 at
	// generation time, >= MinHotpathSpeedup in CI).
	Speedup float64 `json:"speedup"`
	// EncodeAllocsPerOp is the steady-state allocation count of one
	// pooled-buffer message encode (msg.EncodeTo); ~0 on the hot path.
	EncodeAllocsPerOp float64 `json:"encode_allocs_per_op"`
	// EncodeNSPerOp is the matching wall-clock cost per encode.
	EncodeNSPerOp float64 `json:"encode_ns_per_op"`
}

// MinHotpathSpeedup is the CI gate's floor for the sharded-vs-baseline
// throughput ratio. Generation targets >= 1.5; the gate tolerates noisy
// shared runners down to this floor.
const MinHotpathSpeedup = 1.3

// hotpathRuns is the attempts per configuration; the best throughput of
// each wins, shedding scheduler noise.
const hotpathRuns = 2

// HotpathComparison runs the hot-path workload under both locking
// schemes and measures the message-encode hot path.
func HotpathComparison() (HotpathReport, error) {
	o := dsm.HotpathOptions{Ops: 1500, ServiceHoldUS: 10}
	rep := HotpathReport{}

	runBest := func(shards int) (dsm.HotpathResult, error) {
		oo := o
		oo.ServiceShards = shards
		var best dsm.HotpathResult
		for r := 0; r < hotpathRuns; r++ {
			res, err := dsm.HotpathBench(oo)
			if err != nil {
				return dsm.HotpathResult{}, err
			}
			if res.OpsPerSec > best.OpsPerSec {
				best = res
			}
		}
		return best, nil
	}
	var err error
	if rep.Baseline, err = runBest(1); err != nil {
		return rep, fmt.Errorf("hotpath baseline: %w", err)
	}
	if rep.Sharded, err = runBest(0); err != nil {
		return rep, fmt.Errorf("hotpath sharded: %w", err)
	}
	rep.Nodes, rep.Peers, rep.Ops = 4, rep.Sharded.Peers, rep.Sharded.Ops
	rep.Pages = 256
	rep.ServiceHoldUS = o.ServiceHoldUS
	if rep.Baseline.OpsPerSec > 0 {
		rep.Speedup = rep.Sharded.OpsPerSec / rep.Baseline.OpsPerSec
	}
	rep.EncodeAllocsPerOp, rep.EncodeNSPerOp = measureEncode()
	return rep, nil
}

// measureEncode times the steady-state pooled message encode: a
// representative hot-path message appended into a buffer that has
// reached its steady-state capacity. Mallocs are read from runtime
// memstats around the loop.
func measureEncode() (allocsPerOp, nsPerOp float64) {
	m := &msg.DiffRequest{From: 1, Page: 2, Intervals: []int32{4, 5, 6, 7}}
	buf := make([]byte, 0, 256)
	buf = msg.EncodeTo(buf[:0], m) // warm
	const runs = 100000
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < runs; i++ {
		buf = msg.EncodeTo(buf[:0], m)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	_ = buf
	return float64(after.Mallocs-before.Mallocs) / runs,
		float64(elapsed.Nanoseconds()) / runs
}

// FormatHotpathReport renders the comparison for the actbench section.
func FormatHotpathReport(r HotpathReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %8s %12s %12s %10s %10s\n",
		"config", "shards", "ops/sec", "elapsed", "shard-cont", "sync-cont")
	row := func(name string, res dsm.HotpathResult) {
		fmt.Fprintf(&b, "%-22s %8d %12.0f %10.1fms %10d %10d\n",
			name, res.Shards, res.OpsPerSec, res.ElapsedMS,
			res.ShardContention, res.SyncContention)
	}
	row("single-mutex baseline", r.Baseline)
	row("sharded", r.Sharded)
	fmt.Fprintf(&b, "speedup: %.2fx  (gate: >= %.1fx)\n", r.Speedup, MinHotpathSpeedup)
	fmt.Fprintf(&b, "msg encode: %.2f allocs/op, %.1f ns/op (pooled buffer, steady state)\n",
		r.EncodeAllocsPerOp, r.EncodeNSPerOp)
	return b.String()
}

// HotpathReportJSON marshals the report for BENCH_hotpath.json.
func HotpathReportJSON(r HotpathReport) ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// CompareHotpathReports validates a fresh report against the committed
// baseline. Unlike the prefetch gate (deterministic call counts compared
// byte-for-byte), the hotpath numbers are wall-clock timings that differ
// between machines, so the gate checks properties rather than values:
// the fresh speedup must not fall below MinHotpathSpeedup, and the
// steady-state encode must stay allocation-free (< 0.5 allocs/op). The
// baseline is reported for context.
func CompareHotpathReports(baseline, current []byte) (string, error) {
	var base, cur HotpathReport
	if err := json.Unmarshal(baseline, &base); err != nil {
		return "", fmt.Errorf("baseline: %w", err)
	}
	if err := json.Unmarshal(current, &cur); err != nil {
		return "", fmt.Errorf("current: %w", err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "speedup: baseline %.2fx, current %.2fx (floor %.1fx)\n",
		base.Speedup, cur.Speedup, MinHotpathSpeedup)
	fmt.Fprintf(&b, "encode allocs/op: baseline %.2f, current %.2f (floor 0.5)\n",
		base.EncodeAllocsPerOp, cur.EncodeAllocsPerOp)
	var failures []string
	if cur.Speedup < MinHotpathSpeedup {
		failures = append(failures, fmt.Sprintf(
			"sharded speedup %.2fx below %.1fx floor", cur.Speedup, MinHotpathSpeedup))
	}
	if cur.EncodeAllocsPerOp >= 0.5 {
		failures = append(failures, fmt.Sprintf(
			"encode allocates %.2f/op on the steady-state path, want ~0", cur.EncodeAllocsPerOp))
	}
	if len(failures) > 0 {
		return b.String(), fmt.Errorf("hotpath benchmark regression:\n  %s",
			strings.Join(failures, "\n  "))
	}
	return b.String(), nil
}
