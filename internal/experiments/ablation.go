package experiments

import (
	"actdsm/internal/dsm"
	"fmt"
	"strings"

	"actdsm/internal/core"
	"actdsm/internal/placement"
	"actdsm/internal/sim"
)

// newRNG is a tiny indirection so figure/ablation code shares seeding.
func newRNG(seed uint64) *sim.RNG { return sim.NewRNG(seed) }

// ---------------------------------------------------------------------------
// Ablation E9: heuristic quality (paper §5.1 claims).

// AblationHeuristicsRow compares placement heuristics on one application.
type AblationHeuristicsRow struct {
	App        string
	CutStretch int64
	CutMinCost int64
	CutAnneal  int64
	CutRandom  int64
	// CutOptimal is -1 when the instance exceeds the exact solver.
	CutOptimal int64
}

// AblationHeuristics evaluates stretch, min-cost, and random cut costs on
// every application's tracked correlation matrix, plus the exact optimum
// on a reduced instance (16 threads) to check the paper's within-1%
// claim.
func AblationHeuristics(o Options) ([]AblationHeuristicsRow, error) {
	o = o.Defaults()
	rng := newRNG(o.Seed + 9)
	rows := make([]AblationHeuristicsRow, 0, len(o.Apps))
	for _, name := range o.Apps {
		m, err := TrackMatrix(name, o.Threads, o.Nodes, o.Scale)
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", name, err)
		}
		start := placement.RandomBalanced(o.Threads, o.Nodes, rng)
		row := AblationHeuristicsRow{
			App:        name,
			CutStretch: m.CutCost(placement.Stretch(o.Threads, o.Nodes)),
			CutMinCost: m.CutCost(placement.MinCost(m, o.Nodes)),
			CutAnneal:  m.CutCost(placement.Anneal(m, start, 6000, rng)),
			CutRandom:  m.CutCost(start),
			CutOptimal: -1,
		}
		// Exact comparison on a 16-thread instance of the same app.
		if sm, err := TrackMatrix(name, 16, 4, o.Scale); err == nil {
			if opt, err := placement.Optimal(sm, 4); err == nil {
				row.CutOptimal = sm.CutCost(opt)
				mc := sm.CutCost(placement.MinCost(sm, 4))
				// Record the small-instance min-cost in place of
				// nothing: expose both via the ratio check below.
				if row.CutOptimal > 0 && float64(mc) > 1.25*float64(row.CutOptimal) {
					// Leave a trace in the row by negating: the
					// formatter reports the miss.
					row.CutOptimal = -int64(mc)
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatAblationHeuristics renders the heuristic comparison.
func FormatAblationHeuristics(rows []AblationHeuristicsRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s  %10s  %10s  %10s  %10s  %s\n", "App", "Stretch", "MinCost", "Anneal", "Random", "Optimal(16t/4n)")
	for _, r := range rows {
		opt := "n/a"
		if r.CutOptimal >= 0 {
			opt = fmt.Sprintf("%d", r.CutOptimal)
		} else if r.CutOptimal < -1 {
			opt = fmt.Sprintf("MISSED (min-cost %d)", -r.CutOptimal)
		}
		fmt.Fprintf(&b, "%-8s  %10d  %10d  %10d  %10d  %s\n",
			r.App, r.CutStretch, r.CutMinCost, r.CutAnneal, r.CutRandom, opt)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Ablation E10: tracking-cost scaling (paper §4.2 claims).

// AblationScalingRow records one (app, nodes) tracking overhead sample.
type AblationScalingRow struct {
	App            string
	Nodes          int
	SlowdownPct    float64
	TrackingFaults int64
	SharingDegree  float64
}

// AblationScaling measures tracked-iteration overhead for a low-sharing
// application (SOR) and a high-sharing one (Water) across cluster sizes:
// the paper argues absolute tracking cost should not grow with node count
// but is sensitive to the amount of local sharing.
func AblationScaling(o Options) ([]AblationScalingRow, error) {
	o = o.Defaults()
	var rows []AblationScalingRow
	for _, name := range []string{"SOR", "Water"} {
		for _, nodes := range []int{2, 4, 8} {
			base, err := Run(RunConfig{
				App: name, Threads: o.Threads, Nodes: nodes,
				Scale: o.Scale, Iterations: 4, TrackIter: -1,
				GCThresholdBytes: -1,
			})
			if err != nil {
				return nil, fmt.Errorf("scaling %s/%d baseline: %w", name, nodes, err)
			}
			res, err := Run(RunConfig{
				App: name, Threads: o.Threads, Nodes: nodes,
				Scale: o.Scale, Iterations: 4, TrackIter: 2,
				GCThresholdBytes: -1,
			})
			if err != nil {
				return nil, fmt.Errorf("scaling %s/%d: %w", name, nodes, err)
			}
			off, on := base.IterTime[2], res.IterTime[2]
			slow := 0.0
			if off > 0 {
				slow = 100 * (float64(on)/float64(off) - 1)
			}
			rows = append(rows, AblationScalingRow{
				App:            name,
				Nodes:          nodes,
				SlowdownPct:    slow,
				TrackingFaults: res.IterStats[2].TrackingFaults,
				SharingDegree:  res.Tracker.SharingDegree(),
			})
		}
	}
	return rows, nil
}

// FormatAblationScaling renders the scaling ablation.
func FormatAblationScaling(rows []AblationScalingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s  %5s  %9s  %9s  %7s\n", "App", "Nodes", "Slowdown", "TrkFault", "Degree")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s  %5d  %8.2f%%  %9d  %7.3f\n",
			r.App, r.Nodes, r.SlowdownPct, r.TrackingFaults, r.SharingDegree)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Ablation E12: multi-writer vs single-writer coherence protocol.

// AblationProtocolRow compares the two coherence protocols on one
// application.
type AblationProtocolRow struct {
	App string
	// Per-protocol steady-state remote misses per iteration, total run
	// bytes, and elapsed virtual time.
	MWMisses, SWMisses float64
	MWBytes, SWBytes   int64
	MWTime, SWTime     sim.Time
}

// AblationProtocol runs each application under the default multi-writer
// LRC protocol and under the single-writer ownership protocol. The
// paper's §6 argues that single-writer/sequentially-consistent systems
// suffer false sharing that relaxed multi-writer consistency hides —
// which is why thread scheduling on modern systems only needs to address
// true sharing. Concurrent-writer applications should show dramatically
// more misses and traffic under single-writer.
func AblationProtocol(o Options) ([]AblationProtocolRow, error) {
	o = o.Defaults()
	rows := make([]AblationProtocolRow, 0, len(o.Apps))
	for _, name := range o.Apps {
		row := AblationProtocolRow{App: name}
		for _, variant := range []struct {
			proto  dsm.Protocol
			misses *float64
			bytes  *int64
			t      *sim.Time
		}{
			{dsm.MultiWriter, &row.MWMisses, &row.MWBytes, &row.MWTime},
			{dsm.SingleWriter, &row.SWMisses, &row.SWBytes, &row.SWTime},
		} {
			res, err := Run(RunConfig{
				App: name, Threads: o.Threads, Nodes: o.Nodes,
				Scale: o.Scale, Iterations: 3, TrackIter: -1,
				Protocol: variant.proto,
			})
			if err != nil {
				return nil, fmt.Errorf("protocol %s: %w", name, err)
			}
			m, _ := steadyIterStats(res, 1)
			*variant.misses = m
			*variant.bytes = res.Stats.BytesTotal
			*variant.t = res.Elapsed
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatAblationProtocol renders the protocol comparison.
func FormatAblationProtocol(rows []AblationProtocolRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s  %22s  %22s  %18s\n", "App", "Misses/iter (MW|SW)", "Total MB (MW|SW)", "Time s (MW|SW)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s  %10.0f | %9.0f  %10.2f | %9.2f  %7.3f | %8.3f\n",
			r.App, r.MWMisses, r.SWMisses,
			float64(r.MWBytes)/1e6, float64(r.SWBytes)/1e6,
			r.MWTime.Seconds(), r.SWTime.Seconds())
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Ablation E11: page-count correlation vs access-density correlation.

// AblationDensityRow compares placements derived from the practical
// binary page-count correlation against the §1 "ideal" density
// correlation for one application.
type AblationDensityRow struct {
	App string
	// MissesBinary/MissesDensity are steady-state remote misses per
	// iteration under the min-cost placement computed from each matrix.
	MissesBinary  float64
	MissesDensity float64
}

// AblationDensity quantifies the paper's §1 discussion: how much placement
// quality is lost by tracking page *sets* instead of access *densities*?
// Both matrices come from the same tracked run; min-cost placements from
// each are then executed and their steady-state remote misses compared.
func AblationDensity(o Options) ([]AblationDensityRow, error) {
	o = o.Defaults()
	rows := make([]AblationDensityRow, 0, len(o.Apps))
	for _, name := range o.Apps {
		res, err := Run(RunConfig{
			App: name, Threads: o.Threads, Nodes: o.Nodes,
			Scale: o.Scale, Iterations: 3, TrackIter: 1, TrackDensity: true,
		})
		if err != nil {
			return nil, fmt.Errorf("density %s: %w", name, err)
		}
		row := AblationDensityRow{App: name}
		for _, variant := range []struct {
			m    *core.Matrix
			dest *float64
		}{
			{res.Tracker.Matrix(), &row.MissesBinary},
			{res.Density.Matrix(), &row.MissesDensity},
		} {
			assign := placement.MinCost(variant.m, o.Nodes)
			r2, err := Run(RunConfig{
				App: name, Threads: o.Threads, Nodes: o.Nodes,
				Scale: o.Scale, Iterations: 3, TrackIter: -1,
				Placement: assign,
			})
			if err != nil {
				return nil, fmt.Errorf("density %s run: %w", name, err)
			}
			misses, _ := steadyIterStats(r2, 1)
			*variant.dest = misses
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatAblationDensity renders the density ablation.
func FormatAblationDensity(rows []AblationDensityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s  %14s  %14s  %s\n", "App", "Binary misses", "Density misses", "Density/Binary")
	for _, r := range rows {
		ratio := 1.0
		if r.MissesBinary > 0 {
			ratio = r.MissesDensity / r.MissesBinary
		}
		fmt.Fprintf(&b, "%-8s  %14.0f  %14.0f  %.3f\n", r.App, r.MissesBinary, r.MissesDensity, ratio)
	}
	return b.String()
}

// MapSummary summarizes a correlation map's block structure: the
// dominant diagonal width and whether background sharing is present —
// used by tests to check Table 3/4 shapes rather than eyeballing ASCII.
type MapSummary struct {
	// DiagonalFrac is the fraction of total sharing within |i-j| <= 2.
	DiagonalFrac float64
	// BackgroundFrac is the fraction of thread pairs with nonzero
	// sharing.
	BackgroundFrac float64
}

// Summarize computes a MapSummary for a correlation matrix.
func Summarize(m *core.Matrix) MapSummary {
	var total, diag int64
	pairs, nonzero := 0, 0
	n := m.N()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := m.At(i, j)
			total += v
			d := j - i
			if d <= 2 || d >= n-2 { // ring-adjacent counts as diagonal
				diag += v
			}
			pairs++
			if v > 0 {
				nonzero++
			}
		}
	}
	s := MapSummary{}
	if total > 0 {
		s.DiagonalFrac = float64(diag) / float64(total)
	}
	if pairs > 0 {
		s.BackgroundFrac = float64(nonzero) / float64(pairs)
	}
	return s
}
