package experiments

// Decentralized-manager comparison: the BENCH_managers.json generator
// and regression gate. Two legs, both deterministic message-structure
// measurements (no wall clock, so the gate compares exact values):
//
//   - Barrier scaling at 64 nodes: the flat single-manager barrier
//     against the arity-2 tree. The measured critical-path depth of
//     each fan phase must stay within 2*ceil(log2 n) for the tree,
//     versus the flat topology's n-1.
//   - Lock-manager placement on a LockChain workload: with
//     LockShards: 1 every wire-bound lock message lands on node 0; with
//     the sharded default node 0's share must stay at most half.
//
// See DESIGN.md §10 and internal/dsm/managerbench.go.

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"strings"

	"actdsm/internal/dsm"
)

// ManagersReport is the BENCH_managers.json schema. Every number in it
// is deterministic (serialized fan-outs, no faults, no timing), so the
// regression gate checks the committed values exactly in addition to
// the scaling properties.
type ManagersReport struct {
	// Nodes and Arity describe the barrier leg's cluster.
	Nodes int `json:"nodes"`
	Arity int `json:"arity"`
	// Flat is the single-manager baseline episode, Tree the k-ary
	// tree episode on the same cluster size.
	Flat dsm.BarrierShapeResult `json:"flat"`
	Tree dsm.BarrierShapeResult `json:"tree"`
	// DepthBound is 2*ceil(log2 Nodes) — the ceiling the tree's enter
	// and release depths are gated against (one factor of
	// ceil(log2 n) levels, at most Arity serialized messages each for
	// Arity 2).
	DepthBound int `json:"depth_bound"`
	// LockCentralized is the LockShards: 1 run (every lock managed by
	// node 0), LockSharded the default one-shard-per-node run.
	LockCentralized dsm.LockSpreadResult `json:"lock_centralized"`
	LockSharded     dsm.LockSpreadResult `json:"lock_sharded"`
}

// MaxShardedNode0Share is the gate's ceiling for node 0's share of
// wire-bound lock-manager traffic once locks shard across the cluster.
const MaxShardedNode0Share = 0.5

// managersBarrierNodes is the barrier leg's cluster size — the
// acceptance point where the flat barrier's 63-deep fan-in visibly
// dwarfs the tree's bound of 12.
const managersBarrierNodes = 64

// managersBarrierArity is the tree arity under test.
const managersBarrierArity = 2

// ceilLog2 returns ceil(log2 n) for n >= 2.
func ceilLog2(n int) int { return bits.Len(uint(n - 1)) }

// ManagersComparison measures both legs and assembles the report.
func ManagersComparison() (ManagersReport, error) {
	rep := ManagersReport{
		Nodes:      managersBarrierNodes,
		Arity:      managersBarrierArity,
		DepthBound: 2 * ceilLog2(managersBarrierNodes),
	}
	var err error
	if rep.Flat, err = dsm.BarrierShapeBench(dsm.BarrierShapeOptions{Nodes: managersBarrierNodes}); err != nil {
		return rep, fmt.Errorf("managers flat barrier: %w", err)
	}
	if rep.Tree, err = dsm.BarrierShapeBench(dsm.BarrierShapeOptions{
		Nodes: managersBarrierNodes, Arity: managersBarrierArity,
	}); err != nil {
		return rep, fmt.Errorf("managers tree barrier: %w", err)
	}
	if rep.LockCentralized, err = dsm.LockSpreadBench(dsm.LockSpreadOptions{LockShards: 1}); err != nil {
		return rep, fmt.Errorf("managers centralized locks: %w", err)
	}
	if rep.LockSharded, err = dsm.LockSpreadBench(dsm.LockSpreadOptions{}); err != nil {
		return rep, fmt.Errorf("managers sharded locks: %w", err)
	}
	return rep, nil
}

// FormatManagersReport renders the comparison for the actbench section.
func FormatManagersReport(r ManagersReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "barrier topology, %d nodes:\n", r.Nodes)
	fmt.Fprintf(&b, "%-18s %12s %14s %12s %12s\n",
		"config", "enter-depth", "release-depth", "calls/phase", "max-in")
	row := func(name string, res dsm.BarrierShapeResult) {
		fmt.Fprintf(&b, "%-18s %12d %14d %12d %12d\n",
			name, res.EnterDepth, res.ReleaseDepth, res.EnterCalls, res.MaxInDegree)
	}
	row("flat (manager 0)", r.Flat)
	row(fmt.Sprintf("tree (arity %d)", r.Arity), r.Tree)
	fmt.Fprintf(&b, "tree depth gate: <= %d (2*ceil(log2 %d)); flat reference: %d\n",
		r.DepthBound, r.Nodes, r.Nodes-1)
	fmt.Fprintf(&b, "\nlock-manager traffic, LockChain (%d calls each):\n",
		r.LockSharded.Calls)
	fmt.Fprintf(&b, "%-18s %8s %12s  %s\n", "config", "shards", "node0-share", "per-node")
	lrow := func(name string, res dsm.LockSpreadResult) {
		fmt.Fprintf(&b, "%-18s %8d %11.0f%%  %v\n",
			name, res.Shards, res.Node0Share*100, res.PerNode)
	}
	lrow("centralized", r.LockCentralized)
	lrow("sharded", r.LockSharded)
	fmt.Fprintf(&b, "sharded node0-share gate: <= %.0f%%\n", MaxShardedNode0Share*100)
	return b.String()
}

// ManagersReportJSON marshals the report for BENCH_managers.json.
func ManagersReportJSON(r ManagersReport) ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// CompareManagersReports validates a fresh report against the committed
// baseline. The measurements are deterministic, so the gate is strict:
// the scaling properties must hold (tree depths within DepthBound, flat
// depth exactly n-1, centralized lock traffic fully on node 0, sharded
// node-0 share at most MaxShardedNode0Share), and the fresh barrier
// depths must equal the committed ones — a silent topology change must
// regenerate the baseline deliberately.
func CompareManagersReports(baseline, current []byte) (string, error) {
	var base, cur ManagersReport
	if err := json.Unmarshal(baseline, &base); err != nil {
		return "", fmt.Errorf("baseline: %w", err)
	}
	if err := json.Unmarshal(current, &cur); err != nil {
		return "", fmt.Errorf("current: %w", err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "tree depth: baseline %d/%d, current %d/%d (bound %d)\n",
		base.Tree.EnterDepth, base.Tree.ReleaseDepth,
		cur.Tree.EnterDepth, cur.Tree.ReleaseDepth, cur.DepthBound)
	fmt.Fprintf(&b, "lock node0-share: centralized %.0f%% -> sharded %.0f%% (ceiling %.0f%%)\n",
		cur.LockCentralized.Node0Share*100, cur.LockSharded.Node0Share*100,
		MaxShardedNode0Share*100)
	var failures []string
	if cur.Tree.EnterDepth > cur.DepthBound || cur.Tree.ReleaseDepth > cur.DepthBound {
		failures = append(failures, fmt.Sprintf(
			"tree barrier depth %d/%d exceeds the 2*ceil(log2 %d) = %d bound",
			cur.Tree.EnterDepth, cur.Tree.ReleaseDepth, cur.Nodes, cur.DepthBound))
	}
	if cur.Flat.EnterDepth != cur.Nodes-1 {
		failures = append(failures, fmt.Sprintf(
			"flat barrier enter depth %d, want exactly n-1 = %d (harness drift?)",
			cur.Flat.EnterDepth, cur.Nodes-1))
	}
	if cur.Tree.EnterDepth != base.Tree.EnterDepth || cur.Tree.ReleaseDepth != base.Tree.ReleaseDepth {
		failures = append(failures, fmt.Sprintf(
			"tree depths %d/%d differ from committed baseline %d/%d; regenerate BENCH_managers.json if intended",
			cur.Tree.EnterDepth, cur.Tree.ReleaseDepth,
			base.Tree.EnterDepth, base.Tree.ReleaseDepth))
	}
	if cur.LockCentralized.Node0Share < 0.99 {
		failures = append(failures, fmt.Sprintf(
			"centralized baseline sends only %.0f%% of lock traffic to node 0, want all of it (harness drift?)",
			cur.LockCentralized.Node0Share*100))
	}
	if cur.LockSharded.Node0Share > MaxShardedNode0Share {
		failures = append(failures, fmt.Sprintf(
			"sharded lock traffic concentrates %.0f%% on node 0, ceiling %.0f%%",
			cur.LockSharded.Node0Share*100, MaxShardedNode0Share*100))
	}
	if len(failures) > 0 {
		return b.String(), fmt.Errorf("managers benchmark regression:\n  %s",
			strings.Join(failures, "\n  "))
	}
	return b.String(), nil
}
