package experiments

import (
	"strings"
	"testing"

	"actdsm/internal/apps"
)

// small returns options sized for fast unit tests.
func small() Options {
	return Options{
		Scale:         apps.ScaleTest,
		Threads:       16,
		Nodes:         4,
		RandomConfigs: 8,
		Seed:          7,
		Apps:          []string{"SOR", "Water"},
	}
}

func TestRunBasic(t *testing.T) {
	res, err := Run(RunConfig{
		App: "SOR", Threads: 8, Nodes: 4, Scale: apps.ScaleTest,
		Iterations: 3, TrackIter: -1, Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IterTime) != 3 || len(res.IterStats) != 3 {
		t.Fatalf("iterations recorded: %d/%d", len(res.IterTime), len(res.IterStats))
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
	if res.SharedPages <= 0 {
		t.Fatal("no shared pages")
	}
	// Iteration 0 (cold) must cost at least as many remote misses as
	// iteration 2 (steady).
	if res.IterStats[0].RemoteMisses < res.IterStats[2].RemoteMisses {
		t.Fatalf("cold iteration cheaper than steady: %+v", res.IterStats)
	}
}

func TestRunWithTracking(t *testing.T) {
	res, err := Run(RunConfig{
		App: "Water", Threads: 8, Nodes: 4, Scale: apps.ScaleTest,
		Iterations: 3, TrackIter: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tracker == nil || !res.Tracker.Done() {
		t.Fatal("tracking did not complete")
	}
	if res.IterStats[1].TrackingFaults == 0 {
		t.Fatal("no tracking faults in tracked iteration")
	}
	if res.IterStats[0].TrackingFaults != 0 || res.IterStats[2].TrackingFaults != 0 {
		t.Fatal("tracking faults outside tracked iteration")
	}
}

func TestTrackMatrixStructureSOR(t *testing.T) {
	m, err := TrackMatrix("SOR", 16, 4, apps.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(m)
	// SOR is pure nearest-neighbour: virtually all sharing on the
	// diagonal band.
	if s.DiagonalFrac < 0.95 {
		t.Fatalf("SOR diagonal fraction = %v\n%s", s.DiagonalFrac, m.RenderASCII())
	}
}

func TestTrackMatrixStructureWater(t *testing.T) {
	m, err := TrackMatrix("Water", 16, 4, apps.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(m)
	// Water shares broadly (half-window per molecule): most pairs
	// nonzero.
	if s.BackgroundFrac < 0.5 {
		t.Fatalf("Water background fraction = %v\n%s", s.BackgroundFrac, m.RenderASCII())
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SharedPages <= 0 {
			t.Fatalf("%s: no pages", r.App)
		}
		if r.Sync == "" || r.Input == "" {
			t.Fatalf("%s: missing metadata", r.App)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "SOR") || !strings.Contains(out, "Shared Pages") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestTable2CorrelatesForSOR(t *testing.T) {
	o := small()
	o.Apps = []string{"SOR"}
	o.RandomConfigs = 12
	rows, err := Table2(o)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if len(r.CutCosts) != 12 {
		t.Fatalf("points = %d", len(r.CutCosts))
	}
	// The paper finds SOR nearly perfectly linear (r ≈ 0.96); allow
	// slack for the tiny test input.
	if r.R < 0.7 {
		t.Fatalf("SOR correlation coefficient = %v (slope %v)", r.R, r.Slope)
	}
	if r.Slope <= 0 {
		t.Fatalf("slope = %v, want positive", r.Slope)
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "Slope") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestTable3And4Maps(t *testing.T) {
	o := small()
	o.Apps = []string{"SOR"}
	maps, err := Table3(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(maps) != 3 {
		t.Fatalf("maps = %d", len(maps))
	}
	for _, m := range maps {
		lines := strings.Split(strings.TrimRight(m.ASCII, "\n"), "\n")
		if len(lines) != m.Threads {
			t.Fatalf("%s/%d: %d map rows", m.App, m.Threads, len(lines))
		}
	}
	t4, err := Table4(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(t4) != 3 {
		t.Fatalf("table4 maps = %d", len(t4))
	}
	// The three FFT inputs must not have identical sharing structure
	// (Table 4's point): compare background fractions.
	s6 := Summarize(t4[0].Matrix)
	s8 := Summarize(t4[2].Matrix)
	if s6 == s8 {
		t.Fatalf("FFT6 and FFT8 maps identical: %+v", s6)
	}
}

func TestTable5(t *testing.T) {
	o := small()
	rows, err := Table5(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.TrackingFaults == 0 {
			t.Fatalf("%s: no tracking faults", r.App)
		}
		if r.SlowdownPct <= 0 {
			t.Fatalf("%s: tracking made the iteration faster (%.2f%%)", r.App, r.SlowdownPct)
		}
		if r.SharingDegree < 1 {
			t.Fatalf("%s: sharing degree %v < 1", r.App, r.SharingDegree)
		}
	}
	// Water's sharing degree must exceed SOR's (paper: 6.75 vs 1.08).
	var sor, water float64
	for _, r := range rows {
		switch r.App {
		case "SOR":
			sor = r.SharingDegree
		case "Water":
			water = r.SharingDegree
		}
	}
	if water <= sor {
		t.Fatalf("sharing degree: water %v <= sor %v", water, sor)
	}
	if out := FormatTable5(rows); !strings.Contains(out, "Slowdown") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestTable6MinCostWins(t *testing.T) {
	o := small()
	rows, err := Table6(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byApp := map[string]map[string]Table6Row{}
	for _, r := range rows {
		if byApp[r.App] == nil {
			byApp[r.App] = map[string]Table6Row{}
		}
		byApp[r.App][r.Heuristic] = r
	}
	for app, hs := range byApp {
		mc, ran := hs["m-c"], hs["ran"]
		if mc.CutCost > ran.CutCost {
			t.Errorf("%s: min-cost cut %d > random cut %d", app, mc.CutCost, ran.CutCost)
		}
		if mc.RemoteMisses > ran.RemoteMisses {
			t.Errorf("%s: min-cost misses %d > random %d", app, mc.RemoteMisses, ran.RemoteMisses)
		}
	}
	if out := FormatTable6(rows); !strings.Contains(out, "Cut Cost") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestFigure2PassiveIncomplete(t *testing.T) {
	o := small()
	o.Apps = []string{"Water"}
	series, err := Figure2(o)
	if err != nil {
		t.Fatal(err)
	}
	s := series[0]
	if len(s.Completeness) == 0 {
		t.Fatal("no rounds recorded")
	}
	last := s.Completeness[len(s.Completeness)-1]
	if last <= 0 {
		t.Fatal("passive tracking gathered nothing")
	}
	// The defining property of passive tracking (paper §4.1): the first
	// round — before any migration — is incomplete, because the first
	// local thread to validate a page masks all other local threads.
	// Migration rounds then reveal more.
	if first := s.Completeness[0]; first >= 1 {
		t.Fatalf("round 1 already complete (%v)", first)
	}
	if last < s.Completeness[0] {
		t.Fatalf("information lost across rounds: %v", s.Completeness)
	}
	// Information is cumulative: the curve never decreases.
	for i := 1; i < len(s.Completeness); i++ {
		if s.Completeness[i] < s.Completeness[i-1]-1e-12 {
			t.Fatalf("completeness decreased at round %d: %v", i, s.Completeness)
		}
	}
	if out := FormatFigure2(series); !strings.Contains(out, "Water") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestFigure3(t *testing.T) {
	o := small()
	cfgs, err := Figure3(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 3 {
		t.Fatalf("configs = %d", len(cfgs))
	}
	a, bb, c := cfgs[0], cfgs[1], cfgs[2]
	// Paper: 8 nodes cover less sharing than 4; randomized is worst.
	if a.CutCost > bb.CutCost {
		t.Errorf("4-node cut %d > 8-node cut %d", a.CutCost, bb.CutCost)
	}
	if c.CutCost < a.CutCost {
		t.Errorf("randomized cut %d < contiguous cut %d", c.CutCost, a.CutCost)
	}
	if a.FreeSharing < bb.FreeSharing {
		t.Errorf("free sharing: 4-node %v < 8-node %v", a.FreeSharing, bb.FreeSharing)
	}
	if out := FormatFigure3(cfgs); !strings.Contains(out, "free sharing") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestAblationHeuristics(t *testing.T) {
	o := small()
	rows, err := AblationHeuristics(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.CutMinCost > r.CutRandom {
			t.Errorf("%s: min-cost %d worse than random %d", r.App, r.CutMinCost, r.CutRandom)
		}
		if r.CutOptimal < -1 {
			t.Errorf("%s: min-cost missed optimal badly", r.App)
		}
	}
	if out := FormatAblationHeuristics(rows); !strings.Contains(out, "MinCost") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestAblationScaling(t *testing.T) {
	o := small()
	rows, err := AblationScaling(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Water shares more than SOR at every node count.
	for i := 0; i < 3; i++ {
		if rows[i].App != "SOR" || rows[i+3].App != "Water" {
			t.Fatalf("unexpected row order: %+v", rows)
		}
		if rows[i+3].SharingDegree <= rows[i].SharingDegree {
			t.Errorf("nodes=%d: water degree %v <= sor %v",
				rows[i].Nodes, rows[i+3].SharingDegree, rows[i].SharingDegree)
		}
	}
	if out := FormatAblationScaling(rows); !strings.Contains(out, "Degree") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.Defaults()
	if o.Threads != 64 || o.Nodes != 8 || o.Scale != apps.ScaleTest {
		t.Fatalf("defaults: %+v", o)
	}
	if o.RandomConfigs != 60 || len(o.Apps) != 10 {
		t.Fatalf("defaults: %+v", o)
	}
	p := Options{Scale: apps.ScalePaper}.Defaults()
	if p.RandomConfigs != 300 {
		t.Fatalf("paper defaults: %+v", p)
	}
}

func TestAblationDensity(t *testing.T) {
	o := small()
	rows, err := AblationDensity(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MissesBinary <= 0 || r.MissesDensity <= 0 {
			t.Fatalf("%s: degenerate misses %+v", r.App, r)
		}
		// The density oracle should never be dramatically worse than
		// the binary heuristic it refines.
		if r.MissesDensity > 2*r.MissesBinary {
			t.Errorf("%s: density placement much worse: %+v", r.App, r)
		}
	}
	if out := FormatAblationDensity(rows); !strings.Contains(out, "Density") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestRunWithDensity(t *testing.T) {
	res, err := Run(RunConfig{
		App: "SOR", Threads: 8, Nodes: 4, Scale: apps.ScaleTest,
		Iterations: 3, TrackIter: 1, TrackDensity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Density == nil || !res.Density.Done() {
		t.Fatal("density tracking incomplete")
	}
	// SOR threads touch their own rows many times per iteration —
	// counts far above 1 show real densities, not just bits.
	var maxCount int64
	for _, row := range res.Density.Counts() {
		for _, c := range row {
			if c > maxCount {
				maxCount = c
			}
		}
	}
	if maxCount < 2 {
		t.Fatalf("max density count = %d, want > 1", maxCount)
	}
}

func TestAblationProtocol(t *testing.T) {
	o := small()
	o.Apps = []string{"Water", "SOR"}
	rows, err := AblationProtocol(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.MWMisses <= 0 || r.SWMisses <= 0 {
			t.Fatalf("%s: degenerate misses %+v", r.App, r)
		}
	}
	// Both protocols must run the applications correctly and produce
	// comparable measurements; the decisive single-writer penalty —
	// per-access page ping-ponging under interleaved writers — is
	// asserted by the dsm package's false-sharing micro-test, because
	// the engine's run-to-sync-point slices let a whole page of updates
	// amortize one ownership transfer at application granularity (a
	// documented modelling limit).
	for _, r := range rows {
		if r.SWBytes <= 0 || r.MWBytes <= 0 || r.SWTime <= 0 || r.MWTime <= 0 {
			t.Fatalf("%s: degenerate measurements %+v", r.App, r)
		}
	}
	if out := FormatAblationProtocol(rows); !strings.Contains(out, "MW|SW") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestTable2CSV(t *testing.T) {
	rows := []Table2Row{{
		App:          "SOR",
		CutCosts:     []float64{10, 20},
		RemoteMisses: []float64{100, 210},
	}}
	out := Table2CSV(rows)
	want := "app,cut_cost,remote_misses\nSOR,10,100\nSOR,20,210\n"
	if out != want {
		t.Fatalf("csv = %q", out)
	}
}

func TestFFT48ThreadIrregularity(t *testing.T) {
	// Paper §3.1.1: FFT "expects the number of threads to be a power of
	// two" and shows distinct irregularities at 48 threads. With 48
	// threads the transpose block geometry misaligns, which shows up as
	// a different diagonal/background profile than at 32 and 64.
	prof := map[int]MapSummary{}
	for _, nt := range []int{32, 48, 64} {
		m, err := TrackMatrix("FFT6", nt, 8, apps.ScaleTest)
		if err != nil {
			t.Fatal(err)
		}
		prof[nt] = Summarize(m)
	}
	if prof[48] == prof[32] || prof[48] == prof[64] {
		t.Fatalf("48-thread FFT map identical to a power-of-two map: %+v", prof)
	}
}

func TestRunWithPassiveTracker(t *testing.T) {
	res, err := Run(RunConfig{
		App: "SOR", Threads: 8, Nodes: 4, Scale: apps.ScaleTest,
		Iterations: 2, TrackIter: -1, Passive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PassiveTracker == nil {
		t.Fatal("passive tracker not attached")
	}
	var observed int
	for _, bm := range res.PassiveTracker.Bitmaps() {
		observed += bm.Count()
	}
	if observed == 0 {
		t.Fatal("passive tracker observed nothing")
	}
}
