package experiments

import (
	"fmt"
	"strings"

	"actdsm/internal/apps"
	"actdsm/internal/core"
	"actdsm/internal/dsm"
	"actdsm/internal/memlayout"
	"actdsm/internal/placement"
	"actdsm/internal/threads"
	"actdsm/internal/vm"
)

// ---------------------------------------------------------------------------
// Figure 2: passive information gathering across migration rounds.

// Figure2Series is one application's passive-tracking completeness curve.
type Figure2Series struct {
	App string
	// Completeness[r] is the fraction of the full sharing information
	// gathered after round r (round = one iteration of fault snooping
	// followed by a migration to the best mapping known so far).
	Completeness []float64
	// Rounds is the number of rounds until no new information appeared
	// twice in a row.
	Rounds int
}

// Figure2 reproduces the passive-tracking experiment: per round, run one
// iteration gathering remote-fault information, choose a new mapping from
// the partial correlations, migrate, and repeat. The reference for
// completeness is a separate actively tracked run.
func Figure2(o Options) ([]Figure2Series, error) {
	o = o.Defaults()
	const maxRounds = 12
	var out []Figure2Series
	for _, name := range o.Apps {
		ref, err := referenceBitmaps(name, o)
		if err != nil {
			return nil, fmt.Errorf("figure2 %s: %w", name, err)
		}
		series, err := passiveRounds(name, o, ref, maxRounds)
		if err != nil {
			return nil, fmt.Errorf("figure2 %s: %w", name, err)
		}
		out = append(out, series)
	}
	return out, nil
}

// referenceBitmaps obtains complete access information via active
// tracking.
func referenceBitmaps(name string, o Options) ([]*vm.Bitmap, error) {
	res, err := Run(RunConfig{
		App: name, Threads: o.Threads, Nodes: o.Nodes,
		Scale: o.Scale, Iterations: 3, TrackIter: 1,
	})
	if err != nil {
		return nil, err
	}
	return res.Tracker.Bitmaps(), nil
}

// passiveRounds runs the migration-round loop with one long-lived engine,
// migrating between iterations. Local thread order is shuffled each
// interval, modelling the scheduling nondeterminism the paper describes.
func passiveRounds(name string, o Options, ref []*vm.Bitmap, maxRounds int) (Figure2Series, error) {
	series := Figure2Series{App: name}
	app, err := apps.New(name, apps.Config{
		Threads:    o.Threads,
		Iterations: maxRounds,
		Scale:      o.Scale,
	})
	if err != nil {
		return series, err
	}
	layout := memlayout.NewLayout()
	if err := app.Setup(layout); err != nil {
		return series, err
	}
	cl, err := dsm.New(dsm.Config{Nodes: o.Nodes, Pages: layout.TotalPages()})
	if err != nil {
		return series, err
	}
	defer func() { _ = cl.Close() }()
	eng, err := threads.NewEngine(cl, threads.Config{
		Threads:          o.Threads,
		SchedulerEnabled: true,
		ShuffleSeed:      o.Seed + 2,
	})
	if err != nil {
		return series, err
	}
	pt := core.NewPassiveTracker(eng)
	stable := 0
	prev := 0.0
	eng.SetHooks(threads.Hooks{OnIteration: func(iter int) {
		comp := pt.Completeness(ref)
		series.Completeness = append(series.Completeness, comp)
		if comp <= prev {
			stable++
		} else {
			stable = 0
			series.Rounds = iter + 1
		}
		prev = comp
		// Migrate to the best mapping the partial information
		// suggests (the source of the paper's ping-ponging).
		m := pt.Matrix()
		target := placement.MinCost(m, o.Nodes)
		aligned := placement.AlignLabels(target, eng.Placement(), o.Nodes)
		if _, err := eng.ApplyPlacement(aligned); err != nil {
			// Migration failures would invalidate the series;
			// surface via a panic-free path by truncating.
			series.Completeness = series.Completeness[:len(series.Completeness)-1]
		}
	}})
	if err := eng.Run(app.Body); err != nil {
		return series, err
	}
	return series, nil
}

// FormatFigure2 renders the completeness curves as a text table.
func FormatFigure2(series []Figure2Series) string {
	var b strings.Builder
	b.WriteString("Passive information gathered (% of complete) per migration round\n")
	for _, s := range series {
		fmt.Fprintf(&b, "%-8s:", s.App)
		for _, c := range s.Completeness {
			fmt.Fprintf(&b, " %5.1f", 100*c)
		}
		fmt.Fprintf(&b, "   (stabilized after ~%d rounds)\n", s.Rounds)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 3: free zones under different configurations.

// Figure3Config is one panel of the paper's Figure 3.
type Figure3Config struct {
	Label       string
	Nodes       int
	Assign      []int
	CutCost     int64
	FreeSharing float64
	Overlay     string
}

// Figure3 analyses the 32-thread FFT on (a) four nodes contiguous, (b)
// eight nodes contiguous, and (c) four nodes randomized, reporting cut
// costs and free-zone coverage.
func Figure3(o Options) ([]Figure3Config, error) {
	o = o.Defaults()
	const nt = 32
	m, err := TrackMatrix("FFT6", nt, 4, o.Scale)
	if err != nil {
		return nil, fmt.Errorf("figure3: %w", err)
	}
	rng := newRNG(o.Seed + 3)
	configs := []Figure3Config{
		{Label: "(a) 4 nodes, contiguous", Nodes: 4, Assign: placement.Stretch(nt, 4)},
		{Label: "(b) 8 nodes, contiguous", Nodes: 8, Assign: placement.Stretch(nt, 8)},
		{Label: "(c) 4 nodes, randomized", Nodes: 4, Assign: placement.RandomBalanced(nt, 4, rng)},
	}
	for i := range configs {
		c := &configs[i]
		c.CutCost = m.CutCost(c.Assign)
		c.FreeSharing = m.FreeSharing(c.Assign)
		c.Overlay = m.FreeZoneOverlay(c.Assign)
	}
	return configs, nil
}

// FormatFigure3 renders the three panels with their metrics.
func FormatFigure3(cfgs []Figure3Config) string {
	var b strings.Builder
	for _, c := range cfgs {
		fmt.Fprintf(&b, "%s: cut cost %d, free sharing %.1f%%\n%s\n",
			c.Label, c.CutCost, 100*c.FreeSharing, c.Overlay)
	}
	return b.String()
}
