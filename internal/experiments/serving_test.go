package experiments

import (
	"strings"
	"testing"
)

// TestServingComparison runs the full serving ablation once and asserts
// the properties the bench gate depends on, so a workload or protocol
// change that breaks the committed BENCH_serving.json invariants fails
// in tier-1 tests, not only in make bench-compare.
func TestServingComparison(t *testing.T) {
	rep, err := ServingComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("got %d rows, want 3: %+v", len(rep.Rows), rep.Rows)
	}
	cfg := servingBenchConfig()
	wantReqs := int64(cfg.Clients * cfg.RequestsPerWindow * cfg.MeasureWindows)
	for _, row := range rep.Rows {
		if row.Requests != wantReqs {
			t.Errorf("%s measured %d requests, want %d", row.Config, row.Requests, wantReqs)
		}
		if row.QPS <= 0 || row.P50 <= 0 || row.P99 < row.P50 || row.P999 < row.P99 {
			t.Errorf("%s has malformed latency figures: %+v", row.Config, row)
		}
	}
	s, m, h := servingRow(rep, "static"), servingRow(rep, "mincost"), servingRow(rep, "homemig")
	if s == nil || m == nil || h == nil {
		t.Fatalf("missing variant row: %+v", rep.Rows)
	}
	// The ablation's point: correlation-driven co-location cuts remote
	// misses, and home migration converts that into better throughput
	// AND a better tail than static placement.
	if m.RemoteMisses >= s.RemoteMisses {
		t.Errorf("min-cost placement did not reduce misses: %d vs static %d",
			m.RemoteMisses, s.RemoteMisses)
	}
	if h.P99 >= s.P99 {
		t.Errorf("homemig p99 %v not below static %v", h.P99, s.P99)
	}
	if h.QPS <= s.QPS {
		t.Errorf("homemig QPS %.0f not above static %.0f", h.QPS, s.QPS)
	}
	if h.LockForwards == 0 || h.HomeMigrations == 0 {
		t.Errorf("homemig leg exercised no migration machinery: %+v", *h)
	}

	// The gate accepts its own fresh report.
	js, err := ServingReportJSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	summary, err := CompareServingReports(js, js)
	if err != nil {
		t.Fatalf("self-comparison failed: %v\n%s", err, summary)
	}
	for _, name := range []string{"static", "mincost", "homemig"} {
		if !strings.Contains(summary, name) {
			t.Errorf("comparison summary omits %s:\n%s", name, summary)
		}
	}
}

// TestServingDeterminism asserts a re-run reproduces the report
// byte-for-byte — the property that lets the bench gate compare the
// committed JSON exactly.
func TestServingDeterminism(t *testing.T) {
	a, err := ServingComparison()
	if err != nil {
		t.Fatal(err)
	}
	b, err := ServingComparison()
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := ServingReportJSON(a)
	jb, _ := ServingReportJSON(b)
	if string(ja) != string(jb) {
		t.Fatalf("serving report not deterministic:\n%s\nvs\n%s", ja, jb)
	}
}
