package experiments

import (
	"strings"
	"testing"

	"actdsm/internal/dsm"
)

// TestManagersComparisonGate runs the real BENCH_managers.json
// measurement and pushes it through its own gate: the report must pass
// against itself, and the scaling properties the gate encodes must hold
// on the fresh numbers.
func TestManagersComparisonGate(t *testing.T) {
	rep, err := ManagersComparison()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Flat.EnterDepth != rep.Nodes-1 {
		t.Errorf("flat enter depth = %d, want n-1 = %d", rep.Flat.EnterDepth, rep.Nodes-1)
	}
	if rep.Tree.EnterDepth > rep.DepthBound || rep.Tree.ReleaseDepth > rep.DepthBound {
		t.Errorf("tree depths %d/%d exceed bound %d",
			rep.Tree.EnterDepth, rep.Tree.ReleaseDepth, rep.DepthBound)
	}
	if rep.Tree.EnterCalls != rep.Flat.EnterCalls {
		t.Errorf("tree sends %d enters, flat %d; topology must not change message count",
			rep.Tree.EnterCalls, rep.Flat.EnterCalls)
	}
	if rep.LockCentralized.Node0Share < 0.99 {
		t.Errorf("centralized node0 share = %.2f, want ~1.0", rep.LockCentralized.Node0Share)
	}
	if rep.LockSharded.Node0Share > MaxShardedNode0Share {
		t.Errorf("sharded node0 share = %.2f, ceiling %.2f",
			rep.LockSharded.Node0Share, MaxShardedNode0Share)
	}

	js, err := ManagersReportJSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompareManagersReports(js, js); err != nil {
		t.Errorf("report fails its own gate: %v", err)
	}
	if out := FormatManagersReport(rep); !strings.Contains(out, "tree depth gate") {
		t.Errorf("format output missing the gate line:\n%s", out)
	}
}

// TestCompareManagersReportsRejects checks the gate trips on each
// regression class it claims to catch.
func TestCompareManagersReportsRejects(t *testing.T) {
	rep, err := ManagersComparison()
	if err != nil {
		t.Fatal(err)
	}
	base, err := ManagersReportJSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*ManagersReport){
		"depth over bound":    func(r *ManagersReport) { r.Tree.EnterDepth = r.DepthBound + 1 },
		"depth drift":         func(r *ManagersReport) { r.Tree.ReleaseDepth-- },
		"flat harness drift":  func(r *ManagersReport) { r.Flat.EnterDepth = 1 },
		"lock concentration":  func(r *ManagersReport) { r.LockSharded.Node0Share = 0.9 },
		"centralized leakage": func(r *ManagersReport) { r.LockCentralized.Node0Share = 0.5 },
	} {
		bad := rep
		mutate(&bad)
		js, err := ManagersReportJSON(bad)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := CompareManagersReports(base, js); err == nil {
			t.Errorf("%s: gate passed a regressed report", name)
		}
	}
}

// TestBarrierShapeSmall pins the depth computation on hand-checkable
// topologies: 8 nodes flat is a 7-deep star; 8 nodes arity 2 is the
// tree 0-(1,2), 1-(3,4), 2-(5,6), 3-(7), whose critical path is
// depth(0) = 2 + depth(1) = 2 + (2 + depth(3)) = 2 + 2 + 1 = 5.
func TestBarrierShapeSmall(t *testing.T) {
	flat, err := dsm.BarrierShapeBench(dsm.BarrierShapeOptions{Nodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if flat.EnterDepth != 7 || flat.ReleaseDepth != 7 || flat.MaxInDegree != 7 {
		t.Errorf("flat 8-node shape = %+v, want depth 7/7, max-in 7", flat)
	}
	tree, err := dsm.BarrierShapeBench(dsm.BarrierShapeOptions{Nodes: 8, Arity: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Deepest chain: 7->3 (fan-in 1), 3,4->1 (2), 1,2->0 (2) = 5.
	if tree.EnterDepth != 5 || tree.ReleaseDepth != 5 {
		t.Errorf("tree 8-node depths = %d/%d, want 5/5", tree.EnterDepth, tree.ReleaseDepth)
	}
	if tree.MaxInDegree != 2 {
		t.Errorf("tree max in-degree = %d, want 2", tree.MaxInDegree)
	}
	if tree.EnterCalls != 7 || tree.ReleaseCalls != 7 {
		t.Errorf("tree calls = %d/%d, want 7/7", tree.EnterCalls, tree.ReleaseCalls)
	}
}
