package experiments

// Placement-v2 ablation: the BENCH_placement.json generator and
// regression gate. Two workloads — an epoch application (Ocean) from a
// deliberately scattered placement and the closed-loop KV serving mix —
// each run over the same heterogeneous FastSlowTopology under four
// controller configurations:
//
//   - static: no controller; placement and homes stay wherever they
//     started (plus the protocol's defaults).
//   - thread: controller with the data side disabled (HomeBudget 0) —
//     online thread re-placement only.
//   - data: controller with the thread side disabled (ThreadBudget 0) —
//     online page-home moves only.
//   - combined: both sides on, the placement-v2 co-orchestration.
//
// Every variant starts from the same scattered placement and runs the
// identical workload in virtual time, so the rows are deterministic and
// the gate can assert the tentpole's headline claim: co-orchestrating
// threads and page homes beats either side alone on at least one
// workload.

import (
	"encoding/json"
	"fmt"
	"strings"

	"actdsm/internal/apps"
	"actdsm/internal/core"
	"actdsm/internal/dsm"
	"actdsm/internal/memlayout"
	"actdsm/internal/placement"
	"actdsm/internal/serve"
	"actdsm/internal/sim"
	"actdsm/internal/threads"
)

// PlacementRow is one controller configuration's measurements on one
// workload. QPS/P99 are zero for the epoch-application leg.
type PlacementRow struct {
	Config string `json:"config"`

	Elapsed      sim.Time `json:"elapsed"`
	DemandCalls  int64    `json:"demand_calls"`
	RemoteMisses int64    `json:"remote_misses"`

	QPS float64  `json:"qps,omitempty"`
	P99 sim.Time `json:"p99,omitempty"`

	Triggers    int64 `json:"triggers"`
	Applied     int64 `json:"applied"`
	Skipped     int64 `json:"skipped"`
	ThreadMoves int64 `json:"thread_moves"`
	HomeMoves   int64 `json:"home_moves"`
}

// PlacementWorkload is one workload's ablation rows.
type PlacementWorkload struct {
	Workload string         `json:"workload"`
	Rows     []PlacementRow `json:"rows"`
}

// PlacementReport is the BENCH_placement.json schema.
type PlacementReport struct {
	Nodes     int                 `json:"nodes"`
	Workloads []PlacementWorkload `json:"workloads"`
}

// placementBenchNodes is the ablation's cluster size.
const placementBenchNodes = 4

// placementBenchTopology is the heterogeneous network every leg runs
// over: every second node slow (2x compute, 4x link cost), so both
// which threads co-reside and where pages are homed carry real cost.
func placementBenchTopology() *sim.Topology {
	return sim.FastSlowTopology(placementBenchNodes, sim.DefaultCosts(), 2, 2, 4)
}

// placementVariant describes one ablation leg's controller budgets.
type placementVariant struct {
	name         string
	controller   bool
	threadBudget int
	homeBudget   int
}

func placementVariants() []placementVariant {
	return []placementVariant{
		{name: "static"},
		{name: "thread", controller: true, threadBudget: -1, homeBudget: 0},
		{name: "data", controller: true, threadBudget: 0, homeBudget: -1},
		{name: "combined", controller: true, threadBudget: -1, homeBudget: -1},
	}
}

// placementCtlConfig is the controller policy every non-static variant
// runs: evaluate every other iteration with zero hysteresis (the
// ablation wants the sides' full effect, not the damped production
// policy) and continuous re-tracking.
func placementCtlConfig(v placementVariant) placement.ControllerConfig {
	return placement.ControllerConfig{
		Period:       2,
		Hysteresis:   0,
		ThreadBudget: v.threadBudget,
		HomeBudget:   v.homeBudget,
		Smoothing:    0.5,
		Retrack:      true,
	}
}

// fillControllerStats copies the controller decision counters into the
// row.
func fillControllerStats(row *PlacementRow, snap dsm.Snapshot) {
	row.Triggers = snap.PlacementTriggers
	row.Applied = snap.PlacementApplied
	row.Skipped = snap.PlacementSkipped
	row.ThreadMoves = snap.PlacementThreadMoves
	row.HomeMoves = snap.PlacementHomeMoves
}

// runPlacementApp measures one controller variant on the epoch
// application leg: Ocean, 16 threads on 4 nodes, started from a
// deterministic scattered placement so the thread side has headroom.
func runPlacementApp(v placementVariant) (PlacementRow, error) {
	row := PlacementRow{Config: v.name}
	const nthreads, iters = 16, 10
	app, err := apps.New("Ocean", apps.Config{Threads: nthreads, Iterations: iters})
	if err != nil {
		return row, fmt.Errorf("placement %s: %w", v.name, err)
	}
	layout := memlayout.NewLayout()
	if err := app.Setup(layout); err != nil {
		return row, fmt.Errorf("placement %s: %w", v.name, err)
	}
	cl, err := dsm.New(dsm.Config{
		Nodes:      placementBenchNodes,
		Pages:      layout.TotalPages(),
		BatchDiffs: true,
		Topology:   placementBenchTopology(),
		// Aggressive GC keeps diff consolidation — and the post-GC
		// refaults of invalidated copies — in the measured steady state,
		// the traffic the data side's home moves eliminate (a page homed
		// at its writer consolidates and refaults locally).
		GCThresholdBytes: 4096,
	})
	if err != nil {
		return row, fmt.Errorf("placement %s: %w", v.name, err)
	}
	defer func() { _ = cl.Close() }()
	scattered := placement.RandomBalanced(nthreads, placementBenchNodes, sim.NewRNG(11))
	eng, err := threads.NewEngine(cl, threads.Config{
		Threads:          nthreads,
		Placement:        scattered,
		SchedulerEnabled: true,
	})
	if err != nil {
		return row, fmt.Errorf("placement %s: %w", v.name, err)
	}
	hooks := threads.Hooks{}
	var tracker *core.ActiveTracker
	if v.controller {
		tracker = core.NewActiveTracker(eng, 1)
		ctrl, err := placement.NewController(cl, eng, tracker, placementCtlConfig(v))
		if err != nil {
			return row, fmt.Errorf("placement %s: %w", v.name, err)
		}
		defer func() {
			if err := ctrl.Err(); err != nil {
				panic(fmt.Sprintf("placement %s: %v", v.name, err))
			}
		}()
		hooks = tracker.Hooks(ctrl.Hooks(hooks))
	}
	eng.SetHooks(hooks)
	if tracker != nil {
		tracker.Start()
	}
	if err := eng.Run(app.Body); err != nil {
		return row, fmt.Errorf("placement %s: %w", v.name, err)
	}
	snap := cl.Stats().Snapshot()
	row.Elapsed = eng.Elapsed()
	row.DemandCalls = snap.DemandCalls()
	row.RemoteMisses = snap.RemoteMisses
	fillControllerStats(&row, snap)
	return row, nil
}

// runPlacementServing measures one controller variant on the serving
// leg: the BENCH_serving workload (16 clients, 4 tenant groups) over
// the heterogeneous topology, block placement, no home-migration
// heuristic — home moves, when present, come from the controller alone.
func runPlacementServing(v placementVariant) (PlacementRow, error) {
	row := PlacementRow{Config: v.name}
	kv, err := serve.NewKV(servingBenchConfig())
	if err != nil {
		return row, fmt.Errorf("placement %s: %w", v.name, err)
	}
	layout := memlayout.NewLayout()
	if err := kv.Setup(layout); err != nil {
		return row, fmt.Errorf("placement %s: %w", v.name, err)
	}
	cl, err := dsm.New(dsm.Config{
		Nodes:      placementBenchNodes,
		Pages:      layout.TotalPages(),
		BatchDiffs: true,
		Topology:   placementBenchTopology(),
	})
	if err != nil {
		return row, fmt.Errorf("placement %s: %w", v.name, err)
	}
	defer func() { _ = cl.Close() }()
	eng, err := threads.NewEngine(cl, threads.Config{
		Threads:          kv.Threads(),
		SchedulerEnabled: true,
	})
	if err != nil {
		return row, fmt.Errorf("placement %s: %w", v.name, err)
	}
	inner := threads.Hooks{}
	var tracker *core.ActiveTracker
	if v.controller {
		tracker = core.NewActiveTracker(eng, 0)
		ctrl, err := placement.NewController(cl, eng, tracker, placementCtlConfig(v))
		if err != nil {
			return row, fmt.Errorf("placement %s: %w", v.name, err)
		}
		defer func() {
			if err := ctrl.Err(); err != nil {
				panic(fmt.Sprintf("placement %s: %v", v.name, err))
			}
		}()
		inner = ctrl.Hooks(inner)
	}
	hooks := kv.ServingHooks(inner, eng.Elapsed, cl.Stats().Snapshot)
	if tracker != nil {
		hooks = tracker.Hooks(hooks)
	}
	eng.SetHooks(hooks)
	if tracker != nil {
		tracker.Start()
	}
	if err := eng.Run(kv.Body); err != nil {
		return row, fmt.Errorf("placement %s: %w", v.name, err)
	}
	rep, err := kv.Report()
	if err != nil {
		return row, fmt.Errorf("placement %s: %w", v.name, err)
	}
	snap := cl.Stats().Snapshot()
	row.Elapsed = rep.Elapsed
	row.DemandCalls = snap.DemandCalls()
	row.RemoteMisses = snap.RemoteMisses
	row.QPS = rep.QPS
	row.P99 = rep.P99
	fillControllerStats(&row, snap)
	return row, nil
}

// PlacementComparison runs the full static / thread / data / combined
// ablation on both workloads and assembles the report.
func PlacementComparison() (PlacementReport, error) {
	rep := PlacementReport{Nodes: placementBenchNodes}
	legs := []struct {
		name string
		run  func(placementVariant) (PlacementRow, error)
	}{
		{"ocean", runPlacementApp},
		{"serving", runPlacementServing},
	}
	for _, leg := range legs {
		w := PlacementWorkload{Workload: leg.name}
		for _, v := range placementVariants() {
			row, err := leg.run(v)
			if err != nil {
				return rep, err
			}
			w.Rows = append(w.Rows, row)
		}
		rep.Workloads = append(rep.Workloads, w)
	}
	return rep, nil
}

// placementRow returns the named row of the named workload, or nil.
func placementRow(r PlacementReport, workload, config string) *PlacementRow {
	for i := range r.Workloads {
		if r.Workloads[i].Workload != workload {
			continue
		}
		for j := range r.Workloads[i].Rows {
			if r.Workloads[i].Rows[j].Config == config {
				return &r.Workloads[i].Rows[j]
			}
		}
	}
	return nil
}

// FormatPlacementReport renders the ablation for the actbench section.
func FormatPlacementReport(r PlacementReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Placement v2 ablation, %d nodes, fast/slow topology:\n", r.Nodes)
	for _, w := range r.Workloads {
		fmt.Fprintf(&b, "%s:\n", w.Workload)
		fmt.Fprintf(&b, "  %-10s %12s %10s %10s %10s %8s %8s %8s\n",
			"config", "elapsed", "calls", "misses", "p99", "applied", "tmoves", "hmoves")
		for _, row := range w.Rows {
			p99 := "-"
			if row.P99 > 0 {
				p99 = fmt.Sprintf("%v", row.P99)
			}
			fmt.Fprintf(&b, "  %-10s %12v %10d %10d %10s %8d %8d %8d\n",
				row.Config, row.Elapsed, row.DemandCalls, row.RemoteMisses, p99,
				row.Applied, row.ThreadMoves, row.HomeMoves)
		}
	}
	if ws := placementHeadlineWorkloads(r); len(ws) > 0 {
		fmt.Fprintf(&b, "combined beats thread-only and data-only on: %s\n",
			strings.Join(ws, ", "))
	}
	return b.String()
}

// placementHeadlineWorkloads lists the workloads on which the combined
// variant strictly beats both single-sided variants — on demand calls
// for epoch legs, on demand calls or p99 for serving legs.
func placementHeadlineWorkloads(r PlacementReport) []string {
	var out []string
	for _, w := range r.Workloads {
		th := placementRow(r, w.Workload, "thread")
		da := placementRow(r, w.Workload, "data")
		co := placementRow(r, w.Workload, "combined")
		if th == nil || da == nil || co == nil {
			continue
		}
		callsWin := co.DemandCalls < th.DemandCalls && co.DemandCalls < da.DemandCalls
		p99Win := co.P99 > 0 && th.P99 > 0 && da.P99 > 0 && co.P99 < th.P99 && co.P99 < da.P99
		if callsWin || p99Win {
			out = append(out, w.Workload)
		}
	}
	return out
}

// PlacementReportJSON marshals the report for BENCH_placement.json.
func PlacementReportJSON(r PlacementReport) ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// PlacementRegressionTolerance bounds the gate: each row's fresh
// elapsed time and demand calls must stay within 5% above the committed
// baseline. The runs are virtual-time deterministic, so drift is a real
// behavior change; the margin only absorbs intentional small protocol
// refinements.
const PlacementRegressionTolerance = 0.05

// ComparePlacementReports validates a fresh ablation against the
// committed baseline: per-row elapsed and demand calls within
// tolerance, and the placement-v2 headline — the combined controller
// strictly beats both thread-only and data-only on at least one
// workload (demand calls, or p99 for serving) — must hold in the fresh
// measurements.
func ComparePlacementReports(baseline, current []byte) (string, error) {
	var base, cur PlacementReport
	if err := json.Unmarshal(baseline, &base); err != nil {
		return "", fmt.Errorf("baseline: %w", err)
	}
	if err := json.Unmarshal(current, &cur); err != nil {
		return "", fmt.Errorf("current: %w", err)
	}
	var b strings.Builder
	var failures []string
	for _, bw := range base.Workloads {
		for _, br := range bw.Rows {
			cr := placementRow(cur, bw.Workload, br.Config)
			if cr == nil {
				failures = append(failures, fmt.Sprintf(
					"%s/%s missing from current report", bw.Workload, br.Config))
				continue
			}
			fmt.Fprintf(&b, "%-8s %-10s elapsed %v -> %v, calls %d -> %d\n",
				bw.Workload, br.Config, br.Elapsed, cr.Elapsed, br.DemandCalls, cr.DemandCalls)
			if cr.Elapsed > sim.Time(float64(br.Elapsed)*(1+PlacementRegressionTolerance)) {
				failures = append(failures, fmt.Sprintf(
					"%s/%s elapsed regressed: %v vs baseline %v (tolerance %.0f%%)",
					bw.Workload, br.Config, cr.Elapsed, br.Elapsed, PlacementRegressionTolerance*100))
			}
			if float64(cr.DemandCalls) > float64(br.DemandCalls)*(1+PlacementRegressionTolerance) {
				failures = append(failures, fmt.Sprintf(
					"%s/%s demand calls regressed: %d vs baseline %d (tolerance %.0f%%)",
					bw.Workload, br.Config, cr.DemandCalls, br.DemandCalls, PlacementRegressionTolerance*100))
			}
		}
	}
	if ws := placementHeadlineWorkloads(cur); len(ws) == 0 {
		failures = append(failures,
			"combined no longer beats both thread-only and data-only on any workload")
	}
	if len(failures) > 0 {
		return b.String(), fmt.Errorf("placement benchmark regression:\n  %s",
			strings.Join(failures, "\n  "))
	}
	return b.String(), nil
}
