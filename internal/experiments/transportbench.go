package experiments

// Transport throughput comparison: the BENCH_transport.json generator
// and regression gate. Two legs:
//
// Real-TCP leg (wall-clock). The transport bench harness
// (transport.RunBench) hammers echo handlers over real loopback TCP
// sockets under both wire disciplines — the serialized
// one-outstanding-call baseline and the multiplexed pipelined stream —
// and reports the throughput ratio. Each request holds an injected
// service time (BenchOptions.HoldUS), so the ratio measures how much of
// the service schedule the discipline lets overlap, which is stable on
// single-core CI runners (same device as the hotpath gate's
// ServiceHoldUS). The zero-copy claim is measured directly: the
// steady-state mux round trip must stay at ~0 allocs/op.
//
// Heterogeneous leg (deterministic). A verified SOR run over a
// FastSlowTopology on the simulated cluster, recording the virtual-time
// stretch versus the uniform run and the per-directed-link call/byte
// traffic. These are pure virtual-time/counter numbers, so the gate
// compares them byte-for-byte against the committed baseline.

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"actdsm/internal/sim"
	"actdsm/internal/transport"
)

// MinTransportSpeedup is the CI gate's floor for the mux-vs-serialized
// throughput ratio. Generation targets >= 1.5; the gate tolerates noisy
// shared runners down to this floor.
const MinTransportSpeedup = 1.3

// transportRuns is the attempts per discipline; the best throughput of
// each wins, shedding scheduler noise.
const transportRuns = 2

// TransportLink is one directed link's deterministic traffic in the
// heterogeneous leg: protocol calls and wire bytes, without the
// wall-clock latency column of dsm.LinkSnapshot.
type TransportLink struct {
	From  int   `json:"from"`
	To    int   `json:"to"`
	Calls int64 `json:"calls"`
	Bytes int64 `json:"bytes"`
}

// TransportReport is the BENCH_transport.json schema. The Serialized /
// Mux legs and the allocation probe are wall-clock measurements and
// vary between machines; the Hetero* fields are deterministic
// virtual-time results compared exactly.
type TransportReport struct {
	// Serialized is the one-outstanding-call baseline discipline run;
	// Mux is the default pipelined-stream run. Best of transportRuns
	// attempts each, identical workload shape.
	Serialized transport.BenchResult `json:"serialized"`
	Mux        transport.BenchResult `json:"mux"`
	// Speedup is Mux.CallsPerSec / Serialized.CallsPerSec — the number
	// the acceptance criterion and the CI gate check (>= 1.5 at
	// generation time, >= MinTransportSpeedup in CI).
	Speedup float64 `json:"speedup"`
	// SendAllocsPerOp is the steady-state allocation count of one mux
	// round trip with pooled buffers (request frame build + vectored
	// write + reply match); ~0 end to end.
	SendAllocsPerOp float64 `json:"send_allocs_per_op"`
	// SendNSPerOp is the matching wall-clock cost per round trip.
	SendNSPerOp float64 `json:"send_ns_per_op"`

	// Deterministic heterogeneous leg: HeteroApp on HeteroNodes nodes,
	// uniform topology versus a FastSlowTopology, in virtual time.
	HeteroApp   string `json:"hetero_app"`
	HeteroNodes int    `json:"hetero_nodes"`
	// HeteroUniformElapsed / HeteroSlowElapsed are the runs' virtual
	// elapsed times; the slow topology must strictly stretch the run.
	HeteroUniformElapsed sim.Time `json:"hetero_uniform_elapsed"`
	HeteroSlowElapsed    sim.Time `json:"hetero_slow_elapsed"`
	// HeteroLinks is the slow run's per-directed-link traffic, sorted
	// by (from, to).
	HeteroLinks []TransportLink `json:"hetero_links"`
}

// transportHetero is the deterministic leg's shape: SOR (nearest-
// neighbor halo exchange — every link carries traffic) on 4 nodes with
// every 2nd node slow (2x compute cost, 4x link cost).
const (
	transportHeteroApp     = "SOR"
	transportHeteroNodes   = 4
	transportHeteroThreads = 8
)

// TransportComparison runs the real-TCP workload under both wire
// disciplines, probes the steady-state send-path allocation count, and
// runs the deterministic heterogeneous leg.
func TransportComparison() (TransportReport, error) {
	rep := TransportReport{}

	runBest := func(serialized bool) (transport.BenchResult, error) {
		var best transport.BenchResult
		for r := 0; r < transportRuns; r++ {
			res, err := transport.RunBench(transport.BenchOptions{
				Options: transport.Options{Serialized: serialized},
			})
			if err != nil {
				return transport.BenchResult{}, err
			}
			if res.CallsPerSec > best.CallsPerSec {
				best = res
			}
		}
		return best, nil
	}
	var err error
	if rep.Serialized, err = runBest(true); err != nil {
		return rep, fmt.Errorf("transport serialized: %w", err)
	}
	if rep.Mux, err = runBest(false); err != nil {
		return rep, fmt.Errorf("transport mux: %w", err)
	}
	if rep.Serialized.CallsPerSec > 0 {
		rep.Speedup = rep.Mux.CallsPerSec / rep.Serialized.CallsPerSec
	}
	if rep.SendAllocsPerOp, rep.SendNSPerOp, err = transport.MeasureCallAllocs(256, 2000, 20000); err != nil {
		return rep, fmt.Errorf("transport alloc probe: %w", err)
	}

	hetero := func(topo *sim.Topology) (*RunResult, error) {
		return Run(RunConfig{
			App:       transportHeteroApp,
			Threads:   transportHeteroThreads,
			Nodes:     transportHeteroNodes,
			TrackIter: -1,
			Verify:    true,
			Topology:  topo,
		})
	}
	uniform, err := hetero(nil)
	if err != nil {
		return rep, fmt.Errorf("transport hetero uniform: %w", err)
	}
	slowTopo := sim.FastSlowTopology(transportHeteroNodes, sim.Costs{}, 2, 2, 4)
	slow, err := hetero(slowTopo)
	if err != nil {
		return rep, fmt.Errorf("transport hetero slow: %w", err)
	}
	rep.HeteroApp, rep.HeteroNodes = transportHeteroApp, transportHeteroNodes
	rep.HeteroUniformElapsed = uniform.Elapsed
	rep.HeteroSlowElapsed = slow.Elapsed
	for _, l := range slow.Stats.Links {
		rep.HeteroLinks = append(rep.HeteroLinks, TransportLink{
			From: l.From, To: l.To, Calls: l.Calls, Bytes: l.Bytes,
		})
	}
	sort.Slice(rep.HeteroLinks, func(i, j int) bool {
		a, b := rep.HeteroLinks[i], rep.HeteroLinks[j]
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	return rep, nil
}

// FormatTransportReport renders the comparison for the actbench section.
func FormatTransportReport(r TransportReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %6s %8s %8s %9s %12s %12s\n",
		"discipline", "nodes", "callers", "calls", "hold", "calls/sec", "elapsed")
	row := func(name string, res transport.BenchResult) {
		fmt.Fprintf(&b, "%-12s %6d %8d %8d %7dus %12.0f %10.1fms\n",
			name, res.Nodes, res.Callers, res.Calls, res.HoldUS,
			res.CallsPerSec, res.ElapsedMS)
	}
	row("serialized", r.Serialized)
	row("mux", r.Mux)
	fmt.Fprintf(&b, "speedup: %.2fx  (gate: >= %.1fx)\n", r.Speedup, MinTransportSpeedup)
	fmt.Fprintf(&b, "mux round trip: %.2f allocs/op, %.0f ns/op (pooled buffers, steady state)\n",
		r.SendAllocsPerOp, r.SendNSPerOp)
	fmt.Fprintf(&b, "hetero %s x%d: uniform %d, fast/slow %d virtual ns (stretch %.2fx)\n",
		r.HeteroApp, r.HeteroNodes,
		int64(r.HeteroUniformElapsed), int64(r.HeteroSlowElapsed),
		float64(r.HeteroSlowElapsed)/float64(r.HeteroUniformElapsed))
	for _, l := range r.HeteroLinks {
		fmt.Fprintf(&b, "  link %d->%d: %d calls, %d bytes\n", l.From, l.To, l.Calls, l.Bytes)
	}
	return b.String()
}

// TransportReportJSON marshals the report for BENCH_transport.json.
func TransportReportJSON(r TransportReport) ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// CompareTransportReports validates a fresh report against the
// committed baseline. The TCP-leg numbers are wall-clock timings that
// differ between machines, so that half of the gate checks properties
// rather than values: the fresh mux-over-serialized speedup must not
// fall below MinTransportSpeedup and the steady-state round trip must
// stay allocation-free (< 0.5 allocs/op). The heterogeneous leg is
// deterministic virtual time, so it is compared exactly: elapsed times
// and every per-link call/byte count must match the baseline.
func CompareTransportReports(baseline, current []byte) (string, error) {
	var base, cur TransportReport
	if err := json.Unmarshal(baseline, &base); err != nil {
		return "", fmt.Errorf("baseline: %w", err)
	}
	if err := json.Unmarshal(current, &cur); err != nil {
		return "", fmt.Errorf("current: %w", err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "speedup: baseline %.2fx, current %.2fx (floor %.1fx)\n",
		base.Speedup, cur.Speedup, MinTransportSpeedup)
	fmt.Fprintf(&b, "round-trip allocs/op: baseline %.2f, current %.2f (floor 0.5)\n",
		base.SendAllocsPerOp, cur.SendAllocsPerOp)
	fmt.Fprintf(&b, "hetero elapsed: baseline %d/%d, current %d/%d (uniform/slow, exact)\n",
		int64(base.HeteroUniformElapsed), int64(base.HeteroSlowElapsed),
		int64(cur.HeteroUniformElapsed), int64(cur.HeteroSlowElapsed))
	var failures []string
	if cur.Speedup < MinTransportSpeedup {
		failures = append(failures, fmt.Sprintf(
			"mux speedup %.2fx below %.1fx floor", cur.Speedup, MinTransportSpeedup))
	}
	if cur.SendAllocsPerOp >= 0.5 {
		failures = append(failures, fmt.Sprintf(
			"mux round trip allocates %.2f/op on the steady-state path, want ~0",
			cur.SendAllocsPerOp))
	}
	if cur.HeteroSlowElapsed <= cur.HeteroUniformElapsed {
		failures = append(failures, fmt.Sprintf(
			"fast/slow topology did not stretch the run: %d <= %d",
			int64(cur.HeteroSlowElapsed), int64(cur.HeteroUniformElapsed)))
	}
	if cur.HeteroUniformElapsed != base.HeteroUniformElapsed ||
		cur.HeteroSlowElapsed != base.HeteroSlowElapsed {
		failures = append(failures, fmt.Sprintf(
			"deterministic hetero elapsed diverged: uniform %d -> %d, slow %d -> %d",
			int64(base.HeteroUniformElapsed), int64(cur.HeteroUniformElapsed),
			int64(base.HeteroSlowElapsed), int64(cur.HeteroSlowElapsed)))
	}
	if diff := transportLinksDiff(base.HeteroLinks, cur.HeteroLinks); diff != "" {
		failures = append(failures, "deterministic per-link traffic diverged: "+diff)
	}
	if len(failures) > 0 {
		return b.String(), fmt.Errorf("transport benchmark regression:\n  %s",
			strings.Join(failures, "\n  "))
	}
	return b.String(), nil
}

func transportLinksDiff(a, b []TransportLink) string {
	if len(a) != len(b) {
		return fmt.Sprintf("baseline %d rows, current %d rows", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Sprintf(
				"link %d->%d: baseline %d calls/%d bytes, current %d calls/%d bytes",
				a[i].From, a[i].To, a[i].Calls, a[i].Bytes, b[i].Calls, b[i].Bytes)
		}
	}
	return ""
}
