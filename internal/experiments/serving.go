package experiments

// Serving ablation: the BENCH_serving.json generator and regression
// gate. One closed-loop KV serving run (internal/serve) per placement
// configuration, all on the same workload — a tenant-grouped zipfian
// read-mostly mix whose group structure the default block placement
// splits across every node (client c belongs to group c mod Groups
// while blocks of consecutive clients share a node):
//
//   - static: the default placement, untouched for the whole run.
//   - mincost: active correlation tracking over window 0, then one
//     min-cost re-placement at the first window boundary — groups
//     co-locate before the measurement span opens.
//   - homemig: mincost plus home migration and lock-grant forwarding,
//     so page homes chase the co-located writers.
//
// Every number is virtual-time deterministic, so the gate both bounds
// drift against the committed baseline and asserts the headline claim
// of the serving experiment: home migration beats static placement on
// p99 latency.

import (
	"encoding/json"
	"fmt"
	"strings"

	"actdsm/internal/core"
	"actdsm/internal/dsm"
	"actdsm/internal/memlayout"
	"actdsm/internal/placement"
	"actdsm/internal/serve"
	"actdsm/internal/sim"
	"actdsm/internal/threads"
)

// ServingRow is one placement configuration's measurements.
type ServingRow struct {
	// Config names the placement variant: static, mincost, or homemig.
	Config string `json:"config"`

	QPS  float64  `json:"qps"`
	P50  sim.Time `json:"p50"`
	P99  sim.Time `json:"p99"`
	P999 sim.Time `json:"p999"`

	Requests       int64    `json:"requests"`
	RemoteMisses   int64    `json:"remote_misses"`
	LockAcquires   int64    `json:"lock_acquires"`
	LockForwards   int64    `json:"lock_forwards"`
	HomeMigrations int64    `json:"home_migrations"`
	Elapsed        sim.Time `json:"elapsed"`
}

// ServingReport is the BENCH_serving.json schema.
type ServingReport struct {
	Clients      int          `json:"clients"`
	Nodes        int          `json:"nodes"`
	Keys         int          `json:"keys"`
	ReadFraction float64      `json:"read_fraction"`
	ZipfS        float64      `json:"zipf_s"`
	Rows         []ServingRow `json:"rows"`
}

// servingBenchNodes is the ablation's cluster size.
const servingBenchNodes = 4

// servingBenchConfig is the workload every variant runs: 16 clients in
// 4 tenant groups over 256 keys at 512 bytes each (8 keys per page, 32
// pages), read-mostly zipfian with 10% cross-group sharing, 2 warmup +
// 4 measured windows at saturation.
func servingBenchConfig() serve.Config {
	return serve.Config{
		Clients:           16,
		Keys:              256,
		ValueBytes:        512,
		ReadFraction:      0.9,
		ZipfS:             1.1,
		Groups:            4,
		SharedFraction:    0.1,
		RequestsPerWindow: 64,
		WarmupWindows:     2,
		MeasureWindows:    4,
		Seed:              7,
	}
}

// servingVariant describes one ablation leg.
type servingVariant struct {
	name          string
	replace       bool // min-cost re-placement after the tracked window
	homeMigration bool
}

// runServing executes one serving run under the given variant and
// returns its row. The wiring mirrors System.RunContext (this package
// cannot import the facade): serving hooks wrap the migration hook,
// and the tracker wraps all, so the tracker's window-0 matrix is
// complete when the migration hook fires at the first window boundary.
func runServing(v servingVariant) (ServingRow, error) {
	row := ServingRow{Config: v.name}
	kv, err := serve.NewKV(servingBenchConfig())
	if err != nil {
		return row, fmt.Errorf("serving %s: %w", v.name, err)
	}
	layout := memlayout.NewLayout()
	if err := kv.Setup(layout); err != nil {
		return row, fmt.Errorf("serving %s: %w", v.name, err)
	}
	cl, err := dsm.New(dsm.Config{
		Nodes:         servingBenchNodes,
		Pages:         layout.TotalPages(),
		BatchDiffs:    true,
		HomeMigration: v.homeMigration,
	})
	if err != nil {
		return row, fmt.Errorf("serving %s: %w", v.name, err)
	}
	defer func() { _ = cl.Close() }()
	eng, err := threads.NewEngine(cl, threads.Config{
		Threads:          kv.Threads(),
		SchedulerEnabled: true,
	})
	if err != nil {
		return row, fmt.Errorf("serving %s: %w", v.name, err)
	}

	var tracker *core.ActiveTracker
	var inner threads.Hooks
	if v.replace {
		tracker = core.NewActiveTracker(eng, 0)
		tr := tracker
		inner.OnIteration = func(iter int) {
			if iter != 0 {
				return
			}
			target := placement.MinCost(tr.Matrix(), servingBenchNodes)
			aligned := placement.AlignLabels(target, eng.Placement(), servingBenchNodes)
			if _, err := eng.ApplyPlacement(aligned); err != nil {
				panic(fmt.Sprintf("serving %s: apply placement: %v", v.name, err))
			}
		}
	}
	hooks := kv.ServingHooks(inner, eng.Elapsed, cl.Stats().Snapshot)
	if tracker != nil {
		hooks = tracker.Hooks(hooks)
	}
	eng.SetHooks(hooks)
	if tracker != nil {
		tracker.Start()
	}
	if err := eng.Run(kv.Body); err != nil {
		return row, fmt.Errorf("serving %s: %w", v.name, err)
	}
	rep, err := kv.Report()
	if err != nil {
		return row, fmt.Errorf("serving %s: %w", v.name, err)
	}
	row.QPS = rep.QPS
	row.P50, row.P99, row.P999 = rep.P50, rep.P99, rep.P999
	row.Requests = rep.Requests
	row.RemoteMisses = rep.RemoteMisses
	row.LockAcquires = rep.LockAcquires
	row.LockForwards = rep.LockForwards
	row.HomeMigrations = rep.HomeMigrations
	row.Elapsed = rep.Elapsed
	return row, nil
}

// ServingComparison measures every placement variant on the shared
// workload and assembles the report.
func ServingComparison() (ServingReport, error) {
	cfg := servingBenchConfig()
	rep := ServingReport{
		Clients:      cfg.Clients,
		Nodes:        servingBenchNodes,
		Keys:         cfg.Keys,
		ReadFraction: cfg.ReadFraction,
		ZipfS:        cfg.ZipfS,
	}
	variants := []servingVariant{
		{name: "static"},
		{name: "mincost", replace: true},
		{name: "homemig", replace: true, homeMigration: true},
	}
	for _, v := range variants {
		row, err := runServing(v)
		if err != nil {
			return rep, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// servingRow returns the named row, or nil.
func servingRow(r ServingReport, name string) *ServingRow {
	for i := range r.Rows {
		if r.Rows[i].Config == name {
			return &r.Rows[i]
		}
	}
	return nil
}

// FormatServingReport renders the comparison for the actbench section.
func FormatServingReport(r ServingReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "KV serving, %d clients / %d nodes, %d keys, %.0f%% reads, zipf s=%.1f:\n",
		r.Clients, r.Nodes, r.Keys, r.ReadFraction*100, r.ZipfS)
	fmt.Fprintf(&b, "%-10s %12s %10s %10s %10s %10s %9s %9s\n",
		"config", "QPS", "p50", "p99", "p999", "misses", "lockfwd", "homemig")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %12.0f %10v %10v %10v %10d %9d %9d\n",
			row.Config, row.QPS, row.P50, row.P99, row.P999,
			row.RemoteMisses, row.LockForwards, row.HomeMigrations)
	}
	if s, h := servingRow(r, "static"), servingRow(r, "homemig"); s != nil && h != nil && s.P99 > 0 {
		fmt.Fprintf(&b, "homemig p99 is %.2fx static (gate: < 1.0)\n",
			float64(h.P99)/float64(s.P99))
	}
	return b.String()
}

// ServingReportJSON marshals the report for BENCH_serving.json.
func ServingReportJSON(r ServingReport) ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// ServingRegressionTolerance bounds the gate: each variant's fresh QPS
// must stay within 5% below its committed baseline and fresh p99 within
// 5% above it. The run is virtual-time deterministic, so any drift is a
// real behavior change — the margin only keeps intentional small
// protocol refinements from forcing a baseline regeneration.
const ServingRegressionTolerance = 0.05

// CompareServingReports validates a fresh report against the committed
// baseline: per-variant QPS and p99 within tolerance, and the serving
// experiment's headline property — home migration beats static
// placement on p99 — must hold in the fresh measurements.
func CompareServingReports(baseline, current []byte) (string, error) {
	var base, cur ServingReport
	if err := json.Unmarshal(baseline, &base); err != nil {
		return "", fmt.Errorf("baseline: %w", err)
	}
	if err := json.Unmarshal(current, &cur); err != nil {
		return "", fmt.Errorf("current: %w", err)
	}
	var b strings.Builder
	var failures []string
	for _, br := range base.Rows {
		cr := servingRow(cur, br.Config)
		if cr == nil {
			failures = append(failures, fmt.Sprintf("variant %q missing from current report", br.Config))
			continue
		}
		fmt.Fprintf(&b, "%-10s QPS %.0f -> %.0f, p99 %v -> %v\n",
			br.Config, br.QPS, cr.QPS, br.P99, cr.P99)
		if cr.QPS < br.QPS*(1-ServingRegressionTolerance) {
			failures = append(failures, fmt.Sprintf(
				"%s throughput regressed: %.0f QPS vs baseline %.0f (tolerance %.0f%%)",
				br.Config, cr.QPS, br.QPS, ServingRegressionTolerance*100))
		}
		if br.P99 > 0 && cr.P99 > sim.Time(float64(br.P99)*(1+ServingRegressionTolerance)) {
			failures = append(failures, fmt.Sprintf(
				"%s p99 regressed: %v vs baseline %v (tolerance %.0f%%)",
				br.Config, cr.P99, br.P99, ServingRegressionTolerance*100))
		}
	}
	s, h := servingRow(cur, "static"), servingRow(cur, "homemig")
	switch {
	case s == nil || h == nil:
		failures = append(failures, "current report lacks the static/homemig pair")
	case h.P99 >= s.P99:
		failures = append(failures, fmt.Sprintf(
			"home migration no longer beats static placement on p99: %v vs %v", h.P99, s.P99))
	case h.QPS <= s.QPS:
		failures = append(failures, fmt.Sprintf(
			"home migration no longer beats static placement on throughput: %.0f vs %.0f QPS", h.QPS, s.QPS))
	}
	if len(failures) > 0 {
		return b.String(), fmt.Errorf("serving benchmark regression:\n  %s",
			strings.Join(failures, "\n  "))
	}
	return b.String(), nil
}
