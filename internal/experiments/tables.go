package experiments

import (
	"fmt"
	"strings"

	"actdsm/internal/apps"
	"actdsm/internal/core"
	"actdsm/internal/placement"
	"actdsm/internal/sim"
	"actdsm/internal/stats"
)

// PaperApps lists the applications in the order of the paper's Table 1.
var PaperApps = []string{
	"Barnes", "FFT6", "FFT7", "FFT8", "LU1k", "LU2k",
	"Ocean", "Spatial", "SOR", "Water",
}

// Table6Apps lists the applications the paper's Table 6 reports.
var Table6Apps = []string{"Barnes", "FFT7", "LU1k", "Ocean", "Spatial", "SOR", "Water"}

// Options configures the experiment suite.
type Options struct {
	// Scale selects the input class; ScaleTest runs in seconds.
	Scale apps.Scale
	// Threads is the application thread count (paper: 64).
	Threads int
	// Nodes is the cluster size (paper: 8).
	Nodes int
	// RandomConfigs is the number of random placements for Table 2
	// (paper: 300).
	RandomConfigs int
	// Seed feeds all randomized pieces.
	Seed uint64
	// Apps restricts the suite to a subset (nil = paper set).
	Apps []string
}

// Defaults fills unset options with paper values (test scale).
func (o Options) Defaults() Options {
	if o.Scale == 0 {
		o.Scale = apps.ScaleTest
	}
	if o.Threads == 0 {
		o.Threads = 64
	}
	if o.Nodes == 0 {
		o.Nodes = 8
	}
	if o.RandomConfigs == 0 {
		o.RandomConfigs = 60
		if o.Scale == apps.ScalePaper {
			o.RandomConfigs = 300
		}
	}
	if o.Seed == 0 {
		o.Seed = 1999
	}
	if o.Apps == nil {
		o.Apps = PaperApps
	}
	return o
}

// ---------------------------------------------------------------------------
// Table 1: application characteristics.

// Table1Row mirrors a row of the paper's Table 1.
type Table1Row struct {
	App         string
	Sync        string
	Input       string
	SharedPages int
}

// appMeta carries the static columns of Table 1.
var appMeta = map[string]struct{ sync, paperInput, testInput string }{
	"Barnes":  {"barrier, lock", "8192 bodies", "512 bodies"},
	"FFT6":    {"barrier", "2^18 points", "2^16 points"},
	"FFT7":    {"barrier", "2^19 points", "2^17 points"},
	"FFT8":    {"barrier", "2^20 points", "2^18 points"},
	"LU1k":    {"barrier", "1024x1024", "128x128"},
	"LU2k":    {"barrier", "2048x2048", "256x256"},
	"Ocean":   {"barrier, lock", "258x258 x24", "66x66 x3"},
	"Spatial": {"barrier, lock", "4096 mols", "512 mols"},
	"SOR":     {"barrier", "2048x2048", "128x128"},
	"Water":   {"barrier, lock", "512 mols", "256 mols"},
}

// Table1 reports each application's synchronization kinds, input, and
// shared-page count.
func Table1(o Options) ([]Table1Row, error) {
	o = o.Defaults()
	rows := make([]Table1Row, 0, len(o.Apps))
	for _, name := range o.Apps {
		a, err := apps.New(name, apps.Config{Threads: o.Threads, Scale: o.Scale})
		if err != nil {
			return nil, err
		}
		pages, err := apps.SharedPages(a)
		if err != nil {
			return nil, err
		}
		meta := appMeta[name]
		input := meta.testInput
		if o.Scale == apps.ScalePaper {
			input = meta.paperInput
		}
		rows = append(rows, Table1Row{App: name, Sync: meta.sync, Input: input, SharedPages: pages})
	}
	return rows, nil
}

// FormatTable1 renders Table 1 rows in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s  %-15s  %-12s  %s\n", "App", "Synchronization", "Input", "Shared Pages")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s  %-15s  %-12s  %d\n", r.App, r.Sync, r.Input, r.SharedPages)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 2 + Figure 1: remote misses as a function of cut cost.

// Table2Row mirrors a row of the paper's Table 2, plus the raw scatter
// points (Figure 1's series for that application).
type Table2Row struct {
	App       string
	Slope     float64
	Intercept float64
	R         float64
	// CutCosts and RemoteMisses are the Figure 1 scatter for this app.
	CutCosts     []float64
	RemoteMisses []float64
}

// Table2 measures, for each application, remote misses over randomly
// generated thread configurations and regresses them on the cut costs
// predicted by actively tracked thread correlations.
func Table2(o Options) ([]Table2Row, error) {
	o = o.Defaults()
	rng := sim.NewRNG(o.Seed)
	rows := make([]Table2Row, 0, len(o.Apps))
	for _, name := range o.Apps {
		m, err := TrackMatrix(name, o.Threads, o.Nodes, o.Scale)
		if err != nil {
			return nil, fmt.Errorf("table2 %s: %w", name, err)
		}
		row := Table2Row{App: name}
		appRng := rng.Split()
		for c := 0; c < o.RandomConfigs; c++ {
			// The paper's methodology: random placements, not
			// necessarily balanced, no node below two threads.
			assign, err := placement.RandomMin(o.Threads, o.Nodes, 2, appRng)
			if err != nil {
				return nil, err
			}
			res, err := Run(RunConfig{
				App: name, Threads: o.Threads, Nodes: o.Nodes,
				Scale: o.Scale, Iterations: 3, TrackIter: -1,
				Placement: assign,
			})
			if err != nil {
				return nil, fmt.Errorf("table2 %s cfg %d: %w", name, c, err)
			}
			misses, _ := steadyIterStats(res, 1)
			row.CutCosts = append(row.CutCosts, float64(m.CutCost(assign)))
			row.RemoteMisses = append(row.RemoteMisses, misses)
		}
		fit, err := stats.Fit(row.CutCosts, row.RemoteMisses)
		if err != nil {
			return nil, fmt.Errorf("table2 %s fit: %w", name, err)
		}
		row.Slope, row.Intercept, row.R = fit.Slope, fit.Intercept, fit.R
		rows = append(rows, row)
	}
	return rows, nil
}

// Table2CSV emits the Figure 1 scatter series as CSV (app, cut cost,
// remote misses — one row per random configuration) for external
// plotting.
func Table2CSV(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("app,cut_cost,remote_misses\n")
	for _, r := range rows {
		for i := range r.CutCosts {
			fmt.Fprintf(&b, "%s,%.0f,%.0f\n", r.App, r.CutCosts[i], r.RemoteMisses[i])
		}
	}
	return b.String()
}

// FormatTable2 renders Table 2 rows in the paper's layout.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s  %9s  %12s  %s\n", "App", "Slope", "Y-intercept", "Correlation Coefficient")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s  %9.3f  %12.1f  %.3f\n", r.App, r.Slope, r.Intercept, r.R)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 3: correlation maps by thread count.

// MapResult is one rendered correlation map.
type MapResult struct {
	App     string
	Threads int
	Matrix  *core.Matrix
	ASCII   string
}

// Table3 produces correlation maps for 32-, 48-, and 64-thread
// configurations of each application.
func Table3(o Options) ([]MapResult, error) {
	o = o.Defaults()
	var out []MapResult
	for _, name := range o.Apps {
		for _, nt := range []int{32, 48, 64} {
			m, err := TrackMatrix(name, nt, o.Nodes, o.Scale)
			if err != nil {
				return nil, fmt.Errorf("table3 %s/%d: %w", name, nt, err)
			}
			out = append(out, MapResult{App: name, Threads: nt, Matrix: m, ASCII: m.RenderASCII()})
		}
	}
	return out, nil
}

// Table4 produces 64-thread FFT correlation maps across the three input
// sizes (the paper's Table 4).
func Table4(o Options) ([]MapResult, error) {
	o = o.Defaults()
	var out []MapResult
	for _, name := range []string{"FFT6", "FFT7", "FFT8"} {
		m, err := TrackMatrix(name, o.Threads, o.Nodes, o.Scale)
		if err != nil {
			return nil, fmt.Errorf("table4 %s: %w", name, err)
		}
		out = append(out, MapResult{App: name, Threads: o.Threads, Matrix: m, ASCII: m.RenderASCII()})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Table 5: tracking overhead.

// Table5Row mirrors a row of the paper's Table 5.
type Table5Row struct {
	App            string
	IterOff        sim.Time
	IterOn         sim.Time
	SlowdownPct    float64
	TrackingFaults int64
	CohFaults      int64
	SharingDegree  float64
}

// Table5 measures the cost of one actively tracked iteration against the
// same iteration of an untracked run (two runs, so applications with
// inhomogeneous iterations — LU's shrinking elimination steps — compare
// like with like), with the paper's 8-threads-per-node layout.
func Table5(o Options) ([]Table5Row, error) {
	o = o.Defaults()
	rows := make([]Table5Row, 0, len(o.Apps))
	for _, name := range o.Apps {
		// GC is disabled for both runs so collection rounds (which
		// fire at protocol-dependent barriers) don't confound the
		// tracked-vs-untracked comparison.
		base, err := Run(RunConfig{
			App: name, Threads: o.Threads, Nodes: o.Nodes,
			Scale: o.Scale, Iterations: 4, TrackIter: -1,
			GCThresholdBytes: -1,
		})
		if err != nil {
			return nil, fmt.Errorf("table5 %s baseline: %w", name, err)
		}
		res, err := Run(RunConfig{
			App: name, Threads: o.Threads, Nodes: o.Nodes,
			Scale: o.Scale, Iterations: 4, TrackIter: 2,
			GCThresholdBytes: -1,
		})
		if err != nil {
			return nil, fmt.Errorf("table5 %s: %w", name, err)
		}
		if len(res.IterTime) < 4 || len(base.IterTime) < 4 {
			return nil, fmt.Errorf("table5 %s: only %d iterations", name, len(res.IterTime))
		}
		// Iteration 2 tracked vs iteration 2 untracked.
		off := base.IterTime[2]
		on := res.IterTime[2]
		slow := 0.0
		if off > 0 {
			slow = 100 * (float64(on)/float64(off) - 1)
		}
		rows = append(rows, Table5Row{
			App:            name,
			IterOff:        off,
			IterOn:         on,
			SlowdownPct:    slow,
			TrackingFaults: res.IterStats[2].TrackingFaults,
			CohFaults:      res.IterStats[2].CoherenceFaults,
			SharingDegree:  res.Tracker.SharingDegree(),
		})
	}
	return rows, nil
}

// FormatTable5 renders Table 5 rows in the paper's layout.
func FormatTable5(rows []Table5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s  %10s  %10s  %9s  %9s  %9s  %7s\n",
		"App", "Off (s)", "On (s)", "Slowdown", "Tracking", "Coherence", "Degree")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s  %10.4f  %10.4f  %8.2f%%  %9d  %9d  %7.3f\n",
			r.App, r.IterOff.Seconds(), r.IterOn.Seconds(), r.SlowdownPct,
			r.TrackingFaults, r.CohFaults, r.SharingDegree)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 6: 8-node performance by heuristic.

// Table6Row mirrors one (application, heuristic) row of the paper's
// Table 6.
type Table6Row struct {
	App          string
	Heuristic    string // "m-c" or "ran"
	Time         sim.Time
	RemoteMisses int64
	TotalMB      float64
	DiffMB       float64
	CutCost      int64
}

// Table6 compares min-cost placements (from actively tracked
// correlations) against random placements.
func Table6(o Options) ([]Table6Row, error) {
	o = o.Defaults()
	names := o.Apps
	if len(names) == len(PaperApps) {
		names = Table6Apps
	}
	rng := sim.NewRNG(o.Seed + 6)
	iters := 5
	var rows []Table6Row
	for _, name := range names {
		m, err := TrackMatrix(name, o.Threads, o.Nodes, o.Scale)
		if err != nil {
			return nil, fmt.Errorf("table6 %s: %w", name, err)
		}
		mc := placement.MinCost(m, o.Nodes)
		ran := placement.RandomBalanced(o.Threads, o.Nodes, rng)
		for _, h := range []struct {
			label  string
			assign []int
		}{{"m-c", mc}, {"ran", ran}} {
			res, err := Run(RunConfig{
				App: name, Threads: o.Threads, Nodes: o.Nodes,
				Scale: o.Scale, Iterations: iters, TrackIter: -1,
				Placement: h.assign,
			})
			if err != nil {
				return nil, fmt.Errorf("table6 %s/%s: %w", name, h.label, err)
			}
			rows = append(rows, Table6Row{
				App:          name,
				Heuristic:    h.label,
				Time:         res.Elapsed,
				RemoteMisses: res.Stats.RemoteMisses,
				TotalMB:      float64(res.Stats.BytesTotal) / 1e6,
				DiffMB:       float64(res.Stats.BytesDiff) / 1e6,
				CutCost:      m.CutCost(h.assign),
			})
		}
	}
	return rows, nil
}

// FormatTable6 renders Table 6 rows in the paper's layout.
func FormatTable6(rows []Table6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-4s %10s %12s %10s %10s %10s\n",
		"App", "Heur", "Time (s)", "RemoteMiss", "Total MB", "Diff MB", "Cut Cost")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-4s %10.4f %12d %10.2f %10.2f %10d\n",
			r.App, r.Heuristic, r.Time.Seconds(), r.RemoteMisses, r.TotalMB, r.DiffMB, r.CutCost)
	}
	return b.String()
}
