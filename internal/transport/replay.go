package transport

import "sync"

// Deterministic chaos-plan replay.
//
// The pinned-numbering contract: a chaos Plan is keyed by the 1-based
// global call sequence number, so a plan is only replayable if that
// numbering is a pure function of the workload and the plan itself.
// The DSM layer guarantees this under SerialFanOut — fan-outs issue
// calls in index order on one goroutine — together with its whole-phase
// retry rule: when any call of a broadcast phase (barrier enter,
// barrier release, GC collect) fails, the phase's surviving calls still
// run in their fixed order and the entire phase is re-broadcast, rather
// than retrying just the failed call. Tree barriers preserve the
// contract the same way: the edge order (level by level, index order
// within a level) is fixed, every edge runs even after an earlier edge
// fails, and a failure retries the whole phase. Injecting a fault at
// call N therefore shifts later numbering identically on every run,
// and two runs with the same workload, config, and Plan produce the
// same call trace — which RecordingPlan captures for comparison.

// CallRecord is one transport call as observed by a recording chaos
// plan: its endpoints, message kind (the payload's first byte), global
// 1-based sequence number, and the fault the wrapped plan injected.
type CallRecord struct {
	From, To int
	Kind     byte
	Call     int64
	Fault    Fault
}

// CallLog accumulates the call records of a RecordingPlan. Safe for
// concurrent use (chaos plans may be called from parallel fan-outs).
type CallLog struct {
	mu   sync.Mutex
	recs []CallRecord
}

// Records returns a copy of the recorded calls in observation order.
func (l *CallLog) Records() []CallRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]CallRecord(nil), l.recs...)
}

// Len returns the number of recorded calls.
func (l *CallLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// RecordingPlan wraps a chaos Plan so that every call it classifies is
// appended to log, capturing the run's full (from, to, kind, call,
// fault) trace. A nil plan records every call with FaultNone injected —
// a pure tracer. Use two logs over two identical runs to assert the
// pinned-numbering contract above.
func RecordingPlan(plan func(from, to int, payload []byte, call int64) Fault, log *CallLog) func(from, to int, payload []byte, call int64) Fault {
	return func(from, to int, payload []byte, call int64) Fault {
		f := FaultNone
		if plan != nil {
			f = plan(from, to, payload, call)
		}
		var kind byte
		if len(payload) > 0 {
			kind = payload[0]
		}
		log.mu.Lock()
		log.recs = append(log.recs, CallRecord{From: from, To: to, Kind: kind, Call: call, Fault: f})
		log.mu.Unlock()
		return f
	}
}
