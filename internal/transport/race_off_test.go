//go:build !race

package transport

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions skip under it (instrumentation allocates).
const raceEnabled = false
