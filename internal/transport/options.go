package transport

import (
	"sync"
	"time"

	"actdsm/internal/sim"
)

// Options tunes call resilience. The zero value reproduces the historical
// behaviour: no deadline, a single attempt, no retries.
type Options struct {
	// CallTimeout bounds one call attempt end to end (write + reply
	// read) on the TCP transport. Zero means no deadline. A timed-out
	// connection is dropped and redialed on the next attempt, because a
	// half-read frame leaves the stream unsynchronized.
	CallTimeout time.Duration
	// MaxAttempts is the total number of attempts per Call made by the
	// WithRetry wrapper, including the first; values <= 1 disable
	// retries. Only failures Retryable reports true for are retried:
	// injected faults, network errors, and truncated streams.
	MaxAttempts int
	// BackoffBase is the mean delay before the first retry. Each further
	// retry doubles it, capped at BackoffMax. Defaults to 500µs.
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff. Defaults to 50ms.
	BackoffMax time.Duration
	// JitterSeed seeds the deterministic jitter generator (sim.RNG);
	// each sleep is uniform in [backoff/2, backoff). Defaults to 1.
	JitterSeed uint64
	// OnRetry, if non-nil, is invoked before each retry sleep with the
	// 1-based number of the attempt that just failed. It must not
	// block; the DSM layer uses it to count retries per message type.
	OnRetry func(from, to, attempt int, payload []byte, err error)
	// Serialized selects the pre-multiplexing connection discipline on
	// the TCP transport: one connection per (from, to) pair carrying one
	// outstanding call at a time, with a fresh round trip per call. The
	// default (false) multiplexes every pair's calls over one pipelined
	// stream with tagged request IDs and out-of-order reply matching —
	// strictly faster under concurrent callers. The serialized mode is
	// kept as the transport benchmark's baseline (BENCH_transport.json)
	// and as a conservative fallback.
	Serialized bool
	// CompressMin, when positive, deflate-compresses multiplexed frame
	// payloads of at least this many bytes (both requests and replies;
	// in the DSM's traffic only diff, page, and push payloads reach
	// realistic thresholds). Compression trades CPU and a few
	// allocations per large frame for wire bytes, so it pays on
	// constrained links, not on loopback. 0 disables it. The serialized
	// discipline ignores the knob.
	CompressMin int
	// MuxWorkers bounds concurrent handler executions per inbound
	// multiplexed connection (the server-side pipelining depth). 0
	// selects the default (8).
	MuxWorkers int
}

// muxWorkers returns the effective MuxWorkers value.
func (o Options) muxWorkers() int {
	if o.MuxWorkers > 0 {
		return o.MuxWorkers
	}
	return 8
}

// withDefaults fills zero fields with the documented defaults.
func (o Options) withDefaults() Options {
	if o.BackoffBase <= 0 {
		o.BackoffBase = 500 * time.Microsecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 50 * time.Millisecond
	}
	if o.BackoffMax < o.BackoffBase {
		o.BackoffMax = o.BackoffBase
	}
	if o.JitterSeed == 0 {
		o.JitterSeed = 1
	}
	return o
}

// WithRetry wraps inner with bounded retry: transient failures
// (Retryable) are retried up to o.MaxAttempts total attempts with
// exponential backoff and jitter. Non-retryable failures and exhausted
// budgets return the last error. If o.MaxAttempts <= 1 the inner
// transport is returned unchanged.
//
// Retries re-send the request, so the receiver may execute it more than
// once (e.g. when only the reply was lost); layer this wrapper only over
// idempotent protocols. The DSM's barrier, lock, GC and fetch messages
// all are — see DESIGN.md §6.
func WithRetry(inner Transport, o Options) Transport {
	if o.MaxAttempts <= 1 {
		return inner
	}
	o = o.withDefaults()
	return &retrier{inner: inner, o: o, rng: sim.NewRNG(o.JitterSeed)}
}

// retrier is the WithRetry implementation.
type retrier struct {
	inner Transport
	o     Options

	mu  sync.Mutex // guards rng
	rng *sim.RNG
}

// Call implements Transport.
func (r *retrier) Call(from, to int, payload []byte) ([]byte, error) {
	backoff := r.o.BackoffBase
	for attempt := 1; ; attempt++ {
		reply, err := r.inner.Call(from, to, payload)
		if err == nil || attempt >= r.o.MaxAttempts || !Retryable(err) {
			return reply, err
		}
		if r.o.OnRetry != nil {
			r.o.OnRetry(from, to, attempt, payload, err)
		}
		time.Sleep(r.jitter(backoff))
		if backoff *= 2; backoff > r.o.BackoffMax {
			backoff = r.o.BackoffMax
		}
	}
}

// jitter draws a deterministic sleep uniform in [d/2, d).
func (r *retrier) jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := int64(d) / 2
	r.mu.Lock()
	j := int64(r.rng.Uint64() % uint64(half))
	r.mu.Unlock()
	return time.Duration(half + j)
}

// Close implements Transport.
func (r *retrier) Close() error { return r.inner.Close() }

// Unwrap returns the wrapped transport (see Base).
func (r *retrier) Unwrap() Transport { return r.inner }
