package transport

import (
	"bytes"
	"compress/flate"
	"io"
	"sync"

	"actdsm/internal/msg"
)

// Optional frame compression for the multiplexed discipline
// (Options.CompressMin). Deflate state is pooled in both directions so
// compressing a large diff/push payload costs CPU, not steady-state
// allocations.

// deflater pairs a flate writer with its output buffer.
type deflater struct {
	buf bytes.Buffer
	fw  *flate.Writer
}

var deflaters = sync.Pool{New: func() any {
	d := &deflater{}
	d.fw, _ = flate.NewWriter(&d.buf, flate.BestSpeed) // valid level: no error
	return d
}}

// deflateFrame compresses src into a pooled buffer. It reports false
// when compression does not shrink the payload — incompressible data
// travels verbatim, so the receiver never inflates in vain.
func deflateFrame(src []byte) ([]byte, bool) {
	d := deflaters.Get().(*deflater)
	d.buf.Reset()
	d.fw.Reset(&d.buf)
	_, werr := d.fw.Write(src)
	cerr := d.fw.Close()
	if werr != nil || cerr != nil || d.buf.Len() >= len(src) {
		deflaters.Put(d)
		return nil, false
	}
	out := getFrameBuf(d.buf.Len())
	copy(out, d.buf.Bytes())
	deflaters.Put(d)
	return out, true
}

// inflater pairs a flate reader with its source reader.
type inflater struct {
	src bytes.Reader
	fr  io.ReadCloser
}

var inflaters = sync.Pool{New: func() any {
	i := &inflater{}
	i.fr = flate.NewReader(&i.src)
	return i
}}

// inflateFrame decompresses src into a pooled buffer, bounded by
// maxFrame so a corrupt peer cannot force an unbounded allocation.
func inflateFrame(src []byte) ([]byte, error) {
	i := inflaters.Get().(*inflater)
	defer inflaters.Put(i)
	i.src.Reset(src)
	if err := i.fr.(flate.Resetter).Reset(&i.src, nil); err != nil {
		return nil, err
	}
	out := msg.GetBuf()
	for {
		if len(out) == cap(out) {
			if cap(out) >= maxFrame {
				msg.PutBuf(out)
				return nil, ErrFrameTooLarge
			}
			out = append(out, 0)[:len(out)] // grow capacity only
		}
		n, err := i.fr.Read(out[len(out):cap(out)])
		out = out[:len(out)+n]
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			msg.PutBuf(out)
			return nil, err
		}
	}
}
