package transport

// Concurrency suite for the multiplexed wire discipline. Everything
// here is meant to run under -race: pipelined calls from many
// goroutines, deliberately interleaved replies, a connection torn down
// mid-pipeline, chaos faults over the mux, and the wire-level
// compression path. The serialized-discipline analogues live in
// resilience_test.go.

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"actdsm/internal/msg"
)

// TestMuxPipelinedManyGoroutines floods shared (from,to) pairs with
// concurrent callers and verifies every reply matches its own request —
// the request-ID matching must never cross-deliver under pipelining.
func TestMuxPipelinedManyGoroutines(t *testing.T) {
	const nodes, callers, perCaller = 4, 32, 40
	tr, err := NewTCP(echoHandlers(nodes))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for w := 0; w < callers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			to := 1 + w%(nodes-1)
			for i := 0; i < perCaller; i++ {
				req := fmt.Sprintf("w%d-i%d", w, i)
				got, err := tr.Call(0, to, []byte(req))
				if err != nil {
					errs <- err
					return
				}
				want := fmt.Sprintf("n%d<-0:%s", to, req)
				if string(got) != want {
					errs <- fmt.Errorf("cross-matched reply: got %q, want %q", got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestMuxInterleavedReplies makes later requests finish first: each
// payload carries its own service delay, and a batch is issued with
// descending delays so the replies come back in reverse send order.
// Every caller must still receive exactly its own echo.
func TestMuxInterleavedReplies(t *testing.T) {
	hs := []Handler{nil, func(from int, p []byte) ([]byte, error) {
		time.Sleep(time.Duration(p[0]) * time.Millisecond)
		return append([]byte(nil), p...), nil
	}}
	hs[0] = hs[1]
	tr, err := NewTCP(hs)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	const batch = 8
	var wg sync.WaitGroup
	errs := make(chan error, batch)
	start := make(chan struct{})
	for i := 0; i < batch; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// First byte is the delay in ms: earlier i → longer hold.
			req := []byte{byte((batch - i) * 5), byte(i), 0xAB}
			<-start
			// Stagger sends so request i is on the wire before i+1.
			time.Sleep(time.Duration(i) * time.Millisecond)
			got, err := tr.Call(0, 1, req)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, req) {
				errs <- fmt.Errorf("call %d: got % x, want % x", i, got, req)
			}
		}(i)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestMuxReconnectMidPipeline tears the raw socket down while a
// pipeline of calls is in flight. In-flight calls fail with a retryable
// error, WithRetry redials, and no call is lost or cross-matched.
func TestMuxReconnectMidPipeline(t *testing.T) {
	var slow atomic.Bool
	hs := make([]Handler, 2)
	for i := range hs {
		hs[i] = func(from int, p []byte) ([]byte, error) {
			if slow.Load() {
				time.Sleep(2 * time.Millisecond)
			}
			return append([]byte(nil), p...), nil
		}
	}
	base, err := NewTCP(hs)
	if err != nil {
		t.Fatal(err)
	}
	tr := WithRetry(base, Options{MaxAttempts: 6})
	defer func() { _ = tr.Close() }()
	if _, err := tr.Call(0, 1, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	slow.Store(true)

	const callers, perCaller = 16, 25
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for w := 0; w < callers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perCaller; i++ {
				req := []byte(fmt.Sprintf("w%d-i%d", w, i))
				got, err := tr.Call(0, 1, req)
				if err != nil {
					errs <- fmt.Errorf("w%d i%d: %v", w, i, err)
					return
				}
				if !bytes.Equal(got, req) {
					errs <- fmt.Errorf("w%d i%d: got %q", w, i, got)
					return
				}
			}
		}(w)
	}
	// Repeatedly close the live socket out from under the pipeline.
	for k := 0; k < 3; k++ {
		time.Sleep(10 * time.Millisecond)
		base.mu.Lock()
		mc := base.muxes[[2]int{0, 1}]
		base.mu.Unlock()
		if mc != nil {
			_ = mc.conn.Close()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestMuxChaosDropDelay runs seeded drops and delays over the mux
// discipline: every call must still succeed (drops surface as retryable
// injected faults), and every reply must match its request.
func TestMuxChaosDropDelay(t *testing.T) {
	base, err := NewTCP(echoHandlers(3))
	if err != nil {
		t.Fatal(err)
	}
	tr := WithRetry(NewChaos(base, ChaosOptions{
		Seed:            7,
		DropRequestProb: 0.05,
		DropReplyProb:   0.05,
		DelayProb:       0.1,
		Delay:           time.Millisecond,
		MaxConsecutive:  3,
	}), Options{MaxAttempts: 8})
	defer func() { _ = tr.Close() }()
	const callers, perCaller = 8, 30
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for w := 0; w < callers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			to := 1 + w%2
			for i := 0; i < perCaller; i++ {
				req := fmt.Sprintf("w%d-i%d", w, i)
				got, err := tr.Call(0, to, []byte(req))
				if err != nil {
					errs <- fmt.Errorf("w%d i%d: %v", w, i, err)
					return
				}
				if want := fmt.Sprintf("n%d<-0:%s", to, req); string(got) != want {
					errs <- fmt.Errorf("w%d i%d: got %q, want %q", w, i, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestMuxCompressionShrinksWire sends highly compressible payloads with
// CompressMin set and checks the transport's frame-level byte counters:
// the wire must carry far fewer bytes than the payloads, and the echoes
// must survive the deflate/inflate round trip intact.
func TestMuxCompressionShrinksWire(t *testing.T) {
	tr, err := NewTCPWithOptions(echoHandlers(2), Options{CompressMin: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	payload := bytes.Repeat([]byte("actdsm"), 700) // 4200 bytes, ratio >> 2
	sent0, recv0 := tr.WireBytes()
	const calls = 20
	for i := 0; i < calls; i++ {
		got, err := tr.Call(0, 1, payload)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(got), "n1<-0:") || !bytes.Equal(got[6:], payload) {
			t.Fatalf("call %d: corrupted echo (len %d)", i, len(got))
		}
		msg.PutBuf(got)
	}
	sent, recv := tr.WireBytes()
	wire := (sent - sent0) + (recv - recv0)
	raw := int64(calls * 2 * len(payload)) // request + reply, each counted once per side
	if wire >= raw {
		t.Fatalf("compression did not shrink the wire: %d bytes for %d raw", wire, raw)
	}
	t.Logf("wire bytes: %d for %d raw payload bytes", wire, raw)
}

// TestMuxSingleWorkerStillCorrect pins MuxWorkers: 1 — handler
// execution serializes server-side, but pipelining and reply matching
// must still hold.
func TestMuxSingleWorkerStillCorrect(t *testing.T) {
	tr, err := NewTCPWithOptions(echoHandlers(2), Options{MuxWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				req := fmt.Sprintf("w%d-i%d", w, i)
				got, err := tr.Call(0, 1, []byte(req))
				if err != nil {
					errs <- err
					return
				}
				if want := "n1<-0:" + req; string(got) != want {
					errs <- fmt.Errorf("got %q, want %q", got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestMuxBenchSmoke exercises the benchmark harness end to end at a
// tiny size under both disciplines, so RunBench itself stays covered by
// the ordinary test run (the full-size run lives behind actbench).
func TestMuxBenchSmoke(t *testing.T) {
	for _, serialized := range []bool{false, true} {
		res, err := RunBench(BenchOptions{
			Nodes: 3, Callers: 4, Calls: 60, Payload: 128, HoldUS: 50,
			Options: Options{Serialized: serialized},
		})
		if err != nil {
			t.Fatalf("serialized=%v: %v", serialized, err)
		}
		if res.CallsPerSec <= 0 || res.WireSentBytes == 0 || res.WireRecvBytes == 0 {
			t.Fatalf("serialized=%v: implausible result %+v", serialized, res)
		}
	}
}

// TestMuxChaosSoak is the nightly chaos-soak leg: sustained pipelined
// load over real TCP sockets with seeded drops and delays, sockets
// repeatedly torn down out from under the pipeline, and a FaultBudget
// cap so the tail of the workload is guaranteed to drain fault-free.
// Every call must succeed and every reply must match its request for
// the whole soak. Gated on ACTDSM_SOAK (a duration; "1" means 30s)
// because minutes of wall clock are nightly material, not per-push CI.
func TestMuxChaosSoak(t *testing.T) {
	env := os.Getenv("ACTDSM_SOAK")
	if env == "" {
		t.Skip("set ACTDSM_SOAK to a duration (e.g. 2m) to run the chaos soak")
	}
	dur := 30 * time.Second
	if d, err := time.ParseDuration(env); err == nil {
		dur = d
	}
	const nodes, callers = 4, 24
	base, err := NewTCPWithOptions(echoHandlers(nodes), Options{CompressMin: 256})
	if err != nil {
		t.Fatal(err)
	}
	tr := WithRetry(NewChaos(base, ChaosOptions{
		Seed:            20260808,
		DropRequestProb: 0.02,
		DropReplyProb:   0.02,
		DelayProb:       0.05,
		Delay:           time.Millisecond,
		MaxConsecutive:  3,
		FaultBudget:     5000,
	}), Options{MaxAttempts: 10})
	defer func() { _ = tr.Close() }()

	deadline := time.Now().Add(dur)
	var calls atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	big := strings.Repeat("actdsm-soak-", 64) // compressible tail past CompressMin
	for w := 0; w < callers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			to := 1 + w%(nodes-1)
			for i := 0; time.Now().Before(deadline); i++ {
				req := fmt.Sprintf("w%d-i%d-%s", w, i, big)
				got, err := tr.Call(0, to, []byte(req))
				if err != nil {
					errs <- fmt.Errorf("w%d i%d: %v", w, i, err)
					return
				}
				if want := fmt.Sprintf("n%d<-0:%s", to, req); string(got) != want {
					errs <- fmt.Errorf("w%d i%d: cross-matched reply (len %d)", w, i, len(got))
					return
				}
				msg.PutBuf(got)
				calls.Add(1)
			}
		}(w)
	}
	// Reconnect pressure: keep closing live sockets under the pipeline.
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(50 * time.Millisecond):
				to := 1 + int(calls.Load())%(nodes-1)
				base.mu.Lock()
				mc := base.muxes[[2]int{0, to}]
				base.mu.Unlock()
				if mc != nil {
					_ = mc.conn.Close()
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	t.Logf("soak: %d calls over %v across %d callers", calls.Load(), dur, callers)
}

// TestMuxCallAllocs pins the zero-allocation send path: a steady-state
// echo round trip over the mux must not allocate (gate: < 0.5/op,
// matching the BENCH_transport.json property gate). Skipped under the
// race detector, whose instrumentation allocates.
func TestMuxCallAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	allocs, ns, err := MeasureCallAllocs(256, 2000, 20000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("mux call: %.3f allocs/op, %.0f ns/op", allocs, ns)
	if allocs >= 0.5 {
		t.Fatalf("steady-state mux call allocates %.3f/op, want ~0", allocs)
	}
}
