package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"actdsm/internal/sim"
)

// Fault identifies one injected failure mode for a call.
type Fault int

// Fault modes.
const (
	// FaultNone delivers the call normally.
	FaultNone Fault = iota
	// FaultDropRequest fails the call without delivering it: the
	// receiver never sees the request (a lost request).
	FaultDropRequest
	// FaultDropReply delivers the call, discards the reply, and fails:
	// the receiver HAS executed the request while the caller sees an
	// error (a lost reply). Retrying such a call re-executes it, which
	// is exactly the case idempotent protocols must survive.
	FaultDropReply
	// FaultDuplicate delivers the call twice and returns the second
	// reply (a duplicated request, e.g. a spurious network-level
	// retransmit).
	FaultDuplicate
	// FaultDelay sleeps for ChaosOptions.Delay, then delivers normally
	// (a slow peer; trips CallTimeout when configured tighter).
	FaultDelay
)

// String implements fmt.Stringer.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultDropRequest:
		return "drop-request"
	case FaultDropReply:
		return "drop-reply"
	case FaultDuplicate:
		return "duplicate"
	case FaultDelay:
		return "delay"
	default:
		return fmt.Sprintf("fault(%d)", int(f))
	}
}

// ChaosOptions configures a Chaos wrapper. Probabilities are evaluated in
// the order drop-request, drop-reply, duplicate, delay, by one seeded
// deterministic generator, so a fixed seed and a serial caller produce a
// reproducible fault schedule. When Plan is non-nil it alone decides
// every call's fault and the probabilistic knobs are ignored — the fully
// deterministic mode tests use.
type ChaosOptions struct {
	// Seed seeds the fault generator (sim.RNG). Defaults to 1.
	Seed uint64
	// DropRequestProb is the probability of FaultDropRequest.
	DropRequestProb float64
	// DropReplyProb is the probability of FaultDropReply.
	DropReplyProb float64
	// DuplicateProb is the probability of FaultDuplicate.
	DuplicateProb float64
	// DelayProb is the probability of FaultDelay.
	DelayProb float64
	// Delay is the FaultDelay sleep. Defaults to 1ms.
	Delay time.Duration
	// Partitioned, if non-nil, reports whether the (from, to) pair is
	// currently unreachable; such calls fail with ErrInjected without
	// being delivered. Schedules (heal after N calls, one-way splits,
	// islands) are expressed by closing over mutable state.
	Partitioned func(from, to int) bool
	// Plan, if non-nil, decides the fault for each call and overrides
	// the probabilistic knobs. call is the 1-based global call sequence
	// number (including retries). payload is the encoded message; its
	// first byte is the msg.Kind, letting plans target specific
	// protocol messages.
	Plan func(from, to int, payload []byte, call int64) Fault
}

// Chaos wraps a Transport with fault injection. It generalizes
// Local.FailCall: it composes over both Local and TCP (and under
// WithRetry, so injected faults exercise the retry path). All injected
// failures carry ErrInjected, which Retryable recognizes.
type Chaos struct {
	inner Transport
	o     ChaosOptions

	calls    atomic.Int64
	injected atomic.Int64

	mu  sync.Mutex // guards rng
	rng *sim.RNG
}

// Compile-time interface check.
var _ Transport = (*Chaos)(nil)

// NewChaos wraps inner with fault injection per o.
func NewChaos(inner Transport, o ChaosOptions) *Chaos {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Delay <= 0 {
		o.Delay = time.Millisecond
	}
	return &Chaos{inner: inner, o: o, rng: sim.NewRNG(o.Seed)}
}

// Calls returns the number of calls observed (including retries).
func (c *Chaos) Calls() int64 { return c.calls.Load() }

// Injected returns the number of calls a fault was injected into.
func (c *Chaos) Injected() int64 { return c.injected.Load() }

// Call implements Transport.
func (c *Chaos) Call(from, to int, payload []byte) ([]byte, error) {
	call := c.calls.Add(1)
	if c.o.Partitioned != nil && c.o.Partitioned(from, to) {
		c.injected.Add(1)
		return nil, fmt.Errorf("transport: partition %d->%d: %w", from, to, ErrInjected)
	}
	f := c.fault(from, to, payload, call)
	if f != FaultNone {
		c.injected.Add(1)
	}
	switch f {
	case FaultDropRequest:
		return nil, fmt.Errorf("transport: chaos dropped request %d->%d: %w", from, to, ErrInjected)
	case FaultDropReply:
		if _, err := c.inner.Call(from, to, payload); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("transport: chaos dropped reply %d->%d: %w", from, to, ErrInjected)
	case FaultDuplicate:
		if _, err := c.inner.Call(from, to, payload); err != nil {
			return nil, err
		}
	case FaultDelay:
		time.Sleep(c.o.Delay)
	}
	return c.inner.Call(from, to, payload)
}

// fault decides the fault for one call.
func (c *Chaos) fault(from, to int, payload []byte, call int64) Fault {
	if c.o.Plan != nil {
		return c.o.Plan(from, to, payload, call)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch x := c.rng.Float64(); {
	case x < c.o.DropRequestProb:
		return FaultDropRequest
	case x < c.o.DropRequestProb+c.o.DropReplyProb:
		return FaultDropReply
	case x < c.o.DropRequestProb+c.o.DropReplyProb+c.o.DuplicateProb:
		return FaultDuplicate
	case x < c.o.DropRequestProb+c.o.DropReplyProb+c.o.DuplicateProb+c.o.DelayProb:
		return FaultDelay
	default:
		return FaultNone
	}
}

// Close implements Transport.
func (c *Chaos) Close() error { return c.inner.Close() }

// Unwrap returns the wrapped transport (see Base).
func (c *Chaos) Unwrap() Transport { return c.inner }
