package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"actdsm/internal/sim"
)

// Fault identifies one injected failure mode for a call.
type Fault int

// Fault modes.
const (
	// FaultNone delivers the call normally.
	FaultNone Fault = iota
	// FaultDropRequest fails the call without delivering it: the
	// receiver never sees the request (a lost request).
	FaultDropRequest
	// FaultDropReply delivers the call, discards the reply, and fails:
	// the receiver HAS executed the request while the caller sees an
	// error (a lost reply). Retrying such a call re-executes it, which
	// is exactly the case idempotent protocols must survive.
	FaultDropReply
	// FaultDuplicate delivers the call twice and returns the second
	// reply (a duplicated request, e.g. a spurious network-level
	// retransmit).
	FaultDuplicate
	// FaultDelay sleeps for ChaosOptions.Delay, then delivers normally
	// (a slow peer; trips CallTimeout when configured tighter).
	FaultDelay
)

// String implements fmt.Stringer.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultDropRequest:
		return "drop-request"
	case FaultDropReply:
		return "drop-reply"
	case FaultDuplicate:
		return "duplicate"
	case FaultDelay:
		return "delay"
	default:
		return fmt.Sprintf("fault(%d)", int(f))
	}
}

// ChaosOptions configures a Chaos wrapper. Probabilities are evaluated in
// the order drop-request, drop-reply, duplicate, delay, by one seeded
// deterministic generator, so a fixed seed and a serial caller produce a
// reproducible fault schedule. When Plan is non-nil it alone decides
// every call's fault and the probabilistic knobs are ignored — the fully
// deterministic mode tests use.
type ChaosOptions struct {
	// Seed seeds the fault generator (sim.RNG). Defaults to 1.
	Seed uint64
	// DropRequestProb is the probability of FaultDropRequest.
	DropRequestProb float64
	// DropReplyProb is the probability of FaultDropReply.
	DropReplyProb float64
	// DuplicateProb is the probability of FaultDuplicate.
	DuplicateProb float64
	// DelayProb is the probability of FaultDelay.
	DelayProb float64
	// Delay is the FaultDelay sleep. Defaults to 1ms.
	Delay time.Duration
	// Partitioned, if non-nil, reports whether the (from, to) pair is
	// currently unreachable; such calls fail with ErrInjected without
	// being delivered. Schedules (heal after N calls, one-way splits,
	// islands) are expressed by closing over mutable state.
	Partitioned func(from, to int) bool
	// Plan, if non-nil, decides the fault for each call and overrides
	// the probabilistic knobs. call is the 1-based global call sequence
	// number (including retries). payload is the encoded message; its
	// first byte is the msg.Kind, letting plans target specific
	// protocol messages.
	Plan func(from, to int, payload []byte, call int64) Fault
	// FaultBudget, when positive, caps the total number of faults the
	// probabilistic knobs may inject; once spent, every later decision
	// is FaultNone. Soak tests use it to guarantee the workload's tail
	// runs fault-free, so a run always terminates regardless of how
	// unlucky the stream was. Plan, Partitioned, and Crashes are exempt
	// (they are deterministic by construction).
	FaultBudget int64
	// MaxConsecutive, when positive, bounds runs of consecutive
	// probabilistic injections: after that many faults in a row the next
	// decision is forced to FaultNone. With MaxConsecutive below the
	// retry budget (Options.MaxAttempts), no single call can have every
	// attempt faulted, which makes randomized soaks deadline-robust
	// without changing their expected fault rate materially.
	MaxConsecutive int
	// Crashes are deterministic fail-stop windows keyed on the same
	// global call counter Plan sees: from schedule s's Call onward,
	// every call to or from s.Node fails with ErrNodeDown until Revive
	// is called for the node (the DSM layer does so when it runs the
	// node's recovery protocol at s.RestartEpoch). Crash windows
	// compose with Plan, Partitioned, and the probabilistic knobs —
	// they are evaluated first and, like every fault here, consume the
	// call's sequence number.
	Crashes []sim.CrashSchedule
}

// Chaos wraps a Transport with fault injection. It generalizes
// Local.FailCall: it composes over both Local and TCP (and under
// WithRetry, so injected faults exercise the retry path). All injected
// failures carry ErrInjected, which Retryable recognizes.
type Chaos struct {
	inner Transport
	o     ChaosOptions

	calls    atomic.Int64
	injected atomic.Int64

	mu     sync.Mutex // guards rng, budget, streak
	rng    *sim.RNG
	budget int64 // remaining probabilistic faults (if budgeted)
	streak int   // consecutive probabilistic injections

	// crashMu guards the crash-window state below. Separate from mu so
	// downAt checks never serialize on the fault generator.
	crashMu sync.Mutex
	// sched holds the configured schedules; consumed[i] is set once
	// schedule i's node has been revived, retiring that window.
	sched    []sim.CrashSchedule
	consumed []bool
	// killed holds nodes put down imperatively via Kill, outside any
	// schedule, until revived.
	killed map[int]bool
	// hasCrash short-circuits the per-call crash check when no schedule
	// or Kill has ever been installed (the common, fault-free case).
	hasCrash atomic.Bool
}

// Compile-time interface check.
var _ Transport = (*Chaos)(nil)

// NewChaos wraps inner with fault injection per o.
func NewChaos(inner Transport, o ChaosOptions) *Chaos {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Delay <= 0 {
		o.Delay = time.Millisecond
	}
	c := &Chaos{inner: inner, o: o, rng: sim.NewRNG(o.Seed), budget: o.FaultBudget, killed: make(map[int]bool)}
	c.sched = append(c.sched, o.Crashes...)
	c.consumed = make([]bool, len(c.sched))
	if len(c.sched) > 0 {
		c.hasCrash.Store(true)
	}
	return c
}

// Kill puts node down immediately, outside any schedule: every later
// call to or from it fails with ErrNodeDown until Revive. Tests use it
// to crash a node at a precise point in a driven workload without
// computing call numbers.
func (c *Chaos) Kill(node int) {
	c.crashMu.Lock()
	c.killed[node] = true
	c.crashMu.Unlock()
	c.hasCrash.Store(true)
}

// Revive brings node back up: it retires the node's armed (or pending)
// crash windows and clears any imperative Kill, so calls involving the
// node flow again. The DSM recovery protocol calls this when the node
// rejoins.
func (c *Chaos) Revive(node int) {
	c.crashMu.Lock()
	delete(c.killed, node)
	for i, s := range c.sched {
		if s.Node == node {
			c.consumed[i] = true
		}
	}
	c.crashMu.Unlock()
}

// Down reports whether node is currently down, given the calls observed
// so far.
func (c *Chaos) Down(node int) bool {
	call := c.calls.Load()
	c.crashMu.Lock()
	defer c.crashMu.Unlock()
	return c.downLocked(node, call+1)
}

// downLocked reports whether node is down for call number `call`.
func (c *Chaos) downLocked(node int, call int64) bool {
	if c.killed[node] {
		return true
	}
	for i, s := range c.sched {
		if s.Node == node && !c.consumed[i] && call >= s.Call {
			return true
		}
	}
	return false
}

// Calls returns the number of calls observed (including retries).
func (c *Chaos) Calls() int64 { return c.calls.Load() }

// Injected returns the number of calls a fault was injected into.
func (c *Chaos) Injected() int64 { return c.injected.Load() }

// Call implements Transport.
func (c *Chaos) Call(from, to int, payload []byte) ([]byte, error) {
	call := c.calls.Add(1)
	if c.hasCrash.Load() {
		c.crashMu.Lock()
		down := c.downLocked(from, call) || c.downLocked(to, call)
		c.crashMu.Unlock()
		if down {
			c.injected.Add(1)
			return nil, fmt.Errorf("transport: crash %d->%d at call %d: %w", from, to, call, ErrNodeDown)
		}
	}
	if c.o.Partitioned != nil && c.o.Partitioned(from, to) {
		c.injected.Add(1)
		return nil, fmt.Errorf("transport: partition %d->%d: %w", from, to, ErrInjected)
	}
	f := c.fault(from, to, payload, call)
	if f != FaultNone {
		c.injected.Add(1)
	}
	switch f {
	case FaultDropRequest:
		return nil, fmt.Errorf("transport: chaos dropped request %d->%d: %w", from, to, ErrInjected)
	case FaultDropReply:
		if _, err := c.inner.Call(from, to, payload); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("transport: chaos dropped reply %d->%d: %w", from, to, ErrInjected)
	case FaultDuplicate:
		if _, err := c.inner.Call(from, to, payload); err != nil {
			return nil, err
		}
	case FaultDelay:
		time.Sleep(c.o.Delay)
	}
	return c.inner.Call(from, to, payload)
}

// fault decides the fault for one call.
func (c *Chaos) fault(from, to int, payload []byte, call int64) Fault {
	if c.o.Plan != nil {
		return c.o.Plan(from, to, payload, call)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	x := c.rng.Float64() // always consume the stream: decisions stay
	// seed-deterministic whether or not the guards below veto them
	if c.o.FaultBudget > 0 && c.budget <= 0 {
		return FaultNone
	}
	if c.o.MaxConsecutive > 0 && c.streak >= c.o.MaxConsecutive {
		c.streak = 0
		return FaultNone
	}
	var f Fault
	switch {
	case x < c.o.DropRequestProb:
		f = FaultDropRequest
	case x < c.o.DropRequestProb+c.o.DropReplyProb:
		f = FaultDropReply
	case x < c.o.DropRequestProb+c.o.DropReplyProb+c.o.DuplicateProb:
		f = FaultDuplicate
	case x < c.o.DropRequestProb+c.o.DropReplyProb+c.o.DuplicateProb+c.o.DelayProb:
		f = FaultDelay
	default:
		c.streak = 0
		return FaultNone
	}
	if c.o.FaultBudget > 0 {
		c.budget--
	}
	c.streak++
	return f
}

// Close implements Transport.
func (c *Chaos) Close() error { return c.inner.Close() }

// Unwrap returns the wrapped transport (see Base).
func (c *Chaos) Unwrap() Transport { return c.inner }
