package transport

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func echoHandlers(n int) []Handler {
	hs := make([]Handler, n)
	for i := 0; i < n; i++ {
		node := i
		hs[i] = func(from int, payload []byte) ([]byte, error) {
			return append([]byte(fmt.Sprintf("n%d<-%d:", node, from)), payload...), nil
		}
	}
	return hs
}

func TestLocalCall(t *testing.T) {
	tr := NewLocal(echoHandlers(3))
	defer func() { _ = tr.Close() }()
	got, err := tr.Call(0, 2, []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "n2<-0:hi" {
		t.Fatalf("got %q", got)
	}
}

func TestLocalBadDestination(t *testing.T) {
	tr := NewLocal(echoHandlers(2))
	if _, err := tr.Call(0, 5, nil); err == nil {
		t.Fatal("expected error for unknown node")
	}
	if _, err := tr.Call(0, -1, nil); err == nil {
		t.Fatal("expected error for negative node")
	}
}

func TestLocalFailureInjection(t *testing.T) {
	tr := NewLocal(echoHandlers(2))
	calls := 0
	tr.FailCall = func(from, to int, payload []byte) bool {
		calls++
		return calls == 1
	}
	if _, err := tr.Call(0, 1, nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if _, err := tr.Call(0, 1, nil); err != nil {
		t.Fatalf("second call failed: %v", err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	tr, err := NewTCP(echoHandlers(3))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	for to := 0; to < 3; to++ {
		got, err := tr.Call(1, to, []byte("payload"))
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("n%d<-1:payload", to)
		if string(got) != want {
			t.Fatalf("got %q, want %q", got, want)
		}
	}
}

func TestTCPLargePayload(t *testing.T) {
	hs := []Handler{func(from int, p []byte) ([]byte, error) { return p, nil }}
	tr, err := NewTCP(hs)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	big := bytes.Repeat([]byte{0xab}, 1<<20)
	got, err := tr.Call(0, 0, big)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("payload corrupted")
	}
}

func TestTCPRemoteError(t *testing.T) {
	hs := []Handler{func(from int, p []byte) ([]byte, error) {
		return nil, errors.New("handler exploded")
	}}
	tr, err := NewTCP(hs)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	_, err = tr.Call(0, 0, []byte("x"))
	if err == nil || !strings.Contains(err.Error(), "handler exploded") {
		t.Fatalf("err = %v", err)
	}
	// The connection survives an application error.
	if _, err := tr.Call(0, 0, []byte("y")); err == nil || !strings.Contains(err.Error(), "handler exploded") {
		t.Fatalf("second call err = %v", err)
	}
}

func TestTCPNestedCall(t *testing.T) {
	// Node 1's handler calls node 2 before replying — the pattern the
	// DSM's page manager uses to fetch diffs. This must not deadlock.
	var tr *TCP
	hs := []Handler{
		nil, // node 0 never serves
		func(from int, p []byte) ([]byte, error) {
			inner, err := tr.Call(1, 2, append([]byte("via1:"), p...))
			if err != nil {
				return nil, err
			}
			return inner, nil
		},
		func(from int, p []byte) ([]byte, error) {
			return append([]byte("n2:"), p...), nil
		},
	}
	hs[0] = func(from int, p []byte) ([]byte, error) { return p, nil }
	var err error
	tr, err = NewTCP(hs)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	got, err := tr.Call(0, 1, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "n2:via1:hello" {
		t.Fatalf("got %q", got)
	}
}

func TestTCPConcurrentCallers(t *testing.T) {
	tr, err := NewTCP(echoHandlers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	var wg sync.WaitGroup
	errs := make(chan error, 40)
	for from := 0; from < 4; from++ {
		for i := 0; i < 10; i++ {
			wg.Add(1)
			go func(from, i int) {
				defer wg.Done()
				to := (from + i) % 4
				want := fmt.Sprintf("n%d<-%d:m%d", to, from, i)
				got, err := tr.Call(from, to, []byte(fmt.Sprintf("m%d", i)))
				if err != nil {
					errs <- err
					return
				}
				if string(got) != want {
					errs <- fmt.Errorf("got %q, want %q", got, want)
				}
			}(from, i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestTCPCloseIdempotent(t *testing.T) {
	tr, err := NewTCP(echoHandlers(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Call(0, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Call(0, 1, []byte("x")); err == nil {
		t.Fatal("expected error after Close")
	}
}

func TestTCPBadDestination(t *testing.T) {
	tr, err := NewTCP(echoHandlers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	if _, err := tr.Call(0, 3, nil); err == nil {
		t.Fatal("expected error")
	}
}
