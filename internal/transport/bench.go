package transport

// Transport benchmark harness: concurrent callers hammering echo
// handlers over real TCP sockets, run once per wire discipline. This is
// a wall-clock benchmark, not a virtual-time experiment: it measures
// what the multiplexed stream actually buys on real connections, which
// is the number the BENCH_transport.json gate pins.
//
// The workload shape is chosen so the disciplines differ by design, not
// by accident: every caller runs on node 0 and targets nodes 1..N-1
// round-robin, so many callers share each (from,to) pair. Under the
// serialized discipline a pair admits one outstanding call, so the
// injected per-request service hold (HoldUS) serializes behind each
// connection; under the mux, calls pipeline and the holds overlap up to
// MuxWorkers per connection. The throughput ratio therefore measures
// schedule overlap — stable on single-core CI runners — rather than the
// benchmark host's core count (same device as the hotpath gate's
// ServiceHoldUS).
//
// The harness lives in the transport package (not a _test file) so the
// Go tests (mux_test.go) and the actbench "transport" section
// (internal/experiments/transportbench.go) drive identical workloads.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"actdsm/internal/msg"
)

// BenchOptions configures one RunBench run. The zero value of any field
// selects a default sized for a sub-second run.
type BenchOptions struct {
	// Nodes is the cluster size (default 4; minimum 2). Node 0 hosts
	// the callers; nodes 1..Nodes-1 serve.
	Nodes int
	// Callers is the number of concurrent caller goroutines on node 0
	// (default 16). Caller w targets node 1 + w%(Nodes-1), so callers
	// share pairs and the pipelining difference is visible.
	Callers int
	// Calls is the total number of calls across all callers
	// (default 2000).
	Calls int
	// Payload is the request size in bytes (default 256). The echo
	// reply has the same size.
	Payload int
	// HoldUS is the injected per-request service time in microseconds
	// (default 200): the handler parks for this long before echoing,
	// modeling the page/diff assembly a real node performs per request.
	HoldUS int
	// Options is passed through to NewTCPWithOptions. Serialized
	// selects the one-outstanding-call baseline discipline.
	Options Options
}

func (o BenchOptions) withDefaults() BenchOptions {
	if o.Nodes == 0 {
		o.Nodes = 4
	}
	if o.Callers == 0 {
		o.Callers = 16
	}
	if o.Calls == 0 {
		o.Calls = 2000
	}
	if o.Payload == 0 {
		o.Payload = 256
	}
	if o.HoldUS == 0 {
		o.HoldUS = 200
	}
	return o
}

// BenchResult is one RunBench measurement.
type BenchResult struct {
	// Serialized records which wire discipline ran.
	Serialized bool `json:"serialized"`
	// Nodes, Callers, Calls, and PayloadBytes echo the workload shape.
	Nodes        int `json:"nodes"`
	Callers      int `json:"callers"`
	Calls        int `json:"calls"`
	PayloadBytes int `json:"payload_bytes"`
	// HoldUS is the injected per-request service time.
	HoldUS int `json:"hold_us"`
	// ElapsedMS is the wall-clock time of the hammer phase.
	ElapsedMS float64 `json:"elapsed_ms"`
	// CallsPerSec is the aggregate call throughput.
	CallsPerSec float64 `json:"calls_per_sec"`
	// WireSentBytes and WireRecvBytes are the transport's frame-level
	// byte counters for the whole run (both sides of every loopback
	// connection belong to the same TCP instance).
	WireSentBytes int64 `json:"wire_sent_bytes"`
	WireRecvBytes int64 `json:"wire_recv_bytes"`
}

// benchHandlers builds echo handlers that park for hold before
// replying, so the benchmark measures schedule overlap (see the package
// comment) instead of raw loopback latency.
func benchHandlers(n int, hold time.Duration) []Handler {
	hs := make([]Handler, n)
	for i := range hs {
		hs[i] = func(from int, p []byte) ([]byte, error) {
			if hold > 0 {
				time.Sleep(hold)
			}
			return p, nil
		}
	}
	return hs
}

// RunBench runs the concurrent-callers workload once under the
// discipline selected by o.Options.Serialized and reports the aggregate
// throughput. Callers pull call indices from a shared counter, so the
// load stays balanced regardless of scheduling.
func RunBench(o BenchOptions) (BenchResult, error) {
	o = o.withDefaults()
	if o.Nodes < 2 {
		return BenchResult{}, fmt.Errorf("transport: bench needs at least 2 nodes, got %d", o.Nodes)
	}
	hold := time.Duration(o.HoldUS) * time.Microsecond
	tr, err := NewTCPWithOptions(benchHandlers(o.Nodes, hold), o.Options)
	if err != nil {
		return BenchResult{}, err
	}
	defer func() { _ = tr.Close() }()

	payload := make([]byte, o.Payload)
	for i := range payload {
		payload[i] = byte(i)
	}
	// Warm-up primes every (0,to) connection and the buffer pools.
	for to := 1; to < o.Nodes; to++ {
		r, err := tr.Call(0, to, payload)
		if err != nil {
			return BenchResult{}, err
		}
		msg.PutBuf(r)
	}

	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		runErr  error
	)
	start := time.Now()
	for w := 0; w < o.Callers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			to := 1 + w%(o.Nodes-1)
			for {
				if int(next.Add(1)) > o.Calls {
					return
				}
				r, err := tr.Call(0, to, payload)
				if err != nil {
					errOnce.Do(func() { runErr = err })
					return
				}
				msg.PutBuf(r)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if runErr != nil {
		return BenchResult{}, runErr
	}
	sent, recv := tr.WireBytes()
	return BenchResult{
		Serialized:    o.Options.Serialized,
		Nodes:         o.Nodes,
		Callers:       o.Callers,
		Calls:         o.Calls,
		PayloadBytes:  o.Payload,
		HoldUS:        o.HoldUS,
		ElapsedMS:     float64(elapsed.Nanoseconds()) / 1e6,
		CallsPerSec:   float64(o.Calls) / elapsed.Seconds(),
		WireSentBytes: sent,
		WireRecvBytes: recv,
	}, nil
}

// MeasureCallAllocs measures the steady-state allocation count and
// wall-clock cost of one mux round trip: a sequential echo call whose
// reply buffer is recycled, after the pools have converged. This is the
// number behind the "0 allocs/op on the send path" acceptance gate; it
// must be measured without the race detector (instrumentation
// allocates).
func MeasureCallAllocs(payloadBytes, warm, runs int) (allocsPerOp, nsPerOp float64, err error) {
	tr, err := NewTCP(benchHandlers(2, 0))
	if err != nil {
		return 0, 0, err
	}
	defer func() { _ = tr.Close() }()
	payload := make([]byte, payloadBytes)
	for i := 0; i < warm; i++ {
		r, err := tr.Call(0, 1, payload)
		if err != nil {
			return 0, 0, err
		}
		msg.PutBuf(r)
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < runs; i++ {
		r, err := tr.Call(0, 1, payload)
		if err != nil {
			return 0, 0, err
		}
		msg.PutBuf(r)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs),
		float64(elapsed.Nanoseconds()) / float64(runs), nil
}
