package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"actdsm/internal/msg"
)

// The multiplexed discipline replaces lockedConn's one-outstanding-call
// rule with one pipelined stream per (from, to) pair:
//
//   - every call is tagged with a connection-local request ID, so many
//     callers send concurrently and replies match out of order through a
//     pending-call table;
//   - a dedicated writer goroutine batches ready frames into one
//     vectored write (net.Buffers → writev), so bursts of small control
//     messages share syscalls;
//   - frames live in pooled msg buffers end to end, so the steady-state
//     send path allocates nothing.
//
// Wire format after the 4-byte "ACTM" dial preamble:
//
//	request: [u32 plen][u32 id][u32 meta][payload]   meta = from | 1<<31 (deflated)
//	reply:   [u32 plen][u32 id][u8 status][payload]  status |= 0x80 (deflated)
//
// The status low bits are the same tcpOK/tcpErr* values the serialized
// discipline uses, so sentinel errors survive the wire identically.

// Dial-time preambles selecting the server-side serve loop.
var (
	muxPreamble    = [4]byte{'A', 'C', 'T', 'M'}
	serialPreamble = [4]byte{'A', 'C', 'T', 'S'}
)

const (
	// muxCompressed flags a deflated reply payload in the status byte.
	muxCompressed = byte(0x80)
	// muxCompressed32 flags a deflated request payload in the meta word.
	muxCompressed32 = uint32(1) << 31
)

// timeoutError marks a call that exceeded Options.CallTimeout on the
// multiplexed discipline. It implements net.Error with Timeout() true so
// Retryable treats it like a deadline error from the serialized path.
type timeoutError struct{}

func (timeoutError) Error() string   { return "transport: call timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

var errCallTimeout net.Error = timeoutError{}

// getFrameBuf returns a pooled buffer resliced to exactly n bytes,
// allocating only when the pooled capacity is too small. The fresh
// allocation carries headroom past n: an exact-fit buffer would be
// recycled, picked up by a sender, and outgrown by the 12-byte frame
// header around an equal-sized payload — the growth re-allocates and
// leaks the pooled array, so the pool never converges and every call
// allocates. With slack, circulating buffers converge on capacities
// that fit both the bare payload and its framed copy.
func getFrameBuf(n int) []byte {
	b := msg.GetBuf()
	if cap(b) < n {
		// Drop the small buffer to the GC rather than re-pooling it: a
		// re-Put parks it at the pool's LIFO front, where every later
		// Get pops it, rejects it, and re-Puts it — one undersized
		// buffer then costs an allocation on every call forever.
		b = make([]byte, 0, n+n/4+64)
	}
	return b[:n]
}

// sameBase reports whether two slices share the same first element —
// the aliasing an echo handler creates by returning the request payload
// verbatim. Such a reply must be recycled once, not twice.
func sameBase(a, b []byte) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// appendMuxReqHdr appends a 12-byte multiplexed request header.
func appendMuxReqHdr(b []byte, n, id, meta uint32) []byte {
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], n)
	binary.LittleEndian.PutUint32(hdr[4:], id)
	binary.LittleEndian.PutUint32(hdr[8:], meta)
	return append(b, hdr[:]...)
}

// appendMuxReplyHdr appends a 9-byte multiplexed reply header.
func appendMuxReplyHdr(b []byte, n, id uint32, status byte) []byte {
	var hdr [9]byte
	binary.LittleEndian.PutUint32(hdr[0:], n)
	binary.LittleEndian.PutUint32(hdr[4:], id)
	hdr[8] = status
	return append(b, hdr[:]...)
}

// frameWriter batches ready frames into one vectored write (writev via
// net.Buffers), recycling each frame after the syscall. One instance
// serves one connection; the scratch vector is a reused field so the
// steady state allocates nothing.
type frameWriter struct {
	conn  net.Conn
	wire  *atomic.Int64
	queue [][]byte
	// scratch/vec are the writev view of queue. net.Buffers.WriteTo
	// consumes its receiver — it nils each fully written entry in the
	// backing array — so it must operate on a copy, never on queue
	// itself, or the frames could not be recycled afterwards.
	scratch [][]byte
	vec     net.Buffers
}

func newFrameWriter(conn net.Conn, wire *atomic.Int64) *frameWriter {
	return &frameWriter{
		conn:    conn,
		wire:    wire,
		queue:   make([][]byte, 0, 64),
		scratch: make([][]byte, 0, 64),
	}
}

// drain writes frames arriving on ch until ch closes or down (may be
// nil) closes, returning nil; a failed write returns its error with the
// channel left undrained — the caller owns cleanup.
func (w *frameWriter) drain(ch chan []byte, down chan struct{}) error {
	for {
		var f []byte
		var ok bool
		select {
		case f, ok = <-ch:
		case <-down:
			return nil
		}
		if !ok {
			return nil
		}
		w.queue = append(w.queue[:0], f)
		// Batch whatever else is already queued into the same writev.
	gather:
		for len(w.queue) < cap(w.queue) {
			select {
			case f, ok = <-ch:
				if !ok {
					break gather
				}
				w.queue = append(w.queue, f)
			default:
				break gather
			}
		}
		if err := w.flush(); err != nil {
			return err
		}
		if !ok { // ch closed during the gather; all of it is flushed
			return nil
		}
	}
}

// flush writes the queued frames with one vectored write and recycles
// them. On error the frames are released to the GC instead: a short
// write advances buffer headers in place, which would poison the pool.
func (w *frameWriter) flush() error {
	var nbytes int64
	for _, f := range w.queue {
		nbytes += int64(len(f))
	}
	w.scratch = append(w.scratch[:0], w.queue...)
	w.vec = net.Buffers(w.scratch)
	_, err := w.vec.WriteTo(w.conn)
	w.wire.Add(nbytes)
	if err != nil {
		w.queue = w.queue[:0]
		return err
	}
	for i, f := range w.queue {
		msg.PutBuf(f)
		w.queue[i] = nil
	}
	w.queue = w.queue[:0]
	return nil
}

// muxResult is what the reader (or a connection failure) delivers to a
// pending call.
type muxResult struct {
	status byte
	body   []byte
	err    error
}

// muxPending is one outstanding call's rendezvous. The struct is pooled;
// the cap-1 channel and the lazily created timer are reused across calls.
type muxPending struct {
	ch    chan muxResult
	timer *time.Timer
}

var muxPendingPool = sync.Pool{New: func() any {
	return &muxPending{ch: make(chan muxResult, 1)}
}}

// muxConn is the client half of one (from, to) multiplexed stream.
type muxConn struct {
	t    *TCP
	from int
	to   int
	conn net.Conn

	mu      sync.Mutex // guards nextID, pending, dead
	nextID  uint32
	pending map[uint32]*muxPending
	dead    bool

	wch   chan []byte
	down  chan struct{}
	fOnce sync.Once
}

// roundTrip performs one pipelined call: register a pending entry, hand
// the frame to the writer, wait for the reader to match the reply ID.
//
// Delivery invariant: once the call is registered, exactly one actor —
// the reader matching the reply, fail tearing the connection down, or
// this call's own timeout (which routes through fail) — removes the
// pending entry and sends on p.ch. Every exit path below therefore ends
// in one receive from p.ch, and the pooled entry is never left armed.
func (m *muxConn) roundTrip(payload []byte) ([]byte, error) {
	meta := uint32(m.from)
	body := payload
	if min := m.t.opts.CompressMin; min > 0 && len(payload) >= min {
		if c, ok := deflateFrame(payload); ok {
			body = c
			meta |= muxCompressed32
		}
	}
	frame := msg.GetBuf()
	frame = appendMuxReqHdr(frame, uint32(len(body)), 0, meta) // id patched below
	frame = append(frame, body...)
	if meta&muxCompressed32 != 0 {
		msg.PutBuf(body) // compression scratch, now copied into the frame
	}
	p := muxPendingPool.Get().(*muxPending)
	m.mu.Lock()
	if m.dead {
		m.mu.Unlock()
		msg.PutBuf(frame)
		muxPendingPool.Put(p)
		return nil, errConnStale
	}
	id := m.nextID
	m.nextID++
	m.pending[id] = p
	m.mu.Unlock()
	binary.LittleEndian.PutUint32(frame[4:8], id)
	m.t.hb.Add(1) // release the caller's clock to the server (see TCP.hb)
	var timerC <-chan time.Time
	if d := m.t.opts.CallTimeout; d > 0 {
		if p.timer == nil {
			p.timer = time.NewTimer(d)
		} else {
			p.timer.Reset(d)
		}
		timerC = p.timer.C
	}
	select {
	case m.wch <- frame: // the writer owns the frame now
	case <-m.down:
		msg.PutBuf(frame) // never handed over; fail already delivered
	case <-timerC:
		msg.PutBuf(frame) // writer wedged; poison the connection
		m.fail(fmt.Errorf("transport: call %d->%d: %w", m.from, m.to, errCallTimeout))
	}
	var r muxResult
	if timerC != nil {
		select {
		case r = <-p.ch:
		case <-timerC:
			// Conservative parity with the serialized discipline: a
			// timed-out call poisons the connection (its reply may still
			// arrive later; a fresh dial resynchronizes), and the
			// teardown delivers this call's error.
			m.fail(fmt.Errorf("transport: call %d->%d: %w", m.from, m.to, errCallTimeout))
			r = <-p.ch
		}
	} else {
		r = <-p.ch
	}
	return m.finish(p, r)
}

// finish recycles the pending entry and unpacks the delivered result.
func (m *muxConn) finish(p *muxPending, r muxResult) ([]byte, error) {
	if p.timer != nil {
		p.timer.Stop()
	}
	muxPendingPool.Put(p)
	if r.err != nil {
		return nil, r.err
	}
	status, body := r.status, r.body
	if status&muxCompressed != 0 {
		status &^= muxCompressed
		dec, err := inflateFrame(body)
		msg.PutBuf(body)
		if err != nil {
			return nil, fmt.Errorf("transport: reply from node %d: %w", m.to, err)
		}
		body = dec
	}
	if status != tcpOK {
		err := &RemoteError{Node: m.to, Sentinel: sentinelFor(status), Msg: string(body)}
		msg.PutBuf(body)
		return nil, err
	}
	return body, nil
}

// readLoop matches reply frames to pending calls by ID.
func (m *muxConn) readLoop() {
	defer m.t.wg.Done()
	var hdr [9]byte
	for {
		if _, err := io.ReadFull(m.conn, hdr[:]); err != nil {
			m.fail(fmt.Errorf("transport: read %d->%d: %w", m.from, m.to, err))
			return
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		id := binary.LittleEndian.Uint32(hdr[4:8])
		status := hdr[8]
		if n > maxFrame {
			m.fail(fmt.Errorf("transport: bad reply length %d", n))
			return
		}
		body := getFrameBuf(int(n))
		if _, err := io.ReadFull(m.conn, body); err != nil {
			msg.PutBuf(body)
			m.fail(fmt.Errorf("transport: read %d->%d: %w", m.from, m.to, err))
			return
		}
		m.t.wireIn.Add(int64(len(hdr)) + int64(n))
		m.t.hb.Add(1) // acquire the handler's effects (see TCP.hb)
		m.mu.Lock()
		p, ok := m.pending[id]
		if ok {
			delete(m.pending, id)
		}
		m.mu.Unlock()
		if !ok {
			msg.PutBuf(body) // reply for an abandoned or unknown call
			continue
		}
		p.ch <- muxResult{status: status, body: body}
	}
}

// writeLoop drains the send queue into vectored writes.
func (m *muxConn) writeLoop() {
	defer m.t.wg.Done()
	w := newFrameWriter(m.conn, &m.t.wireOut)
	if err := w.drain(m.wch, m.down); err != nil {
		m.fail(fmt.Errorf("transport: write %d->%d: %w", m.from, m.to, err))
	}
}

// fail tears the stream down once: marks it dead so new calls take the
// stale path, unblocks the writer, detaches from the transport's table
// so the next Call redials, fails every pending call with err, and
// recycles frames stranded in the send queue.
func (m *muxConn) fail(err error) {
	m.fOnce.Do(func() {
		m.mu.Lock()
		m.dead = true
		pend := m.pending
		m.pending = nil
		m.mu.Unlock()
		close(m.down)
		_ = m.conn.Close()
		m.t.removeMux(m.from, m.to, m)
		for _, p := range pend {
			p.ch <- muxResult{err: err}
		}
		for {
			select {
			case f := <-m.wch:
				msg.PutBuf(f)
			default:
				return
			}
		}
	})
}

// mux returns the live multiplexed stream for (from, to), dialing one if
// needed. Distinct pairs use distinct streams, so a nested call chain
// (A→B handler calling B→C) never waits behind another pair.
func (t *TCP) mux(from, to int) (*muxConn, error) {
	key := [2]int{from, to}
	t.mu.Lock()
	defer t.mu.Unlock()
	select {
	case <-t.closed:
		return nil, net.ErrClosed
	default:
	}
	if m, ok := t.muxes[key]; ok {
		return m, nil
	}
	c, err := net.Dial("tcp", t.addrs[to])
	if err != nil {
		return nil, fmt.Errorf("transport: dial node %d: %w", to, err)
	}
	if _, err := c.Write(muxPreamble[:]); err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("transport: dial node %d: %w", to, err)
	}
	m := &muxConn{
		t:       t,
		from:    from,
		to:      to,
		conn:    c,
		pending: make(map[uint32]*muxPending),
		wch:     make(chan []byte, 128),
		down:    make(chan struct{}),
	}
	t.wg.Add(2)
	go m.writeLoop()
	go m.readLoop()
	t.muxes[key] = m
	return m, nil
}

// removeMux deletes the table entry, but only if it still points at m —
// a replacement stream dialed by a retrying caller must survive.
func (t *TCP) removeMux(from, to int, m *muxConn) {
	key := [2]int{from, to}
	t.mu.Lock()
	if cur, ok := t.muxes[key]; ok && cur == m {
		delete(t.muxes, key)
	}
	t.mu.Unlock()
}

// serveMux is the server half of a multiplexed stream: the read loop
// fans requests out to a bounded worker pool, and a shared writer
// batches the (possibly out-of-order) reply frames into vectored
// writes. Worker count bounds concurrent handler executions per
// connection (Options.MuxWorkers).
func (t *TCP) serveMux(conn net.Conn, h Handler) {
	type muxReq struct {
		id         uint32
		from       int
		compressed bool
		payload    []byte
	}
	workers := t.opts.muxWorkers()
	work := make(chan muxReq, workers)
	out := make(chan []byte, workers)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		w := newFrameWriter(conn, &t.wireOut)
		if err := w.drain(out, nil); err != nil {
			// The write side broke: kill the connection so the read loop
			// unblocks, and keep consuming so no worker blocks on out.
			_ = conn.Close()
			for f := range out {
				msg.PutBuf(f)
			}
		}
	}()
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for r := range work {
				t.hb.Add(1) // acquire the caller's send clock (see hb)
				f := t.muxReply(h, r.from, r.id, r.payload, r.compressed)
				t.hb.Add(1) // release the handler's effects to the caller
				out <- f
			}
		}()
	}
	var hdr [12]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			break
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		id := binary.LittleEndian.Uint32(hdr[4:8])
		meta := binary.LittleEndian.Uint32(hdr[8:12])
		if n > maxFrame {
			break
		}
		payload := getFrameBuf(int(n))
		if _, err := io.ReadFull(conn, payload); err != nil {
			msg.PutBuf(payload)
			break
		}
		t.wireIn.Add(int64(len(hdr)) + int64(n))
		work <- muxReq{
			id:         id,
			from:       int(meta &^ muxCompressed32),
			compressed: meta&muxCompressed32 != 0,
			payload:    payload,
		}
	}
	close(work)
	wg.Wait()
	close(out)
	<-writerDone
}

// muxReply runs the handler for one request and builds its reply frame.
// It consumes the pooled payload and the handler's reply (see the
// Handler buffer-ownership contract).
func (t *TCP) muxReply(h Handler, from int, id uint32, payload []byte, compressed bool) []byte {
	if compressed {
		dec, err := inflateFrame(payload)
		msg.PutBuf(payload)
		if err != nil {
			return muxErrFrame(id, fmt.Errorf("transport: request decompress: %w", err))
		}
		payload = dec
	}
	reply, err := h(from, payload)
	if err == nil && 1+len(reply) > maxFrame {
		// Same policy as the serialized discipline: replace the
		// oversized reply with a structured, sentinel-preserving error
		// frame; the stream stays usable.
		err = fmt.Errorf("%w (%d bytes > %d)", ErrFrameTooLarge, 1+len(reply), maxFrame)
	}
	if err != nil {
		msg.PutBuf(payload)
		return muxErrFrame(id, err)
	}
	status := byte(tcpOK)
	out := reply
	if min := t.opts.CompressMin; min > 0 && len(reply) >= min {
		if c, ok := deflateFrame(reply); ok {
			out = c
			status |= muxCompressed
		}
	}
	frame := msg.GetBuf()
	frame = appendMuxReplyHdr(frame, uint32(len(out)), id, status)
	frame = append(frame, out...)
	if status&muxCompressed != 0 {
		msg.PutBuf(out) // compression scratch; reply recycled below
	}
	if sameBase(reply, payload) {
		msg.PutBuf(payload) // echo: one buffer, one recycle
	} else {
		msg.PutBuf(payload)
		if reply != nil {
			msg.PutBuf(reply)
		}
	}
	return frame
}

// muxErrFrame builds a sentinel-preserving error reply frame.
func muxErrFrame(id uint32, err error) []byte {
	e := err.Error()
	if len(e) > maxFrame-64 { // cannot happen in practice; stay safe
		e = e[:1024]
	}
	frame := msg.GetBuf()
	frame = appendMuxReplyHdr(frame, uint32(len(e)), id, statusFor(err))
	return append(frame, e...)
}
