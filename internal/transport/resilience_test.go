package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// --- source validation ------------------------------------------------

func TestLocalBadSource(t *testing.T) {
	tr := NewLocal(echoHandlers(2))
	if _, err := tr.Call(-1, 1, nil); err == nil {
		t.Fatal("expected error for negative source")
	}
	if _, err := tr.Call(7, 1, nil); err == nil {
		t.Fatal("expected error for unknown source")
	}
}

func TestTCPBadSource(t *testing.T) {
	tr, err := NewTCP(echoHandlers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	if _, err := tr.Call(-1, 1, nil); err == nil {
		t.Fatal("expected error for negative source")
	}
	if _, err := tr.Call(9, 1, nil); err == nil {
		t.Fatal("expected error for unknown source")
	}
}

// --- typed errors across the wire ------------------------------------

func TestTCPSentinelPreserved(t *testing.T) {
	hs := []Handler{func(from int, p []byte) ([]byte, error) {
		return nil, fmt.Errorf("nested chaos fault: %w", ErrInjected)
	}}
	tr, err := NewTCP(hs)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	_, err = tr.Call(0, 0, []byte{1})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("ErrInjected flattened over TCP: %v", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T, want *RemoteError", err)
	}
	if re.Node != 0 {
		t.Fatalf("RemoteError.Node = %d, want 0", re.Node)
	}
	if !Retryable(err) {
		t.Fatal("remote ErrInjected must be retryable")
	}
}

func TestTCPOrdinaryRemoteErrorNotRetryable(t *testing.T) {
	hs := []Handler{func(from int, p []byte) ([]byte, error) {
		return nil, errors.New("deterministic handler failure")
	}}
	tr, err := NewTCP(hs)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	_, err = tr.Call(0, 0, nil)
	if err == nil {
		t.Fatal("expected error")
	}
	if errors.Is(err, ErrInjected) {
		t.Fatal("plain error must not match ErrInjected")
	}
	if Retryable(err) {
		t.Fatal("remote handler errors are deterministic, must not be retryable")
	}
}

// --- oversized replies ------------------------------------------------

func TestTCPOversizedReply(t *testing.T) {
	var big atomic.Bool
	hs := []Handler{func(from int, p []byte) ([]byte, error) {
		if big.Load() {
			return make([]byte, maxFrame), nil
		}
		return append([]byte("ok:"), p...), nil
	}}
	tr, err := NewTCP(hs)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	big.Store(true)
	_, err = tr.Call(0, 0, []byte("x"))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	if Retryable(err) {
		t.Fatal("oversized replies are deterministic, must not be retryable")
	}
	// The structured error frame must leave the connection usable; the
	// old behaviour poisoned it ("bad reply length" + forced drop).
	big.Store(false)
	got, err := tr.Call(0, 0, []byte("y"))
	if err != nil {
		t.Fatalf("connection poisoned after oversized reply: %v", err)
	}
	if string(got) != "ok:y" {
		t.Fatalf("got %q", got)
	}
}

// --- stale connections and reconnect ---------------------------------

// TestTCPStaleConnDetected checks the waiter-side half of the stale-conn
// fix: a round trip on a connection a concurrent caller already tore down
// reports errConnStale instead of writing into the closed socket.
func TestTCPStaleConnDetected(t *testing.T) {
	tr, err := NewTCPWithOptions(echoHandlers(2), Options{Serialized: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	if _, err := tr.Call(0, 1, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	lc, err := tr.conn(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	lc.mu.Lock()
	tr.dropConn(0, 1, lc)
	lc.mu.Unlock()
	if _, err := tr.roundTrip(lc, 0, 1, []byte("x")); !errors.Is(err, errConnStale) {
		t.Fatalf("err = %v, want errConnStale", err)
	}
	// Call itself must recover transparently: the map entry is gone, so
	// the retry dials a fresh connection.
	got, err := tr.Call(0, 1, []byte("again"))
	if err != nil {
		t.Fatalf("Call after drop: %v", err)
	}
	if string(got) != "n1<-0:again" {
		t.Fatalf("got %q", got)
	}
}

// TestTCPStaleConnWaiterRecovers reproduces the original race: a caller
// queued on a connection's lock while another caller tears it down must
// re-resolve and succeed rather than erroring on the closed socket.
func TestTCPStaleConnWaiterRecovers(t *testing.T) {
	tr, err := NewTCPWithOptions(echoHandlers(2), Options{Serialized: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	if _, err := tr.Call(0, 1, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	lc, err := tr.conn(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	lc.mu.Lock()
	done := make(chan error, 1)
	go func() {
		got, err := tr.Call(0, 1, []byte("queued"))
		if err == nil && string(got) != "n1<-0:queued" {
			err = fmt.Errorf("got %q", got)
		}
		done <- err
	}()
	// Give the goroutine time to resolve lc and queue on its lock, then
	// tear the connection down while it waits.
	time.Sleep(20 * time.Millisecond)
	tr.dropConn(0, 1, lc)
	lc.mu.Unlock()
	if err := <-done; err != nil {
		t.Fatalf("queued caller failed on stale conn: %v", err)
	}
}

// TestTCPReconnectAfterDrop closes a live connection out from under the
// transport: the next attempt fails (bytes may have been sent), but the
// failure is Retryable and a WithRetry wrapper transparently redials.
// Runs in Serialized mode, which owns the conns map the test inspects;
// the mux analogue is TestMuxReconnectMidPipeline.
func TestTCPReconnectAfterDrop(t *testing.T) {
	base, err := NewTCPWithOptions(echoHandlers(2), Options{Serialized: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := WithRetry(base, Options{MaxAttempts: 3})
	defer func() { _ = tr.Close() }()
	if _, err := tr.Call(0, 1, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	base.mu.Lock()
	lc := base.conns[[2]int{0, 1}]
	base.mu.Unlock()
	if lc == nil {
		t.Fatal("no connection cached")
	}
	_ = lc.conn.Close() // simulate a peer/network drop
	got, err := tr.Call(0, 1, []byte("after-drop"))
	if err != nil {
		t.Fatalf("retry did not reconnect: %v", err)
	}
	if string(got) != "n1<-0:after-drop" {
		t.Fatalf("got %q", got)
	}
}

func TestTCPCallTimeout(t *testing.T) {
	var slow atomic.Bool
	hs := []Handler{func(from int, p []byte) ([]byte, error) {
		if slow.Load() {
			time.Sleep(200 * time.Millisecond)
		}
		return p, nil
	}}
	tr, err := NewTCPWithOptions(hs, Options{CallTimeout: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	if _, err := tr.Call(0, 0, []byte("fast")); err != nil {
		t.Fatal(err)
	}
	slow.Store(true)
	start := time.Now()
	_, err = tr.Call(0, 0, []byte("slow"))
	if err == nil {
		t.Fatal("expected timeout")
	}
	if !Retryable(err) {
		t.Fatalf("timeout must be retryable: %v", err)
	}
	if d := time.Since(start); d > 150*time.Millisecond {
		t.Fatalf("call took %v, deadline did not bound it", d)
	}
	// The timed-out connection was dropped; a fresh one works.
	slow.Store(false)
	if _, err := tr.Call(0, 0, []byte("recovered")); err != nil {
		t.Fatalf("after timeout: %v", err)
	}
}

// TestTCPConcurrentPairsWithDrops hammers overlapping (from,to) pairs
// while a background goroutine repeatedly tears down the busiest
// connection. Every call must still succeed: queued waiters take the
// stale-conn path and redial. Run with -race. Serialized mode (the
// dropper needs the conns map); the mux analogue lives in mux_test.go.
func TestTCPConcurrentPairsWithDrops(t *testing.T) {
	base, err := NewTCPWithOptions(echoHandlers(3), Options{Serialized: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := WithRetry(base, Options{MaxAttempts: 4})
	defer func() { _ = tr.Close() }()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // the dropper
		defer wg.Done()
		for i := 0; i < 25; i++ {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
			}
			base.mu.Lock()
			lc := base.conns[[2]int{0, 1}]
			base.mu.Unlock()
			if lc != nil {
				lc.mu.Lock()
				base.dropConn(0, 1, lc)
				lc.mu.Unlock()
			}
		}
	}()

	pairs := [][2]int{{0, 1}, {0, 1}, {1, 0}, {0, 2}, {2, 1}, {1, 2}}
	errs := make(chan error, len(pairs)*50)
	for g, p := range pairs {
		wg.Add(1)
		go func(g int, from, to int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				m := fmt.Sprintf("g%d-m%d", g, i)
				got, err := tr.Call(from, to, []byte(m))
				if err != nil {
					errs <- fmt.Errorf("call %d->%d: %w", from, to, err)
					return
				}
				if want := fmt.Sprintf("n%d<-%d:%s", to, from, m); string(got) != want {
					errs <- fmt.Errorf("got %q, want %q", got, want)
					return
				}
			}
		}(g, p[0], p[1])
	}
	// Wait for workers, then stop the dropper.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	<-done
	close(stop)
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// --- retry wrapper ----------------------------------------------------

func TestRetryRecovers(t *testing.T) {
	inner := NewLocal(echoHandlers(2))
	fails := 2
	inner.FailCall = func(from, to int, payload []byte) bool {
		if fails > 0 {
			fails--
			return true
		}
		return false
	}
	var retries []int
	tr := WithRetry(inner, Options{
		MaxAttempts: 4,
		BackoffBase: time.Microsecond,
		OnRetry: func(from, to, attempt int, payload []byte, err error) {
			if !errors.Is(err, ErrInjected) {
				t.Errorf("OnRetry err = %v", err)
			}
			retries = append(retries, attempt)
		},
	})
	got, err := tr.Call(0, 1, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "n1<-0:x" {
		t.Fatalf("got %q", got)
	}
	if len(retries) != 2 || retries[0] != 1 || retries[1] != 2 {
		t.Fatalf("retries = %v, want [1 2]", retries)
	}
}

func TestRetryExhausted(t *testing.T) {
	inner := NewLocal(echoHandlers(2))
	calls := 0
	inner.FailCall = func(from, to int, payload []byte) bool { calls++; return true }
	tr := WithRetry(inner, Options{MaxAttempts: 3, BackoffBase: time.Microsecond})
	if _, err := tr.Call(0, 1, nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if calls != 3 {
		t.Fatalf("attempts = %d, want 3", calls)
	}
}

func TestRetryNonRetryableNotRetried(t *testing.T) {
	calls := 0
	hs := []Handler{func(from int, p []byte) ([]byte, error) {
		calls++
		return nil, errors.New("deterministic")
	}}
	tr := WithRetry(NewLocal(hs), Options{MaxAttempts: 5, BackoffBase: time.Microsecond})
	if _, err := tr.Call(0, 0, nil); err == nil {
		t.Fatal("expected error")
	}
	if calls != 1 {
		t.Fatalf("handler ran %d times, want 1 (no retries of deterministic errors)", calls)
	}
}

func TestWithRetryPassthrough(t *testing.T) {
	inner := NewLocal(echoHandlers(1))
	if tr := WithRetry(inner, Options{MaxAttempts: 1}); tr != Transport(inner) {
		t.Fatal("MaxAttempts <= 1 must return the inner transport unchanged")
	}
	if tr := WithRetry(inner, Options{}); tr != Transport(inner) {
		t.Fatal("zero Options must return the inner transport unchanged")
	}
}

// --- chaos wrapper ----------------------------------------------------

// countingHandlers count executions per node, so tests can distinguish
// "request never delivered" from "reply lost after execution".
func countingHandlers(n int, counts []atomic.Int64) []Handler {
	hs := make([]Handler, n)
	for i := 0; i < n; i++ {
		node := i
		hs[i] = func(from int, p []byte) ([]byte, error) {
			counts[node].Add(1)
			return append([]byte{byte(node)}, p...), nil
		}
	}
	return hs
}

func TestChaosPlanFaults(t *testing.T) {
	counts := make([]atomic.Int64, 2)
	schedule := []Fault{FaultDropRequest, FaultDropReply, FaultDuplicate, FaultNone}
	tr := NewChaos(NewLocal(countingHandlers(2, counts)), ChaosOptions{
		Plan: func(from, to int, payload []byte, call int64) Fault {
			return schedule[call-1]
		},
	})
	defer func() { _ = tr.Close() }()

	// Call 1: dropped request — receiver must NOT execute.
	if _, err := tr.Call(0, 1, []byte("a")); !errors.Is(err, ErrInjected) {
		t.Fatalf("drop-request err = %v", err)
	}
	if got := counts[1].Load(); got != 0 {
		t.Fatalf("dropped request executed %d times", got)
	}
	// Call 2: dropped reply — receiver HAS executed exactly once.
	if _, err := tr.Call(0, 1, []byte("b")); !errors.Is(err, ErrInjected) {
		t.Fatalf("drop-reply err = %v", err)
	}
	if got := counts[1].Load(); got != 1 {
		t.Fatalf("drop-reply executions = %d, want 1", got)
	}
	// Call 3: duplicate — receiver executes twice, call succeeds.
	got, err := tr.Call(0, 1, []byte("c"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "\x01c" {
		t.Fatalf("got %q", got)
	}
	if n := counts[1].Load(); n != 3 {
		t.Fatalf("after duplicate, executions = %d, want 3", n)
	}
	// Call 4: clean.
	if _, err := tr.Call(0, 1, []byte("d")); err != nil {
		t.Fatal(err)
	}
	if tr.Calls() != 4 || tr.Injected() != 3 {
		t.Fatalf("calls=%d injected=%d, want 4/3", tr.Calls(), tr.Injected())
	}
}

func TestChaosDelay(t *testing.T) {
	tr := NewChaos(NewLocal(echoHandlers(2)), ChaosOptions{
		Delay: 30 * time.Millisecond,
		Plan: func(from, to int, payload []byte, call int64) Fault {
			return FaultDelay
		},
	})
	defer func() { _ = tr.Close() }()
	start := time.Now()
	if _, err := tr.Call(0, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delay fault took only %v", d)
	}
}

func TestChaosPartitionHeals(t *testing.T) {
	var healed atomic.Bool
	tr := NewChaos(NewLocal(echoHandlers(3)), ChaosOptions{
		Partitioned: func(from, to int) bool {
			return !healed.Load() && (from == 0) != (to == 0) // node 0 isolated
		},
	})
	defer func() { _ = tr.Close() }()
	if _, err := tr.Call(0, 1, nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("partitioned call err = %v", err)
	}
	if _, err := tr.Call(2, 0, nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("partitioned call err = %v", err)
	}
	if _, err := tr.Call(1, 2, nil); err != nil {
		t.Fatalf("intra-island call failed: %v", err)
	}
	healed.Store(true)
	if _, err := tr.Call(0, 1, nil); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestChaosDeterministicSchedule(t *testing.T) {
	run := func() []bool {
		tr := NewChaos(NewLocal(echoHandlers(2)), ChaosOptions{
			Seed:            42,
			DropRequestProb: 0.2,
			DropReplyProb:   0.1,
			DuplicateProb:   0.1,
		})
		defer func() { _ = tr.Close() }()
		var failed []bool
		for i := 0; i < 60; i++ {
			_, err := tr.Call(0, 1, []byte{byte(i)})
			failed = append(failed, err != nil)
		}
		return failed
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: schedules diverge with identical seeds", i)
		}
	}
}

// TestChaosWithRetryRecovers is the intended composition: chaos under
// retry, over both base transports. Every call must eventually succeed.
func TestChaosWithRetryRecovers(t *testing.T) {
	for _, tc := range []struct {
		name string
		base func() (Transport, error)
	}{
		{"local", func() (Transport, error) { return NewLocal(echoHandlers(3)), nil }},
		{"tcp", func() (Transport, error) { return NewTCP(echoHandlers(3)) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base, err := tc.base()
			if err != nil {
				t.Fatal(err)
			}
			chaos := NewChaos(base, ChaosOptions{
				Seed:            7,
				DropRequestProb: 0.2,
				DropReplyProb:   0.1,
				DuplicateProb:   0.05,
			})
			tr := WithRetry(chaos, Options{MaxAttempts: 10, BackoffBase: time.Microsecond})
			defer func() { _ = tr.Close() }()
			for i := 0; i < 80; i++ {
				from, to := i%3, (i+1)%3
				want := fmt.Sprintf("n%d<-%d:m%d", to, from, i)
				got, err := tr.Call(from, to, []byte(fmt.Sprintf("m%d", i)))
				if err != nil {
					t.Fatalf("call %d: %v", i, err)
				}
				if string(got) != want {
					t.Fatalf("call %d: got %q, want %q", i, got, want)
				}
			}
			if chaos.Injected() == 0 {
				t.Fatal("chaos injected nothing; test proves nothing")
			}
		})
	}
}

// TestChaosFaultBudget proves the probabilistic knobs stop injecting
// once the budget is spent, so a budgeted soak's tail runs fault-free.
func TestChaosFaultBudget(t *testing.T) {
	tr := NewChaos(NewLocal(echoHandlers(2)), ChaosOptions{
		DropRequestProb: 1.0, // every unbudgeted decision would fault
		FaultBudget:     3,
	})
	defer func() { _ = tr.Close() }()
	faults := 0
	for i := 0; i < 20; i++ {
		if _, err := tr.Call(0, 1, []byte("x")); err != nil {
			faults++
		}
	}
	if faults != 3 {
		t.Fatalf("faults = %d, want exactly the budget of 3", faults)
	}
	if tr.Injected() != 3 {
		t.Fatalf("Injected = %d, want 3", tr.Injected())
	}
}

// TestChaosMaxConsecutive proves streaks of probabilistic injections are
// capped: with certain-fault knobs and MaxConsecutive=2, every third
// call must succeed, so a retry budget of 3 can never be exhausted.
func TestChaosMaxConsecutive(t *testing.T) {
	tr := NewChaos(NewLocal(echoHandlers(2)), ChaosOptions{
		DropRequestProb: 1.0,
		MaxConsecutive:  2,
	})
	defer func() { _ = tr.Close() }()
	pattern := make([]bool, 0, 9)
	for i := 0; i < 9; i++ {
		_, err := tr.Call(0, 1, []byte("x"))
		pattern = append(pattern, err == nil)
	}
	for i, ok := range pattern {
		want := (i+1)%3 == 0 // every third decision is forced clean
		if ok != want {
			t.Fatalf("call %d success = %v, want %v (pattern %v)", i+1, ok, want, pattern)
		}
	}
}
