package transport

import "time"

// CallObserver receives one callback per completed logical Call — after
// any retry wrapper has given up or succeeded — with the wall-clock
// duration of the whole call and the final outcome. payload and reply
// are the request and response frames (reply is nil on error); observers
// must not retain or mutate them. Observers run on the caller's
// goroutine and must be cheap and non-blocking.
type CallObserver func(from, to int, payload, reply []byte, d time.Duration, err error)

// WithCallObserver wraps inner so that fn observes every Call. Unlike
// WithRetry it always wraps (there is no configuration under which it
// becomes a no-op), which makes it the natural outermost layer: placed
// above WithRetry it times the full logical call including backoff
// sleeps. A nil fn returns inner unchanged.
func WithCallObserver(inner Transport, fn CallObserver) Transport {
	if fn == nil {
		return inner
	}
	return &observed{inner: inner, fn: fn}
}

// observed is the WithCallObserver implementation.
type observed struct {
	inner Transport
	fn    CallObserver
}

// Call implements Transport.
func (o *observed) Call(from, to int, payload []byte) ([]byte, error) {
	start := time.Now()
	reply, err := o.inner.Call(from, to, payload)
	o.fn(from, to, payload, reply, time.Since(start), err)
	return reply, err
}

// Close implements Transport.
func (o *observed) Close() error { return o.inner.Close() }

// Unwrap returns the wrapped transport.
func (o *observed) Unwrap() Transport { return o.inner }

// Base strips every wrapper (observer, retry, chaos) and returns the
// underlying concrete transport. Tests use it to reach fault-injection
// knobs on Local regardless of how a cluster layered its wrappers.
func Base(tr Transport) Transport {
	for {
		u, ok := tr.(interface{ Unwrap() Transport })
		if !ok {
			return tr
		}
		tr = u.Unwrap()
	}
}
