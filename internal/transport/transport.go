// Package transport moves encoded DSM messages between nodes.
//
// Two implementations are provided: Local delivers messages by direct
// dispatch inside one process (the default for simulation; fully
// deterministic), and TCP carries the same frames over real sockets,
// demonstrating that the protocol is a genuine distributed protocol. Both
// carry the encoded wire form from package msg, so byte accounting is
// identical across transports.
//
// Two composable wrappers harden either base transport: Chaos injects
// faults (drops, delays, duplicates, partitions) for resilience testing,
// and WithRetry adds bounded retry with exponential backoff and jitter
// (see Options). The intended production stack is
//
//	WithRetry(NewTCPWithOptions(handlers, o), o)
//
// and the intended test stack inserts NewChaos between the two.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"actdsm/internal/msg"
)

// Handler serves a request payload arriving at a node and returns the
// reply payload.
//
// Buffer ownership: the transport owns the payload and may recycle it
// (msg.PutBuf) as soon as the handler returns, so the handler must not
// retain it. The reply passes ownership the other way — the transport
// recycles it after framing it. A handler must therefore return either
// a buffer it owns outright (freshly allocated or msg.GetBuf'd, the
// usual msg.EncodeTo shape) or the payload slice itself (echoes); never
// a buffer that is shared or referenced elsewhere.
type Handler func(from int, payload []byte) ([]byte, error)

// Transport is a synchronous request/reply fabric between n nodes.
type Transport interface {
	// Call sends payload from node `from` to node `to` and returns the
	// reply.
	Call(from, to int, payload []byte) ([]byte, error)
	// Close releases transport resources.
	Close() error
}

// Compile-time interface checks.
var (
	_ Transport = (*Local)(nil)
	_ Transport = (*TCP)(nil)
)

// ErrInjected is returned for calls failed by a fault injector (a Local
// transport's FailCall hook or a Chaos wrapper). It marks transient,
// retry-worthy failures: Retryable reports true for it.
var ErrInjected = errors.New("transport: injected failure")

// ErrFrameTooLarge is returned when a handler produces a reply that does
// not fit in one frame. The reply is not sent; the connection survives.
var ErrFrameTooLarge = errors.New("transport: reply exceeds frame limit")

// ErrNodeDown is returned for calls to or from a crashed node (a Chaos
// wrapper with an armed CrashSchedule, or an explicit Kill). Unlike
// ErrInjected it marks a PERMANENT failure: Retryable reports false, so
// retry loops surface it immediately and the caller can fail the role
// over to a successor instead of burning its retry budget.
var ErrNodeDown = errors.New("transport: node down")

// errConnStale marks a connection that was closed by another caller's
// dropConn before this caller sent anything. Nothing of the request went
// out, so TCP.Call retries it transparently on a fresh connection.
var errConnStale = errors.New("transport: connection closed before send")

// RemoteError reports a handler failure on a remote node, carried back
// over the TCP transport. Recognized sentinel errors (ErrInjected,
// ErrFrameTooLarge) survive the wire: Unwrap exposes them so
// errors.Is(err, ErrInjected) holds across transports instead of being
// flattened to text.
type RemoteError struct {
	// Node is the node whose handler failed.
	Node int
	// Sentinel is the recognized sentinel the remote error matched, or
	// nil for an ordinary error.
	Sentinel error
	// Msg is the remote error text.
	Msg string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("transport: remote node %d: %s", e.Node, e.Msg)
}

// Unwrap exposes the preserved sentinel (may be nil).
func (e *RemoteError) Unwrap() error { return e.Sentinel }

// Retryable reports whether err is a transient transport-level failure
// that a retry on a fresh attempt could cure: injected faults, network
// errors (timeouts, resets, closed connections), and truncated streams.
// Deterministic failures — handler errors, unknown destinations,
// oversized replies — are not retryable.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	var re *RemoteError
	if errors.As(err, &re) {
		// A remote handler failure is deterministic unless the handler
		// itself hit an injected fault (e.g. a nested call through a
		// Chaos wrapper): re-running the handler can then succeed. A
		// nested ErrNodeDown stays permanent across the wire.
		return errors.Is(re.Sentinel, ErrInjected)
	}
	if errors.Is(err, ErrNodeDown) {
		return false
	}
	if errors.Is(err, ErrInjected) || errors.Is(err, errConnStale) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	return errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE)
}

// Local is an in-process transport: Call dispatches directly to the
// destination handler. An optional fault injector can fail selected calls
// to test error paths (the Chaos wrapper generalizes it and works over
// both transports).
type Local struct {
	handlers []Handler
	// FailCall, if non-nil, is consulted before each call; returning
	// true fails the call with ErrInjected.
	FailCall func(from, to int, payload []byte) bool
}

// NewLocal returns a Local transport over the given per-node handlers.
func NewLocal(handlers []Handler) *Local {
	hs := make([]Handler, len(handlers))
	copy(hs, handlers)
	return &Local{handlers: hs}
}

// Call implements Transport.
func (l *Local) Call(from, to int, payload []byte) ([]byte, error) {
	if from < 0 || from >= len(l.handlers) {
		return nil, fmt.Errorf("transport: no source node %d", from)
	}
	if to < 0 || to >= len(l.handlers) || l.handlers[to] == nil {
		return nil, fmt.Errorf("transport: no handler for node %d", to)
	}
	if l.FailCall != nil && l.FailCall(from, to, payload) {
		return nil, ErrInjected
	}
	return l.handlers[to](from, payload)
}

// Close implements Transport.
func (l *Local) Close() error { return nil }

// TCP carries frames over loopback TCP sockets, one listener per node.
//
// Each dialed connection starts with a 4-byte preamble selecting one of
// two disciplines. The default is the multiplexed stream ("ACTM", see
// mux.go): pipelined tagged frames, out-of-order reply matching, and
// vectored batched writes. Options.Serialized selects the historical
// discipline ("ACTS"): one outstanding call per (from, to) connection,
// with frames
//
//	request:  [u32 length][u32 from][payload]
//	reply:    [u32 length][u8 status][payload or error text]
type TCP struct {
	opts      Options
	listeners []net.Listener
	addrs     []string

	mu    sync.Mutex // guards conns and muxes maps only
	conns map[[2]int]*lockedConn
	muxes map[[2]int]*muxConn

	// wireOut/wireIn count frame bytes crossing the sockets (see
	// WireBytes).
	wireOut atomic.Int64
	wireIn  atomic.Int64

	// hb is an in-process happens-before bridge. The simulated
	// transport delivers a call by invoking the handler directly, so
	// everything the caller did before Call is ordered before the
	// handler body — and the DSM layer's locking model is built on that
	// contract (its application threads write page memory unlocked
	// between synchronization operations). A kernel socket gives the Go
	// memory model no such edge when both endpoints live in one process
	// (the usual test and benchmark topology: one TCP instance hosts
	// every node). Each side therefore bumps this shared atomic at the
	// four hand-off points of a call — caller send, server receive,
	// server reply, caller receive. Atomic read-modify-writes on one
	// address form a single synchronized-before chain (Go memory model,
	// "Atomic Values"), which restores Call-happens-before-handler and
	// handler-happens-before-return without any lock on the data path.
	hb atomic.Int64

	wg     sync.WaitGroup
	closed chan struct{}
}

const (
	tcpOK = 0
	// tcpErr carries an ordinary remote handler error as text.
	tcpErr = 1
	// tcpErrInjected carries a remote handler error that matched
	// ErrInjected; the client re-attaches the sentinel.
	tcpErrInjected = 2
	// tcpErrTooLarge reports a reply that exceeded maxFrame; the client
	// re-attaches ErrFrameTooLarge.
	tcpErrTooLarge = 3
	// tcpErrNodeDown carries a remote handler error that matched
	// ErrNodeDown; the client re-attaches the sentinel so failover
	// triggers across transports.
	tcpErrNodeDown = 4
	// maxFrame bounds a frame so a corrupt peer cannot force a huge
	// allocation.
	maxFrame = 64 << 20
	// staleRetries bounds the transparent retries Call makes when it
	// inherits a connection another caller already declared dead.
	staleRetries = 4
)

// statusFor maps a handler error to the reply status byte that preserves
// recognized sentinels across the wire.
func statusFor(err error) byte {
	switch {
	case errors.Is(err, ErrInjected):
		return tcpErrInjected
	case errors.Is(err, ErrFrameTooLarge):
		return tcpErrTooLarge
	case errors.Is(err, ErrNodeDown):
		return tcpErrNodeDown
	default:
		return tcpErr
	}
}

// sentinelFor is the inverse of statusFor on the client side.
func sentinelFor(status byte) error {
	switch status {
	case tcpErrInjected:
		return ErrInjected
	case tcpErrTooLarge:
		return ErrFrameTooLarge
	case tcpErrNodeDown:
		return ErrNodeDown
	default:
		return nil
	}
}

// NewTCP starts one loopback listener per handler and returns a transport
// connecting them, with default Options (no timeout).
func NewTCP(handlers []Handler) (*TCP, error) {
	return NewTCPWithOptions(handlers, Options{})
}

// NewTCPWithOptions is NewTCP with explicit resilience options. Only
// CallTimeout applies at this layer (a deadline covering one round trip);
// retry and backoff are layered on by WithRetry so they also cover
// redialing after a drop.
func NewTCPWithOptions(handlers []Handler, opts Options) (*TCP, error) {
	t := &TCP{
		opts:      opts,
		listeners: make([]net.Listener, len(handlers)),
		addrs:     make([]string, len(handlers)),
		conns:     make(map[[2]int]*lockedConn),
		muxes:     make(map[[2]int]*muxConn),
		closed:    make(chan struct{}),
	}
	for i, h := range handlers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			_ = t.Close()
			return nil, fmt.Errorf("transport: listen node %d: %w", i, err)
		}
		t.listeners[i] = ln
		t.addrs[i] = ln.Addr().String()
		t.wg.Add(1)
		go t.acceptLoop(ln, h)
	}
	return t, nil
}

func (t *TCP) acceptLoop(ln net.Listener, h Handler) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			defer func() { _ = conn.Close() }()
			var pre [4]byte
			if _, err := io.ReadFull(conn, pre[:]); err != nil {
				return
			}
			switch pre {
			case muxPreamble:
				t.serveMux(conn, h)
			case serialPreamble:
				t.serveConn(conn, h)
			}
		}()
	}
}

func (t *TCP) serveConn(conn net.Conn, h Handler) {
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(hdr[:4])
		from := int(binary.LittleEndian.Uint32(hdr[4:]))
		if n > maxFrame {
			return
		}
		payload := getFrameBuf(int(n))
		if _, err := io.ReadFull(conn, payload); err != nil {
			msg.PutBuf(payload)
			return
		}
		t.wireIn.Add(int64(len(hdr)) + int64(n))
		t.hb.Add(1) // acquire the caller's send clock (see hb)
		reply, err := h(from, payload)
		t.hb.Add(1) // release the handler's effects to the caller
		if err == nil && 1+len(reply) > maxFrame {
			// An oversized reply written as-is would exceed the
			// client's frame bound and poison the connection
			// ("bad reply length" followed by a forced drop).
			// Replace it with a structured, sentinel-preserving
			// error frame instead; the connection stays usable.
			err = fmt.Errorf("%w (%d bytes > %d)", ErrFrameTooLarge, 1+len(reply), maxFrame)
		}
		out := msg.GetBuf()
		var rh [5]byte
		if err != nil {
			e := err.Error()
			if 1+len(e) > maxFrame { // cannot happen in practice; stay safe
				e = e[:1024]
			}
			binary.LittleEndian.PutUint32(rh[:4], uint32(1+len(e)))
			rh[4] = statusFor(err)
			out = append(out, rh[:]...)
			out = append(out, e...)
			msg.PutBuf(payload)
		} else {
			binary.LittleEndian.PutUint32(rh[:4], uint32(1+len(reply)))
			rh[4] = tcpOK
			out = append(out, rh[:]...)
			out = append(out, reply...)
			if sameBase(reply, payload) {
				msg.PutBuf(payload) // echo: one buffer, one recycle
			} else {
				msg.PutBuf(payload)
				if reply != nil {
					msg.PutBuf(reply)
				}
			}
		}
		_, werr := conn.Write(out)
		t.wireOut.Add(int64(len(out)))
		msg.PutBuf(out)
		if werr != nil {
			return
		}
	}
}

// lockedConn serializes round trips on one (from, to) connection. Distinct
// pairs use distinct connections, so a nested call chain (A→B handler
// calling B→C) never blocks on another pair's lock.
type lockedConn struct {
	mu   sync.Mutex
	conn net.Conn
	// dead is set (under mu) by dropConn when the connection is torn
	// down. A caller that was queued on mu while the teardown happened
	// must not write to the closed conn; it re-resolves instead.
	dead bool
}

// Call implements Transport. Calls with the same (from, to) pair share
// one stream: pipelined on it under the default multiplexed discipline,
// serialized on it with Options.Serialized.
//
// If the stream was declared dead by a concurrent caller before this
// call sent any bytes, Call transparently re-resolves (redialing if
// needed) and retries: nothing of the request reached the peer, so the
// retry is safe regardless of the payload's idempotency. Failures after
// bytes were sent are returned to the caller (layer WithRetry above this
// transport when the protocol is idempotent).
func (t *TCP) Call(from, to int, payload []byte) ([]byte, error) {
	if to < 0 || to >= len(t.addrs) {
		return nil, fmt.Errorf("transport: no node %d", to)
	}
	if from < 0 || from >= len(t.addrs) {
		return nil, fmt.Errorf("transport: no source node %d", from)
	}
	for attempt := 0; ; attempt++ {
		var reply []byte
		var err error
		if t.opts.Serialized {
			var lc *lockedConn
			if lc, err = t.conn(from, to); err == nil {
				reply, err = t.roundTrip(lc, from, to, payload)
			}
		} else {
			var mc *muxConn
			if mc, err = t.mux(from, to); err == nil {
				reply, err = mc.roundTrip(payload)
			}
		}
		if err != nil && errors.Is(err, errConnStale) && attempt < staleRetries {
			continue // dead on arrival; nothing was sent
		}
		return reply, err
	}
}

// WireBytes reports the total frame bytes written to and read from this
// transport's sockets (dial preambles excluded). On the usual loopback
// setup both endpoints of every connection belong to this TCP, so each
// call's bytes are counted once on the send side and once on the
// receive side. Compression tests use the sent counter to verify large
// payloads shrink on the wire.
func (t *TCP) WireBytes() (sent, received int64) {
	return t.wireOut.Load(), t.wireIn.Load()
}

// roundTrip performs one request/reply exchange on lc.
func (t *TCP) roundTrip(lc *lockedConn, from, to int, payload []byte) ([]byte, error) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.dead {
		return nil, errConnStale
	}
	conn := lc.conn
	if t.opts.CallTimeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(t.opts.CallTimeout))
	}
	frame := msg.GetBuf()
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(from))
	frame = append(frame, hdr[:]...)
	frame = append(frame, payload...)
	t.hb.Add(1) // release the caller's clock to the server (see hb)
	_, werr := conn.Write(frame)
	t.wireOut.Add(int64(len(frame)))
	msg.PutBuf(frame)
	if werr != nil {
		t.dropConn(from, to, lc)
		return nil, fmt.Errorf("transport: write %d->%d: %w", from, to, werr)
	}
	var rh [5]byte
	if _, err := io.ReadFull(conn, rh[:]); err != nil {
		t.dropConn(from, to, lc)
		return nil, fmt.Errorf("transport: read %d->%d: %w", from, to, err)
	}
	n := binary.LittleEndian.Uint32(rh[:4])
	if n == 0 || n > maxFrame {
		t.dropConn(from, to, lc)
		return nil, fmt.Errorf("transport: bad reply length %d", n)
	}
	status := rh[4]
	body := getFrameBuf(int(n) - 1)
	if _, err := io.ReadFull(conn, body); err != nil {
		msg.PutBuf(body)
		t.dropConn(from, to, lc)
		return nil, fmt.Errorf("transport: read %d->%d: %w", from, to, err)
	}
	t.wireIn.Add(int64(4) + int64(n))
	t.hb.Add(1) // acquire the handler's effects (see hb)
	if t.opts.CallTimeout > 0 {
		_ = conn.SetDeadline(time.Time{})
	}
	if status != tcpOK {
		err := &RemoteError{Node: to, Sentinel: sentinelFor(status), Msg: string(body)}
		msg.PutBuf(body)
		return nil, err
	}
	return body, nil
}

func (t *TCP) conn(from, to int) (*lockedConn, error) {
	key := [2]int{from, to}
	t.mu.Lock()
	defer t.mu.Unlock()
	select {
	case <-t.closed:
		return nil, net.ErrClosed
	default:
	}
	if c, ok := t.conns[key]; ok {
		return c, nil
	}
	c, err := net.Dial("tcp", t.addrs[to])
	if err != nil {
		return nil, fmt.Errorf("transport: dial node %d: %w", to, err)
	}
	if _, err := c.Write(serialPreamble[:]); err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("transport: dial node %d: %w", to, err)
	}
	lc := &lockedConn{conn: c}
	t.conns[key] = lc
	return lc, nil
}

// dropConn tears down a broken connection: marks lc dead so queued waiters
// re-resolve instead of writing to the closed net.Conn, and removes the
// map entry (only if it still points at lc — a replacement dialed by a
// retrying caller must survive). The caller holds lc.mu but not t.mu.
func (t *TCP) dropConn(from, to int, lc *lockedConn) {
	lc.dead = true
	_ = lc.conn.Close()
	key := [2]int{from, to}
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.conns[key]; ok && c == lc {
		delete(t.conns, key)
	}
}

// Close shuts down all listeners and connections and waits for server
// goroutines to exit.
func (t *TCP) Close() error {
	select {
	case <-t.closed:
		return nil
	default:
		close(t.closed)
	}
	for _, ln := range t.listeners {
		if ln != nil {
			_ = ln.Close()
		}
	}
	// Collect under the lock, tear down outside it: muxConn.fail calls
	// removeMux, which takes t.mu itself.
	t.mu.Lock()
	muxes := make([]*muxConn, 0, len(t.muxes))
	for k, m := range t.muxes {
		muxes = append(muxes, m)
		delete(t.muxes, k)
	}
	conns := make([]*lockedConn, 0, len(t.conns))
	for k, c := range t.conns {
		conns = append(conns, c)
		delete(t.conns, k)
	}
	t.mu.Unlock()
	for _, m := range muxes {
		m.fail(net.ErrClosed)
	}
	for _, c := range conns {
		_ = c.conn.Close()
	}
	t.wg.Wait()
	return nil
}
