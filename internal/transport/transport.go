// Package transport moves encoded DSM messages between nodes.
//
// Two implementations are provided: Local delivers messages by direct
// dispatch inside one process (the default for simulation; fully
// deterministic), and TCP carries the same frames over real sockets,
// demonstrating that the protocol is a genuine distributed protocol. Both
// carry the encoded wire form from package msg, so byte accounting is
// identical across transports.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Handler serves a request payload arriving at a node and returns the
// reply payload.
type Handler func(from int, payload []byte) ([]byte, error)

// Transport is a synchronous request/reply fabric between n nodes.
type Transport interface {
	// Call sends payload from node `from` to node `to` and returns the
	// reply.
	Call(from, to int, payload []byte) ([]byte, error)
	// Close releases transport resources.
	Close() error
}

// Compile-time interface checks.
var (
	_ Transport = (*Local)(nil)
	_ Transport = (*TCP)(nil)
)

// ErrInjected is returned by a Local transport's fault injector.
var ErrInjected = errors.New("transport: injected failure")

// Local is an in-process transport: Call dispatches directly to the
// destination handler. An optional fault injector can fail selected calls
// to test error paths.
type Local struct {
	handlers []Handler
	// FailCall, if non-nil, is consulted before each call; returning
	// true fails the call with ErrInjected.
	FailCall func(from, to int, payload []byte) bool
}

// NewLocal returns a Local transport over the given per-node handlers.
func NewLocal(handlers []Handler) *Local {
	hs := make([]Handler, len(handlers))
	copy(hs, handlers)
	return &Local{handlers: hs}
}

// Call implements Transport.
func (l *Local) Call(from, to int, payload []byte) ([]byte, error) {
	if to < 0 || to >= len(l.handlers) || l.handlers[to] == nil {
		return nil, fmt.Errorf("transport: no handler for node %d", to)
	}
	if l.FailCall != nil && l.FailCall(from, to, payload) {
		return nil, ErrInjected
	}
	return l.handlers[to](from, payload)
}

// Close implements Transport.
func (l *Local) Close() error { return nil }

// TCP carries frames over loopback TCP sockets, one listener per node.
//
// Frame format, both directions:
//
//	request:  [u32 length][u32 from][payload]
//	reply:    [u32 length][u8 status][payload or error text]
type TCP struct {
	listeners []net.Listener
	addrs     []string

	mu    sync.Mutex // guards conns map only
	conns map[[2]int]*lockedConn

	wg     sync.WaitGroup
	closed chan struct{}
}

const (
	tcpOK  = 0
	tcpErr = 1
	// maxFrame bounds a frame so a corrupt peer cannot force a huge
	// allocation.
	maxFrame = 64 << 20
)

// NewTCP starts one loopback listener per handler and returns a transport
// connecting them.
func NewTCP(handlers []Handler) (*TCP, error) {
	t := &TCP{
		listeners: make([]net.Listener, len(handlers)),
		addrs:     make([]string, len(handlers)),
		conns:     make(map[[2]int]*lockedConn),
		closed:    make(chan struct{}),
	}
	for i, h := range handlers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			_ = t.Close()
			return nil, fmt.Errorf("transport: listen node %d: %w", i, err)
		}
		t.listeners[i] = ln
		t.addrs[i] = ln.Addr().String()
		t.wg.Add(1)
		go t.acceptLoop(ln, h)
	}
	return t, nil
}

func (t *TCP) acceptLoop(ln net.Listener, h Handler) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			defer func() { _ = conn.Close() }()
			t.serveConn(conn, h)
		}()
	}
}

func (t *TCP) serveConn(conn net.Conn, h Handler) {
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(hdr[:4])
		from := int(binary.LittleEndian.Uint32(hdr[4:]))
		if n > maxFrame {
			return
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		reply, err := h(from, payload)
		var out []byte
		if err != nil {
			e := []byte(err.Error())
			out = make([]byte, 5+len(e))
			binary.LittleEndian.PutUint32(out, uint32(1+len(e)))
			out[4] = tcpErr
			copy(out[5:], e)
		} else {
			out = make([]byte, 5+len(reply))
			binary.LittleEndian.PutUint32(out, uint32(1+len(reply)))
			out[4] = tcpOK
			copy(out[5:], reply)
		}
		if _, err := conn.Write(out); err != nil {
			return
		}
	}
}

// lockedConn serializes round trips on one (from, to) connection. Distinct
// pairs use distinct connections, so a nested call chain (A→B handler
// calling B→C) never blocks on another pair's lock.
type lockedConn struct {
	mu   sync.Mutex
	conn net.Conn
}

// Call implements Transport. Calls with the same (from, to) pair reuse one
// connection and are serialized on it.
func (t *TCP) Call(from, to int, payload []byte) ([]byte, error) {
	if to < 0 || to >= len(t.addrs) {
		return nil, fmt.Errorf("transport: no node %d", to)
	}
	lc, err := t.conn(from, to)
	if err != nil {
		return nil, err
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	conn := lc.conn
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], uint32(from))
	copy(frame[8:], payload)
	if _, err := conn.Write(frame); err != nil {
		t.dropConn(from, to)
		return nil, fmt.Errorf("transport: write %d->%d: %w", from, to, err)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		t.dropConn(from, to)
		return nil, fmt.Errorf("transport: read %d->%d: %w", from, to, err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		t.dropConn(from, to)
		return nil, fmt.Errorf("transport: bad reply length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(conn, body); err != nil {
		t.dropConn(from, to)
		return nil, fmt.Errorf("transport: read %d->%d: %w", from, to, err)
	}
	if body[0] == tcpErr {
		return nil, fmt.Errorf("transport: remote node %d: %s", to, body[1:])
	}
	return body[1:], nil
}

func (t *TCP) conn(from, to int) (*lockedConn, error) {
	key := [2]int{from, to}
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.conns[key]; ok {
		return c, nil
	}
	c, err := net.Dial("tcp", t.addrs[to])
	if err != nil {
		return nil, fmt.Errorf("transport: dial node %d: %w", to, err)
	}
	lc := &lockedConn{conn: c}
	t.conns[key] = lc
	return lc, nil
}

// dropConn removes a broken connection; the caller holds the lockedConn's
// own mutex but not t.mu.
func (t *TCP) dropConn(from, to int) {
	key := [2]int{from, to}
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.conns[key]; ok {
		_ = c.conn.Close()
		delete(t.conns, key)
	}
}

// Close shuts down all listeners and connections and waits for server
// goroutines to exit.
func (t *TCP) Close() error {
	select {
	case <-t.closed:
		return nil
	default:
		close(t.closed)
	}
	for _, ln := range t.listeners {
		if ln != nil {
			_ = ln.Close()
		}
	}
	t.mu.Lock()
	for k, c := range t.conns {
		_ = c.conn.Close()
		delete(t.conns, k)
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}
