package check

// Deterministic schedule exploration: replay small application
// configurations under seeded schedules × chaos plans with the Oracle
// attached, record any failing (seed, plan) pair, and greedily shrink
// the plan to a minimal reproduction.
//
// Determinism contract: every trial runs the Local transport with
// dsm.Config.SerialFanOut, so the global transport-call sequence is a
// pure function of (scenario, seed, plan, mutation). Chaos plans key
// faults by global call number; replaying the same trial replays the
// same faults at the same protocol points, which is what makes shrinking
// (and the printed regression stanza) exact.

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"actdsm/internal/apps"
	"actdsm/internal/core"
	"actdsm/internal/dsm"
	"actdsm/internal/memlayout"
	"actdsm/internal/msg"
	"actdsm/internal/placement"
	"actdsm/internal/serve"
	"actdsm/internal/sim"
	"actdsm/internal/threads"
	"actdsm/internal/transport"
)

// Scenario is one workload configuration the sweep replays.
type Scenario struct {
	// Name identifies the scenario in reports and repro stanzas.
	Name string
	// App is an apps registry name ("SOR", "Ocean", "LU1k", ...),
	// "LockChain" for the checker's synthetic lock hand-off chain, or
	// "ServeKV" for the online serving workload (internal/serve), whose
	// windows the checker treats as iterations: Threads is the client
	// count and Iterations-1 the measured windows.
	App        string
	Threads    int
	Nodes      int
	Iterations int
	// PrefetchBudget and BatchDiffs forward to dsm.Config, covering the
	// pull-prefetch, push, and batched-diff paths.
	PrefetchBudget int
	BatchDiffs     bool
	// LockShards, BarrierArity, and HomeMigration forward to
	// dsm.Config, covering the decentralized managers: sharded lock
	// management, the tree barrier, and migrating page homes with
	// grant forwarding. The oracle's lock model follows the same
	// configuration.
	LockShards    int
	BarrierArity  int
	HomeMigration bool
	// Crashes enables dsm.Config.FaultTolerance and asks the plan
	// generator for that many deterministic node crashes per trial,
	// sited at calibrated barrier-protocol call numbers (so the crash
	// lands mid-protocol rather than mid-application, where a dead
	// node's own threads would wedge before the engine migrates them).
	// The oracle's crash/rejoin model is exercised by every such trial.
	Crashes int
	// Restart schedules each generated crash with a rejoin epoch, so
	// trials also cover the recovery protocol (state wipe, re-fetch,
	// re-registration), not just failover.
	Restart bool
	// Controller runs the online placement controller (internal/
	// placement) during the trial: an active tracker plus an eager
	// controller (Period 1, zero hysteresis, unbounded budgets), so every
	// iteration may migrate threads and queue explicit home moves while
	// the oracle watches. Exercises the track → decide → migrate loop
	// under seeded chaos.
	Controller bool
}

// Scenarios returns the default sweep set: the paper's regular
// barrier-structured kernels at 4–8 nodes across the protocol's data
// movement modes, plus the lock chain that exercises transitive causal
// history.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "SOR4", App: "SOR", Threads: 4, Nodes: 4, Iterations: 4, BatchDiffs: true},
		{Name: "SOR8", App: "SOR", Threads: 8, Nodes: 8, Iterations: 3, BatchDiffs: true, PrefetchBudget: -1},
		{Name: "Ocean4", App: "Ocean", Threads: 4, Nodes: 4, Iterations: 3, PrefetchBudget: -1},
		{Name: "LU4", App: "LU1k", Threads: 4, Nodes: 4, Iterations: 4, BatchDiffs: true},
		{Name: "LockChain4", App: "LockChain", Threads: 4, Nodes: 4, Iterations: 5, BatchDiffs: true},
		// Decentralized managers: tree barriers, migrating homes, and
		// sharded/forwarded locks, at the paper's scale and beyond (the
		// 32-node tree exercises a 5-level fan-in).
		{Name: "SOR8tree", App: "SOR", Threads: 8, Nodes: 8, Iterations: 3,
			BatchDiffs: true, BarrierArity: 2, HomeMigration: true},
		{Name: "Ocean4mig", App: "Ocean", Threads: 4, Nodes: 4, Iterations: 3,
			PrefetchBudget: -1, BarrierArity: 3, HomeMigration: true},
		{Name: "LockChain4fwd", App: "LockChain", Threads: 4, Nodes: 4, Iterations: 5,
			BatchDiffs: true, HomeMigration: true, LockShards: 2},
		{Name: "SOR32tree", App: "SOR", Threads: 32, Nodes: 32, Iterations: 2,
			BarrierArity: 2, HomeMigration: true},
		// Online co-orchestration: the placement controller migrating
		// threads and queueing explicit home moves every iteration while
		// chaos faults land — the full track → decide → migrate loop under
		// the oracle.
		{Name: "Ocean4ctl", App: "Ocean", Threads: 4, Nodes: 4, Iterations: 4,
			BatchDiffs: true, HomeMigration: true, Controller: true},
		// Online serving: zipfian lock-striped KV requests instead of
		// barrier-phased array sweeps — irregular page/lock interleavings
		// per window, with and without the migration machinery.
		{Name: "Serve4", App: "ServeKV", Threads: 4, Nodes: 4, Iterations: 4, BatchDiffs: true},
		{Name: "Serve4mig", App: "ServeKV", Threads: 4, Nodes: 4, Iterations: 4,
			PrefetchBudget: -1, HomeMigration: true, LockShards: 2, BarrierArity: 2},
		// Crash-fault tolerance: every decentralized-manager extension
		// enabled, one deterministic crash per trial (with and without a
		// scheduled restart). FaultTolerance excludes the batching and
		// prefetch paths, so these scenarios leave them off.
		{Name: "SOR4ft", App: "SOR", Threads: 4, Nodes: 4, Iterations: 4,
			LockShards: 2, BarrierArity: 2, HomeMigration: true, Crashes: 1},
		{Name: "LockChain4ft", App: "LockChain", Threads: 4, Nodes: 4, Iterations: 5,
			LockShards: 2, BarrierArity: 2, HomeMigration: true, Crashes: 1, Restart: true},
		{Name: "Serve4ft", App: "ServeKV", Threads: 4, Nodes: 4, Iterations: 4,
			LockShards: 2, BarrierArity: 2, HomeMigration: true, Crashes: 1, Restart: true},
	}
}

// BigTreeScenarios returns the large simulated-cluster configurations
// for the distributed-manager sweep leg (64 simulated nodes; slower, so
// not part of the default set).
func BigTreeScenarios() []Scenario {
	return []Scenario{
		{Name: "SOR64tree", App: "SOR", Threads: 64, Nodes: 64, Iterations: 2,
			BarrierArity: 2, HomeMigration: true},
		{Name: "LockChain32fwd", App: "LockChain", Threads: 32, Nodes: 32, Iterations: 3,
			HomeMigration: true},
	}
}

// ScenarioByName returns the named scenario from the default or
// big-tree sets.
func ScenarioByName(name string) (Scenario, error) {
	for _, sc := range append(Scenarios(), BigTreeScenarios()...) {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("check: unknown scenario %q", name)
}

// MustScenario is ScenarioByName, panicking on unknown names (for repro
// stanzas).
func MustScenario(name string) Scenario {
	sc, err := ScenarioByName(name)
	if err != nil {
		panic(err)
	}
	return sc
}

// Plan is a deterministic chaos plan: injected faults keyed by the
// 1-based global transport call number, plus fail-stop crash windows
// keyed on the same counter.
type Plan struct {
	Faults  map[int64]transport.Fault
	Crashes []sim.CrashSchedule
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool { return len(p.Faults) == 0 && len(p.Crashes) == 0 }

// Clone deep-copies the plan.
func (p Plan) Clone() Plan {
	out := Plan{Faults: make(map[int64]transport.Fault, len(p.Faults))}
	for k, v := range p.Faults {
		out.Faults[k] = v
	}
	out.Crashes = append([]sim.CrashSchedule(nil), p.Crashes...)
	return out
}

// calls returns the fault call numbers in ascending order.
func (p Plan) calls() []int64 {
	out := make([]int64, 0, len(p.Faults))
	for c := range p.Faults {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the plan as "call:fault,call:fault" in call order,
// with crash windows as "call:crash:<node>" (plus ":r<epoch>" when the
// node restarts); "-" for an empty plan. ParsePlan inverts it.
func (p Plan) String() string {
	if p.Empty() {
		return "-"
	}
	parts := make([]string, 0, len(p.Faults)+len(p.Crashes))
	for _, c := range p.calls() {
		parts = append(parts, fmt.Sprintf("%d:%s", c, p.Faults[c]))
	}
	crashes := append([]sim.CrashSchedule(nil), p.Crashes...)
	sort.Slice(crashes, func(i, j int) bool { return crashes[i].Call < crashes[j].Call })
	for _, s := range crashes {
		el := fmt.Sprintf("%d:crash:%d", s.Call, s.Node)
		if s.RestartEpoch != 0 {
			el += fmt.Sprintf(":r%d", s.RestartEpoch)
		}
		parts = append(parts, el)
	}
	return strings.Join(parts, ",")
}

// ParsePlan parses the String encoding of a plan.
func ParsePlan(s string) (Plan, error) {
	p := Plan{Faults: make(map[int64]transport.Fault)}
	s = strings.TrimSpace(s)
	if s == "" || s == "-" {
		return p, nil
	}
	byName := map[string]transport.Fault{
		transport.FaultDropRequest.String(): transport.FaultDropRequest,
		transport.FaultDropReply.String():   transport.FaultDropReply,
		transport.FaultDuplicate.String():   transport.FaultDuplicate,
		transport.FaultDelay.String():       transport.FaultDelay,
	}
	for _, part := range strings.Split(s, ",") {
		cs, fs, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return Plan{}, fmt.Errorf("check: bad plan element %q", part)
		}
		call, err := strconv.ParseInt(cs, 10, 64)
		if err != nil {
			return Plan{}, fmt.Errorf("check: bad plan call number %q: %w", cs, err)
		}
		if ns, ok := strings.CutPrefix(fs, "crash:"); ok {
			ns, rs, hasRestart := strings.Cut(ns, ":r")
			node, err := strconv.Atoi(ns)
			if err != nil {
				return Plan{}, fmt.Errorf("check: bad crash node %q: %w", ns, err)
			}
			sched := sim.CrashSchedule{Node: node, Call: call}
			if hasRestart {
				ep, err := strconv.ParseInt(rs, 10, 64)
				if err != nil {
					return Plan{}, fmt.Errorf("check: bad restart epoch %q: %w", rs, err)
				}
				sched.RestartEpoch = ep
			}
			p.Crashes = append(p.Crashes, sched)
			continue
		}
		f, ok := byName[fs]
		if !ok {
			return Plan{}, fmt.Errorf("check: unknown fault %q", fs)
		}
		p.Faults[call] = f
	}
	return p, nil
}

// Trial fully determines one checker run.
type Trial struct {
	Scenario Scenario
	// Seed shuffles per-node thread execution order (the schedule
	// dimension of the exploration).
	Seed uint64
	Plan Plan
	// Mutation optionally runs a deliberately broken protocol, for
	// validating that the checker detects that bug class.
	Mutation dsm.Mutation
}

// TrialResult is one trial's outcome.
type TrialResult struct {
	// Violations holds every invariant breach the oracle detected.
	Violations []Violation
	// RunErr is a non-violation failure: the run aborted (for example a
	// chaos plan exhausted the transport's retry budget). Online
	// violations detected before the abort are still reported;
	// end-of-run conservation and coherence checks are skipped.
	RunErr error
	// Calls is the number of transport calls the trial made (the
	// calibration input for plan generation).
	Calls int64
	// BarrierCalls holds the call numbers of barrier-protocol and GC
	// messages observed (enter, release, collect): the call sites where
	// a generated crash is survivable, because every thread is parked
	// at the rendezvous and the engine migrates the victim's threads
	// before they run again. Plan generation sites crashes here.
	BarrierCalls []int64
	// Elapsed is the trial's wall-clock duration.
	Elapsed time.Duration
}

// Failed reports whether the trial detected a coherence violation.
func (r TrialResult) Failed() bool { return len(r.Violations) > 0 }

// buildApp constructs the scenario's workload. The return type is the
// engine-facing Workload interface, so scenarios mix epoch apps and the
// request-driven serving workload freely — RunTrial only needs Setup
// and Body.
func buildApp(sc Scenario) (threads.Workload, error) {
	switch sc.App {
	case "LockChain":
		return newLockChain(sc.Threads, sc.Iterations)
	case "ServeKV":
		return serve.NewKV(serve.Config{
			Clients:           sc.Threads,
			Keys:              64,
			ValueBytes:        128,
			ReadFraction:      0.75,
			ZipfS:             1.1,
			Groups:            2,
			SharedFraction:    0.25,
			RequestsPerWindow: 8,
			WarmupWindows:     1,
			MeasureWindows:    sc.Iterations - 1,
			LockStripes:       16,
			LockReads:         true,
		})
	default:
		return apps.New(sc.App, apps.Config{
			Threads:    sc.Threads,
			Iterations: sc.Iterations,
			Scale:      apps.ScaleTest,
		})
	}
}

// RunTrial executes one trial with the oracle attached and returns what
// it found. Trials are deterministic: the same Trial yields the same
// TrialResult.
func RunTrial(tr Trial) TrialResult {
	start := time.Now()
	res := TrialResult{}
	fail := func(err error) TrialResult {
		res.RunErr = err
		res.Elapsed = time.Since(start)
		return res
	}

	app, err := buildApp(tr.Scenario)
	if err != nil {
		return fail(err)
	}
	layout := memlayout.NewLayout()
	if err := app.Setup(layout); err != nil {
		return fail(err)
	}

	var calls atomic.Int64
	var barrierMu sync.Mutex
	var barrierCalls []int64
	faults := tr.Plan.Faults
	planFn := func(from, to int, payload []byte, call int64) transport.Fault {
		if call > calls.Load() {
			calls.Store(call)
		}
		if len(payload) > 0 {
			switch msg.Kind(payload[0]) {
			case msg.KindBarrierEnter, msg.KindBarrierRelease, msg.KindGCCollect:
				barrierMu.Lock()
				barrierCalls = append(barrierCalls, call)
				barrierMu.Unlock()
			}
		}
		return faults[call] // zero value is FaultNone
	}
	cl, err := dsm.New(dsm.Config{
		Nodes:          tr.Scenario.Nodes,
		Pages:          layout.TotalPages(),
		SerialFanOut:   true,
		Mutation:       tr.Mutation,
		BatchDiffs:     tr.Scenario.BatchDiffs,
		PrefetchBudget: tr.Scenario.PrefetchBudget,
		LockShards:     tr.Scenario.LockShards,
		BarrierArity:   tr.Scenario.BarrierArity,
		HomeMigration:  tr.Scenario.HomeMigration,
		FaultTolerance: tr.Scenario.Crashes > 0 || len(tr.Plan.Crashes) > 0,
		// Tight retry budget: enough attempts that a single injected
		// fault per call number always recovers (a retried call gets a
		// fresh call number), with microsecond backoff so thousand-trial
		// sweeps stay fast.
		Transport: transport.Options{
			MaxAttempts: 6,
			BackoffBase: time.Microsecond,
			BackoffMax:  8 * time.Microsecond,
		},
		BarrierRetries: 2,
		Chaos:          &transport.ChaosOptions{Plan: planFn, Crashes: tr.Plan.Crashes},
	})
	if err != nil {
		return fail(err)
	}
	defer func() { _ = cl.Close() }()

	oracle := NewOracleWithConfig(OracleConfig{
		Nodes:          tr.Scenario.Nodes,
		LockShards:     tr.Scenario.LockShards,
		LockForwarding: tr.Scenario.HomeMigration,
	})
	oracle.Attach(cl)

	eng, err := threads.NewEngine(cl, threads.Config{
		Threads:          tr.Scenario.Threads,
		SchedulerEnabled: true,
		ShuffleSeed:      tr.Seed,
	})
	if err != nil {
		return fail(err)
	}

	var ctrl *placement.Controller
	if tr.Scenario.Controller {
		// Eager controller: evaluate every iteration with zero hysteresis
		// and unbounded budgets, so trials take the migration paths as
		// often as the cost model allows. Tracking starts at iteration 1
		// (iteration 0 is initialization-skewed).
		tracker := core.NewActiveTracker(eng, 1)
		ctrl, err = placement.NewController(cl, eng, tracker, placement.ControllerConfig{
			Period: 1, ThreadBudget: -1, HomeBudget: -1, Smoothing: 0.5, Retrack: true,
		})
		if err != nil {
			return fail(err)
		}
		eng.SetHooks(tracker.Hooks(ctrl.Hooks(threads.Hooks{})))
		tracker.Start()
	}

	runErr := eng.Run(app.Body)
	if runErr == nil && ctrl != nil {
		runErr = ctrl.Err()
	}
	res.Calls = calls.Load()
	barrierMu.Lock()
	res.BarrierCalls = barrierCalls
	barrierMu.Unlock()
	if runErr != nil {
		res.RunErr = runErr
		res.Violations = oracle.Violations()
		res.Elapsed = time.Since(start)
		return res
	}
	// End-of-run oracles: replica agreement at the final quiescent point,
	// then the oracle's conservation checks.
	if err := cl.CheckCoherence(); err != nil {
		res.Violations = append(res.Violations,
			Violation{Invariant: "final-coherence", Node: -1, Detail: err.Error()})
	}
	_ = oracle.Finish(cl.Stats().Snapshot())
	res.Violations = append(res.Violations, oracle.Violations()...)
	res.Elapsed = time.Since(start)
	return res
}

// planForSeed derives a chaos plan from a trial seed: up to maxFaults
// drop/duplicate events at call numbers within the scenario's calibrated
// call count. Seed 0 (and roughly one in maxFaults+1 seeds) yields an
// empty plan, keeping pure schedule exploration in the mix.
func planForSeed(seed uint64, totalCalls int64, maxFaults int) Plan {
	p := Plan{Faults: make(map[int64]transport.Fault)}
	if totalCalls <= 0 || maxFaults <= 0 {
		return p
	}
	rng := sim.NewRNG(0x9E3779B97F4A7C15 ^ (seed + 1))
	kinds := []transport.Fault{
		transport.FaultDropRequest, transport.FaultDropReply, transport.FaultDuplicate,
	}
	n := rng.Intn(maxFaults + 1)
	for i := 0; i < n; i++ {
		call := int64(rng.Intn(int(totalCalls))) + 1
		p.Faults[call] = kinds[rng.Intn(len(kinds))]
	}
	return p
}

// crashPlanForSeed derives a crash plan for a fault-tolerance scenario:
// sc.Crashes distinct victims, each crashing at a barrier-protocol call
// number from the calibration run (every trial carries at least one
// crash — that is the scenario's point). Drop/duplicate faults are left
// out: retries would shift the global call numbering and push the crash
// out of its barrier window, wedging the victim's threads mid-
// application. With sc.Restart each victim is scheduled to rejoin at a
// random later barrier episode.
func crashPlanForSeed(seed uint64, sc Scenario, barrierCalls []int64) Plan {
	p := Plan{Faults: make(map[int64]transport.Fault)}
	if sc.Crashes <= 0 || len(barrierCalls) == 0 {
		return p
	}
	rng := sim.NewRNG(0xD1B54A32D192ED03 ^ (seed + 1))
	used := make(map[int]bool)
	for i := 0; i < sc.Crashes && i < sc.Nodes-1; i++ {
		victim := rng.Intn(sc.Nodes)
		for used[victim] {
			victim = rng.Intn(sc.Nodes)
		}
		used[victim] = true
		s := sim.CrashSchedule{
			Node: victim,
			Call: barrierCalls[rng.Intn(len(barrierCalls))],
		}
		if sc.Restart {
			// Any epoch is valid: RestartEpoch is a lower bound, so an
			// epoch the crash has already passed rejoins at the next
			// barrier after the crash.
			s.RestartEpoch = 1 + int64(rng.Intn(sc.Iterations+1))
		}
		p.Crashes = append(p.Crashes, s)
	}
	return p
}

// SweepConfig configures an exploration sweep.
type SweepConfig struct {
	// Scenarios to replay; nil selects Scenarios().
	Scenarios []Scenario
	// Seeds is the number of schedules replayed per scenario.
	Seeds int
	// MaxFaults bounds the chaos events per generated plan (default 3).
	MaxFaults int
	// Mutation runs every trial under a deliberately broken protocol.
	Mutation dsm.Mutation
	// Workers bounds trial parallelism (default GOMAXPROCS). Trials are
	// independent and individually deterministic, so parallelism does
	// not affect reproducibility.
	Workers int
	// Progress, when non-nil, receives (done, total) after each trial.
	Progress func(done, total int)
}

// Failure records one failing trial.
type Failure struct {
	Scenario   Scenario
	Seed       uint64
	Plan       Plan
	Mutation   dsm.Mutation
	Violations []Violation
}

func (f *Failure) trial() Trial {
	return Trial{Scenario: f.Scenario, Seed: f.Seed, Plan: f.Plan, Mutation: f.Mutation}
}

// SweepResult summarizes a sweep.
type SweepResult struct {
	// Trials is the number of trials executed.
	Trials int
	// Aborted counts trials that ended in a non-violation run error
	// (chaos plan exhausted the retry budget); these are inconclusive,
	// not failures.
	Aborted int
	// Failure is the lowest-(scenario, seed) failing trial, nil if the
	// sweep was clean.
	Failure *Failure
	// Elapsed is the sweep's wall-clock duration.
	Elapsed time.Duration
}

// Sweep replays cfg.Seeds schedules per scenario, each under a seeded
// chaos plan, and returns the first failure found (by scenario order,
// then seed). Each scenario is first calibrated with one clean run to
// learn its transport call count; a violation in the calibration run
// itself is reported as a failure with an empty plan.
func Sweep(cfg SweepConfig) (*SweepResult, error) {
	start := time.Now()
	scenarios := cfg.Scenarios
	if scenarios == nil {
		scenarios = Scenarios()
	}
	if cfg.Seeds <= 0 {
		cfg.Seeds = 100
	}
	if cfg.MaxFaults == 0 {
		cfg.MaxFaults = 3
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	res := &SweepResult{}
	total := len(scenarios) * cfg.Seeds
	var done atomic.Int64
	report := func() {
		if cfg.Progress != nil {
			cfg.Progress(int(done.Add(1)), total)
		} else {
			done.Add(1)
		}
	}

	type outcome struct {
		scIdx int
		seed  uint64
		plan  Plan
		r     TrialResult
	}
	var (
		mu       sync.Mutex
		best     *outcome // lowest (scIdx, seed) failure
		aborted  int
		executed int
	)
	better := func(o *outcome) bool {
		return best == nil || o.scIdx < best.scIdx ||
			(o.scIdx == best.scIdx && o.seed < best.seed)
	}

	for scIdx, sc := range scenarios {
		// Calibration: one clean, chaos-free run.
		cal := RunTrial(Trial{Scenario: sc, Seed: 0, Mutation: cfg.Mutation})
		if cal.RunErr != nil && !cal.Failed() {
			return nil, fmt.Errorf("check: scenario %s calibration run failed: %w", sc.Name, cal.RunErr)
		}
		executed++
		if cal.Failed() {
			o := &outcome{scIdx: scIdx, seed: 0, plan: Plan{}, r: cal}
			mu.Lock()
			if better(o) {
				best = o
			}
			mu.Unlock()
			// The scenario fails without chaos; no need to sweep it.
			continue
		}
		totalCalls := cal.Calls

		seedCh := make(chan uint64)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for seed := range seedCh {
					mu.Lock()
					skip := best != nil && (scIdx > best.scIdx ||
						(scIdx == best.scIdx && seed > best.seed))
					mu.Unlock()
					if skip {
						report()
						continue
					}
					var plan Plan
					if sc.Crashes > 0 {
						// Per-seed calibration: the thread schedule — and so
						// the global call numbering — is a function of the
						// seed, so barrier-window call numbers must come
						// from a clean run of the SAME seed for the crash
						// to land mid-protocol rather than mid-application.
						pc := RunTrial(Trial{Scenario: sc, Seed: seed, Mutation: cfg.Mutation})
						mu.Lock()
						executed++
						mu.Unlock()
						if pc.Failed() {
							o := &outcome{scIdx: scIdx, seed: seed, plan: Plan{}, r: pc}
							mu.Lock()
							if better(o) {
								best = o
							}
							mu.Unlock()
							report()
							continue
						}
						if pc.RunErr != nil {
							mu.Lock()
							aborted++
							mu.Unlock()
							report()
							continue
						}
						plan = crashPlanForSeed(seed, sc, pc.BarrierCalls)
					} else {
						plan = planForSeed(seed, totalCalls, cfg.MaxFaults)
					}
					r := RunTrial(Trial{Scenario: sc, Seed: seed, Plan: plan, Mutation: cfg.Mutation})
					mu.Lock()
					executed++
					if r.RunErr != nil && !r.Failed() {
						aborted++
					}
					if r.Failed() {
						o := &outcome{scIdx: scIdx, seed: seed, plan: plan, r: r}
						if better(o) {
							best = o
						}
					}
					mu.Unlock()
					report()
				}
			}()
		}
		for seed := uint64(0); seed < uint64(cfg.Seeds); seed++ {
			seedCh <- seed
		}
		close(seedCh)
		wg.Wait()
	}

	res.Trials = executed
	res.Aborted = aborted
	res.Elapsed = time.Since(start)
	if best != nil {
		res.Failure = &Failure{
			Scenario:   scenarios[best.scIdx],
			Seed:       best.seed,
			Plan:       best.plan,
			Mutation:   cfg.Mutation,
			Violations: best.r.Violations,
		}
	}
	return res, nil
}

// Shrink greedily minimizes a failure's chaos plan: it repeatedly
// removes single fault events while the trial still detects a violation,
// until no single removal keeps it failing. The result reproduces a
// violation by construction. (The seed is atomic and never shrunk.)
func Shrink(f *Failure) *Failure {
	cur := *f
	for {
		improved := false
		for _, c := range cur.Plan.calls() {
			cand := cur.Plan.Clone()
			delete(cand.Faults, c)
			t := cur.trial()
			t.Plan = cand
			r := RunTrial(t)
			if r.Failed() {
				cur.Plan = cand
				cur.Violations = r.Violations
				improved = true
				break
			}
		}
		for i := range cur.Plan.Crashes {
			if improved {
				break
			}
			cand := cur.Plan.Clone()
			cand.Crashes = append(cand.Crashes[:i:i], cand.Crashes[i+1:]...)
			t := cur.trial()
			t.Plan = cand
			r := RunTrial(t)
			if r.Failed() {
				cur.Plan = cand
				cur.Violations = r.Violations
				improved = true
			}
		}
		if !improved {
			return &cur
		}
	}
}

// ReproStanza renders the failure as a ready-to-paste regression test
// for internal/check.
func (f *Failure) ReproStanza() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// Regression: %s seed=%d plan=%s mutation=%s\n",
		f.Scenario.Name, f.Seed, f.Plan, f.Mutation)
	for _, v := range f.Violations {
		fmt.Fprintf(&b, "//   %s\n", v)
	}
	fmt.Fprintf(&b, "func TestRepro_%s_%d(t *testing.T) {\n", sanitizeIdent(f.Scenario.Name), f.Seed)
	fmt.Fprintf(&b, "\tplan, err := check.ParsePlan(%q)\n", f.Plan.String())
	b.WriteString("\tif err != nil {\n\t\tt.Fatal(err)\n\t}\n")
	b.WriteString("\tres := check.RunTrial(check.Trial{\n")
	fmt.Fprintf(&b, "\t\tScenario: check.MustScenario(%q),\n", f.Scenario.Name)
	fmt.Fprintf(&b, "\t\tSeed:     %d,\n", f.Seed)
	b.WriteString("\t\tPlan:     plan,\n")
	if f.Mutation != dsm.MutationNone {
		fmt.Fprintf(&b, "\t\tMutation: dsm.Mutation(%d), // %s\n", uint8(f.Mutation), f.Mutation)
	}
	b.WriteString("\t})\n")
	inv := "violation"
	if len(f.Violations) > 0 {
		inv = f.Violations[0].Invariant
	}
	fmt.Fprintf(&b, "\tif !res.Failed() {\n\t\tt.Fatalf(\"expected a coherence violation (%s)\")\n\t}\n}\n", inv)
	return b.String()
}

func sanitizeIdent(s string) string {
	var b strings.Builder
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') || r == '_' {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}
