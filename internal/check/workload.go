package check

// lockChain is the checker's synthetic lock workload: a causal hand-off
// chain that exercises exactly the transitive-history machinery the
// barrier-structured applications never touch. Thread 0 writes page 0
// under lock 0; thread t waits (by polling under lock t-1) until thread
// t-1's cell advances, then reads every upstream page *without* holding
// any lock — legal precisely because the lock chain ordered those writes
// before its acquire front — and finally writes its own page under lock
// t. A protocol that ships only the releaser's own notices on a release
// (dsm.MutationNoTransitivity) breaks the chain at the second hop: the
// oracle's front says thread t must observe page t-2's update, the
// notice never arrives, and the read trips "lost-update".
//
// Locks and pages are both indexed by thread, so with Threads == Nodes
// each hop crosses nodes and every lock has a distinct manager.

import (
	"fmt"

	"actdsm/internal/memlayout"
	"actdsm/internal/threads"
	"actdsm/internal/vm"
)

type lockChain struct {
	threads int
	iters   int
	data    memlayout.Region
}

func newLockChain(nthreads, iters int) (*lockChain, error) {
	if nthreads < 2 {
		return nil, fmt.Errorf("check: LockChain needs at least 2 threads, got %d", nthreads)
	}
	if iters <= 0 {
		iters = 5
	}
	return &lockChain{threads: nthreads, iters: iters}, nil
}

func (a *lockChain) Name() string    { return "LockChain" }
func (a *lockChain) Threads() int    { return a.threads }
func (a *lockChain) Iterations() int { return a.iters }

func (a *lockChain) Setup(l *memlayout.Layout) error {
	var err error
	a.data, err = l.Alloc("chain.cells", a.threads*memlayout.PageSize)
	if err != nil {
		return fmt.Errorf("check: LockChain setup: %w", err)
	}
	return nil
}

// cell returns the element index of thread t's counter (one per page).
func (a *lockChain) cell(t int) int { return t * memlayout.PageSize / 4 }

func (a *lockChain) Body(tid int) threads.Body {
	return func(ctx *threads.Ctx) error {
		for iter := 0; iter < a.iters; iter++ {
			want := int32(iter + 1)
			if tid > 0 {
				// Poll the predecessor's cell under its lock until it
				// reaches this iteration. Polling yields at each Lock, so
				// the cooperative scheduler keeps every thread runnable.
				const maxSpins = 1 << 16
				for spins := 0; ; spins++ {
					if spins > maxSpins {
						return fmt.Errorf("check: LockChain thread %d stuck waiting for %d at iter %d",
							tid, tid-1, iter)
					}
					if err := ctx.Lock(int32(tid - 1)); err != nil {
						return err
					}
					v, err := ctx.I32(a.data, a.cell(tid-1), 1, vm.Read)
					if err != nil {
						_ = ctx.Unlock(int32(tid - 1))
						return err
					}
					got := v.Get(0)
					if err := ctx.Unlock(int32(tid - 1)); err != nil {
						return err
					}
					if got >= want {
						break
					}
					// Give co-resident threads (the predecessor may share
					// this node after a crash migration) a slice between
					// polls.
					ctx.Yield()
				}
				// Transitive reads: every upstream write is ordered before
				// this thread's acquire front through the lock chain, so
				// reading without a lock is LRC-legal — and is exactly the
				// read a broken transitive notice set loses.
				for up := 0; up < tid-1; up++ {
					if _, err := ctx.I32(a.data, a.cell(up), 1, vm.Read); err != nil {
						return err
					}
				}
			}
			// Advance this thread's own cell under its own lock.
			if err := ctx.Lock(int32(tid)); err != nil {
				return err
			}
			v, err := ctx.I32(a.data, a.cell(tid), 1, vm.Write)
			if err != nil {
				_ = ctx.Unlock(int32(tid))
				return err
			}
			v.Set(0, want)
			if err := ctx.Unlock(int32(tid)); err != nil {
				return err
			}
			ctx.EndIteration()
		}
		return nil
	}
}
