package check

// Integration tests for the exploration driver: clean trials across all
// scenarios, determinism, chaos resilience, mutation detection (the
// checker-validation requirement), shrinking, and plan round-trips.

import (
	"reflect"
	"strings"
	"testing"

	"actdsm/internal/dsm"
	"actdsm/internal/transport"
)

func TestCleanTrialsAllScenarios(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			r := RunTrial(Trial{Scenario: sc, Seed: 1})
			if r.RunErr != nil {
				t.Fatalf("run error: %v", r.RunErr)
			}
			if r.Failed() {
				t.Fatalf("clean run reported violations: %v", r.Violations)
			}
			if r.Calls == 0 {
				t.Fatal("calibration counted zero transport calls")
			}
		})
	}
}

func TestTrialDeterminism(t *testing.T) {
	tr := Trial{Scenario: MustScenario("SOR4"), Seed: 7}
	a := RunTrial(tr)
	b := RunTrial(tr)
	if a.RunErr != nil || b.RunErr != nil {
		t.Fatalf("run errors: %v, %v", a.RunErr, b.RunErr)
	}
	if a.Calls != b.Calls {
		t.Fatalf("call counts differ across identical trials: %d vs %d", a.Calls, b.Calls)
	}
	if !reflect.DeepEqual(a.Violations, b.Violations) {
		t.Fatalf("violations differ: %v vs %v", a.Violations, b.Violations)
	}
}

func TestTrialSurvivesChaosPlan(t *testing.T) {
	// Injected drops and duplicates are absorbed by the transport retry
	// layer; the protocol must stay coherent through them.
	plan := Plan{Faults: map[int64]transport.Fault{
		5:  transport.FaultDropRequest,
		20: transport.FaultDropReply,
		35: transport.FaultDuplicate,
	}}
	for _, name := range []string{"SOR4", "LockChain4"} {
		r := RunTrial(Trial{Scenario: MustScenario(name), Seed: 2, Plan: plan})
		if r.RunErr != nil {
			t.Fatalf("%s: run error under chaos plan: %v", name, r.RunErr)
		}
		if r.Failed() {
			t.Fatalf("%s: violations under survivable chaos: %v", name, r.Violations)
		}
	}
}

func TestMutationNoTransitivityDetected(t *testing.T) {
	r := RunTrial(Trial{
		Scenario: MustScenario("LockChain4"),
		Seed:     1,
		Mutation: dsm.MutationNoTransitivity,
	})
	if !r.Failed() {
		t.Fatal("broken transitivity not detected")
	}
	found := false
	for _, v := range r.Violations {
		if v.Invariant == "lost-update" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected lost-update, got %v", r.Violations)
	}
}

func TestMutationNoNoticeDedupDetected(t *testing.T) {
	for _, name := range []string{"SOR4", "LockChain4"} {
		r := RunTrial(Trial{
			Scenario: MustScenario(name),
			Seed:     1,
			Mutation: dsm.MutationNoNoticeDedup,
		})
		if !r.Failed() {
			t.Fatalf("%s: broken notice dedup not detected", name)
		}
		found := false
		for _, v := range r.Violations {
			if v.Invariant == "double-apply" {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: expected double-apply, got %v", name, r.Violations)
		}
	}
}

func TestSweepCleanSmall(t *testing.T) {
	res, err := Sweep(SweepConfig{
		Scenarios: []Scenario{MustScenario("SOR4"), MustScenario("LockChain4")},
		Seeds:     20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure != nil {
		f := Shrink(res.Failure)
		t.Fatalf("clean sweep found a failure:\n%s", f.ReproStanza())
	}
	if res.Trials < 40 {
		t.Fatalf("sweep ran %d trials, want >= 40", res.Trials)
	}
}

func TestSweepFindsAndShrinksMutation(t *testing.T) {
	res, err := Sweep(SweepConfig{
		Scenarios: []Scenario{MustScenario("LockChain4")},
		Seeds:     20,
		Mutation:  dsm.MutationNoTransitivity,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure == nil {
		t.Fatal("mutation sweep found no failure")
	}
	f := Shrink(res.Failure)
	if !f.Plan.Empty() {
		// The mutation fails without any chaos, so the minimal plan is
		// empty.
		t.Fatalf("shrink left a non-minimal plan: %s", f.Plan)
	}
	if len(f.Violations) == 0 {
		t.Fatal("shrunk failure lost its violations")
	}
	stanza := f.ReproStanza()
	for _, want := range []string{"check.RunTrial", "MustScenario(\"LockChain4\")", "func TestRepro_"} {
		if !strings.Contains(stanza, want) {
			t.Fatalf("repro stanza missing %q:\n%s", want, stanza)
		}
	}
}

func TestShrinkDropsIrrelevantFaults(t *testing.T) {
	// A failing trial whose failure is caused by the mutation, not the
	// chaos events: shrinking must strip every event.
	plan := Plan{Faults: map[int64]transport.Fault{
		9:  transport.FaultDuplicate,
		21: transport.FaultDropReply,
	}}
	tr := Trial{
		Scenario: MustScenario("LockChain4"),
		Seed:     3,
		Plan:     plan,
		Mutation: dsm.MutationNoTransitivity,
	}
	r := RunTrial(tr)
	if !r.Failed() {
		t.Fatal("seed trial did not fail")
	}
	f := Shrink(&Failure{
		Scenario: tr.Scenario, Seed: tr.Seed, Plan: tr.Plan,
		Mutation: tr.Mutation, Violations: r.Violations,
	})
	if !f.Plan.Empty() {
		t.Fatalf("shrink kept irrelevant faults: %s", f.Plan)
	}
}

func TestPlanStringRoundTrip(t *testing.T) {
	plans := []Plan{
		{},
		{Faults: map[int64]transport.Fault{1: transport.FaultDropRequest}},
		{Faults: map[int64]transport.Fault{
			3:   transport.FaultDropReply,
			44:  transport.FaultDuplicate,
			100: transport.FaultDropRequest,
		}},
	}
	for _, p := range plans {
		got, err := ParsePlan(p.String())
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", p.String(), err)
		}
		if got.String() != p.String() {
			t.Fatalf("round trip: %q -> %q", p.String(), got.String())
		}
	}
	if _, err := ParsePlan("nonsense"); err == nil {
		t.Fatal("ParsePlan accepted garbage")
	}
	if _, err := ParsePlan("5:warp-drive"); err == nil {
		t.Fatal("ParsePlan accepted an unknown fault")
	}
}

func TestPlanForSeedDeterministic(t *testing.T) {
	a := planForSeed(42, 500, 3)
	b := planForSeed(42, 500, 3)
	if a.String() != b.String() {
		t.Fatalf("plan generation not deterministic: %s vs %s", a, b)
	}
	// Across seeds, plans vary and stay within bounds.
	nonEmpty := 0
	for s := uint64(0); s < 50; s++ {
		p := planForSeed(s, 500, 3)
		if len(p.Faults) > 3 {
			t.Fatalf("seed %d: plan has %d faults, max 3", s, len(p.Faults))
		}
		if !p.Empty() {
			nonEmpty++
		}
		for c := range p.Faults {
			if c < 1 || c > 500 {
				t.Fatalf("seed %d: fault call %d out of calibrated range", s, c)
			}
		}
	}
	if nonEmpty == 0 {
		t.Fatal("no seed generated a chaos plan")
	}
}

func TestScenarioByName(t *testing.T) {
	if _, err := ScenarioByName("SOR4"); err != nil {
		t.Fatal(err)
	}
	if _, err := ScenarioByName("nope"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
