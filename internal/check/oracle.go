// Package check is an online coherence model checker for the DSM's lazy
// release consistency protocol. An Oracle attaches to a dsm.Cluster
// through the protocol Probe (internal/dsm/observer.go) and the span
// access hook, and maintains an independent happens-before reference
// model — per-write (Lamport, writer, interval) provenance, per-node
// vector-clock fronts, and exact per-replica applied sets. Against that
// model it asserts, online:
//
//   - monotone numbering: each writer's closed intervals are consecutive
//     and its Lamport stamps strictly increase ("monotone-interval",
//     "monotone-lamport");
//   - exactly-once application: no diff is applied twice to the same
//     replica, including re-applies of updates already reflected by a
//     full-page fetch ("double-apply");
//   - ordered application: a diff is applied only after every earlier
//     registered interval of the same writer is reflected in the replica
//     ("apply-gap");
//   - causal delivery: the demand, prefetch, and push paths apply only
//     updates at or below the node's acquire front — a node never
//     consumes a write it has not been causally told about
//     ("apply-beyond-front"; the manager's serve path is exempt, since
//     consolidation legitimately runs ahead of the manager's own front,
//     as is the full-page fetch, which may carry the manager's newer
//     copy — the standard LRC relaxation);
//   - provenance: every applied diff was delivered as a write notice
//     first ("apply-unknown", "apply-undelivered");
//   - no lost updates: on every page read, every registered update
//     ordered at or before the reader's front is reflected in the copy
//     being read ("lost-update") — the invariant that catches broken
//     notice-set transitivity and partial push application;
//   - accounting conservation, at Finish: demand validations equal
//     Stats.RemoteMisses and prefetch + push validations equal
//     Stats.PrefetchedPages ("conservation").
//
// The checker requires a deterministic event order to attribute
// violations exactly: run it with the Local transport and
// dsm.Config.SerialFanOut set (Explore does). Probe callbacks fire with
// node mutexes held, so the Oracle never calls back into the cluster; it
// only updates its own state under its own lock.
package check

import (
	"fmt"
	"sync"

	"actdsm/internal/dsm"
	"actdsm/internal/msg"
	"actdsm/internal/vm"
)

// Violation is one detected invariant breach.
type Violation struct {
	// Invariant is the short code of the broken invariant (see the
	// package comment).
	Invariant string
	// Node is the node at which the breach was observed.
	Node int
	// Detail is a human-readable description with the full provenance.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s @ node %d: %s", v.Invariant, v.Node, v.Detail)
}

// maxViolations caps recorded violations so a badly broken run does not
// accumulate unbounded state; the first breach is what matters.
const maxViolations = 32

// regEntry is one registered write: interval iv of a writer on a page,
// with its Lamport stamp.
type regEntry struct {
	iv  int32
	lam int32
}

// pageView is the oracle's model of one node's replica of one page.
type pageView struct {
	// applied holds the exact set of (writer, interval) diffs applied to
	// this copy since the last full fetch or invalidation.
	applied map[[2]int32]bool
	// fetchVT is the high-water vector a full-page fetch reflected into
	// the copy (everything at or below it is present without a per-diff
	// apply event).
	fetchVT []int32
	// hw is the reflected high-water per writer: max of applied
	// intervals, fetchVT, and the node's own closes. Mirrors the
	// protocol's appliedVT, so the oracle's delivery dedup matches
	// staleOrDup exactly.
	hw []int32
	// pending is the delivered-but-unapplied notice set (the model of
	// the protocol's pending list).
	pending map[[2]int32]msg.Notice
	// prefIdx[w] is the index into the registry list of (page, w) below
	// which every entry has been verified reflected for this replica
	// (advanced by the read-front check).
	prefIdx map[int32]int
}

// OracleConfig mirrors the cluster-side knobs the reference model must
// agree with: the lock-to-manager mapping and the grant-forwarding
// release semantics. Zero values reproduce NewOracle's behaviour.
type OracleConfig struct {
	// Nodes is the cluster size. Required.
	Nodes int
	// LockShards mirrors dsm.Config.LockShards: the lock id space is
	// folded onto this many shards before mapping shards onto nodes.
	// 0 means one shard per node.
	LockShards int
	// LockForwarding mirrors dsm.Config.HomeMigration's lock side:
	// releases ship no notices to the shard manager; the next acquirer
	// pulls the lock's history from the previous holder. The oracle
	// then models a per-lock front (the chain of holder release
	// fronts) instead of a per-manager shared log.
	LockForwarding bool
}

// Oracle is the online LRC reference model. Create with NewOracle (or
// NewOracleWithConfig when the cluster runs decentralized managers),
// attach with Attach, drive traffic, then call Finish with the run's
// stats snapshot. Violations accumulates everything detected.
//
// Migrated page homes (dsm.Config.HomeMigration) need no oracle state:
// the model tracks causal fronts and per-replica applied sets, which
// are independent of which node serves a page. The serve-path
// consolidation exemption ("apply-beyond-front") already names the
// ApplySource rather than a fixed manager node, so it covers whichever
// node currently owns the page.
type Oracle struct {
	mu    sync.Mutex
	nodes int
	cfg   OracleConfig

	// reg maps (page, writer) to the ordered list of registered closes.
	reg map[[2]int32][]regEntry
	// lastIv and lastLam track each writer's numbering for monotonicity.
	lastIv  []int32
	lastLam []int32

	// nodeVC[n][w] is node n's happens-before front: the highest
	// interval of writer w ordered before n's current program point.
	nodeVC [][]int32
	// mgrVC[m] models lock-manager node m's shared notice log as a
	// front: the join of every release shipped to m since the last
	// barrier. Grants serve the *shared* log (a superset of any one
	// lock's chain), so the front a requester inherits is keyed by the
	// manager, exactly like the protocol's mgrLog.
	mgrVC [][]int32
	// lockVC[lock] is the forwarding-mode model: the join of every
	// holder's front at its release of this lock. A pull serves the
	// holder's whole known prefix at release time, so the front an
	// acquirer inherits is the chain of release fronts — per lock, not
	// per manager. Entries are dropped at barriers (the protocol
	// clears its release marks; a post-barrier pull is empty because
	// the barrier already delivered everything).
	lockVC map[int32][]int32

	pages map[[2]int32]*pageView // (node, page)

	// Validation counters by protocol path, for conservation.
	demandValid   int64
	prefetchValid int64
	pushValid     int64
	serverValid   int64
	// recoveryValid counts full-page fetches on the recovery path
	// (fault-tolerance standby reseeds and rejoin re-fetches), conserved
	// against Stats.RecoveryFetches.
	recoveryValid int64

	violations []Violation
}

// NewOracle builds an oracle for an n-node cluster with centralized
// defaults (one lock shard per node, no grant forwarding).
func NewOracle(n int) *Oracle {
	return NewOracleWithConfig(OracleConfig{Nodes: n})
}

// NewOracleWithConfig builds an oracle whose lock model mirrors the
// given decentralized-manager configuration.
func NewOracleWithConfig(cfg OracleConfig) *Oracle {
	n := cfg.Nodes
	o := &Oracle{
		nodes:   n,
		cfg:     cfg,
		reg:     make(map[[2]int32][]regEntry),
		lastIv:  make([]int32, n),
		lastLam: make([]int32, n),
		nodeVC:  make([][]int32, n),
		mgrVC:   make([][]int32, n),
		lockVC:  make(map[int32][]int32),
		pages:   make(map[[2]int32]*pageView),
	}
	for i := range o.nodeVC {
		o.nodeVC[i] = make([]int32, n)
		o.mgrVC[i] = make([]int32, n)
	}
	return o
}

// Attach installs the oracle's probe and access hook on a cluster. The
// cluster should be idle; pair with dsm.Config.SerialFanOut for exact
// attribution.
func (o *Oracle) Attach(c *dsm.Cluster) {
	c.SetProbe(&dsm.Probe{
		IntervalClosed:   o.intervalClosed,
		NoticesDelivered: o.noticesDelivered,
		DiffApplied:      o.diffApplied,
		PageFetched:      o.pageFetched,
		PageInvalidated:  o.pageInvalidated,
		LockAcquired:     o.lockAcquired,
		LockReleased:     o.lockReleased,
		BarrierReleased:  o.barrierReleased,
		NodeCrashed:      o.nodeCrashed,
		NodeRejoined:     o.nodeRejoined,
	})
	c.AddAccessHook(func(node, tid int, p vm.PageID, a vm.Access) {
		o.pageRead(node, p)
	})
}

// Violations returns a copy of everything detected so far.
func (o *Oracle) Violations() []Violation {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]Violation(nil), o.violations...)
}

// Err returns nil if no invariant broke, or an error describing the
// first violation (and the total count).
func (o *Oracle) Err() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.violations) == 0 {
		return nil
	}
	return fmt.Errorf("check: %d violation(s); first: %s", len(o.violations), o.violations[0])
}

// Finish runs the end-of-run conservation checks against the cluster's
// stats snapshot and returns Err().
func (o *Oracle) Finish(snap dsm.Snapshot) error {
	o.mu.Lock()
	if o.demandValid != snap.RemoteMisses {
		o.flag("conservation", -1, fmt.Sprintf(
			"demand validations %d != Stats.RemoteMisses %d", o.demandValid, snap.RemoteMisses))
	}
	if o.prefetchValid+o.pushValid != snap.PrefetchedPages {
		o.flag("conservation", -1, fmt.Sprintf(
			"prefetch %d + push %d validations != Stats.PrefetchedPages %d",
			o.prefetchValid, o.pushValid, snap.PrefetchedPages))
	}
	if o.recoveryValid != snap.RecoveryFetches {
		o.flag("conservation", -1, fmt.Sprintf(
			"recovery validations %d != Stats.RecoveryFetches %d",
			o.recoveryValid, snap.RecoveryFetches))
	}
	o.mu.Unlock()
	return o.Err()
}

// Counts returns the oracle's per-path validation counters
// (demand, prefetch, push, server), for tests and reports.
func (o *Oracle) Counts() (demand, prefetch, push, server int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.demandValid, o.prefetchValid, o.pushValid, o.serverValid
}

func (o *Oracle) flag(inv string, node int, detail string) {
	if len(o.violations) >= maxViolations {
		return
	}
	o.violations = append(o.violations, Violation{Invariant: inv, Node: node, Detail: detail})
}

func (o *Oracle) view(node int, page int32) *pageView {
	k := [2]int32{int32(node), page}
	pv, ok := o.pages[k]
	if !ok {
		pv = &pageView{
			applied: make(map[[2]int32]bool),
			fetchVT: make([]int32, o.nodes),
			hw:      make([]int32, o.nodes),
			pending: make(map[[2]int32]msg.Notice),
			prefIdx: make(map[int32]int),
		}
		o.pages[k] = pv
	}
	return pv
}

// --- probe event handlers ---

func (o *Oracle) intervalClosed(node int, notices []msg.Notice) {
	o.mu.Lock()
	defer o.mu.Unlock()
	w := int32(node)
	iv := notices[0].Interval
	lam := notices[0].Lam
	if iv != o.lastIv[node]+1 {
		o.flag("monotone-interval", node, fmt.Sprintf(
			"closed interval %d after %d (intervals must be consecutive)", iv, o.lastIv[node]))
	}
	if lam <= o.lastLam[node] {
		o.flag("monotone-lamport", node, fmt.Sprintf(
			"interval %d closed with Lamport %d <= previous %d", iv, lam, o.lastLam[node]))
	}
	if iv > o.lastIv[node] {
		o.lastIv[node] = iv
	}
	if lam > o.lastLam[node] {
		o.lastLam[node] = lam
	}
	for _, nt := range notices {
		if nt.Writer != w || nt.Interval != iv || nt.Lam != lam {
			o.flag("monotone-interval", node, fmt.Sprintf(
				"notice %+v does not match its close (writer %d interval %d lam %d)", nt, w, iv, lam))
			continue
		}
		o.reg[[2]int32{nt.Page, w}] = append(o.reg[[2]int32{nt.Page, w}], regEntry{iv: iv, lam: lam})
		// The writer's own copy reflects its own write immediately.
		pv := o.view(node, nt.Page)
		if iv > pv.hw[w] {
			pv.hw[w] = iv
		}
	}
	// The writer has trivially observed its own interval.
	if iv > o.nodeVC[node][node] {
		o.nodeVC[node][node] = iv
	}
}

func (o *Oracle) noticesDelivered(node int, via dsm.DeliverVia, notices []msg.Notice) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, nt := range notices {
		if int(nt.Writer) == node {
			continue // own writes never queue
		}
		pv := o.view(node, nt.Page)
		key := [2]int32{nt.Writer, nt.Interval}
		// Mirror the protocol's staleOrDup: already reflected or already
		// queued notices are dropped, so re-deliveries stay idempotent.
		if nt.Interval <= pv.hw[nt.Writer] {
			continue
		}
		if _, ok := pv.pending[key]; ok {
			continue
		}
		pv.pending[key] = nt
	}
}

func (o *Oracle) diffApplied(node int, src dsm.ApplySource, nt msg.Notice) {
	o.mu.Lock()
	defer o.mu.Unlock()
	pv := o.view(node, nt.Page)
	key := [2]int32{nt.Writer, nt.Interval}

	// Provenance: the write must exist.
	if !o.registered(nt.Page, nt.Writer, nt.Interval) {
		o.flag("apply-unknown", node, fmt.Sprintf(
			"applied diff for unregistered write page %d writer %d interval %d (%s)",
			nt.Page, nt.Writer, nt.Interval, src))
		return
	}
	// Exactly-once: neither in the exact applied set nor already
	// reflected by a full fetch.
	if pv.applied[key] || nt.Interval <= pv.fetchVT[nt.Writer] {
		o.flag("double-apply", node, fmt.Sprintf(
			"page %d writer %d interval %d applied twice (%s path)",
			nt.Page, nt.Writer, nt.Interval, src))
		return
	}
	// Provenance: the apply must consume a delivered notice.
	if _, ok := pv.pending[key]; !ok {
		o.flag("apply-undelivered", node, fmt.Sprintf(
			"page %d writer %d interval %d applied without a delivered notice (%s path)",
			nt.Page, nt.Writer, nt.Interval, src))
	}
	// Causal front: demand, prefetch, and push consume only updates the
	// node has been told about through an acquire path. (The manager's
	// serve path legitimately runs ahead of its own front.)
	if src != dsm.ApplyServer && nt.Interval > o.nodeVC[node][nt.Writer] {
		o.flag("apply-beyond-front", node, fmt.Sprintf(
			"page %d writer %d interval %d applied via %s but node front is %d",
			nt.Page, nt.Writer, nt.Interval, src, o.nodeVC[node][nt.Writer]))
	}
	// Ordered application: every earlier registered interval of the same
	// writer must already be reflected in this copy.
	for _, e := range o.reg[[2]int32{nt.Page, nt.Writer}] {
		if e.iv >= nt.Interval {
			break
		}
		if !pv.applied[[2]int32{nt.Writer, e.iv}] && e.iv > pv.fetchVT[nt.Writer] {
			o.flag("apply-gap", node, fmt.Sprintf(
				"page %d writer %d interval %d applied before interval %d (%s path)",
				nt.Page, nt.Writer, nt.Interval, e.iv, src))
		}
	}

	pv.applied[key] = true
	if nt.Interval > pv.hw[nt.Writer] {
		pv.hw[nt.Writer] = nt.Interval
	}
	delete(pv.pending, key)
	if len(pv.pending) == 0 {
		// The replica just became valid; attribute it to the path.
		switch src {
		case dsm.ApplyDemand:
			o.demandValid++
		case dsm.ApplyPrefetch:
			o.prefetchValid++
		case dsm.ApplyPush:
			o.pushValid++
		case dsm.ApplyServer:
			o.serverValid++
		}
	}
}

func (o *Oracle) pageFetched(node int, p vm.PageID, src dsm.ApplySource, appliedVT []int32) {
	o.mu.Lock()
	defer o.mu.Unlock()
	pv := o.view(node, int32(p))
	for w, v := range appliedVT {
		if w >= o.nodes {
			break
		}
		if v > pv.fetchVT[w] {
			pv.fetchVT[w] = v
		}
		if v > pv.hw[w] {
			pv.hw[w] = v
		}
	}
	// The fetch replaced the copy and drained the pending set; the diffs
	// individually applied before it are subsumed by the new image.
	pv.applied = make(map[[2]int32]bool)
	pv.pending = make(map[[2]int32]msg.Notice)
	// A full fetch validates the replica on the demand path; recovery
	// fetches (standby reseeds, rejoin re-fetches) are conserved
	// separately against Stats.RecoveryFetches.
	if src == dsm.ApplyDemand {
		o.demandValid++
	} else {
		o.recoveryValid++
	}
}

// nodeCrashed models a crash under fault tolerance: the node's page
// copies, twins, and pending sets are gone. Its registered writes stay —
// the replicated diff store still serves them to survivors — and its
// interval numbering stays pinned: the recovery protocol must resume the
// writer's sequence exactly where the last replicated close left it, so
// the monotone-interval check is deliberately NOT relaxed.
func (o *Oracle) nodeCrashed(node int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for k := range o.pages {
		if int(k[0]) == node {
			delete(o.pages, k)
		}
	}
	// The node's happens-before front dies with it; a rejoin rebuilds it
	// from the standby's seen vector and the next barrier join.
	for w := range o.nodeVC[node] {
		o.nodeVC[node][w] = 0
	}
}

// nodeRejoined models recovery completion: the node re-entered the view.
// The crash handler already wiped its replica views and no event fires
// for a dead node in between, so nothing needs resetting here — the
// rejoin's eager home re-fetches (which fire before this event) have
// already seeded fresh views, and the next barrier release re-joins the
// node's front.
func (o *Oracle) nodeRejoined(node int) {}

func (o *Oracle) pageInvalidated(node int, p vm.PageID) {
	o.mu.Lock()
	defer o.mu.Unlock()
	k := [2]int32{int32(node), int32(p)}
	// The replica is gone: any later re-delivery and re-apply is a fresh
	// history on a fresh copy.
	delete(o.pages, k)
}

func (o *Oracle) lockAcquired(node int, lock int32) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.cfg.LockForwarding {
		if vc, ok := o.lockVC[lock]; ok {
			join(o.nodeVC[node], vc)
		}
		return
	}
	join(o.nodeVC[node], o.mgrVC[o.lockManager(lock)])
}

func (o *Oracle) lockReleased(node int, lock int32) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.cfg.LockForwarding {
		vc, ok := o.lockVC[lock]
		if !ok {
			vc = make([]int32, o.nodes)
			o.lockVC[lock] = vc
		}
		join(vc, o.nodeVC[node])
		return
	}
	join(o.mgrVC[o.lockManager(lock)], o.nodeVC[node])
}

// lockManager mirrors the cluster's lock-to-manager mapping: the lock
// id folds onto a shard, the shard onto a node (see dsm nodeForID).
func (o *Oracle) lockManager(lock int32) int {
	shards := o.cfg.LockShards
	if shards <= 0 {
		shards = o.nodes
	}
	s := int(int64(lock) % int64(shards))
	if s < 0 {
		s += shards
	}
	return s % o.nodes
}

func (o *Oracle) barrierReleased(node int, episode int32) {
	o.mu.Lock()
	defer o.mu.Unlock()
	// The barrier is a global synchronization: every interval closed
	// before it is ordered before every node's next access. The closes
	// for the episode fire during barrier phase 1, before any release is
	// delivered, so lastIv is the episode's exact front.
	join(o.nodeVC[node], o.lastIv)
	// The barrier also resets every manager's shared log: the next
	// release rebuilds it from post-barrier state. lastIv is the exact
	// cluster-wide front at this point, so "reset" is assignment.
	for m := range o.mgrVC {
		copy(o.mgrVC[m], o.lastIv)
	}
	// Forwarding mode: the protocol clears every holder's release mark,
	// so post-barrier pulls serve nothing; the per-lock fronts restart.
	for lk := range o.lockVC {
		delete(o.lockVC, lk)
	}
}

// pageRead asserts the no-lost-update invariant: every registered write
// ordered at or before the reader's front is reflected in the copy being
// read. Runs on every span access; the per-writer verified-prefix index
// keeps it amortized O(1).
func (o *Oracle) pageRead(node int, p vm.PageID) {
	o.mu.Lock()
	defer o.mu.Unlock()
	page := int32(p)
	pv := o.view(node, page)
	front := o.nodeVC[node]
	for w := int32(0); int(w) < o.nodes; w++ {
		if int(w) == node {
			continue // own writes are reflected by construction
		}
		entries := o.reg[[2]int32{page, w}]
		idx := pv.prefIdx[w]
		for idx < len(entries) && entries[idx].iv <= front[w] {
			e := entries[idx]
			if !pv.applied[[2]int32{w, e.iv}] && e.iv > pv.fetchVT[w] {
				o.flag("lost-update", node, fmt.Sprintf(
					"read page %d with front covering writer %d interval %d, but the update was never applied",
					page, w, e.iv))
			}
			idx++
		}
		pv.prefIdx[w] = idx
	}
}

func (o *Oracle) registered(page, writer, interval int32) bool {
	for _, e := range o.reg[[2]int32{page, writer}] {
		if e.iv == interval {
			return true
		}
	}
	return false
}

// join folds src into dst element-wise (max).
func join(dst, src []int32) {
	for i := range dst {
		if i < len(src) && src[i] > dst[i] {
			dst[i] = src[i]
		}
	}
}
