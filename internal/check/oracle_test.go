package check

// Unit tests for the oracle's reference model: synthetic probe event
// sequences that exercise each invariant in isolation, without a
// cluster. These pin the oracle's behaviour so the integration sweeps
// (explore_test.go) can trust it.

import (
	"strings"
	"testing"

	"actdsm/internal/dsm"
	"actdsm/internal/msg"
)

// nt builds a notice.
func nt(page, writer, interval, lam int32) msg.Notice {
	return msg.Notice{Page: page, Writer: writer, Interval: interval, Lam: lam}
}

// close1 registers one single-notice interval close.
func close1(o *Oracle, node int, n msg.Notice) {
	o.intervalClosed(node, []msg.Notice{n})
}

func wantViolation(t *testing.T, o *Oracle, invariant string) {
	t.Helper()
	for _, v := range o.Violations() {
		if v.Invariant == invariant {
			return
		}
	}
	t.Fatalf("expected a %q violation, got %v", invariant, o.Violations())
}

func wantClean(t *testing.T, o *Oracle) {
	t.Helper()
	if vs := o.Violations(); len(vs) != 0 {
		t.Fatalf("expected no violations, got %v", vs)
	}
}

func TestOracleMonotoneInterval(t *testing.T) {
	o := NewOracle(2)
	close1(o, 0, nt(0, 0, 1, 1))
	close1(o, 0, nt(0, 0, 3, 2)) // skipped interval 2
	wantViolation(t, o, "monotone-interval")
}

func TestOracleMonotoneLamport(t *testing.T) {
	o := NewOracle(2)
	close1(o, 0, nt(0, 0, 1, 5))
	close1(o, 0, nt(0, 0, 2, 5)) // Lamport did not advance
	wantViolation(t, o, "monotone-lamport")
}

func TestOracleCleanLifecycle(t *testing.T) {
	o := NewOracle(2)
	close1(o, 0, nt(0, 0, 1, 1))
	o.barrierReleased(0, 0)
	o.barrierReleased(1, 0)
	o.noticesDelivered(1, dsm.ViaBarrier, []msg.Notice{nt(0, 0, 1, 1)})
	o.diffApplied(1, dsm.ApplyDemand, nt(0, 0, 1, 1))
	o.pageRead(1, 0)
	wantClean(t, o)
	d, _, _, _ := o.Counts()
	if d != 1 {
		t.Fatalf("demand validations = %d, want 1", d)
	}
}

func TestOracleDoubleApply(t *testing.T) {
	o := NewOracle(2)
	close1(o, 0, nt(0, 0, 1, 1))
	o.barrierReleased(1, 0)
	o.noticesDelivered(1, dsm.ViaBarrier, []msg.Notice{nt(0, 0, 1, 1)})
	o.diffApplied(1, dsm.ApplyDemand, nt(0, 0, 1, 1))
	wantClean(t, o)
	o.diffApplied(1, dsm.ApplyDemand, nt(0, 0, 1, 1))
	wantViolation(t, o, "double-apply")
}

func TestOracleDoubleApplyAfterFetch(t *testing.T) {
	// A diff already reflected by a full-page fetch must not be applied
	// again (the stale-notice filter's job).
	o := NewOracle(2)
	close1(o, 0, nt(0, 0, 1, 1))
	o.barrierReleased(1, 0)
	o.pageFetched(1, 0, dsm.ApplyDemand, []int32{1, 0}) // fetch already reflects writer 0 interval 1
	o.noticesDelivered(1, dsm.ViaBarrier, []msg.Notice{nt(0, 0, 1, 1)})
	o.diffApplied(1, dsm.ApplyDemand, nt(0, 0, 1, 1))
	wantViolation(t, o, "double-apply")
}

func TestOracleApplyGap(t *testing.T) {
	// Applying interval 2 while registered interval 1 is unreflected is
	// an ordering violation (it would write older data over newer on a
	// revert, or newer over missing context here).
	o := NewOracle(2)
	close1(o, 0, nt(0, 0, 1, 1))
	close1(o, 0, nt(0, 0, 2, 2))
	o.barrierReleased(1, 0)
	o.noticesDelivered(1, dsm.ViaBarrier, []msg.Notice{nt(0, 0, 1, 1), nt(0, 0, 2, 2)})
	o.diffApplied(1, dsm.ApplyDemand, nt(0, 0, 2, 2))
	wantViolation(t, o, "apply-gap")
}

func TestOracleApplyUnknown(t *testing.T) {
	o := NewOracle(2)
	o.diffApplied(1, dsm.ApplyDemand, nt(0, 0, 7, 7))
	wantViolation(t, o, "apply-unknown")
}

func TestOracleApplyUndelivered(t *testing.T) {
	o := NewOracle(2)
	close1(o, 0, nt(0, 0, 1, 1))
	o.barrierReleased(1, 0)
	o.diffApplied(1, dsm.ApplyDemand, nt(0, 0, 1, 1)) // never delivered to node 1
	wantViolation(t, o, "apply-undelivered")
}

func TestOracleApplyBeyondFront(t *testing.T) {
	// A demand apply of an interval the node has not been causally told
	// about (no barrier, no lock chain) is an early observation.
	o := NewOracle(2)
	close1(o, 0, nt(0, 0, 1, 1))
	o.noticesDelivered(1, dsm.ViaLockGrant, []msg.Notice{nt(0, 0, 1, 1)})
	o.diffApplied(1, dsm.ApplyDemand, nt(0, 0, 1, 1))
	wantViolation(t, o, "apply-beyond-front")
}

func TestOracleServerPathExemptFromFront(t *testing.T) {
	// The manager consolidating ahead of its own front is protocol-legal.
	o := NewOracle(2)
	close1(o, 0, nt(0, 0, 1, 1))
	o.noticesDelivered(1, dsm.ViaPageRequest, []msg.Notice{nt(0, 0, 1, 1)})
	o.diffApplied(1, dsm.ApplyServer, nt(0, 0, 1, 1))
	wantClean(t, o)
}

func TestOracleLostUpdateAtBarrier(t *testing.T) {
	// The barrier orders writer 0's interval before node 1's next read;
	// if the update never reaches node 1's copy the read loses it.
	o := NewOracle(2)
	close1(o, 0, nt(0, 0, 1, 1))
	o.barrierReleased(0, 0)
	o.barrierReleased(1, 0)
	o.pageRead(1, 0)
	wantViolation(t, o, "lost-update")
}

func TestOracleLostUpdateViaLockChain(t *testing.T) {
	// Transitivity: node 0 releases L0 after writing; node 1 acquires L0
	// (inheriting the front), then releases L1; node 2 acquires L1 — its
	// front now covers node 0's write through the chain. Reading without
	// the update is the lost update MutationNoTransitivity produces.
	o := NewOracle(3)
	close1(o, 0, nt(0, 0, 1, 1))
	o.lockReleased(0, 0)
	o.lockAcquired(1, 0)
	close1(o, 1, nt(1, 1, 1, 2))
	o.lockReleased(1, 1)
	o.lockAcquired(2, 1)
	o.pageRead(2, 0)
	wantViolation(t, o, "lost-update")
}

func TestOracleLockChainCleanWhenDelivered(t *testing.T) {
	o := NewOracle(3)
	close1(o, 0, nt(0, 0, 1, 1))
	o.lockReleased(0, 0)
	o.lockAcquired(1, 0)
	o.noticesDelivered(1, dsm.ViaLockGrant, []msg.Notice{nt(0, 0, 1, 1)})
	o.diffApplied(1, dsm.ApplyDemand, nt(0, 0, 1, 1))
	o.lockReleased(1, 1)
	o.lockAcquired(2, 1)
	o.noticesDelivered(2, dsm.ViaLockGrant, []msg.Notice{nt(0, 0, 1, 1)})
	o.diffApplied(2, dsm.ApplyDemand, nt(0, 0, 1, 1))
	o.pageRead(1, 0)
	o.pageRead(2, 0)
	wantClean(t, o)
}

func TestOraclePartialPushIsLostUpdate(t *testing.T) {
	// The event shape MutationPushPartialApply produces: two writers'
	// updates ordered before the barrier, the push applies only one and
	// the protocol drains the pending set anyway. The next read must
	// trip: the reader's front covers the unapplied writer too.
	o := NewOracle(3)
	close1(o, 0, nt(0, 0, 1, 1))
	close1(o, 1, nt(0, 1, 1, 1))
	for n := 0; n < 3; n++ {
		o.barrierReleased(n, 0)
	}
	o.noticesDelivered(2, dsm.ViaBarrier, []msg.Notice{nt(0, 0, 1, 1), nt(0, 1, 1, 1)})
	o.diffApplied(2, dsm.ApplyPush, nt(0, 0, 1, 1)) // writer 1's diff dropped
	o.pageRead(2, 0)
	wantViolation(t, o, "lost-update")
}

func TestOracleInvalidationResetsReplica(t *testing.T) {
	// After GC invalidates a replica, a fresh fetch and re-delivery of a
	// *new* interval is a fresh history, not a double apply.
	o := NewOracle(2)
	close1(o, 0, nt(0, 0, 1, 1))
	o.barrierReleased(0, 0)
	o.barrierReleased(1, 0)
	o.noticesDelivered(1, dsm.ViaBarrier, []msg.Notice{nt(0, 0, 1, 1)})
	o.diffApplied(1, dsm.ApplyDemand, nt(0, 0, 1, 1))
	o.pageInvalidated(1, 0)
	o.pageFetched(1, 0, dsm.ApplyDemand, []int32{1, 0})
	o.pageRead(1, 0)
	wantClean(t, o)
}

func TestOracleDuplicateDeliveryIsIdempotent(t *testing.T) {
	// Re-delivered notices (transport retries, re-broadcast phases) must
	// not confuse the model: one apply drains them.
	o := NewOracle(2)
	close1(o, 0, nt(0, 0, 1, 1))
	o.barrierReleased(0, 0)
	o.barrierReleased(1, 0)
	for i := 0; i < 3; i++ {
		o.noticesDelivered(1, dsm.ViaBarrier, []msg.Notice{nt(0, 0, 1, 1)})
	}
	o.diffApplied(1, dsm.ApplyDemand, nt(0, 0, 1, 1))
	o.pageRead(1, 0)
	wantClean(t, o)
	d, _, _, _ := o.Counts()
	if d != 1 {
		t.Fatalf("demand validations = %d, want 1", d)
	}
}

func TestOracleConservation(t *testing.T) {
	o := NewOracle(2)
	close1(o, 0, nt(0, 0, 1, 1))
	o.barrierReleased(0, 0)
	o.barrierReleased(1, 0)
	o.noticesDelivered(1, dsm.ViaBarrier, []msg.Notice{nt(0, 0, 1, 1)})
	o.diffApplied(1, dsm.ApplyDemand, nt(0, 0, 1, 1))
	// Matching snapshot: clean.
	if err := o.Finish(dsm.Snapshot{RemoteMisses: 1}); err != nil {
		t.Fatalf("matching snapshot: %v", err)
	}
	// Mismatched snapshot: conservation trips.
	o2 := NewOracle(2)
	close1(o2, 0, nt(0, 0, 1, 1))
	o2.barrierReleased(1, 0)
	o2.noticesDelivered(1, dsm.ViaBarrier, []msg.Notice{nt(0, 0, 1, 1)})
	o2.diffApplied(1, dsm.ApplyDemand, nt(0, 0, 1, 1))
	err := o2.Finish(dsm.Snapshot{RemoteMisses: 2, PrefetchedPages: 1})
	if err == nil || !strings.Contains(err.Error(), "conservation") {
		t.Fatalf("expected conservation violation, got %v", err)
	}
}

func TestOracleErrSummarizes(t *testing.T) {
	o := NewOracle(2)
	if err := o.Err(); err != nil {
		t.Fatalf("clean oracle: %v", err)
	}
	o.diffApplied(1, dsm.ApplyDemand, nt(0, 0, 9, 9))
	err := o.Err()
	if err == nil || !strings.Contains(err.Error(), "apply-unknown") {
		t.Fatalf("Err() = %v, want apply-unknown summary", err)
	}
}
