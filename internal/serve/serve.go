// Package serve is the online serving workload: a key-value store over
// DSM-shared state queried by closed-loop client threads under zipfian
// key popularity, a configurable read/write mix, and per-key locks that
// map onto DSM locks. It is the request-driven counterpart to the batch
// SPLASH-style kernels in internal/apps — the regime the ROADMAP's
// north star (serving heavy skewed traffic) cares about and the one
// where correlation-driven placement and home migration should pay off.
//
// Execution shape. KV implements threads.Workload, not EpochWorkload:
// the load generator is structured as *windows*, each window being one
// engine iteration (every client issues its per-window request quota,
// then calls EndIteration). Windows are what make the existing
// machinery work unchanged on serving runs — active correlation
// tracking tracks a window, OnIteration hooks fire at window
// boundaries with all threads parked (so placement migration is safe
// mid-run), and the warmup/measure split falls out of window indices.
//
// Time and determinism. Everything runs on internal/sim virtual time:
// per-request latency is the delta of the thread's Ctx.Charged()
// accumulator around the request (lock acquire stall + fault handling +
// value compute), think-time pacing toward a target QPS is charged via
// Ctx.Wait, and all randomness comes from seeded sim.RNG streams. A KV
// run is therefore a pure function of its Config — the BENCH_serving
// gate depends on that.
package serve

import (
	"errors"
	"fmt"

	"actdsm/internal/dsm"
	"actdsm/internal/memlayout"
	"actdsm/internal/sim"
	"actdsm/internal/threads"
	"actdsm/internal/vm"
)

// Config configures the KV serving workload and its closed-loop load
// generator. The zero value of any field selects the documented default.
type Config struct {
	// Clients is the number of closed-loop client threads (default 8).
	// Each client issues RequestsPerWindow requests per window, one at a
	// time — the next request starts only when the previous one (and its
	// think time) completes.
	Clients int
	// Keys is the key-space size (default 256).
	Keys int
	// ValueBytes is the stored value size per key (default 64; rounded
	// up to 8-byte slots).
	ValueBytes int
	// ReadFraction is the probability a request is a GET (default 0.9);
	// the rest are PUTs that rewrite the value under the key's lock.
	ReadFraction float64
	// ZipfS is the zipfian popularity skew: key rank r is drawn with
	// weight 1/r^s (default 1.1). 0 or negative selects uniform
	// popularity.
	ZipfS float64
	// Groups partitions clients into tenant groups (client c belongs to
	// group c mod Groups), each group owning a contiguous key block it
	// samples with its own zipf stream. Grouping creates the access
	// structure correlation tracking discovers and min-cost placement
	// exploits; 0 or 1 disables it (one global popularity).
	Groups int
	// SharedFraction is the probability a request from a grouped client
	// samples the global key space instead of its group's block
	// (default 0.1 when Groups > 1), keeping some cross-group sharing.
	SharedFraction float64
	// RequestsPerWindow is each active client's request quota per window
	// (default 64).
	RequestsPerWindow int
	// WarmupWindows is the number of initial windows excluded from
	// measurement (minimum and default 1: window 0 carries the store
	// initialization and cold faults).
	WarmupWindows int
	// MeasureWindows is the number of measured windows after warmup.
	// 0 makes the run open-ended: clients serve windows until Stop (or
	// a cancelled RunContext) and measurement covers every completed
	// post-warmup window.
	MeasureWindows int
	// Ramp, when non-nil, sets the active client count per window
	// (entry w for window w; the last entry repeats). Inactive clients
	// still join the window barrier, so a ramp schedules a concurrency
	// sweep within one run.
	Ramp []int
	// TargetQPS paces the closed loop: after each request the client
	// charges think time so the active clients jointly approach this
	// rate in requests per virtual second. 0 disables pacing
	// (saturation: each client issues back-to-back).
	TargetQPS float64
	// LockStripes is the number of per-key locks; key k maps to DSM lock
	// k mod LockStripes (default min(Keys, 1024)).
	LockStripes int
	// LockReads also takes the key's lock for GETs. Off by default:
	// reads are lock-free and see window-boundary (barrier) consistency,
	// the usual serving trade — writers still serialize under the key's
	// lock, so values never tear across a window.
	LockReads bool
	// Seed derives every client's request stream (default 1).
	Seed uint64
}

// withDefaults fills zero fields with their defaults.
func (c Config) withDefaults() Config {
	if c.Clients == 0 {
		c.Clients = 8
	}
	if c.Keys == 0 {
		c.Keys = 256
	}
	if c.ValueBytes == 0 {
		c.ValueBytes = 64
	}
	if c.ReadFraction == 0 {
		c.ReadFraction = 0.9
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
	if c.Groups > 1 && c.SharedFraction == 0 {
		c.SharedFraction = 0.1
	}
	if c.RequestsPerWindow == 0 {
		c.RequestsPerWindow = 64
	}
	if c.WarmupWindows < 1 {
		c.WarmupWindows = 1
	}
	if c.LockStripes == 0 {
		c.LockStripes = c.Keys
		if c.LockStripes > 1024 {
			c.LockStripes = 1024
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// validate rejects configurations the generator cannot run.
func (c Config) validate() error {
	switch {
	case c.Clients < 0 || c.Keys < 0 || c.ValueBytes < 0 || c.RequestsPerWindow < 0,
		c.MeasureWindows < 0 || c.LockStripes < 0 || c.Groups < 0:
		return errors.New("serve: negative configuration value")
	case c.ReadFraction < 0 || c.ReadFraction > 1:
		return fmt.Errorf("serve: ReadFraction %v outside [0, 1]", c.ReadFraction)
	case c.SharedFraction < 0 || c.SharedFraction > 1:
		return fmt.Errorf("serve: SharedFraction %v outside [0, 1]", c.SharedFraction)
	case c.TargetQPS < 0:
		return fmt.Errorf("serve: TargetQPS %v negative", c.TargetQPS)
	}
	for i, a := range c.Ramp {
		if a < 1 {
			return fmt.Errorf("serve: Ramp[%d] = %d; every window needs at least one active client", i, a)
		}
	}
	return nil
}

// KV is the serving workload: shared key-value slots plus the
// closed-loop clients that query them. Build one with NewKV, run it via
// the engine (or actdsm.NewSystem), then read Report.
//
// KV keeps no internal locking: the cooperative thread engine runs one
// body slice at a time and hands results over channels, so recorder
// state is engine-serialized. The one exception is the stop flag, which
// an external goroutine (context cancellation) may set concurrently.
type KV struct {
	cfg Config

	data memlayout.Region
	// slot is ValueBytes rounded up to 8 bytes; keys*slot = region size.
	slot int

	global *zipfTable
	// perm spreads global zipf ranks over the whole key space.
	perm []int
	// group sampling: group g owns keys [g*groupKeys, (g+1)*groupKeys),
	// permuted within the block by groupPerm[g].
	groupKeys int
	groupTab  *zipfTable
	groupPerm [][]int

	stop atomicFlag

	rec recorder
}

// NewKV builds the serving workload from cfg (zero fields defaulted).
func NewKV(cfg Config) (*KV, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	kv := &KV{cfg: cfg, slot: (cfg.ValueBytes + 7) &^ 7}
	rng := sim.NewRNG(cfg.Seed ^ 0x5e12e0a5e12e0a01)
	kv.global = newZipfTable(cfg.Keys, cfg.ZipfS)
	kv.perm = rng.Perm(cfg.Keys)
	if cfg.Groups > 1 {
		kv.groupKeys = cfg.Keys / cfg.Groups
		if kv.groupKeys == 0 {
			return nil, fmt.Errorf("serve: %d groups over %d keys leaves empty groups", cfg.Groups, cfg.Keys)
		}
		kv.groupTab = newZipfTable(kv.groupKeys, cfg.ZipfS)
		kv.groupPerm = make([][]int, cfg.Groups)
		for g := range kv.groupPerm {
			kv.groupPerm[g] = rng.Split().Perm(kv.groupKeys)
		}
	}
	return kv, nil
}

// Name identifies the workload.
func (kv *KV) Name() string { return "ServeKV" }

// Threads is the client count.
func (kv *KV) Threads() int { return kv.cfg.Clients }

// Config returns the effective (defaulted) configuration.
func (kv *KV) Config() Config { return kv.cfg }

// Setup allocates the key-value slots.
func (kv *KV) Setup(l *memlayout.Layout) error {
	var err error
	kv.data, err = l.Alloc("serve.kv", kv.cfg.Keys*kv.slot)
	if err != nil {
		return fmt.Errorf("serve: setup: %w", err)
	}
	return nil
}

// Stop asks the clients to wind down at their next window boundary.
// It is the one KV method safe to call from another goroutine while the
// run is in flight; System.RunContext calls it on context cancellation
// so open-ended runs drain instead of running forever.
func (kv *KV) Stop() { kv.stop.set() }

// openEnded reports whether the run has no fixed window count.
func (kv *KV) openEnded() bool { return kv.cfg.MeasureWindows == 0 }

// totalWindows is the fixed window count of a bounded run.
func (kv *KV) totalWindows() int { return kv.cfg.WarmupWindows + kv.cfg.MeasureWindows }

// activeClients returns how many clients issue requests in window w.
func (kv *KV) activeClients(w int) int {
	n := kv.cfg.Clients
	if len(kv.cfg.Ramp) > 0 {
		i := w
		if i >= len(kv.cfg.Ramp) {
			i = len(kv.cfg.Ramp) - 1
		}
		if a := kv.cfg.Ramp[i]; a < n {
			n = a
		}
	}
	return n
}

// measured reports whether window w falls in the measurement span.
func (kv *KV) measured(w int) bool {
	if w < kv.cfg.WarmupWindows {
		return false
	}
	return kv.openEnded() || w < kv.totalWindows()
}

// thinkTime is the per-request pacing charge in window w: with A active
// clients each in its own closed loop, a joint rate of TargetQPS needs
// one request per client every A/TargetQPS virtual seconds.
func (kv *KV) thinkTime(w int) sim.Time {
	if kv.cfg.TargetQPS <= 0 {
		return 0
	}
	return sim.Time(float64(kv.activeClients(w)) / kv.cfg.TargetQPS * float64(sim.Second))
}

// sampleKey draws one request's key for client tid.
func (kv *KV) sampleKey(rng *sim.RNG, tid int) int {
	if kv.cfg.Groups > 1 && rng.Float64() >= kv.cfg.SharedFraction {
		g := tid % kv.cfg.Groups
		r := kv.groupTab.sample(rng)
		return g*kv.groupKeys + kv.groupPerm[g][r]
	}
	return kv.perm[kv.global.sample(rng)]
}

// Body returns client tid's closed loop.
func (kv *KV) Body(tid int) threads.Body {
	return func(ctx *threads.Ctx) error {
		// Per-client deterministic stream, independent of the schedule.
		rng := sim.NewRNG(kv.cfg.Seed + 0x9e3779b97f4a7c15*uint64(tid+1))
		if tid == 0 {
			if err := kv.initStore(ctx); err != nil {
				return err
			}
		}
		ctx.Barrier()
		for w := 0; kv.openEnded() || w < kv.totalWindows(); w++ {
			if kv.stop.isSet() {
				break
			}
			if tid < kv.activeClients(w) {
				think := kv.thinkTime(w)
				for r := 0; r < kv.cfg.RequestsPerWindow; r++ {
					if err := kv.request(ctx, rng, tid, w); err != nil {
						return err
					}
					ctx.Wait(think)
				}
			}
			ctx.EndIteration()
		}
		return nil
	}
}

// initStore writes every slot once so each key has a defined value (and
// a first writer), page by page.
func (kv *KV) initStore(ctx *threads.Ctx) error {
	total := kv.cfg.Keys * kv.slot
	for off := 0; off < total; off += memlayout.PageSize {
		n := memlayout.PageSize
		if off+n > total {
			n = total - off
		}
		b, err := ctx.SpanRegion(kv.data, off, n, vm.Write)
		if err != nil {
			return fmt.Errorf("serve: init: %w", err)
		}
		for i := range b {
			b[i] = byte(off + i)
		}
	}
	ctx.Compute(total / 8)
	return nil
}

// request issues one GET or PUT: sample a key, take its lock stripe
// (PUTs always, GETs only under LockReads), touch the value, release.
// The request's virtual latency is the delta of the thread's charge
// accumulator around that span — lock-grant stall, coherence faults,
// and value compute included, think time not.
func (kv *KV) request(ctx *threads.Ctx, rng *sim.RNG, tid, w int) error {
	key := kv.sampleKey(rng, tid)
	read := rng.Float64() < kv.cfg.ReadFraction
	lock := int32(key % kv.cfg.LockStripes)
	locked := !read || kv.cfg.LockReads
	start := ctx.Charged().Total()
	if locked {
		if err := ctx.Lock(lock); err != nil {
			return err
		}
	}
	acc := vm.Read
	if !read {
		acc = vm.Write
	}
	b, err := ctx.SpanRegion(kv.data, key*kv.slot, kv.cfg.ValueBytes, acc)
	if err != nil {
		if locked {
			_ = ctx.Unlock(lock)
		}
		return err
	}
	if read {
		var sum byte
		for _, x := range b {
			sum ^= x
		}
		kv.rec.sink += int64(sum)
	} else {
		for i := range b {
			b[i]++
		}
	}
	ctx.Compute(kv.slot / 8)
	if locked {
		if err := ctx.Unlock(lock); err != nil {
			return err
		}
	}
	if kv.measured(w) {
		kv.rec.record(ctx.Charged().Total()-start, read)
	}
	return nil
}

// ServingHooks composes the workload's window accounting onto inner:
// at each window boundary it snapshots elapsed virtual time and the
// cluster's protocol counters, bracketing the measurement span the
// Report is computed over. System.Run wires it automatically (the
// facade detects the method structurally); manual engine users call it
// themselves before SetHooks.
func (kv *KV) ServingHooks(inner threads.Hooks, elapsed func() sim.Time, snapshot func() dsm.Snapshot) threads.Hooks {
	out := inner
	out.OnIteration = func(w int) {
		kv.windowEnd(w, elapsed, snapshot)
		if inner.OnIteration != nil {
			inner.OnIteration(w)
		}
	}
	return out
}

// windowEnd folds window w's completion into the measurement brackets.
func (kv *KV) windowEnd(w int, elapsed func() sim.Time, snapshot func() dsm.Snapshot) {
	if w == kv.cfg.WarmupWindows-1 {
		kv.rec.openSpan(elapsed(), snapshot())
	}
	if kv.measured(w) {
		kv.rec.closeSpan(w-kv.cfg.WarmupWindows+1, elapsed(), snapshot())
	}
}
