package serve

import (
	"strings"
	"testing"

	"actdsm/internal/sim"
)

func TestConfigDefaults(t *testing.T) {
	kv, err := NewKV(Config{})
	if err != nil {
		t.Fatalf("NewKV(zero): %v", err)
	}
	c := kv.Config()
	if c.Clients != 8 || c.Keys != 256 || c.ValueBytes != 64 {
		t.Errorf("size defaults: %+v", c)
	}
	if c.ReadFraction != 0.9 || c.ZipfS != 1.1 {
		t.Errorf("mix defaults: %+v", c)
	}
	if c.RequestsPerWindow != 64 || c.WarmupWindows != 1 || c.Seed != 1 {
		t.Errorf("window defaults: %+v", c)
	}
	if c.LockStripes != 256 {
		t.Errorf("LockStripes = %d, want Keys (256)", c.LockStripes)
	}
	if c.SharedFraction != 0 {
		t.Errorf("SharedFraction defaulted to %v without groups", c.SharedFraction)
	}
	if g, err := NewKV(Config{Groups: 4}); err != nil {
		t.Fatalf("NewKV(groups): %v", err)
	} else if g.Config().SharedFraction != 0.1 {
		t.Errorf("grouped SharedFraction = %v, want 0.1", g.Config().SharedFraction)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Clients: -1},
		{ReadFraction: 1.5},
		{Groups: 2, SharedFraction: -0.1},
		{TargetQPS: -10},
		{Ramp: []int{2, 0}},
		{Groups: 300, Keys: 256}, // empty groups
	}
	for i, c := range bad {
		if _, err := NewKV(c); err == nil {
			t.Errorf("config %d (%+v) accepted, want error", i, c)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := newZipfTable(100, 1.1)
	rng := sim.NewRNG(42)
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		counts[z.sample(rng)]++
	}
	if counts[0] <= counts[50] || counts[0] <= counts[99] {
		t.Errorf("zipf not skewed: rank0=%d rank50=%d rank99=%d",
			counts[0], counts[50], counts[99])
	}
	// Rank 0 carries weight 1 out of a harmonic-like total ≈ 5.4, so it
	// should absorb well over 10% of draws.
	if counts[0] < 2000 {
		t.Errorf("rank0 drew only %d/20000", counts[0])
	}
}

func TestZipfUniform(t *testing.T) {
	z := newZipfTable(16, 0)
	rng := sim.NewRNG(7)
	counts := make([]int, 16)
	for i := 0; i < 16000; i++ {
		counts[z.sample(rng)]++
	}
	for r, n := range counts {
		if n < 500 || n > 1500 {
			t.Errorf("uniform rank %d drew %d/16000, want ~1000", r, n)
		}
	}
}

func TestLatencyBuckets(t *testing.T) {
	cases := []struct {
		d sim.Time
		b int
	}{
		{0, 0},
		{sim.Microsecond - 1, 0},
		{sim.Microsecond, 0},
		{2 * sim.Microsecond, 1},
		{4*sim.Microsecond - 1, 1},
		{4 * sim.Microsecond, 2},
		{sim.Second, 19},
		{100 * sim.Second, LatencyBuckets - 1},
	}
	for _, c := range cases {
		if got := latencyBucket(c.d); got != c.b {
			t.Errorf("latencyBucket(%v) = %d, want %d", c.d, got, c.b)
		}
	}
	for b := 1; b < LatencyBuckets; b++ {
		if latencyBucket(BucketBound(b)) != b {
			t.Errorf("BucketBound(%d) = %v lands in bucket %d", b, BucketBound(b), latencyBucket(BucketBound(b)))
		}
	}
}

func TestActiveClientsAndRamp(t *testing.T) {
	kv, err := NewKV(Config{Clients: 4, Ramp: []int{1, 2, 8}})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 4, 4} // entry 8 clamps to Clients; last entry repeats
	for w, a := range want {
		if got := kv.activeClients(w); got != a {
			t.Errorf("activeClients(%d) = %d, want %d", w, got, a)
		}
	}
}

func TestMeasuredWindows(t *testing.T) {
	kv, err := NewKV(Config{WarmupWindows: 2, MeasureWindows: 3})
	if err != nil {
		t.Fatal(err)
	}
	for w, want := range []bool{false, false, true, true, true, false} {
		if kv.measured(w) != want {
			t.Errorf("bounded measured(%d) = %v, want %v", w, kv.measured(w), want)
		}
	}
	open, err := NewKV(Config{WarmupWindows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if open.measured(1) || !open.measured(2) || !open.measured(100) {
		t.Error("open-ended measurement window wrong")
	}
}

func TestThinkTime(t *testing.T) {
	kv, err := NewKV(Config{Clients: 8, TargetQPS: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if got := kv.thinkTime(0); got != 8*sim.Millisecond {
		t.Errorf("thinkTime = %v, want 8ms", got)
	}
	sat, err := NewKV(Config{Clients: 8})
	if err != nil {
		t.Fatal(err)
	}
	if sat.thinkTime(0) != 0 {
		t.Errorf("saturation thinkTime = %v, want 0", sat.thinkTime(0))
	}
}

func TestSampleKeyGroupLocality(t *testing.T) {
	kv, err := NewKV(Config{Clients: 8, Keys: 256, Groups: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(99)
	const draws = 10000
	inBlock := 0
	for i := 0; i < draws; i++ {
		k := kv.sampleKey(rng, 1) // group 1 owns keys [64, 128)
		if k < 0 || k >= 256 {
			t.Fatalf("sampled key %d outside key space", k)
		}
		if k >= 64 && k < 128 {
			inBlock++
		}
	}
	// SharedFraction defaults to 0.1, so ~90% of draws stay group-local
	// (plus the global stream's occasional hits inside the block).
	if inBlock < draws*8/10 {
		t.Errorf("only %d/%d draws group-local", inBlock, draws)
	}
}

func TestReportBeforeRun(t *testing.T) {
	kv, err := NewKV(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kv.Report(); err == nil {
		t.Fatal("Report before any run succeeded, want error")
	} else if !strings.Contains(err.Error(), "no measured window") {
		t.Errorf("unexpected error: %v", err)
	}
}
