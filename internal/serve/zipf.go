package serve

import (
	"math"
	"sort"

	"actdsm/internal/sim"
)

// zipfTable samples ranks 0..n-1 with probability proportional to
// 1/(r+1)^s via a precomputed cumulative-weight table and binary search
// (math/rand's Zipf is banned by the determinism contract; this draws
// one sim.RNG float per sample). s <= 0 degrades to uniform.
type zipfTable struct {
	cum []float64
}

func newZipfTable(n int, s float64) *zipfTable {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		w := 1.0
		if s > 0 {
			w = 1 / math.Pow(float64(i+1), s)
		}
		total += w
		cum[i] = total
	}
	return &zipfTable{cum: cum}
}

// sample draws one rank.
func (z *zipfTable) sample(rng *sim.RNG) int {
	x := rng.Float64() * z.cum[len(z.cum)-1]
	i := sort.SearchFloat64s(z.cum, x)
	if i >= len(z.cum) {
		i = len(z.cum) - 1
	}
	return i
}
