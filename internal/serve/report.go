package serve

import (
	"errors"
	"sort"
	"sync/atomic"

	"actdsm/internal/dsm"
	"actdsm/internal/sim"
)

// LatencyBuckets is the number of power-of-two virtual-latency buckets
// in Report.LatencyHist. Bucket b counts requests whose latency fell in
// [1µs<<b, 1µs<<(b+1)); bucket 0 also absorbs sub-microsecond requests
// and the last bucket the tail (≳ 2s of virtual time).
const LatencyBuckets = 22

// latencyBucket maps a virtual duration to its histogram bucket.
func latencyBucket(d sim.Time) int {
	us := int64(d) / int64(sim.Microsecond)
	b := 0
	for us > 1 && b < LatencyBuckets-1 {
		us >>= 1
		b++
	}
	return b
}

// BucketBound returns the inclusive lower bound of latency bucket b.
func BucketBound(b int) sim.Time { return sim.Microsecond << b }

// KindCalls is one message kind's transport call count over the
// measurement span.
type KindCalls struct {
	Kind  string `json:"kind"`
	Count int64  `json:"count"`
}

// Report is the stable result type of a serving run: achieved
// throughput, the per-request virtual-latency distribution, and the
// protocol work the measurement span cost, all deterministic. Exported
// through the facade as actdsm.ServeReport and rendered in Prometheus
// text format by obs.ServeMetricsText, whose coverage test walks these
// fields the same way TestMetricsCoverSnapshot walks dsm.Snapshot.
type Report struct {
	// Workload and the load-generator configuration echo.
	Workload     string  `json:"workload"`
	Clients      int     `json:"clients"`
	Keys         int     `json:"keys"`
	ReadFraction float64 `json:"read_fraction"`
	ZipfS        float64 `json:"zipf_s"`
	TargetQPS    float64 `json:"target_qps"`
	// Windows is the number of measured windows.
	Windows int `json:"windows"`

	// Request counts over the measurement span.
	Requests int64 `json:"requests"`
	Reads    int64 `json:"reads"`
	Writes   int64 `json:"writes"`

	// Elapsed is the measurement span's virtual duration; QPS is
	// Requests per virtual second of it.
	Elapsed sim.Time `json:"elapsed"`
	QPS     float64  `json:"qps"`

	// Exact latency quantiles (virtual nanoseconds) over every measured
	// request, plus the bucketed distribution for metrics export.
	P50         sim.Time              `json:"p50"`
	P99         sim.Time              `json:"p99"`
	P999        sim.Time              `json:"p999"`
	MaxLatency  sim.Time              `json:"max_latency"`
	LatencyHist [LatencyBuckets]int64 `json:"latency_hist"`

	// Protocol work over the measurement span.
	RemoteMisses   int64       `json:"remote_misses"`
	LockAcquires   int64       `json:"lock_acquires"`
	LockForwards   int64       `json:"lock_forwards"`
	HomeMigrations int64       `json:"home_migrations"`
	Calls          []KindCalls `json:"calls"`
}

// atomicFlag is a set-once boolean safe for cross-goroutine signalling.
type atomicFlag struct{ v atomic.Bool }

func (f *atomicFlag) set()        { f.v.Store(true) }
func (f *atomicFlag) isSet() bool { return f.v.Load() }

// recorder accumulates per-request measurements and the window
// snapshots bracketing the measurement span. All access is
// engine-serialized (see KV).
type recorder struct {
	lats   []sim.Time
	reads  int64
	writes int64
	// sink folds read values so GET loops are not dead code.
	sink int64

	spanOpen   bool
	startT     sim.Time
	startSnap  dsm.Snapshot
	endT       sim.Time
	endSnap    dsm.Snapshot
	windows    int
	spanClosed bool
}

func (r *recorder) record(lat sim.Time, read bool) {
	r.lats = append(r.lats, lat)
	if read {
		r.reads++
	} else {
		r.writes++
	}
}

func (r *recorder) openSpan(t sim.Time, s dsm.Snapshot) {
	r.spanOpen = true
	r.startT, r.startSnap = t, s
}

func (r *recorder) closeSpan(windows int, t sim.Time, s dsm.Snapshot) {
	r.spanClosed = true
	r.windows = windows
	r.endT, r.endSnap = t, s
}

// quantile returns the q-quantile of the sorted latency slice.
func quantile(sorted []sim.Time, q float64) sim.Time {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Report computes the run's serving report. It errors until at least
// one measured window has completed (the run was cancelled inside
// warmup, or never ran under ServingHooks).
func (kv *KV) Report() (*Report, error) {
	r := &kv.rec
	if !r.spanOpen || !r.spanClosed {
		return nil, errors.New("serve: no measured window completed (run cancelled during warmup, or ServingHooks not installed)")
	}
	sorted := append([]sim.Time(nil), r.lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rep := &Report{
		Workload:     kv.Name(),
		Clients:      kv.cfg.Clients,
		Keys:         kv.cfg.Keys,
		ReadFraction: kv.cfg.ReadFraction,
		ZipfS:        kv.cfg.ZipfS,
		TargetQPS:    kv.cfg.TargetQPS,
		Windows:      r.windows,
		Requests:     int64(len(r.lats)),
		Reads:        r.reads,
		Writes:       r.writes,
		Elapsed:      r.endT - r.startT,
		P50:          quantile(sorted, 0.50),
		P99:          quantile(sorted, 0.99),
		P999:         quantile(sorted, 0.999),
	}
	if n := len(sorted); n > 0 {
		rep.MaxLatency = sorted[n-1]
	}
	for _, l := range r.lats {
		rep.LatencyHist[latencyBucket(l)]++
	}
	if sec := rep.Elapsed.Seconds(); sec > 0 {
		rep.QPS = float64(rep.Requests) / sec
	}
	delta := r.endSnap.Sub(r.startSnap)
	rep.RemoteMisses = delta.RemoteMisses
	rep.LockAcquires = delta.LockAcquires
	rep.LockForwards = delta.LockForwards
	rep.HomeMigrations = delta.HomeMigrations
	for _, c := range delta.Calls {
		if c.Count > 0 {
			rep.Calls = append(rep.Calls, KindCalls{Kind: c.Kind, Count: c.Count})
		}
	}
	return rep, nil
}
