package obs_test

// Serving exporter acceptance: the ServeMetricsText dump must cover
// 100% of serve.Report's fields, each exactly once — the same contract
// TestMetricsCoverSnapshot enforces for dsm.Snapshot — measured on a
// real (tiny) serving run through the facade.

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"actdsm"
	"actdsm/internal/obs"
)

// servedReport runs one small closed-loop serving benchmark.
func servedReport(t *testing.T) *actdsm.ServeReport {
	t.Helper()
	rep, err := actdsm.ServeKV(context.Background(), 2, actdsm.WithServing(actdsm.ServingConfig{
		Clients:           4,
		Keys:              32,
		RequestsPerWindow: 8,
		MeasureWindows:    2,
	}))
	if err != nil {
		t.Fatalf("ServeKV: %v", err)
	}
	return rep
}

func TestServeMetricsCoverReport(t *testing.T) {
	rep := servedReport(t)
	var buf bytes.Buffer
	if err := actdsm.ServeMetricsText(*rep, &buf); err != nil {
		t.Fatalf("ServeMetricsText: %v", err)
	}
	text := buf.String()
	if strings.Contains(text, "# UNHANDLED") {
		t.Fatalf("serving dump contains unhandled report fields:\n%s", text)
	}

	countHelp := func(metric string) int {
		return strings.Count(text, "# HELP "+metric+" ")
	}
	rt := reflect.TypeOf(*rep)
	rv := reflect.ValueOf(*rep)
	simTime := reflect.TypeOf(rep.Elapsed)
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		switch {
		case f.Name == "Workload":
			if !strings.Contains(text, fmt.Sprintf("actdsm_serve_info{workload=%q} 1", rep.Workload)) {
				t.Errorf("info metric missing workload %q", rep.Workload)
			}
		case f.Name == "Calls":
			if got := countHelp("actdsm_serve_calls_total"); got != 1 {
				t.Errorf("calls metric appears %d times, want exactly 1", got)
			}
			if len(rep.Calls) == 0 {
				t.Error("serving run produced no transport calls to cover")
			}
			for _, c := range rep.Calls {
				if !strings.Contains(text, fmt.Sprintf("actdsm_serve_calls_total{kind=%q} %d", c.Kind, c.Count)) {
					t.Errorf("call kind %s missing from dump", c.Kind)
				}
			}
		case f.Type == simTime:
			name := obs.ServeTimeName(f.Name)
			if got := countHelp(name); got != 1 {
				t.Errorf("field %s: time gauge %s appears %d times, want exactly 1", f.Name, name, got)
			}
		case f.Type.Kind() == reflect.Int64:
			name := obs.ServeMetricName(f.Name)
			if got := countHelp(name); got != 1 {
				t.Errorf("field %s: counter %s appears %d times, want exactly 1", f.Name, name, got)
			}
			want := fmt.Sprintf("\n%s %d\n", name, rv.Field(i).Int())
			if !strings.Contains(text, want) {
				t.Errorf("field %s: sample line %q missing", f.Name, strings.TrimSpace(want))
			}
		case f.Type.Kind() == reflect.Int || f.Type.Kind() == reflect.Float64:
			name := obs.ServeGaugeName(f.Name)
			if got := countHelp(name); got != 1 {
				t.Errorf("field %s: gauge %s appears %d times, want exactly 1", f.Name, name, got)
			}
		case f.Type.Kind() == reflect.Array:
			if got := countHelp("actdsm_serve_latency_seconds"); got != 1 {
				t.Errorf("latency histogram appears %d times, want exactly 1", got)
			}
			if !strings.Contains(text, "actdsm_serve_latency_seconds_bucket{le=\"+Inf\"}") {
				t.Error("latency histogram lacks +Inf bucket")
			}
			if !strings.Contains(text, fmt.Sprintf("actdsm_serve_latency_seconds_count %d", rep.Requests)) {
				t.Errorf("latency histogram count does not match Requests %d", rep.Requests)
			}
		default:
			t.Errorf("report field %s has unrecognized shape %s: teach the dump and this test", f.Name, f.Type.Kind())
		}
	}
}

// TestServeReportSane pins the stable result type's basic invariants on
// a real run.
func TestServeReportSane(t *testing.T) {
	rep := servedReport(t)
	if rep.Workload != "ServeKV" {
		t.Errorf("workload %q", rep.Workload)
	}
	if want := int64(4 * 8 * 2); rep.Requests != want {
		t.Errorf("requests %d, want %d", rep.Requests, want)
	}
	if rep.Reads+rep.Writes != rep.Requests {
		t.Errorf("reads %d + writes %d != requests %d", rep.Reads, rep.Writes, rep.Requests)
	}
	if rep.QPS <= 0 || rep.Elapsed <= 0 {
		t.Errorf("throughput not measured: qps %v elapsed %v", rep.QPS, rep.Elapsed)
	}
	if rep.P50 > rep.P99 || rep.P99 > rep.P999 || rep.P999 > rep.MaxLatency {
		t.Errorf("quantiles not monotone: %v %v %v %v", rep.P50, rep.P99, rep.P999, rep.MaxLatency)
	}
	var histSum int64
	for _, n := range rep.LatencyHist {
		histSum += n
	}
	if histSum != rep.Requests {
		t.Errorf("latency histogram holds %d samples, want %d", histSum, rep.Requests)
	}
}
