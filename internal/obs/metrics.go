package obs

// Prometheus text-exposition metrics dump for dsm.Stats. The dump is
// reflection-driven over dsm.Snapshot so that every counter added to the
// Stats struct automatically appears here with a stable, predictable
// name — the coverage test (TestMetricsCoverSnapshot) walks the same
// struct and fails the build of any PR that adds a counter the dump
// would miss.
//
// Naming. A scalar field FooBar renders as counter `actdsm_foo_bar`
// (with `_total` appended unless the name already ends in `_total`);
// an [N]int64 bucket array FooHist renders as a cumulative histogram
// `actdsm_foo_hist_bucket{le="..."}`; the per-message-type call table
// renders as `actdsm_call_*_total{kind="..."}` plus a cumulative
// wall-clock latency histogram in seconds.

import (
	"fmt"
	"io"
	"reflect"
	"strings"
	"time"

	"actdsm/internal/dsm"
)

// snakeCase converts a Go exported identifier to snake_case:
// RemoteMisses → remote_misses, GCCollections → gc_collections,
// BatchSizeHist → batch_size_hist.
func snakeCase(s string) string {
	var b strings.Builder
	rs := []rune(s)
	for i, r := range rs {
		if r >= 'A' && r <= 'Z' {
			// Break before an uppercase rune when the previous rune is
			// lowercase, or when the next one is (end of an acronym).
			if i > 0 && (isLower(rs[i-1]) || (i+1 < len(rs) && isLower(rs[i+1]))) {
				b.WriteByte('_')
			}
			r += 'a' - 'A'
		}
		b.WriteRune(r)
	}
	return b.String()
}

func isLower(r rune) bool { return r >= 'a' && r <= 'z' }

// MetricName returns the exposition name used for a scalar Snapshot
// field (exported so the coverage test and the dump agree by
// construction).
func MetricName(field string) string {
	n := "actdsm_" + snakeCase(field)
	if !strings.HasSuffix(n, "_total") {
		n += "_total"
	}
	return n
}

// HistName returns the exposition base name used for a bucket-array
// Snapshot field.
func HistName(field string) string {
	return "actdsm_" + snakeCase(field)
}

// MetricsText renders the snapshot in Prometheus text exposition format.
// Output order is Snapshot field order, so diffs stay reviewable.
func MetricsText(s dsm.Snapshot, w io.Writer) error {
	v := reflect.ValueOf(s)
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		fv := v.Field(i)
		switch {
		case fv.Kind() == reflect.Int64:
			name := MetricName(f.Name)
			if _, err := fmt.Fprintf(w,
				"# HELP %s dsm.Snapshot.%s\n# TYPE %s counter\n%s %d\n",
				name, f.Name, name, name, fv.Int()); err != nil {
				return err
			}
		case fv.Kind() == reflect.Array && fv.Type().Elem().Kind() == reflect.Int64:
			if err := writeBucketArray(w, f.Name, fv); err != nil {
				return err
			}
		case f.Name == "Calls":
			if err := writeCalls(w, s.Calls); err != nil {
				return err
			}
		case f.Name == "Links":
			if err := writeLinks(w, s.Links); err != nil {
				return err
			}
		default:
			// A new Snapshot field of an unhandled shape: emit a marker
			// comment so the coverage test still sees the field name and
			// a human sees the gap.
			if _, err := fmt.Fprintf(w, "# UNHANDLED dsm.Snapshot.%s (%s)\n", f.Name, fv.Kind()); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeBucketArray renders an [N]int64 power-of-two bucket array as a
// cumulative Prometheus histogram with integer upper bounds.
func writeBucketArray(w io.Writer, field string, fv reflect.Value) error {
	name := HistName(field)
	if _, err := fmt.Fprintf(w,
		"# HELP %s dsm.Snapshot.%s (power-of-two buckets)\n# TYPE %s histogram\n",
		name, field, name); err != nil {
		return err
	}
	var cum int64
	n := fv.Len()
	for b := 0; b < n; b++ {
		cum += fv.Index(b).Int()
		le := fmt.Sprintf("%d", (int64(1)<<(b+1))-1)
		if b == n-1 {
			le = "+Inf"
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, cum)
	return err
}

// writeCalls renders the per-message-type call table.
func writeCalls(w io.Writer, calls []dsm.CallSnapshot) error {
	type scalar struct {
		name, help string
		get        func(dsm.CallSnapshot) int64
	}
	scalars := []scalar{
		{"actdsm_call_count_total", "completed transport calls by message kind", func(c dsm.CallSnapshot) int64 { return c.Count }},
		{"actdsm_call_errors_total", "failed transport calls by message kind", func(c dsm.CallSnapshot) int64 { return c.Errors }},
		{"actdsm_call_retries_total", "transport retry attempts by message kind", func(c dsm.CallSnapshot) int64 { return c.Retries }},
		{"actdsm_call_bytes_total", "request+reply wire bytes by message kind", func(c dsm.CallSnapshot) int64 { return c.Bytes }},
	}
	for _, sc := range scalars {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", sc.name, sc.help, sc.name); err != nil {
			return err
		}
		for _, c := range calls {
			if _, err := fmt.Fprintf(w, "%s{kind=%q} %d\n", sc.name, c.Kind, sc.get(c)); err != nil {
				return err
			}
		}
	}
	const lat = "actdsm_call_latency_seconds"
	if _, err := fmt.Fprintf(w,
		"# HELP %s wall-clock call latency by message kind\n# TYPE %s histogram\n", lat, lat); err != nil {
		return err
	}
	for _, c := range calls {
		var cum int64
		for b, n := range c.Latency {
			cum += n
			le := "+Inf"
			if b < dsm.LatencyBuckets-1 {
				le = fmt.Sprintf("%g", (time.Microsecond << (b + 1)).Seconds())
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{kind=%q,le=\"%s\"} %d\n", lat, c.Kind, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_count{kind=%q} %d\n", lat, c.Kind, cum); err != nil {
			return err
		}
	}
	return nil
}

// writeLinks renders the per-directed-link traffic table. Latency is
// exposed as a plain counter of summed round-trip seconds (mean = sum /
// calls), not a histogram: the per-link dimension already multiplies
// the series count by n², so buckets would be excessive.
func writeLinks(w io.Writer, links []dsm.LinkSnapshot) error {
	type scalar struct {
		name, help string
		get        func(dsm.LinkSnapshot) float64
		fmt        string
	}
	scalars := []scalar{
		{"actdsm_link_calls_total", "completed transport calls by directed link",
			func(l dsm.LinkSnapshot) float64 { return float64(l.Calls) }, "%s{from=\"%d\",to=\"%d\"} %.0f\n"},
		{"actdsm_link_bytes_total", "request+reply wire bytes by directed link",
			func(l dsm.LinkSnapshot) float64 { return float64(l.Bytes) }, "%s{from=\"%d\",to=\"%d\"} %.0f\n"},
		{"actdsm_link_latency_seconds_total", "summed wall-clock round-trip seconds by directed link",
			func(l dsm.LinkSnapshot) float64 { return float64(l.LatencyNS) / 1e9 }, "%s{from=\"%d\",to=\"%d\"} %g\n"},
	}
	for _, sc := range scalars {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", sc.name, sc.help, sc.name); err != nil {
			return err
		}
		for _, l := range links {
			if _, err := fmt.Fprintf(w, sc.fmt, sc.name, l.From, l.To, sc.get(l)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteMetrics renders the cluster snapshot plus the recorder's own
// meta-counters (events recorded / dropped).
func (r *Recorder) WriteMetrics(s dsm.Snapshot, w io.Writer) error {
	if err := MetricsText(s, w); err != nil {
		return err
	}
	if !r.Enabled() {
		return nil
	}
	r.mu.Lock()
	total := r.total
	r.mu.Unlock()
	_, err := fmt.Fprintf(w,
		"# HELP actdsm_obs_events_total events recorded by the observability ring\n"+
			"# TYPE actdsm_obs_events_total counter\nactdsm_obs_events_total %d\n"+
			"# HELP actdsm_obs_events_dropped_total events lost to ring wrap-around\n"+
			"# TYPE actdsm_obs_events_dropped_total counter\nactdsm_obs_events_dropped_total %d\n",
		total, r.Dropped())
	return err
}
