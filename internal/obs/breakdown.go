package obs

// Per-epoch critical-path breakdown: the textual answer to "where did
// the time go?". For every barrier episode it aggregates, per node, the
// folded thread time (split compute / stall / overhead, with the stall
// further split page-fetch / diff-fetch / lock by the probe's
// attribution), the barrier-protocol and prefetch-round costs, and the
// rendezvous wait — and names the critical node, the one every other
// node waited for. This is the paper's Table-2 argument made visible:
// placement changes pay off exactly when they shrink the critical
// node's stall share.

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"actdsm/internal/sim"
)

// NodeBreakdown is one node's share of one barrier episode.
type NodeBreakdown struct {
	Node int

	// Start is the node clock at episode start; the episode spans
	// [Start, Start+Folded+Barrier+Prefetch+Wait].
	Start sim.Time
	// Folded is the node-clock time the folded thread charges occupied
	// (after latency toleration and node-speed scaling).
	Folded sim.Time
	// Barrier and Prefetch are the node's barrier-protocol and
	// prefetch-round costs; Wait pads the node to the global release.
	Barrier, Prefetch, Wait sim.Time

	// Raw per-thread charges accumulated during the episode (pre-fold;
	// they can exceed Folded when latency toleration overlapped stalls).
	Compute, Stall, Overhead sim.Time
	// Attributed stall shares (<= Stall; remainder is unclassified).
	PageStall, DiffStall, LockStall sim.Time

	// Slices is the number of thread scheduling slices; Fetches the
	// number of remote fetch round trips charged to resident threads.
	Slices, Fetches int
}

// End returns the node clock at episode release.
func (n NodeBreakdown) End() sim.Time {
	return n.Start + n.Folded + n.Barrier + n.Prefetch + n.Wait
}

// EpochBreakdown is one barrier episode across all nodes.
type EpochBreakdown struct {
	Epoch int
	// Start and End are the earliest node start and the common release.
	Start, End sim.Time
	Nodes      []NodeBreakdown
	// Critical is the node that set the release time (maximum
	// Start+Folded+Barrier+Prefetch — i.e. zero wait).
	Critical int
	// Migrations and MigrationCost count thread migrations charged
	// after this episode's release (between it and the next episode).
	Migrations    int
	MigrationCost sim.Time
}

// Breakdown is the whole run, one entry per barrier episode.
type Breakdown struct {
	Epochs []EpochBreakdown
	// Wall is the maximum node clock at the end of the last episode.
	Wall sim.Time
}

// ComputeBreakdown folds a recorder's events into per-epoch summaries.
func ComputeBreakdown(events []Event) *Breakdown {
	type key struct{ epoch, node int32 }
	nodes := make(map[key]*NodeBreakdown)
	epochs := make(map[int32]*EpochBreakdown)
	get := func(epoch, node int32) *NodeBreakdown {
		k := key{epoch, node}
		nb := nodes[k]
		if nb == nil {
			nb = &NodeBreakdown{Node: int(node)}
			nodes[k] = nb
		}
		return nb
	}
	for _, e := range events {
		switch e.Kind {
		case EvRunSlice:
			nb := get(e.Epoch, e.Node)
			nb.Slices++
			nb.Compute += e.Compute
			nb.Stall += e.Stall
			nb.Overhead += e.Overhead
			nb.PageStall += e.PageStall
			nb.DiffStall += e.DiffStall
			nb.LockStall += e.LockStall
		case EvRemoteFetch:
			if e.TID >= 0 {
				get(e.Epoch, e.Node).Fetches++
			}
		case EvNodeEpoch:
			nb := get(e.Epoch, e.Node)
			nb.Start = e.Time
			nb.Folded = e.Dur
			nb.Barrier = e.Barrier
			nb.Prefetch = e.Prefetch
			nb.Wait = e.Wait
			ep := epochs[e.Epoch]
			if ep == nil {
				ep = &EpochBreakdown{Epoch: int(e.Epoch), Start: e.Time}
				epochs[e.Epoch] = ep
			}
			if e.Time < ep.Start {
				ep.Start = e.Time
			}
			if end := nb.End(); end > ep.End {
				ep.End = end
			}
		case EvMigrate:
			// Migrations are charged with all threads parked, after the
			// recorder's epoch stamp advanced past the closing episode.
			if ep := epochs[e.Epoch-1]; ep != nil {
				ep.Migrations++
				ep.MigrationCost += e.Dur
			}
		}
	}
	b := &Breakdown{}
	var order []int32
	for e := range epochs {
		order = append(order, e)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, en := range order {
		ep := epochs[en]
		var ns []NodeBreakdown
		for k, nb := range nodes {
			if k.epoch == en {
				ns = append(ns, *nb)
			}
		}
		sort.Slice(ns, func(i, j int) bool { return ns[i].Node < ns[j].Node })
		ep.Nodes = ns
		// Critical node: minimum wait (ties to the lowest id).
		ep.Critical = -1
		var minWait sim.Time
		for i, nb := range ns {
			if ep.Critical < 0 || nb.Wait < minWait {
				ep.Critical, minWait = i, nb.Wait
			}
		}
		if ep.Critical >= 0 {
			ep.Critical = ns[ep.Critical].Node
		}
		b.Epochs = append(b.Epochs, *ep)
		if ep.End > b.Wall {
			b.Wall = ep.End
		}
	}
	return b
}

// Breakdown computes the per-epoch report from the recorder's events.
func (r *Recorder) Breakdown() *Breakdown {
	return ComputeBreakdown(r.Events())
}

// pct renders a share of total as a fixed-width percentage.
func pct(part, total sim.Time) string {
	if total <= 0 {
		return "    -"
	}
	return fmt.Sprintf("%4.1f%%", 100*float64(part)/float64(total))
}

// WriteTo renders the breakdown as an aligned per-epoch table. Per-node
// component sums tile each node's episode exactly (folded + barrier +
// prefetch + wait spans [start, release]); the per-epoch row shows the
// cross-node aggregate shares of the episode's node-time.
func (b *Breakdown) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s %10s %7s | %6s %6s %6s %6s | %6s %6s %6s %5s %5s\n",
		"epoch", "wall", "crit", "comput", "stall", "ovhd", "wait", "page", "diff", "lock", "barr", "pref")
	for _, ep := range b.Epochs {
		var folded, barrier, prefetch, wait sim.Time
		var comp, stall, ovhd, page, diff, lock sim.Time
		for _, nb := range ep.Nodes {
			folded += nb.Folded
			barrier += nb.Barrier
			prefetch += nb.Prefetch
			wait += nb.Wait
			comp += nb.Compute
			stall += nb.Stall
			ovhd += nb.Overhead
			page += nb.PageStall
			diff += nb.DiffStall
			lock += nb.LockStall
		}
		nodeTime := folded + barrier + prefetch + wait
		// The folded window compresses raw thread charges; report the raw
		// shares scaled into the folded aggregate so columns stay
		// comparable across scheduler modes.
		raw := comp + stall + ovhd
		scale := 1.0
		if raw > 0 {
			scale = float64(folded) / float64(raw)
		}
		sc := func(t sim.Time) sim.Time { return sim.Time(float64(t) * scale) }
		fmt.Fprintf(&sb, "%-6d %10s %7s | %6s %6s %6s %6s | %6s %6s %6s %5s %5s\n",
			ep.Epoch,
			fmtTime(ep.End-ep.Start),
			fmt.Sprintf("n%d", ep.Critical),
			pct(sc(comp), nodeTime), pct(sc(stall), nodeTime), pct(sc(ovhd), nodeTime), pct(wait, nodeTime),
			pct(sc(page), nodeTime), pct(sc(diff), nodeTime), pct(sc(lock), nodeTime),
			pct(barrier, nodeTime), pct(prefetch, nodeTime))
		if ep.Migrations > 0 {
			fmt.Fprintf(&sb, "       + %d migrations, %s\n", ep.Migrations, fmtTime(ep.MigrationCost))
		}
	}
	fmt.Fprintf(&sb, "total  %10s  (%d epochs)\n", fmtTime(b.Wall), len(b.Epochs))
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String renders the breakdown table.
func (b *Breakdown) String() string {
	var sb strings.Builder
	_, _ = b.WriteTo(&sb)
	return sb.String()
}

// fmtTime renders virtual nanoseconds compactly.
func fmtTime(t sim.Time) string {
	switch {
	case t >= 1e9:
		return fmt.Sprintf("%.3fs", float64(t)/1e9)
	case t >= 1e6:
		return fmt.Sprintf("%.2fms", float64(t)/1e6)
	case t >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(t)/1e3)
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}
