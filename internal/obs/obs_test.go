package obs_test

// Acceptance tests for the observability layer (DESIGN.md §9):
//
//   - a deterministic SOR run with observability enabled emits
//     schema-valid Chrome trace-event JSON with a stable pid/tid mapping
//     and non-overlapping spans per track;
//   - the metrics dump covers 100% of dsm.Snapshot's fields, each
//     exactly once;
//   - the per-epoch breakdown's span totals tile the run's virtual wall
//     time within 1%;
//   - a disabled recorder adds zero allocations on the hot probe path.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"actdsm"
	"actdsm/internal/dsm"
	"actdsm/internal/obs"
	"actdsm/internal/sim"
)

// observedRun executes one deterministic SOR workload with the recorder
// enabled and returns the finished system.
func observedRun(t *testing.T, opts ...actdsm.SystemOption) *actdsm.System {
	t.Helper()
	app, err := actdsm.NewApp("SOR", actdsm.AppConfig{Threads: 16, Scale: actdsm.ScaleTest})
	if err != nil {
		t.Fatalf("NewApp: %v", err)
	}
	opts = append([]actdsm.SystemOption{actdsm.WithObservability()}, opts...)
	sys, err := actdsm.NewSystem(app, 4, opts...)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	t.Cleanup(func() { _ = sys.Close() })
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return sys
}

// traceFile mirrors the exporter's JSON schema for validation.
type traceFile struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		PID  int64          `json:"pid"`
		TID  int64          `json:"tid"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Cat  string         `json:"cat"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestTraceJSONStructure(t *testing.T) {
	sys := observedRun(t, actdsm.WithClusterConfig(actdsm.ClusterConfig{BatchDiffs: true, PrefetchBudget: -1}))
	var buf bytes.Buffer
	if err := sys.Recorder().WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var tf traceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	const nodes = 4
	transportPID := int64(nodes)

	// Stable pid mapping: every node pid has a process_name metadata
	// record naming it "node N", and the transport process is labelled.
	names := map[int64]string{}
	for _, e := range tf.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			names[e.PID], _ = e.Args["name"].(string)
		}
	}
	for n := int64(0); n < nodes; n++ {
		if want := fmt.Sprintf("node %d", n); names[n] != want {
			t.Errorf("pid %d named %q, want %q", n, names[n], want)
		}
	}
	if !strings.HasPrefix(names[transportPID], "transport") {
		t.Errorf("transport pid %d named %q", transportPID, names[transportPID])
	}

	// Every non-metadata event lands on a known process, with valid
	// phase, non-negative timestamps, and slices on thread tracks.
	phases := map[string]bool{"X": true, "i": true, "M": true}
	perTrack := map[[2]int64][][2]float64{} // (pid,tid) → [start,end)
	for _, e := range tf.TraceEvents {
		if !phases[e.Ph] {
			t.Fatalf("unexpected phase %q in event %q", e.Ph, e.Name)
		}
		if e.Ph == "M" {
			continue
		}
		if e.PID < 0 || e.PID > transportPID {
			t.Fatalf("event %q on unknown pid %d", e.Name, e.PID)
		}
		if e.TS < 0 || e.Dur < 0 {
			t.Fatalf("event %q has negative ts/dur (%v/%v)", e.Name, e.TS, e.Dur)
		}
		if e.Cat == "slice" && e.TID < 1 {
			t.Fatalf("run slice on non-thread track tid=%d", e.TID)
		}
		if e.Ph == "X" && e.PID != transportPID {
			k := [2]int64{e.PID, e.TID}
			perTrack[k] = append(perTrack[k], [2]float64{e.TS, e.TS + e.Dur})
		}
	}

	// Balanced nesting: complete events on one virtual-time track must
	// tile without partial overlap (the exporter lays slices and protocol
	// spans back to back). Allow sub-nanosecond float slack.
	const eps = 1e-3 // µs
	for k, spans := range perTrack {
		sort.Slice(spans, func(i, j int) bool { return spans[i][0] < spans[j][0] })
		for i := 1; i < len(spans); i++ {
			if spans[i][0] < spans[i-1][1]-eps {
				t.Fatalf("track pid=%d tid=%d: span %v overlaps previous %v",
					k[0], k[1], spans[i], spans[i-1])
			}
		}
	}

	// The deterministic SOR run with prefetch enabled produces at least
	// one event of each core kind.
	cats := map[string]int{}
	for _, e := range tf.TraceEvents {
		cats[e.Cat]++
	}
	for _, want := range []string{"slice", "protocol", "fetch", "transport"} {
		if cats[want] == 0 {
			t.Errorf("trace has no %q events (got %v)", want, cats)
		}
	}
}

func TestTraceDeterministicMapping(t *testing.T) {
	// Two identical runs produce identical virtual-time layouts: same
	// pid/tid set and identical slice/protocol span geometry (transport
	// events are wall-clock and excluded).
	render := func() string {
		sys := observedRun(t)
		var buf bytes.Buffer
		if err := sys.Recorder().WriteTrace(&buf); err != nil {
			t.Fatalf("WriteTrace: %v", err)
		}
		var tf traceFile
		if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
			t.Fatalf("parse: %v", err)
		}
		var lines []string
		for _, e := range tf.TraceEvents {
			if e.Cat == "transport" || e.Ph == "M" {
				continue
			}
			lines = append(lines, fmt.Sprintf("%s|%s|%d|%d|%.3f|%.3f", e.Name, e.Ph, e.PID, e.TID, e.TS, e.Dur))
		}
		sort.Strings(lines)
		return strings.Join(lines, "\n")
	}
	if a, b := render(), render(); a != b {
		t.Error("virtual-time trace layout differs between identical runs")
	}
}

func TestBreakdownSumsToWall(t *testing.T) {
	sys := observedRun(t, actdsm.WithClusterConfig(actdsm.ClusterConfig{BatchDiffs: true, PrefetchBudget: -1}))
	b := sys.Recorder().Breakdown()
	if len(b.Epochs) == 0 {
		t.Fatal("no epochs in breakdown")
	}
	wall := sys.Elapsed()
	if b.Wall != wall {
		t.Errorf("breakdown wall %d != engine elapsed %d", b.Wall, wall)
	}
	// Per-node identity: the four spans tile [Start, End] exactly.
	var perNode [4]sim.Time
	for _, ep := range b.Epochs {
		for _, nb := range ep.Nodes {
			total := nb.Folded + nb.Barrier + nb.Prefetch + nb.Wait
			if nb.Start+total != nb.End() {
				t.Fatalf("epoch %d node %d: spans %d do not tile [%d,%d]",
					ep.Epoch, nb.Node, total, nb.Start, nb.End())
			}
			perNode[nb.Node] += total
		}
		perNode[0] += ep.MigrationCost // charged between episodes
	}
	// Whole-run criterion: per-epoch span totals sum to the wall time
	// within 1% (exact when no migrations interleave).
	for n, sum := range perNode {
		diff := float64(wall-sum) / float64(wall)
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.01 {
			t.Errorf("node %d: span total %d vs wall %d (%.2f%% off)", n, sum, wall, 100*diff)
		}
	}
}

func TestMetricsCoverSnapshot(t *testing.T) {
	sys := observedRun(t, actdsm.WithClusterConfig(actdsm.ClusterConfig{BatchDiffs: true, PrefetchBudget: -1}))
	snap := sys.Cluster().Stats().Snapshot()
	var buf bytes.Buffer
	if err := sys.Recorder().WriteMetrics(snap, &buf); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	text := buf.String()
	if strings.Contains(text, "# UNHANDLED") {
		t.Fatalf("metrics dump contains unhandled snapshot fields:\n%s", text)
	}

	countHelp := func(metric string) int {
		return strings.Count(text, "# HELP "+metric+" ")
	}
	st := reflect.TypeOf(snap)
	for i := 0; i < st.NumField(); i++ {
		f := st.Field(i)
		switch {
		case f.Type.Kind() == reflect.Int64:
			name := obs.MetricName(f.Name)
			if got := countHelp(name); got != 1 {
				t.Errorf("field %s: metric %s appears %d times, want exactly 1", f.Name, name, got)
			}
			// The sample line must be present with the field's value.
			want := fmt.Sprintf("\n%s %d\n", name, reflect.ValueOf(snap).Field(i).Int())
			if !strings.Contains(text, want) {
				t.Errorf("field %s: sample line %q missing", f.Name, strings.TrimSpace(want))
			}
		case f.Type.Kind() == reflect.Array:
			name := obs.HistName(f.Name)
			if got := countHelp(name); got != 1 {
				t.Errorf("field %s: histogram %s appears %d times, want exactly 1", f.Name, name, got)
			}
			if !strings.Contains(text, name+"_bucket{le=\"+Inf\"}") {
				t.Errorf("field %s: histogram %s lacks +Inf bucket", f.Name, name)
			}
		case f.Name == "Calls":
			for _, m := range []string{
				"actdsm_call_count_total", "actdsm_call_errors_total",
				"actdsm_call_retries_total", "actdsm_call_bytes_total",
				"actdsm_call_latency_seconds",
			} {
				if got := countHelp(m); got != 1 {
					t.Errorf("call metric %s appears %d times, want exactly 1", m, got)
				}
			}
			if len(snap.Calls) == 0 {
				t.Error("run produced no transport calls to cover")
			}
			for _, c := range snap.Calls {
				if !strings.Contains(text, fmt.Sprintf("actdsm_call_count_total{kind=%q} %d", c.Kind, c.Count)) {
					t.Errorf("call kind %s missing from dump", c.Kind)
				}
			}
		case f.Name == "Links":
			for _, m := range []string{
				"actdsm_link_calls_total", "actdsm_link_bytes_total",
				"actdsm_link_latency_seconds_total",
			} {
				if got := countHelp(m); got != 1 {
					t.Errorf("link metric %s appears %d times, want exactly 1", m, got)
				}
			}
			if len(snap.Links) == 0 {
				t.Error("run produced no per-link traffic to cover")
			}
			for _, l := range snap.Links {
				if !strings.Contains(text, fmt.Sprintf("actdsm_link_calls_total{from=\"%d\",to=\"%d\"} %d", l.From, l.To, l.Calls)) {
					t.Errorf("link %d->%d missing from dump", l.From, l.To)
				}
			}
		default:
			t.Errorf("snapshot field %s has unrecognized shape %s: teach the dump and this test", f.Name, f.Type.Kind())
		}
	}
	// Recorder meta-counters ride along.
	if countHelp("actdsm_obs_events_total") != 1 {
		t.Error("recorder meta-counter actdsm_obs_events_total missing")
	}
}

// TestMetricsFailoverCounters pins the exposition names of the fault-
// tolerance counters (DESIGN.md §12). The reflection walk above already
// proves they are emitted; this test freezes the exact names and sample
// values a failover dashboard would scrape, so a Stats rename cannot
// silently move them.
func TestMetricsFailoverCounters(t *testing.T) {
	var snap dsm.Snapshot
	snap.Crashes = 1
	snap.Rejoins = 2
	snap.ReplicaDeltas = 3
	snap.ReplicaBytes = 4
	snap.Failovers = 5
	snap.RecoveryFetches = 6
	snap.RecoveryRounds = 7
	var buf bytes.Buffer
	if err := obs.MetricsText(snap, &buf); err != nil {
		t.Fatalf("MetricsText: %v", err)
	}
	text := buf.String()
	for _, want := range []string{
		"actdsm_crashes_total 1",
		"actdsm_rejoins_total 2",
		"actdsm_replica_deltas_total 3",
		"actdsm_replica_bytes_total 4",
		"actdsm_failovers_total 5",
		"actdsm_recovery_fetches_total 6",
		"actdsm_recovery_rounds_total 7",
	} {
		if !strings.Contains(text, "\n"+want+"\n") {
			t.Errorf("failover metric sample %q missing from dump", want)
		}
	}
}

func TestRecorderRingWrap(t *testing.T) {
	r := obs.NewRecorder(obs.Config{Enabled: true, BufferEvents: 8})
	for i := 0; i < 20; i++ {
		r.LockStall(0, 0, 1, 1) // attribution only, no ring write
		r.SliceEnd(0, 0, i, sim.ThreadInterval{Compute: sim.Time(i + 1)})
	}
	evs := r.Events()
	if len(evs) != 8 {
		t.Fatalf("ring holds %d events, want 8", len(evs))
	}
	if r.Dropped() != 12 {
		t.Fatalf("Dropped = %d, want 12", r.Dropped())
	}
	for i, e := range evs {
		if want := sim.Time(12 + i + 1); e.Compute != want {
			t.Fatalf("event %d out of order: compute %d, want %d", i, e.Compute, want)
		}
	}
}

func TestObsDisabledZeroAllocs(t *testing.T) {
	r := obs.NewRecorder(obs.Config{})
	if r.Enabled() {
		t.Fatal("zero config must be disabled")
	}
	if r.Probe() != nil {
		t.Fatal("disabled recorder must return a nil probe (cluster fast path)")
	}
	ti := sim.ThreadInterval{Compute: 1, Stall: 2, Overhead: 3}
	allocs := testing.AllocsPerRun(1000, func() {
		r.SliceEnd(0, 1, 2, ti)
		r.LockStall(0, 1, 3, 4)
		r.EpochEnd(0, 2, 10, 20, 30, 40, 50)
		r.Migrated(1, 0, 1, 5, 6)
	})
	if allocs != 0 {
		t.Errorf("disabled recorder allocates %.1f per op, want 0", allocs)
	}
}

// BenchmarkObsOverhead measures the disabled-path cost of the
// engine-side hooks: it must stay allocation-free.
func BenchmarkObsOverhead(b *testing.B) {
	r := obs.NewRecorder(obs.Config{})
	ti := sim.ThreadInterval{Compute: 100, Stall: 50, Overhead: 10}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.SliceEnd(0, 1, 2, ti)
		r.LockStall(0, 1, 3, 4)
		r.EpochEnd(0, 2, 10, 20, 30, 40, 50)
	}
}

// BenchmarkObsEnabled measures the enabled-path cost per event.
func BenchmarkObsEnabled(b *testing.B) {
	r := obs.NewRecorder(obs.Config{Enabled: true, BufferEvents: 1 << 12})
	ti := sim.ThreadInterval{Compute: 100, Stall: 50, Overhead: 10}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.SliceEnd(0, 1, 2, ti)
	}
}

// TestProbeTypesRoundTrip pins the event classification enums the
// exporters depend on.
func TestProbeTypesRoundTrip(t *testing.T) {
	for k := obs.EvRunSlice; k <= obs.EvTransportCall; k++ {
		if k.String() == "unknown" {
			t.Errorf("event kind %d has no name", k)
		}
	}
	for _, k := range []dsm.FetchKind{dsm.FetchPage, dsm.FetchDiff, dsm.FetchDiffBatch} {
		if k.String() == "unknown" {
			t.Errorf("fetch kind %d has no name", k)
		}
	}
}

// TestTransportCallWallClock sanity-checks that transport spans carry
// real wall-clock durations.
func TestTransportCallWallClock(t *testing.T) {
	sys := observedRun(t)
	var calls int
	for _, e := range sys.Recorder().Events() {
		if e.Kind == obs.EvTransportCall {
			calls++
			if e.Wall < 0 || e.Wall > time.Minute {
				t.Fatalf("implausible wall latency %v", e.Wall)
			}
		}
	}
	if calls == 0 {
		t.Error("no transport-call events recorded")
	}
}
