package obs

// Chrome trace-event / Perfetto JSON exporter. The output opens directly
// in ui.perfetto.dev (or chrome://tracing): DSM nodes render as
// processes, application threads as tracks inside them, with one span
// per scheduling slice, per-epoch protocol spans (barrier, prefetch,
// rendezvous wait) on a dedicated "protocol" track, instant markers for
// remote fetches and lock transfers, migration spans, and — on a
// separate wall-clock process — one span per transport call.
//
// Timeline reconstruction. Run-slice events carry virtual-time charges
// but no absolute start: the engine runs threads sequentially per node
// and only folds their charges into the node clock at barriers, where
// the latency-toleration model (sim.NodeIntervalTime) may overlap
// stalls with other threads' compute. The exporter therefore lays each
// node-epoch out from its EvNodeEpoch summary: slices are placed
// back-to-back in scheduling order and scaled by folded/Σraw so they
// tile the folded window exactly; the barrier, prefetch and wait spans
// follow. Per-epoch span totals thus sum to the node's wall (virtual)
// time by construction; the raw unscaled charges are preserved in each
// span's args.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"actdsm/internal/dsm"
	"actdsm/internal/msg"
	"actdsm/internal/sim"
)

// traceEvent is one entry of the trace-event JSON array.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	TS   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	S    string         `json:"s,omitempty"`   // instant scope
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Track ids inside a node process. Thread tracks use the application
// thread id + trackThreadBase so the protocol track sorts first.
const (
	trackProtocol   = 0
	trackThreadBase = 1
)

func usec(t sim.Time) float64 { return float64(t) / 1e3 }

// WriteTrace renders the recorder's events as Chrome trace-event JSON.
func (r *Recorder) WriteTrace(w io.Writer) error {
	if !r.Enabled() {
		return fmt.Errorf("obs: recorder disabled, no trace to export")
	}
	return TraceJSON(r.Events(), w)
}

// epochAccum buffers one node's events between two EvNodeEpoch records.
type epochAccum struct {
	slices []Event
	// marks are instant events (remote fetches, lock transfers) queued
	// per thread (key = TID; -1 collects node-scope marks), drained into
	// the owning slice's span when the epoch is laid out.
	marks map[int32][]Event
}

func newEpochAccum() *epochAccum {
	return &epochAccum{marks: make(map[int32][]Event)}
}

// TraceJSON renders events (as returned by Recorder.Events) as Chrome
// trace-event JSON. Node n becomes process pid n; its protocol activity
// (barrier, prefetch, wait, GC-side fetches) renders on track 0 and each
// application thread t on track t+1. Transport calls render on one extra
// process with wall-clock timestamps, one track per calling node.
func TraceJSON(events []Event, w io.Writer) error {
	var out []traceEvent

	// Pass 1: extent of the node / thread id spaces, for metadata.
	nnodes, nthreads := 0, 0
	hasTransport := false
	for _, e := range events {
		if int(e.Node) >= nnodes {
			nnodes = int(e.Node) + 1
		}
		if (e.Kind == EvMigrate || e.Kind == EvTransportCall) && int(e.Arg) >= nnodes {
			nnodes = int(e.Arg) + 1
		}
		if e.Kind == EvRunSlice || e.Kind == EvMigrate {
			if int(e.TID) >= nthreads {
				nthreads = int(e.TID) + 1
			}
		}
		if e.Kind == EvTransportCall {
			hasTransport = true
		}
	}
	transportPID := int64(nnodes)

	// Metadata: stable process / thread naming.
	for n := 0; n < nnodes; n++ {
		out = append(out,
			traceEvent{Name: "process_name", Ph: "M", PID: int64(n), Args: map[string]any{"name": fmt.Sprintf("node %d", n)}},
			traceEvent{Name: "process_sort_index", Ph: "M", PID: int64(n), Args: map[string]any{"sort_index": n}},
			traceEvent{Name: "thread_name", Ph: "M", PID: int64(n), TID: trackProtocol, Args: map[string]any{"name": "protocol"}},
		)
	}
	if hasTransport {
		out = append(out,
			traceEvent{Name: "process_name", Ph: "M", PID: transportPID, Args: map[string]any{"name": "transport (wall clock)"}},
			traceEvent{Name: "process_sort_index", Ph: "M", PID: transportPID, Args: map[string]any{"sort_index": nnodes}},
		)
		for n := 0; n < nnodes; n++ {
			out = append(out, traceEvent{Name: "thread_name", Ph: "M", PID: transportPID, TID: int64(n),
				Args: map[string]any{"name": fmt.Sprintf("from node %d", n)}})
		}
	}
	// Thread tracks are named on the node that first runs them; after a
	// migration the destination names its track too. Collect lazily.
	named := make(map[[2]int64]bool)
	nameThread := func(pid int64, tid int32) {
		key := [2]int64{pid, int64(tid)}
		if tid < 0 || named[key] {
			return
		}
		named[key] = true
		out = append(out, traceEvent{Name: "thread_name", Ph: "M", PID: pid, TID: int64(tid) + trackThreadBase,
			Args: map[string]any{"name": fmt.Sprintf("thread %d", tid)}})
	}

	// Pass 2: lay out node-epoch windows.
	acc := make([]*epochAccum, nnodes)
	for i := range acc {
		acc[i] = newEpochAccum()
	}
	var prefetchPages = make(map[int64]int64) // node → pages, from EvPrefetchRound

	emitMark := func(m Event, ts float64) {
		pid := int64(m.Node)
		track := int64(trackProtocol)
		if m.TID >= 0 {
			track = int64(m.TID) + trackThreadBase
		}
		switch m.Kind {
		case EvRemoteFetch:
			out = append(out, traceEvent{
				Name: "fetch " + dsm.FetchKind(m.Detail).String(),
				Ph:   "i", S: "t", PID: pid, TID: track, TS: ts, Cat: "fetch",
				Args: map[string]any{"page": m.Arg, "wire_ns": int64(m.Dur), "tid": m.TID},
			})
		case EvLockAcquire, EvLockRelease:
			name := "lock acquire"
			if m.Kind == EvLockRelease {
				name = "lock release"
			}
			out = append(out, traceEvent{
				Name: name, Ph: "i", S: "t", PID: pid, TID: track, TS: ts, Cat: "lock",
				Args: map[string]any{"lock": m.Arg},
			})
		}
	}

	layoutEpoch := func(ep Event) {
		node := int(ep.Node)
		a := acc[node]
		acc[node] = newEpochAccum()
		var raw sim.Time
		for _, s := range a.slices {
			raw += s.Dur
		}
		scale := 1.0
		if raw > 0 && ep.Dur > 0 {
			scale = float64(ep.Dur) / float64(raw)
		}
		cursor := float64(ep.Time) // ns
		for _, s := range a.slices {
			span := float64(s.Dur) * scale
			nameThread(int64(node), s.TID)
			out = append(out, traceEvent{
				Name: "run", Ph: "X", PID: int64(node), TID: int64(s.TID) + trackThreadBase,
				TS: cursor / 1e3, Dur: span / 1e3, Cat: "slice",
				Args: map[string]any{
					"epoch":         s.Epoch,
					"compute_ns":    int64(s.Compute),
					"stall_ns":      int64(s.Stall),
					"overhead_ns":   int64(s.Overhead),
					"page_stall_ns": int64(s.PageStall),
					"diff_stall_ns": int64(s.DiffStall),
					"lock_stall_ns": int64(s.LockStall),
					"scale":         scale,
				},
			})
			// Marks queued on this thread land inside the span, evenly
			// spaced (their intra-slice times are not modelled).
			if ms := a.marks[s.TID]; len(ms) > 0 {
				step := span / float64(len(ms)+1)
				for i, m := range ms {
					emitMark(m, (cursor+step*float64(i+1))/1e3)
				}
				delete(a.marks, s.TID)
			}
			cursor += span
		}
		endFold := float64(ep.Time + ep.Dur)
		// Leftover marks (server-side fetches, lock traffic with no
		// following slice this epoch) pin to the fold boundary.
		var rest []int32
		for tid := range a.marks {
			rest = append(rest, tid)
		}
		sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
		for _, tid := range rest {
			for _, m := range a.marks[tid] {
				emitMark(m, endFold/1e3)
			}
		}
		// Protocol spans: barrier, prefetch, rendezvous wait.
		ts := endFold
		if ep.Barrier > 0 {
			out = append(out, traceEvent{
				Name: "barrier", Ph: "X", PID: int64(node), TID: trackProtocol,
				TS: ts / 1e3, Dur: usec(ep.Barrier), Cat: "protocol",
				Args: map[string]any{"epoch": ep.Epoch},
			})
			ts += float64(ep.Barrier)
		}
		if ep.Prefetch > 0 {
			out = append(out, traceEvent{
				Name: "prefetch", Ph: "X", PID: int64(node), TID: trackProtocol,
				TS: ts / 1e3, Dur: usec(ep.Prefetch), Cat: "protocol",
				Args: map[string]any{"epoch": ep.Epoch, "pages": prefetchPages[int64(node)]},
			})
			ts += float64(ep.Prefetch)
		}
		delete(prefetchPages, int64(node))
		if ep.Wait > 0 {
			out = append(out, traceEvent{
				Name: "wait", Ph: "X", PID: int64(node), TID: trackProtocol,
				TS: ts / 1e3, Dur: usec(ep.Wait), Cat: "protocol",
				Args: map[string]any{"epoch": ep.Epoch},
			})
		}
	}

	for _, e := range events {
		switch e.Kind {
		case EvRunSlice:
			acc[e.Node].slices = append(acc[e.Node].slices, e)
		case EvNodeEpoch:
			layoutEpoch(e)
		case EvRemoteFetch, EvLockAcquire, EvLockRelease:
			a := acc[e.Node]
			key := e.TID
			if key < 0 {
				key = -1
			}
			a.marks[key] = append(a.marks[key], e)
		case EvPrefetchRound:
			prefetchPages[int64(e.Node)] = e.Bytes
		case EvMigrate:
			nameThread(int64(e.Node), e.TID)
			nameThread(int64(e.Arg), e.TID)
			out = append(out, traceEvent{
				Name: "migrate", Ph: "X", PID: int64(e.Node), TID: int64(e.TID) + trackThreadBase,
				TS: usec(e.Time), Dur: usec(e.Dur), Cat: "migrate",
				Args: map[string]any{"tid": e.TID, "from": e.Node, "to": e.Arg},
			})
			out = append(out, traceEvent{
				Name: "migrate in", Ph: "i", S: "t", PID: int64(e.Arg), TID: int64(e.TID) + trackThreadBase,
				TS: usec(e.Time + e.Dur), Cat: "migrate",
				Args: map[string]any{"tid": e.TID, "from": e.Node},
			})
		case EvTransportCall:
			start := e.WallTS - e.Wall
			if start < 0 {
				start = 0
			}
			out = append(out, traceEvent{
				Name: msg.Kind(e.Detail).String(), Ph: "X", PID: transportPID, TID: int64(e.Node),
				TS: float64(start.Nanoseconds()) / 1e3, Dur: float64(e.Wall.Nanoseconds()) / 1e3,
				Cat: "transport",
				Args: map[string]any{
					"to": e.Arg, "bytes": e.Bytes, "failed": e.Failed, "epoch": e.Epoch,
				},
			})
		}
	}
	// Any slices/marks still buffered belong to an epoch that never closed
	// (run ended mid-epoch without a residual fold); drop them — the
	// engine emits a final EpochEnd on clean completion.

	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: out, DisplayTimeUnit: "ns"})
}
