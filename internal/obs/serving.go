package obs

// Prometheus text-exposition dump for serve.Report, the serving
// counterpart of MetricsText. Like the dsm.Snapshot dump it is
// reflection-driven: every field added to Report automatically renders
// under a stable name, and the coverage test
// (TestServeMetricsCoverReport) walks the same struct so a field the
// dump would miss fails CI.
//
// Naming. Config-echo ints and float64 gauges render as
// `actdsm_serve_<snake>`; int64 counters as
// `actdsm_serve_<snake>_total`; sim.Time durations as
// `actdsm_serve_<snake>_seconds` gauges; the latency bucket array as a
// cumulative histogram `actdsm_serve_latency_seconds_bucket{le=...}`;
// the per-kind call table as `actdsm_serve_calls_total{kind=...}`; and
// the workload name as an info gauge
// `actdsm_serve_info{workload="..."} 1`.

import (
	"fmt"
	"io"
	"reflect"

	"actdsm/internal/serve"
	"actdsm/internal/sim"
)

// ServeMetricName returns the exposition name for a counter-shaped
// Report field.
func ServeMetricName(field string) string {
	return "actdsm_serve_" + snakeCase(field) + "_total"
}

// ServeGaugeName returns the exposition name for a gauge-shaped Report
// field (config echoes and derived rates).
func ServeGaugeName(field string) string {
	return "actdsm_serve_" + snakeCase(field)
}

// ServeTimeName returns the exposition name for a sim.Time Report
// field, rendered in seconds.
func ServeTimeName(field string) string {
	return "actdsm_serve_" + snakeCase(field) + "_seconds"
}

var simTimeType = reflect.TypeOf(sim.Time(0))

// ServeMetricsText renders a serving report in Prometheus text
// exposition format. Output order is Report field order, so diffs stay
// reviewable.
func ServeMetricsText(r serve.Report, w io.Writer) error {
	v := reflect.ValueOf(r)
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		fv := v.Field(i)
		switch {
		case f.Name == "Workload":
			if _, err := fmt.Fprintf(w,
				"# HELP actdsm_serve_info serving workload identity\n"+
					"# TYPE actdsm_serve_info gauge\nactdsm_serve_info{workload=%q} 1\n",
				r.Workload); err != nil {
				return err
			}
		case f.Name == "Calls":
			if err := writeServeCalls(w, r.Calls); err != nil {
				return err
			}
		case fv.Type() == simTimeType:
			name := ServeTimeName(f.Name)
			if _, err := fmt.Fprintf(w,
				"# HELP %s serve.Report.%s (virtual time)\n# TYPE %s gauge\n%s %g\n",
				name, f.Name, name, name, sim.Time(fv.Int()).Seconds()); err != nil {
				return err
			}
		case fv.Kind() == reflect.Int64:
			name := ServeMetricName(f.Name)
			if _, err := fmt.Fprintf(w,
				"# HELP %s serve.Report.%s\n# TYPE %s counter\n%s %d\n",
				name, f.Name, name, name, fv.Int()); err != nil {
				return err
			}
		case fv.Kind() == reflect.Int || fv.Kind() == reflect.Float64:
			name := ServeGaugeName(f.Name)
			if _, err := fmt.Fprintf(w,
				"# HELP %s serve.Report.%s\n# TYPE %s gauge\n%s %g\n",
				name, f.Name, name, name, fieldFloat(fv)); err != nil {
				return err
			}
		case fv.Kind() == reflect.Array && fv.Type().Elem().Kind() == reflect.Int64:
			if err := writeServeLatencyHist(w, fv); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "# UNHANDLED serve.Report.%s (%s)\n", f.Name, fv.Kind()); err != nil {
				return err
			}
		}
	}
	return nil
}

func fieldFloat(fv reflect.Value) float64 {
	if fv.Kind() == reflect.Float64 {
		return fv.Float()
	}
	return float64(fv.Int())
}

// writeServeLatencyHist renders the per-request latency bucket array as
// a cumulative histogram with upper bounds in virtual seconds.
func writeServeLatencyHist(w io.Writer, fv reflect.Value) error {
	const name = "actdsm_serve_latency_seconds"
	if _, err := fmt.Fprintf(w,
		"# HELP %s per-request virtual latency\n# TYPE %s histogram\n", name, name); err != nil {
		return err
	}
	var cum int64
	n := fv.Len()
	for b := 0; b < n; b++ {
		cum += fv.Index(b).Int()
		le := "+Inf"
		if b < n-1 {
			le = fmt.Sprintf("%g", serve.BucketBound(b+1).Seconds())
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, cum)
	return err
}

// writeServeCalls renders the per-kind transport call counts over the
// measurement span.
func writeServeCalls(w io.Writer, calls []serve.KindCalls) error {
	const name = "actdsm_serve_calls_total"
	if _, err := fmt.Fprintf(w,
		"# HELP %s transport calls over the measurement span by message kind\n"+
			"# TYPE %s counter\n", name, name); err != nil {
		return err
	}
	for _, c := range calls {
		if _, err := fmt.Fprintf(w, "%s{kind=%q} %d\n", name, c.Kind, c.Count); err != nil {
			return err
		}
	}
	return nil
}
