// Package obs is the observability layer: a low-overhead structured event
// recorder that reconstructs per-node, per-thread epoch timelines from the
// engine's virtual-time accounting and the DSM's protocol probe, plus
// exporters — a Chrome trace-event / Perfetto JSON trace (perfetto.go), a
// Prometheus-style text metrics dump (metrics.go), and a per-epoch
// critical-path breakdown (breakdown.go).
//
// The paper's whole argument is a time-breakdown one: correlation-driven
// placement pays off because migration converts remote-fault stall into
// local compute. The aggregate dsm.Stats counters can say *how many*
// faults happened; this layer says *where inside an epoch* the time went —
// compute vs. page-fault stall vs. diff-fetch stall vs. lock stall vs.
// barrier protocol vs. rendezvous wait vs. migration — per node and per
// thread, for every barrier episode.
//
// Event flow. Three producers feed one Recorder:
//
//   - the thread engine (threads.Engine.SetObserver) emits a run-slice
//     event per thread per scheduling slice with the slice's virtual-time
//     charges, a node-epoch summary at every barrier, and migration events;
//   - the DSM cluster (dsm.Probe, built by Recorder.Probe) emits instant
//     events for remote fetches (classified full-page / diff / batched
//     diff), prefetch rounds, and lock transfers, which the recorder also
//     folds into the enclosing slice's stall attribution;
//   - the transport (via the probe's TransportCall hook, fed by
//     transport.WithCallObserver) emits one wall-clock latency span per
//     completed logical call.
//
// Overhead. Recording is off unless explicitly enabled
// (actdsm.WithObservability). Every hook checks a nil probe / nil observer
// first, so disabled runs take a single predictable branch and allocate
// nothing on the probe path (see BenchmarkObsOverhead). Enabled runs write
// fixed-size Event structs into a preallocated ring buffer; when the ring
// wraps, the oldest events are dropped and Dropped() reports how many.
package obs

import (
	"sync"
	"time"

	"actdsm/internal/dsm"
	"actdsm/internal/msg"
	"actdsm/internal/sim"
	"actdsm/internal/vm"
)

// Kind discriminates event records.
type Kind uint8

// Event kinds.
const (
	// EvRunSlice is one thread's scheduling slice: the virtual-time
	// charges it accumulated between two engine scheduling points, with
	// the stall decomposed into page-fetch / diff-fetch / lock shares.
	EvRunSlice Kind = iota + 1
	// EvNodeEpoch summarizes one node's barrier episode: interval time
	// (folded per-thread charges), barrier protocol cost, prefetch round
	// cost, and rendezvous wait. Emitted once per node per episode.
	EvNodeEpoch
	// EvMigrate is one thread migration (Node = source, Arg = target).
	EvMigrate
	// EvRemoteFetch is an instant event for one remote data fetch on the
	// demand-fault path (Detail holds the dsm.FetchKind, Arg the page).
	EvRemoteFetch
	// EvPrefetchRound is one node's barrier-release prefetch round
	// (Bytes = pages brought current, Dur = virtual cost).
	EvPrefetchRound
	// EvLockAcquire and EvLockRelease are instant lock-transfer events
	// (Arg = lock id).
	EvLockAcquire
	EvLockRelease
	// EvTransportCall is one completed logical transport call (including
	// its retries): Node = caller, Arg = callee, Detail = msg.Kind,
	// Bytes = request+reply wire bytes, Wall = wall-clock latency,
	// WallTS = wall-clock end time relative to the recorder's start.
	EvTransportCall
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case EvRunSlice:
		return "run-slice"
	case EvNodeEpoch:
		return "node-epoch"
	case EvMigrate:
		return "migrate"
	case EvRemoteFetch:
		return "remote-fetch"
	case EvPrefetchRound:
		return "prefetch-round"
	case EvLockAcquire:
		return "lock-acquire"
	case EvLockRelease:
		return "lock-release"
	case EvTransportCall:
		return "transport-call"
	default:
		return "unknown"
	}
}

// Event is one fixed-size record in the ring buffer. Which fields are
// meaningful depends on Kind; unused fields are zero.
type Event struct {
	Kind   Kind
	Detail uint8 // dsm.FetchKind (EvRemoteFetch) or msg.Kind (EvTransportCall)
	Failed bool  // EvTransportCall: the call ultimately failed

	Node  int32 // owning node (EvTransportCall: caller)
	TID   int32 // owning thread, -1 for node-scope events
	Epoch int32 // barrier episode the event belongs to
	Arg   int32 // page / lock / target node / callee, by Kind

	// Time is a virtual-time anchor: EvNodeEpoch's epoch start and
	// EvMigrate's migration instant. Run slices carry no absolute start —
	// the exporters lay them out inside their epoch window.
	Time sim.Time
	// Dur is the event's virtual duration (EvRunSlice: total charges;
	// EvNodeEpoch: folded interval time; EvMigrate / EvPrefetchRound /
	// EvRemoteFetch: the operation's virtual cost).
	Dur sim.Time

	// EvRunSlice decomposition: Dur = Compute + Stall + Overhead, and
	// PageStall + DiffStall + LockStall <= Stall (the attributed shares;
	// the remainder is unclassified remote stall).
	Compute   sim.Time
	Stall     sim.Time
	Overhead  sim.Time
	PageStall sim.Time
	DiffStall sim.Time
	LockStall sim.Time

	// EvNodeEpoch components beyond the folded interval time in Dur.
	Barrier  sim.Time // barrier protocol cost (incl. GC consolidation)
	Prefetch sim.Time // barrier-release prefetch round cost
	Wait     sim.Time // rendezvous wait to the slowest node

	Bytes int64         // EvTransportCall / EvPrefetchRound payload size
	Wall  time.Duration // EvTransportCall wall-clock latency
	// WallTS is the wall-clock end time of the event relative to the
	// recorder's creation (EvTransportCall only).
	WallTS time.Duration
}

// Config configures a Recorder.
type Config struct {
	// Enabled turns recording on. The zero value (disabled) makes every
	// hook a nil check and nothing more.
	Enabled bool
	// BufferEvents is the ring-buffer capacity in events; when the ring
	// wraps the oldest events are dropped. 0 selects DefaultBufferEvents.
	BufferEvents int
}

// DefaultBufferEvents is the default ring capacity (~64k events, a few MB).
const DefaultBufferEvents = 1 << 16

// stallAttr accumulates one thread's classified remote-stall charges
// between two run-slice emits; SliceEnd drains it into the slice event.
type stallAttr struct {
	page, diff, lock sim.Time
}

// Recorder is the structured event recorder. It is safe for concurrent
// use: the engine emits from the scheduler loop, but probe events can
// arrive from transport server goroutines and parallel fan-outs.
//
// A Recorder implements threads.Observer (engine-side spans) and builds a
// dsm.Probe (protocol-side events) via Probe.
type Recorder struct {
	cfg Config

	mu      sync.Mutex
	buf     []Event
	total   int64 // events ever recorded; ring position is total % cap
	epoch   int32 // current barrier episode (advanced by EpochEnd)
	attr    map[int32]*stallAttr
	wall0   time.Time
	started bool
}

// NewRecorder builds a recorder. A disabled recorder (cfg.Enabled false)
// accepts every hook call and records nothing, allocation-free.
func NewRecorder(cfg Config) *Recorder {
	r := &Recorder{cfg: cfg}
	if cfg.Enabled {
		if cfg.BufferEvents <= 0 {
			cfg.BufferEvents = DefaultBufferEvents
			r.cfg.BufferEvents = DefaultBufferEvents
		}
		r.buf = make([]Event, 0, cfg.BufferEvents)
		r.attr = make(map[int32]*stallAttr)
		r.wall0 = time.Now()
		r.started = true
	}
	return r
}

// Enabled reports whether the recorder is recording.
func (r *Recorder) Enabled() bool { return r != nil && r.cfg.Enabled }

// record appends an event to the ring. Caller must NOT hold r.mu.
func (r *Recorder) record(e Event) {
	r.mu.Lock()
	if int(r.total) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[int(r.total)%cap(r.buf)] = e
	}
	r.total++
	r.mu.Unlock()
}

// Events returns a copy of the recorded events in record order (oldest
// surviving event first).
func (r *Recorder) Events() []Event {
	if !r.Enabled() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.buf)
	out := make([]Event, n)
	if int(r.total) <= cap(r.buf) {
		copy(out, r.buf)
		return out
	}
	// The ring wrapped: oldest surviving event sits at total % cap.
	start := int(r.total) % cap(r.buf)
	copy(out, r.buf[start:])
	copy(out[n-start:], r.buf[:start])
	return out
}

// Dropped returns the number of events lost to ring wrap-around.
func (r *Recorder) Dropped() int64 {
	if !r.Enabled() {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if d := r.total - int64(cap(r.buf)); d > 0 {
		return d
	}
	return 0
}

// ---- threads.Observer implementation (engine-side spans) ----

// SliceEnd records one thread scheduling slice with the classified stall
// attribution accumulated by the probe since the thread's previous slice.
func (r *Recorder) SliceEnd(node, tid, epoch int, ti sim.ThreadInterval) {
	if !r.Enabled() {
		return
	}
	e := Event{
		Kind:     EvRunSlice,
		Node:     int32(node),
		TID:      int32(tid),
		Epoch:    int32(epoch),
		Dur:      ti.Compute + ti.Stall + ti.Overhead,
		Compute:  ti.Compute,
		Stall:    ti.Stall,
		Overhead: ti.Overhead,
	}
	r.mu.Lock()
	if a := r.attr[int32(tid)]; a != nil {
		e.PageStall, e.DiffStall, e.LockStall = a.page, a.diff, a.lock
		*a = stallAttr{}
	}
	// Attribution can exceed the engine's recorded stall only through a
	// bookkeeping bug; clamp defensively so exporters never see a negative
	// unclassified remainder.
	if sum := e.PageStall + e.DiffStall + e.LockStall; sum > e.Stall && sum > 0 {
		scale := float64(e.Stall) / float64(sum)
		e.PageStall = sim.Time(float64(e.PageStall) * scale)
		e.DiffStall = sim.Time(float64(e.DiffStall) * scale)
		e.LockStall = sim.Time(float64(e.LockStall) * scale)
	}
	r.mu.Unlock()
	r.record(e)
}

// LockStall attributes a lock-acquire stall to a thread's current slice.
func (r *Recorder) LockStall(node, tid int, lock int32, stall sim.Time) {
	if !r.Enabled() {
		return
	}
	r.mu.Lock()
	a := r.attr[int32(tid)]
	if a == nil {
		a = &stallAttr{}
		r.attr[int32(tid)] = a
	}
	a.lock += stall
	r.mu.Unlock()
}

// EpochEnd records one node's barrier-episode summary and advances the
// recorder's current-epoch stamp once the last node reports.
func (r *Recorder) EpochEnd(node, epoch int, start, folded, barrier, prefetch, wait sim.Time) {
	if !r.Enabled() {
		return
	}
	r.record(Event{
		Kind:     EvNodeEpoch,
		Node:     int32(node),
		TID:      -1,
		Epoch:    int32(epoch),
		Time:     start,
		Dur:      folded,
		Barrier:  barrier,
		Prefetch: prefetch,
		Wait:     wait,
	})
	r.mu.Lock()
	if int32(epoch) >= r.epoch {
		r.epoch = int32(epoch) + 1
	}
	r.mu.Unlock()
}

// Migrated records one thread migration.
func (r *Recorder) Migrated(tid, from, to int, at, cost sim.Time) {
	if !r.Enabled() {
		return
	}
	r.mu.Lock()
	epoch := r.epoch
	r.mu.Unlock()
	r.record(Event{
		Kind:  EvMigrate,
		Node:  int32(from),
		TID:   int32(tid),
		Epoch: epoch,
		Arg:   int32(to),
		Time:  at,
		Dur:   cost,
	})
}

// ---- dsm.Probe construction (protocol-side events) ----

// Probe returns a dsm.Probe that streams protocol events into the
// recorder: remote fetches (with stall attribution), prefetch rounds,
// lock transfers, and transport call latencies. A disabled recorder
// returns nil, which keeps the cluster on its nil-probe fast path.
func (r *Recorder) Probe() *dsm.Probe {
	if !r.Enabled() {
		return nil
	}
	return &dsm.Probe{
		RemoteFetch:   r.remoteFetch,
		PrefetchDone:  r.prefetchDone,
		TransportCall: r.transportCall,
		LockAcquired: func(node int, lock int32) {
			r.instant(EvLockAcquire, node, lock)
		},
		LockReleased: func(node int, lock int32) {
			r.instant(EvLockRelease, node, lock)
		},
	}
}

func (r *Recorder) instant(k Kind, node int, arg int32) {
	r.mu.Lock()
	epoch := r.epoch
	r.mu.Unlock()
	r.record(Event{Kind: k, Node: int32(node), TID: -1, Epoch: epoch, Arg: arg})
}

// remoteFetch records a demand-path fetch and accumulates its wire stall
// into the faulting thread's attribution (server-side fetches carry
// tid < 0 and are not attributed to any thread slice).
func (r *Recorder) remoteFetch(node, tid int, k dsm.FetchKind, p vm.PageID, wire sim.Time) {
	r.mu.Lock()
	epoch := r.epoch
	if tid >= 0 {
		a := r.attr[int32(tid)]
		if a == nil {
			a = &stallAttr{}
			r.attr[int32(tid)] = a
		}
		if k == dsm.FetchPage {
			a.page += wire
		} else {
			a.diff += wire
		}
	}
	r.mu.Unlock()
	r.record(Event{
		Kind:   EvRemoteFetch,
		Detail: uint8(k),
		Node:   int32(node),
		TID:    int32(tid),
		Epoch:  epoch,
		Arg:    int32(p),
		Dur:    wire,
	})
}

func (r *Recorder) prefetchDone(node, pages int, cost sim.Time) {
	r.mu.Lock()
	epoch := r.epoch
	r.mu.Unlock()
	r.record(Event{
		Kind:  EvPrefetchRound,
		Node:  int32(node),
		TID:   -1,
		Epoch: epoch,
		Dur:   cost,
		Bytes: int64(pages),
	})
}

func (r *Recorder) transportCall(from, to int, kind msg.Kind, bytes int, wall time.Duration, failed bool) {
	r.mu.Lock()
	epoch := r.epoch
	r.mu.Unlock()
	r.record(Event{
		Kind:   EvTransportCall,
		Detail: uint8(kind),
		Failed: failed,
		Node:   int32(from),
		TID:    -1,
		Epoch:  epoch,
		Arg:    int32(to),
		Bytes:  int64(bytes),
		Wall:   wall,
		WallTS: time.Since(r.wall0),
	})
}
