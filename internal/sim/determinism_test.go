package sim

// TestNoAmbientNondeterminism pins the repo's determinism rule: every
// randomized decision must flow from this package's seeded RNG, and no
// simulation or protocol code may consult the wall clock. Identical
// (seed, config) inputs must produce identical runs — the property the
// coherence checker's replayable trials (internal/check) and the paper
// experiments both depend on.
//
// Concretely:
//
//   - math/rand and math/rand/v2 are banned everywhere, tests included:
//     their global state leaks across tests and their streams are not
//     splittable the way NewRNG/Split is.
//   - Wall-clock reads (time.Now, time.Since, timers, sleeps) are banned
//     outside a short allowlist of measurement-only call sites: the
//     transport's latency stats, retry backoff, and chaos delays; the
//     cluster's latency accounting; and elapsed-time reporting in the
//     benchmark and checker drivers. None of those feed back into
//     protocol decisions. Test files are exempt (timing a test is
//     harmless).
//
// Moving a wall-clock read into new code means either deriving it from
// the simulation instead, or consciously extending the allowlist here
// with a comment defending why the value never influences protocol
// behaviour.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// wallClockAllowed lists the files (slash-separated, repo-relative)
// permitted to read the wall clock. Measurement only — never decisions.
var wallClockAllowed = map[string]bool{
	"cmd/actbench/main.go":            true, // section elapsed-time banner
	"internal/check/explore.go":       true, // TrialResult.Elapsed / SweepResult.Elapsed
	"internal/dsm/cluster.go":         true, // per-message latency quantiles
	"internal/dsm/hotbench.go":        true, // wall-clock benchmark harness: elapsed timing + injected service hold; only ever run by benchmarks, never by protocol runs (Cluster.serviceHold is zero outside the harness)
	"internal/experiments/hotpath.go": true, // BENCH_hotpath.json generator: encode-loop timing; measurement only
	"internal/obs/obs.go":             true, // recorder start anchor + transport-span end stamps; export-only, never protocol input
	"internal/transport/bench.go":     true, // wall-clock benchmark harness: elapsed timing + injected service hold; only ever run by benchmarks and the actbench transport section, never by protocol runs
	"internal/transport/chaos.go":     true, // injected FaultDelay sleeps
	"internal/transport/mux.go":       true, // pooled CallTimeout timers; a timeout only poisons the conn for redial, never steers the protocol
	"internal/transport/observer.go":  true, // per-call wall latency fed to the observability probe
	"internal/transport/options.go":   true, // backoff sleep between retries
	"internal/transport/transport.go": true, // call latency measurement
}

// wallClockFuncs are the time-package functions that observe or depend on
// real time. time.Duration arithmetic and constants stay legal.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

func TestNoAmbientNondeterminism(t *testing.T) {
	root := repoRoot(t)
	fset := token.NewFileSet()
	var violations []string

	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel := filepath.ToSlash(mustRel(t, root, path))
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}

		importsTime := false
		for _, imp := range f.Imports {
			switch strings.Trim(imp.Path.Value, `"`) {
			case "math/rand", "math/rand/v2":
				violations = append(violations,
					rel+": imports "+imp.Path.Value+" (use internal/sim.NewRNG)")
			case "time":
				importsTime = true
			}
		}

		isTest := strings.HasSuffix(path, "_test.go")
		if !importsTime || isTest || wallClockAllowed[rel] {
			return nil
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != "time" || !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			violations = append(violations, rel+": calls time."+sel.Sel.Name+
				" outside the wall-clock allowlist")
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range violations {
		t.Error(v)
	}
	if t.Failed() {
		t.Log("determinism rule: seed all randomness through internal/sim; " +
			"wall-clock reads need an allowlist entry in determinism_test.go")
	}
}

// TestAllowlistIsCurrent keeps wallClockAllowed honest: every entry must
// still exist and still read the clock, so stale entries cannot mask a
// future violation elsewhere in the same file path.
func TestAllowlistIsCurrent(t *testing.T) {
	root := repoRoot(t)
	for rel := range wallClockAllowed {
		path := filepath.Join(root, filepath.FromSlash(rel))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("allowlist entry %s: %v (remove it?)", rel, err)
			continue
		}
		found := false
		for fn := range wallClockFuncs {
			if strings.Contains(string(data), "time."+fn+"(") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("allowlist entry %s no longer reads the wall clock; remove it", rel)
		}
	}
}

// repoRoot walks up from the package directory to the go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above package directory")
		}
		dir = parent
	}
}

func mustRel(t *testing.T, base, path string) string {
	t.Helper()
	rel, err := filepath.Rel(base, path)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}
