package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("step %d: %d != %d", i, av, bv)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
	if v := r.Intn(0); v != 0 {
		t.Fatalf("Intn(0) = %d, want 0", v)
	}
	if v := r.Intn(1); v != 0 {
		t.Fatalf("Intn(1) = %d, want 0", v)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; mean < 0.47 || mean > 0.53 {
		t.Fatalf("mean %v far from 0.5", mean)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		p := NewRNG(seed).Perm(int(n))
		if len(p) != int(n) {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGSplitIndependent(t *testing.T) {
	r := NewRNG(5)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical first values")
	}
}

func TestTimeConversions(t *testing.T) {
	if s := (2 * Second).Seconds(); s != 2.0 {
		t.Fatalf("Seconds = %v", s)
	}
	if us := (3 * Microsecond).Micros(); us != 3.0 {
		t.Fatalf("Micros = %v", us)
	}
}

func TestFetchCost(t *testing.T) {
	c := Costs{MsgLatency: 10, MsgPerByte: 2}
	if got := c.FetchCost(5, 10); got != 2*10+15*2 {
		t.Fatalf("FetchCost = %d", got)
	}
}

func TestTopologyUniformMatchesCosts(t *testing.T) {
	c := Costs{MsgLatency: 10, MsgPerByte: 2}
	topo := NewTopology(4, c)
	for from := 0; from < 4; from++ {
		for to := 0; to < 4; to++ {
			if got, want := topo.FetchCost(from, to, 5, 10), c.FetchCost(5, 10); got != want {
				t.Fatalf("FetchCost(%d,%d) = %d, want %d", from, to, got, want)
			}
		}
	}
	if s := topo.ComputeScale(2); s != 1 {
		t.Fatalf("ComputeScale = %v, want 1", s)
	}
	if s := topo.ComputeScale(99); s != 1 {
		t.Fatalf("out-of-range ComputeScale = %v, want 1", s)
	}
}

func TestFastSlowTopology(t *testing.T) {
	c := Costs{MsgLatency: 10, MsgPerByte: 2}
	// Every 2nd node slow: nodes 1 and 3 of 4.
	topo := FastSlowTopology(4, c, 2, 3, 5)
	if s := topo.ComputeScale(0); s != 1 {
		t.Fatalf("fast node compute scale = %v, want 1", s)
	}
	if s := topo.ComputeScale(1); s != 3 {
		t.Fatalf("slow node compute scale = %v, want 3", s)
	}
	// Fast-fast link keeps base cost; any link touching a slow node is
	// scaled by 5 in both directions.
	if lc := topo.Link(0, 2); lc.Latency != 10 || lc.PerByte != 2 {
		t.Fatalf("fast-fast link = %+v", lc)
	}
	for _, pair := range [][2]int{{0, 1}, {1, 0}, {3, 2}, {1, 3}} {
		if lc := topo.Link(pair[0], pair[1]); lc.Latency != 50 || lc.PerByte != 10 {
			t.Fatalf("slow link %v = %+v, want {50 10}", pair, lc)
		}
	}
}

func TestRackTopologyAsymmetry(t *testing.T) {
	c := Costs{MsgLatency: 10, MsgPerByte: 2}
	// Two racks of 2; cross-rack ×2, uplink (high rack → low rack) ×3 more.
	topo := RackTopology(4, c, 2, 2, 3)
	if lc := topo.Link(0, 1); lc.Latency != 10 {
		t.Fatalf("intra-rack link = %+v", lc)
	}
	down := topo.Link(0, 2) // rack 0 → rack 1
	up := topo.Link(2, 0)   // rack 1 → rack 0 (the constrained uplink)
	if down.Latency != 20 || down.PerByte != 4 {
		t.Fatalf("cross-rack down link = %+v, want {20 4}", down)
	}
	if up.Latency != 60 || up.PerByte != 12 {
		t.Fatalf("cross-rack up link = %+v, want {60 12}", up)
	}
	// FetchCost mixes the two directions: request 0→2 at down cost,
	// reply 2→0 at up cost.
	want := down.Latency + up.Latency + 5*down.PerByte + 10*up.PerByte
	if got := topo.FetchCost(0, 2, 5, 10); got != want {
		t.Fatalf("asymmetric FetchCost = %d, want %d", got, want)
	}
}

func TestNodeIntervalTimeSingleThread(t *testing.T) {
	ths := []ThreadInterval{{Compute: 100, Stall: 50, Overhead: 10}}
	// One thread: scheduler cannot hide anything.
	if got := NodeIntervalTime(ths, true); got != 160 {
		t.Fatalf("enabled = %d, want 160", got)
	}
	if got := NodeIntervalTime(ths, false); got != 160 {
		t.Fatalf("disabled = %d, want 160", got)
	}
}

func TestNodeIntervalTimeOverlap(t *testing.T) {
	// Two threads; with the scheduler enabled, (1 - StallExposure) of
	// thread 0's stall hides under thread 1's compute.
	ths := []ThreadInterval{
		{Compute: 100, Stall: 80},
		{Compute: 100},
	}
	want := Time(200 + int(80*StallExposure))
	if got := NodeIntervalTime(ths, true); got != want {
		t.Fatalf("enabled = %d, want %d (stall partly hidden)", got, want)
	}
	if got := NodeIntervalTime(ths, false); got != 280 {
		t.Fatalf("disabled = %d, want 280 (stall exposed)", got)
	}
	// Multithreading must help, but by no more than the hideable slice.
	if NodeIntervalTime(ths, true) >= NodeIntervalTime(ths, false) {
		t.Fatal("scheduler gave no benefit")
	}
}

func TestNodeIntervalTimeCriticalPath(t *testing.T) {
	// A single thread with a huge stall dominates even with overlap.
	ths := []ThreadInterval{
		{Compute: 10, Stall: 1000},
		{Compute: 20},
	}
	if got := NodeIntervalTime(ths, true); got != 1010 {
		t.Fatalf("enabled = %d, want 1010", got)
	}
}

func TestNodeIntervalTimeMonotonicInStall(t *testing.T) {
	check := func(c1, s1, c2, s2 uint16) bool {
		a := []ThreadInterval{
			{Compute: Time(c1), Stall: Time(s1)},
			{Compute: Time(c2), Stall: Time(s2)},
		}
		b := []ThreadInterval{
			{Compute: Time(c1), Stall: Time(s1) + 100},
			{Compute: Time(c2), Stall: Time(s2)},
		}
		// More stall can never make the node finish earlier, and
		// disabling the scheduler can never make it faster.
		return NodeIntervalTime(b, true) >= NodeIntervalTime(a, true) &&
			NodeIntervalTime(a, false) >= NodeIntervalTime(a, true)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThreadIntervalAddReset(t *testing.T) {
	var ti ThreadInterval
	ti.Add(ThreadInterval{Compute: 1, Stall: 2, Overhead: 3})
	ti.Add(ThreadInterval{Compute: 10, Stall: 20, Overhead: 30})
	if ti.Compute != 11 || ti.Stall != 22 || ti.Overhead != 33 {
		t.Fatalf("after Add: %+v", ti)
	}
	ti.Reset()
	if ti != (ThreadInterval{}) {
		t.Fatalf("after Reset: %+v", ti)
	}
}

func TestClock(t *testing.T) {
	var c Clock
	c.Advance(10)
	c.Advance(-5) // ignored
	if c.Now() != 10 {
		t.Fatalf("Now = %d", c.Now())
	}
	c.SyncTo(5) // backwards sync ignored
	if c.Now() != 10 {
		t.Fatalf("Now after backwards SyncTo = %d", c.Now())
	}
	c.SyncTo(25)
	if c.Now() != 25 {
		t.Fatalf("Now after SyncTo = %d", c.Now())
	}
	if m := MaxClock([]*Clock{{now: 3}, {now: 42}, {now: 17}}); m != 42 {
		t.Fatalf("MaxClock = %d", m)
	}
}
