package sim

// ThreadInterval accumulates one thread's virtual-time charges between two
// consecutive synchronization points (barrier episodes).
type ThreadInterval struct {
	// Compute is CPU time spent in application code.
	Compute Time
	// Stall is time spent blocked on remote operations (page and diff
	// fetches, lock grants).
	Stall Time
	// Overhead is node-local protocol time that occupies the CPU
	// (fault handling, twinning, diffing, tracking faults).
	Overhead Time
}

// Add accumulates o into ti.
func (ti *ThreadInterval) Add(o ThreadInterval) {
	ti.Compute += o.Compute
	ti.Stall += o.Stall
	ti.Overhead += o.Overhead
}

// Reset zeroes the interval.
func (ti *ThreadInterval) Reset() { *ti = ThreadInterval{} }

// Total is the interval's wall-clock-equivalent virtual duration from the
// thread's own point of view: compute plus stall plus overhead.
func (ti ThreadInterval) Total() Time { return ti.Compute + ti.Stall + ti.Overhead }

// StallExposure is the fraction of remote-stall time that context
// switching between local threads cannot hide. The paper cites the
// latency-toleration benefit of per-node multithreading as 10–15%
// [Thitikamol & Keleher 1997], so most stall time remains exposed: fault
// arrivals bunch at interval starts (every local thread needs its halo
// pages at once), leaving little independent compute to overlap.
const StallExposure = 0.85

// NodeIntervalTime combines the per-thread charges of one node's threads
// over a synchronization interval into the node's elapsed virtual time for
// that interval.
//
// The model captures the latency-toleration property of per-node
// multithreading (paper §1, §4.2): CPU work (compute + overhead) always
// serializes because the node has one processor; with the thread
// scheduler enabled, context switching hides (1 - StallExposure) of the
// stall time under other threads' work. The node can finish no earlier
// than any single thread's own critical path:
//
//	enabled:  max( Σcpu + StallExposure·Σstall, max_i(cpu_i+stall_i) )
//	disabled: Σ(cpu+stall)  — every stall is exposed serially
//
// Disabling the scheduler (as active correlation tracking must) therefore
// loses the overlap, which is the second overhead source in paper §4.2.
func NodeIntervalTime(threads []ThreadInterval, schedulerEnabled bool) Time {
	var cpuSum, stallSum, critical Time
	for _, ti := range threads {
		cpu := ti.Compute + ti.Overhead
		cpuSum += cpu
		stallSum += ti.Stall
		if cp := cpu + ti.Stall; cp > critical {
			critical = cp
		}
	}
	if !schedulerEnabled {
		return cpuSum + stallSum
	}
	overlapped := cpuSum + Time(float64(stallSum)*StallExposure)
	if overlapped > critical {
		return overlapped
	}
	return critical
}

// Clock is one node's monotone virtual clock.
type Clock struct {
	now Time
}

// Now returns the clock's current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d (negative d is ignored).
func (c *Clock) Advance(d Time) {
	if d > 0 {
		c.now += d
	}
}

// SyncTo moves the clock forward to at least t (a barrier join).
func (c *Clock) SyncTo(t Time) {
	if t > c.now {
		c.now = t
	}
}

// MaxClock returns the maximum Now across clocks, the cluster-wide elapsed
// time at a global synchronization point.
func MaxClock(clocks []*Clock) Time {
	var m Time
	for _, c := range clocks {
		if c.Now() > m {
			m = c.Now()
		}
	}
	return m
}
