package sim

// Time is virtual time in nanoseconds. The simulator never consults the
// wall clock; all durations come from the Costs model below.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Costs is the virtual-time cost model for the simulated cluster. The
// defaults approximate the paper's testbed: 266 MHz Pentium II nodes on a
// Myrinet network (single-digit-microsecond one-way latency,
// ~30 MB/s effective user-level bandwidth for a page-based DSM).
//
// Absolute times produced by the model are not meant to match the paper's
// measurements; the ratios between compute, fault handling, and network
// cost are what the experiments depend on.
type Costs struct {
	// ComputePerWord is the cost of one word of application compute
	// (one grid-point update, one interaction term, ...).
	ComputePerWord Time
	// SoftFault is the node-local cost of fielding any page fault
	// (trap + handler dispatch + protection change).
	SoftFault Time
	// TrackFault is the cost of a correlation-tracking fault: the
	// handler only records a bitmap bit and resets protection, so it is
	// cheaper than a coherence fault's protocol work but still pays the
	// trap.
	TrackFault Time
	// TwinCopy is the cost of creating a twin (copying one page).
	TwinCopy Time
	// DiffPerByte is the per-byte cost of creating or applying a diff.
	DiffPerByte Time
	// MsgLatency is the one-way network latency of any message.
	MsgLatency Time
	// MsgPerByte is the per-byte transmission cost (inverse bandwidth).
	MsgPerByte Time
	// BarrierBase is the fixed cost of one barrier episode beyond the
	// messages it exchanges.
	BarrierBase Time
	// SwitchCost is the cost of a thread context switch.
	SwitchCost Time
	// ProtectAll is the cost of read-protecting the whole shared
	// segment at a tracking thread switch, per page.
	ProtectAllPerPage Time
}

// DefaultCosts returns the cost model described above.
func DefaultCosts() Costs {
	return Costs{
		ComputePerWord:    40 * Nanosecond, // ~10 cycles/word on a 266 MHz P-II
		SoftFault:         25 * Microsecond,
		TrackFault:        15 * Microsecond,
		TwinCopy:          10 * Microsecond,
		DiffPerByte:       2 * Nanosecond,
		MsgLatency:        20 * Microsecond,
		MsgPerByte:        33 * Nanosecond, // ~30 MB/s user-level
		BarrierBase:       50 * Microsecond,
		SwitchCost:        5 * Microsecond,
		ProtectAllPerPage: 300 * Nanosecond,
	}
}

// FetchCost returns the requester-side cost of a round-trip fetch that
// sends reqBytes and receives replyBytes.
func (c Costs) FetchCost(reqBytes, replyBytes int) Time {
	return 2*c.MsgLatency + Time(reqBytes+replyBytes)*c.MsgPerByte
}

// LinkCost is the directed network cost of one (from, to) link: the
// one-way latency of a message and the per-byte transmission cost
// (inverse bandwidth). Distinct directions of a node pair may carry
// distinct costs — asymmetric uplinks are common on heterogeneous
// clusters (Cudennec, arXiv:2009.01507).
type LinkCost struct {
	Latency Time
	PerByte Time
}

// Topology is the heterogeneous extension of the uniform Costs model:
// per-node compute speed scaling and a per-directed-link latency and
// bandwidth matrix. The zero-configuration topology (NewTopology) is
// exactly the uniform model, so a cluster with a uniform topology and
// one without behave identically; the FastSlow and Racks constructors
// introduce the non-uniform hardware the placement, prefetch, and
// serving layers are stressed by.
type Topology struct {
	n       int
	base    Costs
	compute []float64 // per-node compute-cost multiplier (1 = baseline)
	links   [][]LinkCost
}

// NewTopology returns a uniform n-node topology over the base cost
// model: every node computes at speed 1 and every link carries the base
// MsgLatency / MsgPerByte.
func NewTopology(n int, base Costs) *Topology {
	if base == (Costs{}) {
		base = DefaultCosts()
	}
	t := &Topology{n: n, base: base}
	t.compute = make([]float64, n)
	for i := range t.compute {
		t.compute[i] = 1
	}
	uniform := LinkCost{Latency: base.MsgLatency, PerByte: base.MsgPerByte}
	t.links = make([][]LinkCost, n)
	for i := range t.links {
		t.links[i] = make([]LinkCost, n)
		for j := range t.links[i] {
			t.links[i][j] = uniform
		}
	}
	return t
}

// FastSlowTopology models a cluster where every slowEvery-th node
// (starting at node slowEvery-1) is a slow machine: its compute costs
// are scaled by cpuFactor and every link touching it (either direction)
// by netFactor. slowEvery <= 1 marks every node slow; factors <= 1 are
// clamped to 1 (a "slow" node is never faster than baseline).
func FastSlowTopology(n int, base Costs, slowEvery int, cpuFactor, netFactor float64) *Topology {
	t := NewTopology(n, base)
	if cpuFactor < 1 {
		cpuFactor = 1
	}
	if netFactor < 1 {
		netFactor = 1
	}
	slow := func(i int) bool { return slowEvery <= 1 || i%slowEvery == slowEvery-1 }
	for i := 0; i < n; i++ {
		if slow(i) {
			t.compute[i] = cpuFactor
		}
		for j := 0; j < n; j++ {
			// A link is slow when either endpoint is; scale it once.
			if slow(i) || slow(j) {
				t.ScaleLink(i, j, netFactor)
			}
		}
	}
	return t
}

// RackTopology models rack-locality: nodes are grouped into racks of
// rackSize, intra-rack links carry the base cost, and cross-rack links
// are scaled by crossFactor in both latency and per-byte cost.
// Cross-rack links are additionally asymmetric when upFactor > 1: the
// direction from the higher-numbered rack to the lower-numbered one
// (the "uplink") is scaled by crossFactor*upFactor, modeling the
// constrained uplinks of oversubscribed cluster networks.
func RackTopology(n int, base Costs, rackSize int, crossFactor, upFactor float64) *Topology {
	t := NewTopology(n, base)
	if rackSize <= 0 {
		rackSize = n
	}
	if crossFactor < 1 {
		crossFactor = 1
	}
	if upFactor < 1 {
		upFactor = 1
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			ri, rj := i/rackSize, j/rackSize
			if ri == rj {
				continue
			}
			f := crossFactor
			if ri > rj {
				f *= upFactor
			}
			t.ScaleLink(i, j, f)
		}
	}
	return t
}

// Nodes returns the topology's node count.
func (t *Topology) Nodes() int { return t.n }

// Base returns the uniform cost model the topology scales.
func (t *Topology) Base() Costs { return t.base }

// SetComputeScale sets node's compute-cost multiplier (2 = half speed).
// Values <= 0 are ignored.
func (t *Topology) SetComputeScale(node int, s float64) {
	if s > 0 && node >= 0 && node < t.n {
		t.compute[node] = s
	}
}

// ComputeScale returns node's compute-cost multiplier. Out-of-range
// nodes report 1 so callers need no bounds checks on thread spill paths.
func (t *Topology) ComputeScale(node int) float64 {
	if node < 0 || node >= t.n {
		return 1
	}
	return t.compute[node]
}

// SetLink sets the directed (from, to) link cost.
func (t *Topology) SetLink(from, to int, lc LinkCost) {
	if from >= 0 && from < t.n && to >= 0 && to < t.n {
		t.links[from][to] = lc
	}
}

// ScaleLink multiplies the directed (from, to) link's latency and
// per-byte cost by f.
func (t *Topology) ScaleLink(from, to int, f float64) {
	if from < 0 || from >= t.n || to < 0 || to >= t.n {
		return
	}
	lc := t.links[from][to]
	lc.Latency = Time(float64(lc.Latency) * f)
	lc.PerByte = Time(float64(lc.PerByte) * f)
	t.links[from][to] = lc
}

// Link returns the directed (from, to) link cost. Out-of-range indices
// report the base uniform link.
func (t *Topology) Link(from, to int) LinkCost {
	if from < 0 || from >= t.n || to < 0 || to >= t.n {
		return LinkCost{Latency: t.base.MsgLatency, PerByte: t.base.MsgPerByte}
	}
	return t.links[from][to]
}

// FetchCost is the heterogeneous counterpart of Costs.FetchCost: the
// requester-side cost of a round trip from `from` to `to` sending
// reqBytes and receiving replyBytes, with the request charged at the
// (from, to) link's cost and the reply at the (to, from) link's — the
// two directions may differ.
func (t *Topology) FetchCost(from, to, reqBytes, replyBytes int) Time {
	req := t.Link(from, to)
	rep := t.Link(to, from)
	return req.Latency + rep.Latency +
		Time(reqBytes)*req.PerByte + Time(replyBytes)*rep.PerByte
}
