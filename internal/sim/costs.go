package sim

// Time is virtual time in nanoseconds. The simulator never consults the
// wall clock; all durations come from the Costs model below.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Costs is the virtual-time cost model for the simulated cluster. The
// defaults approximate the paper's testbed: 266 MHz Pentium II nodes on a
// Myrinet network (single-digit-microsecond one-way latency,
// ~30 MB/s effective user-level bandwidth for a page-based DSM).
//
// Absolute times produced by the model are not meant to match the paper's
// measurements; the ratios between compute, fault handling, and network
// cost are what the experiments depend on.
type Costs struct {
	// ComputePerWord is the cost of one word of application compute
	// (one grid-point update, one interaction term, ...).
	ComputePerWord Time
	// SoftFault is the node-local cost of fielding any page fault
	// (trap + handler dispatch + protection change).
	SoftFault Time
	// TrackFault is the cost of a correlation-tracking fault: the
	// handler only records a bitmap bit and resets protection, so it is
	// cheaper than a coherence fault's protocol work but still pays the
	// trap.
	TrackFault Time
	// TwinCopy is the cost of creating a twin (copying one page).
	TwinCopy Time
	// DiffPerByte is the per-byte cost of creating or applying a diff.
	DiffPerByte Time
	// MsgLatency is the one-way network latency of any message.
	MsgLatency Time
	// MsgPerByte is the per-byte transmission cost (inverse bandwidth).
	MsgPerByte Time
	// BarrierBase is the fixed cost of one barrier episode beyond the
	// messages it exchanges.
	BarrierBase Time
	// SwitchCost is the cost of a thread context switch.
	SwitchCost Time
	// ProtectAll is the cost of read-protecting the whole shared
	// segment at a tracking thread switch, per page.
	ProtectAllPerPage Time
}

// DefaultCosts returns the cost model described above.
func DefaultCosts() Costs {
	return Costs{
		ComputePerWord:    40 * Nanosecond, // ~10 cycles/word on a 266 MHz P-II
		SoftFault:         25 * Microsecond,
		TrackFault:        15 * Microsecond,
		TwinCopy:          10 * Microsecond,
		DiffPerByte:       2 * Nanosecond,
		MsgLatency:        20 * Microsecond,
		MsgPerByte:        33 * Nanosecond, // ~30 MB/s user-level
		BarrierBase:       50 * Microsecond,
		SwitchCost:        5 * Microsecond,
		ProtectAllPerPage: 300 * Nanosecond,
	}
}

// FetchCost returns the requester-side cost of a round-trip fetch that
// sends reqBytes and receives replyBytes.
func (c Costs) FetchCost(reqBytes, replyBytes int) Time {
	return 2*c.MsgLatency + Time(reqBytes+replyBytes)*c.MsgPerByte
}
