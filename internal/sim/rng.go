// Package sim provides the deterministic simulation substrate used by the
// DSM: a seeded random-number generator, the virtual-time cost model, and
// per-thread/per-node time accounting.
//
// Everything in this package is deterministic: the same seed and the same
// sequence of calls produce identical results, which the experiment harness
// relies on for reproducibility.
package sim

// RNG is a small, fast, deterministic pseudo-random generator
// (SplitMix64). It is not safe for concurrent use; each consumer should
// own its RNG or derive one with Split.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds give
// independent streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives a new, statistically independent generator from r,
// advancing r once.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64()}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
