package sim

// Deterministic crash/restart schedules.
//
// A CrashSchedule pins a node failure to the transport's global call
// numbering (the same 1-based counter chaos plans key on, see
// transport.RecordingPlan): the node is fail-stop from call N onward —
// every call to or from it fails permanently — until an explicit revive
// at a named barrier episode. Because the call counter is deterministic
// under SerialFanOut, the same schedule replays the same crash on every
// run, composing with drop/delay/partition plans that share the counter.

// CrashSchedule describes one deterministic node crash and, optionally,
// its restart point.
type CrashSchedule struct {
	// Node is the node that crashes.
	Node int
	// Call is the 1-based global transport call number at which the
	// crash arms: the call numbered Call and every later call involving
	// Node fails. Call <= 1 means the node is down from the start.
	Call int64
	// RestartEpoch, when non-zero, is the earliest barrier episode at
	// whose start the node rejoins the cluster (the DSM layer runs its
	// recovery protocol and revives the transport). The first episode
	// at or after RestartEpoch that begins with the node down triggers
	// the rejoin, so a crash call landing after the named episode still
	// recovers at the next barrier. Zero means the node never restarts.
	RestartEpoch int64
}

// RestartsAt reports whether the schedule revives its node at the start
// of barrier episode ep (assuming the node is down then; the caller
// checks liveness).
func (s CrashSchedule) RestartsAt(ep int64) bool {
	return s.RestartEpoch != 0 && ep >= s.RestartEpoch
}
