package vm

import "fmt"

// PageID identifies a page within the shared segment.
type PageID int32

// Prot is a page protection level.
type Prot uint8

// Protection levels, most to least restrictive.
const (
	ProtNone      Prot = iota + 1 // any access faults
	ProtRead                      // writes fault
	ProtReadWrite                 // no faults
)

// String returns a short human-readable protection name.
func (p Prot) String() string {
	switch p {
	case ProtNone:
		return "none"
	case ProtRead:
		return "read"
	case ProtReadWrite:
		return "rw"
	default:
		return fmt.Sprintf("prot(%d)", uint8(p))
	}
}

// Access is the kind of memory access being attempted.
type Access uint8

// Access kinds.
const (
	Read Access = iota + 1
	Write
)

// String returns "read" or "write".
func (a Access) String() string {
	if a == Write {
		return "write"
	}
	return "read"
}

// Allows reports whether protection p permits access a.
func (p Prot) Allows(a Access) bool {
	switch p {
	case ProtReadWrite:
		return true
	case ProtRead:
		return a == Read
	default:
		return false
	}
}

// FaultHandler resolves a coherence fault: thread tid attempted access a on
// page p, whose protection does not allow it. The handler must raise the
// page's protection so that the access can proceed (or return an error).
type FaultHandler func(tid int, p PageID, a Access) error

// TrackHandler observes a correlation-tracking fault: thread tid made the
// first access to page p since the page's correlation bit was last armed.
type TrackHandler func(tid int, p PageID, a Access)

// AddressSpace is one node's page table over the shared segment. It is not
// safe for concurrent use; the thread engine serializes access.
type AddressSpace struct {
	prot    []Prot
	track   []bool // correlation bits (paper §4.2 step 1)
	fault   FaultHandler
	tracker TrackHandler
	// tracking is true while an active correlation-tracking phase is in
	// progress on this node.
	tracking bool
}

// NewAddressSpace returns an address space of npages pages, all ProtNone.
func NewAddressSpace(npages int, fault FaultHandler) *AddressSpace {
	as := &AddressSpace{
		prot:  make([]Prot, npages),
		track: make([]bool, npages),
		fault: fault,
	}
	for i := range as.prot {
		as.prot[i] = ProtNone
	}
	return as
}

// NumPages returns the number of pages in the address space.
func (as *AddressSpace) NumPages() int { return len(as.prot) }

// Prot returns page p's current protection.
func (as *AddressSpace) Prot(p PageID) Prot { return as.prot[p] }

// SetProt sets page p's protection.
func (as *AddressSpace) SetProt(p PageID, pr Prot) { as.prot[p] = pr }

// Tracking reports whether a tracking phase is active.
func (as *AddressSpace) Tracking() bool { return as.tracking }

// BeginTracking arms the correlation bit of every page and installs h as
// the tracking-fault observer (paper §4.2 step 1). While tracking is
// active, Touch reports the first access to each armed page through h
// before performing normal protection checks.
func (as *AddressSpace) BeginTracking(h TrackHandler) {
	as.tracking = true
	as.tracker = h
	as.ArmAll()
}

// ArmAll re-arms every page's correlation bit (done at each tracked thread
// switch, paper §4.2 step 3).
func (as *AddressSpace) ArmAll() {
	for i := range as.track {
		as.track[i] = true
	}
}

// ArmedCount counts pages whose correlation bit is currently armed.
func (as *AddressSpace) ArmedCount() int {
	n := 0
	for _, b := range as.track {
		if b {
			n++
		}
	}
	return n
}

// EndTracking clears all correlation bits and leaves tracking mode
// (paper §4.2 step 4).
func (as *AddressSpace) EndTracking() {
	as.tracking = false
	as.tracker = nil
	for i := range as.track {
		as.track[i] = false
	}
}

// Touch performs the protection check for an access by thread tid to page
// p. It reproduces the two-level fault behaviour of the paper's mechanism:
//
//  1. If tracking is active and the page's correlation bit is set, a
//     correlation fault occurs: the tracker is notified, the bit is
//     cleared, and "the page is returned to its original state".
//  2. If the page's protection does not allow the access, a coherence
//     fault occurs and the fault handler must resolve it.
//
// Touch returns (trackFaulted, cohFaulted, err).
func (as *AddressSpace) Touch(tid int, p PageID, a Access) (bool, bool, error) {
	trackFault := false
	if as.tracking && as.track[p] {
		as.track[p] = false
		trackFault = true
		if as.tracker != nil {
			as.tracker(tid, p, a)
		}
	}
	if as.prot[p].Allows(a) {
		return trackFault, false, nil
	}
	if as.fault == nil {
		return trackFault, true, fmt.Errorf("vm: %s fault on page %d with no handler", a, p)
	}
	if err := as.fault(tid, p, a); err != nil {
		return trackFault, true, fmt.Errorf("vm: resolve %s fault on page %d: %w", a, p, err)
	}
	if !as.prot[p].Allows(a) {
		return trackFault, true, fmt.Errorf("vm: handler left page %d at %s, %s still not allowed",
			p, as.prot[p], a)
	}
	return trackFault, true, nil
}
