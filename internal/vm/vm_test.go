package vm

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestProtAllows(t *testing.T) {
	cases := []struct {
		prot Prot
		acc  Access
		want bool
	}{
		{ProtNone, Read, false},
		{ProtNone, Write, false},
		{ProtRead, Read, true},
		{ProtRead, Write, false},
		{ProtReadWrite, Read, true},
		{ProtReadWrite, Write, true},
	}
	for _, c := range cases {
		if got := c.prot.Allows(c.acc); got != c.want {
			t.Errorf("%s.Allows(%s) = %v, want %v", c.prot, c.acc, got, c.want)
		}
	}
}

func TestProtAccessStrings(t *testing.T) {
	if ProtNone.String() != "none" || ProtRead.String() != "read" || ProtReadWrite.String() != "rw" {
		t.Fatal("unexpected Prot strings")
	}
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("unexpected Access strings")
	}
	if Prot(9).String() != "prot(9)" {
		t.Fatal("unexpected unknown Prot string")
	}
}

func TestTouchResolvesFault(t *testing.T) {
	var faults []PageID
	var as *AddressSpace
	as = NewAddressSpace(4, func(tid int, p PageID, a Access) error {
		faults = append(faults, p)
		as.SetProt(p, ProtReadWrite)
		return nil
	})
	tf, cf, err := as.Touch(0, 2, Write)
	if err != nil {
		t.Fatal(err)
	}
	if tf || !cf {
		t.Fatalf("tf=%v cf=%v, want false,true", tf, cf)
	}
	// Second touch: no fault.
	tf, cf, err = as.Touch(0, 2, Write)
	if err != nil || tf || cf {
		t.Fatalf("second touch: tf=%v cf=%v err=%v", tf, cf, err)
	}
	if len(faults) != 1 || faults[0] != 2 {
		t.Fatalf("faults = %v", faults)
	}
}

func TestTouchHandlerError(t *testing.T) {
	sentinel := errors.New("boom")
	as := NewAddressSpace(1, func(tid int, p PageID, a Access) error { return sentinel })
	_, _, err := as.Touch(0, 0, Read)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}

func TestTouchHandlerMustRaiseProt(t *testing.T) {
	as := NewAddressSpace(1, func(tid int, p PageID, a Access) error { return nil })
	if _, _, err := as.Touch(0, 0, Read); err == nil {
		t.Fatal("expected error when handler does not raise protection")
	}
}

func TestTouchNoHandler(t *testing.T) {
	as := NewAddressSpace(1, nil)
	if _, _, err := as.Touch(0, 0, Read); err == nil {
		t.Fatal("expected error with no handler installed")
	}
}

func TestTrackingFaultOncePerArm(t *testing.T) {
	as := NewAddressSpace(3, func(tid int, p PageID, a Access) error {
		return nil
	})
	for i := 0; i < 3; i++ {
		as.SetProt(PageID(i), ProtReadWrite)
	}
	var tracked []PageID
	as.BeginTracking(func(tid int, p PageID, a Access) { tracked = append(tracked, p) })
	if !as.Tracking() {
		t.Fatal("Tracking() = false after BeginTracking")
	}
	if as.ArmedCount() != 3 {
		t.Fatalf("ArmedCount = %d, want 3", as.ArmedCount())
	}
	// First access: tracking fault; second: none.
	tf, cf, err := as.Touch(1, 0, Read)
	if err != nil || !tf || cf {
		t.Fatalf("first: tf=%v cf=%v err=%v", tf, cf, err)
	}
	tf, cf, err = as.Touch(1, 0, Write)
	if err != nil || tf || cf {
		t.Fatalf("second: tf=%v cf=%v err=%v", tf, cf, err)
	}
	// Re-arm (thread switch): faults again.
	as.ArmAll()
	tf, _, err = as.Touch(2, 0, Read)
	if err != nil || !tf {
		t.Fatalf("after rearm: tf=%v err=%v", tf, err)
	}
	as.EndTracking()
	if as.Tracking() || as.ArmedCount() != 0 {
		t.Fatal("EndTracking did not clear state")
	}
	tf, _, err = as.Touch(2, 1, Read)
	if err != nil || tf {
		t.Fatalf("after end: tf=%v err=%v", tf, err)
	}
	if len(tracked) != 2 {
		t.Fatalf("tracked = %v, want 2 events", tracked)
	}
}

func TestTrackingPlusCoherenceFault(t *testing.T) {
	// Paper §4.2 step 2: "If the access type would have caused a
	// violation even outside the correlation-tracking phase, an
	// additional fault occurs and is handled normally."
	var as *AddressSpace
	cohFaults := 0
	as = NewAddressSpace(1, func(tid int, p PageID, a Access) error {
		cohFaults++
		as.SetProt(p, ProtReadWrite)
		return nil
	})
	as.BeginTracking(func(tid int, p PageID, a Access) {})
	tf, cf, err := as.Touch(0, 0, Write)
	if err != nil {
		t.Fatal(err)
	}
	if !tf || !cf || cohFaults != 1 {
		t.Fatalf("tf=%v cf=%v cohFaults=%d, want true,true,1", tf, cf, cohFaults)
	}
}

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d", b.Len())
	}
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Fatal("Get mismatch")
	}
	if b.Count() != 3 {
		t.Fatalf("Count = %d", b.Count())
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 2 {
		t.Fatal("Clear failed")
	}
	want := []PageID{0, 129}
	got := b.Pages()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Pages = %v, want %v", got, want)
	}
	b.Reset()
	if b.Count() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestBitmapAndCountOr(t *testing.T) {
	a, b := NewBitmap(200), NewBitmap(200)
	for i := 0; i < 200; i += 2 {
		a.Set(PageID(i))
	}
	for i := 0; i < 200; i += 3 {
		b.Set(PageID(i))
	}
	// Multiples of 6 in [0,200): 34 values (0..198).
	if got := a.AndCount(b); got != 34 {
		t.Fatalf("AndCount = %d, want 34", got)
	}
	c := a.Clone()
	c.Or(b)
	// |A ∪ B| = 100 + 67 - 34.
	if got := c.Count(); got != 133 {
		t.Fatalf("union Count = %d, want 133", got)
	}
	// Clone is independent.
	c.Set(1)
	if a.Get(1) {
		t.Fatal("Clone shares storage with original")
	}
}

func TestBitmapProperties(t *testing.T) {
	// AndCount is symmetric and bounded by each operand's count.
	check := func(xs, ys []uint16) bool {
		a, b := NewBitmap(1<<16), NewBitmap(1<<16)
		for _, x := range xs {
			a.Set(PageID(x))
		}
		for _, y := range ys {
			b.Set(PageID(y))
		}
		ab, ba := a.AndCount(b), b.AndCount(a)
		if ab != ba {
			return false
		}
		if ab > a.Count() || ab > b.Count() {
			return false
		}
		// Self-correlation equals own count.
		return a.AndCount(a) == a.Count()
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitmapForEachOrder(t *testing.T) {
	b := NewBitmap(300)
	ins := []PageID{299, 5, 63, 64, 65, 128}
	for _, p := range ins {
		b.Set(p)
	}
	var got []PageID
	b.ForEach(func(p PageID) { got = append(got, p) })
	want := []PageID{5, 63, 64, 65, 128, 299}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
