package vm

// Word-boundary edge cases for the correlation-tracking bitmaps: bit
// positions straddling the 64-bit word seams (63/64/65), capacities that
// are not word multiples, and the derived operations (Count, Or,
// AndCount, ForEach, Pages, Clone) at those seams.

import (
	"reflect"
	"testing"
)

func TestBitmapWordSeams(t *testing.T) {
	for _, n := range []int{64, 65, 127, 128, 129, 200} {
		b := NewBitmap(n)
		if b.Len() != n {
			t.Fatalf("Len() = %d, want %d", b.Len(), n)
		}
		seams := []PageID{0, 63}
		if n > 64 {
			seams = append(seams, 64)
		}
		if n > 65 {
			seams = append(seams, 65)
		}
		seams = append(seams, PageID(n-1))
		for _, p := range seams {
			b.Set(p)
			if !b.Get(p) {
				t.Fatalf("n=%d: bit %d not set", n, p)
			}
		}
		// Set is idempotent across the seam.
		for _, p := range seams {
			b.Set(p)
		}
		uniq := map[PageID]bool{}
		for _, p := range seams {
			uniq[p] = true
		}
		if b.Count() != len(uniq) {
			t.Fatalf("n=%d: Count() = %d, want %d", n, b.Count(), len(uniq))
		}
		// Clearing the word-straddling bits must not disturb neighbours.
		b.Clear(63)
		if n > 64 {
			if !b.Get(64) {
				t.Fatalf("n=%d: Clear(63) cleared bit 64", n)
			}
			b.Clear(64)
			if n > 65 && !b.Get(65) {
				t.Fatalf("n=%d: Clear(64) cleared bit 65", n)
			}
		}
		if b.Get(63) {
			t.Fatalf("n=%d: bit 63 still set after Clear", n)
		}
	}
}

func TestBitmapSeamOps(t *testing.T) {
	// Two bitmaps overlapping exactly on the seam bits 63 and 64.
	a := NewBitmap(130)
	b := NewBitmap(130)
	for _, p := range []PageID{1, 63, 64, 129} {
		a.Set(p)
	}
	for _, p := range []PageID{63, 64, 65, 128} {
		b.Set(p)
	}
	if got := a.AndCount(b); got != 2 {
		t.Fatalf("AndCount = %d, want 2 (bits 63 and 64)", got)
	}
	u := a.Clone()
	u.Or(b)
	wantPages := []PageID{1, 63, 64, 65, 128, 129}
	if got := u.Pages(); !reflect.DeepEqual(got, wantPages) {
		t.Fatalf("union Pages() = %v, want %v", got, wantPages)
	}
	if u.Count() != len(wantPages) {
		t.Fatalf("union Count() = %d, want %d", u.Count(), len(wantPages))
	}
	// ForEach must walk ascending across the word seam.
	var walked []PageID
	u.ForEach(func(p PageID) { walked = append(walked, p) })
	if !reflect.DeepEqual(walked, wantPages) {
		t.Fatalf("ForEach order = %v, want %v", walked, wantPages)
	}
	// Clone is independent of its source.
	u.Reset()
	if u.Count() != 0 {
		t.Fatalf("Reset left %d bits", u.Count())
	}
	if a.Count() != 4 {
		t.Fatalf("Reset of union disturbed source: Count = %d", a.Count())
	}
}

func TestBitmapEmptyAndFull(t *testing.T) {
	// Empty bitmap: every derived op degenerates cleanly.
	b := NewBitmap(65)
	if b.Count() != 0 {
		t.Fatalf("empty Count = %d", b.Count())
	}
	if got := b.Pages(); len(got) != 0 {
		t.Fatalf("empty Pages = %v", got)
	}
	b.ForEach(func(p PageID) { t.Fatalf("ForEach visited %d on empty bitmap", p) })

	// Full bitmap across a partial last word: Count equals capacity and
	// the tail bits beyond n stay untouched by Set/Clear round trips.
	for p := 0; p < 65; p++ {
		b.Set(PageID(p))
	}
	if b.Count() != 65 {
		t.Fatalf("full Count = %d, want 65", b.Count())
	}
	for p := 0; p < 65; p++ {
		b.Clear(PageID(p))
	}
	if b.Count() != 0 {
		t.Fatalf("Count after full clear = %d", b.Count())
	}
}
