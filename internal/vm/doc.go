// Package vm is the software MMU substrate for the DSM.
//
// The original CVM system uses hardware page protection (mprotect) and a
// SIGSEGV handler to intercept the first access to a page in each
// protection epoch. The Go runtime owns signal handling, so this package
// reproduces the same observable behaviour in software: shared memory is
// touched through page-granularity operations that consult a per-node page
// table and call registered fault handlers on protection violations. The
// fault stream (first touch per page per protection epoch) is identical to
// what the hardware mechanism generates, which is all the paper's
// mechanisms observe.
//
// The package also provides the per-thread access bitmaps (bitmap.go)
// that active correlation tracking samples: one bit per (thread, page)
// pair, set on first touch, cleared when a tracking epoch resets
// protections. internal/core builds its correlation matrices from these
// bitmaps; ARCHITECTURE.md §"Paper-to-package map" places this layer in
// the request lifecycle.
package vm
