package vm

import "math/bits"

// Bitmap is a fixed-size bit set over page IDs, used for the per-thread
// access bitmaps of the correlation-tracking mechanism (paper §4.2).
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap returns an empty bitmap over n pages.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the bitmap's capacity in bits.
func (b *Bitmap) Len() int { return b.n }

// Set marks page p.
func (b *Bitmap) Set(p PageID) { b.words[p>>6] |= 1 << (uint(p) & 63) }

// Clear unmarks page p.
func (b *Bitmap) Clear(p PageID) { b.words[p>>6] &^= 1 << (uint(p) & 63) }

// Get reports whether page p is marked.
func (b *Bitmap) Get(p PageID) bool {
	return b.words[p>>6]&(1<<(uint(p)&63)) != 0
}

// Count returns the number of marked pages.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset unmarks all pages.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Or merges o into b (b |= o). The bitmaps must be the same length.
func (b *Bitmap) Or(o *Bitmap) {
	for i, w := range o.words {
		b.words[i] |= w
	}
}

// AndCount returns |b ∩ o| — the number of pages marked in both — which is
// exactly the paper's thread correlation between two threads' access
// bitmaps. The bitmaps must be the same length.
func (b *Bitmap) AndCount(o *Bitmap) int {
	c := 0
	for i, w := range o.words {
		c += bits.OnesCount64(b.words[i] & w)
	}
	return c
}

// Clone returns a copy of b.
func (b *Bitmap) Clone() *Bitmap {
	c := &Bitmap{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// ForEach calls f for every marked page in ascending order.
func (b *Bitmap) ForEach(f func(PageID)) {
	for i, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			f(PageID(i*64 + bit))
			w &= w - 1
		}
	}
}

// Pages returns the marked pages in ascending order.
func (b *Bitmap) Pages() []PageID {
	out := make([]PageID, 0, b.Count())
	b.ForEach(func(p PageID) { out = append(out, p) })
	return out
}
