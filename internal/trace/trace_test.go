package trace

import (
	"errors"
	"testing"
	"testing/quick"

	"actdsm/internal/apps"
	"actdsm/internal/core"
	"actdsm/internal/dsm"
	"actdsm/internal/memlayout"
	"actdsm/internal/threads"
	"actdsm/internal/vm"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	check := func(evs []struct {
		Iter uint8
		TID  uint8
		Page uint8
		W    bool
	}) bool {
		tr := &Trace{Threads: 256, Pages: 256, Iterations: 256}
		for _, e := range evs {
			tr.Events = append(tr.Events, Event{
				Iter: int32(e.Iter), TID: int32(e.TID),
				Page: vm.PageID(e.Page), Write: e.W,
			})
		}
		got, err := Decode(tr.Encode())
		if err != nil {
			return false
		}
		if got.Threads != tr.Threads || got.Pages != tr.Pages ||
			got.Iterations != tr.Iterations || len(got.Events) != len(tr.Events) {
			return false
		}
		for i := range tr.Events {
			if got.Events[i] != tr.Events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Decode(make([]byte, 20)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("bad magic: %v", err)
	}
	tr := &Trace{Threads: 1, Pages: 1, Iterations: 1,
		Events: []Event{{Iter: 0, TID: 0, Page: 0}}}
	b := tr.Encode()
	if _, err := Decode(b[:len(b)-1]); !errors.Is(err, ErrMalformed) {
		t.Fatalf("truncated: %v", err)
	}
	// Out-of-range event.
	bad := &Trace{Threads: 1, Pages: 1, Iterations: 1,
		Events: []Event{{Iter: 0, TID: 5, Page: 0}}}
	if _, err := Decode(bad.Encode()); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestMatrixFromTrace(t *testing.T) {
	tr := &Trace{Threads: 3, Pages: 4, Iterations: 2}
	add := func(iter, tid, page int) {
		tr.Events = append(tr.Events, Event{Iter: int32(iter), TID: int32(tid), Page: vm.PageID(page)})
	}
	add(0, 0, 0)
	add(0, 0, 1)
	add(0, 1, 1)
	add(0, 1, 2)
	add(1, 2, 0) // only iteration 1
	m := tr.Matrix(0)
	if m.At(0, 1) != 1 {
		t.Fatalf("corr(0,1) = %d", m.At(0, 1))
	}
	if m.At(0, 2) != 0 {
		t.Fatalf("corr(0,2) = %d (iteration filter leaked)", m.At(0, 2))
	}
	all := tr.Matrix(-1)
	if all.At(0, 2) != 1 {
		t.Fatalf("all-iterations corr(0,2) = %d", all.At(0, 2))
	}
	d := tr.Densities(-1)
	if d[0][1] != 1 || d[1][1] != 1 || d[2][0] != 1 {
		t.Fatalf("densities = %v", d)
	}
}

// TestCaptureReplayEquivalence records a live Water run, then replays the
// trace on a fresh cluster and checks the replayed run's correlation
// matrix matches one computed offline from the trace.
func TestCaptureReplayEquivalence(t *testing.T) {
	app, err := apps.New("Water", apps.Config{Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	layout := memlayout.NewLayout()
	if err := app.Setup(layout); err != nil {
		t.Fatal(err)
	}
	cl, err := dsm.New(dsm.Config{Nodes: 4, Pages: layout.TotalPages()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	e, err := threads.NewEngine(cl, threads.Config{Threads: 8, SchedulerEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(e)
	e.SetHooks(rec.Hooks(threads.Hooks{}))
	if err := e.Run(app.Body); err != nil {
		t.Fatal(err)
	}
	tr := rec.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 || tr.Iterations != app.Iterations() {
		t.Fatalf("trace: %d events, %d iterations", len(tr.Events), tr.Iterations)
	}

	// Offline matrix from the captured stream.
	offline := tr.Matrix(1)

	// Replay on a fresh cluster with active tracking of iteration 1:
	// the tracked matrix must equal the offline one (same access sets).
	cl2, err := dsm.New(dsm.Config{Nodes: 4, Pages: tr.Pages})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl2.Close() }()
	e2, err := threads.NewEngine(cl2, threads.Config{Threads: tr.Threads, SchedulerEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	rec2 := NewRecorder(e2)
	e2.SetHooks(rec2.Hooks(threads.Hooks{}))
	if err := e2.Run(tr.ReplayBody()); err != nil {
		t.Fatal(err)
	}
	replayed := rec2.Trace().Matrix(1)
	if replayed.N() != offline.N() {
		t.Fatalf("matrix sizes differ")
	}
	for i := 0; i < offline.N(); i++ {
		for j := 0; j < offline.N(); j++ {
			if offline.At(i, j) != replayed.At(i, j) {
				t.Fatalf("corr(%d,%d): offline %d, replayed %d",
					i, j, offline.At(i, j), replayed.At(i, j))
			}
		}
	}
}

func TestReplayOnDifferentClusterShape(t *testing.T) {
	// A captured trace can be replayed on a different node count — the
	// point of trace-driven experimentation.
	tr := &Trace{Threads: 4, Pages: 2, Iterations: 2}
	for iter := 0; iter < 2; iter++ {
		for tid := 0; tid < 4; tid++ {
			tr.Events = append(tr.Events, Event{
				Iter: int32(iter), TID: int32(tid),
				Page: vm.PageID(tid % 2), Write: tid%2 == 0,
			})
		}
	}
	for _, nodes := range []int{1, 2, 4} {
		cl, err := dsm.New(dsm.Config{Nodes: nodes, Pages: tr.Pages})
		if err != nil {
			t.Fatal(err)
		}
		e, err := threads.NewEngine(cl, threads.Config{Threads: tr.Threads})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(tr.ReplayBody()); err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		if e.Iteration() != tr.Iterations {
			t.Fatalf("nodes=%d: %d iterations", nodes, e.Iteration())
		}
		_ = cl.Close()
	}
}

// TestRecorderAndDensityCoexist checks composable access hooks: a trace
// recorder and a density tracker observe the same run simultaneously.
func TestRecorderAndDensityCoexist(t *testing.T) {
	cl, err := dsm.New(dsm.Config{Nodes: 2, Pages: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	e, err := threads.NewEngine(cl, threads.Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(e)
	den := core.NewDensityTracker(e, 0)
	e.SetHooks(rec.Hooks(den.Hooks(threads.Hooks{})))
	den.Start()
	err = e.Run(func(tid int) threads.Body {
		return func(ctx *threads.Ctx) error {
			for k := 0; k < 3; k++ {
				if _, err := ctx.Span(tid*memlayout.PageSize, 4, vm.Read); err != nil {
					return err
				}
			}
			ctx.EndIteration()
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rec.Trace().Events); got != 6 {
		t.Fatalf("recorder saw %d events, want 6", got)
	}
	if got := den.Counts()[0][0]; got != 3 {
		t.Fatalf("density counts = %d, want 3", got)
	}
}
