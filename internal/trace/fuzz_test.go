package trace

import (
	"bytes"
	"testing"

	"actdsm/internal/vm"
)

// FuzzTraceDecode checks the trace decoder never panics and decodes only
// canonical encodings.
func FuzzTraceDecode(f *testing.F) {
	tr := &Trace{Threads: 2, Pages: 2, Iterations: 1,
		Events: []Event{{Iter: 0, TID: 1, Page: vm.PageID(1), Write: true}}}
	f.Add(tr.Encode())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x41}, 40))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(data)
		if err != nil {
			return
		}
		if !bytes.Equal(got.Encode(), data) {
			t.Fatal("non-canonical trace round trip")
		}
	})
}
