// Package trace records page-access streams from live application runs
// and replays them as synthetic workloads. A trace makes sharing analysis
// repeatable and offline: correlation matrices can be computed directly
// from the stream (no DSM run needed), captured workloads can be replayed
// against different cluster configurations or protocols, and traces
// serialize to a compact binary format for storage.
package trace

import (
	"errors"
	"fmt"

	"actdsm/internal/core"
	"actdsm/internal/vm"
)

// Event is one page access by one thread.
type Event struct {
	// Iter is the application iteration the access occurred in.
	Iter int32
	// TID is the accessing thread.
	TID int32
	// Page is the page touched.
	Page vm.PageID
	// Write marks write accesses.
	Write bool
}

// Trace is a recorded access stream plus the shape needed to replay it.
type Trace struct {
	// Threads is the thread count of the traced run.
	Threads int
	// Pages is the shared-segment size of the traced run.
	Pages int
	// Iterations is the number of iterations covered.
	Iterations int
	// Events is the access stream in program order.
	Events []Event
}

// ErrMalformed reports an undecodable trace.
var ErrMalformed = errors.New("trace: malformed")

// Validate checks internal consistency.
func (t *Trace) Validate() error {
	if t.Threads <= 0 || t.Pages <= 0 || t.Iterations < 0 {
		return fmt.Errorf("trace: bad shape %d threads / %d pages / %d iterations",
			t.Threads, t.Pages, t.Iterations)
	}
	for i, e := range t.Events {
		if e.TID < 0 || int(e.TID) >= t.Threads {
			return fmt.Errorf("trace: event %d: thread %d out of range", i, e.TID)
		}
		if e.Page < 0 || int(e.Page) >= t.Pages {
			return fmt.Errorf("trace: event %d: page %d out of range", i, e.Page)
		}
		if e.Iter < 0 || int(e.Iter) >= t.Iterations {
			return fmt.Errorf("trace: event %d: iteration %d out of range", i, e.Iter)
		}
	}
	return nil
}

// Matrix computes the thread-correlation matrix offline: threads
// correlate by the number of distinct pages both touch, exactly as active
// correlation tracking would report for the same accesses (restricted to
// iteration iter; pass -1 for all iterations).
func (t *Trace) Matrix(iter int) *core.Matrix {
	bitmaps := make([]*vm.Bitmap, t.Threads)
	for i := range bitmaps {
		bitmaps[i] = vm.NewBitmap(t.Pages)
	}
	for _, e := range t.Events {
		if iter >= 0 && int(e.Iter) != iter {
			continue
		}
		bitmaps[e.TID].Set(e.Page)
	}
	return core.FromBitmaps(bitmaps)
}

// Densities computes per-thread per-page access counts (the density
// tracker's view) for iteration iter (-1 for all).
func (t *Trace) Densities(iter int) [][]int64 {
	out := make([][]int64, t.Threads)
	for i := range out {
		out[i] = make([]int64, t.Pages)
	}
	for _, e := range t.Events {
		if iter >= 0 && int(e.Iter) != iter {
			continue
		}
		out[e.TID][e.Page]++
	}
	return out
}

// Encode serializes the trace:
//
//	[u32 magic][u32 threads][u32 pages][u32 iterations][u32 nevents]
//	then per event: [u32 iter][u32 tid][u32 page|writeBit<<31]
const traceMagic = 0x41435431 // "ACT1"

// Encode serializes the trace to its binary format.
func (t *Trace) Encode() []byte {
	out := make([]byte, 0, 20+12*len(t.Events))
	putU32 := func(v uint32) { out = append(out, byte(v), byte(v>>8), byte(v>>16), byte(v>>24)) }
	putU32(traceMagic)
	putU32(uint32(t.Threads))
	putU32(uint32(t.Pages))
	putU32(uint32(t.Iterations))
	putU32(uint32(len(t.Events)))
	for _, e := range t.Events {
		putU32(uint32(e.Iter))
		putU32(uint32(e.TID))
		pw := uint32(e.Page)
		if e.Write {
			pw |= 1 << 31
		}
		putU32(pw)
	}
	return out
}

// Decode parses a trace produced by Encode and validates it.
func Decode(b []byte) (*Trace, error) {
	if len(b) < 20 {
		return nil, fmt.Errorf("%w: short header", ErrMalformed)
	}
	u32 := func(off int) uint32 {
		return uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24
	}
	if u32(0) != traceMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrMalformed)
	}
	t := &Trace{
		Threads:    int(u32(4)),
		Pages:      int(u32(8)),
		Iterations: int(u32(12)),
	}
	n := int(u32(16))
	if n < 0 || len(b) != 20+12*n {
		return nil, fmt.Errorf("%w: %d events but %d bytes", ErrMalformed, n, len(b))
	}
	t.Events = make([]Event, n)
	for i := 0; i < n; i++ {
		off := 20 + 12*i
		pw := u32(off + 8)
		t.Events[i] = Event{
			Iter:  int32(u32(off)),
			TID:   int32(u32(off + 4)),
			Page:  vm.PageID(pw &^ (1 << 31)),
			Write: pw&(1<<31) != 0,
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
