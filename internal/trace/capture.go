package trace

import (
	"fmt"

	"actdsm/internal/memlayout"
	"actdsm/internal/threads"
	"actdsm/internal/vm"
)

// Recorder captures a Trace from a live engine via the cluster's access
// hook. Create it before the run; the trace is complete once the run
// finishes.
type Recorder struct {
	trace *Trace
	iter  int32
}

// NewRecorder attaches a recorder to the engine's cluster via an access
// hook; hooks compose, so a recorder can coexist with a DensityTracker on
// the same run.
func NewRecorder(e *threads.Engine) *Recorder {
	r := &Recorder{
		trace: &Trace{
			Threads: e.NumThreads(),
			Pages:   e.Cluster().NumPages(),
		},
	}
	e.Cluster().AddAccessHook(func(node, tid int, p vm.PageID, a vm.Access) {
		r.trace.Events = append(r.trace.Events, Event{
			Iter:  r.iter,
			TID:   int32(tid),
			Page:  p,
			Write: a == vm.Write,
		})
	})
	return r
}

// Hooks wraps next with iteration windowing; install with engine.SetHooks.
func (r *Recorder) Hooks(next threads.Hooks) threads.Hooks {
	return threads.Hooks{
		OnIteration: func(iter int) {
			r.iter = int32(iter + 1)
			r.trace.Iterations = iter + 1
			if next.OnIteration != nil {
				next.OnIteration(iter)
			}
		},
		OnBarrier:   next.OnBarrier,
		OnThreadRun: next.OnThreadRun,
	}
}

// Trace returns the captured trace (valid after the run completes; trims
// trailing post-final-iteration events).
func (r *Recorder) Trace() *Trace {
	// Events stamped with iter == Iterations happened after the last
	// EndIteration (thread teardown); drop them.
	evs := r.trace.Events
	for len(evs) > 0 && int(evs[len(evs)-1].Iter) >= r.trace.Iterations {
		evs = evs[:len(evs)-1]
	}
	r.trace.Events = evs
	return r.trace
}

// ReplayBody returns per-thread bodies that re-issue the trace's accesses
// against a live cluster: each thread walks its own event subsequence,
// issuing one span per event and an EndIteration at each iteration
// boundary. Replay preserves each thread's program order; cross-thread
// interleaving within an iteration follows the engine's scheduling, as it
// did in the original run.
func (t *Trace) ReplayBody() func(tid int) threads.Body {
	// Pre-split events per thread.
	perThread := make([][]Event, t.Threads)
	for _, e := range t.Events {
		perThread[e.TID] = append(perThread[e.TID], e)
	}
	return func(tid int) threads.Body {
		evs := perThread[tid]
		return func(ctx *threads.Ctx) error {
			i := 0
			for iter := 0; iter < t.Iterations; iter++ {
				for i < len(evs) && int(evs[i].Iter) == iter {
					e := evs[i]
					acc := vm.Read
					if e.Write {
						acc = vm.Write
					}
					b, err := ctx.Span(int(e.Page)*memlayout.PageSize, 8, acc)
					if err != nil {
						return fmt.Errorf("trace: replay thread %d event %d: %w", tid, i, err)
					}
					if e.Write {
						// Make the write observable so the
						// protocol generates real diffs.
						b[0]++
					}
					ctx.Compute(8)
					i++
				}
				ctx.EndIteration()
			}
			return nil
		}
	}
}
