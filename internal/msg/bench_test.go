package msg

import "testing"

// benchMessages are the shapes the service hot path actually carries:
// a demand diff request, a one-diff reply, a batched reply, and a full
// page reply (4 KiB), exercising both small and large encodes.
func benchMessages() []Message {
	diff := make([]byte, 256)
	page := make([]byte, 4096)
	return []Message{
		&DiffRequest{From: 1, Page: 42, Intervals: []int32{3, 4, 5}},
		&DiffReply{Page: 42, Diffs: [][]byte{diff}},
		&DiffBatchReply{Pages: []PageDiffs{
			{Page: 42, Diffs: [][]byte{diff, diff}},
			{Page: 43, Diffs: [][]byte{diff}},
		}},
		&PageReply{Page: 42, Data: page, AppliedVT: []int32{1, 2, 3, 4}},
	}
}

// BenchmarkEncode measures the allocating Encode path (one exact-size
// allocation per message since Size computes directly).
func BenchmarkEncode(b *testing.B) {
	ms := benchMessages()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Encode(ms[i&3])
	}
}

// BenchmarkEncodeTo measures the pooled hot path: steady-state encodes
// into a reused buffer must be 0 allocs/op (the tentpole claim; also
// pinned by TestEncodeToZeroAlloc).
func BenchmarkEncodeTo(b *testing.B) {
	ms := benchMessages()
	buf := make([]byte, 0, 8192)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = EncodeTo(buf[:0], ms[i&3])
	}
}

// BenchmarkEncodeDecode measures a full round trip — what one protocol
// message costs each endpoint in pure codec work.
func BenchmarkEncodeDecode(b *testing.B) {
	ms := benchMessages()
	buf := make([]byte, 0, 8192)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = EncodeTo(buf[:0], ms[i&3])
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSize pins the Size bugfix: computing a message's wire size
// must not encode it (it used to cost a full throwaway Encode).
func BenchmarkSize(b *testing.B) {
	ms := benchMessages()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Size(ms[i&3])
	}
}
