package msg

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecode checks the wire decoder never panics and that every
// successfully decoded message re-encodes to the identical bytes
// (canonical round trip). The seed corpus covers every message kind,
// including the optional fields (BarrierEnter.Hot, BarrierRelease.Push,
// lock-grant positions) and the batched diff transfer pair.
func FuzzDecode(f *testing.F) {
	seeds := []Message{
		&PageRequest{From: 1, Page: 2, Pending: []Notice{{Page: 2, Writer: 0, Interval: 1, Lam: 1}}},
		&PageReply{Page: 2, Data: []byte{1, 2, 3}, AppliedVT: []int32{0, 1}},
		&DiffRequest{From: 0, Page: 1, Intervals: []int32{1, 2}},
		&DiffReply{Page: 1, Diffs: [][]byte{{0, 0, 4, 0, 9, 9, 9, 9}, nil}},
		&BarrierEnter{Node: 1, Episode: 3, Lam: 4},
		&BarrierEnter{Node: 2, Episode: 3, Lam: 5,
			Notices: []Notice{{Page: 0, Writer: 2, Interval: 4, Lam: 5}},
			Hot:     []int32{0, 3, 7}},
		&BarrierEnter{Node: 5, Episode: 3, Lam: 6,
			Entered: []int32{5, 11, 12},
			HotSets: []NodeHot{{Node: 5, Pages: []int32{2}}, {Node: 11, Pages: []int32{}}}},
		&BarrierRelease{Episode: 3, Lam: 4, Notices: []Notice{{Page: 1, Writer: 1, Interval: 1, Lam: 1}}},
		&BarrierRelease{Episode: 4, Lam: 9,
			Notices: []Notice{{Page: 1, Writer: 1, Interval: 2, Lam: 8}},
			Push:    []PushedDiff{{Page: 1, Writer: 1, Interval: 2, Diff: []byte{0, 0, 4, 0, 1, 2, 3, 4}}}},
		&BarrierRelease{Episode: 5, Lam: 10,
			Homes: []PageHome{{Page: 2, Home: 1}},
			Relay: []NodePush{{Node: 3, Push: []PushedDiff{{Page: 2, Writer: 0, Interval: 1, Diff: []byte{0, 0, 4, 0, 9, 9, 9, 9}}}}}},
		&LockPull{Node: 2, Lock: 7, Seen: []int32{1, 0, 4}},
		&LockAcquire{Node: 0, Lock: 7, Seen: []int32{1, 2}},
		&LockAcquire{Node: 3, Lock: 1, Pos: 5, Seen: []int32{0, 0, 2, 1}},
		&LockGrant{Lock: 7, Lam: 2},
		&LockGrant{Lock: 1, Lam: 6, Pos: 8,
			Notices: []Notice{{Page: 2, Writer: 0, Interval: 3, Lam: 6}}},
		&LockRelease{Node: 0, Lock: 7, Lam: 2},
		&LockRelease{Node: 1, Lock: 0, Lam: 9,
			Notices: []Notice{{Page: 5, Writer: 1, Interval: 2, Lam: 9}}},
		&GCCollect{Page: 3},
		&Ack{},
		&SWRead{From: 1, Page: 0},
		&SWWrite{From: 1, Page: 0},
		&SWDowngrade{Page: 0},
		&SWFlush{Page: 0},
		&SWInvalidate{Page: 0},
		&DiffBatchRequest{From: 2, Pages: []PageIntervals{
			{Page: 0, Intervals: []int32{1, 2}},
			{Page: 4, Intervals: []int32{3}},
		}},
		&DiffBatchReply{Pages: []PageDiffs{
			{Page: 0, Diffs: [][]byte{{0, 0, 4, 0, 1, 2, 3, 4}, nil}},
			{Page: 4, Diffs: [][]byte{nil}},
		}},
		&ReplicaDelta{Origin: 1, Seq: 2, Interval: 3, Lam: 4,
			Notices: []Notice{{Page: 1, Writer: 1, Interval: 3, Lam: 4}},
			Diffs:   [][]byte{{0, 0, 4, 0, 9, 9, 9, 9}},
			Known:   []Notice{{Page: 0, Writer: 2, Interval: 1, Lam: 2}}},
		&RejoinRequest{Node: 2},
		&RejoinReply{Interval: 5, Lam: 9, Seen: []int32{2, 0, 1}, Homes: []int32{0, 1, 2}},
	}
	for _, m := range seeds {
		f.Add(Encode(m))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x01, 0x02})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(m)
		if !bytes.Equal(re, data) {
			t.Fatalf("non-canonical round trip:\nin:  % x\nout: % x", data, re)
		}
	})
}

// FuzzEncodeDecodeRoundTrip approaches the codec from the other side:
// it builds a structurally valid message of an arbitrary kind from fuzzed
// field values, encodes it, and requires Decode to reproduce it exactly
// (deep equality and byte-identical re-encoding). FuzzDecode can only
// explore inputs the decoder accepts; this target proves the encoder
// never produces bytes the decoder mangles.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add(uint8(1), int32(1), int32(2), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(4), int32(-1), int32(0), []byte{})
	f.Add(uint8(6), int32(3), int32(9), []byte{9, 8, 7, 6, 5})
	f.Add(uint8(17), int32(2), int32(1), []byte{0, 0, 4, 0})
	f.Add(uint8(18), int32(0), int32(7), []byte{1})

	f.Fuzz(func(t *testing.T, kind uint8, a, b int32, blob []byte) {
		m := buildFuzzMessage(Kind(int(kind)%KindCount), a, b, blob)
		if m == nil {
			return // Kind 0 is invalid by construction.
		}
		enc := Encode(m)
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode of encoder output failed: %v\nmsg: %#v\nbytes: % x", err, m, enc)
		}
		if got.Kind() != m.Kind() {
			t.Fatalf("kind changed: %v -> %v", m.Kind(), got.Kind())
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("round trip not exact:\nin:  %#v\nout: %#v", m, got)
		}
		if re := Encode(got); !bytes.Equal(re, enc) {
			t.Fatalf("re-encode diverged:\nin:  % x\nout: % x", enc, re)
		}
	})
}

// buildFuzzMessage constructs a message of the given kind from fuzzed
// scalars and a byte blob. Variable-length fields derive their sizes and
// contents from the blob so the fuzzer controls shape as well as values.
// Empty slices are built as nil (the codec's canonical form for absent
// fields), keeping reflect.DeepEqual meaningful.
func buildFuzzMessage(k Kind, a, b int32, blob []byte) Message {
	n := len(blob) % 4 // small element counts: 0..3
	switch k {
	case KindPageRequest:
		return &PageRequest{From: a, Page: b, Pending: fuzzNotices(blob, n)}
	case KindPageReply:
		return &PageReply{Page: a, Data: fuzzBytes(blob, 0), AppliedVT: fuzzI32s(blob, n)}
	case KindDiffRequest:
		return &DiffRequest{From: a, Page: b, Intervals: fuzzI32s(blob, n)}
	case KindDiffReply:
		return &DiffReply{Page: a, Diffs: fuzzDiffs(blob, n)}
	case KindBarrierEnter:
		// Hot, Entered and HotSets are optional fields: the decoder
		// leaves them nil when empty.
		var hot, entered []int32
		var hotSets []NodeHot
		if n > 0 {
			hot = fuzzI32s(blob, n)
			entered = fuzzI32s(blob, (n+1)%4+1)
			for i := 0; i < n; i++ {
				hotSets = append(hotSets, NodeHot{
					Node: fuzzI32(blob, i), Pages: fuzzI32s(blob, (n+i)%4),
				})
			}
		}
		return &BarrierEnter{Node: a, Episode: b, Lam: a ^ b,
			Notices: fuzzNotices(blob, n), Hot: hot, Entered: entered, HotSets: hotSets}
	case KindBarrierRelease:
		push := fuzzPushes(blob, n)
		var homes []PageHome
		var relay []NodePush
		for i := 0; i < n; i++ {
			homes = append(homes, PageHome{Page: fuzzI32(blob, i), Home: fuzzI32(blob, i+1)})
			relay = append(relay, NodePush{Node: fuzzI32(blob, i), Push: fuzzPushes(blob, (n+i)%4)})
		}
		return &BarrierRelease{Episode: a, Lam: b, Notices: fuzzNotices(blob, n),
			Push: push, Homes: homes, Relay: relay}
	case KindLockAcquire:
		return &LockAcquire{Node: a, Lock: b, Pos: a + b, Seen: fuzzI32s(blob, n)}
	case KindLockGrant:
		return &LockGrant{Lock: a, Lam: b, Pos: a - b, Holder: b - a, Notices: fuzzNotices(blob, n)}
	case KindLockRelease:
		return &LockRelease{Node: a, Lock: b, Lam: a, Notices: fuzzNotices(blob, n)}
	case KindGCCollect:
		return &GCCollect{Page: a}
	case KindAck:
		return &Ack{}
	case KindSWRead:
		return &SWRead{From: a, Page: b}
	case KindSWWrite:
		return &SWWrite{From: a, Page: b}
	case KindSWDowngrade:
		return &SWDowngrade{Page: a}
	case KindSWFlush:
		return &SWFlush{Page: a}
	case KindSWInvalidate:
		return &SWInvalidate{Page: a}
	case KindDiffBatchRequest:
		pages := make([]PageIntervals, n)
		for i := range pages {
			pages[i] = PageIntervals{
				Page: fuzzI32(blob, i), Intervals: fuzzI32s(blob, (n+i)%4),
			}
		}
		return &DiffBatchRequest{From: a, Pages: pages}
	case KindDiffBatchReply:
		pages := make([]PageDiffs, n)
		for i := range pages {
			pages[i] = PageDiffs{Page: fuzzI32(blob, i), Diffs: fuzzDiffs(blob, (n+i)%4)}
		}
		return &DiffBatchReply{Pages: pages}
	case KindLockPull:
		return &LockPull{Node: a, Lock: b, Holder: a ^ b, Seen: fuzzI32s(blob, n)}
	case KindReplicaDelta:
		return &ReplicaDelta{Origin: a, Seq: b, Interval: a + b, Lam: a - b,
			Notices: fuzzNotices(blob, n), Diffs: fuzzDiffs(blob, n),
			Known: fuzzNotices(blob, (n+1)%4)}
	case KindRejoinRequest:
		return &RejoinRequest{Node: a}
	case KindRejoinReply:
		return &RejoinReply{Interval: a, Lam: b,
			Seen: fuzzI32s(blob, n), Homes: fuzzI32s(blob, (n+2)%4)}
	default:
		return nil
	}
}

// fuzzPushes builds a pushed-diff list, nil when empty (the decoder's
// canonical form for absent push lists).
func fuzzPushes(blob []byte, n int) []PushedDiff {
	var out []PushedDiff
	for i := 0; i < n; i++ {
		out = append(out, PushedDiff{
			Page: fuzzI32(blob, i), Writer: fuzzI32(blob, i+1),
			Interval: fuzzI32(blob, i+2), Diff: fuzzBytes(blob, i),
		})
	}
	return out
}

// fuzzI32 derives the i-th int32 from the blob (0 when the blob is empty).
func fuzzI32(blob []byte, i int) int32 {
	if len(blob) == 0 {
		return 0
	}
	var v int32
	for j := 0; j < 4; j++ {
		v = v<<8 | int32(blob[(4*i+j)%len(blob)])
	}
	return v
}

func fuzzI32s(blob []byte, n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = fuzzI32(blob, i)
	}
	return out
}

func fuzzNotices(blob []byte, n int) []Notice {
	out := make([]Notice, n)
	for i := range out {
		out[i] = Notice{
			Page:     fuzzI32(blob, 4*i),
			Writer:   fuzzI32(blob, 4*i+1),
			Interval: fuzzI32(blob, 4*i+2),
			Lam:      fuzzI32(blob, 4*i+3),
		}
	}
	return out
}

// fuzzBytes returns a rotation of the blob. Empty blobs yield an empty
// non-nil slice — the decoder's canonical form for zero-length byte
// fields (nil is reserved for the bytesOrNil absent marker).
func fuzzBytes(blob []byte, rot int) []byte {
	if len(blob) == 0 {
		return []byte{}
	}
	rot %= len(blob)
	out := make([]byte, 0, len(blob))
	out = append(out, blob[rot:]...)
	return append(out, blob[:rot]...)
}

// fuzzDiffs builds a diff slice where entries alternate between present
// and nil (the wire format's "diff garbage-collected" marker).
func fuzzDiffs(blob []byte, n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		if i%2 == 0 {
			out[i] = fuzzBytes(blob, i)
		}
	}
	return out
}
