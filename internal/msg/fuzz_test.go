package msg

import (
	"bytes"
	"testing"
)

// FuzzDecode checks the wire decoder never panics and that every
// successfully decoded message re-encodes to the identical bytes
// (canonical round trip).
func FuzzDecode(f *testing.F) {
	seeds := []Message{
		&PageRequest{From: 1, Page: 2, Pending: []Notice{{Page: 2, Writer: 0, Interval: 1, Lam: 1}}},
		&PageReply{Page: 2, Data: []byte{1, 2, 3}, AppliedVT: []int32{0, 1}},
		&DiffRequest{From: 0, Page: 1, Intervals: []int32{1, 2}},
		&DiffReply{Page: 1, Diffs: [][]byte{{0, 0, 4, 0, 9, 9, 9, 9}, nil}},
		&BarrierEnter{Node: 1, Episode: 3, Lam: 4},
		&BarrierRelease{Episode: 3, Lam: 4, Notices: []Notice{{Page: 1, Writer: 1, Interval: 1, Lam: 1}}},
		&LockAcquire{Node: 0, Lock: 7, Seen: []int32{1, 2}},
		&LockGrant{Lock: 7, Lam: 2},
		&LockRelease{Node: 0, Lock: 7, Lam: 2},
		&GCCollect{Page: 3},
		&Ack{},
		&SWRead{From: 1, Page: 0},
		&SWWrite{From: 1, Page: 0},
		&SWDowngrade{Page: 0},
		&SWFlush{Page: 0},
		&SWInvalidate{Page: 0},
	}
	for _, m := range seeds {
		f.Add(Encode(m))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x01, 0x02})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(m)
		if !bytes.Equal(re, data) {
			t.Fatalf("non-canonical round trip:\nin:  % x\nout: % x", data, re)
		}
	})
}
