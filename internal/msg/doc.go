// Package msg defines the DSM's wire protocol: the messages exchanged
// between nodes for page fetches, diff fetches, barriers, locks, and diff
// garbage collection, together with a compact binary encoding.
//
// Both transports (in-process and TCP) carry the encoded form, so the byte
// counts the experiments report ("Total Mbytes", "Diff Mbytes" in the
// paper's Table 6) are the real sizes of real messages.
//
// # Encoding and the hot path
//
// Encode allocates exactly once: Size computes every message's wire size
// directly (no trial encode), so the output buffer is sized before the
// first byte is written. For the protocol service path, EncodeTo appends
// to a caller-provided buffer and GetBuf/PutBuf expose a sync.Pool of
// reusable buffers, so steady-state encodes perform zero allocations.
// Decode always copies byte payloads out of the input buffer, which is
// what makes recycling encode buffers safe: no decoded message aliases a
// pooled buffer.
package msg
