package msg

import (
	"bytes"
	"testing"
	"testing/quick"
)

// sizeCorpus returns at least one instance of every message kind,
// including edge shapes (nil vs empty slices, nil diff entries) whose
// encodings differ from the common case.
func sizeCorpus() []Message {
	ns := []Notice{{Page: 1, Writer: 2, Interval: 3, Lam: 7}, {Page: 9, Interval: -1}}
	return []Message{
		&PageRequest{From: 3, Page: 77, Pending: ns},
		&PageRequest{},
		&PageReply{Page: 77, Data: []byte{1, 2, 3, 4, 5}, AppliedVT: []int32{1, 0, 4}},
		&PageReply{Page: 1, Data: []byte{}},
		&DiffRequest{From: 1, Page: 2, Intervals: []int32{4, 5, 6}},
		&DiffRequest{},
		&DiffReply{Page: 2, Diffs: [][]byte{{1, 2}, nil, {}}},
		&DiffReply{Page: 2},
		&BarrierEnter{Node: 1, Episode: 12, Lam: 3, Notices: ns},
		&BarrierEnter{Node: 2, Episode: 13, Lam: 4, Hot: []int32{0, 5, 17}},
		&BarrierEnter{Node: 3, Episode: 14, Lam: 5, Notices: ns,
			Entered: []int32{3, 7, 8},
			HotSets: []NodeHot{{Node: 3, Pages: []int32{1, 2}}, {Node: 7}}},
		&BarrierRelease{Episode: 12, Lam: 9, Notices: ns},
		&BarrierRelease{Episode: 13, Lam: 10, Notices: ns, Push: []PushedDiff{
			{Page: 5, Writer: 1, Interval: 2, Diff: []byte{9, 8, 7}},
			{Page: 17, Interval: 4, Diff: []byte{1}},
		}},
		&BarrierRelease{Episode: 14, Lam: 11, Notices: ns,
			Homes: []PageHome{{Page: 3, Home: 1}, {Page: 9, Home: 0}},
			Relay: []NodePush{
				{Node: 4, Push: []PushedDiff{{Page: 2, Writer: 1, Interval: 3, Diff: []byte{5, 5}}}},
				{Node: 9},
			}},
		&LockAcquire{Node: 2, Lock: 5, Pos: 3, Seen: []int32{0, 3, 9}},
		&LockGrant{Lock: 5, Lam: 2, Pos: 7, Notices: ns},
		&LockGrant{Lock: 6, Lam: 3, Holder: -1},
		&LockRelease{Node: 2, Lock: 5, Lam: 4},
		&LockPull{Node: 1, Lock: 5, Seen: []int32{2, 0, 7}},
		&LockPull{},
		&GCCollect{Page: 4},
		&Ack{},
		&SWRead{From: 1, Page: 2},
		&SWWrite{From: 3, Page: 4},
		&SWDowngrade{Page: 5},
		&SWFlush{Page: 6},
		&SWInvalidate{Page: 7},
		&DiffBatchRequest{From: 2, Pages: []PageIntervals{
			{Page: 4, Intervals: []int32{1, 2, 9}},
			{Page: 8},
		}},
		&DiffBatchRequest{},
		&DiffBatchReply{Pages: []PageDiffs{
			{Page: 4, Diffs: [][]byte{{1, 2}, nil, {}}},
			{Page: 8},
		}},
		&DiffBatchReply{},
		&ReplicaDelta{Origin: 1, Seq: 4, Interval: 3, Lam: 9, Notices: ns,
			Diffs: [][]byte{{1, 2}, nil}, Known: ns},
		&ReplicaDelta{Origin: 2, Seq: 5, Interval: 3, Lam: 10},
		&RejoinRequest{Node: 3},
		&RejoinReply{Interval: 7, Lam: 12, Seen: []int32{1, 0, 4}, Homes: []int32{0, 1, 2, 0}},
		&RejoinReply{},
	}
}

// TestSizeAllKinds is the equivalence test for the direct Size
// computation: Size(m) must equal len(Encode(m)) for every kind, and
// the corpus must cover every kind so a new message type cannot ship
// without a size rule.
func TestSizeAllKinds(t *testing.T) {
	covered := make(map[Kind]bool)
	for _, m := range sizeCorpus() {
		covered[m.Kind()] = true
		b := Encode(m)
		if got, want := Size(m), len(b); got != want {
			t.Errorf("%T: Size = %d, len(Encode) = %d", m, got, want)
		}
		// Encode presizes with Size, so the allocation must be exact.
		if cap(b) != len(b) {
			t.Errorf("%T: Encode buffer cap %d != len %d (Size over-estimated)", m, cap(b), len(b))
		}
	}
	for k := Kind(1); int(k) < KindCount; k++ {
		if !covered[k] {
			t.Errorf("size corpus missing kind %v", k)
		}
	}
}

// TestSizeQuick hammers the variable-length messages with random
// shapes: the hand-written size rules must track the encoder exactly.
func TestSizeQuick(t *testing.T) {
	check := func(data []byte, vt []int32, nNotices uint8) bool {
		ns := make([]Notice, int(nNotices)%37)
		m1 := &PageReply{Page: 1, Data: data, AppliedVT: vt}
		m2 := &BarrierRelease{Lam: 1, Notices: ns, Push: []PushedDiff{{Diff: data}}}
		m3 := &DiffBatchReply{Pages: []PageDiffs{{Page: 2, Diffs: [][]byte{data, nil}}}}
		return Size(m1) == len(Encode(m1)) &&
			Size(m2) == len(Encode(m2)) &&
			Size(m3) == len(Encode(m3))
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeTo pins the append contract: EncodeTo appends after any
// existing bytes, produces exactly the Encode image, and reusing a
// pooled buffer round-trips through Decode.
func TestEncodeTo(t *testing.T) {
	for _, m := range sizeCorpus() {
		want := Encode(m)
		// Appends after a prefix.
		withPrefix := EncodeTo([]byte{0xaa, 0xbb}, m)
		if !bytes.Equal(withPrefix[:2], []byte{0xaa, 0xbb}) || !bytes.Equal(withPrefix[2:], want) {
			t.Fatalf("%T: EncodeTo prefix mismatch", m)
		}
		// Nil buffer works.
		if !bytes.Equal(EncodeTo(nil, m), want) {
			t.Fatalf("%T: EncodeTo(nil) != Encode", m)
		}
		// Pooled-buffer path round-trips.
		pb := EncodeTo(GetBuf(), m)
		got, err := Decode(pb)
		if err != nil {
			t.Fatalf("%T: decode pooled encode: %v", m, err)
		}
		if got.Kind() != m.Kind() {
			t.Fatalf("%T: kind mismatch after pooled encode", m)
		}
		PutBuf(pb)
	}
}

// TestEncodeToZeroAlloc pins the hot-path claim: once a pooled buffer
// has grown to steady-state capacity, EncodeTo performs zero
// allocations per message.
func TestEncodeToZeroAlloc(t *testing.T) {
	m := &DiffRequest{From: 1, Page: 2, Intervals: []int32{4, 5, 6, 7}}
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(1000, func() {
		buf = EncodeTo(buf[:0], m)
	})
	if allocs != 0 {
		t.Fatalf("EncodeTo allocs/op = %v, want 0", allocs)
	}
	// And Size itself must not allocate (it used to Encode internally).
	allocs = testing.AllocsPerRun(1000, func() {
		_ = Size(m)
	})
	if allocs != 0 {
		t.Fatalf("Size allocs/op = %v, want 0", allocs)
	}
}
