package msg

import (
	"errors"
	"fmt"
	"sync"
)

// Kind discriminates message types on the wire.
type Kind uint8

// Message kinds.
const (
	KindPageRequest Kind = iota + 1
	KindPageReply
	KindDiffRequest
	KindDiffReply
	KindBarrierEnter
	KindBarrierRelease
	KindLockAcquire
	KindLockGrant
	KindLockRelease
	KindGCCollect
	KindAck
	// Single-writer protocol messages (the dsm package's alternative
	// protocol used by the multi-writer-vs-single-writer ablation).
	KindSWRead
	KindSWWrite
	KindSWDowngrade
	KindSWFlush
	KindSWInvalidate
	// Batched diff transfer (demand batching + prefetch): one request
	// fetches the diffs of many (page, interval) pairs from a single
	// writer node in a single round trip.
	KindDiffBatchRequest
	KindDiffBatchReply
	// Distributed lock managers: a requester redirected by a shard
	// manager (LockGrant.Holder) pulls the holder's release-time notice
	// history directly.
	KindLockPull
	// Fault tolerance: a replica delta ships a node's just-closed
	// interval (diffs included) and received-notice history to its ring
	// successor, so the successor can stand in for the node's manager
	// roles after a crash; the rejoin pair restores a restarted node's
	// synchronization state from that successor.
	KindReplicaDelta
	KindRejoinRequest
	KindRejoinReply
)

// KindCount is one past the highest Kind value, sized for arrays indexed
// by Kind (e.g. the DSM's per-message-type call statistics).
const KindCount = int(KindRejoinReply) + 1

// kindNames is indexed by Kind.
var kindNames = [KindCount]string{
	KindPageRequest:    "PageRequest",
	KindPageReply:      "PageReply",
	KindDiffRequest:    "DiffRequest",
	KindDiffReply:      "DiffReply",
	KindBarrierEnter:   "BarrierEnter",
	KindBarrierRelease: "BarrierRelease",
	KindLockAcquire:    "LockAcquire",
	KindLockGrant:      "LockGrant",
	KindLockRelease:    "LockRelease",
	KindGCCollect:      "GCCollect",
	KindAck:            "Ack",
	KindSWRead:         "SWRead",
	KindSWWrite:        "SWWrite",
	KindSWDowngrade:    "SWDowngrade",
	KindSWFlush:        "SWFlush",
	KindSWInvalidate:   "SWInvalidate",

	KindDiffBatchRequest: "DiffBatchRequest",
	KindDiffBatchReply:   "DiffBatchReply",
	KindLockPull:         "LockPull",

	KindReplicaDelta:  "ReplicaDelta",
	KindRejoinRequest: "RejoinRequest",
	KindRejoinReply:   "RejoinReply",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Valid reports whether k names a defined message kind.
func (k Kind) Valid() bool {
	return int(k) < len(kindNames) && kindNames[k] != ""
}

// ErrTruncated reports a decode attempt on a short buffer.
var ErrTruncated = errors.New("msg: truncated message")

// Notice is a write notice: writer modified page during its interval.
// Notices are the consistency information of lazy release consistency;
// receiving one invalidates the local copy of the page.
//
// Interval is the writer-local interval index (the key under which the
// writer stores the corresponding diff). Lam is the interval's Lamport
// timestamp: happens-before-ordered intervals have strictly increasing Lam
// values, so applying diffs in (Lam, Writer) order respects causality;
// intervals with equal Lam are concurrent and modify disjoint words.
type Notice struct {
	Page     int32
	Writer   int32
	Interval int32
	Lam      int32
}

// noticeWire is the encoded size of one Notice.
const noticeWire = 16

// Message is any DSM protocol message.
type Message interface {
	Kind() Kind
	encodeBody(e *encoder)
	decodeBody(d *decoder) error
	// sizeBody returns the encoded body size in bytes, computed
	// directly from the message fields (no trial encode). Size and
	// Encode rely on it; TestSizeMatchesEncode pins the equivalence.
	sizeBody() int
}

// Compile-time interface checks.
var (
	_ Message = (*PageRequest)(nil)
	_ Message = (*PageReply)(nil)
	_ Message = (*DiffRequest)(nil)
	_ Message = (*DiffReply)(nil)
	_ Message = (*BarrierEnter)(nil)
	_ Message = (*BarrierRelease)(nil)
	_ Message = (*LockAcquire)(nil)
	_ Message = (*LockGrant)(nil)
	_ Message = (*LockRelease)(nil)
	_ Message = (*GCCollect)(nil)
	_ Message = (*Ack)(nil)
	_ Message = (*SWRead)(nil)
	_ Message = (*SWWrite)(nil)
	_ Message = (*SWDowngrade)(nil)
	_ Message = (*SWFlush)(nil)
	_ Message = (*SWInvalidate)(nil)
	_ Message = (*DiffBatchRequest)(nil)
	_ Message = (*DiffBatchReply)(nil)
	_ Message = (*LockPull)(nil)
	_ Message = (*ReplicaDelta)(nil)
	_ Message = (*RejoinRequest)(nil)
	_ Message = (*RejoinReply)(nil)
)

// PageRequest asks the page manager for a full copy of Page. Pending lists
// the write notices the requester knows are outstanding against the page,
// so the manager can bring its own copy current before replying.
type PageRequest struct {
	From    int32
	Page    int32
	Pending []Notice
}

// Kind implements Message.
func (*PageRequest) Kind() Kind { return KindPageRequest }

// PageReply carries a full, current page image. AppliedVT is the
// manager's per-writer applied-interval vector for the page after bringing
// it current, so the requester knows which future notices are stale.
type PageReply struct {
	Page      int32
	Data      []byte
	AppliedVT []int32
}

// Kind implements Message.
func (*PageReply) Kind() Kind { return KindPageReply }

// DiffRequest asks a writer node for the diffs it created for Page in each
// of Intervals. Writer names the node that authored the diffs; it equals
// the destination in normal operation, but under fault tolerance a
// request for a crashed writer's diffs is routed to that writer's ring
// successor, which serves them from its replica store.
type DiffRequest struct {
	From      int32
	Page      int32
	Writer    int32
	Intervals []int32
}

// Kind implements Message.
func (*DiffRequest) Kind() Kind { return KindDiffRequest }

// DiffReply carries the requested diffs, aligned with the request's
// Intervals. A nil entry means the writer no longer stores that diff
// (garbage-collected); the requester must fall back to a full page fetch.
type DiffReply struct {
	Page  int32
	Diffs [][]byte
}

// Kind implements Message.
func (*DiffReply) Kind() Kind { return KindDiffReply }

// BarrierEnter announces a node's arrival at barrier Episode, carrying the
// write notices the node created since the last barrier and the node's
// Lamport clock. Hot (present only when prefetch is enabled) lists the
// pages the node predicts its threads will touch in the coming epoch; the
// manager uses it to piggyback matching diffs on the node's release.
type BarrierEnter struct {
	Node    int32
	Episode int32
	Lam     int32
	Notices []Notice
	Hot     []int32
	// Tree-barrier aggregation (present only when BarrierArity >= 2).
	// An interior node forwards one enter to its parent on behalf of its
	// whole subtree: Entered lists every node folded into the aggregate
	// (including the sender) and HotSets carries each member's hot-page
	// prediction. Flat barriers leave both nil and use Hot.
	Entered []int32
	HotSets []NodeHot
}

// NodeHot is one node's hot-page prediction inside an aggregated
// tree-barrier enter.
type NodeHot struct {
	Node  int32
	Pages []int32
}

// Kind implements Message.
func (*BarrierEnter) Kind() Kind { return KindBarrierEnter }

// PushedDiff is one diff piggybacked on a barrier release: the diff of
// (Page, Writer, Interval). Its Lamport stamp travels in the release's
// notice for the same triple.
type PushedDiff struct {
	Page     int32
	Writer   int32
	Interval int32
	Diff     []byte
}

// BarrierRelease is the manager's broadcast releasing barrier Episode; it
// carries the union of all nodes' notices for the episode and the maximum
// Lamport clock across entrants. Push (present only when prefetch is
// enabled) carries the diffs matching the destination node's predicted
// hot pages, so the node applies them at release time instead of paying a
// demand round trip per page — the data rides a message that was being
// sent anyway.
type BarrierRelease struct {
	Episode int32
	Lam     int32
	Notices []Notice
	Push    []PushedDiff
	// Homes (present only when HomeMigration is on) lists the page-home
	// reassignments the root computed for the closing epoch; every node
	// applies them at release time, so all home tables move in lockstep
	// while application threads are parked.
	Homes []PageHome
	// Relay (present only when BarrierArity >= 2) carries the pushed
	// diffs for the destination's descendants; the destination forwards
	// each entry down its subtree during the tree fan-out.
	Relay []NodePush
}

// PageHome is one page-home reassignment broadcast in a barrier release.
type PageHome struct {
	Page int32
	Home int32
}

// NodePush is the pushed-diff list destined for one descendant node,
// relayed through the tree-barrier fan-out.
type NodePush struct {
	Node int32
	Push []PushedDiff
}

// Kind implements Message.
func (*BarrierRelease) Kind() Kind { return KindBarrierRelease }

// LockAcquire asks a lock's manager for the lock. Seen is the requester's
// vector time (highest interval seen per node), letting the manager filter
// the notices the grant must carry. Pos is the prefix of the manager's
// shared notice log the requester has already received and applied — the
// requester echoes the Pos of the last grant it processed, so the mark
// only advances once delivery is confirmed and a retried acquire (lost
// grant reply) is re-served the identical suffix.
type LockAcquire struct {
	Node int32
	Lock int32
	Pos  int32
	Seen []int32
}

// Kind implements Message.
func (*LockAcquire) Kind() Kind { return KindLockAcquire }

// LockGrant hands over the lock with the consistency information
// (write notices) the acquirer has not yet seen, and the Lamport clock of
// the last release. Pos is the manager-log length the grant brings the
// requester up to; the requester stores it after applying Notices and
// echoes it in its next LockAcquire.
type LockGrant struct {
	Lock int32
	Lam  int32
	Pos  int32
	// Holder is the node that last released the lock this episode, or -1
	// when none (or when grant forwarding is off). Under grant forwarding
	// the shard manager keeps no notice log; a requester redirected to a
	// different holder pulls that node's history with a LockPull.
	Holder  int32
	Notices []Notice
}

// Kind implements Message.
func (*LockGrant) Kind() Kind { return KindLockGrant }

// LockRelease returns the lock to its manager with the notices generated
// by the releaser's just-closed interval and the releaser's Lamport clock.
type LockRelease struct {
	Node    int32
	Lock    int32
	Lam     int32
	Notices []Notice
}

// Kind implements Message.
func (*LockRelease) Kind() Kind { return KindLockRelease }

// GCCollect tells a node that Page has been consolidated at the page
// manager: drop stored diffs for it and, unless this node is the manager,
// invalidate the local copy (paper §2: garbage collections invalidate
// replicas rather than updating them).
type GCCollect struct {
	Page int32
}

// Kind implements Message.
func (*GCCollect) Kind() Kind { return KindGCCollect }

// Ack is the empty success reply.
type Ack struct{}

// Kind implements Message.
func (*Ack) Kind() Kind { return KindAck }

// SWRead asks the page's manager for a read copy (single-writer
// protocol). The reply is a PageReply.
type SWRead struct {
	From int32
	Page int32
}

// Kind implements Message.
func (*SWRead) Kind() Kind { return KindSWRead }

// SWWrite asks the page's manager for ownership (single-writer protocol):
// the manager flushes the current owner, invalidates all replicas, and
// replies with a PageReply.
type SWWrite struct {
	From int32
	Page int32
}

// Kind implements Message.
func (*SWWrite) Kind() Kind { return KindSWWrite }

// SWDowngrade tells the page's owner to drop to read-only and return the
// current data (a reader is joining). The reply is a PageReply.
type SWDowngrade struct {
	Page int32
}

// Kind implements Message.
func (*SWDowngrade) Kind() Kind { return KindSWDowngrade }

// SWFlush tells the page's owner to surrender the page: return the data
// and invalidate the local copy. The reply is a PageReply.
type SWFlush struct {
	Page int32
}

// Kind implements Message.
func (*SWFlush) Kind() Kind { return KindSWFlush }

// SWInvalidate drops a replica (a writer is taking ownership).
type SWInvalidate struct {
	Page int32
}

// Kind implements Message.
func (*SWInvalidate) Kind() Kind { return KindSWInvalidate }

// PageIntervals names one page and the writer-local intervals whose diffs
// are wanted for it.
type PageIntervals struct {
	Page      int32
	Intervals []int32
}

// DiffBatchRequest asks a single writer node for the diffs of many
// (page, interval) pairs in one round trip. It is semantically exactly a
// sequence of DiffRequests coalesced per destination: a pure read of the
// writer's diff store, so it is idempotent and safe to retry.
type DiffBatchRequest struct {
	From int32
	// Writer names the node that authored the requested diffs (see
	// DiffRequest.Writer).
	Writer int32
	Pages  []PageIntervals
}

// Kind implements Message.
func (*DiffBatchRequest) Kind() Kind { return KindDiffBatchRequest }

// PageDiffs carries the diffs for one page, aligned with the request's
// Intervals for that page. A nil entry means the writer no longer stores
// that diff (garbage-collected); the requester must fall back to a full
// page fetch for that page.
type PageDiffs struct {
	Page  int32
	Diffs [][]byte
}

// DiffBatchReply answers a DiffBatchRequest, aligned with the request's
// Pages.
type DiffBatchReply struct {
	Pages []PageDiffs
}

// Kind implements Message.
func (*DiffBatchReply) Kind() Kind { return KindDiffBatchReply }

// LockPull asks the current holder of Lock for the notice history it
// published at its last release of the lock (grant forwarding). Seen is
// the requester's vector time, filtering notices it already has. The
// reply is a LockGrant. Serving a pull is a pure read of the holder's
// release-time snapshot, so it is idempotent and safe to retry.
type LockPull struct {
	Node int32
	Lock int32
	// Holder names the node whose release-time history is wanted; it
	// equals the destination in normal operation, but under fault
	// tolerance a pull for a crashed holder is routed to that holder's
	// ring successor, which serves the replicated history.
	Holder int32
	Seen   []int32
}

// Kind implements Message.
func (*LockPull) Kind() Kind { return KindLockPull }

// ReplicaDelta replicates one node's interval state to its ring
// successor (fault tolerance). The origin ships a delta after every
// interval close: Notices/Diffs carry the just-closed interval's write
// notices and matching diffs (aligned; nil when the close was empty),
// and Known carries the suffix of the origin's received-notice history
// accumulated since the previous delta, so the successor can answer
// lock pulls for the origin with full transitive causal history. Seq is
// a per-origin sequence number the successor dedups retried deltas on;
// Interval and Lam snapshot the origin's interval counter and Lamport
// clock for use in a later RejoinReply.
type ReplicaDelta struct {
	Origin   int32
	Seq      int32
	Interval int32
	Lam      int32
	Notices  []Notice
	Diffs    [][]byte
	Known    []Notice
}

// Kind implements Message.
func (*ReplicaDelta) Kind() Kind { return KindReplicaDelta }

// RejoinRequest asks a restarted node's ring successor for the
// synchronization state it must resume with (fault tolerance). The
// reply is a RejoinReply.
type RejoinRequest struct {
	Node int32
}

// Kind implements Message.
func (*RejoinRequest) Kind() Kind { return KindRejoinRequest }

// RejoinReply restores a rejoining node's synchronization state:
// Interval and Lam resume its interval counter and Lamport clock past
// everything it published before crashing, Seen is the successor's
// notice high-water vector (so stale notices keep deduplicating), and
// Homes is the current page-home table (so a node that missed home
// migrations while down rejoins with the cluster-wide view).
type RejoinReply struct {
	Interval int32
	Lam      int32
	Seen     []int32
	Homes    []int32
}

// Kind implements Message.
func (*RejoinReply) Kind() Kind { return KindRejoinReply }

// encoderPool recycles encoder headers so EncodeTo performs no
// allocations of its own: calling m.encodeBody through the Message
// interface makes a stack-local encoder escape, so a fresh &encoder{}
// per call would cost one allocation even when the destination buffer
// has capacity. Pooling the header removes it.
var encoderPool = sync.Pool{New: func() any { return new(encoder) }}

// Encode serializes m (kind byte + body) into a freshly allocated,
// exactly-sized buffer (a single allocation — Size presizes it).
func Encode(m Message) []byte {
	return EncodeTo(make([]byte, 0, Size(m)), m)
}

// EncodeTo serializes m (kind byte + body), appending to buf, and
// returns the extended slice — the append-style API the service hot
// path uses with pooled buffers (GetBuf/PutBuf) so steady-state
// encodes allocate nothing. buf may be nil.
func EncodeTo(buf []byte, m Message) []byte {
	e := encoderPool.Get().(*encoder)
	e.buf = buf
	e.u8(uint8(m.Kind()))
	m.encodeBody(e)
	out := e.buf
	e.buf = nil
	encoderPool.Put(e)
	return out
}

// bufPool backs GetBuf/PutBuf. Entries are *[]byte headers with live
// backing arrays; capacity starts at 512 and grows to whatever the
// workload re-Puts, so steady state converges on right-sized buffers.
//
// The headers themselves cycle through hdrPool: PutBuf(&b) would box a
// fresh 24-byte slice header per recycle, which is exactly the per-call
// allocation the transport's zero-alloc send path must not make. With
// the two pools a Get/Put cycle moves pointers only.
var bufPool sync.Pool

// hdrPool holds empty *[]byte headers awaiting reuse by PutBuf.
var hdrPool = sync.Pool{New: func() any { return new([]byte) }}

// GetBuf returns a pooled, zero-length byte buffer for use with
// EncodeTo. Return it with PutBuf when the encoded bytes are no longer
// referenced (the transports never retain a payload past Call, and
// Decode copies, so "after the Call returns" is the usual point).
func GetBuf() []byte {
	v := bufPool.Get()
	if v == nil {
		return make([]byte, 0, 512)
	}
	h := v.(*[]byte)
	b := *h
	*h = nil
	hdrPool.Put(h)
	return b[:0]
}

// PutBuf recycles a buffer obtained from GetBuf (or any buffer the
// caller owns outright — e.g. a reply buffer a transport allocated and
// will not touch again). The caller must not reference b afterwards.
// Steady state allocates nothing: the slice header recycles through
// hdrPool alongside the bytes.
func PutBuf(b []byte) {
	h := hdrPool.Get().(*[]byte)
	*h = b
	bufPool.Put(h)
}

// Decode parses a message produced by Encode.
func Decode(b []byte) (Message, error) {
	d := &decoder{buf: b}
	k, err := d.u8()
	if err != nil {
		return nil, err
	}
	var m Message
	switch Kind(k) {
	case KindPageRequest:
		m = &PageRequest{}
	case KindPageReply:
		m = &PageReply{}
	case KindDiffRequest:
		m = &DiffRequest{}
	case KindDiffReply:
		m = &DiffReply{}
	case KindBarrierEnter:
		m = &BarrierEnter{}
	case KindBarrierRelease:
		m = &BarrierRelease{}
	case KindLockAcquire:
		m = &LockAcquire{}
	case KindLockGrant:
		m = &LockGrant{}
	case KindLockRelease:
		m = &LockRelease{}
	case KindGCCollect:
		m = &GCCollect{}
	case KindAck:
		m = &Ack{}
	case KindSWRead:
		m = &SWRead{}
	case KindSWWrite:
		m = &SWWrite{}
	case KindSWDowngrade:
		m = &SWDowngrade{}
	case KindSWFlush:
		m = &SWFlush{}
	case KindSWInvalidate:
		m = &SWInvalidate{}
	case KindDiffBatchRequest:
		m = &DiffBatchRequest{}
	case KindDiffBatchReply:
		m = &DiffBatchReply{}
	case KindLockPull:
		m = &LockPull{}
	case KindReplicaDelta:
		m = &ReplicaDelta{}
	case KindRejoinRequest:
		m = &RejoinRequest{}
	case KindRejoinReply:
		m = &RejoinReply{}
	default:
		return nil, fmt.Errorf("msg: unknown kind %d", k)
	}
	if err := m.decodeBody(d); err != nil {
		return nil, fmt.Errorf("msg: decode kind %d: %w", k, err)
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("msg: %d trailing bytes after kind %d", len(d.buf)-d.off, k)
	}
	return m, nil
}

// Size returns the encoded size of m in bytes. It is computed directly
// from the message fields — previously this round-tripped a full Encode
// just to take len, allocating an entire throwaway buffer per call on
// the transport accounting path. TestSizeMatchesEncode pins the
// equivalence with len(Encode(m)) for every message kind.
func Size(m Message) int { return 1 + m.sizeBody() }

// Size helpers mirroring the encoder's field layouts.

// i32sSize is the wire size of a counted []int32.
func i32sSize(n int) int { return 4 + 4*n }

// bytesSize is the wire size of a counted byte field (nil encodes the
// same as empty here; fields using the -1 nil marker cost 4 either way).
func bytesSize(b []byte) int { return 4 + len(b) }

// noticesSize is the wire size of a counted []Notice.
func noticesSize(ns []Notice) int { return 4 + noticeWire*len(ns) }

// pushesSize is the wire size of a counted []PushedDiff.
func pushesSize(ps []PushedDiff) int {
	n := 4
	for _, pd := range ps {
		n += 12 + bytesSize(pd.Diff)
	}
	return n
}

func (m *PageRequest) sizeBody() int { return 8 + noticesSize(m.Pending) }

func (m *PageReply) sizeBody() int {
	return 4 + bytesSize(m.Data) + i32sSize(len(m.AppliedVT))
}

func (m *DiffRequest) sizeBody() int { return 12 + i32sSize(len(m.Intervals)) }

func (m *DiffReply) sizeBody() int {
	n := 4 + 4
	for _, df := range m.Diffs {
		n += bytesSize(df) // nil → 4 (the -1 marker), same as empty
	}
	return n
}

func (m *BarrierEnter) sizeBody() int {
	n := 12 + noticesSize(m.Notices) + i32sSize(len(m.Hot)) + i32sSize(len(m.Entered)) + 4
	for _, h := range m.HotSets {
		n += 4 + i32sSize(len(h.Pages))
	}
	return n
}

func (m *BarrierRelease) sizeBody() int {
	n := 8 + noticesSize(m.Notices) + pushesSize(m.Push) + 4 + 8*len(m.Homes) + 4
	for _, np := range m.Relay {
		n += 4 + pushesSize(np.Push)
	}
	return n
}

func (m *LockAcquire) sizeBody() int { return 12 + i32sSize(len(m.Seen)) }

func (m *LockGrant) sizeBody() int { return 16 + noticesSize(m.Notices) }

func (m *LockRelease) sizeBody() int { return 12 + noticesSize(m.Notices) }

func (m *GCCollect) sizeBody() int { return 4 }

func (*Ack) sizeBody() int { return 0 }

func (m *SWRead) sizeBody() int { return 8 }

func (m *SWWrite) sizeBody() int { return 8 }

func (m *SWDowngrade) sizeBody() int { return 4 }

func (m *SWFlush) sizeBody() int { return 4 }

func (m *SWInvalidate) sizeBody() int { return 4 }

func (m *DiffBatchRequest) sizeBody() int {
	n := 8 + 4
	for _, pi := range m.Pages {
		n += 4 + i32sSize(len(pi.Intervals))
	}
	return n
}

func (m *DiffBatchReply) sizeBody() int {
	n := 4
	for _, pd := range m.Pages {
		n += 4 + 4
		for _, df := range pd.Diffs {
			n += bytesSize(df) // nil → 4 (the -1 marker)
		}
	}
	return n
}

func (m *LockPull) sizeBody() int { return 12 + i32sSize(len(m.Seen)) }

func (m *ReplicaDelta) sizeBody() int {
	n := 16 + noticesSize(m.Notices) + 4 + noticesSize(m.Known)
	for _, df := range m.Diffs {
		n += bytesSize(df) // nil → 4 (the -1 marker)
	}
	return n
}

func (m *RejoinRequest) sizeBody() int { return 4 }

func (m *RejoinReply) sizeBody() int {
	return 8 + i32sSize(len(m.Seen)) + i32sSize(len(m.Homes))
}

func (m *PageRequest) encodeBody(e *encoder) {
	e.i32(m.From)
	e.i32(m.Page)
	e.notices(m.Pending)
}

func (m *PageRequest) decodeBody(d *decoder) (err error) {
	if m.From, err = d.i32(); err != nil {
		return err
	}
	if m.Page, err = d.i32(); err != nil {
		return err
	}
	m.Pending, err = d.notices()
	return err
}

func (m *PageReply) encodeBody(e *encoder) {
	e.i32(m.Page)
	e.bytes(m.Data)
	e.i32(int32(len(m.AppliedVT)))
	for _, v := range m.AppliedVT {
		e.i32(v)
	}
}

func (m *PageReply) decodeBody(d *decoder) (err error) {
	if m.Page, err = d.i32(); err != nil {
		return err
	}
	if m.Data, err = d.bytes(); err != nil {
		return err
	}
	n, err := d.length()
	if err != nil {
		return err
	}
	m.AppliedVT = make([]int32, n)
	for i := range m.AppliedVT {
		if m.AppliedVT[i], err = d.i32(); err != nil {
			return err
		}
	}
	return nil
}

func (m *DiffRequest) encodeBody(e *encoder) {
	e.i32(m.From)
	e.i32(m.Page)
	e.i32(m.Writer)
	e.i32(int32(len(m.Intervals)))
	for _, iv := range m.Intervals {
		e.i32(iv)
	}
}

func (m *DiffRequest) decodeBody(d *decoder) (err error) {
	if m.From, err = d.i32(); err != nil {
		return err
	}
	if m.Page, err = d.i32(); err != nil {
		return err
	}
	if m.Writer, err = d.i32(); err != nil {
		return err
	}
	n, err := d.length()
	if err != nil {
		return err
	}
	m.Intervals = make([]int32, n)
	for i := range m.Intervals {
		if m.Intervals[i], err = d.i32(); err != nil {
			return err
		}
	}
	return nil
}

func (m *DiffReply) encodeBody(e *encoder) {
	e.i32(m.Page)
	e.i32(int32(len(m.Diffs)))
	for _, df := range m.Diffs {
		if df == nil {
			e.i32(-1)
			continue
		}
		e.bytes(df)
	}
}

func (m *DiffReply) decodeBody(d *decoder) (err error) {
	if m.Page, err = d.i32(); err != nil {
		return err
	}
	n, err := d.length()
	if err != nil {
		return err
	}
	m.Diffs = make([][]byte, n)
	for i := range m.Diffs {
		if m.Diffs[i], err = d.bytesOrNil(); err != nil {
			return err
		}
	}
	return nil
}

func (m *BarrierEnter) encodeBody(e *encoder) {
	e.i32(m.Node)
	e.i32(m.Episode)
	e.i32(m.Lam)
	e.notices(m.Notices)
	e.i32(int32(len(m.Hot)))
	for _, p := range m.Hot {
		e.i32(p)
	}
	e.i32(int32(len(m.Entered)))
	for _, id := range m.Entered {
		e.i32(id)
	}
	e.i32(int32(len(m.HotSets)))
	for _, h := range m.HotSets {
		e.i32(h.Node)
		e.i32(int32(len(h.Pages)))
		for _, p := range h.Pages {
			e.i32(p)
		}
	}
}

func (m *BarrierEnter) decodeBody(d *decoder) (err error) {
	if m.Node, err = d.i32(); err != nil {
		return err
	}
	if m.Episode, err = d.i32(); err != nil {
		return err
	}
	if m.Lam, err = d.i32(); err != nil {
		return err
	}
	if m.Notices, err = d.notices(); err != nil {
		return err
	}
	n, err := d.length()
	if err != nil {
		return err
	}
	if n > 0 {
		m.Hot = make([]int32, n)
		for i := range m.Hot {
			if m.Hot[i], err = d.i32(); err != nil {
				return err
			}
		}
	}
	if n, err = d.length(); err != nil {
		return err
	}
	if n > 0 {
		m.Entered = make([]int32, n)
		for i := range m.Entered {
			if m.Entered[i], err = d.i32(); err != nil {
				return err
			}
		}
	}
	if n, err = d.length(); err != nil {
		return err
	}
	if n > 0 {
		m.HotSets = make([]NodeHot, n)
		for i := range m.HotSets {
			h := &m.HotSets[i]
			if h.Node, err = d.i32(); err != nil {
				return err
			}
			k, err := d.length()
			if err != nil {
				return err
			}
			h.Pages = make([]int32, k)
			for j := range h.Pages {
				if h.Pages[j], err = d.i32(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (m *BarrierRelease) encodeBody(e *encoder) {
	e.i32(m.Episode)
	e.i32(m.Lam)
	e.notices(m.Notices)
	e.pushes(m.Push)
	e.i32(int32(len(m.Homes)))
	for _, ph := range m.Homes {
		e.i32(ph.Page)
		e.i32(ph.Home)
	}
	e.i32(int32(len(m.Relay)))
	for _, np := range m.Relay {
		e.i32(np.Node)
		e.pushes(np.Push)
	}
}

func (m *BarrierRelease) decodeBody(d *decoder) (err error) {
	if m.Episode, err = d.i32(); err != nil {
		return err
	}
	if m.Lam, err = d.i32(); err != nil {
		return err
	}
	if m.Notices, err = d.notices(); err != nil {
		return err
	}
	if m.Push, err = d.pushes(); err != nil {
		return err
	}
	n, err := d.length()
	if err != nil {
		return err
	}
	if n > 0 {
		m.Homes = make([]PageHome, n)
		for i := range m.Homes {
			if m.Homes[i].Page, err = d.i32(); err != nil {
				return err
			}
			if m.Homes[i].Home, err = d.i32(); err != nil {
				return err
			}
		}
	}
	if n, err = d.length(); err != nil {
		return err
	}
	if n > 0 {
		m.Relay = make([]NodePush, n)
		for i := range m.Relay {
			if m.Relay[i].Node, err = d.i32(); err != nil {
				return err
			}
			if m.Relay[i].Push, err = d.pushes(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (m *LockAcquire) encodeBody(e *encoder) {
	e.i32(m.Node)
	e.i32(m.Lock)
	e.i32(m.Pos)
	e.i32(int32(len(m.Seen)))
	for _, s := range m.Seen {
		e.i32(s)
	}
}

func (m *LockAcquire) decodeBody(d *decoder) (err error) {
	if m.Node, err = d.i32(); err != nil {
		return err
	}
	if m.Lock, err = d.i32(); err != nil {
		return err
	}
	if m.Pos, err = d.i32(); err != nil {
		return err
	}
	n, err := d.length()
	if err != nil {
		return err
	}
	m.Seen = make([]int32, n)
	for i := range m.Seen {
		if m.Seen[i], err = d.i32(); err != nil {
			return err
		}
	}
	return nil
}

func (m *LockGrant) encodeBody(e *encoder) {
	e.i32(m.Lock)
	e.i32(m.Lam)
	e.i32(m.Pos)
	e.i32(m.Holder)
	e.notices(m.Notices)
}

func (m *LockGrant) decodeBody(d *decoder) (err error) {
	if m.Lock, err = d.i32(); err != nil {
		return err
	}
	if m.Lam, err = d.i32(); err != nil {
		return err
	}
	if m.Pos, err = d.i32(); err != nil {
		return err
	}
	if m.Holder, err = d.i32(); err != nil {
		return err
	}
	m.Notices, err = d.notices()
	return err
}

func (m *LockRelease) encodeBody(e *encoder) {
	e.i32(m.Node)
	e.i32(m.Lock)
	e.i32(m.Lam)
	e.notices(m.Notices)
}

func (m *LockRelease) decodeBody(d *decoder) (err error) {
	if m.Node, err = d.i32(); err != nil {
		return err
	}
	if m.Lock, err = d.i32(); err != nil {
		return err
	}
	if m.Lam, err = d.i32(); err != nil {
		return err
	}
	m.Notices, err = d.notices()
	return err
}

func (m *GCCollect) encodeBody(e *encoder) { e.i32(m.Page) }

func (m *GCCollect) decodeBody(d *decoder) (err error) {
	m.Page, err = d.i32()
	return err
}

func (*Ack) encodeBody(*encoder) {}

func (*Ack) decodeBody(*decoder) error { return nil }

func (m *SWRead) encodeBody(e *encoder) {
	e.i32(m.From)
	e.i32(m.Page)
}

func (m *SWRead) decodeBody(d *decoder) (err error) {
	if m.From, err = d.i32(); err != nil {
		return err
	}
	m.Page, err = d.i32()
	return err
}

func (m *SWWrite) encodeBody(e *encoder) {
	e.i32(m.From)
	e.i32(m.Page)
}

func (m *SWWrite) decodeBody(d *decoder) (err error) {
	if m.From, err = d.i32(); err != nil {
		return err
	}
	m.Page, err = d.i32()
	return err
}

func (m *SWDowngrade) encodeBody(e *encoder) { e.i32(m.Page) }

func (m *SWDowngrade) decodeBody(d *decoder) (err error) {
	m.Page, err = d.i32()
	return err
}

func (m *SWFlush) encodeBody(e *encoder) { e.i32(m.Page) }

func (m *SWFlush) decodeBody(d *decoder) (err error) {
	m.Page, err = d.i32()
	return err
}

func (m *SWInvalidate) encodeBody(e *encoder) { e.i32(m.Page) }

func (m *SWInvalidate) decodeBody(d *decoder) (err error) {
	m.Page, err = d.i32()
	return err
}

func (m *DiffBatchRequest) encodeBody(e *encoder) {
	e.i32(m.From)
	e.i32(m.Writer)
	e.i32(int32(len(m.Pages)))
	for _, pi := range m.Pages {
		e.i32(pi.Page)
		e.i32(int32(len(pi.Intervals)))
		for _, iv := range pi.Intervals {
			e.i32(iv)
		}
	}
}

func (m *DiffBatchRequest) decodeBody(d *decoder) (err error) {
	if m.From, err = d.i32(); err != nil {
		return err
	}
	if m.Writer, err = d.i32(); err != nil {
		return err
	}
	n, err := d.length()
	if err != nil {
		return err
	}
	m.Pages = make([]PageIntervals, n)
	for i := range m.Pages {
		if m.Pages[i].Page, err = d.i32(); err != nil {
			return err
		}
		k, err := d.length()
		if err != nil {
			return err
		}
		m.Pages[i].Intervals = make([]int32, k)
		for j := range m.Pages[i].Intervals {
			if m.Pages[i].Intervals[j], err = d.i32(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (m *DiffBatchReply) encodeBody(e *encoder) {
	e.i32(int32(len(m.Pages)))
	for _, pd := range m.Pages {
		e.i32(pd.Page)
		e.i32(int32(len(pd.Diffs)))
		for _, df := range pd.Diffs {
			if df == nil {
				e.i32(-1)
				continue
			}
			e.bytes(df)
		}
	}
}

func (m *DiffBatchReply) decodeBody(d *decoder) (err error) {
	n, err := d.length()
	if err != nil {
		return err
	}
	m.Pages = make([]PageDiffs, n)
	for i := range m.Pages {
		if m.Pages[i].Page, err = d.i32(); err != nil {
			return err
		}
		k, err := d.length()
		if err != nil {
			return err
		}
		m.Pages[i].Diffs = make([][]byte, k)
		for j := range m.Pages[i].Diffs {
			if m.Pages[i].Diffs[j], err = d.bytesOrNil(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (m *LockPull) encodeBody(e *encoder) {
	e.i32(m.Node)
	e.i32(m.Lock)
	e.i32(m.Holder)
	e.i32(int32(len(m.Seen)))
	for _, s := range m.Seen {
		e.i32(s)
	}
}

func (m *LockPull) decodeBody(d *decoder) (err error) {
	if m.Node, err = d.i32(); err != nil {
		return err
	}
	if m.Lock, err = d.i32(); err != nil {
		return err
	}
	if m.Holder, err = d.i32(); err != nil {
		return err
	}
	n, err := d.length()
	if err != nil {
		return err
	}
	m.Seen = make([]int32, n)
	for i := range m.Seen {
		if m.Seen[i], err = d.i32(); err != nil {
			return err
		}
	}
	return nil
}

func (m *ReplicaDelta) encodeBody(e *encoder) {
	e.i32(m.Origin)
	e.i32(m.Seq)
	e.i32(m.Interval)
	e.i32(m.Lam)
	e.notices(m.Notices)
	e.i32(int32(len(m.Diffs)))
	for _, df := range m.Diffs {
		if df == nil {
			e.i32(-1)
			continue
		}
		e.bytes(df)
	}
	e.notices(m.Known)
}

func (m *ReplicaDelta) decodeBody(d *decoder) (err error) {
	if m.Origin, err = d.i32(); err != nil {
		return err
	}
	if m.Seq, err = d.i32(); err != nil {
		return err
	}
	if m.Interval, err = d.i32(); err != nil {
		return err
	}
	if m.Lam, err = d.i32(); err != nil {
		return err
	}
	if m.Notices, err = d.notices(); err != nil {
		return err
	}
	n, err := d.length()
	if err != nil {
		return err
	}
	m.Diffs = make([][]byte, n)
	for i := range m.Diffs {
		if m.Diffs[i], err = d.bytesOrNil(); err != nil {
			return err
		}
	}
	m.Known, err = d.notices()
	return err
}

func (m *RejoinRequest) encodeBody(e *encoder) { e.i32(m.Node) }

func (m *RejoinRequest) decodeBody(d *decoder) (err error) {
	m.Node, err = d.i32()
	return err
}

func (m *RejoinReply) encodeBody(e *encoder) {
	e.i32(m.Interval)
	e.i32(m.Lam)
	e.i32(int32(len(m.Seen)))
	for _, s := range m.Seen {
		e.i32(s)
	}
	e.i32(int32(len(m.Homes)))
	for _, h := range m.Homes {
		e.i32(h)
	}
}

func (m *RejoinReply) decodeBody(d *decoder) (err error) {
	if m.Interval, err = d.i32(); err != nil {
		return err
	}
	if m.Lam, err = d.i32(); err != nil {
		return err
	}
	n, err := d.length()
	if err != nil {
		return err
	}
	m.Seen = make([]int32, n)
	for i := range m.Seen {
		if m.Seen[i], err = d.i32(); err != nil {
			return err
		}
	}
	if n, err = d.length(); err != nil {
		return err
	}
	m.Homes = make([]int32, n)
	for i := range m.Homes {
		if m.Homes[i], err = d.i32(); err != nil {
			return err
		}
	}
	return nil
}

type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8) { e.buf = append(e.buf, v) }

func (e *encoder) i32(v int32) {
	e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func (e *encoder) bytes(b []byte) {
	e.i32(int32(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *encoder) notices(ns []Notice) {
	e.i32(int32(len(ns)))
	for _, n := range ns {
		e.i32(n.Page)
		e.i32(n.Writer)
		e.i32(n.Interval)
		e.i32(n.Lam)
	}
}

func (e *encoder) pushes(ps []PushedDiff) {
	e.i32(int32(len(ps)))
	for _, pd := range ps {
		e.i32(pd.Page)
		e.i32(pd.Writer)
		e.i32(pd.Interval)
		e.bytes(pd.Diff)
	}
}

type decoder struct {
	buf []byte
	off int
}

func (d *decoder) u8() (uint8, error) {
	if d.off >= len(d.buf) {
		return 0, ErrTruncated
	}
	v := d.buf[d.off]
	d.off++
	return v, nil
}

func (d *decoder) i32() (int32, error) {
	if d.off+4 > len(d.buf) {
		return 0, ErrTruncated
	}
	b := d.buf[d.off:]
	d.off += 4
	return int32(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24), nil
}

// length reads a non-negative element count, bounding it by the remaining
// buffer so corrupt input cannot trigger huge allocations.
func (d *decoder) length() (int, error) {
	v, err := d.i32()
	if err != nil {
		return 0, err
	}
	if v < 0 || int(v) > len(d.buf)-d.off {
		return 0, fmt.Errorf("msg: bad length %d with %d bytes left", v, len(d.buf)-d.off)
	}
	return int(v), nil
}

func (d *decoder) bytes() ([]byte, error) {
	n, err := d.length()
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:d.off+n])
	d.off += n
	return out, nil
}

// bytesOrNil decodes a byte field where length -1 encodes nil.
func (d *decoder) bytesOrNil() ([]byte, error) {
	save := d.off
	v, err := d.i32()
	if err != nil {
		return nil, err
	}
	if v == -1 {
		return nil, nil
	}
	d.off = save
	return d.bytes()
}

// pushes decodes a counted []PushedDiff, returning nil for a zero count
// so decode-then-reencode is canonical.
func (d *decoder) pushes() ([]PushedDiff, error) {
	n, err := d.length()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]PushedDiff, n)
	for i := range out {
		pd := &out[i]
		if pd.Page, err = d.i32(); err != nil {
			return nil, err
		}
		if pd.Writer, err = d.i32(); err != nil {
			return nil, err
		}
		if pd.Interval, err = d.i32(); err != nil {
			return nil, err
		}
		if pd.Diff, err = d.bytes(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (d *decoder) notices() ([]Notice, error) {
	n, err := d.length()
	if err != nil {
		return nil, err
	}
	// Re-bound the count with the tighter per-notice element size.
	if n > (len(d.buf)-d.off)/noticeWire {
		return nil, fmt.Errorf("msg: bad notice count %d", n)
	}
	out := make([]Notice, n)
	for i := range out {
		if out[i].Page, err = d.i32(); err != nil {
			return nil, err
		}
		if out[i].Writer, err = d.i32(); err != nil {
			return nil, err
		}
		if out[i].Interval, err = d.i32(); err != nil {
			return nil, err
		}
		if out[i].Lam, err = d.i32(); err != nil {
			return nil, err
		}
	}
	return out, nil
}
