package msg

import (
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	b := Encode(m)
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("decode %T: %v", m, err)
	}
	if got.Kind() != m.Kind() {
		t.Fatalf("kind mismatch: %d != %d", got.Kind(), m.Kind())
	}
	return got
}

func TestRoundTripAllKinds(t *testing.T) {
	ns := []Notice{{Page: 1, Writer: 2, Interval: 3, Lam: 7}, {Page: 9, Writer: 0, Interval: -1, Lam: 0}}
	cases := []Message{
		&PageRequest{From: 3, Page: 77, Pending: ns},
		&PageRequest{From: 0, Page: 0, Pending: nil},
		&PageReply{Page: 77, Data: []byte{1, 2, 3, 4, 5}, AppliedVT: []int32{1, 0, 4}},
		&PageReply{Page: 1, Data: []byte{}},
		&DiffRequest{From: 1, Page: 2, Intervals: []int32{4, 5, 6}},
		&DiffReply{Page: 2, Diffs: [][]byte{{1, 2}, nil, {}}},
		&BarrierEnter{Node: 1, Episode: 12, Lam: 3, Notices: ns},
		&BarrierEnter{Node: 2, Episode: 13, Lam: 4, Notices: nil, Hot: []int32{0, 5, 17}},
		&BarrierRelease{Episode: 12, Lam: 9, Notices: ns},
		&BarrierRelease{Episode: 13, Lam: 10, Notices: ns, Push: []PushedDiff{
			{Page: 5, Writer: 1, Interval: 2, Diff: []byte{9, 8, 7}},
			{Page: 17, Writer: 0, Interval: 4, Diff: []byte{1}},
		}},
		&LockAcquire{Node: 2, Lock: 5, Seen: []int32{0, 3, 9}},
		&LockGrant{Lock: 5, Lam: 2, Notices: ns},
		&LockRelease{Node: 2, Lock: 5, Lam: 4, Notices: nil},
		&GCCollect{Page: 4},
		&Ack{},
		&DiffBatchRequest{From: 2, Pages: []PageIntervals{
			{Page: 4, Intervals: []int32{1, 2, 9}},
			{Page: 8, Intervals: nil},
		}},
		&DiffBatchReply{Pages: []PageDiffs{
			{Page: 4, Diffs: [][]byte{{1, 2}, nil, {}}},
			{Page: 8, Diffs: nil},
		}},
	}
	for _, m := range cases {
		got := roundTrip(t, m)
		// Normalize nil vs empty for comparison where encoding cannot
		// distinguish them (slices of notices/intervals).
		if !equivalent(m, got) {
			t.Errorf("%T round trip: %#v != %#v", m, got, m)
		}
	}
}

// equivalent compares messages treating nil and empty slices as equal,
// except DiffReply.Diffs entries where nil is meaningful.
func equivalent(a, b Message) bool {
	if da, ok := a.(*DiffReply); ok {
		db := b.(*DiffReply)
		return da.Page == db.Page && diffsEquivalent(da.Diffs, db.Diffs)
	}
	if ba, ok := a.(*DiffBatchReply); ok {
		bb := b.(*DiffBatchReply)
		if len(ba.Pages) != len(bb.Pages) {
			return false
		}
		for i := range ba.Pages {
			if ba.Pages[i].Page != bb.Pages[i].Page {
				return false
			}
			if !diffsEquivalent(ba.Pages[i].Diffs, bb.Pages[i].Diffs) {
				return false
			}
		}
		return true
	}
	return reflect.DeepEqual(normalize(a), normalize(b))
}

// diffsEquivalent compares diff slices where a nil entry is meaningful
// (garbage-collected) but a nil vs empty slice-of-slices is not.
func diffsEquivalent(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if (a[i] == nil) != (b[i] == nil) {
			return false
		}
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func normalize(m Message) Message {
	switch v := m.(type) {
	case *PageRequest:
		c := *v
		if c.Pending == nil {
			c.Pending = []Notice{}
		}
		return &c
	case *PageReply:
		c := *v
		if c.Data == nil {
			c.Data = []byte{}
		}
		if c.AppliedVT == nil {
			c.AppliedVT = []int32{}
		}
		return &c
	case *DiffRequest:
		c := *v
		if c.Intervals == nil {
			c.Intervals = []int32{}
		}
		return &c
	case *BarrierEnter:
		c := *v
		if c.Notices == nil {
			c.Notices = []Notice{}
		}
		if c.Hot == nil {
			c.Hot = []int32{}
		}
		return &c
	case *BarrierRelease:
		c := *v
		if c.Notices == nil {
			c.Notices = []Notice{}
		}
		if c.Push == nil {
			c.Push = []PushedDiff{}
		}
		return &c
	case *LockAcquire:
		c := *v
		if c.Seen == nil {
			c.Seen = []int32{}
		}
		return &c
	case *LockGrant:
		c := *v
		if c.Notices == nil {
			c.Notices = []Notice{}
		}
		return &c
	case *LockRelease:
		c := *v
		if c.Notices == nil {
			c.Notices = []Notice{}
		}
		return &c
	case *DiffBatchRequest:
		c := *v
		c.Pages = append([]PageIntervals{}, c.Pages...)
		for i := range c.Pages {
			if c.Pages[i].Intervals == nil {
				c.Pages[i].Intervals = []int32{}
			}
		}
		return &c
	}
	return m
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("expected error on empty buffer")
	}
	if _, err := Decode([]byte{255}); err == nil {
		t.Fatal("expected error on unknown kind")
	}
	// Truncated PageReply.
	full := Encode(&PageReply{Page: 1, Data: []byte{1, 2, 3}})
	for i := 1; i < len(full); i++ {
		if _, err := Decode(full[:i]); err == nil {
			t.Fatalf("expected error on %d-byte prefix", i)
		}
	}
	// Trailing garbage.
	if _, err := Decode(append(Encode(&Ack{}), 0)); err == nil {
		t.Fatal("expected error on trailing bytes")
	}
}

func TestDecodeBadLengths(t *testing.T) {
	// A PageReply claiming a huge data length must fail cleanly rather
	// than allocating.
	b := []byte{byte(KindPageReply), 1, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f}
	if _, err := Decode(b); err == nil {
		t.Fatal("expected error on oversized length")
	}
	// Negative length.
	b = []byte{byte(KindPageReply), 1, 0, 0, 0, 0xff, 0xff, 0xff, 0xff}
	if _, err := Decode(b); err == nil {
		t.Fatal("expected error on negative length")
	}
}

func TestSizeMatchesEncode(t *testing.T) {
	m := &BarrierEnter{Node: 1, Episode: 2, Notices: make([]Notice, 10)}
	if Size(m) != len(Encode(m)) {
		t.Fatal("Size != len(Encode)")
	}
	// 1 kind + 4 node + 4 episode + 4 lam + 4 notice count + 10*16
	// notices + 4 hot-page count + 4 entered count + 4 hot-set count.
	if got := Size(m); got != 1+4+4+4+4+160+4+4+4 {
		t.Fatalf("Size = %d", got)
	}
}

func TestPageRequestQuick(t *testing.T) {
	check := func(from, page int32, pages []int32) bool {
		pending := make([]Notice, len(pages))
		for i, p := range pages {
			pending[i] = Notice{Page: p, Writer: from, Interval: int32(i)}
		}
		m := &PageRequest{From: from, Page: page, Pending: pending}
		got, err := Decode(Encode(m))
		if err != nil {
			return false
		}
		g := got.(*PageRequest)
		if g.From != from || g.Page != page || len(g.Pending) != len(pending) {
			return false
		}
		for i := range pending {
			if g.Pending[i] != pending[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiffReplyNilVsEmpty(t *testing.T) {
	m := &DiffReply{Page: 1, Diffs: [][]byte{nil, {}}}
	got := roundTrip(t, m).(*DiffReply)
	if got.Diffs[0] != nil {
		t.Fatal("nil diff decoded as non-nil")
	}
	if got.Diffs[1] == nil {
		t.Fatal("empty diff decoded as nil")
	}
}
