package dsm_test

// This external test package exercises the DSM through the thread engine,
// reproducing a transitive-causality hazard that once lost updates: a
// third node receiving causally-ordered diffs of the same word out of
// order would apply an older value over a newer one. Lock releases must
// carry the releaser's full known notice set (transitive causal history),
// not just its own notices. See node.known in the dsm package.

import (
	"fmt"
	"testing"

	"actdsm/internal/dsm"
	"actdsm/internal/memlayout"
	"actdsm/internal/threads"
	"actdsm/internal/vm"
)

func blockRange(n, parts, idx int) (int, int) {
	per, extra := n/parts, n%parts
	s := idx*per + minInt(idx, extra)
	c := per
	if idx < extra {
		c++
	}
	return s, c
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// runWindowWorkload reproduces the Water merge structure: records of 42
// float64s (straddling page boundaries), threads owning contiguous blocks,
// each thread contributing ±1 to a half-window of molecules under
// per-block locks, then an owner integrate phase. The expected result is
// computed exactly, so any lost or duplicated update fails the test.
func runWindowWorkload(t *testing.T, nthreads, nodes, mols, rounds int) error {
	t.Helper()
	const rec, fOff, vOff = 42, 18, 9
	region := memlayout.Region{Off: 0, Size: mols * rec * 8}
	pages := (region.Size + memlayout.PageSize - 1) / memlayout.PageSize
	cl, err := dsm.New(dsm.Config{Nodes: nodes, Pages: pages})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	e, err := threads.NewEngine(cl, threads.Config{Threads: nthreads, SchedulerEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	// Coherence must hold at every barrier, independent of the values.
	e.SetHooks(threads.Hooks{OnBarrier: func() {
		if err := cl.CheckCoherence(); err != nil {
			t.Errorf("coherence: %v", err)
		}
	}})
	window := mols / 2
	expect := make([]float64, mols)
	for i := 0; i < mols; i++ {
		for k := 1; k <= window; k++ {
			j := (i + k) % mols
			if k == window && mols%2 == 0 && i > j {
				continue
			}
			expect[i]++
			expect[j]--
		}
	}
	blockOf := func(m int) int {
		for tt := 0; tt < nthreads; tt++ {
			s, c := blockRange(mols, nthreads, tt)
			if m >= s && m < s+c {
				return tt
			}
		}
		return nthreads - 1
	}
	return e.Run(func(tid int) threads.Body {
		return func(ctx *threads.Ctx) error {
			start, count := blockRange(mols, nthreads, tid)
			for r := 0; r < rounds; r++ {
				contrib := map[int]float64{}
				for i := start; i < start+count; i++ {
					for k := 1; k <= window; k++ {
						j := (i + k) % mols
						if k == window && mols%2 == 0 && i > j {
							continue
						}
						contrib[i]++
						contrib[j]--
					}
				}
				ctx.Barrier()
				byBlock := map[int][]int{}
				for m := range contrib {
					byBlock[blockOf(m)] = append(byBlock[blockOf(m)], m)
				}
				for b := 0; b < nthreads; b++ {
					ms, ok := byBlock[b]
					if !ok {
						continue
					}
					if err := ctx.Lock(int32(7000 + b)); err != nil {
						return err
					}
					for _, m := range ms {
						v, err := ctx.F64(region, m*rec+fOff, 3, vm.Write)
						if err != nil {
							return err
						}
						v.Set(0, v.Get(0)+contrib[m])
					}
					if err := ctx.Unlock(int32(7000 + b)); err != nil {
						return err
					}
				}
				ctx.Barrier()
				v, err := ctx.F64(region, start*rec, count*rec, vm.Write)
				if err != nil {
					return err
				}
				for i := 0; i < count; i++ {
					v.Set(i*rec+vOff, v.Get(i*rec+vOff)+v.Get(i*rec+fOff))
					v.Set(i*rec+fOff, 0)
				}
				ctx.Barrier()
			}
			if tid == 0 {
				v, err := ctx.F64(region, 0, mols*rec, vm.Read)
				if err != nil {
					return err
				}
				for m := 0; m < mols; m++ {
					want := expect[m] * float64(rounds)
					if got := v.Get(m*rec + vOff); got != want {
						return fmt.Errorf("mol %d vel = %v, want %v", m, got, want)
					}
				}
			}
			ctx.EndIteration()
			return nil
		}
	})
}

func TestTransitiveCausality(t *testing.T) {
	// The 6-thread/3-node and 12-thread/4-node shapes are the ones that
	// historically lost updates (≥3 nodes, multiple threads per node,
	// block boundaries mid-page).
	for _, tc := range []struct{ th, nd int }{
		{6, 1}, {6, 3}, {6, 4}, {12, 4}, {8, 4}, {9, 3},
	} {
		tc := tc
		t.Run(fmt.Sprintf("threads=%d/nodes=%d", tc.th, tc.nd), func(t *testing.T) {
			if err := runWindowWorkload(t, tc.th, tc.nd, 64, 3); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestTransitiveCausalityWithGC(t *testing.T) {
	// Same workload with an aggressive GC threshold: collection must not
	// reintroduce ordering hazards.
	const rec = 42
	mols := 64
	region := memlayout.Region{Off: 0, Size: mols * rec * 8}
	pages := (region.Size + memlayout.PageSize - 1) / memlayout.PageSize
	cl, err := dsm.New(dsm.Config{Nodes: 3, Pages: pages, GCThresholdBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	e, err := threads.NewEngine(cl, threads.Config{Threads: 6, SchedulerEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	err = e.Run(func(tid int) threads.Body {
		return func(ctx *threads.Ctx) error {
			start, count := blockRange(mols, 6, tid)
			for r := 0; r < 4; r++ {
				if err := ctx.Lock(int32(50 + tid%3)); err != nil {
					return err
				}
				v, err := ctx.F64(region, start*rec, count*rec, vm.Write)
				if err != nil {
					return err
				}
				for i := 0; i < count; i++ {
					v.Set(i*rec, v.Get(i*rec)+1)
				}
				if err := ctx.Unlock(int32(50 + tid%3)); err != nil {
					return err
				}
				ctx.EndIteration()
			}
			if tid == 0 {
				v, err := ctx.F64(region, 0, mols*rec, vm.Read)
				if err != nil {
					return err
				}
				for m := 0; m < mols; m++ {
					if got := v.Get(m * rec); got != 4 {
						return fmt.Errorf("mol %d = %v, want 4", m, got)
					}
				}
			}
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Stats().Snapshot().GCRounds == 0 {
		t.Fatal("GC never triggered despite tiny threshold")
	}
}
