package dsm

// Tests for the heterogeneous-topology integration: directed link costs
// charged on the protocol call path, per-link traffic accounting in
// Stats, and the Config plumbing/validation.

import (
	"testing"

	"actdsm/internal/sim"
)

func TestTopologyNodeCountValidated(t *testing.T) {
	topo := sim.NewTopology(3, sim.Costs{})
	if _, err := New(Config{Nodes: 2, Pages: 2, Topology: topo}); err == nil {
		t.Fatal("expected error for topology/cluster node-count mismatch")
	}
}

// TestUniformTopologyMatchesNil pins the zero-configuration promise: a
// cluster with a uniform Topology charges exactly what one without any
// topology charges.
func TestUniformTopologyMatchesNil(t *testing.T) {
	run := func(topo *sim.Topology) sim.Time {
		c, err := New(Config{Nodes: 2, Pages: 4, Topology: topo, SerialFanOut: true})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = c.Close() }()
		wf32(t, c, 0, 0, 1024+5, 1.5) // page 1, managed by node 1: remote traffic
		costs, err := c.Barrier()
		if err != nil {
			t.Fatal(err)
		}
		var total sim.Time
		for _, ct := range costs {
			total += ct
		}
		return total
	}
	plain := run(nil)
	uniform := run(sim.NewTopology(2, sim.Costs{}))
	if plain != uniform {
		t.Fatalf("uniform topology charged %v, nil charged %v", uniform, plain)
	}
	if plain == 0 {
		t.Fatal("workload charged no network cost; test is vacuous")
	}
}

// TestSlowLinksRaiseCost pins the heterogeneous charging direction: the
// same workload over a topology whose links to/from node 1 are scaled
// up must charge strictly more virtual time than the uniform run.
func TestSlowLinksRaiseCost(t *testing.T) {
	run := func(topo *sim.Topology) sim.Time {
		c, err := New(Config{Nodes: 2, Pages: 4, Topology: topo, SerialFanOut: true})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = c.Close() }()
		wf32(t, c, 0, 0, 1024+5, 1.5)
		costs, err := c.Barrier()
		if err != nil {
			t.Fatal(err)
		}
		var total sim.Time
		for _, ct := range costs {
			total += ct
		}
		// Pull the page to node 0 so a demand fetch crosses the slow
		// link too.
		if got := rf32(t, c, 0, 0, 1024+5); got != 1.5 {
			t.Fatalf("read back %v", got)
		}
		return total
	}
	uniform := run(sim.NewTopology(2, sim.Costs{}))
	slow := run(sim.FastSlowTopology(2, sim.Costs{}, 2, 1, 8))
	if slow <= uniform {
		t.Fatalf("slow-link run charged %v, uniform charged %v; want strictly more", slow, uniform)
	}
}

// TestLinkStatsRecorded drives cross-node traffic and checks the
// per-directed-link accounting: traffic appears on the links the
// protocol actually used, bytes and calls are positive, and the
// never-used self links stay absent from the snapshot.
func TestLinkStatsRecorded(t *testing.T) {
	c := newTestCluster(t, 2, 4)
	wf32(t, c, 0, 0, 1024+5, 42.5) // page 1: write fault against manager node 1
	barrier(t, c)
	if got := rf32(t, c, 1, 8, 1024+5); got != 42.5 {
		t.Fatalf("read %v", got)
	}
	s := c.Stats().Snapshot()
	if len(s.Links) == 0 {
		t.Fatal("no per-link traffic recorded")
	}
	var fromTo [2][2]int64
	for _, l := range s.Links {
		if l.From == l.To {
			t.Fatalf("self link %d->%d recorded", l.From, l.To)
		}
		if l.Calls <= 0 || l.Bytes <= 0 {
			t.Fatalf("link %d->%d has calls=%d bytes=%d", l.From, l.To, l.Calls, l.Bytes)
		}
		fromTo[l.From][l.To] = l.Calls
	}
	if fromTo[0][1] == 0 {
		t.Fatal("0->1 traffic (write-notice/barrier against manager 1) missing")
	}
	// The live accessor and the snapshot must agree.
	if got := c.Stats().Link(0, 1).Calls.Load(); got != fromTo[0][1] {
		t.Fatalf("live Link(0,1).Calls = %d, snapshot = %d", got, fromTo[0][1])
	}
	if c.Stats().Link(-1, 5) != nil {
		t.Fatal("out-of-range Link lookup must return nil")
	}
	// Window diff: a fresh snapshot minus itself has no link rows.
	if d := s.Sub(s); len(d.Links) != 0 {
		t.Fatalf("self-diff kept %d link rows", len(d.Links))
	}
}

// TestLinkStatsFormat smoke-tests the table renderer.
func TestLinkStatsFormat(t *testing.T) {
	c := newTestCluster(t, 2, 4)
	wf32(t, c, 0, 0, 1024+5, 1.0)
	barrier(t, c)
	out := c.Stats().Snapshot().FormatLinks()
	if out == "(no per-link traffic recorded)\n" {
		t.Fatal("renderer saw no links")
	}
}

// TestTopologyAccessor pins Cluster.Topology passthrough.
func TestTopologyAccessor(t *testing.T) {
	topo := sim.RackTopology(4, sim.Costs{}, 2, 4, 2)
	c, err := New(Config{Nodes: 4, Pages: 4, Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if c.Topology() != topo {
		t.Fatal("Topology() did not return the configured topology")
	}
	// fetchCost must route through the topology's directed links.
	if got, want := c.fetchCost(0, 2, 10, 20), topo.FetchCost(0, 2, 10, 20); got != want {
		t.Fatalf("fetchCost = %v, want %v", got, want)
	}
}
