package dsm

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"actdsm/internal/memlayout"
	"actdsm/internal/msg"
	"actdsm/internal/sim"
	"actdsm/internal/transport"
	"actdsm/internal/vm"
)

// Config describes a cluster.
type Config struct {
	// Nodes is the number of DSM nodes.
	Nodes int
	// Pages is the size of the shared segment in pages.
	Pages int
	// Costs is the virtual-time cost model; zero value selects
	// sim.DefaultCosts.
	Costs sim.Costs
	// Topology, when non-nil, replaces the uniform network cost model
	// with per-directed-link latencies and bandwidths (and carries
	// per-node compute scaling for the thread engine): protocol round
	// trips are charged at the actual (from, to) and (to, from) link
	// costs instead of Costs.MsgLatency/MsgPerByte. Its node count must
	// match Nodes. Nil keeps the uniform model; a uniform Topology
	// (sim.NewTopology) behaves identically to nil by construction.
	Topology *sim.Topology
	// GCThresholdBytes triggers diff garbage collection when the
	// cluster-wide stored diff volume exceeds it at a barrier.
	// 0 selects a default; negative disables GC.
	GCThresholdBytes int
	// UseTCP routes protocol messages over real loopback TCP sockets
	// instead of in-process dispatch.
	UseTCP bool
	// Protocol selects the coherence protocol; zero value selects
	// MultiWriter.
	Protocol Protocol
	// ServiceShards is the number of per-node page-state shards the
	// protocol service path locks at page granularity, so independent
	// remote requests (diff fetches, page fetches, notice deliveries,
	// prefetch fills) service in parallel. 0 selects a default (16);
	// other values round up to the next power of two. 1 degenerates to
	// a single node-wide page lock — the pre-sharding behaviour, kept
	// as the baseline the hotpath benchmark compares against.
	// Negative is invalid.
	ServiceShards int
	// Transport tunes call resilience: a per-attempt deadline
	// (CallTimeout, TCP only) and bounded retry with exponential
	// backoff and jitter (MaxAttempts > 1). The zero value keeps the
	// historical behaviour: no deadline, single attempt. Retries are
	// safe because every protocol message is idempotent at the
	// receiver — see DESIGN.md §6.
	Transport transport.Options
	// Chaos, when non-nil, wraps the transport with fault injection
	// (dropped requests and replies, delays, duplicates, partitions)
	// for resilience testing; it works over both Local and TCP.
	Chaos *transport.ChaosOptions
	// BarrierRetries is the number of additional attempts Barrier makes
	// to re-broadcast a failed enter or release fan-out. A retried
	// phase re-sends every notice; receivers deduplicate. This layers
	// above (and composes with) transport-level retry. Default 0.
	BarrierRetries int
	// BatchDiffs coalesces diff fetches: instead of one DiffRequest per
	// writer applied serially, the fault path groups the needed
	// (page, interval) pairs per writer node and issues one
	// DiffBatchRequest per writer with parallel fan-out. The batch
	// request is a pure read of the writer's diff store (idempotent), so
	// it composes with transport retry exactly like DiffRequest.
	// Multi-writer protocol only. Default off.
	BatchDiffs bool
	// SerialFanOut runs broadcast and batch fan-outs sequentially in
	// index order instead of in parallel. With the Local transport this
	// makes the global transport-call sequence fully deterministic, which
	// the coherence model checker (internal/check) relies on to key chaos
	// plans by call number and reproduce failures exactly. Testing knob;
	// leave off in production (parallel fan-out hides latency).
	SerialFanOut bool
	// Mutation injects a deliberate protocol bug for checker validation
	// (see the Mutation constants). Test-only; never set in production.
	Mutation Mutation
	// PrefetchBudget enables correlation-driven prefetch at barrier
	// release (Cluster.PrefetchRound): each node predicts the pages its
	// resident threads will touch — from an installed predictor
	// (SetPrefetchPredictor, fed by the tracker's access bitmaps) or,
	// absent one, from the node's fault window of the previous epoch —
	// and pulls the pending diffs for those pages ahead of demand,
	// batched per writer. 0 disables prefetch; > 0 caps the pages
	// prefetched per node per round; < 0 is unlimited. Multi-writer
	// protocol only.
	PrefetchBudget int
	// LockShards is the number of lock-manager shards locks hash into;
	// shard s is managed by node s mod Nodes. 0 selects one shard per
	// node (the default distribution, equivalent to the historical
	// lock mod Nodes placement); 1 centralizes every lock on node 0 —
	// the pre-decentralization baseline the managers benchmark
	// compares against. Negative is invalid.
	LockShards int
	// BarrierArity selects the barrier topology. 0 keeps the flat
	// single-manager fan-in/fan-out (every node exchanges directly
	// with node 0). k >= 2 arranges the nodes as a k-ary tree rooted
	// at node 0 (children of i are k*i+1 .. k*i+k): enters aggregate
	// up the tree and releases relay down it, so no node sends or
	// receives more than k+1 barrier messages per phase and the
	// barrier's critical-path depth is O(log_k n) instead of O(n) at
	// the root. 1 and negative values are invalid.
	BarrierArity int
	// HomeMigration enables the distributed-ownership extensions:
	// page homes migrate to each page's last writer at every barrier
	// (the decisions ride the release fan-out), and lock grants
	// forward — the manager names the lock's last releaser and the
	// acquirer pulls causal history from it directly, so releases stop
	// shipping notices through the manager. Multi-writer protocol
	// only.
	HomeMigration bool
	// FaultTolerance enables crash-fault tolerance for the decentralized
	// managers (DESIGN.md §12): every node replicates its interval state
	// and lock-manager state to its ring successor, manager roles fail
	// over to the successor when the membership view marks a node dead,
	// and crashed nodes rejoin through a recovery protocol. Requires the
	// multi-writer protocol and a Chaos transport (whose crash windows
	// are the failure ground truth); excludes prefetch and diff batching.
	FaultTolerance bool
}

// defaultGCThreshold reflects CVM's memory budget (194 MB nodes): diffs
// accumulate across several iterations before a collection — paper-scale
// SOR writes ~16 MB of diffs per iteration and CVM collected "periodically",
// not every barrier.
const defaultGCThreshold = 64 << 20

// Cluster is a running DSM cluster.
type Cluster struct {
	cfg        Config
	costs      sim.Costs
	topo       *sim.Topology
	shardCount int
	nodes      []*node
	tr         transport.Transport
	stats      Stats

	episode int32
	// barriers accumulates BarrierEnter state, one slot per node (the
	// flat topology only ever uses slot 0; the tree topology folds
	// subtree aggregates at every interior node). All slots are
	// guarded by barrierMu because enters may arrive on transport
	// server goroutines.
	barrierMu sync.Mutex
	barriers  []barrierState

	onRemoteFault func(node, tid int, p vm.PageID)
	onAccess      []func(node, tid int, p vm.PageID, a vm.Access)

	// prefetchPredict, when non-nil, supplies the predicted page set for
	// a node's prefetch round (see SetPrefetchPredictor).
	prefetchPredict func(node int) *vm.Bitmap

	// probe, when non-nil, receives protocol events for the coherence
	// model checker (see Probe).
	probe *Probe

	// chaos is the fault-injection wrapper when Config.Chaos is set. The
	// fault-tolerance layer reads it as the crash-state ground truth
	// (refreshView) and revives rejoining nodes through it.
	chaos *transport.Chaos

	// histMu guards the write history and the placement controller's
	// queued explicit home moves below.
	histMu sync.Mutex
	// writeHist accumulates per-(page, writer) write-notice counts over
	// every completed barrier episode, row-major page*Nodes+writer. The
	// placement controller windows it by differencing successive
	// WriteHistory snapshots.
	writeHist []int64
	// queuedHomes holds the placement controller's explicit page-home
	// moves (page → target node). They ride the next barrier episode's
	// release fan-out — overriding the last-writer heuristic's decision
	// for the same page — and clear once the episode succeeds.
	queuedHomes map[int32]int32
	// ftNotices, ftHomeMoved, and ftHomeSkipped stash the latest FT
	// barrier attempt's notice union and queued-home accounting so the
	// successful attempt's values are committed exactly once (attempts
	// recompute them; a crashed attempt's values are overwritten).
	ftNotices                  []msg.Notice
	ftHomeMoved, ftHomeSkipped int64

	// viewMu guards the membership view below. Failover routing takes
	// the read side on protocol paths; refreshView and the rejoin
	// protocol take the write side on membership changes.
	viewMu sync.RWMutex
	// dead[i] is true while node i is crashed out of the view.
	dead []bool
	// viewVer counts membership changes (diagnostics).
	viewVer int64

	// serviceHold, when non-zero, makes the page-serve paths hold the
	// page's shard lock for this extra duration per request. Set only by
	// the hotpath benchmark harness (hotbench.go) to model the per-request
	// protocol work (mprotect, page copies) a serve performs on real
	// hardware, so the benchmark measures how much of the service schedule
	// the locking scheme lets overlap, independently of the host's core
	// count. Always zero in production; the cost is one predictable branch
	// per serve.
	serviceHold time.Duration
}

// barrierState accumulates one barrier episode at the manager. entered
// and have deduplicate re-sent BarrierEnter messages (transport retries
// and whole-phase barrier retries both re-deliver), so counters and the
// notice union are exactly-once per episode.
type barrierState struct {
	episode int32
	entered map[int32]bool
	lam     int32
	notices []msg.Notice
	have    map[[3]int32]bool // (page, writer, interval)
	// hot holds each node's predicted pages for the coming epoch (the
	// BarrierEnter.Hot field), consumed by collectPushDiffs to piggyback
	// the predicted diffs on the release fan-out.
	hot map[int32][]int32
	// rel is the release this node received for the episode; the tree
	// fan-out builds the releases relayed to the node's children from
	// it. Nil until the node has been released.
	rel *msg.BarrierRelease
}

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, errors.New("dsm: Nodes must be positive")
	}
	if cfg.Pages <= 0 {
		return nil, errors.New("dsm: Pages must be positive")
	}
	if cfg.ServiceShards < 0 {
		return nil, errors.New("dsm: ServiceShards must be non-negative")
	}
	if cfg.LockShards < 0 {
		return nil, errors.New("dsm: LockShards must be non-negative")
	}
	if cfg.BarrierArity < 0 || cfg.BarrierArity == 1 {
		return nil, errors.New("dsm: BarrierArity must be 0 (flat) or at least 2")
	}
	if cfg.Costs == (sim.Costs{}) {
		cfg.Costs = sim.DefaultCosts()
	}
	if cfg.Topology != nil && cfg.Topology.Nodes() != cfg.Nodes {
		return nil, fmt.Errorf("dsm: Topology has %d nodes, cluster has %d",
			cfg.Topology.Nodes(), cfg.Nodes)
	}
	if cfg.GCThresholdBytes == 0 {
		cfg.GCThresholdBytes = defaultGCThreshold
	}
	if cfg.Protocol == 0 {
		cfg.Protocol = MultiWriter
	}
	if cfg.Protocol == SingleWriter && (cfg.PrefetchBudget != 0 || cfg.BatchDiffs) {
		return nil, errors.New("dsm: prefetch and diff batching require the multi-writer protocol")
	}
	if cfg.Protocol == SingleWriter && cfg.HomeMigration {
		return nil, errors.New("dsm: home migration requires the multi-writer protocol")
	}
	if cfg.FaultTolerance {
		if cfg.Protocol == SingleWriter {
			return nil, errors.New("dsm: fault tolerance requires the multi-writer protocol")
		}
		if cfg.Chaos == nil {
			return nil, errors.New("dsm: fault tolerance requires a Chaos transport (crash injection)")
		}
		if cfg.PrefetchBudget != 0 || cfg.BatchDiffs {
			return nil, errors.New("dsm: fault tolerance excludes prefetch and diff batching")
		}
	}
	c := &Cluster{cfg: cfg, costs: cfg.Costs, topo: cfg.Topology, shardCount: normalizeShards(cfg.ServiceShards)}
	c.stats.InitLinks(cfg.Nodes)
	c.writeHist = make([]int64, cfg.Pages*cfg.Nodes)
	c.dead = make([]bool, cfg.Nodes)
	c.barriers = make([]barrierState, cfg.Nodes)
	c.nodes = make([]*node, cfg.Nodes)
	for i := range c.nodes {
		c.nodes[i] = newNode(i, c, cfg.Pages)
	}
	handlers := make([]transport.Handler, cfg.Nodes)
	for i := range handlers {
		n := c.nodes[i]
		handlers[i] = func(from int, payload []byte) ([]byte, error) {
			m, err := msg.Decode(payload)
			if err != nil {
				return nil, err
			}
			reply, release, err := n.serve(from, m)
			if err != nil {
				return nil, err
			}
			// Encode into a pooled buffer (the requester recycles it
			// after decoding — see Cluster.call), then drop whatever
			// the reply pinned: retained diff references (the encode
			// copied their bytes to the wire) and the reply's pooled
			// page image.
			out := msg.EncodeTo(msg.GetBuf(), reply)
			if release != nil {
				release()
			}
			recycleReply(reply)
			return out, nil
		}
	}
	var tr transport.Transport
	if cfg.UseTCP {
		tcp, err := transport.NewTCPWithOptions(handlers, cfg.Transport)
		if err != nil {
			return nil, fmt.Errorf("dsm: start transport: %w", err)
		}
		tr = tcp
	} else {
		tr = transport.NewLocal(handlers)
	}
	if cfg.Chaos != nil {
		// Chaos sits under the retry wrapper so injected faults
		// exercise the retry path, exactly like real network faults.
		ch := transport.NewChaos(tr, *cfg.Chaos)
		c.chaos = ch
		tr = ch
	}
	retryOpts := cfg.Transport
	userOnRetry := retryOpts.OnRetry
	retryOpts.OnRetry = func(from, to, attempt int, payload []byte, err error) {
		c.stats.recordRetry(payload)
		if userOnRetry != nil {
			userOnRetry(from, to, attempt, payload, err)
		}
	}
	// The call observer sits outermost so it times the whole logical
	// call — retries, backoff sleeps and all — and fires exactly once
	// per Cluster-level request. It forwards to the probe only when one
	// is installed, so the disabled path is a nil check per call.
	c.tr = transport.WithCallObserver(transport.WithRetry(tr, retryOpts),
		func(from, to int, payload, reply []byte, d time.Duration, err error) {
			if c.probe == nil || c.probe.TransportCall == nil {
				return
			}
			var kind msg.Kind
			if len(payload) > 0 {
				kind = msg.Kind(payload[0])
			}
			c.probeTransportCall(from, to, kind, len(payload)+len(reply), d, err != nil)
		})
	return c, nil
}

// Close releases the cluster's transport.
func (c *Cluster) Close() error { return c.tr.Close() }

// NumNodes returns the node count.
func (c *Cluster) NumNodes() int { return c.cfg.Nodes }

// NumPages returns the shared segment size in pages.
func (c *Cluster) NumPages() int { return c.cfg.Pages }

// NumShards returns the per-node page-state shard count in effect (the
// normalized Config.ServiceShards).
func (c *Cluster) NumShards() int { return c.shardCount }

// Costs returns the cluster's cost model.
func (c *Cluster) Costs() sim.Costs { return c.costs }

// Stats returns the cluster's protocol counters.
func (c *Cluster) Stats() *Stats { return &c.stats }

// SetRemoteFaultHook installs f, called on every remote miss with the
// faulting node, thread, and page. Passive correlation tracking (paper
// §4.1) observes sharing exclusively through this hook.
func (c *Cluster) SetRemoteFaultHook(f func(node, tid int, p vm.PageID)) {
	c.onRemoteFault = f
}

func (c *Cluster) notifyRemoteFault(node, tid int, p vm.PageID) {
	if c.onRemoteFault != nil {
		c.onRemoteFault(node, tid, p)
	}
}

// AddAccessHook installs f, called once per page for every span access —
// not just faults. Real page-based DSMs cannot observe these transparent
// accesses (the paper's §1 notes that access *rates* are therefore out of
// reach); the software MMU can, which enables the density-tracking and
// trace-recording extensions in internal/core and internal/trace. Hooks
// compose: each added hook sees every access, in installation order. The
// hooks are instrumentation only: they charge no virtual time.
func (c *Cluster) AddAccessHook(f func(node, tid int, p vm.PageID, a vm.Access)) {
	c.onAccess = append(c.onAccess, f)
}

// nodeForID maps a protocol identifier (page id, lock id, or lock-shard
// number) onto a node index in [0, n). It is the one checked mapping
// shared by diff/home placement and lock sharding: the modulo runs in
// 64-bit space before narrowing, so identifiers wider than int32 — e.g.
// vm.PageID values at the word seam — cannot truncate into a negative
// or out-of-range index the way the old int(p) % n did.
func nodeForID(id int64, n int) int {
	m := int(id % int64(n))
	if m < 0 {
		m += n
	}
	return m
}

// staticHome returns the page's initial home node (round-robin
// distribution) — the placement every page starts at and, without
// HomeMigration, keeps forever.
func (c *Cluster) staticHome(p vm.PageID) int { return nodeForID(int64(p), c.cfg.Nodes) }

// lockShards returns the effective lock-shard count (see
// Config.LockShards).
func (c *Cluster) lockShards() int {
	if c.cfg.LockShards == 0 {
		return c.cfg.Nodes
	}
	return c.cfg.LockShards
}

// lockManager returns the node managing a lock: locks hash onto
// lockShards() shards and shard s lives on node s mod Nodes. With the
// default one-shard-per-node configuration this is the historical
// lock mod Nodes placement; LockShards 1 funnels every lock through
// node 0.
func (c *Cluster) lockManager(lock int32) int {
	shard := nodeForID(int64(lock), c.lockShards())
	return nodeForID(int64(shard), c.cfg.Nodes)
}

// call sends m and returns the decoded reply plus the requester-side wire
// cost. All protocol traffic is accounted here, including the per-kind
// call counters and latency histograms. Request and reply buffers are
// pooled: the request is encoded into a msg.GetBuf buffer recycled once
// the transport returns, and the reply buffer is recycled after Decode
// (Decode copies every byte payload, so nothing aliases it).
func (c *Cluster) call(from, to int, m msg.Message) (msg.Message, sim.Time, error) {
	b := msg.EncodeTo(msg.GetBuf(), m)
	kind := m.Kind()
	reqLen := len(b)
	start := time.Now()
	rb, err := c.tr.Call(from, to, b)
	msg.PutBuf(b)
	if err != nil {
		d := time.Since(start)
		c.stats.recordCall(kind, reqLen, d, true)
		c.stats.recordLink(from, to, reqLen, d)
		return nil, 0, err
	}
	reply, err := msg.Decode(rb)
	repLen := len(rb)
	msg.PutBuf(rb)
	d := time.Since(start)
	c.stats.recordLink(from, to, reqLen+repLen, d)
	if err != nil {
		c.stats.recordCall(kind, reqLen+repLen, d, true)
		return nil, 0, fmt.Errorf("dsm: decode reply: %w", err)
	}
	c.stats.recordCall(kind, reqLen+repLen, d, false)
	c.stats.Messages.Add(2)
	c.stats.BytesTotal.Add(int64(reqLen + repLen))
	return reply, c.fetchCost(from, to, reqLen, repLen), nil
}

// fetchCost charges a round trip under the cluster's network model: the
// heterogeneous topology's directed link costs when one is configured,
// the uniform Costs model otherwise.
func (c *Cluster) fetchCost(from, to, reqBytes, replyBytes int) sim.Time {
	if c.topo != nil {
		return c.topo.FetchCost(from, to, reqBytes, replyBytes)
	}
	return c.costs.FetchCost(reqBytes, replyBytes)
}

// Topology returns the heterogeneous cost topology, or nil when the
// cluster runs the uniform model.
func (c *Cluster) Topology() *sim.Topology { return c.topo }

// fanOut runs f(0..n-1) concurrently and returns the lowest-index error
// (errgroup-style aggregation; deterministic error selection keeps
// failure messages stable across runs). When serial is true the calls run
// sequentially in index order instead — same semantics (every f(i) runs
// even after a failure, lowest-index error wins), but the transport-call
// sequence becomes deterministic, which Config.SerialFanOut promises.
func fanOut(n int, serial bool, f func(i int) error) error {
	if n <= 1 {
		if n == 1 {
			return f(0)
		}
		return nil
	}
	errs := make([]error, n)
	if serial {
		for i := 0; i < n; i++ {
			errs[i] = f(i)
		}
	} else {
		var wg sync.WaitGroup
		wg.Add(n)
		for i := 0; i < n; i++ {
			go func(i int) {
				defer wg.Done()
				errs[i] = f(i)
			}(i)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// broadcast runs one broadcast phase, retrying it up to
// Config.BarrierRetries additional times on failure. Phases must be
// idempotent at their receivers (they are — see DESIGN.md §6).
func (c *Cluster) broadcast(phase func() error) error {
	var err error
	for attempt := 0; attempt <= c.cfg.BarrierRetries; attempt++ {
		if attempt > 0 {
			c.stats.BarrierRetries.Add(1)
		}
		if err = phase(); err == nil {
			return nil
		}
	}
	return err
}

// Span validates the pages covering [off, off+size) for access a by
// thread tid on the given node and returns the raw segment window,
// together with the virtual-time charges the access incurred. The window
// aliases the node's segment: writes through it are the shared writes the
// twin/diff machinery captures.
//
// The window is valid until the next synchronization operation; after a
// barrier or lock transfer the application must re-acquire its spans.
func (c *Cluster) Span(node, tid, off, size int, a vm.Access) ([]byte, sim.ThreadInterval, error) {
	var ti sim.ThreadInterval
	if size <= 0 || off < 0 || off+size > c.cfg.Pages*memlayout.PageSize {
		return nil, ti, fmt.Errorf("dsm: span [%d,%d) out of segment", off, off+size)
	}
	n := c.nodes[node]
	first := vm.PageID(off / memlayout.PageSize)
	last := vm.PageID((off + size - 1) / memlayout.PageSize)
	n.setCharge(&ti, tid)
	// Memory-barrier handshake: server goroutines mutate protocol state
	// under the page shard locks; taking each page's shard lock once
	// orders their writes before this span's unlocked protection checks.
	// The engine guarantees no server-side mutation overlaps the span
	// itself. The same critical section settles prefetch accounting: the
	// first touch of a page brought current by a prefetch round is a hit
	// — a demand miss that did not happen — and feeds the fault-window
	// predictor so a usefully prefetched page stays in next round's
	// prediction.
	var hits []vm.PageID
	for p := first; p <= last; p++ {
		sh := n.lockShard(p)
		st := &n.pages[p]
		if st.prefetched {
			st.prefetched = false
			c.stats.PrefetchHits.Add(1)
			if n.prefetchOn {
				hits = append(hits, p)
			}
		}
		sh.mu.Unlock()
	}
	if len(hits) > 0 {
		n.lockSync()
		for _, p := range hits {
			n.faultWin.Set(p)
		}
		n.mu.Unlock()
	}
	for p := first; p <= last; p++ {
		trackF, _, err := n.as.Touch(tid, p, a)
		if trackF {
			c.stats.TrackingFaults.Add(1)
			ti.Overhead += c.costs.TrackFault
		}
		if err != nil {
			n.setCharge(nil, 0)
			return nil, ti, err
		}
		for _, hook := range c.onAccess {
			hook(node, tid, p, a)
		}
	}
	n.setCharge(nil, 0)
	return n.seg[off : off+size], ti, nil
}

// BeginTracking starts an active correlation-tracking phase on a node:
// every page's correlation bit is armed and h observes tracking faults
// (paper §4.2 step 1). The returned cost covers re-protecting the
// segment.
func (c *Cluster) BeginTracking(node int, h func(tid int, p vm.PageID)) sim.Time {
	n := c.nodes[node]
	n.as.BeginTracking(func(tid int, p vm.PageID, a vm.Access) { h(tid, p) })
	return sim.Time(c.cfg.Pages) * c.costs.ProtectAllPerPage
}

// RearmTracking re-arms all correlation bits at a tracked thread switch
// (paper §4.2 step 3) and returns the re-protection cost.
func (c *Cluster) RearmTracking(node int) sim.Time {
	c.nodes[node].as.ArmAll()
	return sim.Time(c.cfg.Pages) * c.costs.ProtectAllPerPage
}

// EndTracking leaves tracking mode on a node (paper §4.2 step 4).
func (c *Cluster) EndTracking(node int) {
	c.nodes[node].as.EndTracking()
}

// Tracking reports whether a node is in an active tracking phase.
func (c *Cluster) Tracking(node int) bool { return c.nodes[node].as.Tracking() }

// Barrier runs one global barrier episode: every node closes its current
// interval and sends its accumulated write notices to the barrier manager
// (node 0), which broadcasts the union; every node invalidates accordingly.
// If the stored diff volume exceeds the GC threshold, a garbage-collection
// round follows. The returned slice holds each node's virtual-time cost
// for the episode.
//
// Both broadcast phases (enter fan-in and release fan-out) run their
// transport calls in parallel across nodes — directly against node 0 in
// the flat topology, level by level along the tree's edges when
// Config.BarrierArity selects a tree. Each phase is retried up to
// Config.BarrierRetries additional times on failure: a retried phase
// re-sends every notice, and receivers deduplicate (the fold by node id
// and (page, writer, interval); release receivers through the
// pending-notice dedup), so counters are exactly-once per episode.
// Phase retries always re-run the whole phase in the same deterministic
// edge order — never a partial subtree — which keeps the global
// transport-call numbering under SerialFanOut a pure function of the
// attempt count (the contract chaos-plan replay depends on; see
// transport.RecordingPlan).
func (c *Cluster) Barrier() ([]sim.Time, error) {
	if c.cfg.FaultTolerance {
		return c.barrierFT()
	}
	nnodes := c.cfg.Nodes
	costs := make([]sim.Time, nnodes)
	episode := c.episode
	c.episode++
	const mgr = 0
	tree := c.cfg.BarrierArity >= 2 && nnodes > 1

	c.barrierMu.Lock()
	for i := range c.barriers {
		c.barriers[i] = barrierState{
			episode: episode,
			entered: make(map[int32]bool, nnodes),
			have:    make(map[[3]int32]bool),
			hot:     make(map[int32][]int32, nnodes),
		}
	}
	c.barrierMu.Unlock()

	// Phase 1 (local, serial): close every node's interval and build its
	// enter message. fresh/known are cleared only after the whole episode
	// succeeds, so a retried episode — whether a phase retry below or the
	// application calling Barrier again after an error — re-sends every
	// notice; receivers deduplicate.
	enters := make([]*msg.BarrierEnter, nnodes)
	pushEnabled := c.cfg.PrefetchBudget != 0 && c.cfg.Protocol == MultiWriter
	for i := 0; i < nnodes; i++ {
		n := c.nodes[i]
		// The predictor may consult the placement engine; compute it
		// before touching node state to keep lock order one-way.
		var pred *vm.Bitmap
		if pushEnabled && c.prefetchPredict != nil {
			pred = c.prefetchPredict(i)
		}
		_, diffCost := n.closeInterval()
		n.lockSync()
		enters[i] = &msg.BarrierEnter{
			Node:    int32(i),
			Episode: episode,
			Lam:     n.lamport.Load(),
			Notices: append([]msg.Notice(nil), n.fresh...),
		}
		n.mu.Unlock()
		costs[i] += diffCost
		if pushEnabled {
			// After closeInterval the node's own dirty pages are
			// clean again, so its prediction covers them too.
			enters[i].Hot = n.hotPages(pred)
		}
	}

	// Phase 2: enter fan-in — flat to the manager, or aggregated up the
	// tree level by level.
	var err error
	if tree {
		err = c.broadcast(func() error { return c.treeEnterPhase(episode, enters, costs) })
	} else {
		err = c.broadcast(func() error {
			return fanOut(nnodes, c.cfg.SerialFanOut, func(i int) error {
				if i == mgr {
					_, err := c.nodes[mgr].serveBarrierEnter(enters[mgr])
					return err
				}
				_, wire, err := c.call(i, mgr, enters[i])
				if err != nil {
					return fmt.Errorf("dsm: barrier enter node %d: %w", i, err)
				}
				costs[i] += wire
				return nil
			})
		})
	}
	if err != nil {
		return nil, err
	}

	c.barrierMu.Lock()
	if got := len(c.barriers[mgr].entered); got != nnodes {
		c.barrierMu.Unlock()
		return nil, fmt.Errorf("dsm: barrier episode %d: %d/%d entered", episode, got, nnodes)
	}
	notices := append([]msg.Notice(nil), c.barriers[mgr].notices...)
	lam := c.barriers[mgr].lam
	hot := c.barriers[mgr].hot
	c.barrierMu.Unlock()
	// The parallel fan-in makes arrival order nondeterministic; sort the
	// union so the release broadcast (and everything downstream of its
	// notice order) stays identical across runs.
	sort.Slice(notices, func(i, j int) bool {
		a, b := notices[i], notices[j]
		if a.Writer != b.Writer {
			return a.Writer < b.Writer
		}
		if a.Interval != b.Interval {
			return a.Interval < b.Interval
		}
		return a.Page < b.Page
	})
	c.recordWriteHistory(notices)
	// Home migration: derive this episode's ownership moves from the
	// sorted union; the decisions ride the release fan-out so every
	// node applies them while its threads are still parked. The
	// placement controller's explicit moves are folded in on top,
	// overriding the last-writer heuristic where both speak.
	var homes []msg.PageHome
	if c.cfg.HomeMigration {
		homes = c.migrationDecisions(notices)
	}
	homes, qMoved, qSkipped := c.queuedHomeDecisions(c.nodes[0], homes)
	// Piggybacked push: the manager batch-fetches the diffs each node's
	// prediction (BarrierEnter.Hot) will need — coalesced to at most one
	// DiffBatchRequest per writer for the whole cluster — and rides them
	// on the release messages, so served pages cost zero extra round
	// trips at the readers.
	var push map[int32][]msg.PushedDiff
	if pushEnabled {
		var pcost sim.Time
		push, pcost, err = c.collectPushDiffs(hot, notices)
		if err != nil {
			return nil, fmt.Errorf("dsm: barrier push collect: %w", err)
		}
		costs[mgr] += pcost
	}

	// Phase 3: release fan-out. serveBarrierRelease is idempotent
	// (pending-notice dedup, max-merge clocks, home stores, push skipped
	// once a page's pending set is drained), so phase retries that
	// re-deliver to some nodes are harmless.
	if tree {
		err = c.broadcast(func() error {
			return c.treeReleasePhase(episode, lam, notices, homes, push, costs)
		})
	} else {
		releases := make([]*msg.BarrierRelease, nnodes)
		for i := 0; i < nnodes; i++ {
			releases[i] = &msg.BarrierRelease{
				Episode: episode, Lam: lam, Notices: notices,
				Push: push[int32(i)], Homes: homes,
			}
		}
		err = c.broadcast(func() error {
			return fanOut(nnodes, c.cfg.SerialFanOut, func(i int) error {
				if i == mgr {
					_, err := c.nodes[i].serveBarrierRelease(releases[i])
					return err
				}
				_, wire, err := c.call(mgr, i, releases[i])
				if err != nil {
					return fmt.Errorf("dsm: barrier release node %d: %w", i, err)
				}
				costs[i] += wire
				return nil
			})
		})
	}
	if err != nil {
		return nil, err
	}
	c.commitQueuedHomes(qMoved, qSkipped)
	if pushEnabled {
		// Applying pushed diffs happened inside serveBarrierRelease;
		// charge each node's accumulated apply cost to this episode.
		for i, n := range c.nodes {
			n.lockSync()
			costs[i] += n.pushCost
			n.pushCost = 0
			n.mu.Unlock()
		}
	}
	for i := 0; i < nnodes; i++ {
		costs[i] += c.costs.BarrierBase
	}
	// The episode is fully delivered: every node's notices are now
	// everywhere, so pending flush state and causal histories restart.
	for _, n := range c.nodes {
		n.lockSync()
		n.fresh = nil
		n.known = nil
		n.knownHave = make(map[[3]int32]bool)
		for i := range n.sentKnown {
			n.sentKnown[i] = 0
		}
		for i := range n.lockPos {
			n.lockPos[i] = 0
		}
		n.lockMark = make(map[int32]int)
		n.mu.Unlock()
	}
	c.stats.Barriers.Add(1)

	if c.cfg.GCThresholdBytes >= 0 {
		var total int64
		for _, n := range c.nodes {
			total += n.diffBytes.Load()
		}
		if total > int64(c.cfg.GCThresholdBytes) {
			if err := c.collectGarbage(costs); err != nil {
				return nil, err
			}
		}
	}
	return costs, nil
}

// treeParent returns node i's parent in the k-ary barrier tree rooted
// at node 0 (children of i are k*i+1 .. k*i+k).
func treeParent(i, k int) int { return (i - 1) / k }

// isDescendant reports whether node x lies in node of's subtree
// (inclusive) of the k-ary barrier tree.
func isDescendant(x, of, k int) bool {
	for x > of {
		x = (x - 1) / k
	}
	return x == of
}

// treeLevels partitions nodes 1..n-1 into tree levels, shallowest
// first. Level d of the heap-numbered complete k-ary tree holds the
// k^d consecutive indices starting at (k^d - 1) / (k - 1).
func treeLevels(n, k int) [][]int {
	var levels [][]int
	lo, size := 1, k
	for lo < n {
		hi := lo + size
		if hi > n {
			hi = n
		}
		lvl := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			lvl = append(lvl, i)
		}
		levels = append(levels, lvl)
		lo, size = hi, size*k
	}
	return levels
}

// treeEnterPhase runs one attempt of the tree barrier's enter fan-in:
// every node first folds its own enter locally, then each tree level
// (deepest first, so subtree aggregates are complete before they move
// up) forwards its aggregate one edge to its parent. Every edge runs
// even after a failure — a retry then starts from maximal folded
// progress — and the deepest failing level's lowest-index error wins,
// keeping failure messages deterministic. The edge order (level, then
// index) is fixed across attempts, so under SerialFanOut the
// transport-call sequence of attempt k is identical for every run.
func (c *Cluster) treeEnterPhase(episode int32, enters []*msg.BarrierEnter, costs []sim.Time) error {
	nnodes := c.cfg.Nodes
	k := c.cfg.BarrierArity
	for i := 0; i < nnodes; i++ {
		if _, err := c.nodes[i].serveBarrierEnter(enters[i]); err != nil {
			return err
		}
	}
	levels := treeLevels(nnodes, k)
	var firstErr error
	for li := len(levels) - 1; li >= 0; li-- {
		lvl := levels[li]
		err := fanOut(len(lvl), c.cfg.SerialFanOut, func(j int) error {
			child := lvl[j]
			agg := c.buildEnterAggregate(child, episode)
			_, wire, err := c.call(child, treeParent(child, k), agg)
			if err != nil {
				return fmt.Errorf("dsm: barrier enter relay node %d: %w", child, err)
			}
			costs[child] += wire
			return nil
		})
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// buildEnterAggregate snapshots a node's folded barrier state as the
// aggregate BarrierEnter it forwards to its tree parent: the subtree's
// entered ids, deduplicated notice union, per-node hot predictions,
// and max Lamport clock. Slices are sorted so the wire image — and the
// order the parent folds it in — is deterministic.
func (c *Cluster) buildEnterAggregate(node int, episode int32) *msg.BarrierEnter {
	c.barrierMu.Lock()
	defer c.barrierMu.Unlock()
	b := &c.barriers[node]
	agg := &msg.BarrierEnter{
		Node:    int32(node),
		Episode: episode,
		Lam:     b.lam,
		Notices: append([]msg.Notice(nil), b.notices...),
	}
	for id := range b.entered {
		agg.Entered = append(agg.Entered, id)
	}
	sort.Slice(agg.Entered, func(i, j int) bool { return agg.Entered[i] < agg.Entered[j] })
	for id, pages := range b.hot {
		agg.HotSets = append(agg.HotSets, msg.NodeHot{Node: id, Pages: pages})
	}
	sort.Slice(agg.HotSets, func(i, j int) bool { return agg.HotSets[i].Node < agg.HotSets[j].Node })
	return agg
}

// treeReleasePhase runs one attempt of the tree barrier's release
// fan-out: the root serves its own release — which carries the relay
// payloads for every descendant with a push — then each level
// (shallowest first, so every parent has stored its release before its
// children ask for theirs) relays one edge down. A parent whose stored
// release is missing or stale means its own inbound edge failed this
// attempt; the error propagates and the whole phase retries.
func (c *Cluster) treeReleasePhase(episode, lam int32, notices []msg.Notice, homes []msg.PageHome, push map[int32][]msg.PushedDiff, costs []sim.Time) error {
	nnodes := c.cfg.Nodes
	k := c.cfg.BarrierArity
	rel0 := &msg.BarrierRelease{
		Episode: episode, Lam: lam, Notices: notices,
		Push: push[0], Homes: homes,
	}
	for i := 1; i < nnodes; i++ {
		if len(push[int32(i)]) > 0 {
			rel0.Relay = append(rel0.Relay, msg.NodePush{Node: int32(i), Push: push[int32(i)]})
		}
	}
	if _, err := c.nodes[0].serveBarrierRelease(rel0); err != nil {
		return err
	}
	var firstErr error
	for _, lvl := range treeLevels(nnodes, k) {
		err := fanOut(len(lvl), c.cfg.SerialFanOut, func(j int) error {
			child := lvl[j]
			parent := treeParent(child, k)
			rel, err := c.buildChildRelease(parent, child, episode, k)
			if err != nil {
				return err
			}
			_, wire, err := c.call(parent, child, rel)
			if err != nil {
				return fmt.Errorf("dsm: barrier release relay node %d: %w", child, err)
			}
			costs[child] += wire
			return nil
		})
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// buildChildRelease assembles the release a parent relays to one child:
// the episode payload (notices, Lamport clock, home moves) from the
// parent's stored release, the child's own push list lifted out of the
// relay table, and the relay entries for the child's own subtree.
func (c *Cluster) buildChildRelease(parent, child int, episode int32, k int) (*msg.BarrierRelease, error) {
	c.barrierMu.Lock()
	defer c.barrierMu.Unlock()
	src := c.barriers[parent].rel
	if src == nil || src.Episode != episode {
		return nil, fmt.Errorf("dsm: barrier release relay: node %d holds no release for episode %d", parent, episode)
	}
	rel := &msg.BarrierRelease{
		Episode: episode, Lam: src.Lam, Notices: src.Notices, Homes: src.Homes,
	}
	for _, np := range src.Relay {
		switch {
		case int(np.Node) == child:
			rel.Push = np.Push
		case isDescendant(int(np.Node), child, k):
			rel.Relay = append(rel.Relay, np)
		}
	}
	return rel, nil
}

// migrationDecisions derives the episode's home migrations from the
// sorted notice union: each written page's home moves to its last
// writer — the writer of the page's causally latest notice (max
// Lamport clock, then interval; the lowest writer id breaks exact
// ties) — so a node that keeps writing a page stops round-tripping its
// readers through a fixed third-party home. The last writer closed the
// interval that produced the notice, so it necessarily holds a current
// copy of its own writes; any other writers' diffs it pulls on demand
// when first serving the page, exactly as the static manager would.
func (c *Cluster) migrationDecisions(notices []msg.Notice) []msg.PageHome {
	return c.migrationDecisionsFrom(c.nodes[0], notices)
}

// migrationDecisionsFrom is migrationDecisions reading the current home
// table from an explicit reference node (the FT barrier's root may not
// be node 0).
func (c *Cluster) migrationDecisionsFrom(root *node, notices []msg.Notice) []msg.PageHome {
	return c.migrationDecisionsAll(root, notices, false)
}

// migrationDecisionsAll is migrationDecisionsFrom with an option to
// announce every written page's last-writer home, including ones the
// root's table already records. The FT barrier needs the full set: a
// crash mid-release leaves the decisions applied on some nodes (the
// root among them) and not others, and a re-run that filtered against
// the root's updated table would drop exactly the entries the
// un-released nodes are missing, leaving home directories divergent.
// HomeMigrations still counts only actual moves.
func (c *Cluster) migrationDecisionsAll(root *node, notices []msg.Notice, all bool) []msg.PageHome {
	last := make(map[int32]msg.Notice)
	for _, nt := range notices {
		cur, ok := last[nt.Page]
		if !ok || nt.Lam > cur.Lam ||
			(nt.Lam == cur.Lam && nt.Interval > cur.Interval) ||
			(nt.Lam == cur.Lam && nt.Interval == cur.Interval && nt.Writer < cur.Writer) {
			last[nt.Page] = nt
		}
	}
	var homes []msg.PageHome
	var moved int64
	for p, nt := range last {
		if int(p) < 0 || int(p) >= c.cfg.Pages {
			continue
		}
		changed := root.home(vm.PageID(p)) != int(nt.Writer)
		if changed {
			moved++
		}
		if all || changed {
			homes = append(homes, msg.PageHome{Page: p, Home: nt.Writer})
		}
	}
	sort.Slice(homes, func(i, j int) bool { return homes[i].Page < homes[j].Page })
	c.stats.HomeMigrations.Add(moved)
	return homes
}

// recordWriteHistory folds one completed episode's sorted notice union
// into the per-(page, writer) write history. Callers invoke it exactly
// once per episode (the FT barrier records only the successful attempt),
// so the history counts each write notice once.
func (c *Cluster) recordWriteHistory(notices []msg.Notice) {
	c.histMu.Lock()
	for _, nt := range notices {
		p, w := int(nt.Page), int(nt.Writer)
		if p >= 0 && p < c.cfg.Pages && w >= 0 && w < c.cfg.Nodes {
			c.writeHist[p*c.cfg.Nodes+w]++
		}
	}
	c.histMu.Unlock()
}

// WriteHistory returns a copy of the cumulative per-page write-notice
// counts: row p holds, per node, how many barrier write notices node n
// has produced for page p. The placement controller differences
// successive snapshots to obtain a recent-window write profile.
func (c *Cluster) WriteHistory() [][]int64 {
	out := make([][]int64, c.cfg.Pages)
	flat := make([]int64, c.cfg.Pages*c.cfg.Nodes)
	c.histMu.Lock()
	copy(flat, c.writeHist)
	c.histMu.Unlock()
	for p := range out {
		out[p] = flat[p*c.cfg.Nodes : (p+1)*c.cfg.Nodes]
	}
	return out
}

// Homes returns the current page → home-node table as node 0 sees it
// (all nodes agree between barriers: home updates only ride barrier
// releases, which deliver to every node before threads resume).
func (c *Cluster) Homes() []int {
	out := make([]int, c.cfg.Pages)
	for p := range out {
		out[p] = c.nodes[0].home(vm.PageID(p))
	}
	return out
}

// QueueHomeMoves schedules explicit page-home moves (page → target
// node) on behalf of the placement controller. The moves ride the next
// barrier episode's release fan-out — applied on every node while
// application threads are parked, overriding the last-writer
// heuristic's decision for the same page — and the queue clears when
// that episode succeeds. At apply time a move is dropped (counted in
// Stats.PlacementHomeSkips) when its target is dead or no longer holds
// a copy of the page: garbage collection invalidates non-home replicas,
// and a home must hold a base image to serve the page. Later calls for
// the same page before the next barrier override earlier ones.
func (c *Cluster) QueueHomeMoves(moves map[int]int) error {
	if c.cfg.Protocol != MultiWriter {
		return errors.New("dsm: explicit home moves require the multi-writer protocol")
	}
	for p, to := range moves {
		if p < 0 || p >= c.cfg.Pages {
			return fmt.Errorf("dsm: home move for page %d out of range [0,%d)", p, c.cfg.Pages)
		}
		if to < 0 || to >= c.cfg.Nodes {
			return fmt.Errorf("dsm: home move of page %d to node %d out of range [0,%d)", p, to, c.cfg.Nodes)
		}
	}
	c.histMu.Lock()
	if c.queuedHomes == nil {
		c.queuedHomes = make(map[int32]int32, len(moves))
	}
	for p, to := range moves {
		c.queuedHomes[int32(p)] = int32(to)
	}
	c.histMu.Unlock()
	return nil
}

// queuedHomeDecisions folds the queued explicit home moves into an
// episode's decision set, reading current homes from root. The queue is
// left intact (commitQueuedHomes consumes it after the episode
// succeeds; FT attempts may re-run this). Returns the merged decisions
// plus how many queued moves actually change a home and how many were
// dropped (dead target, or target without a page copy).
func (c *Cluster) queuedHomeDecisions(root *node, homes []msg.PageHome) ([]msg.PageHome, int64, int64) {
	c.histMu.Lock()
	queued := make([]msg.PageHome, 0, len(c.queuedHomes))
	for p, h := range c.queuedHomes {
		queued = append(queued, msg.PageHome{Page: p, Home: h})
	}
	c.histMu.Unlock()
	if len(queued) == 0 {
		return homes, 0, 0
	}
	sort.Slice(queued, func(i, j int) bool { return queued[i].Page < queued[j].Page })
	byPage := make(map[int32]int, len(homes))
	for i, ph := range homes {
		byPage[ph.Page] = i
	}
	var moved, skipped int64
	for _, q := range queued {
		p := vm.PageID(q.Page)
		to := int(q.Home)
		if c.isDead(to) || !c.nodeHasCopy(to, p) {
			skipped++
			continue
		}
		if root.home(p) != to {
			moved++
		}
		if i, ok := byPage[q.Page]; ok {
			homes[i].Home = q.Home
		} else if root.home(p) != to {
			byPage[q.Page] = len(homes)
			homes = append(homes, q)
		}
	}
	sort.Slice(homes, func(i, j int) bool { return homes[i].Page < homes[j].Page })
	return homes, moved, skipped
}

// nodeHasCopy reports whether the node holds page data (current or
// stale-but-patchable). Called between barrier phases with application
// threads parked.
func (c *Cluster) nodeHasCopy(id int, p vm.PageID) bool {
	n := c.nodes[id]
	sh := n.rlockShard(p)
	ok := n.pages[p].hasCopy
	sh.runlock()
	return ok
}

// commitQueuedHomes records a successful episode's queued-home
// accounting and clears the queue.
func (c *Cluster) commitQueuedHomes(moved, skipped int64) {
	c.stats.PlacementHomeMoves.Add(moved)
	c.stats.PlacementHomeSkips.Add(skipped)
	c.histMu.Lock()
	c.queuedHomes = nil
	c.histMu.Unlock()
}

// collectGarbage consolidates every page that has stored diffs at its
// current home, then broadcasts GCCollect: all nodes drop the page's
// diffs and non-home replicas are invalidated (causing the extra remote
// faults the paper attributes to GC).
func (c *Cluster) collectGarbage(costs []sim.Time) error {
	c.stats.GCRounds.Add(1)
	pageSet := make(map[vm.PageID]bool)
	for _, n := range c.nodes {
		for s := range n.shards {
			sh := &n.shards[s]
			sh.mu.RLock()
			for p := range sh.diffs {
				pageSet[p] = true
			}
			sh.mu.RUnlock()
		}
	}
	pages := make([]vm.PageID, 0, len(pageSet))
	for p := range pageSet {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })

	for _, p := range pages {
		mgr := c.nodes[c.nodes[0].home(p)]
		sh := mgr.rlockShard(p)
		pending := append([]msg.Notice(nil), mgr.pages[p].pending...)
		sh.runlock()
		var ti sim.ThreadInterval
		mgr.setCharge(&ti, -1)
		if len(pending) > 0 {
			ok, err := mgr.fetchAndApplyDiffs(-1, p, pending, ApplyServer)
			if err != nil {
				mgr.setCharge(nil, 0)
				return fmt.Errorf("dsm: gc consolidate page %d: %w", p, err)
			}
			if !ok {
				mgr.setCharge(nil, 0)
				return fmt.Errorf("dsm: gc consolidate page %d: diffs already gone", p)
			}
			sh = mgr.lockShard(p)
			mgr.as.SetProt(p, vm.ProtRead)
			sh.mu.Unlock()
		}
		mgr.setCharge(nil, 0)
		costs[mgr.id] += ti.Stall + ti.Overhead

		// Parallel collect broadcast. serveGCCollect is idempotent
		// (dropping absent diffs and re-invalidating are no-ops), so
		// phase retries that re-deliver to some nodes are harmless and
		// GCCollections stays exactly-once per page.
		collect := &msg.GCCollect{Page: int32(p)}
		err := c.broadcast(func() error {
			return fanOut(len(c.nodes), c.cfg.SerialFanOut, func(i int) error {
				if i == mgr.id {
					_, err := c.nodes[i].serveGCCollect(collect)
					return err
				}
				_, wire, err := c.call(mgr.id, i, collect)
				if err != nil {
					return fmt.Errorf("dsm: gc collect page %d node %d: %w", p, i, err)
				}
				costs[i] += wire
				return nil
			})
		})
		if err != nil {
			return err
		}
		c.stats.GCCollections.Add(1)
	}
	return nil
}

// AcquireLock performs the consistency protocol for thread tid on a node
// acquiring a lock. Mutual exclusion itself is enforced by the thread
// engine (which serializes holders); this applies the write notices the
// grant carries and returns the acquire's virtual-time cost.
func (c *Cluster) AcquireLock(node, tid int, lock int32) (sim.Time, error) {
	n := c.nodes[node]
	var grantMsg msg.Message
	var wire sim.Time
	var mgr int
	var failover bool
	for attempt := 0; ; attempt++ {
		mgr = c.effLockManager(lock)
		failover = mgr != c.lockManager(lock)
		n.lockSync()
		req := &msg.LockAcquire{
			Node: int32(node),
			Lock: lock,
			Seen: append([]int32(nil), n.seen...),
		}
		if !failover {
			// Positions index the primary manager's log; a failover
			// grant is served from the standby's full shadow log
			// instead (receiver-side dedup absorbs the overlap).
			req.Pos = n.lockPos[mgr]
		}
		n.mu.Unlock()

		var err error
		if mgr == node {
			if failover {
				// This node is itself the dead manager's standby:
				// serve from its own shadow log, not the primary log.
				grantMsg, err = n.serveLockAcquireShadow(c.lockManager(lock), req)
			} else {
				grantMsg, err = n.serveLockAcquire(req)
			}
		} else {
			grantMsg, wire, err = c.call(node, mgr, req)
		}
		if err == nil {
			break
		}
		if c.cfg.FaultTolerance && isNodeDown(err) && attempt < c.cfg.Nodes && c.refreshView() > 0 {
			continue // the manager died; re-resolve against the new view
		}
		return 0, fmt.Errorf("dsm: node %d acquire lock %d: %w", node, lock, err)
	}
	if failover {
		c.stats.Failovers.Add(1)
	}
	grant, ok := grantMsg.(*msg.LockGrant)
	if !ok {
		return 0, fmt.Errorf("dsm: node %d acquire lock %d: unexpected reply %T", node, lock, grantMsg)
	}
	c.probeNoticesDelivered(node, ViaLockGrant, grant.Notices)
	n.bumpLamport(grant.Lam)
	for _, nt := range grant.Notices {
		n.addPending(nt)
	}
	n.lockSync()
	// Received notices join the causal history our own future releases
	// must propagate (transitivity).
	n.addKnownLocked(grant.Notices)
	// Confirm delivery: the next acquire asks for the log suffix past
	// this grant. Advancing only here (not at the manager when serving)
	// keeps a retried acquire safe — a lost grant reply is re-served.
	if !failover {
		n.lockPos[mgr] = grant.Pos
	}
	n.mu.Unlock()
	if c.cfg.HomeMigration && grant.Holder >= 0 && int(grant.Holder) != node {
		// Forwarding mode: the shard manager granted the lock but holds
		// no notices — the previous holder kept them. Pull the lock's
		// causal history directly from that holder.
		n.lockSync()
		seen := append([]int32(nil), n.seen...)
		n.mu.Unlock()
		pwire, err := c.pullLockHistory(node, lock, int(grant.Holder), seen)
		if err != nil {
			return 0, err
		}
		wire += pwire
	}
	c.probeLockAcquired(node, lock)
	c.stats.LockAcquires.Add(1)
	return wire, nil
}

// pullLockHistory fetches the write notices protected by a lock from
// its previous holder, after the lock's shard manager redirected the
// acquire there (grant forwarding). The holder replies with the prefix
// of its known set that existed when it released the lock, filtered by
// the requester's Seen snapshot; the requester applies it exactly as it
// would a manager-served grant.
func (c *Cluster) pullLockHistory(node int, lock int32, holder int, seen []int32) (sim.Time, error) {
	n := c.nodes[node]
	pull := &msg.LockPull{Node: int32(node), Lock: lock, Holder: int32(holder), Seen: seen}
	var replyMsg msg.Message
	var wire sim.Time
	var err error
	for attempt := 0; ; attempt++ {
		// The holder named by the grant may be dead (or die under us):
		// its ring successor serves the pull from the replicated history
		// marked at the holder's last shadow release.
		target := holder
		if c.cfg.FaultTolerance && c.isDead(holder) {
			target = c.aliveSucc(holder)
			c.stats.Failovers.Add(1)
		}
		if target == node {
			if target != holder {
				// Serving our own pull as the dead holder's standby:
				// use the replicated history, not our primary state.
				replyMsg, err = n.serveLockPullShadow(pull)
			} else {
				replyMsg, err = n.serveLockPull(pull)
			}
		} else {
			replyMsg, wire, err = c.call(node, target, pull)
		}
		if err == nil {
			break
		}
		if c.cfg.FaultTolerance && isNodeDown(err) && attempt < c.cfg.Nodes && c.refreshView() > 0 {
			continue
		}
		return 0, fmt.Errorf("dsm: node %d pull lock %d from holder %d: %w", node, lock, holder, err)
	}
	g, ok := replyMsg.(*msg.LockGrant)
	if !ok {
		return 0, fmt.Errorf("dsm: node %d pull lock %d: unexpected reply %T", node, lock, replyMsg)
	}
	c.probeNoticesDelivered(node, ViaLockGrant, g.Notices)
	n.bumpLamport(g.Lam)
	for _, nt := range g.Notices {
		n.addPending(nt)
	}
	n.lockSync()
	n.addKnownLocked(g.Notices)
	n.mu.Unlock()
	c.stats.LockForwards.Add(1)
	return wire, nil
}

// ReleaseLock closes the releasing node's interval and ships the notices
// accumulated since the last barrier to the lock's manager, so the next
// acquirer inherits them.
func (c *Cluster) ReleaseLock(node, tid int, lock int32) (sim.Time, error) {
	n := c.nodes[node]
	notices, diffCost := n.closeInterval()
	cost := diffCost
	if c.cfg.FaultTolerance {
		// Replicate the closed interval (and the known suffix received
		// since the last delta) to the ring successor BEFORE the release
		// reaches any manager: the shadow release's history mark — and a
		// failover after this release — rely on the standby having the
		// interval's state already.
		w, err := c.replicate(n, notices)
		if err != nil {
			return 0, err
		}
		cost += w
	}
	for attempt := 0; ; attempt++ {
		mgr := c.effLockManager(lock)
		wire, err := c.releaseLockTo(n, lock, mgr)
		if err != nil {
			if c.cfg.FaultTolerance && isNodeDown(err) && attempt < c.cfg.Nodes && c.refreshView() > 0 {
				// The manager died mid-release; re-ship to its successor.
				// Per-target sentKnown marks make the re-send carry
				// everything the new manager has not yet seen.
				continue
			}
			return 0, err
		}
		cost += wire
		if mgr != c.lockManager(lock) {
			c.stats.Failovers.Add(1)
		}
		if c.cfg.FaultTolerance {
			w, err := c.shadowRelease(n, lock, mgr)
			if err != nil {
				return 0, err
			}
			cost += w
		}
		break
	}
	c.probeLockReleased(node, lock)
	return cost, nil
}

// releaseLockTo builds and ships one lock release to manager node mgr
// (primary or failover standby — the receiver routes shadow copies by
// comparing the lock's static placement against its own id).
func (c *Cluster) releaseLockTo(n *node, lock int32, mgr int) (sim.Time, error) {
	node := n.id
	n.lockSync()
	var rel *msg.LockRelease
	if c.cfg.HomeMigration {
		// Grant forwarding: the release ships no notices — the manager
		// only learns who holds the history. The releaser marks how much
		// of its known set existed at release time; a later LockPull from
		// the next acquirer is served from that prefix. (The
		// MutationNoTransitivity filter moves to serveLockPull, where the
		// shipped set is actually assembled.)
		n.lockMark[lock] = len(n.known)
		rel = &msg.LockRelease{
			Node: int32(node),
			Lock: lock,
			Lam:  n.lamport.Load(),
		}
	} else {
		// Ship the suffix of the known set — own notices plus everything
		// received since the last barrier — that this manager has not yet
		// been sent, so the next acquirer inherits transitive causal
		// history without re-transmitting delivered prefixes.
		start := n.sentKnown[mgr]
		shipped := n.known[start:]
		if c.cfg.Mutation == MutationNoTransitivity {
			// Test-only bug: ship only the releaser's own notices, dropping
			// the received history a correct release must forward. A third
			// node can then miss a causally-ordered update (lost update).
			var own []msg.Notice
			for _, nt := range shipped {
				if int(nt.Writer) == node {
					own = append(own, nt)
				}
			}
			shipped = own
		}
		rel = &msg.LockRelease{
			Node:    int32(node),
			Lock:    lock,
			Lam:     n.lamport.Load(),
			Notices: append([]msg.Notice(nil), shipped...),
		}
		n.sentKnown[mgr] = len(n.known)
	}
	n.mu.Unlock()

	if mgr == node {
		if primary := c.lockManager(lock); c.cfg.FaultTolerance && primary != node {
			// This node is the dead primary's standby: the release
			// belongs in its shadow log for that shard, not its own
			// primary log.
			_, err := n.serveLockReleaseShadow(primary, rel)
			return 0, err
		}
		_, err := n.serveLockRelease(rel)
		return 0, err
	}
	_, wire, err := c.call(node, mgr, rel)
	if err != nil {
		return 0, fmt.Errorf("dsm: node %d release lock %d: %w", node, lock, err)
	}
	return wire, nil
}

// StoredDiffBytes returns the cluster-wide volume of stored diffs.
func (c *Cluster) StoredDiffBytes() int64 {
	var total int64
	for _, n := range c.nodes {
		total += n.diffBytes.Load()
	}
	return total
}

// PageProt reports a node's current protection for a page (for tests).
func (c *Cluster) PageProt(node int, p vm.PageID) vm.Prot {
	return c.nodes[node].as.Prot(p)
}

// CheckCoherence verifies the protocol invariant that at a quiescent point
// (e.g. right after a barrier) every pair of nodes holding a copy of the
// same page with no pending write notices agrees byte for byte. It is a
// debugging and test aid; it reads node state without charging any
// virtual time.
func (c *Cluster) CheckCoherence() error {
	for p := 0; p < c.cfg.Pages; p++ {
		var ref []byte
		refNode := -1
		for _, n := range c.nodes {
			if c.isDead(n.id) {
				continue // a crashed node's copy is arbitrarily stale
			}
			sh := n.rlockShard(vm.PageID(p))
			st := &n.pages[p]
			ok := st.hasCopy && len(st.pending) == 0
			var data []byte
			if ok {
				data = append([]byte(nil), n.pageData(vm.PageID(p))...)
			}
			sh.runlock()
			if !ok {
				continue
			}
			if ref == nil {
				ref, refNode = data, n.id
				continue
			}
			for b := range data {
				if data[b] != ref[b] {
					return fmt.Errorf(
						"dsm: page %d byte %d differs: node %d has %#x, node %d has %#x",
						p, b, refNode, ref[b], n.id, data[b])
				}
			}
		}
	}
	return nil
}
