package dsm

// Failover benchmark harness: deterministic crash-recovery measurements
// for the BENCH_failover.json gate (internal/experiments/failover.go).
// Like the manager-decentralization harness this measures protocol
// structure, not wall clock — what a crash costs in extra transport
// calls and whether the survivors' memory image is byte-identical to a
// fault-free run — so the committed numbers are exact and
// machine-independent.
//
// One leg runs a phased lane-write workload (the same shape as the
// failover acceptance tests): every node writes disjoint words for
// PreRounds barrier rounds; then, in the crash legs, a victim dies
// imperatively; the survivors write for PostRounds more rounds; the
// restart leg additionally rejoins the victim after the first
// post-crash round. The fault-free leg runs the identical survivor-only
// post-phase, so all legs must converge to the same final contents —
// the digest equality IS the fault-tolerance claim.

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"time"

	"actdsm/internal/memlayout"
	"actdsm/internal/msg"
	"actdsm/internal/transport"
	"actdsm/internal/vm"
)

// FailoverBenchOptions configures one FailoverBench leg.
type FailoverBenchOptions struct {
	// Nodes is the cluster size (default 4).
	Nodes int
	// Pages is the shared-segment size in pages (default 4).
	Pages int
	// PreRounds is the number of all-nodes write rounds before the
	// crash point (default 2).
	PreRounds int
	// PostRounds is the number of survivor-only write rounds after it
	// (default 3).
	PostRounds int
	// Victim is the node the crash legs kill (default 2).
	Victim int
	// Crash kills Victim between the phases.
	Crash bool
	// Restart additionally rejoins Victim after the first post-crash
	// round (requires Crash).
	Restart bool
}

// FailoverBenchResult is one measured leg.
type FailoverBenchResult struct {
	// Digest is an FNV-1a hash over the final shared segment as read
	// from a fixed survivor. Equal digests across legs mean the crash
	// was invisible to the surviving computation.
	Digest string `json:"digest"`
	// Calls is the total transport-call count of the leg — the crash
	// legs' excess over the fault-free leg is the protocol price of a
	// failure.
	Calls int64 `json:"calls"`
	// Crashes..RecoveryRounds echo the leg's failover counters.
	Crashes         int64 `json:"crashes"`
	Rejoins         int64 `json:"rejoins"`
	Failovers       int64 `json:"failovers"`
	ReplicaDeltas   int64 `json:"replica_deltas"`
	ReplicaBytes    int64 `json:"replica_bytes"`
	RecoveryFetches int64 `json:"recovery_fetches"`
	RecoveryRounds  int64 `json:"recovery_rounds"`
}

func (o FailoverBenchOptions) withDefaults() FailoverBenchOptions {
	if o.Nodes == 0 {
		o.Nodes = 4
	}
	if o.Pages == 0 {
		o.Pages = 4
	}
	if o.PreRounds == 0 {
		o.PreRounds = 2
	}
	if o.PostRounds == 0 {
		o.PostRounds = 3
	}
	if o.Victim == 0 {
		o.Victim = 2
	}
	return o
}

// FailoverBench runs one leg of the crash-recovery comparison.
func FailoverBench(o FailoverBenchOptions) (FailoverBenchResult, error) {
	o = o.withDefaults()
	var res FailoverBenchResult
	if o.Nodes < 3 {
		return res, fmt.Errorf("dsm: failover bench needs at least 3 nodes, got %d", o.Nodes)
	}
	if o.Victim < 0 || o.Victim >= o.Nodes {
		return res, fmt.Errorf("dsm: failover bench victim %d out of range", o.Victim)
	}
	if o.Restart && !o.Crash {
		return res, fmt.Errorf("dsm: failover bench Restart requires Crash")
	}
	c, err := New(Config{
		Nodes:            o.Nodes,
		Pages:            o.Pages,
		FaultTolerance:   true,
		SerialFanOut:     true,
		GCThresholdBytes: -1,
		Transport: transport.Options{
			MaxAttempts: 4,
			BackoffBase: time.Microsecond,
		},
		Chaos: &transport.ChaosOptions{},
	})
	if err != nil {
		return res, err
	}
	defer func() { _ = c.Close() }()

	var mu sync.Mutex
	var calls int64
	c.SetProbe(&Probe{
		TransportCall: func(from, to int, kind msg.Kind, bytes int, wall time.Duration, failed bool) {
			mu.Lock()
			calls++
			mu.Unlock()
		},
	})

	words := o.Pages * memlayout.PageSize / 4
	write := func(node, round int) error {
		for k := 0; k < 6; k++ {
			w := (node*19 + k*31 + round*57) % words
			w -= w % o.Nodes // disjoint per-node lanes within a round
			w += node
			if w >= words {
				continue
			}
			b, _, err := c.Span(node, node, w*4, 4, vm.Write)
			if err != nil {
				return err
			}
			memlayout.ViewF32(b).Set(0, float32(round*1000+node*100+k))
		}
		return nil
	}
	for round := 0; round < o.PreRounds; round++ {
		for node := 0; node < o.Nodes; node++ {
			if err := write(node, round); err != nil {
				return res, err
			}
		}
		if _, err := c.Barrier(); err != nil {
			return res, err
		}
	}
	if o.Crash {
		if err := c.Kill(o.Victim); err != nil {
			return res, err
		}
	}
	for round := o.PreRounds; round < o.PreRounds+o.PostRounds; round++ {
		for node := 0; node < o.Nodes; node++ {
			if node == o.Victim {
				continue // the fault-free leg idles the victim too
			}
			if err := write(node, round); err != nil {
				return res, err
			}
		}
		if _, err := c.Barrier(); err != nil {
			return res, err
		}
		if o.Restart && round == o.PreRounds {
			if err := c.Restart(o.Victim); err != nil {
				return res, err
			}
		}
	}

	// Digest the final image from a fixed survivor, then check global
	// coherence so a digest produced from a broken run cannot pass.
	reader := (o.Victim + 1) % o.Nodes
	h := fnv.New64a()
	var word [4]byte
	for w := 0; w < words; w++ {
		b, _, err := c.Span(reader, reader, w*4, 4, vm.Read)
		if err != nil {
			return res, err
		}
		bits := math.Float32bits(memlayout.ViewF32(b).Get(0))
		word[0] = byte(bits)
		word[1] = byte(bits >> 8)
		word[2] = byte(bits >> 16)
		word[3] = byte(bits >> 24)
		_, _ = h.Write(word[:])
	}
	if err := c.CheckCoherence(); err != nil {
		return res, fmt.Errorf("dsm: failover bench coherence: %w", err)
	}

	s := c.Stats().Snapshot()
	mu.Lock()
	total := calls
	mu.Unlock()
	res = FailoverBenchResult{
		Digest:          fmt.Sprintf("%016x", h.Sum64()),
		Calls:           total,
		Crashes:         s.Crashes,
		Rejoins:         s.Rejoins,
		Failovers:       s.Failovers,
		ReplicaDeltas:   s.ReplicaDeltas,
		ReplicaBytes:    s.ReplicaBytes,
		RecoveryFetches: s.RecoveryFetches,
		RecoveryRounds:  s.RecoveryRounds,
	}
	return res, nil
}
