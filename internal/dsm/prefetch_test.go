package dsm

import (
	"sync/atomic"
	"testing"
	"time"

	"actdsm/internal/memlayout"
	"actdsm/internal/msg"
	"actdsm/internal/transport"
	"actdsm/internal/vm"
)

// prefetchWorkload drives an all-to-all producer/consumer pattern with a
// prefetch round after every barrier — the cluster-level equivalent of
// what the thread engine does at barrier release. Every node writes its
// own word lane of every page, the barrier distributes notices, prefetch
// runs, and every node reads every lane; all values are checked against a
// shadow array. Round 0 runs on cold caches and seeds each node's fault
// window, so rounds >= 1 exercise the fault-window fallback predictor.
func prefetchWorkload(t *testing.T, c *Cluster, nodes, npages, rounds int) {
	t.Helper()
	wordsPerPage := memlayout.PageSize / 4
	shadow := make([]float32, npages*wordsPerPage)
	for round := 0; round < rounds; round++ {
		for node := 0; node < nodes; node++ {
			for p := 0; p < npages; p++ {
				w := p*wordsPerPage + node
				val := float32(round*1000 + node*100 + p)
				wf32(t, c, node, node, w, val)
				shadow[w] = val
			}
		}
		barrier(t, c)
		if _, err := c.PrefetchRound(); err != nil {
			t.Fatal(err)
		}
		for node := 0; node < nodes; node++ {
			for p := 0; p < npages; p++ {
				for other := 0; other < nodes; other++ {
					w := p*wordsPerPage + other
					if got := rf32(t, c, node, node, w); got != shadow[w] {
						t.Fatalf("round %d node %d word %d = %v, want %v",
							round, node, w, got, shadow[w])
					}
				}
			}
		}
	}
	if err := c.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

// TestPrefetchConfigValidation pins the config surface: prefetch and diff
// batching are multi-writer mechanisms (the single-writer protocol moves
// whole pages and has no diff store to batch or prefetch from).
func TestPrefetchConfigValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 2, Pages: 1, Protocol: SingleWriter, PrefetchBudget: 4}); err == nil {
		t.Fatal("expected error for prefetch under single-writer")
	}
	if _, err := New(Config{Nodes: 2, Pages: 1, Protocol: SingleWriter, BatchDiffs: true}); err == nil {
		t.Fatal("expected error for diff batching under single-writer")
	}
}

// TestPrefetchFaultWindowEndToEnd is the basic liveness test: with an
// unlimited budget and no installed predictor, the fault-window fallback
// must start prefetching from round 1 on, every prefetched page must be
// consumed (hit) by the immediately following access phase, and the
// accounting must balance: hits + wasted never exceed prefetched pages.
func TestPrefetchFaultWindowEndToEnd(t *testing.T) {
	const nodes, npages, rounds = 3, 4, 4
	c, err := New(Config{Nodes: nodes, Pages: npages, PrefetchBudget: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	prefetchWorkload(t, c, nodes, npages, rounds)

	s := c.Stats().Snapshot()
	if s.PrefetchRounds != rounds {
		t.Fatalf("PrefetchRounds = %d, want %d", s.PrefetchRounds, rounds)
	}
	if s.PrefetchedPages == 0 {
		t.Fatal("no pages prefetched; fault-window fallback never engaged")
	}
	if s.PrefetchHits == 0 {
		t.Fatal("no prefetch hits despite every prefetched page being read")
	}
	if s.PrefetchHits+s.PrefetchWasted > s.PrefetchedPages {
		t.Fatalf("accounting leak: hits %d + wasted %d > prefetched %d",
			s.PrefetchHits, s.PrefetchWasted, s.PrefetchedPages)
	}
	if s.DiffBatchFetches == 0 || s.BatchedDiffs == 0 {
		t.Fatalf("prefetch moved no batched diffs: fetches %d, diffs %d",
			s.DiffBatchFetches, s.BatchedDiffs)
	}
	var hist int64
	for _, n := range s.BatchSizeHist {
		hist += n
	}
	if hist != s.DiffBatchFetches {
		t.Fatalf("batch-size histogram total %d != DiffBatchFetches %d", hist, s.DiffBatchFetches)
	}
}

// TestPrefetchReducesDemandCalls is the cluster-level version of the
// acceptance criterion: on the same workload, prefetch + batching must
// strictly reduce demand round trips (PageRequest + DiffRequest +
// DiffBatchRequest on the demand path is replaced by fewer, larger
// prefetch batches) while leaving every synchronization counter and the
// verified page contents identical.
func TestPrefetchReducesDemandCalls(t *testing.T) {
	const nodes, npages, rounds = 4, 6, 5
	run := func(budget int) Snapshot {
		c, err := New(Config{Nodes: nodes, Pages: npages, PrefetchBudget: budget})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = c.Close() }()
		prefetchWorkload(t, c, nodes, npages, rounds)
		return c.Stats().Snapshot()
	}

	demand := run(0)
	pref := run(-1)

	if got, want := pref.Barriers, demand.Barriers; got != want {
		t.Fatalf("Barriers diverge: %d vs %d", got, want)
	}
	if got, want := pref.LockAcquires, demand.LockAcquires; got != want {
		t.Fatalf("LockAcquires diverge: %d vs %d", got, want)
	}
	if got, want := pref.DiffsCreated, demand.DiffsCreated; got != want {
		t.Fatalf("DiffsCreated diverge: %d vs %d", got, want)
	}
	// Demand misses are what prefetch absorbs.
	if pref.RemoteMisses >= demand.RemoteMisses {
		t.Fatalf("RemoteMisses %d with prefetch, %d without — no reduction",
			pref.RemoteMisses, demand.RemoteMisses)
	}
	before, after := demand.DemandCalls(), pref.DemandCalls()
	if after >= before {
		t.Fatalf("demand calls %d with prefetch, %d without — no reduction", after, before)
	}
}

// TestPrefetchBudgetLateAccounting caps the budget below the prediction
// size: the pages the predictor wanted but the budget excluded must be
// charged to PrefetchLate when they subsequently miss on demand, and the
// number of pages prefetched per node per round must respect the cap.
func TestPrefetchBudgetLateAccounting(t *testing.T) {
	const nodes, npages, rounds, budget = 2, 6, 4, 2
	c, err := New(Config{Nodes: nodes, Pages: npages, PrefetchBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	prefetchWorkload(t, c, nodes, npages, rounds)

	s := c.Stats().Snapshot()
	if s.PrefetchedPages == 0 {
		t.Fatal("no pages prefetched")
	}
	// Each node may prefetch at most budget pages per round.
	if max := int64(budget * nodes * rounds); s.PrefetchedPages > max {
		t.Fatalf("PrefetchedPages = %d exceeds budget cap %d", s.PrefetchedPages, max)
	}
	// Every node predicts all npages from round 2 on (its fault window
	// saw misses on the budget-excluded pages), so late misses must show.
	if s.PrefetchLate == 0 {
		t.Fatal("no late misses recorded despite budget-excluded predictions")
	}
}

// TestPrefetchWastedOnInvalidation pins the wasted counter: a page
// prefetched but invalidated by the next epoch's write notice before any
// local touch was moved for nothing.
func TestPrefetchWastedOnInvalidation(t *testing.T) {
	const nodes, npages = 2, 1
	c, err := New(Config{Nodes: nodes, Pages: npages, PrefetchBudget: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	val := float32(0)
	round := func(read bool) {
		// Node 1 writes a fresh value each epoch (an unchanged word
		// would diff to nothing and carry no write notice).
		val++
		wf32(t, c, 1, 1, 0, val)
		barrier(t, c)
		if _, err := c.PrefetchRound(); err != nil {
			t.Fatal(err)
		}
		if read {
			rf32(t, c, 0, 0, 0)
		}
	}
	round(true)  // node 0's demand miss seeds its fault window
	round(false) // node 0 prefetches page 0 but never touches it
	round(false) // the new write notice invalidates the untouched prefetch

	s := c.Stats().Snapshot()
	if s.PrefetchedPages == 0 {
		t.Fatal("no pages prefetched")
	}
	if s.PrefetchWasted == 0 {
		t.Fatal("untouched prefetched page was invalidated but not counted wasted")
	}
}

// TestPrefetchPredictorPrecedence verifies that an installed predictor
// overrides the fault-window fallback: an always-empty prediction must
// suppress prefetching entirely even though the fault window is hot.
func TestPrefetchPredictorPrecedence(t *testing.T) {
	const nodes, npages, rounds = 2, 3, 3
	c, err := New(Config{Nodes: nodes, Pages: npages, PrefetchBudget: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	c.SetPrefetchPredictor(func(node int) *vm.Bitmap { return vm.NewBitmap(npages) })
	prefetchWorkload(t, c, nodes, npages, rounds)
	if s := c.Stats().Snapshot(); s.PrefetchedPages != 0 {
		t.Fatalf("PrefetchedPages = %d with an empty predictor, want 0", s.PrefetchedPages)
	}
}

// TestChaosDiffBatchRetryDedup is the resilience acceptance test for the
// batch layer: one DiffBatchRequest is dropped before delivery and one
// executes but loses its reply (forcing the server to serve the same
// batch twice once the transport retries). Because serving a batch is a
// pure read of the writer's diff store, the retries must converge to the
// exact counters of a fault-free run — no diff double-applied, no page
// double-counted — over both the in-process and TCP transports.
func TestChaosDiffBatchRetryDedup(t *testing.T) {
	const nodes, npages, rounds = 3, 4, 4
	for _, useTCP := range []bool{false, true} {
		name := "local"
		if useTCP {
			name = "tcp"
		}
		t.Run(name, func(t *testing.T) {
			run := func(chaos *transport.ChaosOptions) Snapshot {
				c, err := New(Config{
					Nodes:          nodes,
					Pages:          npages,
					PrefetchBudget: -1,
					UseTCP:         useTCP,
					Transport: transport.Options{
						MaxAttempts: 6,
						BackoffBase: time.Microsecond,
					},
					Chaos: chaos,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer func() { _ = c.Close() }()
				prefetchWorkload(t, c, nodes, npages, rounds)
				return c.Stats().Snapshot()
			}

			clean := run(nil)
			if clean.PrefetchedPages == 0 || clean.DiffBatchFetches == 0 {
				t.Fatal("workload never prefetched; test proves nothing")
			}

			var dropReq, dropReply, dup atomic.Bool
			chaotic := run(&transport.ChaosOptions{
				Plan: func(from, to int, payload []byte, call int64) transport.Fault {
					if len(payload) == 0 || msg.Kind(payload[0]) != msg.KindDiffBatchRequest {
						return transport.FaultNone
					}
					if dropReq.CompareAndSwap(false, true) {
						return transport.FaultDropRequest
					}
					if dropReply.CompareAndSwap(false, true) {
						return transport.FaultDropReply
					}
					if dup.CompareAndSwap(false, true) {
						return transport.FaultDuplicate
					}
					return transport.FaultNone
				},
			})
			if !dropReq.Load() || !dropReply.Load() || !dup.Load() {
				t.Fatalf("not all planned faults fired: req %v, reply %v, dup %v",
					dropReq.Load(), dropReply.Load(), dup.Load())
			}

			if got, want := chaotic.Counters(), clean.Counters(); got != want {
				t.Fatalf("counters diverge under chaos:\nchaos: %+v\nclean: %+v", got, want)
			}
			var retries int64
			for _, cs := range chaotic.Calls {
				if cs.Kind == msg.KindDiffBatchRequest.String() {
					retries = cs.Retries
				}
			}
			if retries < 2 {
				t.Fatalf("DiffBatchRequest retries = %d, want >= 2", retries)
			}
		})
	}
}

// TestBatchCarriesMultipleIntervals accumulates several of one writer's
// intervals against an untouched reader copy: the eventual read must
// resolve them with a single DiffBatchRequest whose reply carries every
// diff, applied in interval order.
func TestBatchCarriesMultipleIntervals(t *testing.T) {
	c, err := New(Config{Nodes: 2, Pages: 1, BatchDiffs: true, GCThresholdBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	// Node 0 (the manager) caches the page; node 1 then writes three
	// intervals that node 0 never looks at until the end.
	if got := rf32(t, c, 0, 0, 0); got != 0 {
		t.Fatalf("initial read = %v", got)
	}
	for i := 0; i < 3; i++ {
		wf32(t, c, 1, 1, i, float32(10+i))
		barrier(t, c)
	}
	before := c.Stats().Snapshot()
	for i := 0; i < 3; i++ {
		if got := rf32(t, c, 0, 0, i); got != float32(10+i) {
			t.Fatalf("word %d = %v, want %v", i, got, float32(10+i))
		}
	}
	d := c.Stats().Snapshot().Sub(before)
	if d.DiffBatchFetches != 1 {
		t.Fatalf("DiffBatchFetches = %d for the catch-up read, want 1", d.DiffBatchFetches)
	}
	if d.BatchedDiffs != 3 {
		t.Fatalf("BatchedDiffs = %d, want 3 — the batch reply lost intervals", d.BatchedDiffs)
	}
	if err := c.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchDiffsMatchesSerialDemand runs the chaos workload (no prefetch)
// with demand-path diff batching on and off: page contents are verified
// by the workload's shadow in both runs, and every protocol counter not
// inherently changed by batching (message counts, wire framing, and the
// fetch counters themselves) must match exactly — the batch carries the
// same diffs, in the same causal order, as the serial path. On the demand
// path a fault covers one page, so batching issues exactly one
// DiffBatchRequest where the serial path issued one DiffRequest; what it
// changes is the payload shape (all of a writer's intervals in one reply)
// and the stall (parallel fan-out charges the slowest round trip, not the
// sum). The page-spanning coalescing is exercised by the prefetch tests.
func TestBatchDiffsMatchesSerialDemand(t *testing.T) {
	const nodes, npages = 3, 4
	run := func(batch bool) Snapshot {
		c, err := New(Config{Nodes: nodes, Pages: npages, BatchDiffs: batch})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = c.Close() }()
		chaosWorkload(t, c, nodes, npages)
		return c.Stats().Snapshot()
	}

	serial := run(false)
	batched := run(true)
	if serial.DiffFetches == 0 {
		t.Fatal("workload performed no diff fetches; test proves nothing")
	}
	if batched.DiffBatchFetches == 0 || batched.DiffFetches != 0 {
		t.Fatalf("batched run used wrong path: batch fetches %d, serial fetches %d",
			batched.DiffBatchFetches, batched.DiffFetches)
	}
	if batched.DiffBatchFetches != serial.DiffFetches {
		t.Fatalf("fetch count changed: %d batch fetches vs %d serial fetches — "+
			"demand batching must issue one request per (page, writer), like the serial path",
			batched.DiffBatchFetches, serial.DiffFetches)
	}

	got, want := batched.Counters(), serial.Counters()
	// Neutralize the counters batching legitimately changes: the fetch
	// path itself and the wire traffic it reshapes.
	got.Messages, want.Messages = 0, 0
	got.BytesTotal, want.BytesTotal = 0, 0
	got.DiffFetches, want.DiffFetches = 0, 0
	got.DiffBatchFetches, want.DiffBatchFetches = 0, 0
	got.BatchedDiffs, want.BatchedDiffs = 0, 0
	if got != want {
		t.Fatalf("counters diverge between serial and batched demand paths:\nbatched: %+v\nserial:  %+v", got, want)
	}
}
