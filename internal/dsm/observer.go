package dsm

// Protocol observation points for the coherence model checker
// (internal/check). A Probe receives fine-grained protocol events —
// interval closes, notice deliveries, diff applications, page fetches and
// invalidations, lock transfers — that together let an external oracle
// maintain a happens-before reference store and assert LRC invariants
// online. Probes are instrumentation only: they charge no virtual time and
// must never call back into the cluster (several events fire with a node's
// mutex held).

import (
	"time"

	"actdsm/internal/msg"
	"actdsm/internal/sim"
	"actdsm/internal/vm"
)

// ApplySource classifies the protocol path that applied a diff (or, for
// transitions, brought a page current).
type ApplySource uint8

// Apply sources.
const (
	// ApplyDemand is the demand fault path: a thread touched an invalid
	// page and pulled the pending diffs (or the full page) synchronously.
	ApplyDemand ApplySource = iota + 1
	// ApplyPrefetch is the barrier-release pull prefetch round.
	ApplyPrefetch
	// ApplyPush is a barrier-piggybacked pushed diff applied at release.
	ApplyPush
	// ApplyServer is a manager bringing its own copy current to serve a
	// PageRequest or to consolidate a page for garbage collection.
	ApplyServer
)

// String implements fmt.Stringer.
func (s ApplySource) String() string {
	switch s {
	case ApplyDemand:
		return "demand"
	case ApplyPrefetch:
		return "prefetch"
	case ApplyPush:
		return "push"
	case ApplyServer:
		return "server"
	default:
		return "unknown"
	}
}

// DeliverVia classifies the protocol path that delivered write notices to
// a node.
type DeliverVia uint8

// Delivery paths.
const (
	// ViaBarrier is the barrier release broadcast (the episode's union).
	ViaBarrier DeliverVia = iota + 1
	// ViaLockGrant is the notice suffix carried by a lock grant.
	ViaLockGrant
	// ViaPageRequest is a requester's pending set forwarded to the page
	// manager inside a PageRequest (the manager learns the notices too).
	ViaPageRequest
)

// String implements fmt.Stringer.
func (v DeliverVia) String() string {
	switch v {
	case ViaBarrier:
		return "barrier"
	case ViaLockGrant:
		return "lock-grant"
	case ViaPageRequest:
		return "page-request"
	default:
		return "unknown"
	}
}

// FetchKind classifies a remote data-movement round trip on the demand
// or server path, for the observability layer's stall attribution.
type FetchKind uint8

// Fetch kinds.
const (
	// FetchPage is a full-page fetch from the page manager.
	FetchPage FetchKind = iota + 1
	// FetchDiff is a serial per-writer diff fetch (DiffRequest).
	FetchDiff
	// FetchDiffBatch is a coalesced per-writer batch (DiffBatchRequest),
	// whose stall is the slowest round trip of the parallel fan-out.
	FetchDiffBatch
)

// String implements fmt.Stringer.
func (k FetchKind) String() string {
	switch k {
	case FetchPage:
		return "page"
	case FetchDiff:
		return "diff"
	case FetchDiffBatch:
		return "diff-batch"
	default:
		return "unknown"
	}
}

// Probe is a set of optional protocol event callbacks. All fields may be
// nil. Callbacks may run concurrently (transport server goroutines,
// parallel fan-outs) unless Config.SerialFanOut is set and the transport
// is Local; implementations must be safe for concurrent use. Several
// callbacks fire with the node's internal mutex held: they must return
// quickly and must not call into the Cluster.
type Probe struct {
	// IntervalClosed fires when a node closes interval notices[i].Interval
	// with the given write notices (one per dirty page with a non-empty
	// diff). All notices share the same Writer, Interval, and Lam.
	IntervalClosed func(node int, notices []msg.Notice)
	// NoticesDelivered fires when write notices reach a node through a
	// consistency path. Re-deliveries (transport retries, re-broadcast
	// phases) fire again with the same notices; observers must be
	// idempotent, exactly like the protocol's own dedup.
	NoticesDelivered func(node int, via DeliverVia, notices []msg.Notice)
	// DiffApplied fires for every diff applied to a node's page copy,
	// with the notice naming it and the path that applied it.
	DiffApplied func(node int, src ApplySource, nt msg.Notice)
	// PageFetched fires when a full page image (with the manager's
	// applied-interval vector) replaces a node's copy. src is ApplyDemand
	// for demand faults and ApplyServer for recovery machinery (standby
	// reseeding, rejoin re-fetches) — the oracle's miss-conservation
	// check only counts the demand path.
	PageFetched func(node int, p vm.PageID, src ApplySource, appliedVT []int32)
	// PageInvalidated fires when garbage collection drops a non-manager
	// replica outright (copy, pending set, and applied vector all reset).
	PageInvalidated func(node int, p vm.PageID)
	// LockAcquired fires after a node has applied a lock grant's notices
	// (the acquire side of the happens-before edge).
	LockAcquired func(node int, lock int32)
	// LockReleased fires after a node has closed its interval and shipped
	// its release to the lock manager (the release side of the edge).
	LockReleased func(node int, lock int32)
	// BarrierReleased fires once per node per barrier episode, when the
	// release reaches the node (before its pushed diffs are applied).
	BarrierReleased func(node int, episode int32)
	// NodeCrashed fires when the membership view marks a node dead
	// (Config.FaultTolerance): its page copies, twins, and diff store are
	// gone and its manager roles have failed over to its ring successor.
	NodeCrashed func(node int)
	// NodeRejoined fires when a crashed node completes the recovery
	// protocol and re-enters the membership view with fresh state.
	NodeRejoined func(node int)

	// RemoteFetch fires for every remote data fetch with the faulting
	// thread (tid < 0 for server-side fetches: a manager consolidating a
	// page or the barrier push collection), the fetch classification, and
	// the requester's virtual-time wire stall. The observability layer
	// uses it to decompose per-thread stall into full-page vs. diff time.
	RemoteFetch func(node, tid int, k FetchKind, p vm.PageID, wire sim.Time)
	// PrefetchDone fires once per node per barrier-release prefetch round
	// with the number of pages brought current and the round's cost.
	PrefetchDone func(node, pages int, cost sim.Time)
	// TransportCall fires for every completed logical transport call
	// (after any retries) with the request kind, total wire bytes, and
	// the wall-clock latency. Unlike every other probe event it measures
	// real time, not virtual time; it is fed by the transport layer's
	// call observer (transport.WithCallObserver).
	TransportCall func(from, to int, kind msg.Kind, bytes int, wall time.Duration, failed bool)
}

// SetProbe installs p, replacing any previous probe. A nil p detaches.
// Install before driving traffic; installation is not synchronized with
// in-flight operations.
func (c *Cluster) SetProbe(p *Probe) { c.probe = p }

// Mutation selects a deliberate, test-only protocol bug used to validate
// that the coherence checker (internal/check) actually detects the class
// of error it claims to. Never set in production configurations.
type Mutation uint8

// Mutations.
const (
	// MutationNone runs the correct protocol.
	MutationNone Mutation = iota
	// MutationNoTransitivity breaks transitive causal history on lock
	// releases: a release ships only the releaser's own notices instead
	// of everything it has created or received since the last barrier. A
	// third node can then apply causally-ordered diffs out of order or
	// miss an update entirely (lost update).
	MutationNoTransitivity
	// MutationNoNoticeDedup disables the receiver-side stale/duplicate
	// notice filter: re-delivered or already-reflected notices are queued
	// again, so their diffs are fetched and applied more than once per
	// (writer, interval) — the exactly-once invariant the checker pins.
	MutationNoNoticeDedup
	// MutationPushPartialApply breaks the push path's no-partial-apply
	// rule: a barrier-piggybacked push that covers only part of a page's
	// pending set is applied anyway and the rest of the pending set is
	// dropped, losing the uncovered updates.
	MutationPushPartialApply
)

// String implements fmt.Stringer.
func (m Mutation) String() string {
	switch m {
	case MutationNone:
		return "none"
	case MutationNoTransitivity:
		return "no-transitivity"
	case MutationNoNoticeDedup:
		return "no-notice-dedup"
	case MutationPushPartialApply:
		return "push-partial-apply"
	default:
		return "unknown"
	}
}

// probe event helpers: nil-safe wrappers so call sites stay one line.

func (c *Cluster) probeIntervalClosed(node int, notices []msg.Notice) {
	if c.probe != nil && c.probe.IntervalClosed != nil && len(notices) > 0 {
		c.probe.IntervalClosed(node, notices)
	}
}

func (c *Cluster) probeNoticesDelivered(node int, via DeliverVia, notices []msg.Notice) {
	if c.probe != nil && c.probe.NoticesDelivered != nil && len(notices) > 0 {
		c.probe.NoticesDelivered(node, via, notices)
	}
}

func (c *Cluster) probeDiffApplied(node int, src ApplySource, nt msg.Notice) {
	if c.probe != nil && c.probe.DiffApplied != nil {
		c.probe.DiffApplied(node, src, nt)
	}
}

func (c *Cluster) probePageFetched(node int, p vm.PageID, src ApplySource, vt []int32) {
	if c.probe != nil && c.probe.PageFetched != nil {
		c.probe.PageFetched(node, p, src, vt)
	}
}

func (c *Cluster) probePageInvalidated(node int, p vm.PageID) {
	if c.probe != nil && c.probe.PageInvalidated != nil {
		c.probe.PageInvalidated(node, p)
	}
}

func (c *Cluster) probeLockAcquired(node int, lock int32) {
	if c.probe != nil && c.probe.LockAcquired != nil {
		c.probe.LockAcquired(node, lock)
	}
}

func (c *Cluster) probeLockReleased(node int, lock int32) {
	if c.probe != nil && c.probe.LockReleased != nil {
		c.probe.LockReleased(node, lock)
	}
}

func (c *Cluster) probeBarrierReleased(node int, episode int32) {
	if c.probe != nil && c.probe.BarrierReleased != nil {
		c.probe.BarrierReleased(node, episode)
	}
}

func (c *Cluster) probeNodeCrashed(node int) {
	if c.probe != nil && c.probe.NodeCrashed != nil {
		c.probe.NodeCrashed(node)
	}
}

func (c *Cluster) probeNodeRejoined(node int) {
	if c.probe != nil && c.probe.NodeRejoined != nil {
		c.probe.NodeRejoined(node)
	}
}

func (c *Cluster) probeRemoteFetch(node, tid int, k FetchKind, p vm.PageID, wire sim.Time) {
	if c.probe != nil && c.probe.RemoteFetch != nil {
		c.probe.RemoteFetch(node, tid, k, p, wire)
	}
}

func (c *Cluster) probePrefetchDone(node, pages int, cost sim.Time) {
	if c.probe != nil && c.probe.PrefetchDone != nil {
		c.probe.PrefetchDone(node, pages, cost)
	}
}

func (c *Cluster) probeTransportCall(from, to int, kind msg.Kind, bytes int, wall time.Duration, failed bool) {
	if c.probe != nil && c.probe.TransportCall != nil {
		c.probe.TransportCall(from, to, kind, bytes, wall, failed)
	}
}
