package dsm

import (
	"testing"
	"testing/quick"

	"actdsm/internal/memlayout"
	"actdsm/internal/sim"
	"actdsm/internal/vm"
)

func newSWCluster(t *testing.T, nodes, pages int) *Cluster {
	t.Helper()
	c, err := New(Config{Nodes: nodes, Pages: pages, Protocol: SingleWriter})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestSWWriteReadAcrossNodes(t *testing.T) {
	c := newSWCluster(t, 3, 3)
	// Node 0 writes page 1 (manager node 1): ownership moves to node 0.
	wf32(t, c, 0, 0, 1024, 4.5)
	// Node 2 reads immediately — no barrier needed under single-writer
	// (coherence is immediate).
	if got := rf32(t, c, 2, 16, 1024); got != 4.5 {
		t.Fatalf("node 2 read %v, want 4.5", got)
	}
	// The manager itself reads too.
	if got := rf32(t, c, 1, 8, 1024); got != 4.5 {
		t.Fatalf("manager read %v, want 4.5", got)
	}
}

func TestSWOwnershipSteal(t *testing.T) {
	c := newSWCluster(t, 3, 1)
	wf32(t, c, 1, 8, 0, 1)
	wf32(t, c, 2, 16, 0, 2)
	wf32(t, c, 1, 8, 1, 3) // steal back; word 0 must survive
	if got := rf32(t, c, 0, 0, 0); got != 2 {
		t.Fatalf("word 0 = %v, want 2", got)
	}
	if got := rf32(t, c, 0, 0, 1); got != 3 {
		t.Fatalf("word 1 = %v, want 3", got)
	}
}

func TestSWReaderInvalidatedByWriter(t *testing.T) {
	c := newSWCluster(t, 3, 1)
	wf32(t, c, 1, 8, 0, 10)
	_ = rf32(t, c, 2, 16, 0) // node 2 takes a read replica
	if c.PageProt(2, 0) != vm.ProtRead {
		t.Fatalf("node 2 prot = %v", c.PageProt(2, 0))
	}
	wf32(t, c, 1, 8, 0, 11) // writer upgrades; replica must die
	if c.PageProt(2, 0) != vm.ProtNone {
		t.Fatalf("node 2 prot after invalidate = %v", c.PageProt(2, 0))
	}
	if got := rf32(t, c, 2, 16, 0); got != 11 {
		t.Fatalf("node 2 reread %v, want 11", got)
	}
}

func TestSWOwnerDowngradeThenUpgrade(t *testing.T) {
	c := newSWCluster(t, 2, 1)
	wf32(t, c, 1, 8, 0, 5)  // node 1 owns (manager is node 0)
	_ = rf32(t, c, 0, 0, 0) // manager reads; owner downgrades
	if c.PageProt(1, 0) != vm.ProtRead {
		t.Fatalf("owner prot after downgrade = %v", c.PageProt(1, 0))
	}
	wf32(t, c, 1, 8, 0, 6) // owner upgrades back; manager replica dies
	if c.PageProt(0, 0) != vm.ProtNone {
		t.Fatalf("manager prot after upgrade = %v", c.PageProt(0, 0))
	}
	if got := rf32(t, c, 0, 0, 0); got != 6 {
		t.Fatalf("manager reread %v, want 6", got)
	}
}

func TestSWFalseSharingPingPong(t *testing.T) {
	// Two nodes write DISJOINT words of one page repeatedly: under
	// multi-writer this costs one fault each per barrier interval; under
	// single-writer the page ping-pongs on every alternation — the false
	// sharing the paper's §6 discusses.
	run := func(proto Protocol) int64 {
		c, err := New(Config{Nodes: 2, Pages: 1, Protocol: proto})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = c.Close() }()
		for round := 0; round < 10; round++ {
			wf32(t, c, 0, 0, 0, float32(round))
			wf32(t, c, 1, 8, 100, float32(round))
			wf32(t, c, 0, 0, 1, float32(round))
			wf32(t, c, 1, 8, 101, float32(round))
			if _, err := c.Barrier(); err != nil {
				t.Fatal(err)
			}
		}
		return c.Stats().Snapshot().RemoteMisses
	}
	mw, sw := run(MultiWriter), run(SingleWriter)
	if sw < 2*mw {
		t.Fatalf("single-writer misses %d not ≫ multi-writer %d (false sharing hidden?)", sw, mw)
	}
}

func TestSWShadowModel(t *testing.T) {
	// The single-writer protocol must also behave like ordinary memory —
	// even for same-page writes, which it serializes via ownership.
	check := func(seed uint64) bool {
		const nodes, npages = 3, 2
		rng := sim.NewRNG(seed)
		c, err := New(Config{Nodes: nodes, Pages: npages, Protocol: SingleWriter})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = c.Close() }()
		words := npages * memlayout.PageSize / 4
		shadow := make([]float32, words)
		for step := 0; step < 120; step++ {
			node := rng.Intn(nodes)
			w := rng.Intn(words)
			if rng.Intn(2) == 0 {
				val := float32(rng.Intn(100))
				b, _, err := c.Span(node, node, w*4, 4, vm.Write)
				if err != nil {
					t.Fatal(err)
				}
				memlayout.ViewF32(b).Set(0, val)
				shadow[w] = val
			} else {
				b, _, err := c.Span(node, node, w*4, 4, vm.Read)
				if err != nil {
					t.Fatal(err)
				}
				if got := memlayout.ViewF32(b).Get(0); got != shadow[w] {
					t.Logf("seed %d step %d: node %d word %d = %v, want %v",
						seed, step, node, w, got, shadow[w])
					return false
				}
			}
			if step%40 == 39 {
				if _, err := c.Barrier(); err != nil {
					t.Fatal(err)
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSWOverTCP(t *testing.T) {
	c, err := New(Config{Nodes: 2, Pages: 2, Protocol: SingleWriter, UseTCP: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	wf32(t, c, 1, 8, 1024, 9)
	if got := rf32(t, c, 0, 0, 1024); got != 9 {
		t.Fatalf("read %v over TCP", got)
	}
}

func TestSWNoDiffMachinery(t *testing.T) {
	c := newSWCluster(t, 2, 1)
	wf32(t, c, 1, 8, 0, 1)
	barrier(t, c)
	s := c.Stats().Snapshot()
	if s.DiffsCreated != 0 || s.TwinsCreated != 0 || s.BytesDiff != 0 {
		t.Fatalf("single-writer used diff machinery: %+v", s)
	}
	if s.PageFetches == 0 {
		t.Fatal("no page transfers recorded")
	}
}

func TestSWTrackingWorks(t *testing.T) {
	// Active correlation tracking is protocol-independent.
	c := newSWCluster(t, 2, 2)
	var seen []vm.PageID
	c.BeginTracking(0, func(tid int, p vm.PageID) { seen = append(seen, p) })
	_ = rf32(t, c, 0, 0, 0)
	_ = rf32(t, c, 0, 0, 1024)
	c.EndTracking(0)
	if len(seen) != 2 {
		t.Fatalf("tracked = %v", seen)
	}
}
