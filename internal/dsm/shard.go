package dsm

// Sharded page-state locking and pooled page buffers: the node-local
// concurrency substrate. See doc.go for the full locking model.
//
// Before sharding, every protocol operation — faults, diff serves,
// barrier bookkeeping, prefetch fills — serialized on one node-wide
// mutex, so a node could not serve a DiffRequest from one peer while
// applying diffs for another. Page state is now striped across
// ServiceShards independent RWMutex-guarded shards (page p belongs to
// shard p mod nshards), so operations on pages in different shards
// proceed in parallel and read-only serves (diff fetches) share a shard
// concurrently. Sync-side state that is not per-page (interval counters,
// notice histories, lock-manager logs, charge plumbing) lives under
// separate small mutexes.

import (
	"sync"
	"sync/atomic"

	"actdsm/internal/memlayout"
	"actdsm/internal/msg"
	"actdsm/internal/vm"
)

// defaultServiceShards is the per-node shard count when
// Config.ServiceShards is 0. Sixteen shards keep the page-to-shard
// mapping a single AND while comfortably exceeding the request
// parallelism a node sees from its peers in the paper's 8-node
// configurations.
const defaultServiceShards = 16

// normalizeShards rounds a configured shard count to a usable one: 0
// selects the default and any other positive value rounds up to the next
// power of two (so shard selection is a mask, not a modulo). 1 is
// honoured exactly: a single shard restores the pre-sharding
// one-big-lock behaviour and serves as the benchmark baseline.
func normalizeShards(v int) int {
	if v == 0 {
		v = defaultServiceShards
	}
	n := 1
	for n < v {
		n <<= 1
	}
	return n
}

// pageShard guards a stripe of a node's per-page protocol state: for
// every page p with p mod nshards == this shard's index, the shard's
// lock covers pages[p] (copy/twin/pending/appliedVT/prefetched), the
// page's protection entry in the address space, the page's window of the
// data segment, and the page's stored diffs.
//
// Reads that do not mutate (diff serves, pending snapshots, coherence
// checks) take the read side, so concurrent diff fetches from many peers
// proceed in parallel even within one shard — except in the
// single-shard configuration (exclusive == true), where every
// acquisition is exclusive to reproduce the pre-sharding one-big-mutex
// behaviour exactly (the old node.mu was a plain Mutex; readers did not
// share). That keeps ServiceShards: 1 an honest baseline for the
// hotpath benchmark.
type pageShard struct {
	mu sync.RWMutex
	// exclusive makes rlockShard take the write side; set only when
	// the node runs with a single shard (see above).
	exclusive bool
	// diffs stores the node's own diffs for this shard's pages:
	// page → interval → refcounted diff. Stored diff bytes are
	// immutable while referenced; replies alias them under a retained
	// reference (see diffRef) so a concurrent GC drop cannot recycle
	// bytes an encode is still reading.
	diffs map[vm.PageID]map[int32]*diffRef
}

// diffRef is one stored diff with a reference count. The store itself
// holds one reference from creation (closeInterval) until the GC drop
// (serveGCCollect); a serve that aliases the bytes into a reply takes
// another for the duration of the encode. The buffer returns to the
// diff pool only when the last reference drops, so the zero-copy serve
// path can never read recycled bytes — the aliasing-vs-GC race the
// refcount exists to close.
type diffRef struct {
	b    []byte
	refs atomic.Int32
}

// newDiffRef wraps freshly encoded diff bytes with the store's own
// reference.
func newDiffRef(b []byte) *diffRef {
	d := &diffRef{b: b}
	d.refs.Store(1)
	return d
}

// retain takes a reference. Callers must already hold one (transitively:
// the shard lock orders retains against the store's release).
func (d *diffRef) retain() { d.refs.Add(1) }

// release drops a reference, recycling the buffer when it was the last.
func (d *diffRef) release() {
	if d.refs.Add(-1) == 0 {
		putDiffBuf(d.b)
		d.b = nil
	}
}

// retained is the set of diff references a serve pinned while its reply
// aliases their bytes; the transport handler releases it after encoding.
type retained []*diffRef

func (r retained) release() {
	for _, d := range r {
		d.release()
	}
}

// diffBufPool recycles diff buffers of whatever capacity they grew to
// (diffs are variable-length, unlike page images). Entries are *[]byte
// for the same SA6002 reason as pageBufPool.
var diffBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 256)
	return &b
}}

// getDiffBuf returns an empty diff buffer to append into.
func getDiffBuf() []byte {
	return (*diffBufPool.Get().(*[]byte))[:0]
}

// putDiffBuf recycles a diff buffer.
func putDiffBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	diffBufPool.Put(&b)
}

// runlock releases a shard acquired with rlockShard.
func (sh *pageShard) runlock() {
	if sh.exclusive {
		sh.mu.Unlock()
		return
	}
	sh.mu.RUnlock()
}

// shard maps a page to its shard. The shard count is a power of two, so
// this is a single mask.
func (n *node) shard(p vm.PageID) *pageShard {
	return &n.shards[uint32(p)&n.shardMask]
}

// lockShard write-locks page p's shard, counting contention: a failed
// TryLock means another request held the shard, which is exactly the
// serialization the sharding exists to shrink. The counter feeds
// Stats.ShardContention (surfaced by the obs metrics endpoint) so a
// deployment can see whether the shard count is sized right.
func (n *node) lockShard(p vm.PageID) *pageShard {
	sh := n.shard(p)
	if !sh.mu.TryLock() {
		n.c.stats.ShardContention.Add(1)
		sh.mu.Lock()
	}
	return sh
}

// rlockShard read-locks page p's shard, counting contention (a failed
// TryRLock means a writer held or was waiting on the shard). Release
// with sh.runlock(): in the single-shard baseline configuration the
// acquisition is exclusive (see pageShard).
func (n *node) rlockShard(p vm.PageID) *pageShard {
	sh := n.shard(p)
	if sh.exclusive {
		return n.lockShard(p)
	}
	if !sh.mu.TryRLock() {
		n.c.stats.ShardContention.Add(1)
		sh.mu.RLock()
	}
	return sh
}

// lockSync locks the node's sync-state mutex (interval counters, notice
// histories, prefetch windows), counting contention into
// Stats.SyncContention.
func (n *node) lockSync() {
	if !n.mu.TryLock() {
		n.c.stats.SyncContention.Add(1)
		n.mu.Lock()
	}
}

// pageBufPool recycles page-sized buffers for the two hot allocation
// sites that create one per remote page movement: twin creation on the
// first write fault of an interval, and full-page reply images on the
// serve path. Entries are *[]byte so Put does not allocate an interface
// box (staticcheck SA6002); every entry has exactly PageSize usable
// capacity.
var pageBufPool = sync.Pool{New: func() any {
	b := make([]byte, memlayout.PageSize)
	return &b
}}

// getPageBuf returns a page-sized buffer (len == PageSize). Contents are
// arbitrary; callers overwrite it fully.
func getPageBuf() []byte {
	return (*pageBufPool.Get().(*[]byte))[:memlayout.PageSize]
}

// putPageBuf recycles a page-sized buffer. Buffers of any other capacity
// (nil PageReply data, truncated images) are left for the GC, so callers
// can hand over whatever they hold without checking provenance.
func putPageBuf(b []byte) {
	if cap(b) < memlayout.PageSize {
		return
	}
	b = b[:memlayout.PageSize]
	pageBufPool.Put(&b)
}

// recycleReply returns a served reply's page buffer to the pool. Called
// by the transport handler after the reply has been encoded to the wire:
// at that point the message object is dead (Decode on the requester side
// copies), so its page image can back the next serve. Only PageReply
// carries a pooled buffer — diff replies alias the immutable stored
// diffs and must never be recycled.
func recycleReply(m msg.Message) {
	if pr, ok := m.(*msg.PageReply); ok {
		putPageBuf(pr.Data)
		pr.Data = nil
	}
}
