package dsm

// Correlation-driven prefetch and batched diff transfer.
//
// The paper's thesis is that correlation data predicts *future* sharing;
// the placement layer spends that prediction on where threads run, and
// this file spends it on *when data moves*. At barrier release — the
// moment every page's pending write notices for the epoch are known —
// each node predicts the pages its resident threads will touch (from the
// tracker's per-thread access bitmaps, or from its own fault window when
// tracking is off) and pulls the pending diffs for those pages ahead of
// demand. The fetches are coalesced: one DiffBatchRequest per writer
// node covers every (page, interval) the prediction needs from it, so a
// round that would have cost one synchronous round trip per faulting
// page costs one round trip per peer.
//
// Consistency is unaffected (DESIGN.md §7): prefetch applies exactly the
// diffs the demand path would apply, in the same (Lamport, writer,
// interval) order, against the same pending-notice bookkeeping — it only
// moves the application earlier, to a point where the barrier has already
// established that the epoch's notices are complete. A page any of whose
// diffs has been garbage-collected is skipped whole, leaving its pending
// set intact for the demand path's full-page fallback.

import (
	"fmt"
	"sort"

	"actdsm/internal/msg"
	"actdsm/internal/sim"
	"actdsm/internal/vm"
)

// SetPrefetchPredictor installs f, consulted at the start of each
// prefetch round for the set of pages node's resident threads are
// predicted to touch in the coming epoch. The facade wires this to the
// union of the correlation tracker's per-thread access bitmaps (paper
// §4.2) over the node's resident threads. A nil return (or no installed
// predictor) falls back to the node's fault window: the pages it missed
// on in the previous epoch.
func (c *Cluster) SetPrefetchPredictor(f func(node int) *vm.Bitmap) {
	c.prefetchPredict = f
}

// PrefetchRound runs one prefetch round on every node. It is intended to
// be called at barrier release, after Barrier has delivered the epoch's
// write notices, while application threads are still parked; it is a
// no-op (returning zero costs) unless Config.PrefetchBudget is non-zero
// and the protocol is multi-writer. Nodes are processed in order so runs
// stay deterministic; each node's per-writer batch fetches fan out in
// parallel. The returned slice holds each node's virtual-time cost.
func (c *Cluster) PrefetchRound() ([]sim.Time, error) {
	costs := make([]sim.Time, c.cfg.Nodes)
	if c.cfg.PrefetchBudget == 0 || c.cfg.Protocol != MultiWriter {
		return costs, nil
	}
	c.stats.PrefetchRounds.Add(1)
	for i, n := range c.nodes {
		pages, cost, err := n.prefetch(c.cfg.PrefetchBudget)
		if err != nil {
			return nil, err
		}
		costs[i] = cost
		c.probePrefetchDone(i, pages, cost)
	}
	return costs, nil
}

// hotPages returns the node's prediction for the coming epoch as a page
// list for the barrier enter message: every predicted page whose pending
// diffs a barrier-piggybacked push could apply (a held, clean copy with
// no pre-existing pending backlog — the push carries only the closing
// epoch's diffs, and a page with older pendings could not be completed).
// pred is the installed predictor's bitmap, computed by the caller
// outside the node's locks; nil falls back to the fault window.
func (n *node) hotPages(pred *vm.Bitmap) []int32 {
	if pred == nil {
		n.lockSync()
		pred = n.faultWin
		n.mu.Unlock()
	}
	if pred == nil {
		return nil
	}
	var hot []int32
	pred.ForEach(func(p vm.PageID) {
		if int(p) >= len(n.pages) {
			return
		}
		sh := n.rlockShard(p)
		st := &n.pages[p]
		ok := st.hasCopy && !st.dirty && len(st.pending) == 0
		sh.runlock()
		if ok {
			hot = append(hot, int32(p))
		}
	})
	return hot
}

// applyPush applies the diffs piggybacked on a barrier release, after
// the release's notices have been queued. A page is applied only when
// the push covers its entire pending set (same no-partial-apply rule as
// the pull path); anything else is left for demand or pull. Applying is
// idempotent across re-deliveries: a retried release finds the pending
// set empty (the notices dedup through staleOrDup) and skips. It locks
// each page's shard in turn and returns the accumulated apply cost and
// the number of pages brought current; the caller folds those into the
// sync-state pushCost/pushedEpoch accounting.
func (n *node) applyPush(push []msg.PushedDiff) (sim.Time, int, error) {
	c := n.c
	diffs := make(map[[3]int32][]byte, len(push))
	var pages []vm.PageID
	seen := make(map[vm.PageID]bool)
	for _, pd := range push {
		if int(pd.Page) < 0 || int(pd.Page) >= len(n.pages) {
			return 0, 0, fmt.Errorf("dsm: node %d pushed diff for page %d out of range", n.id, pd.Page)
		}
		diffs[[3]int32{pd.Page, pd.Writer, pd.Interval}] = pd.Diff
		if p := vm.PageID(pd.Page); !seen[p] {
			seen[p] = true
			pages = append(pages, p)
		}
	}
	var cost sim.Time
	pushed := 0
	for _, p := range pages {
		sh := n.lockShard(p)
		st := &n.pages[p]
		if !st.hasCopy || len(st.pending) == 0 {
			sh.mu.Unlock()
			continue
		}
		complete := true
		for _, nt := range st.pending {
			if _, ok := diffs[[3]int32{nt.Page, nt.Writer, nt.Interval}]; !ok {
				complete = false
				break
			}
		}
		// MutationPushPartialApply (test-only) breaks the no-partial-apply
		// rule: the page is applied anyway and the uncovered updates are
		// silently dropped below (lost update).
		if !complete && c.cfg.Mutation != MutationPushPartialApply {
			sh.mu.Unlock()
			continue
		}
		ordered := append([]msg.Notice(nil), st.pending...)
		sort.Slice(ordered, func(i, j int) bool {
			a, b := ordered[i], ordered[j]
			if a.Lam != b.Lam {
				return a.Lam < b.Lam
			}
			if a.Writer != b.Writer {
				return a.Writer < b.Writer
			}
			return a.Interval < b.Interval
		})
		for _, nt := range ordered {
			df, ok := diffs[[3]int32{nt.Page, nt.Writer, nt.Interval}]
			if !ok {
				continue // only reachable under MutationPushPartialApply
			}
			if err := ApplyDiff(n.pageData(p), df); err != nil {
				sh.mu.Unlock()
				return 0, 0, fmt.Errorf("dsm: node %d apply pushed diff page %d: %w", n.id, p, err)
			}
			cost += sim.Time(len(df)) * c.costs.DiffPerByte
			st.noteApplied(c.cfg.Nodes, nt.Writer, nt.Interval)
			n.bumpLamport(nt.Lam)
			c.probeDiffApplied(n.id, ApplyPush, nt)
		}
		st.pending = st.pending[:0]
		n.as.SetProt(p, vm.ProtRead)
		st.prefetched = true
		pushed++
		sh.mu.Unlock()
		c.stats.PrefetchedPages.Add(1)
	}
	return cost, pushed, nil
}

// collectPushDiffs runs at the barrier manager between the enter fan-in
// and the release fan-out: hot maps each node to its predicted pages,
// notices is the episode's sorted union. It fetches every diff any node's
// prediction needs — coalesced into at most one DiffBatchRequest per
// writer for the whole cluster, the coalescing no per-reader pull can
// achieve — and returns the per-destination push lists plus the
// manager's wire cost. Budget > 0 caps the pages served per destination.
func (c *Cluster) collectPushDiffs(hot map[int32][]int32, notices []msg.Notice) (map[int32][]msg.PushedDiff, sim.Time, error) {
	const mgr = 0
	budget := c.cfg.PrefetchBudget
	byPage := make(map[int32][]msg.Notice)
	for _, nt := range notices {
		byPage[nt.Page] = append(byPage[nt.Page], nt)
	}

	// Select each destination's served pages and the union of needed
	// (page, writer, interval) diffs.
	need := make(map[[3]int32]bool)
	wants := make(map[int32][]int32)
	for dest := 0; dest < c.cfg.Nodes; dest++ {
		count := 0
		for _, p := range hot[int32(dest)] {
			foreign := false
			for _, nt := range byPage[p] {
				if int(nt.Writer) != dest {
					foreign = true
					break
				}
			}
			if !foreign {
				continue // nothing pending for this page this epoch
			}
			if budget > 0 && count >= budget {
				break // remaining predictions fall to pull or demand
			}
			count++
			wants[int32(dest)] = append(wants[int32(dest)], p)
			for _, nt := range byPage[p] {
				if int(nt.Writer) != dest {
					need[[3]int32{nt.Page, nt.Writer, nt.Interval}] = true
				}
			}
		}
	}
	if len(need) == 0 {
		return nil, 0, nil
	}

	// One batch per writer for the whole cluster; the manager reads its
	// own diffs locally inside fetchDiffBatches.
	byWriter := make(map[int32][]msg.Notice)
	for _, nt := range notices {
		if need[[3]int32{nt.Page, nt.Writer, nt.Interval}] {
			byWriter[nt.Writer] = append(byWriter[nt.Writer], nt)
		}
	}
	got, wire, _, err := c.nodes[mgr].fetchDiffBatches(byWriter)
	if err != nil {
		return nil, 0, err
	}

	// Assemble each destination's push list. A page any of whose diffs
	// is missing (garbage-collected on the writer) is skipped whole.
	out := make(map[int32][]msg.PushedDiff)
	for dest, pages := range wants {
		for _, p := range pages {
			ok := true
			for _, nt := range byPage[p] {
				if int32(dest) == nt.Writer {
					continue
				}
				if _, have := got[[3]int32{nt.Page, nt.Writer, nt.Interval}]; !have {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for _, nt := range byPage[p] {
				if int32(dest) == nt.Writer {
					continue
				}
				out[dest] = append(out[dest], msg.PushedDiff{
					Page:     nt.Page,
					Writer:   nt.Writer,
					Interval: nt.Interval,
					Diff:     got[[3]int32{nt.Page, nt.Writer, nt.Interval}],
				})
			}
		}
	}
	return out, wire, nil
}

// prefetch runs one node's prefetch round: predict, select candidates
// under the budget, batch-fetch per writer, apply. Called between
// barrier release and thread resumption; no application thread is active
// on the node. It is the pull backstop behind the barrier-piggybacked
// push: pages the push already served have empty pending sets and are
// skipped, and the pages the push served this epoch are charged against
// the budget. It returns the number of pages brought current and the
// round's virtual-time cost.
func (n *node) prefetch(budget int) (int, sim.Time, error) {
	c := n.c
	var pred *vm.Bitmap
	if c.prefetchPredict != nil {
		pred = c.prefetchPredict(n.id)
	}

	// Window turnover under the sync mutex: charge this epoch's push
	// against the budget and start a fresh fault window and late set for
	// the coming epoch.
	n.lockSync()
	if pred == nil {
		pred = n.faultWin
	}
	remaining := budget
	if budget > 0 {
		remaining = budget - n.pushedEpoch
	}
	n.pushedEpoch = 0
	n.faultWin = vm.NewBitmap(c.cfg.Pages)
	n.late = make(map[vm.PageID]bool)
	n.mu.Unlock()

	type candidate struct {
		p    vm.PageID
		pend []msg.Notice
	}
	var cands []candidate
	var lateList []vm.PageID
	if pred != nil {
		pred.ForEach(func(p vm.PageID) {
			if int(p) >= len(n.pages) {
				return
			}
			sh := n.rlockShard(p)
			st := &n.pages[p]
			// Only pages a diff fetch can help: a held copy invalidated
			// by pending notices. Pages without a copy would cost the
			// same full-page round trip now as on demand.
			if !st.hasCopy || len(st.pending) == 0 || st.dirty {
				sh.runlock()
				return
			}
			if budget > 0 && len(cands) >= remaining {
				// Predicted but over budget: a demand miss on this page
				// in the coming epoch counts as PrefetchLate.
				lateList = append(lateList, p)
				sh.runlock()
				return
			}
			cands = append(cands, candidate{
				p:    p,
				pend: append([]msg.Notice(nil), st.pending...),
			})
			sh.runlock()
		})
	}
	if len(lateList) > 0 {
		n.lockSync()
		for _, p := range lateList {
			n.late[p] = true
		}
		n.mu.Unlock()
	}
	if len(cands) == 0 {
		return 0, 0, nil
	}

	// Coalesce everything the round needs into one batch per writer.
	byWriter := make(map[int32][]msg.Notice)
	for _, cd := range cands {
		for _, nt := range cd.pend {
			byWriter[nt.Writer] = append(byWriter[nt.Writer], nt)
		}
	}
	got, wire, _, err := n.fetchDiffBatches(byWriter)
	if err != nil {
		return 0, 0, err
	}

	var applyCost sim.Time
	applied := 0
	for _, cd := range cands {
		sh := n.lockShard(cd.p)
		st := &n.pages[cd.p]
		// Never apply a partial set: if any of the page's diffs was
		// garbage-collected, leave the page untouched — its pending set
		// survives and the demand path falls back to a full fetch.
		complete := true
		for _, nt := range cd.pend {
			if _, ok := got[[3]int32{nt.Page, nt.Writer, nt.Interval}]; !ok {
				complete = false
				break
			}
		}
		if !complete {
			sh.mu.Unlock()
			continue
		}
		// Same causal application order as the demand path.
		ordered := append([]msg.Notice(nil), cd.pend...)
		sort.Slice(ordered, func(i, j int) bool {
			a, b := ordered[i], ordered[j]
			if a.Lam != b.Lam {
				return a.Lam < b.Lam
			}
			if a.Writer != b.Writer {
				return a.Writer < b.Writer
			}
			return a.Interval < b.Interval
		})
		for _, nt := range ordered {
			df := got[[3]int32{nt.Page, nt.Writer, nt.Interval}]
			if err := ApplyDiff(n.pageData(cd.p), df); err != nil {
				sh.mu.Unlock()
				return 0, 0, fmt.Errorf("dsm: node %d prefetch apply diff page %d: %w", n.id, cd.p, err)
			}
			applyCost += sim.Time(len(df)) * c.costs.DiffPerByte
			st.noteApplied(c.cfg.Nodes, nt.Writer, nt.Interval)
			n.bumpLamport(nt.Lam)
			c.probeDiffApplied(n.id, ApplyPrefetch, nt)
		}
		// Drop exactly the applied notices.
		keep := st.pending[:0]
		for _, nt := range st.pending {
			if _, ok := got[[3]int32{nt.Page, nt.Writer, nt.Interval}]; !ok {
				keep = append(keep, nt)
			}
		}
		st.pending = keep
		if len(st.pending) == 0 {
			n.as.SetProt(cd.p, vm.ProtRead)
			st.prefetched = true
			applied++
			c.stats.PrefetchedPages.Add(1)
		}
		sh.mu.Unlock()
	}
	return applied, wire + applyCost, nil
}

// fetchDiffBatches fetches the diffs named by byWriter — each writer's
// notices for any number of pages — with one DiffBatchRequest per writer,
// fanned out in parallel. It returns the fetched diffs keyed by
// (page, writer, interval), the slowest round trip's wire cost (the
// requester's stall, since the fan-out overlaps), and whether every
// requested diff was present (false when a writer has garbage-collected
// one). It performs no state mutation on n and must be called without mu
// held; stats are recorded atomically.
func (n *node) fetchDiffBatches(byWriter map[int32][]msg.Notice) (map[[3]int32][]byte, sim.Time, bool, error) {
	c := n.c
	writers := make([]int32, 0, len(byWriter))
	for w := range byWriter {
		writers = append(writers, w)
	}
	sort.Slice(writers, func(i, j int) bool { return writers[i] < writers[j] })

	reqs := make([]*msg.DiffBatchRequest, len(writers))
	for i, w := range writers {
		nts := append([]msg.Notice(nil), byWriter[w]...)
		sort.Slice(nts, func(a, b int) bool {
			if nts[a].Page != nts[b].Page {
				return nts[a].Page < nts[b].Page
			}
			return nts[a].Interval < nts[b].Interval
		})
		req := &msg.DiffBatchRequest{From: int32(n.id), Writer: w}
		total := 0
		for _, nt := range nts {
			if len(req.Pages) == 0 || req.Pages[len(req.Pages)-1].Page != nt.Page {
				req.Pages = append(req.Pages, msg.PageIntervals{Page: nt.Page})
			}
			pi := &req.Pages[len(req.Pages)-1]
			pi.Intervals = append(pi.Intervals, nt.Interval)
			total++
		}
		if int(w) != n.id {
			c.stats.BatchSizeHist[batchSizeBucket(total)].Add(1)
		}
		reqs[i] = req
	}

	replies := make([]*msg.DiffBatchReply, len(writers))
	wires := make([]sim.Time, len(writers))
	err := fanOut(len(writers), c.cfg.SerialFanOut, func(i int) error {
		w := writers[i]
		if int(w) == n.id {
			// The barrier manager reading its own diff store (push
			// collection): a local read, not a remote call. The reply
			// aliases pinned stored diffs; unlike the wire path there is
			// no decode-copy, so copy before releasing the pins — the
			// returned map must outlive a concurrent GC drop.
			reply, release, err := n.serveDiffBatchRequest(reqs[i])
			if err != nil {
				return err
			}
			br := reply.(*msg.DiffBatchReply)
			for pi := range br.Pages {
				for j, df := range br.Pages[pi].Diffs {
					if df != nil {
						br.Pages[pi].Diffs[j] = append([]byte(nil), df...)
					}
				}
			}
			if release != nil {
				release()
			}
			replies[i] = br
			return nil
		}
		reply, wire, err := c.call(n.id, int(w), reqs[i])
		if err != nil {
			return fmt.Errorf("dsm: node %d batch fetch diffs from %d: %w", n.id, w, err)
		}
		br, ok := reply.(*msg.DiffBatchReply)
		if !ok || len(br.Pages) != len(reqs[i].Pages) {
			return fmt.Errorf("dsm: node %d bad diff batch reply from %d", n.id, w)
		}
		c.stats.DiffBatchFetches.Add(1)
		replies[i], wires[i] = br, wire
		return nil
	})
	if err != nil {
		return nil, 0, false, err
	}

	got := make(map[[3]int32][]byte)
	complete := true
	var maxWire sim.Time
	for i, w := range writers {
		if wires[i] > maxWire {
			maxWire = wires[i]
		}
		for j, pd := range replies[i].Pages {
			want := reqs[i].Pages[j]
			if pd.Page != want.Page || len(pd.Diffs) != len(want.Intervals) {
				return nil, 0, false, fmt.Errorf("dsm: node %d misaligned diff batch reply from %d", n.id, w)
			}
			for k, df := range pd.Diffs {
				if df == nil {
					complete = false
					continue
				}
				got[[3]int32{pd.Page, w, want.Intervals[k]}] = df
				if int(w) != n.id {
					c.stats.BatchedDiffs.Add(1)
					c.stats.BytesDiff.Add(int64(len(df)))
				}
			}
		}
	}
	return got, maxWire, complete, nil
}

// serveDiffBatchRequest answers a batched diff fetch: a pure read of this
// node's diff store, grouped per page, taking each page's shard read lock
// in turn so concurrent batch serves for disjoint shards (and concurrent
// read-only serves within a shard) proceed in parallel. nil entries mark
// garbage-collected diffs, exactly as in DiffReply. Replies alias the
// immutable stored diffs, pinned by the returned release func until the
// reply is encoded (or copied, on the local path).
func (n *node) serveDiffBatchRequest(req *msg.DiffBatchRequest) (msg.Message, func(), error) {
	out := &msg.DiffBatchReply{Pages: make([]msg.PageDiffs, len(req.Pages))}
	var pinned retained
	for i, pi := range req.Pages {
		out.Pages[i].Page = pi.Page
		out.Pages[i].Diffs = make([][]byte, len(pi.Intervals))
		if int(pi.Page) < 0 || int(pi.Page) >= len(n.pages) {
			continue
		}
		p := vm.PageID(pi.Page)
		sh := n.rlockShard(p)
		store := sh.diffs[p]
		for j, iv := range pi.Intervals {
			if d := store[iv]; d != nil {
				d.retain()
				pinned = append(pinned, d)
				out.Pages[i].Diffs[j] = d.b
			}
		}
		sh.runlock()
	}
	if pinned == nil {
		return out, nil, nil
	}
	return out, pinned.release, nil
}
