package dsm

import (
	"testing"

	"actdsm/internal/vm"
)

// TestLockGrantsIncremental pins the high-water-mark behaviour of lock
// grants: a node that acquires the same manager's locks repeatedly within
// one barrier epoch receives each notice once, so protocol bytes stay
// proportional to new work rather than to the accumulated epoch history.
func TestLockGrantsIncremental(t *testing.T) {
	c := newTestCluster(t, 3, 8)
	// Node 1 writes a different page under the same lock in each round;
	// node 2 acquires after every release. Without incremental grants,
	// round k's grant would carry k notices; with them it carries ~1.
	const lock = int32(3) // manager = node 0
	var grantBytes []int64
	last := c.Stats().Snapshot()
	for round := 0; round < 6; round++ {
		if _, err := c.AcquireLock(1, 8, lock); err != nil {
			t.Fatal(err)
		}
		wf32(t, c, 1, 8, round*1024, float32(round))
		if _, err := c.ReleaseLock(1, 8, lock); err != nil {
			t.Fatal(err)
		}
		before := c.Stats().Snapshot()
		if _, err := c.AcquireLock(2, 16, lock); err != nil {
			t.Fatal(err)
		}
		after := c.Stats().Snapshot()
		grantBytes = append(grantBytes, after.BytesTotal-before.BytesTotal)
		if _, err := c.ReleaseLock(2, 16, lock); err != nil {
			t.Fatal(err)
		}
		_ = last
	}
	// Grant cost must not grow with the round number.
	if grantBytes[5] > grantBytes[1]+16 {
		t.Fatalf("grant bytes grew with history: %v", grantBytes)
	}
	// And the data must still be fully consistent.
	if _, err := c.AcquireLock(2, 16, lock); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 6; round++ {
		if got := rf32(t, c, 2, 16, round*1024); got != float32(round) {
			t.Fatalf("round %d page = %v", round, got)
		}
	}
	if _, err := c.ReleaseLock(2, 16, lock); err != nil {
		t.Fatal(err)
	}
}

// TestLockGrantsResetAtBarrier checks the high-water marks restart with
// the epoch: post-barrier acquires must still deliver post-barrier
// notices exactly once.
func TestLockGrantsResetAtBarrier(t *testing.T) {
	c := newTestCluster(t, 2, 2)
	const lock = int32(4)
	for epoch := 0; epoch < 3; epoch++ {
		if _, err := c.AcquireLock(0, 0, lock); err != nil {
			t.Fatal(err)
		}
		wf32(t, c, 0, 0, 0, float32(epoch*10))
		if _, err := c.ReleaseLock(0, 0, lock); err != nil {
			t.Fatal(err)
		}
		if _, err := c.AcquireLock(1, 8, lock); err != nil {
			t.Fatal(err)
		}
		if got := rf32(t, c, 1, 8, 0); got != float32(epoch*10) {
			t.Fatalf("epoch %d: read %v", epoch, got)
		}
		wf32(t, c, 1, 8, 1, float32(epoch*10+1))
		if _, err := c.ReleaseLock(1, 8, lock); err != nil {
			t.Fatal(err)
		}
		barrier(t, c)
		if err := c.CheckCoherence(); err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
	}
}

// TestManagerLogSharedAcrossLocks checks that notices shipped to a
// manager via one lock's release flow into grants of its other locks —
// the shared-log superset that preserves transitive causality.
func TestManagerLogSharedAcrossLocks(t *testing.T) {
	c := newTestCluster(t, 3, 1)
	// Locks 3 and 6 are both managed by node 0.
	if _, err := c.AcquireLock(1, 8, 3); err != nil {
		t.Fatal(err)
	}
	wf32(t, c, 1, 8, 0, 77)
	if _, err := c.ReleaseLock(1, 8, 3); err != nil {
		t.Fatal(err)
	}
	// Node 2 acquires the *other* lock: the grant still carries node
	// 1's notice (shared manager log), so its read is current.
	if _, err := c.AcquireLock(2, 16, 6); err != nil {
		t.Fatal(err)
	}
	if got := rf32(t, c, 2, 16, 0); got != 77 {
		t.Fatalf("cross-lock read = %v, want 77", got)
	}
	if _, err := c.ReleaseLock(2, 16, 6); err != nil {
		t.Fatal(err)
	}
	_ = vm.PageID(0)
}
