package dsm

import (
	"testing"
	"testing/quick"

	"actdsm/internal/memlayout"
	"actdsm/internal/sim"
	"actdsm/internal/transport"
	"actdsm/internal/vm"
)

// TestShadowModel drives the cluster with random barrier-separated write
// patterns and checks every read against a plain shadow array: the DSM
// must behave exactly like ordinary shared memory for data-race-free
// programs. Writers in the same interval touch disjoint words (as a
// correct program would), different intervals may overwrite anything.
func TestShadowModel(t *testing.T) {
	check := func(seed uint64, nodesSel, pagesSel uint8) bool {
		nodes := 2 + int(nodesSel%4)  // 2..5
		npages := 2 + int(pagesSel%6) // 2..7
		rng := sim.NewRNG(seed)
		c, err := New(Config{Nodes: nodes, Pages: npages, GCThresholdBytes: 1 << int(rng.Intn(14))})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = c.Close() }()

		shadow := make([]float32, npages*memlayout.PageSize/4)
		words := len(shadow)
		for round := 0; round < 12; round++ {
			// Each node writes a random set of words this interval;
			// word w is assigned to node (w % nodes) to guarantee
			// disjointness.
			for node := 0; node < nodes; node++ {
				nWrites := rng.Intn(20)
				for k := 0; k < nWrites; k++ {
					w := rng.Intn(words)
					w -= w % nodes // base
					w += node      // node's own lane
					if w >= words {
						continue
					}
					val := float32(rng.Intn(1000)) - 500
					b, _, err := c.Span(node, node, w*4, 4, vm.Write)
					if err != nil {
						t.Fatal(err)
					}
					memlayout.ViewF32(b).Set(0, val)
					shadow[w] = val
				}
			}
			if _, err := c.Barrier(); err != nil {
				t.Fatal(err)
			}
			// Random reads from random nodes must see the shadow.
			for k := 0; k < 15; k++ {
				node := rng.Intn(nodes)
				w := rng.Intn(words)
				b, _, err := c.Span(node, node, w*4, 4, vm.Read)
				if err != nil {
					t.Fatal(err)
				}
				if got := memlayout.ViewF32(b).Get(0); got != shadow[w] {
					t.Logf("seed %d round %d: node %d word %d = %v, want %v",
						seed, round, node, w, got, shadow[w])
					return false
				}
			}
			if err := c.CheckCoherence(); err != nil {
				t.Logf("seed %d round %d: %v", seed, round, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestShadowModelWithLocks mixes lock-protected read-modify-writes into
// the shadow comparison: each lock guards a disjoint word range, so the
// shadow stays exact.
func TestShadowModelWithLocks(t *testing.T) {
	check := func(seed uint64) bool {
		const nodes, npages, nlocks = 3, 3, 4
		rng := sim.NewRNG(seed)
		c, err := New(Config{Nodes: nodes, Pages: npages})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = c.Close() }()
		shadow := make([]float32, npages*memlayout.PageSize/4)
		words := len(shadow)
		perLock := words / nlocks
		for round := 0; round < 10; round++ {
			for step := 0; step < 8; step++ {
				node := rng.Intn(nodes)
				lock := int32(rng.Intn(nlocks))
				if _, err := c.AcquireLock(node, node, lock); err != nil {
					t.Fatal(err)
				}
				// RMW a word in the lock's range.
				w := int(lock)*perLock + rng.Intn(perLock)
				b, _, err := c.Span(node, node, w*4, 4, vm.Write)
				if err != nil {
					t.Fatal(err)
				}
				v := memlayout.ViewF32(b)
				if v.Get(0) != shadow[w] {
					t.Logf("seed %d: RMW read %v, want %v", seed, v.Get(0), shadow[w])
					return false
				}
				v.Set(0, v.Get(0)+1)
				shadow[w]++
				if _, err := c.ReleaseLock(node, node, lock); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := c.Barrier(); err != nil {
				t.Fatal(err)
			}
			for w := 0; w < words; w += 97 {
				node := rng.Intn(nodes)
				b, _, err := c.Span(node, node, w*4, 4, vm.Read)
				if err != nil {
					t.Fatal(err)
				}
				if got := memlayout.ViewF32(b).Get(0); got != shadow[w] {
					t.Logf("seed %d: word %d = %v, want %v", seed, w, got, shadow[w])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestTransportFailurePropagates injects transport failures and checks
// they surface as errors rather than corruption or hangs.
func TestTransportFailurePropagates(t *testing.T) {
	c := newTestCluster(t, 2, 2)
	// Reach inside (through the call-observer wrapper): the Local
	// transport supports fault injection.
	lt, ok := transport.Base(c.tr).(*transport.Local)
	if !ok {
		t.Fatal("expected Local transport")
	}
	fail := false
	lt.FailCall = func(from, to int, payload []byte) bool { return fail }

	wf32(t, c, 0, 0, 1024, 5) // warm up normally
	fail = true
	if _, _, err := c.Span(1, 8, 0, 4, vm.Read); err == nil {
		t.Fatal("expected error with failing transport")
	}
	if _, err := c.Barrier(); err == nil {
		t.Fatal("expected barrier error with failing transport")
	}
	// Recovery: once the transport heals, the cluster still works.
	fail = false
	if _, err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	if got := rf32(t, c, 1, 8, 1024); got != 5 {
		t.Fatalf("after recovery read %v, want 5", got)
	}
}

// TestGCDiffFallback forces the fallback path where a requester holds
// pending notices whose diffs were garbage-collected: it must fall back to
// a full page fetch and still see correct data.
func TestGCDiffFallback(t *testing.T) {
	c, err := New(Config{Nodes: 3, Pages: 1, GCThresholdBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	// Node 1 writes page 0; node 2 never touches it. Barrier triggers GC
	// (threshold 1): the manager (node 0) consolidates, everyone drops
	// diffs, non-managers invalidate.
	wf32(t, c, 1, 8, 3, 7)
	barrier(t, c)
	if c.Stats().Snapshot().GCRounds == 0 {
		t.Fatal("GC did not trigger")
	}
	// Node 2's first read must full-fetch from the manager.
	if got := rf32(t, c, 2, 16, 3); got != 7 {
		t.Fatalf("node 2 read %v, want 7", got)
	}
	if got := rf32(t, c, 1, 8, 3); got != 7 {
		t.Fatalf("node 1 reread %v, want 7", got)
	}
}

// TestDeterminismAcrossTransports verifies the Local and TCP transports
// produce identical protocol statistics for the same operation sequence.
func TestDeterminismAcrossTransports(t *testing.T) {
	run := func(useTCP bool) Snapshot {
		c, err := New(Config{Nodes: 3, Pages: 4, UseTCP: useTCP})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = c.Close() }()
		for round := 0; round < 4; round++ {
			for node := 0; node < 3; node++ {
				wf32(t, c, node, node, node*1024+round, float32(round))
			}
			if _, err := c.Barrier(); err != nil {
				t.Fatal(err)
			}
			_ = rf32(t, c, (round+1)%3, 0, 0)
		}
		return c.Stats().Snapshot()
	}
	local, tcp := run(false), run(true)
	if local.Counters() != tcp.Counters() {
		t.Fatalf("stats differ between transports:\nlocal: %+v\ntcp:   %+v", local, tcp)
	}
}
